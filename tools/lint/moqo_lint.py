#!/usr/bin/env python3
"""moqo_lint: repo-specific invariant linter (stdlib-only, no clang AST).

Enforces the project contracts the compiler cannot see. Run from anywhere:

    python3 tools/lint/moqo_lint.py            # lint the repo, exit 1 on findings
    python3 tools/lint/moqo_lint.py --write-baseline   # refreeze the enum baseline

Rules (IDs are stable; tests/lint asserts them exactly):

  frozen-enum    net::MsgType / net::ErrorCode / persist::RecordKind and the
                 format-version constants are append-only wire/disk contracts.
                 Every entry in tools/lint/frozen_enums.json must still exist
                 with the same value; new entries may only append (no value
                 reuse). To extend an enum intentionally, add the entry and
                 rerun with --write-baseline, then commit the new baseline.
  raw-encode     Wire/persist encoding goes through the format.h / wire.h
                 primitives only: outside those files, no reinterpret_cast
                 to byte pointers and no memcpy except the scalar
                 bit-pattern idiom memcpy(&a, &b, sizeof(...)). Genuine
                 exceptions (e.g. decode-side views of checksummed bytes)
                 carry `lint:allow raw-encode` on or above the line.
  failpoint-site Every MOQO_FAILPOINT* site name is globally unique and
                 listed in the README failpoint catalog table.
  naked-mutex    All locking in src/ goes through util/mutex.h (Mutex,
                 MutexLock, CondVar) so Thread Safety Analysis sees every
                 lock; std::mutex & friends are banned outside that file.
  nondeterminism rand()/srand()/std::random_device are banned in src/ —
                 randomized behavior must come from seeded generators so
                 runs (and chaos schedules) are reproducible.
  tsa-escape     MOQO_NO_THREAD_SAFETY_ANALYSIS needs a justifying comment
                 containing "TSA:" within the 3 lines above, and the total
                 count across src/ is capped (--max-tsa-escapes).
"""

import argparse
import json
import os
import re
import sys

# Files whose whole job is byte-level encoding; raw-encode does not apply.
ENCODING_FILES = {"src/net/wire.h", "src/net/wire.cc", "src/persist/format.h"}
MUTEX_FILE = "src/util/mutex.h"
BASELINE_REL = "tools/lint/frozen_enums.json"
README_REL = "README.md"

# (qualified enum name, file, enum name in that file)
FROZEN_ENUMS = [
    ("net::MsgType", "src/net/wire.h", "MsgType"),
    ("net::ErrorCode", "src/net/wire.h", "ErrorCode"),
    ("persist::RecordKind", "src/persist/format.h", "RecordKind"),
]
# (qualified constant name, file, constant name)
FROZEN_CONSTANTS = [
    ("net::kMagic", "src/net/wire.h", "kMagic"),
    ("net::kProtocolVersion", "src/net/wire.h", "kProtocolVersion"),
    ("persist::kFormatVersion", "src/persist/format.h", "kFormatVersion"),
]

ENUM_RE = re.compile(r"enum\s+class\s+(\w+)\s*(?::\s*[\w:]+)?\s*\{([^}]*)\}",
                     re.S)
ENUM_ENTRY_RE = re.compile(r"^\s*(k\w+)\s*=\s*(0x[0-9a-fA-F]+|\d+)\s*,?\s*$")
CONST_RE = r"constexpr\s+[\w:<>\s]+\b{name}\s*=\s*(0x[0-9a-fA-F]+|\d+)"
BYTE_CAST_RE = re.compile(
    r"reinterpret_cast<\s*(?:const\s+)?"
    r"(?:char|unsigned\s+char|uint8_t|std::uint8_t|std::byte)\s*\*\s*>")
BITPATTERN_MEMCPY_RE = re.compile(
    r"memcpy\(\s*&\w+(?:\.\w+)*\s*,\s*&\w+(?:\.\w+)*\s*,\s*sizeof")
MEMCPY_RE = re.compile(r"\bmemcpy\s*\(")
FAILPOINT_RE = re.compile(
    r"MOQO_FAILPOINT(?:_HIT|_RETURN)?\(\s*\"([^\"]+)\"")
NAKED_MUTEX_RE = re.compile(
    r"std::(?:recursive_|timed_|shared_)?mutex\b|std::lock_guard\b|"
    r"std::unique_lock\b|std::scoped_lock\b|std::shared_lock\b|"
    r"std::condition_variable(?:_any)?\b")
NONDET_RE = re.compile(r"std::random_device\b|(?<![\w:])s?rand\s*\(")
ESCAPE_TOKEN = "MOQO_NO_THREAD_SAFETY_ANALYSIS"


class Finding:
    def __init__(self, rule, path, line, message):
        self.rule, self.path, self.line, self.message = rule, path, line, message

    def __str__(self):
        return f"{self.rule}:{self.path}:{self.line}: {self.message}"


def iter_source_files(root, subdir="src"):
    base = os.path.join(root, subdir)
    for dirpath, _, names in os.walk(base):
        for name in sorted(names):
            if name.endswith((".h", ".cc", ".cpp", ".hpp")):
                full = os.path.join(dirpath, name)
                yield os.path.relpath(full, root).replace(os.sep, "/")


def read(root, rel):
    with open(os.path.join(root, rel), encoding="utf-8") as f:
        return f.read()


def strip_comments(line):
    """Drop // comments and string literals so tokens in prose don't fire."""
    line = re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)
    return line.split("//", 1)[0]


def allows(lines, idx, rule):
    """True if line idx or the line above carries `lint:allow <rule>`."""
    for i in (idx, idx - 1):
        if 0 <= i < len(lines) and f"lint:allow {rule}" in lines[i]:
            return True
    return False


# ---------------------------------------------------------------------------
# frozen-enum


def parse_frozen(root):
    enums, constants = {}, {}
    for qual, rel, name in FROZEN_ENUMS:
        try:
            text = read(root, rel)
        except FileNotFoundError:
            continue
        for match in ENUM_RE.finditer(text):
            if match.group(1) != name:
                continue
            entries = {}
            for raw in match.group(2).splitlines():
                entry = ENUM_ENTRY_RE.match(strip_comments(raw))
                if entry:
                    entries[entry.group(1)] = int(entry.group(2), 0)
            enums[qual] = entries
    for qual, rel, name in FROZEN_CONSTANTS:
        try:
            text = read(root, rel)
        except FileNotFoundError:
            continue
        match = re.search(CONST_RE.format(name=name), text)
        if match:
            constants[qual] = int(match.group(1), 0)
    return {"enums": enums, "constants": constants}


def check_frozen_enums(root, baseline_path, findings):
    current = parse_frozen(root)
    try:
        with open(baseline_path, encoding="utf-8") as f:
            frozen = json.load(f)
    except FileNotFoundError:
        findings.append(Finding("frozen-enum", BASELINE_REL, 1,
                                "baseline missing; run --write-baseline"))
        return
    file_of = {qual: rel for qual, rel, _ in FROZEN_ENUMS + FROZEN_CONSTANTS}
    for qual, entries in frozen.get("enums", {}).items():
        now = current["enums"].get(qual)
        rel = file_of.get(qual, BASELINE_REL)
        if now is None:
            findings.append(Finding("frozen-enum", rel, 1,
                                    f"frozen enum {qual} not found"))
            continue
        for name, value in entries.items():
            if name not in now:
                findings.append(Finding(
                    "frozen-enum", rel, 1,
                    f"{qual}::{name} removed (frozen at {value}; the enum "
                    f"is append-only)"))
            elif now[name] != value:
                findings.append(Finding(
                    "frozen-enum", rel, 1,
                    f"{qual}::{name} changed {value} -> {now[name]} "
                    f"(append-only: extend and --write-baseline instead)"))
        frozen_values = {v for v in entries.values()}
        for name, value in now.items():
            if name not in entries and value in frozen_values:
                findings.append(Finding(
                    "frozen-enum", rel, 1,
                    f"{qual}::{name} reuses frozen value {value}"))
    for qual, value in frozen.get("constants", {}).items():
        now = current["constants"].get(qual)
        rel = file_of.get(qual, BASELINE_REL)
        if now is None:
            findings.append(Finding("frozen-enum", rel, 1,
                                    f"frozen constant {qual} not found"))
        elif now != value:
            findings.append(Finding(
                "frozen-enum", rel, 1,
                f"{qual} changed {value} -> {now} (bump means a new format: "
                f"extend the validation matrix and --write-baseline)"))


# ---------------------------------------------------------------------------
# per-line rules


def check_file(root, rel, findings, escapes):
    text = read(root, rel)
    lines = text.splitlines()
    for idx, raw in enumerate(lines):
        line_no = idx + 1
        code = strip_comments(raw)

        if rel not in ENCODING_FILES:
            hit = (BYTE_CAST_RE.search(code) or
                   (MEMCPY_RE.search(code) and
                    not BITPATTERN_MEMCPY_RE.search(code)))
            if hit and not allows(lines, idx, "raw-encode"):
                findings.append(Finding(
                    "raw-encode", rel, line_no,
                    "byte-level encoding outside wire.h/format.h primitives "
                    "(or annotate with `lint:allow raw-encode`)"))

        if rel != MUTEX_FILE and NAKED_MUTEX_RE.search(code):
            findings.append(Finding(
                "naked-mutex", rel, line_no,
                "use util/mutex.h Mutex/MutexLock/CondVar so Thread Safety "
                "Analysis sees this lock"))

        if NONDET_RE.search(code) and not allows(lines, idx, "nondeterminism"):
            findings.append(Finding(
                "nondeterminism", rel, line_no,
                "unseeded randomness is banned; use a seeded generator"))

        if (ESCAPE_TOKEN in code and
                rel != "src/util/thread_annotations.h"):
            context = "\n".join(lines[max(0, idx - 3):idx + 1])
            if "TSA:" not in context:
                findings.append(Finding(
                    "tsa-escape", rel, line_no,
                    "MOQO_NO_THREAD_SAFETY_ANALYSIS without a justifying "
                    "\"TSA:\" comment"))
            escapes.append((rel, line_no))


def check_failpoints(root, files, findings):
    try:
        readme = read(root, README_REL)
    except FileNotFoundError:
        readme = ""
    catalog = set(re.findall(r"^\|\s*`([\w.]+)`", readme, re.M))
    # The net.read / net.write row shares one cell.
    for cell in re.findall(r"^\|\s*`([\w.]+)`\s*/\s*`([\w.]+)`", readme, re.M):
        catalog.update(cell)
    seen = {}
    for rel in files:
        if rel == "src/rt/failpoint.h":
            continue  # The macro definitions themselves.
        lines = read(root, rel).splitlines()
        for idx, raw in enumerate(lines):
            for site in FAILPOINT_RE.findall(raw):
                if site in seen:
                    findings.append(Finding(
                        "failpoint-site", rel, idx + 1,
                        f"duplicate failpoint site \"{site}\" (first at "
                        f"{seen[site]}); site names must be unique"))
                else:
                    seen[site] = f"{rel}:{idx + 1}"
                if site not in catalog:
                    findings.append(Finding(
                        "failpoint-site", rel, idx + 1,
                        f"failpoint site \"{site}\" missing from the README "
                        f"failpoint catalog"))


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repo root (default: two levels above this file)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="refreeze tools/lint/frozen_enums.json and exit")
    parser.add_argument("--max-tsa-escapes", type=int, default=5,
                        help="cap on MOQO_NO_THREAD_SAFETY_ANALYSIS uses")
    args = parser.parse_args()

    root = args.root or os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    baseline_path = os.path.join(root, BASELINE_REL)

    if args.write_baseline:
        current = parse_frozen(root)
        os.makedirs(os.path.dirname(baseline_path), exist_ok=True)
        with open(baseline_path, "w", encoding="utf-8") as f:
            json.dump(current, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {baseline_path}")
        return 0

    findings, escapes = [], []
    files = list(iter_source_files(root))
    check_frozen_enums(root, baseline_path, findings)
    for rel in files:
        check_file(root, rel, findings, escapes)
    check_failpoints(root, files, findings)
    if len(escapes) > args.max_tsa_escapes:
        rel, line = escapes[-1]
        findings.append(Finding(
            "tsa-escape", rel, line,
            f"{len(escapes)} thread-safety escapes exceed the cap of "
            f"{args.max_tsa_escapes}; fix the analysis instead"))

    for finding in findings:
        print(finding)
    if findings:
        print(f"moqo_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"moqo_lint: clean ({len(files)} files, "
          f"{len(escapes)} TSA escapes)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
