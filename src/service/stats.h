// Copyright (c) 2026 moqo authors. MIT license.
//
// ServiceStatsRegistry: counters and per-algorithm latency aggregates of
// the optimization service, consumed by the bench harness and exposed for
// monitoring. Counters are lock-free atomics; latency recorders take one
// uncontended mutex per algorithm (recording happens once per request, far
// off the optimizer's hot path).

#ifndef MOQO_SERVICE_STATS_H_
#define MOQO_SERVICE_STATS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "core/algorithm.h"

namespace moqo {

/// Latency aggregate for one algorithm.
struct LatencyStats {
  uint64_t count = 0;
  double total_ms = 0;
  double max_ms = 0;

  double MeanMs() const { return count == 0 ? 0 : total_ms / count; }
};

/// Plain-value snapshot of the registry, safe to copy around.
struct ServiceStatsSnapshot {
  uint64_t requests_total = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  /// Cache hits whose preference matched the cached selection verbatim.
  uint64_t exact_hits = 0;
  /// Cache hits resolved by SelectPlan over the shared PlanSet (the
  /// preference — weights/bounds — differed from the cached one).
  uint64_t frontier_hits = 0;
  /// Requests that waited on an identical in-flight miss instead of
  /// optimizing again, then selected from the primary's frontier.
  uint64_t coalesced_hits = 0;
  uint64_t admissions_rejected = 0;
  uint64_t deadline_timeouts = 0;  ///< Requests degraded to quick mode.
  /// Invalid requests (null query) and optimizer failures (e.g. OOM) —
  /// distinct from load shedding.
  uint64_t internal_errors = 0;
  uint64_t completed = 0;
  uint64_t cache_evictions = 0;
  /// Resident cache footprint (sampled from the PlanCache at snapshot
  /// time): entry count, accounted bytes, and the summed frontier sizes of
  /// the cached PlanSets.
  size_t cache_entries = 0;
  size_t cache_bytes = 0;
  size_t cached_frontier_plans = 0;
  /// Cross-query subplan memo counters (sampled from the SubplanMemo at
  /// snapshot time; all zero when the memo is disabled). Hits/misses are
  /// per *table set*, not per request — one optimization probes once per
  /// big-enough table set of its DP.
  uint64_t memo_hits = 0;
  uint64_t memo_misses = 0;
  uint64_t memo_insertions = 0;
  uint64_t memo_evictions = 0;
  uint64_t memo_admission_rejects = 0;
  uint64_t memo_invalidations = 0;
  size_t memo_entries = 0;
  size_t memo_bytes = 0;
  /// Anytime-session counters (PR 5). `sessions_opened` counts public
  /// OpenFrontier calls (the SubmitAndWait shim's internal one-step
  /// sessions count as requests, not sessions); `sessions_coalesced`
  /// counts opens (including shim calls) that attached to an already
  /// running identical refinement instead of starting their own.
  uint64_t sessions_opened = 0;
  uint64_t sessions_coalesced = 0;
  /// Refinement ladders currently running (gauge; each holds one
  /// admission slot).
  uint64_t sessions_active = 0;
  /// Completed ladder rungs across all sessions (includes the shim's
  /// one-step rungs).
  uint64_t refinement_steps = 0;
  /// Per-rung latency aggregate over all refinement steps.
  LatencyStats step_latency;
  /// Indexed by static_cast<int>(AlgorithmKind).
  std::array<LatencyStats, kNumAlgorithmKinds> latency_by_algorithm;

  double CacheHitRate() const {
    const uint64_t lookups = cache_hits + cache_misses;
    return lookups == 0 ? 0 : static_cast<double>(cache_hits) / lookups;
  }

  /// Fraction of cache hits that needed only O(|frontier|) re-selection.
  double FrontierHitRate() const {
    const uint64_t hits = exact_hits + frontier_hits;
    return hits == 0 ? 0 : static_cast<double>(frontier_hits) / hits;
  }

  /// Fraction of table-set probes answered by the cross-query memo.
  double MemoHitRate() const {
    const uint64_t lookups = memo_hits + memo_misses;
    return lookups == 0 ? 0 : static_cast<double>(memo_hits) / lookups;
  }

  /// Mean plans per cached entry (how big the resident frontiers are).
  double MeanCachedFrontier() const {
    return cache_entries == 0
               ? 0
               : static_cast<double>(cached_frontier_plans) / cache_entries;
  }

  /// Multi-line human-readable rendering for the bench harness.
  std::string ToString() const;
};

class ServiceStatsRegistry {
 public:
  static constexpr int kNumAlgorithms = kNumAlgorithmKinds;

  void RecordRequest() { requests_total_.fetch_add(1, kRelaxed); }
  void RecordAdmissionRejected() {
    admissions_rejected_.fetch_add(1, kRelaxed);
  }
  void RecordInternalError() { internal_errors_.fetch_add(1, kRelaxed); }
  void RecordDeadlineTimeout() { deadline_timeouts_.fetch_add(1, kRelaxed); }
  void RecordCompleted() { completed_.fetch_add(1, kRelaxed); }
  void RecordExactHit() { exact_hits_.fetch_add(1, kRelaxed); }
  void RecordFrontierHit() { frontier_hits_.fetch_add(1, kRelaxed); }
  void RecordCoalescedHit() { coalesced_hits_.fetch_add(1, kRelaxed); }
  void RecordSessionOpened() { sessions_opened_.fetch_add(1, kRelaxed); }
  void RecordSessionCoalesced() {
    sessions_coalesced_.fetch_add(1, kRelaxed);
  }
  void RecordSessionStarted() { sessions_active_.fetch_add(1, kRelaxed); }
  void RecordSessionFinished() { sessions_active_.fetch_sub(1, kRelaxed); }

  /// Records one completed refinement step (ladder rung) and its latency.
  void RecordRefinementStep(double ms);

  /// Records one fresh (non-cached) optimization's service-side latency.
  void RecordLatency(AlgorithmKind algorithm, double ms);

  /// The cache_* snapshot fields are sampled from the PlanCache (the
  /// single source of truth for lookup counters) by the service at
  /// snapshot time; this registry leaves them zero.
  ServiceStatsSnapshot Snapshot() const;

 private:
  static constexpr auto kRelaxed = std::memory_order_relaxed;

  std::atomic<uint64_t> requests_total_{0};
  std::atomic<uint64_t> exact_hits_{0};
  std::atomic<uint64_t> frontier_hits_{0};
  std::atomic<uint64_t> coalesced_hits_{0};
  std::atomic<uint64_t> admissions_rejected_{0};
  std::atomic<uint64_t> internal_errors_{0};
  std::atomic<uint64_t> deadline_timeouts_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> sessions_opened_{0};
  std::atomic<uint64_t> sessions_coalesced_{0};
  std::atomic<uint64_t> sessions_active_{0};
  std::atomic<uint64_t> refinement_steps_{0};

  struct LatencyCell {
    std::mutex mu;
    LatencyStats stats;
  };
  mutable std::array<LatencyCell, kNumAlgorithms> latency_;
  mutable LatencyCell step_latency_;
};

}  // namespace moqo

#endif  // MOQO_SERVICE_STATS_H_
