// Copyright (c) 2026 moqo authors. MIT license.
//
// ServiceStatsRegistry: counters and per-algorithm latency histograms of
// the optimization service, consumed by the bench harness and exposed for
// monitoring. Counters are lock-free atomics; latencies go into
// log-bucketed concurrent histograms (obs/histogram.h), so the snapshot
// reports p50/p95/p99 — the count/total/max LatencyStats aggregate this
// registry used through PR 5 is gone (PR 6). First-frontier latency (time
// from session open to the first published frontier) is a first-class
// histogram here: it is the anytime API's headline metric and the network
// front end's acceptance gauge (ROADMAP).

#ifndef MOQO_SERVICE_STATS_H_
#define MOQO_SERVICE_STATS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "core/algorithm.h"
#include "obs/histogram.h"
#include "obs/slow_query_log.h"

namespace moqo {

/// Plain-value snapshot of the registry, safe to copy around.
struct ServiceStatsSnapshot {
  uint64_t requests_total = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  /// Cache hits whose preference matched the cached selection verbatim.
  uint64_t exact_hits = 0;
  /// Cache hits resolved by SelectPlan over the shared PlanSet (the
  /// preference — weights/bounds — differed from the cached one).
  uint64_t frontier_hits = 0;
  /// Requests that waited on an identical in-flight miss instead of
  /// optimizing again, then selected from the primary's frontier.
  uint64_t coalesced_hits = 0;
  /// Cache hits served from the RAM→disk tier (the entry had been evicted
  /// from RAM, demoted to a segment file, and was promoted back by this
  /// probe). Labeled by provenance: a tier hit counts here — not in
  /// exact/frontier hits — whatever the preference match.
  uint64_t tier_hits = 0;
  uint64_t admissions_rejected = 0;
  uint64_t deadline_timeouts = 0;  ///< Requests degraded to quick mode.
  /// Invalid requests (null query) and optimizer failures (e.g. OOM) —
  /// distinct from load shedding.
  uint64_t internal_errors = 0;
  uint64_t completed = 0;
  uint64_t cache_evictions = 0;
  /// Resident cache footprint (sampled from the PlanCache at snapshot
  /// time): entry count, accounted bytes, and the summed frontier sizes of
  /// the cached PlanSets.
  size_t cache_entries = 0;
  size_t cache_bytes = 0;
  size_t cached_frontier_plans = 0;
  /// Cross-query subplan memo counters (sampled from the SubplanMemo at
  /// snapshot time; all zero when the memo is disabled). Hits/misses are
  /// per *table set*, not per request — one optimization probes once per
  /// big-enough table set of its DP.
  uint64_t memo_hits = 0;
  uint64_t memo_misses = 0;
  uint64_t memo_insertions = 0;
  uint64_t memo_evictions = 0;
  uint64_t memo_admission_rejects = 0;
  uint64_t memo_invalidations = 0;
  size_t memo_entries = 0;
  size_t memo_bytes = 0;
  /// Anytime-session counters (PR 5). `sessions_opened` counts public
  /// OpenFrontier calls (the SubmitAndWait shim's internal one-step
  /// sessions count as requests, not sessions); `sessions_coalesced`
  /// counts opens (including shim calls) that attached to an already
  /// running identical refinement instead of starting their own.
  uint64_t sessions_opened = 0;
  uint64_t sessions_coalesced = 0;
  /// Refinement ladders currently running (gauge; each holds one
  /// admission slot).
  uint64_t sessions_active = 0;
  /// Completed ladder rungs across all sessions (includes the shim's
  /// one-step rungs).
  uint64_t refinement_steps = 0;
  /// Ladders ended early by priority admission under overload (PR 7):
  /// the session kept everything it had published, but its remaining
  /// refinement rungs were shed so first-frontier work never queues
  /// behind background refinement. Distinct from admissions_rejected —
  /// a shed caller still got an answer.
  uint64_t refinement_sheds = 0;
  /// Sessions force-finished DONE{degraded} by the rung watchdog because
  /// a rung exceeded step_deadline_ms * watchdog_factor (PR 8).
  uint64_t watchdog_fires = 0;
  /// Optimize-pool state sampled at snapshot time: tasks waiting for a
  /// worker and the queue-wait distribution they experienced.
  size_t pool_queue_depth = 0;
  HistogramSnapshot pool_queue_wait;
  /// Per-rung latency over all refinement steps.
  HistogramSnapshot step_latency;
  /// Session-open → first published frontier (the anytime API's headline
  /// latency; ROADMAP's net-front-end acceptance metric is its p99).
  HistogramSnapshot first_frontier_latency;
  /// Indexed by static_cast<int>(AlgorithmKind).
  std::array<HistogramSnapshot, kNumAlgorithmKinds> latency_by_algorithm;
  /// Worst-N finished requests, slowest first (sampled at snapshot time).
  std::vector<SlowQueryEntry> slow_queries;

  double CacheHitRate() const {
    const uint64_t lookups = cache_hits + cache_misses;
    return lookups == 0 ? 0 : static_cast<double>(cache_hits) / lookups;
  }

  /// Fraction of cache hits that needed only O(|frontier|) re-selection.
  double FrontierHitRate() const {
    const uint64_t hits = exact_hits + frontier_hits;
    return hits == 0 ? 0 : static_cast<double>(frontier_hits) / hits;
  }

  /// Fraction of table-set probes answered by the cross-query memo.
  double MemoHitRate() const {
    const uint64_t lookups = memo_hits + memo_misses;
    return lookups == 0 ? 0 : static_cast<double>(memo_hits) / lookups;
  }

  /// Mean plans per cached entry (how big the resident frontiers are).
  double MeanCachedFrontier() const {
    return cache_entries == 0
               ? 0
               : static_cast<double>(cached_frontier_plans) / cache_entries;
  }

  /// Multi-line human-readable rendering for the bench harness.
  std::string ToString() const;
};

class ServiceStatsRegistry {
 public:
  static constexpr int kNumAlgorithms = kNumAlgorithmKinds;

  void RecordRequest() { requests_total_.fetch_add(1, kRelaxed); }
  void RecordAdmissionRejected() {
    admissions_rejected_.fetch_add(1, kRelaxed);
  }
  void RecordInternalError() { internal_errors_.fetch_add(1, kRelaxed); }
  void RecordDeadlineTimeout() { deadline_timeouts_.fetch_add(1, kRelaxed); }
  void RecordCompleted() { completed_.fetch_add(1, kRelaxed); }
  void RecordExactHit() { exact_hits_.fetch_add(1, kRelaxed); }
  void RecordFrontierHit() { frontier_hits_.fetch_add(1, kRelaxed); }
  void RecordCoalescedHit() { coalesced_hits_.fetch_add(1, kRelaxed); }
  void RecordTierHit() { tier_hits_.fetch_add(1, kRelaxed); }
  void RecordSessionOpened() { sessions_opened_.fetch_add(1, kRelaxed); }
  void RecordSessionCoalesced() {
    sessions_coalesced_.fetch_add(1, kRelaxed);
  }
  void RecordSessionStarted() { sessions_active_.fetch_add(1, kRelaxed); }
  void RecordSessionFinished() { sessions_active_.fetch_sub(1, kRelaxed); }
  void RecordRefinementShed() { refinement_sheds_.fetch_add(1, kRelaxed); }
  void RecordWatchdogFire() { watchdog_fires_.fetch_add(1, kRelaxed); }

  /// Records one completed refinement step (ladder rung) and its latency.
  void RecordRefinementStep(double ms) {
    refinement_steps_.fetch_add(1, kRelaxed);
    step_latency_.Record(ms);
  }

  /// Records one fresh (non-cached) optimization's service-side latency.
  void RecordLatency(AlgorithmKind algorithm, double ms) {
    latency_[static_cast<int>(algorithm)].Record(ms);
  }

  /// Records a session's open → first published frontier latency.
  void RecordFirstFrontier(double ms) { first_frontier_.Record(ms); }

  /// The cache_*, memo_*, pool_*, and slow_queries snapshot fields are
  /// sampled from their owning components (PlanCache, SubplanMemo,
  /// ThreadPool, SlowQueryLog) by the service at snapshot time; this
  /// registry leaves them zero/empty.
  ServiceStatsSnapshot Snapshot() const;

 private:
  static constexpr auto kRelaxed = std::memory_order_relaxed;

  std::atomic<uint64_t> requests_total_{0};
  std::atomic<uint64_t> exact_hits_{0};
  std::atomic<uint64_t> frontier_hits_{0};
  std::atomic<uint64_t> coalesced_hits_{0};
  std::atomic<uint64_t> tier_hits_{0};
  std::atomic<uint64_t> admissions_rejected_{0};
  std::atomic<uint64_t> internal_errors_{0};
  std::atomic<uint64_t> deadline_timeouts_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> sessions_opened_{0};
  std::atomic<uint64_t> sessions_coalesced_{0};
  std::atomic<uint64_t> sessions_active_{0};
  std::atomic<uint64_t> refinement_steps_{0};
  std::atomic<uint64_t> refinement_sheds_{0};
  std::atomic<uint64_t> watchdog_fires_{0};

  std::array<LatencyHistogram, kNumAlgorithms> latency_;
  LatencyHistogram step_latency_;
  LatencyHistogram first_frontier_;
};

}  // namespace moqo

#endif  // MOQO_SERVICE_STATS_H_
