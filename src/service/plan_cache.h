// Copyright (c) 2026 moqo authors. MIT license.
//
// PlanCache: a sharded, thread-safe LRU cache of optimization frontiers
// keyed by ProblemSignature, with relaxed alpha identity.
//
// The Pareto-frontier computation that MOQO amortizes here is orders of
// magnitude more expensive than a lookup, so the cache sits in front of the
// worker pool and resolves repeated or structurally identical requests
// without re-running the DP. Since PR 2 the cached value is a
// CachedFrontier: the cold run's immutable OptimizerResult (which owns the
// full PlanSet) plus the preference its stored selection answers — an equal
// preference is an *exact hit* (the stored selection is reused verbatim),
// any other preference is a *frontier hit* (O(|frontier|) SelectPlan over
// the shared PlanSet).
//
// Since PR 5 identity is additionally relaxed over the precision alpha:
// signatures of frontier-producing algorithms are alpha-free
// (service/signature.h) and each entry is tagged with the alpha its run
// *achieved*. A lookup passes the precision it needs; an entry whose
// achieved alpha is at most that bound serves the request — an
// alpha-approximate Pareto set is an alpha'-approximate Pareto set for
// every alpha' >= alpha, so a tighter frontier always answers a looser
// question. Refreshes follow the same lattice: re-inserting under an
// existing key replaces the stored value only when the incoming entry is
// at least as tight, so a session's refinement ladder monotonically
// upgrades the entry and a later coarse run can never downgrade it.
//
// Sharding, LRU, and the byte budget are the shared ShardedLru machinery
// (util/sharded_lru.h). Results own their plan storage via
// shared_ptr<const PlanSet>, so a cached plan stays valid for as long as
// any response still references it, even after eviction.

#ifndef MOQO_SERVICE_PLAN_CACHE_H_
#define MOQO_SERVICE_PLAN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>

#include "core/optimizer.h"
#include "service/signature.h"
#include "util/sharded_lru.h"

namespace moqo {

namespace persist {
class DiskTier;
}  // namespace persist

/// One cached optimization outcome: the run's result (sharing the
/// PlanSet), the preference that produced its stored selection, and the
/// approximation guarantee the run achieved.
struct CachedFrontier {
  std::shared_ptr<const OptimizerResult> result;
  /// The preference `result`'s plan/cost/weighted_cost answer. Requests
  /// with a different preference re-select over result->plan_set.
  WeightVector weights;
  BoundVector bounds;
  /// The alpha guarantee of result->plan_set (1.0 for exact runs). The
  /// entry serves any request whose required alpha is >= this. When the
  /// service compacts cached frontiers (max_cached_frontier), the stored
  /// copy's true guarantee is alpha*(1+epsilon) while the tag keeps the
  /// run's alpha — the documented compaction tradeoff; see
  /// OptimizationService::MakeCacheEntry.
  double achieved_alpha = 1.0;
};

class PlanCache {
 public:
  using Options = ShardedLru<ProblemSignature,
                             std::shared_ptr<const CachedFrontier>>::Options;

  /// Counter snapshot for the stats registry / bench harness.
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    size_t entries = 0;
    /// Accounted bytes of all resident entries.
    size_t bytes = 0;
    /// Sum of resident entries' frontier sizes (plans per cached PlanSet);
    /// bytes / entries and frontier_plans / entries give the per-entry
    /// means the stats registry surfaces.
    size_t frontier_plans = 0;
    /// Lookups that missed RAM but were served (and promoted back) from
    /// the attached disk tier. Counted inside `hits` as well — a tier hit
    /// is reclassified from the miss it first recorded.
    uint64_t tier_hits = 0;
  };

  /// Accepts any achieved alpha (plain keyed lookup).
  static constexpr double kAnyAlpha = std::numeric_limits<double>::infinity();

  PlanCache();  ///< Default Options.
  explicit PlanCache(const Options& options);

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Returns the cached frontier for `signature` (promoting it to
  /// most-recently-used) if its achieved alpha is <= `max_alpha`, nullptr
  /// otherwise. A present-but-too-loose entry counts as (and behaves like)
  /// a miss; the caller's tighter run then upgrades it via Insert.
  /// `record_stats` = false skips the hit/miss counters — used by the
  /// service's coalescing re-probe so each request records exactly one
  /// lookup. With a tier attached, a RAM miss probes the disk tier; a
  /// tier hit promotes the entry back into RAM, reclassifies the recorded
  /// miss as a hit (only when `record_stats` — an uncounted probe must
  /// stay uncounted), and sets `*from_tier` so the service can surface
  /// CacheOutcome::kTierHit.
  std::shared_ptr<const CachedFrontier> Lookup(
      const ProblemSignature& signature, double max_alpha = kAnyAlpha,
      bool record_stats = true, bool* from_tier = nullptr);

  /// Converts one recorded miss into a hit. The service calls this when
  /// its uncounted coalescing re-probe finds an entry inserted after the
  /// request's first (miss-counted) lookup, so that request's net
  /// contribution is one hit — preserving both
  /// hits + misses == lookups and hits == exact_hits + frontier_hits.
  void ReclassifyMissAsHit() { lru_.ReclassifyMissAsHit(); }

  /// Inserts the frontier for `signature`, evicting the least-recently-
  /// used entries of the target shard when its slice is full. An existing
  /// entry is replaced only if `frontier` is at least as tight
  /// (achieved_alpha <=); a looser re-insert just refreshes recency —
  /// refinement only ever upgrades an entry.
  void Insert(const ProblemSignature& signature,
              std::shared_ptr<const CachedFrontier> frontier);

  /// Attaches the RAM→disk demotion tier: evicted entries are encoded and
  /// appended to `tier` (persist/frontier_codec.h), RAM misses probe it.
  /// Call before concurrent use; passing nullptr detaches.
  void AttachTier(std::shared_ptr<persist::DiskTier> tier);

  /// Visits every resident entry as fn(signature, frontier_ptr, bytes);
  /// see ShardedLru::ForEach for locking. The snapshot exporter.
  template <typename Fn>
  void ForEach(Fn fn) const {
    lru_.ForEach(fn);
  }

  Stats GetStats() const;
  size_t size() const { return lru_.size(); }
  void Clear() { lru_.Clear(); }

  int num_shards() const { return lru_.num_shards(); }

 private:
  ShardedLru<ProblemSignature, std::shared_ptr<const CachedFrontier>> lru_;
  std::shared_ptr<persist::DiskTier> tier_;
  std::atomic<uint64_t> tier_hits_{0};
};

}  // namespace moqo

#endif  // MOQO_SERVICE_PLAN_CACHE_H_
