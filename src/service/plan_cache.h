// Copyright (c) 2026 moqo authors. MIT license.
//
// PlanCache: a sharded, thread-safe LRU cache of optimization frontiers
// keyed by ProblemSignature.
//
// The Pareto-frontier computation that MOQO amortizes here is orders of
// magnitude more expensive than a lookup, so the cache sits in front of the
// worker pool and resolves repeated or structurally identical requests
// without re-running the DP. Since PR 2 the cached value is a
// CachedFrontier: the cold run's immutable OptimizerResult (which owns the
// full PlanSet) plus the preference its stored selection answers — an equal
// preference is an *exact hit* (the stored selection is reused verbatim),
// any other preference is a *frontier hit* (O(|frontier|) SelectPlan over
// the shared PlanSet). Sharding bounds lock contention under concurrent
// traffic: the signature hash routes each key to one of N independently
// locked shards, each with its own LRU list and capacity slice. Results
// own their plan storage via shared_ptr<const PlanSet>, so a cached plan
// stays valid for as long as any response still references it, even after
// eviction.

#ifndef MOQO_SERVICE_PLAN_CACHE_H_
#define MOQO_SERVICE_PLAN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/optimizer.h"
#include "service/signature.h"

namespace moqo {

/// One cached optimization outcome: the cold run's result (sharing the
/// PlanSet) plus the preference that produced its stored selection.
struct CachedFrontier {
  std::shared_ptr<const OptimizerResult> result;
  /// The preference `result`'s plan/cost/weighted_cost answer. Requests
  /// with a different preference re-select over result->plan_set.
  WeightVector weights;
  BoundVector bounds;
};

class PlanCache {
 public:
  struct Options {
    /// Total entries across all shards (secondary limit; see
    /// capacity_bytes).
    size_t capacity = 1024;
    /// Byte budget across all shards, accounted by the entries' PlanSet
    /// ApproxBytes() plus key/index overhead; 0 = unlimited (entry-count
    /// eviction only). A PlanSet footprint is proportional to its frontier,
    /// so this bounds resident memory where an entry cap cannot: frontier
    /// sizes vary by orders of magnitude across specs (Section 5.1). The
    /// primary limit when set; the entry cap stays as a secondary limit.
    size_t capacity_bytes = 0;
    /// Number of independently locked shards; rounded up to a power of two.
    int shards = 8;
  };

  /// Counter snapshot for the stats registry / bench harness.
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    size_t entries = 0;
    /// Accounted bytes of all resident entries.
    size_t bytes = 0;
    /// Sum of resident entries' frontier sizes (plans per cached PlanSet);
    /// bytes / entries and frontier_plans / entries give the per-entry
    /// means the stats registry surfaces.
    size_t frontier_plans = 0;
  };

  PlanCache();  ///< Default Options.
  explicit PlanCache(const Options& options);

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Returns the cached frontier for `signature` (promoting it to
  /// most-recently-used) or nullptr on miss. `record_stats` = false skips
  /// the hit/miss counters — used by the service's coalescing re-probe so
  /// each request records exactly one lookup.
  std::shared_ptr<const CachedFrontier> Lookup(
      const ProblemSignature& signature, bool record_stats = true);

  /// Converts one recorded miss into a hit. The service calls this when
  /// its uncounted coalescing re-probe finds an entry inserted after the
  /// request's first (miss-counted) lookup, so that request's net
  /// contribution is one hit — preserving both
  /// hits + misses == lookups and hits == exact_hits + frontier_hits.
  void ReclassifyMissAsHit() {
    misses_.fetch_sub(1, std::memory_order_relaxed);
    hits_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Inserts (or refreshes) the frontier for `signature`, evicting the
  /// least-recently-used entry of the target shard when its slice is full.
  void Insert(const ProblemSignature& signature,
              std::shared_ptr<const CachedFrontier> frontier);

  Stats GetStats() const;
  size_t size() const;
  void Clear();

  int num_shards() const { return static_cast<int>(shards_.size()); }

 private:
  /// Signatures embed the full canonical encoding (potentially KBs once
  /// catalog statistics are included), so each is stored exactly once: as
  /// the map key. The LRU list holds pointers to map keys — stable, since
  /// unordered_map never moves nodes.
  using LruList = std::list<const ProblemSignature*>;

  struct Entry {
    std::shared_ptr<const CachedFrontier> frontier;
    LruList::iterator lru_pos;
    size_t bytes = 0;          ///< Accounted at insert time.
    int frontier_size = 0;     ///< Plans in the entry's PlanSet.
  };

  struct Shard {
    std::mutex mu;
    LruList lru;  ///< Front = most recently used.
    std::unordered_map<ProblemSignature, Entry> index;
    size_t capacity = 0;
    size_t capacity_bytes = 0;  ///< 0 = no byte limit for this shard.
    size_t bytes = 0;           ///< Accounted bytes of resident entries.
    size_t frontier_plans = 0;  ///< Sum of resident frontier sizes.
  };

  /// Removes `shard`'s LRU entry, maintaining the byte/frontier accounting
  /// and the eviction counter. Caller holds the shard lock; lru non-empty.
  void EvictBack(Shard* shard);

  /// Evicts LRU entries until `incoming_bytes` more fit within both
  /// limits. Caller holds the shard lock.
  void EvictForSpace(Shard* shard, size_t incoming_bytes);

  Shard& ShardFor(const ProblemSignature& signature) {
    // Multiply then fold the high bits down so every shard is reachable
    // regardless of shard count, and shard choice stays decorrelated from
    // the hash-table bucket choice inside the shard.
    uint64_t mixed = signature.hash * 0x9E3779B97F4A7C15ull;
    mixed ^= mixed >> 32;
    return *shards_[mixed & shard_mask_];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  uint64_t shard_mask_ = 0;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> insertions_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace moqo

#endif  // MOQO_SERVICE_PLAN_CACHE_H_
