// Copyright (c) 2026 moqo authors. MIT license.
//
// The service's request/response vocabulary, shared by the one-shot API
// (Submit/SubmitAndWait) and the anytime session API (OpenFrontier). Split
// out of optimization_service.h so FrontierSession can speak the same
// types without a header cycle.
//
// A request is a (ProblemSpec, Preference) pair. The spec — query +
// objectives + algorithm/alpha — determines the *frontier* (the
// approximate Pareto set); the preference — weights + bounds + deadline —
// only determines which of its plans is selected. That split is what makes
// frontiers cacheable, preferences answerable in O(|frontier|), and
// refinement sessions preference-free.

#ifndef MOQO_SERVICE_REQUEST_H_
#define MOQO_SERVICE_REQUEST_H_

#include <cstdint>
#include <memory>
#include <optional>

#include "core/algorithm.h"
#include "core/optimizer.h"
#include "core/plan_set.h"

namespace moqo {

/// WHAT to optimize: everything that determines the frontier, and nothing
/// that merely picks a plan from it. Two requests with equal specs share
/// one cached PlanSet regardless of their preferences. The service shares
/// ownership of the query for the lifetime of the request (wrap long-lived
/// queries the caller owns with UnownedQuery()).
struct ProblemSpec {
  std::shared_ptr<const Query> query;
  ObjectiveSet objectives;
  /// Overrides for the policy layer's auto-selection. Note: kIra and
  /// kWeightedSum produce preference-dependent output, so their cache
  /// entries are shared only between identical preferences (and they
  /// cannot back a FrontierSession, which is preference-free by design).
  std::optional<AlgorithmKind> algorithm;
  std::optional<double> alpha;
  /// Override for the policy's intra-query DP parallelism (1 = force
  /// serial). Never part of the cache key: the frontier is identical for
  /// every value.
  std::optional<int> parallelism;
};

/// HOW to choose from the frontier: the request-time scalarization inputs
/// plus the latency budget. Changing only the preference on a cached spec
/// is a frontier hit — O(|frontier|) SelectPlan, no optimizer run.
struct Preference {
  /// Defaults to uniform over the spec's objectives when empty.
  WeightVector weights;
  /// Empty or all-infinite = weighted MOQO; finite bounds are honored at
  /// selection time (bounded SelectBest of Algorithm 1).
  BoundVector bounds;
  /// Total budget (queue wait + optimization) in ms; -1 = service default.
  int64_t deadline_ms = -1;
};

/// One optimization request: a spec and a preference over its frontier.
struct ServiceRequest {
  ProblemSpec spec;
  Preference preference;
};

enum class ResponseStatus : uint8_t {
  /// Full optimization (or cache/coalesced hit): the guarantee of the
  /// chosen algorithm holds.
  kCompleted,
  /// Deadline expired before or during optimization; the result carries
  /// the Section 5.1 quick-mode plan (valid, but no approximation
  /// guarantee).
  kCompletedQuick,
  /// Shed by admission control, submitted after shutdown, or failed with
  /// an internal optimizer error (e.g. out of memory); no result.
  kRejected,
};

/// How (and whether) the cache answered the request.
enum class CacheOutcome : uint8_t {
  kMiss,          ///< Ran the optimizer.
  kExactHit,      ///< Cached entry with the same preference: reused verbatim.
  kFrontierHit,   ///< Cached PlanSet, new preference: O(|frontier|) selection.
  kCoalescedHit,  ///< Waited on an identical in-flight miss, then selected.
  kTierHit,       ///< Missed RAM, served from the disk tier (and promoted).
};

struct ServiceResponse {
  ResponseStatus status = ResponseStatus::kRejected;
  CacheOutcome cache = CacheOutcome::kMiss;
  AlgorithmKind algorithm = AlgorithmKind::kRta;
  /// The approximation guarantee of the served frontier. A relaxed-alpha
  /// cache hit reports the *achieved* (tighter) alpha, which may be below
  /// the requested one.
  double alpha = 1.0;
  /// Never null unless status == kRejected. Carries the shared PlanSet
  /// (result->plan_set) and the preference's selection from it.
  std::shared_ptr<const OptimizerResult> result;
  /// Time from Submit() to worker pickup (0 for cache hits / rejects).
  double queue_ms = 0;
  /// Total time from Submit() to response.
  double service_ms = 0;

  /// True for exact, frontier, and disk-tier hits (not for coalesced
  /// waits: those did wait for an optimizer run, just not their own).
  bool cache_hit() const {
    return cache == CacheOutcome::kExactHit ||
           cache == CacheOutcome::kFrontierHit ||
           cache == CacheOutcome::kTierHit;
  }

  /// The full approximate Pareto set behind this response, shared with the
  /// cache and any sibling responses; null iff rejected.
  std::shared_ptr<const PlanSet> plan_set() const {
    return result ? result->plan_set : nullptr;
  }
};

/// Wraps a caller-owned query (which must outlive all requests using it)
/// in a non-owning shared_ptr.
inline std::shared_ptr<const Query> UnownedQuery(const Query* query) {
  return std::shared_ptr<const Query>(query, [](const Query*) {});
}

}  // namespace moqo

#endif  // MOQO_SERVICE_REQUEST_H_
