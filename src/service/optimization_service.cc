// Copyright (c) 2026 moqo authors. MIT license.

#include "service/optimization_service.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <chrono>
#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <utility>

#include "model/cost_model.h"
#include "persist/disk_tier.h"
#include "persist/frontier_codec.h"
#include "persist/plan_set_codec.h"
#include "persist/snapshot.h"
#include "rt/failpoint.h"
#include "util/deadline.h"

namespace moqo {

namespace {

constexpr double kInfiniteAlpha = std::numeric_limits<double>::infinity();

/// mkdir -p, best-effort: any real failure surfaces when the tier or the
/// snapshot writer tries to create files inside.
void MakePersistDir(const std::string& path) {
  for (size_t i = 1; i < path.size(); ++i) {
    if (path[i] == '/') ::mkdir(path.substr(0, i).c_str(), 0755);
  }
  ::mkdir(path.c_str(), 0755);
}

int64_t SteadyNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int ResolveWorkers(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// EXA and Selinger are exact regardless of the requested precision, so
/// their cache entries are tagged alpha = 1 — maximally reusable under the
/// relaxed identity.
double AchievedAlpha(AlgorithmKind algorithm, double alpha) {
  const bool exact = algorithm == AlgorithmKind::kExa ||
                     algorithm == AlgorithmKind::kSelinger;
  return exact ? 1.0 : alpha;
}

/// The session's precision schedule: geometric in log-alpha from `start`
/// down to `target` in at most `max_steps` rungs, strictly decreasing,
/// ending bit-exactly at the target. start <= target collapses to the
/// single-rung {target} ladder (the SubmitAndWait shim).
std::vector<double> MakeAlphaLadder(double start, double target,
                                    int max_steps) {
  if (target < 1.0) target = 1.0;
  if (max_steps < 1) max_steps = 1;
  if (start <= target || max_steps == 1) return {target};
  std::vector<double> ladder;
  ladder.reserve(max_steps);
  const double log_start = std::log(start);
  const double log_target = std::log(target);
  for (int i = 0; i < max_steps; ++i) {
    const double t = static_cast<double>(i) / (max_steps - 1);
    ladder.push_back(std::exp(log_start + (log_target - log_start) * t));
  }
  ladder.back() = target;
  return ladder;
}

/// Exact identity of one refinement: the alpha-free cache key extended
/// with every rung precision and the per-rung budget. Sessions coalesce
/// only when the whole schedule matches — sharing a ladder that refines
/// differently would change what a caller observes.
ProblemSignature SessionKey(const ProblemSignature& base,
                            const std::vector<double>& ladder,
                            int64_t step_deadline_ms) {
  ProblemSignature key = base;
  for (double alpha : ladder) key = ExtendSignature(key, alpha);
  return ExtendSignature(key, static_cast<double>(step_deadline_ms));
}

/// Builds a result over `plan_set` with `base`'s cold-run metrics and the
/// plan the preference selects from it. O(|plan_set|), no optimizer.
std::shared_ptr<const OptimizerResult> ResultOverPlanSet(
    const std::shared_ptr<const OptimizerResult>& base,
    std::shared_ptr<const PlanSet> plan_set, const WeightVector& weights,
    const BoundVector& bounds) {
  auto result = std::make_shared<OptimizerResult>();
  result->plan_set = std::move(plan_set);
  result->metrics = base->metrics;
  const PlanSelection selection =
      SelectPlan(*result->plan_set, weights, bounds);
  if (selection.plan != nullptr) {
    result->plan = selection.plan;
    result->cost = selection.cost;
    result->weighted_cost = selection.weighted_cost;
    result->respects_bounds =
        bounds.size() == 0 || bounds.Respects(selection.cost);
  }
  return result;
}

/// Scalarizes `base`'s shared PlanSet for a new preference: same frontier
/// and cold-run metrics, re-selected plan. O(|frontier|), no optimizer.
std::shared_ptr<const OptimizerResult> ReselectResult(
    const std::shared_ptr<const OptimizerResult>& base,
    const WeightVector& weights, const BoundVector& bounds) {
  return ResultOverPlanSet(base, base->plan_set, weights, bounds);
}

}  // namespace

/// Everything a worker needs to run one admitted request. Shared between
/// the submit path (which owns the promise), the pool task, and — for
/// coalesced waiters — the primary that serves them.
struct OptimizationService::Admitted {
  ProblemSpec spec;
  Preference preference;      ///< Weights/bounds normalized at Submit().
  /// Built once at submit time; `problem.query` points into `spec`.
  MOQOProblem problem;
  PolicyDecision decision;
  /// Alpha-free cache key (relaxed identity).
  ProblemSignature signature;
  /// Alpha-extended exact identity: what in-flight duplicates coalesce on.
  ProblemSignature coalesce_key;
  bool cacheable = false;
  /// True iff this request registered the in-flight coalescing entry for
  /// its coalesce key (i.e. it is the primary later arrivals wait on).
  bool coalesce_registered = false;
  int64_t deadline_ms = -1;   ///< Total budget; -1 = none.
  uint64_t trace_id = 0;      ///< Correlates this request's spans.
  StopWatch since_submit;     ///< Started at Submit().
  std::promise<ServiceResponse> promise;

  /// Resolves the future as kRejected (no result).
  void Reject() {
    ServiceResponse response;
    response.status = ResponseStatus::kRejected;
    response.algorithm = decision.algorithm;
    response.alpha = decision.alpha;
    response.service_ms = since_submit.ElapsedMillis();
    promise.set_value(std::move(response));
  }
};

OptimizationService::OptimizationService(ServiceOptions options)
    : options_(std::move(options)),
      tracer_(options_.trace),
      slow_log_(options_.slow_query_log_size),
      cache_(options_.cache),
      pool_(ResolveWorkers(options_.num_workers), &tracer_, "pool") {
  if (options_.enable_subplan_memo) {
    SubplanMemo::Options memo_options = options_.subplan_memo;
    if (memo_options.admission_epsilon < 0) {
      // Inherit the whole-query cache's compaction resolution: frontiers
      // denser than what the PlanCache would keep are not worth pinning.
      memo_options.admission_epsilon = options_.cache_compaction_epsilon;
    }
    subplan_memo_ = std::make_unique<SubplanMemo>(memo_options);
  }
  if (!options_.persist.directory.empty()) {
    MakePersistDir(options_.persist.directory);
    if (options_.persist.tier_capacity_bytes > 0) {
      persist::DiskTier::Options tier;
      tier.directory = options_.persist.directory;
      tier.shards = options_.persist.tier_shards;
      // The budget splits evenly: both caches overflow under the same
      // memory pressure, and a fixed split keeps accounting predictable.
      tier.capacity_bytes = options_.persist.tier_capacity_bytes / 2;
      tier.name = "cache_tier";
      cache_tier_ = std::make_shared<persist::DiskTier>(tier);
      if (!cache_tier_->ok()) cache_tier_.reset();
      cache_.AttachTier(cache_tier_);
      if (subplan_memo_ != nullptr) {
        tier.name = "memo_tier";
        memo_tier_ = std::make_shared<persist::DiskTier>(tier);
        if (!memo_tier_->ok()) memo_tier_.reset();
        subplan_memo_->AttachTier(memo_tier_);
      }
    }
  }
  RegisterMetrics();
  if (!options_.persist.directory.empty() &&
      options_.persist.restore_on_start) {
    RestoreNow();
  }
  if (options_.watchdog_poll_ms > 0) {
    watchdog_ = std::thread([this] { WatchdogMain(); });
  }
}

OptimizationService::~OptimizationService() {
  {
    MutexLock lock(watchdog_mu_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.NotifyAll();
  if (watchdog_.joinable()) watchdog_.join();
  pool_.Shutdown();
  // After the drain: the caches are quiescent and as warm as they will
  // ever be — the snapshot taken here is what the next process restores.
  if (!options_.persist.directory.empty() &&
      options_.persist.snapshot_on_shutdown) {
    SnapshotNow();
  }
}

void OptimizationService::WatchdogMain() {
  watchdog_mu_.Lock();
  while (!watchdog_stop_) {
    watchdog_cv_.WaitFor(watchdog_mu_,
                         std::chrono::milliseconds(options_.watchdog_poll_ms));
    if (watchdog_stop_) break;
    // Sweep under the list lock, act outside it: the force-finish path
    // (FinishSession -> MarkDone -> subscriber callbacks) must not run
    // under watchdog_mu_, which OpenSession takes to register.
    std::vector<std::shared_ptr<FrontierSession>> fired;
    size_t keep = 0;
    for (size_t i = 0; i < watched_sessions_.size(); ++i) {
      std::shared_ptr<FrontierSession> session = watched_sessions_[i].lock();
      if (session == nullptr ||
          session->finished_.load(std::memory_order_acquire)) {
        continue;  // Finished or expired entries self-prune.
      }
      const int64_t started =
          session->rung_started_us_.load(std::memory_order_acquire);
      const int64_t budget_us = static_cast<int64_t>(
          static_cast<double>(session->session_options_.step_deadline_ms) *
          options_.watchdog_factor * 1000.0);
      if (started >= 0 && SteadyNowUs() - started > budget_us &&
          !session->watchdog_fired_.exchange(true)) {
        fired.push_back(std::move(session));
        continue;  // A fired session leaves the watch list.
      }
      // Guard the compaction against i == keep: self-move-assigning a
      // weak_ptr empties it, silently dropping the session from watch.
      if (keep != i) watched_sessions_[keep] = std::move(watched_sessions_[i]);
      ++keep;
    }
    watched_sessions_.resize(keep);
    if (fired.empty()) continue;
    watchdog_mu_.Unlock();
    for (const std::shared_ptr<FrontierSession>& session : fired) {
      // Force-finish: the opener gets DONE{degraded} now, with everything
      // the session already published — never a silent hang. The wedged
      // rung is cancelled through the session's token (the DP unwinds at
      // its next deadline poll); if it is wedged beyond even that, its
      // eventual output is dropped by the done_/finished_ guards.
      stats_.RecordWatchdogFire();
      session->cancel_flag_.store(true, std::memory_order_relaxed);
      FinishSession(session, nullptr, /*degraded=*/true, /*failed=*/false);
    }
    watchdog_mu_.Lock();
  }
  watchdog_mu_.Unlock();
}

std::shared_ptr<const OptimizerResult> OptimizationService::TryQuickFallback(
    const std::shared_ptr<FrontierSession>& session) {
  try {
    // Quick mode (timeout 0), serial, no memo: the smallest possible
    // footprint, maximizing the chance it survives whatever killed the
    // rung (e.g. memory pressure).
    OptimizerOptions opts =
        MakeOptimizerOptions(session->decision_.alpha, /*timeout_ms=*/0,
                             /*parallelism=*/1, /*use_memo=*/false);
    std::unique_ptr<OptimizerBase> optimizer =
        MakeOptimizer(session->decision_.algorithm, opts);
    StopWatch quick_watch;
    auto result = std::make_shared<OptimizerResult>(
        optimizer->Optimize(session->problem_));
    if (result->plan_set == nullptr) return nullptr;
    // No guarantee, but valid plans; dropped by the monotonicity guard if
    // the session already holds any frontier.
    session->Publish(kInfiniteAlpha, result->plan_set,
                     quick_watch.ElapsedMillis(), /*from_cache=*/false);
    return result;
  } catch (...) {
    return nullptr;
  }
}

OptimizerOptions OptimizationService::MakeOptimizerOptions(
    double alpha, int64_t timeout_ms, int parallelism, bool use_memo) {
  OptimizerOptions opts;
  opts.alpha = alpha;
  opts.timeout_ms = timeout_ms;
  opts.operators = options_.operators;
  opts.bushy = options_.bushy;
  opts.cartesian_heuristic = options_.cartesian_heuristic;
  if (parallelism > 1) {
    std::call_once(dp_pool_once_, [this] {
      dp_pool_ = std::make_unique<ThreadPool>(
          ResolveWorkers(options_.num_dp_helpers), &tracer_, "dp_pool");
      dp_pool_ptr_.store(dp_pool_.get(), std::memory_order_release);
    });
    opts.parallelism = parallelism;
    opts.dp_pool = dp_pool_.get();
  }
  if (use_memo) opts.subplan_memo = subplan_memo_.get();
  return opts;
}

std::shared_ptr<const CachedFrontier> OptimizationService::MakeCacheEntry(
    const std::shared_ptr<const OptimizerResult>& result,
    const WeightVector& weights, const BoundVector& bounds,
    double achieved_alpha) {
  auto cached = std::make_shared<CachedFrontier>();
  cached->result = result;
  if (options_.max_cached_frontier > 0 && result->plan_set != nullptr &&
      result->plan_set->size() > options_.max_cached_frontier) {
    // Cache a compacted epsilon-coverage copy so many-objective specs do
    // not pin huge PlanSets; the selection stored with it must come from
    // the compacted set (exact hits serve it verbatim). The entry keeps
    // the UNcompacted run's alpha tag even though compaction degrades the
    // true guarantee to alpha*(1+epsilon) — the documented PR-3 tradeoff
    // of max_cached_frontier, unchanged by the relaxed alpha identity:
    // a same-alpha hit (which must keep working, or compacted entries
    // could never serve their own spec) overstates by exactly as much as
    // any looser-alpha hit, and requests looser than alpha*(1+epsilon)
    // are served within their actual tolerance.
    cached->result = ResultOverPlanSet(
        result,
        CompactPlanSet(result->plan_set, options_.cache_compaction_epsilon,
                       options_.max_cached_frontier),
        weights, bounds);
  }
  cached->weights = weights;
  cached->bounds = bounds;
  cached->achieved_alpha = achieved_alpha;
  return cached;
}

// ---------------------------------------------------------------------------
// Anytime frontier sessions.

std::shared_ptr<FrontierSession> OptimizationService::OpenFrontier(
    ProblemSpec spec, SessionOptions options) {
  stats_.RecordSessionOpened();
  OpenInfo info;
  return OpenSession(std::move(spec), options, /*preference=*/nullptr,
                     /*deadline_ms=*/-1, /*coalescable=*/true,
                     /*hold_slot_if_joined=*/false, &info);
}

std::shared_ptr<FrontierSession> OptimizationService::OpenSession(
    ProblemSpec spec, const SessionOptions& session_options,
    const Preference* preference, int64_t deadline_ms, bool coalescable,
    bool hold_slot_if_joined, OpenInfo* info) {
  std::shared_ptr<FrontierSession> session(new FrontierSession());
  session->session_options_ = session_options;
  session->spec_ = std::move(spec);
  session->total_deadline_ms_ = deadline_ms;
  session->stats_registry_ = &stats_;
  session->tracer_ = &tracer_;
  session->trace_id_ = tracer_.NextId();
  session->Attach();
  TraceSpan open_span(&tracer_, "service", "request.open",
                      session->trace_id_);

  if (session->spec_.query == nullptr) {
    stats_.RecordInternalError();
    info->rejected = true;
    {
      MutexLock lock(session->mu_);
      session->rejected_ = true;
    }
    session->MarkDone(nullptr, /*degraded=*/false, /*failed=*/true);
    return session;
  }

  // Normalize the opener's preference against the spec: it seeds the
  // quick-mode weights, the stored cache selection, and — for the
  // one-step shim — the final result's selection.
  const int dims = session->spec_.objectives.size();
  Preference resolved;
  if (preference != nullptr) resolved = *preference;
  if (resolved.weights.size() != dims) {
    resolved.weights = WeightVector::Uniform(dims);
  }
  if (resolved.bounds.size() != dims) resolved.bounds = BoundVector();
  session->insert_preference_ = resolved;

  session->problem_.query = session->spec_.query.get();
  session->problem_.objectives = session->spec_.objectives;
  session->problem_.weights = resolved.weights;
  session->problem_.bounds = resolved.bounds;

  PolicyDecision decision =
      ChooseAlgorithm(*session->spec_.query, session->spec_.objectives,
                      deadline_ms, options_.policy);
  if (session->spec_.algorithm) decision.algorithm = *session->spec_.algorithm;
  if (session->spec_.alpha) decision.alpha = *session->spec_.alpha;
  if (session->spec_.parallelism) {
    decision.parallelism =
        *session->spec_.parallelism < 1 ? 1 : *session->spec_.parallelism;
  }
  session->decision_ = decision;

  // Sessions are preference-free by construction; the algorithms whose
  // whole output depends on the preference cannot back one. (SubmitAndWait
  // routes them to the classic path before getting here.)
  if (IsPreferenceDependent(decision.algorithm)) {
    stats_.RecordInternalError();
    info->rejected = true;
    {
      MutexLock lock(session->mu_);
      session->rejected_ = true;
    }
    session->MarkDone(nullptr, /*degraded=*/false, /*failed=*/true);
    return session;
  }

  // Resolve the refinement schedule: the explicit target, else the spec's
  // alpha as the policy resolved it; exact algorithms always target 1.
  double target = session_options.alpha_target > 0
                      ? session_options.alpha_target
                      : decision.alpha;
  if (target < 1.0) target = 1.0;
  target = AchievedAlpha(decision.algorithm, target);
  session->target_alpha_ = target;
  session->ladder_ =
      decision.algorithm == AlgorithmKind::kRta
          ? MakeAlphaLadder(session_options.alpha_start, target,
                            session_options.max_steps)
          : std::vector<double>{target};
  session->cache_signature_ = ComputeSignature(
      *session->spec_.query, session->spec_.objectives, decision.algorithm,
      target,
      MakeOptimizerOptions(target, -1, /*parallelism=*/1, /*use_memo=*/false),
      &resolved.weights, &resolved.bounds);
  session->session_key_ =
      SessionKey(session->cache_signature_, session->ladder_,
                 session_options.step_deadline_ms);

  // Stage 1: cache probe at the target precision. A hit (any entry at
  // least as tight) makes the session born-done — the frontier is already
  // as good as this ladder could make it.
  if (options_.enable_cache) {
    TraceSpan probe_span(&tracer_, "service", "cache.probe",
                         session->trace_id_);
    bool from_tier = false;
    std::shared_ptr<const CachedFrontier> cached =
        cache_.Lookup(session->cache_signature_, target,
                      /*record_stats=*/true, &from_tier);
    probe_span.AddArg("hit", cached != nullptr ? 1 : 0);
    probe_span.End();
    if (cached != nullptr && cached->result != nullptr) {
      ServeSessionBornDone(session, cached, resolved, info, from_tier);
      return session;
    }
  }

  // Stage 2: seed from a looser cached frontier. An entry tighter than
  // nothing-at-all but looser than the target still beats the quick-mode
  // prelude (it carries a real guarantee), and the rungs it already
  // satisfies are dropped from the ladder. Runs before the session
  // becomes joinable so the schedule is immutable once shared. Uncounted:
  // together with stage 1 each open records exactly one lookup — and if a
  // tighter-than-target entry landed since stage 1, the recorded miss is
  // reclassified and the session is born done after all.
  if (options_.enable_cache) {
    bool seed_from_tier = false;
    std::shared_ptr<const CachedFrontier> seed = cache_.Lookup(
        session->cache_signature_, PlanCache::kAnyAlpha,
        /*record_stats=*/false, &seed_from_tier);
    if (seed != nullptr && seed->result != nullptr &&
        seed->result->plan_set != nullptr) {
      if (seed->achieved_alpha <= target) {
        cache_.ReclassifyMissAsHit();
        ServeSessionBornDone(session, seed, resolved, info, seed_from_tier);
        return session;
      }
      if (session->Publish(seed->achieved_alpha, seed->result->plan_set, 0,
                           /*from_cache=*/true)) {
        std::vector<double> trimmed;
        for (double alpha : session->ladder_) {
          if (alpha < seed->achieved_alpha) trimmed.push_back(alpha);
        }
        // The target rung always survives (a seed at or below the target
        // was served above), so the trimmed ladder is never empty.
        if (!trimmed.empty()) session->ladder_ = std::move(trimmed);
      }
    }
  }

  // Takes one admission slot, or marks the session shed. Shared by every
  // stage-3 path so rejection bookkeeping cannot drift between them.
  const auto try_admit = [this, &session, info]() -> bool {
    const size_t prior = inflight_.fetch_add(1, std::memory_order_acq_rel);
    if (prior < options_.max_inflight) return true;
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    stats_.RecordAdmissionRejected();
    info->rejected = true;
    {
      MutexLock lock(session->mu_);
      session->rejected_ = true;
    }
    session->MarkDone(nullptr, /*degraded=*/false, /*failed=*/true);
    return false;
  };

  // Stage 3: coalesce onto a live identical refinement, or register as
  // its primary. Admission happens under the lock, before the session
  // becomes joinable, so joiners only ever park behind admitted primaries.
  TraceSpan admission_span(&tracer_, "service", "admission",
                           session->trace_id_);
  if (options_.enable_coalescing && coalescable) {
    MutexLock lock(session_mu_);
    auto it = sessions_by_key_.find(session->session_key_);
    // Never join a session whose every prior opener has already
    // cancelled: its runner is mid-abort and will not reach the target,
    // and attaching cannot un-cancel it. Register over it instead (its
    // FinishSession erases by pointer equality, so the replacement is
    // safe).
    if (it != sessions_by_key_.end() && !it->second->CancelRequested()) {
      if (hold_slot_if_joined && !try_admit()) return session;
      it->second->Attach();
      stats_.RecordSessionCoalesced();
      info->joined = true;
      info->outcome = CacheOutcome::kCoalescedHit;
      return it->second;
    }
    if (!try_admit()) return session;
    session->holds_slot_ = true;
    sessions_by_key_[session->session_key_] = session;
    session->registered_ = true;
  } else {
    if (!try_admit()) return session;
    session->holds_slot_ = true;
  }
  admission_span.AddArg("inflight",
                        static_cast<int64_t>(
                            inflight_.load(std::memory_order_relaxed)));
  admission_span.End();

  // Stage 4: race-closing re-probe. A just-finished identical session (or
  // one-shot run) inserts into the cache *before* unregistering, so a
  // second uncounted probe here closes the found-no-session window; the
  // recorded miss is reclassified so each open counts one lookup.
  if (options_.enable_cache) {
    bool reprobe_from_tier = false;
    std::shared_ptr<const CachedFrontier> cached = cache_.Lookup(
        session->cache_signature_, target, /*record_stats=*/false,
        &reprobe_from_tier);
    if (cached != nullptr && cached->result != nullptr) {
      cache_.ReclassifyMissAsHit();
      if (session->registered_) {
        MutexLock lock(session_mu_);
        auto it = sessions_by_key_.find(session->session_key_);
        if (it != sessions_by_key_.end() && it->second == session) {
          sessions_by_key_.erase(it);
        }
        session->registered_ = false;
      }
      inflight_.fetch_sub(1, std::memory_order_acq_rel);
      session->holds_slot_ = false;
      ServeSessionBornDone(session, cached, resolved, info,
                           reprobe_from_tier);
      return session;
    }
  }

  // Stage 5: quick-mode prelude — the Section 5.1 single-plan-per-set
  // finish, run synchronously so OpenFrontier returns with a selectable
  // frontier in hand. No guarantee (alpha = infinity), but valid plans.
  if (session_options.quick_first && session->BestFrontier() == nullptr) {
    try {
      TraceSpan quick_span(&tracer_, "service", "quick.prelude",
                           session->trace_id_);
      OptimizerOptions quick_opts = MakeOptimizerOptions(
          decision.alpha, /*timeout_ms=*/0, /*parallelism=*/1,
          /*use_memo=*/false);
      quick_opts.tracer = &tracer_;
      quick_opts.trace_id = session->trace_id_;
      std::unique_ptr<OptimizerBase> optimizer =
          MakeOptimizer(decision.algorithm, quick_opts);
      StopWatch quick_watch;
      OptimizerResult quick = optimizer->Optimize(session->problem_);
      session->Publish(kInfiniteAlpha, quick.plan_set,
                       quick_watch.ElapsedMillis(), /*from_cache=*/false);
    } catch (...) {
      // A failed prelude only costs the early frontier; the ladder still
      // runs.
    }
  }

  // Watchdog registration (PR 8): ladders with a per-rung budget are
  // watched for wedged rungs. Weak refs only — the list must never keep a
  // session alive or delay its teardown.
  if (watchdog_.joinable() && session_options.step_deadline_ms >= 0) {
    MutexLock lock(watchdog_mu_);
    watched_sessions_.push_back(session);
  }

  // Stage 6: hand the first rung to the worker pool (each later rung
  // reschedules itself — no worker is held across rungs).
  stats_.RecordSessionStarted();
  if (!pool_.Submit([this, session] { RunSessionRung(session, 0); })) {
    // Shutdown raced the open; the session completes with whatever the
    // prelude published.
    stats_.RecordAdmissionRejected();
    info->rejected = true;
    {
      // The session may already be registered and shared with joiners
      // when a shutdown race lands here, so the write must be locked.
      MutexLock lock(session->mu_);
      session->rejected_ = true;
    }
    FinishSession(session, nullptr, /*degraded=*/false, /*failed=*/true);
  }
  return session;
}

void OptimizationService::ServeSessionBornDone(
    const std::shared_ptr<FrontierSession>& session,
    const std::shared_ptr<const CachedFrontier>& cached,
    const Preference& preference, OpenInfo* info, bool from_tier) {
  const bool same_preference = cached->weights == preference.weights &&
                               cached->bounds == preference.bounds;
  // Provenance wins the label: a disk-tier promotion is surfaced as
  // kTierHit even when the preference matches, so tier effectiveness is
  // observable end to end.
  info->outcome = from_tier          ? CacheOutcome::kTierHit
                  : same_preference  ? CacheOutcome::kExactHit
                                     : CacheOutcome::kFrontierHit;
  {
    // Under the session lock: the post-registration re-probe path calls
    // this on a session joiners may already share.
    MutexLock lock(session->mu_);
    session->open_outcome_ = info->outcome;
    session->cached_entry_ = cached;
    session->target_reached_ = true;
  }
  session->Publish(cached->achieved_alpha, cached->result->plan_set,
                   /*step_ms=*/0, /*from_cache=*/true);
  session->MarkDone(cached->result, /*degraded=*/false, /*failed=*/false);
}

void OptimizationService::ScheduleSessionRung(
    const std::shared_ptr<FrontierSession>& session, size_t rung) {
  if (rung > 0 && options_.priority_admission) {
    // Overload sheds refinement first: a ladder keeps refining only while
    // in-flight pressure stays under the watermark, so first-frontier
    // work hits max_inflight (a hard reject) only after every background
    // rung has already been given up. The watermark never goes below 2 —
    // a lone refining session (its own slot is counted) must not shed
    // itself on an idle service.
    const size_t watermark = std::max<size_t>(
        static_cast<size_t>(options_.refinement_shed_fraction *
                            static_cast<double>(options_.max_inflight)),
        2);
    if (inflight_.load(std::memory_order_acquire) >= watermark) {
      stats_.RecordRefinementShed();
      {
        MutexLock lock(session->mu_);
        session->shed_ = true;
      }
      FinishSession(session, nullptr, /*degraded=*/false, /*failed=*/false);
      return;
    }
  }
  const TaskLane lane = (rung == 0 || !options_.priority_admission)
                            ? TaskLane::kInteractive
                            : TaskLane::kRefinement;
  if (!pool_.Submit([this, session, rung] { RunSessionRung(session, rung); },
                    lane)) {
    // Shutdown raced the reschedule; the session completes with the
    // guarantees it already published.
    FinishSession(session, nullptr, /*degraded=*/false, /*failed=*/false);
  }
}

void OptimizationService::RunSessionRung(
    const std::shared_ptr<FrontierSession>& session, size_t rung) {
  const PolicyDecision& decision = session->decision_;
  double queue_ms;
  {
    // queue_ms_ is read by FinishSession — possibly on the watchdog
    // thread, concurrently with this rung — so even the rung-0 stamp
    // happens under the session lock.
    MutexLock lock(session->mu_);
    if (rung == 0) session->queue_ms_ = session->since_open_.ElapsedMillis();
    queue_ms = session->queue_ms_;
  }
  TraceSpan request_span(&tracer_, "service",
                         rung == 0 ? "request" : "request.rung",
                         session->trace_id_);
  request_span.AddArg("queue_us", static_cast<int64_t>(queue_ms * 1000.0));
  request_span.AddArg("rungs",
                      static_cast<int64_t>(session->ladder_.size()));

  // Cancelled while queued: complete with what was already published.
  if (session->CancelRequested()) {
    FinishSession(session, nullptr, /*degraded=*/false, /*failed=*/false);
    return;
  }

  // Remaining total budget (the one-step shim's deadline covers
  // open-to-response, like the classic path's submit-to-response),
  // tightened by the per-rung budget.
  int64_t timeout_ms = -1;
  if (session->total_deadline_ms_ >= 0) {
    const int64_t remaining =
        session->total_deadline_ms_ -
        static_cast<int64_t>(session->since_open_.ElapsedMillis());
    timeout_ms = remaining > 0 ? remaining : 0;
  }
  const int64_t step_ms = session->session_options_.step_deadline_ms;
  if (step_ms >= 0) {
    timeout_ms = timeout_ms < 0 ? step_ms : std::min(timeout_ms, step_ms);
  }

  std::shared_ptr<const OptimizerResult> degraded_result;
  bool degraded = false;
  bool failed = false;
  bool completed_rung = false;
  // Stamp the rung start for the watchdog; cleared after the try/catch.
  session->rung_started_us_.store(SteadyNowUs(), std::memory_order_release);
  try {
    // Injected rung faults: `throw`/`oom` exercise the quick-mode
    // fallback below, `delay_ms` simulates a wedged worker for the
    // watchdog.
    MOQO_FAILPOINT("session.rung");

    // Epoch guard before the memo is read: a catalog whose statistics
    // were bumped since the memo's entries were published flushes them.
    if (subplan_memo_ != nullptr && decision.use_subplan_memo) {
      const Catalog& catalog = session->spec_.query->catalog();
      subplan_memo_->ObserveCatalog(&catalog, catalog.epoch());
    }

    // One rung = one independent optimizer run at this rung's precision;
    // rungs share work only through the SubplanMemo (exactly the core
    // ladder's contract), so the published frontiers are byte-identical
    // to the monolithic runner's.
    OptimizerOptions opts = MakeOptimizerOptions(
        session->ladder_[rung], timeout_ms, decision.parallelism,
        decision.use_subplan_memo);
    opts.cancel = &session->cancel_flag_;
    opts.tracer = &tracer_;
    opts.trace_id = session->trace_id_;
    std::unique_ptr<OptimizerBase> optimizer =
        MakeOptimizer(decision.algorithm, opts);
    StopWatch run_watch;
    TraceSpan optimize_span(&tracer_, "service", "optimize",
                            session->trace_id_);
    optimize_span.AddArg("parallelism", decision.parallelism);
    auto result = std::make_shared<OptimizerResult>(
        optimizer->Optimize(session->problem_));
    optimize_span.End();
    if (result->metrics.timed_out) {
      // This rung's budget expired. Earlier completed rungs keep their
      // guarantees and the ladder just ends; with nothing completed the
      // session ends degraded, holding the quick-mode result for the
      // shim. Never cached.
      stats_.RecordDeadlineTimeout();
      stats_.RecordLatency(decision.algorithm, run_watch.ElapsedMillis());
      bool any_completed;
      {
        MutexLock lock(session->mu_);
        any_completed = session->final_result_ != nullptr;
      }
      if (!any_completed) {
        degraded = true;
        degraded_result = std::move(result);
      }
    } else {
      OnSessionRung(session, static_cast<int>(rung), session->ladder_[rung],
                    *result);
      completed_rung = true;
    }
  } catch (...) {
    stats_.RecordInternalError();
    // Degrade, don't die (PR 8): whatever killed the rung (allocation
    // failure, injected fault), the session must still reach a terminal
    // state with a usable answer. An earlier completed rung already
    // covers that; otherwise fall back to the paper's Section 5.1
    // quick-mode frontier — "never return null". Only when even quick
    // mode fails does the session end failed.
    bool any_completed;
    {
      MutexLock lock(session->mu_);
      any_completed = session->final_result_ != nullptr;
    }
    if (any_completed) {
      degraded = true;
    } else {
      degraded_result = TryQuickFallback(session);
      degraded = degraded_result != nullptr;
      failed = degraded_result == nullptr;
    }
  }
  session->rung_started_us_.store(-1, std::memory_order_release);

  if (session->watchdog_fired_.load(std::memory_order_relaxed)) {
    // The watchdog already force-finished this session; the late rung
    // stands down (FinishSession below is a no-op under the once-guard).
    degraded = true;
  }

  if (completed_rung && !failed && rung + 1 < session->ladder_.size() &&
      !session->CancelRequested()) {
    // Release this worker between rungs: the next rung queues behind
    // (and, with priority admission, below) any first-frontier work.
    ScheduleSessionRung(session, rung + 1);
    return;
  }
  FinishSession(session, std::move(degraded_result), degraded, failed);
}

bool OptimizationService::OnSessionRung(
    const std::shared_ptr<FrontierSession>& session, int rung, double alpha,
    const OptimizerResult& result) {
  const double achieved =
      AchievedAlpha(session->decision_.algorithm, alpha);
  TraceSpan rung_span(&tracer_, "session", "rung.publish",
                      session->trace_id_);
  rung_span.AddArg("rung", rung);
  rung_span.AddArg("alpha_milli", static_cast<int64_t>(achieved * 1000.0));
  auto shared = std::make_shared<const OptimizerResult>(result);
  stats_.RecordLatency(session->decision_.algorithm,
                       result.metrics.optimization_ms);
  stats_.RecordRefinementStep(result.metrics.optimization_ms);
  if (options_.enable_cache && !result.metrics.timed_out) {
    // Insert before publishing (and before the registry erase in
    // FinishSession): late identical opens that miss the registry must
    // find the entry on their re-probe.
    cache_.Insert(session->cache_signature_,
                  MakeCacheEntry(shared, session->insert_preference_.weights,
                                 session->insert_preference_.bounds,
                                 achieved));
  }
  {
    MutexLock lock(session->mu_);
    session->final_result_ = shared;
  }
  session->Publish(achieved, shared->plan_set,
                   result.metrics.optimization_ms, /*from_cache=*/false);
  return !session->CancelRequested();
}

void OptimizationService::FinishSession(
    const std::shared_ptr<FrontierSession>& session,
    std::shared_ptr<const OptimizerResult> final_result, bool degraded,
    bool failed) {
  // Exactly-once: the watchdog's force-finish and the rung's own finish
  // may race; whichever loses must not double-release the slot, double-
  // erase the registry entry, or deliver DONE twice.
  if (session->finished_.exchange(true, std::memory_order_acq_rel)) return;
  // All bookkeeping happens BEFORE MarkDone wakes the waiters: a caller
  // returning from AwaitTarget must observe the registry entry gone, the
  // admission slot released, and the active-sessions gauge decremented.
  // (The cache inserts this ordering protects happened per rung, in
  // OnSessionRung — insert-before-unregister is what makes the open
  // path's race-closing re-probe sound.)
  if (session->registered_) {
    MutexLock lock(session_mu_);
    auto it = sessions_by_key_.find(session->session_key_);
    if (it != sessions_by_key_.end() && it->second == session) {
      sessions_by_key_.erase(it);
    }
  }
  if (session->holds_slot_) {
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
  }
  stats_.RecordSessionFinished();
  if (!failed) {
    // Slow-query log: one entry per ladder that actually ran (born-done
    // cache hits never reach FinishSession and are never slow).
    SlowQueryEntry entry;
    entry.signature = session->cache_signature_.hash;
    entry.algorithm = AlgorithmName(session->decision_.algorithm);
    entry.total_ms = session->since_open_.ElapsedMillis();
    {
      MutexLock lock(session->mu_);
      entry.queue_ms = session->queue_ms_;
      entry.alpha = session->best_alpha_;
      entry.frontier_size =
          session->best_ != nullptr ? session->best_->size() : 0;
    }
    entry.optimize_ms = entry.total_ms - entry.queue_ms;
    entry.phase = entry.queue_ms > entry.optimize_ms ? "queue" : "optimize";
    entry.sequence = slow_seq_.fetch_add(1, std::memory_order_relaxed);
    slow_log_.Offer(entry);
  }
  session->MarkDone(std::move(final_result), degraded, failed);
}

ServiceResponse OptimizationService::SubmitAndWait(ServiceRequest request) {
  // The preference-dependent algorithms (IRA, weighted-sum) cannot be
  // preference-free sessions; they keep the classic pipeline.
  if (request.spec.algorithm &&
      IsPreferenceDependent(*request.spec.algorithm)) {
    return Submit(std::move(request)).get();
  }

  stats_.RecordRequest();
  StopWatch since_submit;
  const int64_t deadline_ms = request.preference.deadline_ms >= 0
                                  ? request.preference.deadline_ms
                                  : options_.default_deadline_ms;

  // One-step session: ladder = {resolved alpha}, no quick prelude (the
  // rung itself degrades to quick mode on expiry, exactly like the
  // classic path), the whole deadline as the run budget.
  SessionOptions session_options;
  session_options.alpha_start = -1;
  session_options.max_steps = 1;
  session_options.quick_first = false;
  session_options.step_deadline_ms = -1;

  Preference preference = request.preference;
  ProblemSpec spec = std::move(request.spec);
  // Deadline-bounded requests never wait on shared work (a waiter cannot
  // degrade to quick mode mid-wait), so they open private sessions.
  const bool coalescable = deadline_ms < 0;

  // A joiner whose shared ladder degraded or failed cannot be served from
  // it (the quick-mode plan depends on the primary's weights); it retries
  // with its own open. Identical retries coalesce among themselves, so a
  // failing signature promotes ONE new primary per round instead of
  // thundering — and each failed primary leaves the retry population, so
  // the chain terminates.
  for (;;) {
    OpenInfo info;
    std::shared_ptr<FrontierSession> session = OpenSession(
        spec, session_options, &preference, deadline_ms, coalescable,
        /*hold_slot_if_joined=*/true, &info);

    ServiceResponse response;
    response.algorithm = session->decision_.algorithm;
    response.alpha = session->decision_.alpha;

    if (info.rejected) {
      response.status = ResponseStatus::kRejected;
      response.service_ms = since_submit.ElapsedMillis();
      return response;
    }

    if (!info.joined && (info.outcome == CacheOutcome::kExactHit ||
                         info.outcome == CacheOutcome::kFrontierHit ||
                         info.outcome == CacheOutcome::kTierHit)) {
      std::shared_ptr<const CachedFrontier> cached;
      {
        // Born-done sessions are terminal before OpenSession returns,
        // but the field is guarded: copy it out under the lock.
        MutexLock lock(session->mu_);
        cached = session->cached_entry_;
      }
      response.status = ResponseStatus::kCompleted;
      response.cache = info.outcome;
      response.alpha = cached->achieved_alpha;
      const bool same_preference = cached->weights == preference.weights &&
                                   cached->bounds == preference.bounds;
      if (same_preference) {
        response.result = cached->result;
      } else {
        response.result = ReselectResult(cached->result, preference.weights,
                                         preference.bounds);
      }
      switch (info.outcome) {
        case CacheOutcome::kExactHit:
          stats_.RecordExactHit();
          break;
        case CacheOutcome::kFrontierHit:
          stats_.RecordFrontierHit();
          break;
        default:
          stats_.RecordTierHit();
          break;
      }
      stats_.RecordCompleted();
      response.service_ms = since_submit.ElapsedMillis();
      return response;
    }

    if (info.joined) {
      {
        TraceSpan wait_span(&tracer_, "service", "coalesce.wait",
                            session->trace_id_);
        session->AwaitTarget();
      }
      std::shared_ptr<const OptimizerResult> shared_result;
      bool usable = false;
      {
        MutexLock lock(session->mu_);
        usable = session->target_reached_ && !session->failed_ &&
                 session->final_result_ != nullptr;
        shared_result = session->final_result_;
      }
      inflight_.fetch_sub(1, std::memory_order_acq_rel);  // Joiner slot.
      if (!usable) continue;  // Retry with our own session.
      response.status = ResponseStatus::kCompleted;
      response.cache = CacheOutcome::kCoalescedHit;
      response.alpha = session->BestAlpha();
      response.result = ReselectResult(shared_result, preference.weights,
                                       preference.bounds);
      stats_.RecordCoalescedHit();
      stats_.RecordCompleted();
      response.service_ms = since_submit.ElapsedMillis();
      return response;
    }

    // Primary: this call's open ran (or is running) the one-rung ladder.
    session->AwaitTarget();
    response.cache = CacheOutcome::kMiss;
    std::shared_ptr<const OptimizerResult> final_result;
    bool was_failed = false, was_degraded = false, reached = false;
    {
      MutexLock lock(session->mu_);
      response.queue_ms = session->queue_ms_;
      final_result = session->final_result_;
      was_failed = session->failed_;
      was_degraded = session->degraded_;
      reached = session->target_reached_;
    }
    if (was_failed || final_result == nullptr) {
      response.status = ResponseStatus::kRejected;
      response.result = nullptr;
    } else if (was_degraded || !reached) {
      response.status = ResponseStatus::kCompletedQuick;
      response.result = final_result;
      stats_.RecordCompleted();
    } else {
      response.status = ResponseStatus::kCompleted;
      response.alpha = session->BestAlpha();
      response.result = final_result;
      stats_.RecordCompleted();
    }
    response.service_ms = since_submit.ElapsedMillis();
    return response;
  }
}

// ---------------------------------------------------------------------------
// The classic asynchronous one-shot pipeline.

std::future<ServiceResponse> OptimizationService::Submit(
    ServiceRequest request) {
  stats_.RecordRequest();
  auto admitted = std::make_shared<Admitted>();
  admitted->trace_id = tracer_.NextId();
  std::future<ServiceResponse> future = admitted->promise.get_future();

  admitted->deadline_ms = request.preference.deadline_ms >= 0
                              ? request.preference.deadline_ms
                              : options_.default_deadline_ms;
  admitted->spec = std::move(request.spec);
  admitted->preference = std::move(request.preference);

  if (admitted->spec.query == nullptr) {
    stats_.RecordInternalError();
    admitted->Reject();
    return future;
  }

  // Normalize the preference against the spec: empty or mis-sized weights
  // mean uniform, mis-sized bounds mean unbounded. The normalized form is
  // what selection, caching, and hit classification all see.
  const int dims = admitted->spec.objectives.size();
  if (admitted->preference.weights.size() != dims) {
    admitted->preference.weights = WeightVector::Uniform(dims);
  }
  if (admitted->preference.bounds.size() != dims) {
    admitted->preference.bounds = BoundVector();
  }

  admitted->problem.query = admitted->spec.query.get();
  admitted->problem.objectives = admitted->spec.objectives;
  admitted->problem.weights = admitted->preference.weights;
  admitted->problem.bounds = admitted->preference.bounds;

  PolicyDecision decision =
      ChooseAlgorithm(*admitted->spec.query, admitted->spec.objectives,
                      admitted->deadline_ms, options_.policy);
  if (admitted->spec.algorithm) {
    decision.algorithm = *admitted->spec.algorithm;
  }
  if (admitted->spec.alpha) decision.alpha = *admitted->spec.alpha;
  if (admitted->spec.parallelism) {
    decision.parallelism =
        *admitted->spec.parallelism < 1 ? 1 : *admitted->spec.parallelism;
  }
  // An explicit weighted-sum override runs the single-plan DP, whose
  // per-set output is preference-dependent — never memo-shared.
  if (decision.algorithm == AlgorithmKind::kWeightedSum) {
    decision.use_subplan_memo = false;
  }
  admitted->decision = decision;

  bool admission_held = false;
  if (options_.enable_cache) {
    admitted->signature = ComputeSignature(
        *admitted->spec.query, admitted->spec.objectives, decision.algorithm,
        decision.alpha,
        MakeOptimizerOptions(decision.alpha, -1, /*parallelism=*/1,
                             /*use_memo=*/false),
        &admitted->preference.weights, &admitted->preference.bounds);
    admitted->coalesce_key =
        ExtendSignature(admitted->signature, decision.alpha);
    admitted->cacheable = true;
    TraceSpan probe_span(&tracer_, "service", "cache.probe",
                         admitted->trace_id);
    bool from_tier = false;
    std::shared_ptr<const CachedFrontier> cached =
        cache_.Lookup(admitted->signature, decision.alpha,
                      /*record_stats=*/true, &from_tier);
    probe_span.AddArg("hit", cached != nullptr ? 1 : 0);
    probe_span.End();
    if (cached == nullptr && options_.enable_coalescing) {
      MutexLock lock(coalesce_mu_);
      auto it = inflight_by_signature_.find(admitted->coalesce_key);
      if (it != inflight_by_signature_.end()) {
        // An identical miss is already being optimized. Deadline-free
        // requests wait on it instead of optimizing again (waiters hold
        // admission slots so the pending population stays bounded);
        // deadline-bounded ones run independently — a waiter cannot
        // degrade to quick mode when its budget expires mid-wait, and the
        // primary's run length is unknown.
        if (admitted->deadline_ms < 0) {
          const size_t prior =
              inflight_.fetch_add(1, std::memory_order_acq_rel);
          if (prior >= options_.max_inflight) {
            inflight_.fetch_sub(1, std::memory_order_acq_rel);
            stats_.RecordAdmissionRejected();
            admitted->Reject();
            return future;
          }
          it->second->waiters.push_back(admitted);
          return future;
        }
      } else {
        // No entry: either nothing is in flight or the primary just
        // finished. The primary inserts into the cache *before* erasing
        // its entry, so this second probe closes the race; the cache's
        // miss counter is reclassified on a hit so each request still
        // records exactly one lookup.
        cached = cache_.Lookup(admitted->signature, decision.alpha,
                               /*record_stats=*/false, &from_tier);
        if (cached != nullptr) {
          cache_.ReclassifyMissAsHit();
        } else {
          // Admit the primary BEFORE exposing its entry: waiters may only
          // park behind an admitted primary, so an admission reject here
          // can never cascade onto parked waiters, and waiter slots never
          // crowd out the primary's own slot.
          const size_t prior =
              inflight_.fetch_add(1, std::memory_order_acq_rel);
          if (prior >= options_.max_inflight) {
            inflight_.fetch_sub(1, std::memory_order_acq_rel);
            stats_.RecordAdmissionRejected();
            admitted->Reject();
            return future;
          }
          admission_held = true;
          inflight_by_signature_[admitted->coalesce_key] =
              std::make_shared<CoalesceEntry>();
          admitted->coalesce_registered = true;
        }
      }
    }
    if (cached != nullptr) {
      ServeFromCache(admitted, cached, from_tier);
      return future;
    }
  }

  // Admission control: bound queued + running work so overload sheds load
  // instead of growing queue delay without limit. (Registered primaries
  // were already admitted under the coalesce lock above.)
  if (!admission_held) {
    const size_t prior = inflight_.fetch_add(1, std::memory_order_acq_rel);
    if (prior >= options_.max_inflight) {
      inflight_.fetch_sub(1, std::memory_order_acq_rel);
      stats_.RecordAdmissionRejected();
      AbandonPrimary(admitted);
      return future;
    }
  }

  const bool accepted =
      pool_.Submit([this, admitted] { RunRequest(admitted); });
  if (!accepted) {  // Shutdown raced the submit.
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    stats_.RecordAdmissionRejected();
    AbandonPrimary(admitted);
  }
  return future;
}

void OptimizationService::AbandonPrimary(
    const std::shared_ptr<Admitted>& admitted) {
  // A primary that registered a coalescing entry but will never run must
  // flush its waiters, or their futures would hang forever.
  if (admitted->coalesce_registered) {
    for (const std::shared_ptr<Admitted>& waiter :
         TakeWaiters(admitted->coalesce_key)) {
      inflight_.fetch_sub(1, std::memory_order_acq_rel);
      stats_.RecordAdmissionRejected();
      waiter->Reject();
    }
  }
  admitted->Reject();
}

void OptimizationService::ServeFromCache(
    const std::shared_ptr<Admitted>& admitted,
    const std::shared_ptr<const CachedFrontier>& cached, bool from_tier) {
  ServiceResponse response;
  response.status = ResponseStatus::kCompleted;
  response.algorithm = admitted->decision.algorithm;
  // Report the guarantee the served frontier actually carries — possibly
  // tighter than requested under the relaxed alpha identity.
  response.alpha = cached->achieved_alpha;
  const bool same_preference =
      cached->weights == admitted->preference.weights &&
      cached->bounds == admitted->preference.bounds;
  if (same_preference) {
    response.result = cached->result;
  } else {
    response.result =
        ReselectResult(cached->result, admitted->preference.weights,
                       admitted->preference.bounds);
  }
  // Provenance wins the label: a disk-tier promotion surfaces as kTierHit
  // whatever the preference match, so tier hits are observable end to end.
  if (from_tier) {
    response.cache = CacheOutcome::kTierHit;
    stats_.RecordTierHit();
  } else if (same_preference) {
    response.cache = CacheOutcome::kExactHit;
    stats_.RecordExactHit();
  } else {
    response.cache = CacheOutcome::kFrontierHit;
    stats_.RecordFrontierHit();
  }
  stats_.RecordCompleted();
  response.service_ms = admitted->since_submit.ElapsedMillis();
  admitted->promise.set_value(std::move(response));
}

void OptimizationService::ServeCoalesced(
    const std::shared_ptr<Admitted>& waiter,
    const std::shared_ptr<const OptimizerResult>& result) {
  ServiceResponse response;
  response.status = ResponseStatus::kCompleted;
  response.cache = CacheOutcome::kCoalescedHit;
  response.algorithm = waiter->decision.algorithm;
  response.alpha = waiter->decision.alpha;
  response.result = ReselectResult(result, waiter->preference.weights,
                                   waiter->preference.bounds);
  stats_.RecordCoalescedHit();
  stats_.RecordCompleted();
  response.service_ms = waiter->since_submit.ElapsedMillis();
  inflight_.fetch_sub(1, std::memory_order_acq_rel);
  waiter->promise.set_value(std::move(response));
}

std::vector<std::shared_ptr<OptimizationService::Admitted>>
OptimizationService::TakeWaiters(const ProblemSignature& signature) {
  MutexLock lock(coalesce_mu_);
  auto it = inflight_by_signature_.find(signature);
  if (it == inflight_by_signature_.end()) return {};
  std::vector<std::shared_ptr<Admitted>> waiters =
      std::move(it->second->waiters);
  inflight_by_signature_.erase(it);
  return waiters;
}

void OptimizationService::RunRequest(
    const std::shared_ptr<Admitted>& admitted) {
  const double queue_ms = admitted->since_submit.ElapsedMillis();
  TraceSpan request_span(&tracer_, "service", "request",
                         admitted->trace_id);
  request_span.AddArg("queue_us", static_cast<int64_t>(queue_ms * 1000.0));

  // Remaining budget after queueing. A spent budget degrades to quick mode
  // (timeout 0): Section 5.1 still produces one valid plan per table set,
  // so the caller never sees a null plan.
  int64_t timeout_ms = -1;
  if (admitted->deadline_ms >= 0) {
    const int64_t remaining =
        admitted->deadline_ms - static_cast<int64_t>(queue_ms);
    timeout_ms = remaining > 0 ? remaining : 0;
  }

  const PolicyDecision& decision = admitted->decision;
  ServiceResponse response;
  response.algorithm = decision.algorithm;
  response.alpha = decision.alpha;
  response.queue_ms = queue_ms;

  std::shared_ptr<const OptimizerResult> produced;
  bool complete = false;  // True iff produced carries the full guarantee.

  // The future must resolve and the inflight slot must come back even if
  // the optimizer throws (the EXA can exhaust memory on large instances),
  // so the whole optimization is fenced.
  try {
    // Epoch guard before the memo is read: a catalog whose statistics
    // were bumped since the memo's entries were published flushes them
    // (per-catalog tracking, so serving several catalogs does not thrash).
    if (subplan_memo_ != nullptr && decision.use_subplan_memo) {
      const Catalog& catalog = admitted->spec.query->catalog();
      subplan_memo_->ObserveCatalog(&catalog, catalog.epoch());
    }
    OptimizerOptions opts = MakeOptimizerOptions(
        decision.alpha, timeout_ms, decision.parallelism,
        decision.use_subplan_memo);
    opts.tracer = &tracer_;
    opts.trace_id = admitted->trace_id;
    std::unique_ptr<OptimizerBase> optimizer =
        MakeOptimizer(decision.algorithm, opts);
    StopWatch run_watch;
    TraceSpan optimize_span(&tracer_, "service", "optimize",
                            admitted->trace_id);
    optimize_span.AddArg("parallelism", decision.parallelism);
    auto result = std::make_shared<OptimizerResult>(
        optimizer->Optimize(admitted->problem));
    optimize_span.End();
    const double run_ms = run_watch.ElapsedMillis();

    const bool timed_out = result->metrics.timed_out;
    complete = !timed_out;
    if (admitted->cacheable && !timed_out) {
      // Insert before the promise resolves and before waiters drain: the
      // Submit() race-closing probe relies on insert-before-erase.
      cache_.Insert(
          admitted->signature,
          MakeCacheEntry(result, admitted->preference.weights,
                         admitted->preference.bounds,
                         AchievedAlpha(decision.algorithm, decision.alpha)));
    }
    if (timed_out) stats_.RecordDeadlineTimeout();
    stats_.RecordLatency(decision.algorithm, run_ms);
    stats_.RecordCompleted();

    response.status = timed_out ? ResponseStatus::kCompletedQuick
                                : ResponseStatus::kCompleted;
    produced = result;
    response.result = std::move(result);

    SlowQueryEntry slow;
    slow.signature = admitted->signature.hash;
    slow.algorithm = AlgorithmName(decision.algorithm);
    slow.total_ms = admitted->since_submit.ElapsedMillis();
    slow.queue_ms = queue_ms;
    slow.optimize_ms = run_ms;
    slow.alpha = decision.alpha;
    slow.frontier_size = produced->frontier_size();
    slow.phase = queue_ms > run_ms ? "queue" : "optimize";
    slow.sequence = slow_seq_.fetch_add(1, std::memory_order_relaxed);
    slow_log_.Offer(slow);
  } catch (...) {
    response.status = ResponseStatus::kRejected;
    response.result = nullptr;
    stats_.RecordInternalError();
  }
  response.service_ms = admitted->since_submit.ElapsedMillis();
  inflight_.fetch_sub(1, std::memory_order_acq_rel);
  admitted->promise.set_value(std::move(response));

  // Serve requests that coalesced behind this signature. Only the
  // registrant drains — a re-run ex-waiter must not steal a newer
  // primary's entry. A complete result answers every waiter by selection
  // over the shared PlanSet. A degraded or failed run (whose quick-mode
  // plan depends on the primary's weights) promotes ONE waiter to a new
  // primary and re-parks the rest behind it, so a failing signature never
  // fans out into a thundering herd of identical DP runs.
  if (admitted->coalesce_registered) {
    std::vector<std::shared_ptr<Admitted>> waiters =
        TakeWaiters(admitted->coalesce_key);
    if (complete && produced != nullptr) {
      for (const std::shared_ptr<Admitted>& waiter : waiters) {
        ServeCoalesced(waiter, produced);
      }
    } else if (!waiters.empty()) {
      std::shared_ptr<Admitted> promoted;
      {
        MutexLock lock(coalesce_mu_);
        auto it = inflight_by_signature_.find(admitted->coalesce_key);
        if (it != inflight_by_signature_.end()) {
          // A newer primary already took over: park everyone behind it.
          for (std::shared_ptr<Admitted>& waiter : waiters) {
            it->second->waiters.push_back(std::move(waiter));
          }
        } else {
          promoted = waiters.front();
          promoted->coalesce_registered = true;
          auto entry = std::make_shared<CoalesceEntry>();
          entry->waiters.assign(waiters.begin() + 1, waiters.end());
          inflight_by_signature_[admitted->coalesce_key] = std::move(entry);
        }
      }
      // Waiters are deadline-free, so a promoted primary runs without a
      // timeout and can only fail outright (e.g. OOM) — each failure
      // consumes one waiter, so promotion chains terminate.
      if (promoted != nullptr &&
          !pool_.Submit([this, promoted] { RunRequest(promoted); })) {
        RunRequest(promoted);  // Shutdown drain: run inline, never hang.
      }
    }
  }
}

ServiceStatsSnapshot OptimizationService::Stats() const {
  ServiceStatsSnapshot snapshot = stats_.Snapshot();
  // The cache is the single source of truth for its own counters.
  const PlanCache::Stats cache_stats = cache_.GetStats();
  snapshot.cache_hits = cache_stats.hits;
  snapshot.cache_misses = cache_stats.misses;
  snapshot.cache_evictions = cache_stats.evictions;
  snapshot.cache_entries = cache_stats.entries;
  snapshot.cache_bytes = cache_stats.bytes;
  snapshot.cached_frontier_plans = cache_stats.frontier_plans;
  if (subplan_memo_ != nullptr) {
    const SubplanMemo::Stats memo_stats = subplan_memo_->GetStats();
    snapshot.memo_hits = memo_stats.hits;
    snapshot.memo_misses = memo_stats.misses;
    snapshot.memo_insertions = memo_stats.insertions;
    snapshot.memo_evictions = memo_stats.evictions;
    snapshot.memo_admission_rejects = memo_stats.admission_rejects;
    snapshot.memo_invalidations = memo_stats.invalidations;
    snapshot.memo_entries = memo_stats.entries;
    snapshot.memo_bytes = memo_stats.bytes;
  }
  snapshot.pool_queue_depth = pool_.QueueDepth();
  snapshot.pool_queue_wait = pool_.QueueWaitSnapshot();
  if (ThreadPool* dp = dp_pool_ptr_.load(std::memory_order_acquire)) {
    snapshot.pool_queue_depth += dp->QueueDepth();
    snapshot.pool_queue_wait.Merge(dp->QueueWaitSnapshot());
  }
  snapshot.slow_queries = slow_log_.WorstFirst();
  return snapshot;
}

void OptimizationService::RegisterMetrics() {
  const auto stat = [this](uint64_t ServiceStatsSnapshot::*field) {
    return [this, field]() -> double {
      return static_cast<double>(stats_.Snapshot().*field);
    };
  };
  metrics_.AddCounter("moqo_requests_total", "One-shot requests submitted",
                      stat(&ServiceStatsSnapshot::requests_total));
  metrics_.AddCounter("moqo_completed_total", "Requests answered with a plan",
                      stat(&ServiceStatsSnapshot::completed));
  metrics_.AddCounter("moqo_rejected_total",
                      "Requests shed by admission control",
                      stat(&ServiceStatsSnapshot::admissions_rejected));
  metrics_.AddCounter("moqo_internal_errors_total",
                      "Invalid requests and optimizer failures",
                      stat(&ServiceStatsSnapshot::internal_errors));
  metrics_.AddCounter("moqo_deadline_timeouts_total",
                      "Requests degraded to quick mode",
                      stat(&ServiceStatsSnapshot::deadline_timeouts));
  metrics_.AddCounter("moqo_sessions_opened_total",
                      "Anytime frontier sessions opened",
                      stat(&ServiceStatsSnapshot::sessions_opened));
  metrics_.AddCounter("moqo_refinement_steps_total",
                      "Completed ladder rungs across all sessions",
                      stat(&ServiceStatsSnapshot::refinement_steps));
  metrics_.AddCounter("moqo_refinement_sheds_total",
                      "Refinement ladders shed by overload priority",
                      stat(&ServiceStatsSnapshot::refinement_sheds));
  metrics_.AddCounter("moqo_watchdog_fires_total",
                      "Sessions force-finished by the rung watchdog",
                      stat(&ServiceStatsSnapshot::watchdog_fires));
  metrics_.AddGauge("moqo_sessions_active", "Refinement ladders running now",
                    stat(&ServiceStatsSnapshot::sessions_active));
  metrics_.AddGauge("moqo_inflight", "Requests queued or running", [this] {
    return static_cast<double>(InFlight());
  });

  metrics_.AddCounter("moqo_cache_lookups_total", "PlanCache lookups",
                      {{"result", "hit"}}, [this] {
                        return static_cast<double>(cache_.GetStats().hits);
                      });
  metrics_.AddCounter("moqo_cache_lookups_total", "PlanCache lookups",
                      {{"result", "miss"}}, [this] {
                        return static_cast<double>(cache_.GetStats().misses);
                      });
  metrics_.AddGauge("moqo_cache_entries", "Resident PlanCache entries",
                    [this] {
                      return static_cast<double>(cache_.GetStats().entries);
                    });
  metrics_.AddGauge("moqo_cache_bytes", "Resident PlanCache bytes", [this] {
    return static_cast<double>(cache_.GetStats().bytes);
  });

  metrics_.AddCounter("moqo_memo_lookups_total",
                      "Cross-query subplan memo probes", {{"result", "hit"}},
                      [this] {
                        return static_cast<double>(MemoStats().hits);
                      });
  metrics_.AddCounter("moqo_memo_lookups_total",
                      "Cross-query subplan memo probes", {{"result", "miss"}},
                      [this] {
                        return static_cast<double>(MemoStats().misses);
                      });
  metrics_.AddGauge("moqo_memo_entries", "Resident memo entries", [this] {
    return static_cast<double>(MemoStats().entries);
  });
  metrics_.AddGauge("moqo_memo_bytes", "Resident memo bytes", [this] {
    return static_cast<double>(MemoStats().bytes);
  });

  metrics_.AddGauge("moqo_pool_queue_depth",
                    "Tasks waiting for a worker (request + DP pools)",
                    [this] {
                      size_t depth = pool_.QueueDepth();
                      ThreadPool* dp =
                          dp_pool_ptr_.load(std::memory_order_acquire);
                      if (dp != nullptr) depth += dp->QueueDepth();
                      return static_cast<double>(depth);
                    });
  metrics_.AddHistogram("moqo_pool_queue_wait_ms",
                        "Task enqueue-to-pickup wait (request + DP pools)",
                        [this] {
                          HistogramSnapshot wait = pool_.QueueWaitSnapshot();
                          ThreadPool* dp =
                              dp_pool_ptr_.load(std::memory_order_acquire);
                          if (dp != nullptr) {
                            wait.Merge(dp->QueueWaitSnapshot());
                          }
                          return wait;
                        });
  metrics_.AddHistogram("moqo_step_latency_ms",
                        "Per-rung refinement step latency", [this] {
                          return stats_.Snapshot().step_latency;
                        });
  metrics_.AddHistogram("moqo_first_frontier_ms",
                        "Session open to first published frontier", [this] {
                          return stats_.Snapshot().first_frontier_latency;
                        });
  for (int i = 0; i < kNumAlgorithmKinds; ++i) {
    metrics_.AddHistogram(
        "moqo_request_latency_ms", "Fresh optimization latency by algorithm",
        {{"algorithm", AlgorithmName(static_cast<AlgorithmKind>(i))}},
        [this, i] { return stats_.Snapshot().latency_by_algorithm[i]; });
  }

  metrics_.AddGauge("moqo_slow_query_worst_ms",
                    "Slowest retained slow-log request", [this] {
                      return slow_log_.WorstMs();
                    });
  metrics_.AddGauge("moqo_trace_events_recorded",
                    "Span events recorded by the tracer", [this] {
                      return static_cast<double>(tracer_.recorded_events());
                    });
  metrics_.AddCounter("moqo_tier_hits_total",
                      "Requests served from the RAM→disk tier",
                      stat(&ServiceStatsSnapshot::tier_hits));
  RegisterPersistMetrics();
}

std::string OptimizationService::SnapshotPath() const {
  return options_.persist.directory + "/moqo.snapshot";
}

bool OptimizationService::SnapshotNow() {
  if (options_.persist.directory.empty()) return false;
  MutexLock lock(snapshot_mu_);
  constexpr auto kRelaxed = std::memory_order_relaxed;
  persist::SnapshotWriter writer(options_.persist.catalog_epoch,
                                 kCostModelVersion);
  // ForEach holds one shard lock at a time; the lambdas only encode into
  // the writer's buffer and never re-enter the container.
  cache_.ForEach([&writer](const ProblemSignature& key,
                           const std::shared_ptr<const CachedFrontier>& value,
                           size_t /*bytes*/) {
    if (value == nullptr) return;
    std::string payload;
    if (!persist::EncodeFrontierPayload(*value, &payload)) return;
    writer.AddRecord(persist::RecordKind::kPlanCacheEntry, key.key, key.hash,
                     value->achieved_alpha, payload);
  });
  if (subplan_memo_ != nullptr) {
    subplan_memo_->ForEach(
        [&writer](const SubplanSignature& key,
                  const std::shared_ptr<const PlanSet>& value,
                  size_t /*bytes*/) {
          if (value == nullptr || value->empty()) return;
          std::string payload;
          persist::PlanSetCodec::Append(*value, &payload);
          // Memo identity lives entirely in the key (alpha is encoded
          // bit-exactly inside it), so records carry alpha 0.
          writer.AddRecord(persist::RecordKind::kMemoEntry, key.key, key.hash,
                           0.0, payload);
        });
  }
  const bool ok = writer.WriteFile(SnapshotPath());
  if (ok) {
    persist_counters_->snapshots_written.fetch_add(1, kRelaxed);
    persist_counters_->snapshot_records.fetch_add(writer.record_count(),
                                                  kRelaxed);
    persist_counters_->snapshot_bytes.fetch_add(writer.encoded_bytes(),
                                                kRelaxed);
  } else {
    persist_counters_->snapshot_failures.fetch_add(1, kRelaxed);
  }
  return ok;
}

size_t OptimizationService::RestoreNow() {
  if (options_.persist.directory.empty()) return 0;
  MutexLock lock(snapshot_mu_);
  constexpr auto kRelaxed = std::memory_order_relaxed;
  persist::PersistCounters& counters = *persist_counters_;
  counters.restores_attempted.fetch_add(1, kRelaxed);
  size_t restored = 0;
  uint64_t restored_bytes = 0;
  const persist::SnapshotReadResult result = persist::ReadSnapshot(
      SnapshotPath(),
      [this, &counters, kRelaxed](const persist::SnapshotHeader& header) {
        // The two semantic gates of the validation matrix. Stale cost
        // models make every stored cost wrong; a different catalog epoch
        // makes every content-derived key unreachable — either way the
        // snapshot is dead weight and restoring it would only pollute
        // the caches.
        if (header.cost_model_version != kCostModelVersion) {
          counters.restore_skipped_version.fetch_add(header.record_count,
                                                     kRelaxed);
          return false;
        }
        if (header.catalog_epoch != options_.persist.catalog_epoch) {
          counters.restore_skipped_epoch.fetch_add(header.record_count,
                                                   kRelaxed);
          return false;
        }
        return true;
      },
      [this, &counters, &restored, &restored_bytes,
       kRelaxed](const persist::SnapshotRecordView& record) {
        switch (record.kind) {
          case persist::RecordKind::kPlanCacheEntry: {
            auto frontier = persist::DecodeFrontierPayload(
                record.payload.data(), record.payload.size(),
                record.achieved_alpha);
            if (frontier == nullptr) return;
            ProblemSignature signature;
            signature.key.assign(record.key);
            signature.hash = record.key_hash;
            cache_.Insert(signature, std::move(frontier));
            counters.restored_plan_entries.fetch_add(1, kRelaxed);
            break;
          }
          case persist::RecordKind::kMemoEntry: {
            if (subplan_memo_ == nullptr) return;
            auto frontier = persist::PlanSetCodec::Decode(
                record.payload.data(), record.payload.size(), nullptr);
            if (frontier == nullptr) return;
            SubplanSignature signature;
            signature.key.assign(record.key);
            signature.hash = record.key_hash;
            subplan_memo_->Insert(signature, std::move(frontier));
            counters.restored_memo_entries.fetch_add(1, kRelaxed);
            break;
          }
          default:
            return;  // A future kind: skip, never crash.
        }
        ++restored;
        restored_bytes += record.payload.size();
      });
  if (result.loaded) {
    counters.restores_loaded.fetch_add(1, kRelaxed);
    if (result.header.format_version != persist::kFormatVersion) {
      counters.restore_skipped_version.fetch_add(result.header.record_count,
                                                 kRelaxed);
    }
  }
  counters.restore_skipped_checksum.fetch_add(result.skipped_checksum,
                                              kRelaxed);
  counters.restore_truncated.fetch_add(result.truncated, kRelaxed);
  counters.restore_bytes.fetch_add(restored_bytes, kRelaxed);
  return restored;
}

persist::PersistStatsSnapshot OptimizationService::PersistStats() const {
  constexpr auto kRelaxed = std::memory_order_relaxed;
  const persist::PersistCounters& c = *persist_counters_;
  persist::PersistStatsSnapshot s;
  s.snapshots_written = c.snapshots_written.load(kRelaxed);
  s.snapshot_failures = c.snapshot_failures.load(kRelaxed);
  s.snapshot_records = c.snapshot_records.load(kRelaxed);
  s.snapshot_bytes = c.snapshot_bytes.load(kRelaxed);
  s.restores_attempted = c.restores_attempted.load(kRelaxed);
  s.restores_loaded = c.restores_loaded.load(kRelaxed);
  s.restored_plan_entries = c.restored_plan_entries.load(kRelaxed);
  s.restored_memo_entries = c.restored_memo_entries.load(kRelaxed);
  s.restore_bytes = c.restore_bytes.load(kRelaxed);
  s.restore_skipped_epoch = c.restore_skipped_epoch.load(kRelaxed);
  s.restore_skipped_version = c.restore_skipped_version.load(kRelaxed);
  s.restore_skipped_checksum = c.restore_skipped_checksum.load(kRelaxed);
  s.restore_truncated = c.restore_truncated.load(kRelaxed);
  if (cache_tier_ != nullptr) {
    const persist::DiskTier::Stats tier = cache_tier_->GetStats();
    s.cache_tier_demotions = tier.demotions;
    s.cache_tier_promotions = tier.promotions;
    s.cache_tier_entries = tier.entries;
    s.cache_tier_bytes = tier.bytes;
  }
  if (memo_tier_ != nullptr) {
    const persist::DiskTier::Stats tier = memo_tier_->GetStats();
    s.memo_tier_demotions = tier.demotions;
    s.memo_tier_promotions = tier.promotions;
    s.memo_tier_entries = tier.entries;
    s.memo_tier_bytes = tier.bytes;
  }
  return s;
}

void OptimizationService::RegisterPersistMetrics() {
  // Samplers capture the shared counter blocks by value (shared_ptr), so
  // a scrape racing service teardown reads frozen counters, never freed
  // memory — the moqo_net_* pattern.
  const auto persist_stat =
      [counters = persist_counters_](
          std::atomic<uint64_t> persist::PersistCounters::*field) {
        return [counters, field]() -> double {
          return static_cast<double>(((*counters).*field).load(std::memory_order_relaxed));
        };
      };
  metrics_.AddCounter("moqo_persist_snapshots_total",
                      "Warm-state snapshots written",
                      persist_stat(&persist::PersistCounters::snapshots_written));
  metrics_.AddCounter(
      "moqo_persist_snapshot_failures_total",
      "Snapshot writes that failed (I/O or injected fault)",
      persist_stat(&persist::PersistCounters::snapshot_failures));
  metrics_.AddCounter("moqo_persist_snapshot_records_total",
                      "Records written across all snapshots",
                      persist_stat(&persist::PersistCounters::snapshot_records));
  metrics_.AddCounter("moqo_persist_snapshot_bytes_total",
                      "Encoded snapshot bytes written",
                      persist_stat(&persist::PersistCounters::snapshot_bytes));
  metrics_.AddCounter("moqo_persist_restores_total",
                      "Restore attempts (header validated or not)",
                      persist_stat(&persist::PersistCounters::restores_attempted));
  metrics_.AddCounter(
      "moqo_persist_restored_entries_total",
      "Entries restored from snapshots", {{"cache", "plan"}},
      persist_stat(&persist::PersistCounters::restored_plan_entries));
  metrics_.AddCounter(
      "moqo_persist_restored_entries_total",
      "Entries restored from snapshots", {{"cache", "memo"}},
      persist_stat(&persist::PersistCounters::restored_memo_entries));
  metrics_.AddCounter(
      "moqo_persist_restore_bytes_total", "Payload bytes restored",
      persist_stat(&persist::PersistCounters::restore_bytes));
  metrics_.AddCounter(
      "moqo_persist_restore_skipped_total",
      "Snapshot records skipped on restore", {{"reason", "epoch"}},
      persist_stat(&persist::PersistCounters::restore_skipped_epoch));
  metrics_.AddCounter(
      "moqo_persist_restore_skipped_total",
      "Snapshot records skipped on restore", {{"reason", "version"}},
      persist_stat(&persist::PersistCounters::restore_skipped_version));
  metrics_.AddCounter(
      "moqo_persist_restore_skipped_total",
      "Snapshot records skipped on restore", {{"reason", "checksum"}},
      persist_stat(&persist::PersistCounters::restore_skipped_checksum));
  metrics_.AddCounter(
      "moqo_persist_restore_truncated_total",
      "Snapshot records lost to a torn or short tail",
      persist_stat(&persist::PersistCounters::restore_truncated));

  const auto tier_metrics = [this](
                                const std::shared_ptr<persist::DiskTier>& tier,
                                const char* cache_label) {
    if (tier == nullptr) return;
    const auto tier_stat =
        [counters = tier->counters()](
            std::atomic<uint64_t> persist::DiskTier::Counters::*field) {
          return [counters, field]() -> double {
            return static_cast<double>(((*counters).*field).load(std::memory_order_relaxed));
          };
        };
    metrics_.AddCounter("moqo_persist_tier_demotions_total",
                        "Evicted entries demoted to the disk tier",
                        {{"cache", cache_label}},
                        tier_stat(&persist::DiskTier::Counters::demotions));
    metrics_.AddCounter("moqo_persist_tier_promotions_total",
                        "Tier hits promoted back to RAM",
                        {{"cache", cache_label}},
                        tier_stat(&persist::DiskTier::Counters::promotions));
    metrics_.AddCounter("moqo_persist_tier_dropped_total",
                        "Tier entries lost to shard resets",
                        {{"cache", cache_label}},
                        tier_stat(&persist::DiskTier::Counters::dropped));
    metrics_.AddGauge("moqo_persist_tier_entries",
                      "Live tier index entries", {{"cache", cache_label}},
                      tier_stat(&persist::DiskTier::Counters::entries));
    metrics_.AddGauge("moqo_persist_tier_bytes",
                      "Live tier on-disk record bytes",
                      {{"cache", cache_label}},
                      tier_stat(&persist::DiskTier::Counters::bytes));
  };
  tier_metrics(cache_tier_, "plan");
  tier_metrics(memo_tier_, "memo");
}

}  // namespace moqo
