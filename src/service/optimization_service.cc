// Copyright (c) 2026 moqo authors. MIT license.

#include "service/optimization_service.h"

#include <thread>
#include <utility>

#include "util/deadline.h"

namespace moqo {

namespace {

int ResolveWorkers(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// Builds a result over `plan_set` with `base`'s cold-run metrics and the
/// plan the preference selects from it. O(|plan_set|), no optimizer.
std::shared_ptr<const OptimizerResult> ResultOverPlanSet(
    const std::shared_ptr<const OptimizerResult>& base,
    std::shared_ptr<const PlanSet> plan_set, const WeightVector& weights,
    const BoundVector& bounds) {
  auto result = std::make_shared<OptimizerResult>();
  result->plan_set = std::move(plan_set);
  result->metrics = base->metrics;
  const PlanSelection selection =
      SelectPlan(*result->plan_set, weights, bounds);
  if (selection.plan != nullptr) {
    result->plan = selection.plan;
    result->cost = selection.cost;
    result->weighted_cost = selection.weighted_cost;
    result->respects_bounds =
        bounds.size() == 0 || bounds.Respects(selection.cost);
  }
  return result;
}

/// Scalarizes `base`'s shared PlanSet for a new preference: same frontier
/// and cold-run metrics, re-selected plan. O(|frontier|), no optimizer.
std::shared_ptr<const OptimizerResult> ReselectResult(
    const std::shared_ptr<const OptimizerResult>& base,
    const WeightVector& weights, const BoundVector& bounds) {
  return ResultOverPlanSet(base, base->plan_set, weights, bounds);
}

}  // namespace

/// Everything a worker needs to run one admitted request. Shared between
/// the submit path (which owns the promise), the pool task, and — for
/// coalesced waiters — the primary that serves them.
struct OptimizationService::Admitted {
  ProblemSpec spec;
  Preference preference;      ///< Weights/bounds normalized at Submit().
  /// Built once at submit time; `problem.query` points into `spec`.
  MOQOProblem problem;
  PolicyDecision decision;
  ProblemSignature signature;
  bool cacheable = false;
  /// True iff this request registered the in-flight coalescing entry for
  /// its signature (i.e. it is the primary later arrivals wait on).
  bool coalesce_registered = false;
  int64_t deadline_ms = -1;   ///< Total budget; -1 = none.
  StopWatch since_submit;     ///< Started at Submit().
  std::promise<ServiceResponse> promise;

  /// Resolves the future as kRejected (no result).
  void Reject() {
    ServiceResponse response;
    response.status = ResponseStatus::kRejected;
    response.algorithm = decision.algorithm;
    response.alpha = decision.alpha;
    response.service_ms = since_submit.ElapsedMillis();
    promise.set_value(std::move(response));
  }
};

OptimizationService::OptimizationService(ServiceOptions options)
    : options_(std::move(options)),
      cache_(options_.cache),
      pool_(ResolveWorkers(options_.num_workers)) {
  if (options_.enable_subplan_memo) {
    SubplanMemo::Options memo_options = options_.subplan_memo;
    if (memo_options.admission_epsilon < 0) {
      // Inherit the whole-query cache's compaction resolution: frontiers
      // denser than what the PlanCache would keep are not worth pinning.
      memo_options.admission_epsilon = options_.cache_compaction_epsilon;
    }
    subplan_memo_ = std::make_unique<SubplanMemo>(memo_options);
  }
}

OptimizationService::~OptimizationService() { pool_.Shutdown(); }

OptimizerOptions OptimizationService::MakeOptimizerOptions(
    double alpha, int64_t timeout_ms, int parallelism, bool use_memo) {
  OptimizerOptions opts;
  opts.alpha = alpha;
  opts.timeout_ms = timeout_ms;
  opts.operators = options_.operators;
  opts.bushy = options_.bushy;
  opts.cartesian_heuristic = options_.cartesian_heuristic;
  if (parallelism > 1) {
    std::call_once(dp_pool_once_, [this] {
      dp_pool_ = std::make_unique<ThreadPool>(
          ResolveWorkers(options_.num_dp_helpers));
    });
    opts.parallelism = parallelism;
    opts.dp_pool = dp_pool_.get();
  }
  if (use_memo) opts.subplan_memo = subplan_memo_.get();
  return opts;
}

std::future<ServiceResponse> OptimizationService::Submit(
    ServiceRequest request) {
  stats_.RecordRequest();
  auto admitted = std::make_shared<Admitted>();
  std::future<ServiceResponse> future = admitted->promise.get_future();

  admitted->deadline_ms = request.preference.deadline_ms >= 0
                              ? request.preference.deadline_ms
                              : options_.default_deadline_ms;
  admitted->spec = std::move(request.spec);
  admitted->preference = std::move(request.preference);

  if (admitted->spec.query == nullptr) {
    stats_.RecordInternalError();
    admitted->Reject();
    return future;
  }

  // Normalize the preference against the spec: empty or mis-sized weights
  // mean uniform, mis-sized bounds mean unbounded. The normalized form is
  // what selection, caching, and hit classification all see.
  const int dims = admitted->spec.objectives.size();
  if (admitted->preference.weights.size() != dims) {
    admitted->preference.weights = WeightVector::Uniform(dims);
  }
  if (admitted->preference.bounds.size() != dims) {
    admitted->preference.bounds = BoundVector();
  }

  admitted->problem.query = admitted->spec.query.get();
  admitted->problem.objectives = admitted->spec.objectives;
  admitted->problem.weights = admitted->preference.weights;
  admitted->problem.bounds = admitted->preference.bounds;

  PolicyDecision decision =
      ChooseAlgorithm(*admitted->spec.query, admitted->spec.objectives,
                      admitted->deadline_ms, options_.policy);
  if (admitted->spec.algorithm) {
    decision.algorithm = *admitted->spec.algorithm;
  }
  if (admitted->spec.alpha) decision.alpha = *admitted->spec.alpha;
  if (admitted->spec.parallelism) {
    decision.parallelism =
        *admitted->spec.parallelism < 1 ? 1 : *admitted->spec.parallelism;
  }
  // An explicit weighted-sum override runs the single-plan DP, whose
  // per-set output is preference-dependent — never memo-shared.
  if (decision.algorithm == AlgorithmKind::kWeightedSum) {
    decision.use_subplan_memo = false;
  }
  admitted->decision = decision;

  bool admission_held = false;
  if (options_.enable_cache) {
    admitted->signature = ComputeSignature(
        *admitted->spec.query, admitted->spec.objectives, decision.algorithm,
        decision.alpha,
        MakeOptimizerOptions(decision.alpha, -1, /*parallelism=*/1,
                             /*use_memo=*/false),
        &admitted->preference.weights, &admitted->preference.bounds);
    admitted->cacheable = true;
    std::shared_ptr<const CachedFrontier> cached =
        cache_.Lookup(admitted->signature);
    if (cached == nullptr && options_.enable_coalescing) {
      std::lock_guard<std::mutex> lock(coalesce_mu_);
      auto it = inflight_by_signature_.find(admitted->signature);
      if (it != inflight_by_signature_.end()) {
        // An identical miss is already being optimized. Deadline-free
        // requests wait on it instead of optimizing again (waiters hold
        // admission slots so the pending population stays bounded);
        // deadline-bounded ones run independently — a waiter cannot
        // degrade to quick mode when its budget expires mid-wait, and the
        // primary's run length is unknown.
        if (admitted->deadline_ms < 0) {
          const size_t prior =
              inflight_.fetch_add(1, std::memory_order_acq_rel);
          if (prior >= options_.max_inflight) {
            inflight_.fetch_sub(1, std::memory_order_acq_rel);
            stats_.RecordAdmissionRejected();
            admitted->Reject();
            return future;
          }
          it->second->waiters.push_back(admitted);
          return future;
        }
      } else {
        // No entry: either nothing is in flight or the primary just
        // finished. The primary inserts into the cache *before* erasing
        // its entry, so this second probe closes the race; the cache's
        // miss counter is reclassified on a hit so each request still
        // records exactly one lookup.
        cached = cache_.Lookup(admitted->signature, /*record_stats=*/false);
        if (cached != nullptr) {
          cache_.ReclassifyMissAsHit();
        } else {
          // Admit the primary BEFORE exposing its entry: waiters may only
          // park behind an admitted primary, so an admission reject here
          // can never cascade onto parked waiters, and waiter slots never
          // crowd out the primary's own slot.
          const size_t prior =
              inflight_.fetch_add(1, std::memory_order_acq_rel);
          if (prior >= options_.max_inflight) {
            inflight_.fetch_sub(1, std::memory_order_acq_rel);
            stats_.RecordAdmissionRejected();
            admitted->Reject();
            return future;
          }
          admission_held = true;
          inflight_by_signature_[admitted->signature] =
              std::make_shared<CoalesceEntry>();
          admitted->coalesce_registered = true;
        }
      }
    }
    if (cached != nullptr) {
      ServeFromCache(admitted, cached);
      return future;
    }
  }

  // Admission control: bound queued + running work so overload sheds load
  // instead of growing queue delay without limit. (Registered primaries
  // were already admitted under the coalesce lock above.)
  if (!admission_held) {
    const size_t prior = inflight_.fetch_add(1, std::memory_order_acq_rel);
    if (prior >= options_.max_inflight) {
      inflight_.fetch_sub(1, std::memory_order_acq_rel);
      stats_.RecordAdmissionRejected();
      AbandonPrimary(admitted);
      return future;
    }
  }

  const bool accepted =
      pool_.Submit([this, admitted] { RunRequest(admitted); });
  if (!accepted) {  // Shutdown raced the submit.
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    stats_.RecordAdmissionRejected();
    AbandonPrimary(admitted);
  }
  return future;
}

void OptimizationService::AbandonPrimary(
    const std::shared_ptr<Admitted>& admitted) {
  // A primary that registered a coalescing entry but will never run must
  // flush its waiters, or their futures would hang forever.
  if (admitted->coalesce_registered) {
    for (const std::shared_ptr<Admitted>& waiter :
         TakeWaiters(admitted->signature)) {
      inflight_.fetch_sub(1, std::memory_order_acq_rel);
      stats_.RecordAdmissionRejected();
      waiter->Reject();
    }
  }
  admitted->Reject();
}

void OptimizationService::ServeFromCache(
    const std::shared_ptr<Admitted>& admitted,
    const std::shared_ptr<const CachedFrontier>& cached) {
  ServiceResponse response;
  response.status = ResponseStatus::kCompleted;
  response.algorithm = admitted->decision.algorithm;
  response.alpha = admitted->decision.alpha;
  const bool same_preference =
      cached->weights == admitted->preference.weights &&
      cached->bounds == admitted->preference.bounds;
  if (same_preference) {
    response.cache = CacheOutcome::kExactHit;
    response.result = cached->result;
    stats_.RecordExactHit();
  } else {
    response.cache = CacheOutcome::kFrontierHit;
    response.result =
        ReselectResult(cached->result, admitted->preference.weights,
                       admitted->preference.bounds);
    stats_.RecordFrontierHit();
  }
  stats_.RecordCompleted();
  response.service_ms = admitted->since_submit.ElapsedMillis();
  admitted->promise.set_value(std::move(response));
}

void OptimizationService::ServeCoalesced(
    const std::shared_ptr<Admitted>& waiter,
    const std::shared_ptr<const OptimizerResult>& result) {
  ServiceResponse response;
  response.status = ResponseStatus::kCompleted;
  response.cache = CacheOutcome::kCoalescedHit;
  response.algorithm = waiter->decision.algorithm;
  response.alpha = waiter->decision.alpha;
  response.result = ReselectResult(result, waiter->preference.weights,
                                   waiter->preference.bounds);
  stats_.RecordCoalescedHit();
  stats_.RecordCompleted();
  response.service_ms = waiter->since_submit.ElapsedMillis();
  inflight_.fetch_sub(1, std::memory_order_acq_rel);
  waiter->promise.set_value(std::move(response));
}

std::vector<std::shared_ptr<OptimizationService::Admitted>>
OptimizationService::TakeWaiters(const ProblemSignature& signature) {
  std::lock_guard<std::mutex> lock(coalesce_mu_);
  auto it = inflight_by_signature_.find(signature);
  if (it == inflight_by_signature_.end()) return {};
  std::vector<std::shared_ptr<Admitted>> waiters =
      std::move(it->second->waiters);
  inflight_by_signature_.erase(it);
  return waiters;
}

void OptimizationService::RunRequest(
    const std::shared_ptr<Admitted>& admitted) {
  const double queue_ms = admitted->since_submit.ElapsedMillis();

  // Remaining budget after queueing. A spent budget degrades to quick mode
  // (timeout 0): Section 5.1 still produces one valid plan per table set,
  // so the caller never sees a null plan.
  int64_t timeout_ms = -1;
  if (admitted->deadline_ms >= 0) {
    const int64_t remaining =
        admitted->deadline_ms - static_cast<int64_t>(queue_ms);
    timeout_ms = remaining > 0 ? remaining : 0;
  }

  const PolicyDecision& decision = admitted->decision;
  ServiceResponse response;
  response.algorithm = decision.algorithm;
  response.alpha = decision.alpha;
  response.queue_ms = queue_ms;

  std::shared_ptr<const OptimizerResult> produced;
  bool complete = false;  // True iff produced carries the full guarantee.

  // The future must resolve and the inflight slot must come back even if
  // the optimizer throws (the EXA can exhaust memory on large instances),
  // so the whole optimization is fenced.
  try {
    // Epoch guard before the memo is read: a catalog whose statistics
    // were bumped since the memo's entries were published flushes them
    // (per-catalog tracking, so serving several catalogs does not thrash).
    if (subplan_memo_ != nullptr && decision.use_subplan_memo) {
      const Catalog& catalog = admitted->spec.query->catalog();
      subplan_memo_->ObserveCatalog(&catalog, catalog.epoch());
    }
    OptimizerOptions opts = MakeOptimizerOptions(
        decision.alpha, timeout_ms, decision.parallelism,
        decision.use_subplan_memo);
    std::unique_ptr<OptimizerBase> optimizer =
        MakeOptimizer(decision.algorithm, opts);
    StopWatch run_watch;
    auto result = std::make_shared<OptimizerResult>(
        optimizer->Optimize(admitted->problem));
    const double run_ms = run_watch.ElapsedMillis();

    const bool timed_out = result->metrics.timed_out;
    complete = !timed_out;
    if (admitted->cacheable && !timed_out) {
      // Insert before the promise resolves and before waiters drain: the
      // Submit() race-closing probe relies on insert-before-erase.
      auto cached = std::make_shared<CachedFrontier>();
      cached->result = result;
      if (options_.max_cached_frontier > 0 && result->plan_set != nullptr &&
          result->plan_set->size() > options_.max_cached_frontier) {
        // Cache a compacted epsilon-coverage copy so many-objective specs
        // do not pin huge PlanSets; the selection stored with it must come
        // from the compacted set (exact hits serve it verbatim).
        cached->result = ResultOverPlanSet(
            result,
            CompactPlanSet(result->plan_set,
                           options_.cache_compaction_epsilon,
                           options_.max_cached_frontier),
            admitted->preference.weights, admitted->preference.bounds);
      }
      cached->weights = admitted->preference.weights;
      cached->bounds = admitted->preference.bounds;
      cache_.Insert(admitted->signature, std::move(cached));
    }
    if (timed_out) stats_.RecordDeadlineTimeout();
    stats_.RecordLatency(decision.algorithm, run_ms);
    stats_.RecordCompleted();

    response.status = timed_out ? ResponseStatus::kCompletedQuick
                                : ResponseStatus::kCompleted;
    produced = result;
    response.result = std::move(result);
  } catch (...) {
    response.status = ResponseStatus::kRejected;
    response.result = nullptr;
    stats_.RecordInternalError();
  }
  response.service_ms = admitted->since_submit.ElapsedMillis();
  inflight_.fetch_sub(1, std::memory_order_acq_rel);
  admitted->promise.set_value(std::move(response));

  // Serve requests that coalesced behind this signature. Only the
  // registrant drains — a re-run ex-waiter must not steal a newer
  // primary's entry. A complete result answers every waiter by selection
  // over the shared PlanSet. A degraded or failed run (whose quick-mode
  // plan depends on the primary's weights) promotes ONE waiter to a new
  // primary and re-parks the rest behind it, so a failing signature never
  // fans out into a thundering herd of identical DP runs.
  if (admitted->coalesce_registered) {
    std::vector<std::shared_ptr<Admitted>> waiters =
        TakeWaiters(admitted->signature);
    if (complete && produced != nullptr) {
      for (const std::shared_ptr<Admitted>& waiter : waiters) {
        ServeCoalesced(waiter, produced);
      }
    } else if (!waiters.empty()) {
      std::shared_ptr<Admitted> promoted;
      {
        std::lock_guard<std::mutex> lock(coalesce_mu_);
        auto it = inflight_by_signature_.find(admitted->signature);
        if (it != inflight_by_signature_.end()) {
          // A newer primary already took over: park everyone behind it.
          for (std::shared_ptr<Admitted>& waiter : waiters) {
            it->second->waiters.push_back(std::move(waiter));
          }
        } else {
          promoted = waiters.front();
          promoted->coalesce_registered = true;
          auto entry = std::make_shared<CoalesceEntry>();
          entry->waiters.assign(waiters.begin() + 1, waiters.end());
          inflight_by_signature_[admitted->signature] = std::move(entry);
        }
      }
      // Waiters are deadline-free, so a promoted primary runs without a
      // timeout and can only fail outright (e.g. OOM) — each failure
      // consumes one waiter, so promotion chains terminate.
      if (promoted != nullptr &&
          !pool_.Submit([this, promoted] { RunRequest(promoted); })) {
        RunRequest(promoted);  // Shutdown drain: run inline, never hang.
      }
    }
  }
}

ServiceStatsSnapshot OptimizationService::Stats() const {
  ServiceStatsSnapshot snapshot = stats_.Snapshot();
  // The cache is the single source of truth for its own counters.
  const PlanCache::Stats cache_stats = cache_.GetStats();
  snapshot.cache_hits = cache_stats.hits;
  snapshot.cache_misses = cache_stats.misses;
  snapshot.cache_evictions = cache_stats.evictions;
  snapshot.cache_entries = cache_stats.entries;
  snapshot.cache_bytes = cache_stats.bytes;
  snapshot.cached_frontier_plans = cache_stats.frontier_plans;
  if (subplan_memo_ != nullptr) {
    const SubplanMemo::Stats memo_stats = subplan_memo_->GetStats();
    snapshot.memo_hits = memo_stats.hits;
    snapshot.memo_misses = memo_stats.misses;
    snapshot.memo_insertions = memo_stats.insertions;
    snapshot.memo_evictions = memo_stats.evictions;
    snapshot.memo_admission_rejects = memo_stats.admission_rejects;
    snapshot.memo_invalidations = memo_stats.invalidations;
    snapshot.memo_entries = memo_stats.entries;
    snapshot.memo_bytes = memo_stats.bytes;
  }
  return snapshot;
}

}  // namespace moqo
