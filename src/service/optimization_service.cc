// Copyright (c) 2026 moqo authors. MIT license.

#include "service/optimization_service.h"

#include <thread>
#include <utility>

#include "util/deadline.h"

namespace moqo {

namespace {

int ResolveWorkers(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace

/// Everything a worker needs to run one admitted request. Shared between
/// the submit path (which owns the promise) and the pool task.
struct OptimizationService::Admitted {
  ServiceRequest request;
  /// Built once at submit time; `problem.query` points into `request`.
  MOQOProblem problem;
  PolicyDecision decision;
  ProblemSignature signature;
  bool cacheable = false;
  int64_t deadline_ms = -1;   ///< Total budget; -1 = none.
  StopWatch since_submit;     ///< Started at Submit().
  std::promise<ServiceResponse> promise;

  /// Resolves the future as kRejected (no result).
  void Reject() {
    ServiceResponse response;
    response.status = ResponseStatus::kRejected;
    response.algorithm = decision.algorithm;
    response.alpha = decision.alpha;
    response.service_ms = since_submit.ElapsedMillis();
    promise.set_value(std::move(response));
  }
};

OptimizationService::OptimizationService(ServiceOptions options)
    : options_(std::move(options)),
      cache_(options_.cache),
      pool_(ResolveWorkers(options_.num_workers)) {}

OptimizationService::~OptimizationService() { pool_.Shutdown(); }

OptimizerOptions OptimizationService::MakeOptimizerOptions(
    double alpha, int64_t timeout_ms) const {
  OptimizerOptions opts;
  opts.alpha = alpha;
  opts.timeout_ms = timeout_ms;
  opts.operators = options_.operators;
  opts.bushy = options_.bushy;
  opts.cartesian_heuristic = options_.cartesian_heuristic;
  return opts;
}

std::future<ServiceResponse> OptimizationService::Submit(
    ServiceRequest request) {
  stats_.RecordRequest();
  auto admitted = std::make_shared<Admitted>();
  std::future<ServiceResponse> future = admitted->promise.get_future();

  admitted->deadline_ms = request.deadline_ms >= 0
                              ? request.deadline_ms
                              : options_.default_deadline_ms;
  admitted->request = std::move(request);

  if (admitted->request.query == nullptr) {
    stats_.RecordInternalError();
    admitted->Reject();
    return future;
  }

  admitted->problem.query = admitted->request.query.get();
  admitted->problem.objectives = admitted->request.objectives;
  admitted->problem.weights = admitted->request.weights;
  admitted->problem.bounds = admitted->request.bounds;

  PolicyDecision decision = ChooseAlgorithm(
      admitted->problem, admitted->deadline_ms, options_.policy);
  if (admitted->request.algorithm) {
    decision.algorithm = *admitted->request.algorithm;
  }
  if (admitted->request.alpha) decision.alpha = *admitted->request.alpha;
  admitted->decision = decision;

  if (options_.enable_cache) {
    admitted->signature =
        ComputeSignature(admitted->problem, decision.algorithm,
                         decision.alpha,
                         MakeOptimizerOptions(decision.alpha, -1),
                         options_.signature);
    admitted->cacheable = true;
    if (std::shared_ptr<const OptimizerResult> cached =
            cache_.Lookup(admitted->signature)) {
      stats_.RecordCompleted();
      ServiceResponse response;
      response.status = ResponseStatus::kCompleted;
      response.cache_hit = true;
      response.algorithm = decision.algorithm;
      response.alpha = decision.alpha;
      response.result = std::move(cached);
      response.service_ms = admitted->since_submit.ElapsedMillis();
      admitted->promise.set_value(std::move(response));
      return future;
    }
  }

  // Admission control: bound queued + running work so overload sheds load
  // instead of growing queue delay without limit.
  const size_t prior = inflight_.fetch_add(1, std::memory_order_acq_rel);
  if (prior >= options_.max_inflight) {
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    stats_.RecordAdmissionRejected();
    admitted->Reject();
    return future;
  }

  const bool accepted =
      pool_.Submit([this, admitted] { RunRequest(admitted); });
  if (!accepted) {  // Shutdown raced the submit.
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    stats_.RecordAdmissionRejected();
    admitted->Reject();
  }
  return future;
}

void OptimizationService::RunRequest(
    const std::shared_ptr<Admitted>& admitted) {
  const double queue_ms = admitted->since_submit.ElapsedMillis();

  // Remaining budget after queueing. A spent budget degrades to quick mode
  // (timeout 0): Section 5.1 still produces one valid plan per table set,
  // so the caller never sees a null plan.
  int64_t timeout_ms = -1;
  if (admitted->deadline_ms >= 0) {
    const int64_t remaining =
        admitted->deadline_ms - static_cast<int64_t>(queue_ms);
    timeout_ms = remaining > 0 ? remaining : 0;
  }

  const PolicyDecision& decision = admitted->decision;
  ServiceResponse response;
  response.algorithm = decision.algorithm;
  response.alpha = decision.alpha;
  response.queue_ms = queue_ms;

  // The future must resolve and the inflight slot must come back even if
  // the optimizer throws (the EXA can exhaust memory on large instances),
  // so the whole optimization is fenced.
  try {
    OptimizerOptions opts = MakeOptimizerOptions(decision.alpha, timeout_ms);
    std::unique_ptr<OptimizerBase> optimizer =
        MakeOptimizer(decision.algorithm, opts);
    StopWatch run_watch;
    auto result = std::make_shared<OptimizerResult>(
        optimizer->Optimize(admitted->problem));
    const double run_ms = run_watch.ElapsedMillis();

    const bool timed_out = result->metrics.timed_out;
    if (admitted->cacheable && !timed_out) {
      cache_.Insert(admitted->signature, result);
    }
    if (timed_out) stats_.RecordDeadlineTimeout();
    stats_.RecordLatency(decision.algorithm, run_ms);
    stats_.RecordCompleted();

    response.status = timed_out ? ResponseStatus::kCompletedQuick
                                : ResponseStatus::kCompleted;
    response.result = std::move(result);
  } catch (...) {
    response.status = ResponseStatus::kRejected;
    response.result = nullptr;
    stats_.RecordInternalError();
  }
  response.service_ms = admitted->since_submit.ElapsedMillis();
  inflight_.fetch_sub(1, std::memory_order_acq_rel);
  admitted->promise.set_value(std::move(response));
}

ServiceStatsSnapshot OptimizationService::Stats() const {
  ServiceStatsSnapshot snapshot = stats_.Snapshot();
  // The cache is the single source of truth for its own counters.
  const PlanCache::Stats cache_stats = cache_.GetStats();
  snapshot.cache_hits = cache_stats.hits;
  snapshot.cache_misses = cache_stats.misses;
  snapshot.cache_evictions = cache_stats.evictions;
  return snapshot;
}

}  // namespace moqo
