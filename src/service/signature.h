// Copyright (c) 2026 moqo authors. MIT license.
//
// ProblemSignature: the canonical cache key of the optimization service.
//
// A signature captures everything that determines the *frontier* an
// optimizer produces: the query structure (canonical join-graph encoding,
// src/query/canonical), the active objective selection, the resolved
// algorithm, and the plan-space switches. It is deliberately
// **weight-free**: for the frontier-producing algorithms (EXA, RTA,
// Selinger) the approximate Pareto set does not depend on the request's
// preference, so any weight or bound change on a cached query is answered
// by O(|frontier|) SelectPlan over the shared PlanSet instead of a new DP
// run. Since PR 5 it is also **alpha-free** for those algorithms — the
// relaxed identity the anytime sessions rely on: the precision alpha
// determines how *good* a frontier is, not which problem it answers, so
// the PlanCache tags each entry with its achieved alpha and a
// tighter-alpha entry serves any looser-alpha request (see
// service/plan_cache.h). Contexts that do need exact-run identity — the
// in-flight coalescing map, the session registry — extend the base
// signature with the precision via ExtendSignature. The two
// preference-dependent algorithms (the IRA refines toward its bounds, the
// weighted-sum baseline prunes by weighted cost) encode alpha AND the
// preference bit-exactly, so their entries are reused only for identical
// requests. The full key participates in equality, so hash collisions can
// never return a wrong plan.

#ifndef MOQO_SERVICE_SIGNATURE_H_
#define MOQO_SERVICE_SIGNATURE_H_

#include <cstdint>
#include <string>

#include "core/optimizer.h"
#include "core/algorithm.h"

namespace moqo {

/// An equality-comparable canonical cache key with a precomputed hash.
struct ProblemSignature {
  std::string key;    ///< Canonical byte encoding; defines equality.
  uint64_t hash = 0;  ///< FNV-1a of `key`; shard + hash-table routing.

  bool operator==(const ProblemSignature& other) const {
    return hash == other.hash && key == other.key;
  }
};

/// True iff the algorithm's full output — not just the selected plan —
/// depends on the request's weights/bounds, making its cache entries
/// preference-specific.
inline bool IsPreferenceDependent(AlgorithmKind algorithm) {
  return algorithm == AlgorithmKind::kIra ||
         algorithm == AlgorithmKind::kWeightedSum;
}

/// Computes the signature of running `algorithm` with precision `alpha` on
/// `query` over `objectives` under `options` (only result-relevant
/// switches are encoded: plan space, operator space, pruning mode — not
/// the timeout). `alpha`, `weights` and `bounds` are encoded only when the
/// algorithm IsPreferenceDependent; pass null preferences otherwise (or
/// always — they are ignored for frontier-producing algorithms, whose
/// signatures are alpha- and preference-free by design).
ProblemSignature ComputeSignature(const Query& query,
                                  const ObjectiveSet& objectives,
                                  AlgorithmKind algorithm, double alpha,
                                  const OptimizerOptions& options,
                                  const WeightVector* weights = nullptr,
                                  const BoundVector* bounds = nullptr);

/// `base` with `alpha` appended bit-exactly (and the hash recomputed):
/// the exact-run identity used where relaxed alpha matching would be
/// wrong — two in-flight runs at different precisions must not coalesce,
/// and two sessions refining to different targets must not share a ladder.
ProblemSignature ExtendSignature(const ProblemSignature& base, double alpha);

}  // namespace moqo

namespace std {
template <>
struct hash<moqo::ProblemSignature> {
  size_t operator()(const moqo::ProblemSignature& sig) const noexcept {
    return static_cast<size_t>(sig.hash);
  }
};
}  // namespace std

#endif  // MOQO_SERVICE_SIGNATURE_H_
