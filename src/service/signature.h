// Copyright (c) 2026 moqo authors. MIT license.
//
// ProblemSignature: the canonical cache key of the optimization service.
//
// A signature captures everything that determines an optimizer's output:
// the query structure (canonical join-graph encoding, src/query/canonical),
// the active objective selection, weights and bounds (quantized into
// buckets so near-identical parameter vectors share cached plans), the
// resolved algorithm and its precision alpha, and the plan-space switches.
// Requests with equal signatures are served the same cached result; the
// full key participates in equality, so hash collisions can never return a
// wrong plan.

#ifndef MOQO_SERVICE_SIGNATURE_H_
#define MOQO_SERVICE_SIGNATURE_H_

#include <cstdint>
#include <string>

#include "core/optimizer.h"
#include "core/algorithm.h"

namespace moqo {

/// Quantization of the continuous problem parameters. Weights live in a
/// bounded range (Section 8 draws them from [0,1]), so they bucket on a
/// linear grid; bounds span orders of magnitude (milliseconds to bytes), so
/// they bucket on a relative (logarithmic) grid. A step of 0 disables
/// bucketing for that component (bit-exact matching).
struct SignatureOptions {
  /// Linear grid step for weights: weights within the same step collapse
  /// into one bucket. Default trades ~0.01% weighted-cost error for reuse.
  double weight_bucket = 1e-4;
  /// Relative grid for finite bounds: bounds within a factor of
  /// (1 + bound_bucket_rel) of each other collapse into one bucket.
  double bound_bucket_rel = 1e-4;
};

/// An equality-comparable canonical cache key with a precomputed hash.
struct ProblemSignature {
  std::string key;    ///< Canonical byte encoding; defines equality.
  uint64_t hash = 0;  ///< FNV-1a of `key`; shard + hash-table routing.

  bool operator==(const ProblemSignature& other) const {
    return hash == other.hash && key == other.key;
  }
};

/// Computes the signature of running `algorithm` with precision `alpha` on
/// `problem` under `options` (only result-relevant switches are encoded:
/// plan space, operator space, pruning mode — not the timeout).
ProblemSignature ComputeSignature(const MOQOProblem& problem,
                                  AlgorithmKind algorithm, double alpha,
                                  const OptimizerOptions& options,
                                  const SignatureOptions& sig_options = {});

}  // namespace moqo

namespace std {
template <>
struct hash<moqo::ProblemSignature> {
  size_t operator()(const moqo::ProblemSignature& sig) const noexcept {
    return static_cast<size_t>(sig.hash);
  }
};
}  // namespace std

#endif  // MOQO_SERVICE_SIGNATURE_H_
