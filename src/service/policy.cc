// Copyright (c) 2026 moqo authors. MIT license.

#include "service/policy.h"

namespace moqo {

PolicyDecision ChooseAlgorithm(const Query& query,
                               const ObjectiveSet& objectives,
                               int64_t deadline_ms,
                               const PolicyOptions& options) {
  PolicyDecision decision;
  const bool tight =
      deadline_ms >= 0 && deadline_ms <= options.tight_deadline_ms;
  const int num_tables = query.num_tables();
  const int num_objectives = objectives.size();

  if (num_objectives <= 1) {
    // Single-objective: the classic Selinger DP is exact and cheapest.
    decision.algorithm = AlgorithmKind::kSelinger;
    decision.alpha = 1.0;
    return decision;
  }

  if (!tight && num_tables <= options.exa_max_tables &&
      num_objectives <= options.exa_max_objectives) {
    decision.algorithm = AlgorithmKind::kExa;
    decision.alpha = 1.0;
    return decision;
  }

  decision.algorithm = AlgorithmKind::kRta;
  decision.alpha = tight ? options.tight_alpha : options.default_alpha;
  return decision;
}

}  // namespace moqo
