// Copyright (c) 2026 moqo authors. MIT license.

#include "service/policy.h"

#include <thread>

namespace moqo {

namespace {

/// Deterministic for a fixed host: hardware concurrency only enters when
/// max_parallelism = 0, and parallelism never affects the frontier (or the
/// cache signature), so routing stays reproducible where it matters.
int ResolveParallelism(const Query& query, const PolicyOptions& options) {
  if (query.num_tables() < options.parallel_min_tables) return 1;
  int cap = options.max_parallelism;
  if (cap == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    cap = hw == 0 ? 1 : static_cast<int>(hw);
  }
  return cap < 1 ? 1 : cap;
}

}  // namespace

PolicyDecision ChooseAlgorithm(const Query& query,
                               const ObjectiveSet& objectives,
                               int64_t deadline_ms,
                               const PolicyOptions& options) {
  PolicyDecision decision;
  const bool tight =
      deadline_ms >= 0 && deadline_ms <= options.tight_deadline_ms;
  const int num_tables = query.num_tables();
  const int num_objectives = objectives.size();
  decision.parallelism = ResolveParallelism(query, options);
  // Every algorithm the policy routes to builds sub-problem-determined
  // table-set frontiers, so all of them may share through the subplan
  // memo; the service clears this for an explicit weighted-sum override.
  decision.use_subplan_memo = true;

  if (num_objectives <= 1) {
    // Single-objective: the classic Selinger DP is exact and cheapest.
    decision.algorithm = AlgorithmKind::kSelinger;
    decision.alpha = 1.0;
    return decision;
  }

  if (!tight && num_tables <= options.exa_max_tables &&
      num_objectives <= options.exa_max_objectives) {
    decision.algorithm = AlgorithmKind::kExa;
    decision.alpha = 1.0;
    return decision;
  }

  decision.algorithm = AlgorithmKind::kRta;
  decision.alpha = tight ? options.tight_alpha : options.default_alpha;
  return decision;
}

}  // namespace moqo
