// Copyright (c) 2026 moqo authors. MIT license.

#include "service/stats.h"

#include <sstream>

namespace moqo {

void ServiceStatsRegistry::RecordLatency(AlgorithmKind algorithm, double ms) {
  LatencyCell& cell = latency_[static_cast<int>(algorithm)];
  std::lock_guard<std::mutex> lock(cell.mu);
  cell.stats.count += 1;
  cell.stats.total_ms += ms;
  if (ms > cell.stats.max_ms) cell.stats.max_ms = ms;
}

void ServiceStatsRegistry::RecordRefinementStep(double ms) {
  refinement_steps_.fetch_add(1, kRelaxed);
  std::lock_guard<std::mutex> lock(step_latency_.mu);
  step_latency_.stats.count += 1;
  step_latency_.stats.total_ms += ms;
  if (ms > step_latency_.stats.max_ms) step_latency_.stats.max_ms = ms;
}

ServiceStatsSnapshot ServiceStatsRegistry::Snapshot() const {
  ServiceStatsSnapshot snapshot;
  snapshot.requests_total = requests_total_.load(kRelaxed);
  snapshot.exact_hits = exact_hits_.load(kRelaxed);
  snapshot.frontier_hits = frontier_hits_.load(kRelaxed);
  snapshot.coalesced_hits = coalesced_hits_.load(kRelaxed);
  snapshot.admissions_rejected = admissions_rejected_.load(kRelaxed);
  snapshot.internal_errors = internal_errors_.load(kRelaxed);
  snapshot.deadline_timeouts = deadline_timeouts_.load(kRelaxed);
  snapshot.completed = completed_.load(kRelaxed);
  snapshot.sessions_opened = sessions_opened_.load(kRelaxed);
  snapshot.sessions_coalesced = sessions_coalesced_.load(kRelaxed);
  snapshot.sessions_active = sessions_active_.load(kRelaxed);
  snapshot.refinement_steps = refinement_steps_.load(kRelaxed);
  {
    std::lock_guard<std::mutex> lock(step_latency_.mu);
    snapshot.step_latency = step_latency_.stats;
  }
  for (int i = 0; i < kNumAlgorithms; ++i) {
    std::lock_guard<std::mutex> lock(latency_[i].mu);
    snapshot.latency_by_algorithm[i] = latency_[i].stats;
  }
  return snapshot;
}

std::string ServiceStatsSnapshot::ToString() const {
  std::ostringstream out;
  out << "requests=" << requests_total << " completed=" << completed
      << " cache_hits=" << cache_hits << " cache_misses=" << cache_misses
      << " hit_rate=" << CacheHitRate() << " exact_hits=" << exact_hits
      << " frontier_hits=" << frontier_hits
      << " coalesced=" << coalesced_hits
      << " rejected=" << admissions_rejected
      << " errors=" << internal_errors << " timeouts=" << deadline_timeouts
      << " evictions=" << cache_evictions << "\n"
      << "  cache: entries=" << cache_entries << " bytes=" << cache_bytes
      << " frontier_plans=" << cached_frontier_plans
      << " mean_frontier=" << MeanCachedFrontier() << "\n"
      << "  memo: hits=" << memo_hits << " misses=" << memo_misses
      << " hit_rate=" << MemoHitRate() << " entries=" << memo_entries
      << " bytes=" << memo_bytes << " inserted=" << memo_insertions
      << " evicted=" << memo_evictions
      << " admission_rejects=" << memo_admission_rejects
      << " invalidations=" << memo_invalidations << "\n"
      << "  sessions: opened=" << sessions_opened
      << " coalesced=" << sessions_coalesced
      << " active=" << sessions_active
      << " refinement_steps=" << refinement_steps
      << " step_mean_ms=" << step_latency.MeanMs()
      << " step_max_ms=" << step_latency.max_ms << "\n";
  for (int i = 0; i < static_cast<int>(latency_by_algorithm.size()); ++i) {
    const LatencyStats& lat = latency_by_algorithm[i];
    if (lat.count == 0) continue;
    out << "  " << AlgorithmName(static_cast<AlgorithmKind>(i))
        << ": runs=" << lat.count << " mean_ms=" << lat.MeanMs()
        << " max_ms=" << lat.max_ms << "\n";
  }
  return out.str();
}

}  // namespace moqo
