// Copyright (c) 2026 moqo authors. MIT license.

#include "service/stats.h"

#include <sstream>

namespace moqo {
namespace {

/// "p50=1.2 p95=3.4 p99=5.6 max=7.8" — the snapshot's uniform latency
/// rendering.
void AppendQuantiles(std::ostringstream* out, const HistogramSnapshot& h) {
  *out << "p50_ms=" << h.PercentileMs(50) << " p95_ms=" << h.PercentileMs(95)
       << " p99_ms=" << h.PercentileMs(99) << " max_ms=" << h.max_ms;
}

}  // namespace

ServiceStatsSnapshot ServiceStatsRegistry::Snapshot() const {
  ServiceStatsSnapshot snapshot;
  snapshot.requests_total = requests_total_.load(kRelaxed);
  snapshot.exact_hits = exact_hits_.load(kRelaxed);
  snapshot.frontier_hits = frontier_hits_.load(kRelaxed);
  snapshot.coalesced_hits = coalesced_hits_.load(kRelaxed);
  snapshot.tier_hits = tier_hits_.load(kRelaxed);
  snapshot.admissions_rejected = admissions_rejected_.load(kRelaxed);
  snapshot.internal_errors = internal_errors_.load(kRelaxed);
  snapshot.deadline_timeouts = deadline_timeouts_.load(kRelaxed);
  snapshot.completed = completed_.load(kRelaxed);
  snapshot.sessions_opened = sessions_opened_.load(kRelaxed);
  snapshot.sessions_coalesced = sessions_coalesced_.load(kRelaxed);
  snapshot.sessions_active = sessions_active_.load(kRelaxed);
  snapshot.refinement_steps = refinement_steps_.load(kRelaxed);
  snapshot.refinement_sheds = refinement_sheds_.load(kRelaxed);
  snapshot.watchdog_fires = watchdog_fires_.load(kRelaxed);
  snapshot.step_latency = step_latency_.Snapshot();
  snapshot.first_frontier_latency = first_frontier_.Snapshot();
  for (int i = 0; i < kNumAlgorithms; ++i) {
    snapshot.latency_by_algorithm[i] = latency_[i].Snapshot();
  }
  return snapshot;
}

std::string ServiceStatsSnapshot::ToString() const {
  std::ostringstream out;
  out << "requests=" << requests_total << " completed=" << completed
      << " cache_hits=" << cache_hits << " cache_misses=" << cache_misses
      << " hit_rate=" << CacheHitRate() << " exact_hits=" << exact_hits
      << " frontier_hits=" << frontier_hits
      << " coalesced=" << coalesced_hits << " tier_hits=" << tier_hits
      << " rejected=" << admissions_rejected
      << " errors=" << internal_errors << " timeouts=" << deadline_timeouts
      << " evictions=" << cache_evictions << "\n"
      << "  cache: entries=" << cache_entries << " bytes=" << cache_bytes
      << " frontier_plans=" << cached_frontier_plans
      << " mean_frontier=" << MeanCachedFrontier() << "\n"
      << "  memo: hits=" << memo_hits << " misses=" << memo_misses
      << " hit_rate=" << MemoHitRate() << " entries=" << memo_entries
      << " bytes=" << memo_bytes << " inserted=" << memo_insertions
      << " evicted=" << memo_evictions
      << " admission_rejects=" << memo_admission_rejects
      << " invalidations=" << memo_invalidations << "\n"
      << "  sessions: opened=" << sessions_opened
      << " coalesced=" << sessions_coalesced
      << " active=" << sessions_active
      << " refinement_steps=" << refinement_steps
      << " refinement_sheds=" << refinement_sheds
      << " watchdog_fires=" << watchdog_fires << "\n"
      << "  pool: queue_depth=" << pool_queue_depth << " queue_wait ";
  AppendQuantiles(&out, pool_queue_wait);
  out << "\n  step_latency: runs=" << step_latency.count << " ";
  AppendQuantiles(&out, step_latency);
  out << "\n  first_frontier: sessions=" << first_frontier_latency.count
      << " ";
  AppendQuantiles(&out, first_frontier_latency);
  out << "\n";
  for (int i = 0; i < static_cast<int>(latency_by_algorithm.size()); ++i) {
    const HistogramSnapshot& lat = latency_by_algorithm[i];
    if (lat.count == 0) continue;
    out << "  " << AlgorithmName(static_cast<AlgorithmKind>(i))
        << ": runs=" << lat.count << " mean_ms=" << lat.MeanMs() << " ";
    AppendQuantiles(&out, lat);
    out << "\n";
  }
  if (!slow_queries.empty()) {
    out << "  slow_queries (worst " << slow_queries.size() << "):\n";
    for (const SlowQueryEntry& q : slow_queries) {
      out << "    sig=" << std::hex << q.signature << std::dec
          << " algo=" << q.algorithm << " total_ms=" << q.total_ms
          << " queue_ms=" << q.queue_ms << " optimize_ms=" << q.optimize_ms
          << " alpha=" << q.alpha << " frontier=" << q.frontier_size
          << " phase=" << q.phase << "\n";
    }
  }
  return out.str();
}

}  // namespace moqo
