// Copyright (c) 2026 moqo authors. MIT license.
//
// ThreadPool: a fixed-size worker pool with a mutex-protected FIFO queue.
//
// One optimization run is CPU-bound for milliseconds to seconds, so a
// simple condition-variable queue is nowhere near the bottleneck; the pool
// exists to bound concurrency (workers = cores by default) while the
// service queues bursts ahead of it. Shutdown drains the queue: tasks
// already admitted run to completion, which lets the service guarantee
// that every accepted request's future resolves.

#ifndef MOQO_SERVICE_THREAD_POOL_H_
#define MOQO_SERVICE_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace moqo {

class ThreadPool {
 public:
  explicit ThreadPool(int num_threads) {
    if (num_threads < 1) num_threads = 1;
    workers_.reserve(num_threads);
    for (int i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() { Shutdown(); }

  /// Enqueues `task`; returns false (dropping the task) after Shutdown().
  bool Submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (shutdown_) return false;
      queue_.push_back(std::move(task));
    }
    cv_.notify_one();
    return true;
  }

  /// Stops accepting tasks, drains the queue, and joins all workers.
  /// Idempotent.
  void Shutdown() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (shutdown_) return;
      shutdown_ = true;
    }
    cv_.notify_all();
    for (std::thread& worker : workers_) {
      if (worker.joinable()) worker.join();
    }
  }

  int num_threads() const { return static_cast<int>(workers_.size()); }

  size_t QueueDepth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }

 private:
  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
        if (queue_.empty()) return;  // shutdown_ and drained.
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
    }
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace moqo

#endif  // MOQO_SERVICE_THREAD_POOL_H_
