// Copyright (c) 2026 moqo authors. MIT license.

#include "service/frontier_session.h"

#include <algorithm>
#include <chrono>

#include "obs/trace.h"
#include "service/stats.h"

namespace moqo {

std::shared_ptr<const PlanSet> FrontierSession::BestFrontier() const {
  MutexLock lock(mu_);
  return best_;
}

double FrontierSession::BestAlpha() const {
  MutexLock lock(mu_);
  return best_alpha_;
}

SessionSelection FrontierSession::Select(const Preference& preference) const {
  SessionSelection result;
  std::shared_ptr<const PlanSet> frontier;
  {
    MutexLock lock(mu_);
    if (best_ == nullptr) return result;
    frontier = best_;
    result.alpha = best_alpha_;
    result.step = static_cast<int>(history_.size()) - 1;
  }
  // Selection runs outside the lock over the immutable snapshot: a rung
  // landing concurrently swaps best_ but never mutates this PlanSet.
  WeightVector weights = preference.weights;
  if (weights.size() != problem_.objectives.size()) {
    weights = WeightVector::Uniform(problem_.objectives.size());
  }
  BoundVector bounds = preference.bounds;
  if (bounds.size() != problem_.objectives.size()) bounds = BoundVector();
  result.selection = SelectPlan(*frontier, weights, bounds);
  result.plan_set = std::move(frontier);
  return result;
}

std::vector<RefinedFrontier> FrontierSession::History() const {
  MutexLock lock(mu_);
  return history_;
}

int FrontierSession::StepsPublished() const {
  MutexLock lock(mu_);
  return static_cast<int>(history_.size());
}

bool FrontierSession::Done() const {
  MutexLock lock(mu_);
  return done_;
}

bool FrontierSession::TargetReached() const {
  MutexLock lock(mu_);
  return target_reached_;
}

bool FrontierSession::Cancelled() const {
  // A watchdog fire raises cancel_flag_ only as the unwind mechanism; the
  // outcome it produces is "degraded", not "cancelled by the opener".
  return CancelRequested() && !watchdog_fired_.load(std::memory_order_relaxed);
}

bool FrontierSession::Shed() const {
  MutexLock lock(mu_);
  return shed_;
}

bool FrontierSession::Rejected() const {
  MutexLock lock(mu_);
  return rejected_;
}

bool FrontierSession::Degraded() const {
  MutexLock lock(mu_);
  return degraded_;
}

void FrontierSession::Attach() {
  MutexLock lock(mu_);
  ++open_handles_;
}

void FrontierSession::Cancel() {
  bool cancel_now = false;
  {
    MutexLock lock(mu_);
    if (open_handles_ > 0) --open_handles_;
    cancel_now = open_handles_ == 0;
  }
  if (cancel_now) {
    // The runner observes the flag at its next deadline poll (mid-rung)
    // or rung boundary and completes the session with what it has.
    cancel_flag_.store(true, std::memory_order_relaxed);
    cv_.NotifyAll();
  }
}

bool FrontierSession::AwaitTarget() {
  MutexLock lock(mu_);
  while (!done_) cv_.Wait(mu_);
  return target_reached_;
}

bool FrontierSession::AwaitFor(int64_t timeout_ms) {
  MutexLock lock(mu_);
  if (timeout_ms < 0) {
    while (!done_) cv_.Wait(mu_);
  } else {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (!done_) {
      // WaitUntil returns true on timeout; re-check the predicate once
      // more (the notify may have raced the deadline) before giving up.
      if (cv_.WaitUntil(mu_, deadline) && !done_) return false;
    }
  }
  return target_reached_;
}

bool FrontierSession::AwaitFrontier(int64_t timeout_ms) {
  MutexLock lock(mu_);
  if (timeout_ms < 0) {
    while (best_ == nullptr && !done_) cv_.Wait(mu_);
  } else {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (best_ == nullptr && !done_) {
      if (cv_.WaitUntil(mu_, deadline) && best_ == nullptr && !done_) {
        return false;
      }
    }
  }
  return best_ != nullptr;
}

int FrontierSession::OnRefined(RefinedCallback callback) {
  // callback_mu_ is taken first so no publish can deliver to the new
  // callback between the history snapshot and the replay: a publisher
  // either copied the callback list before registration (it will not call
  // us; the snapshot taken after its history append covers its step) or
  // blocks on callback_mu_ until the replay finished. Either way this
  // callback sees every step exactly once, in order.
  MutexLock delivery(callback_mu_);
  std::vector<RefinedFrontier> replay;
  int id;
  {
    MutexLock lock(mu_);
    id = next_callback_id_++;
    replay = history_;
    callbacks_.emplace_back(id, std::move(callback));
  }
  const RefinedCallback& registered = callbacks_.back().second;
  for (const RefinedFrontier& frontier : replay) registered(frontier);
  return id;
}

int FrontierSession::OnDone(DoneCallback callback) {
  // Same delivery-lock discipline as OnRefined: holding callback_mu_
  // across the done check and the (possible) synchronous invocation means
  // a concurrent MarkDone either already delivered to its snapshot (which
  // excludes us) or blocks until we returned — the callback fires exactly
  // once either way.
  MutexLock delivery(callback_mu_);
  bool already_done;
  int id;
  {
    MutexLock lock(mu_);
    id = next_callback_id_++;
    already_done = done_;
    if (!already_done) done_callbacks_.emplace_back(id, std::move(callback));
  }
  if (already_done) callback();
  return id;
}

void FrontierSession::RemoveCallback(int id) {
  // Block until in-flight deliveries finish so a removed callback is never
  // invoked after RemoveCallback returns.
  MutexLock delivery(callback_mu_);
  MutexLock lock(mu_);
  const auto matches = [id](const auto& entry) { return entry.first == id; };
  callbacks_.erase(
      std::remove_if(callbacks_.begin(), callbacks_.end(), matches),
      callbacks_.end());
  done_callbacks_.erase(
      std::remove_if(done_callbacks_.begin(), done_callbacks_.end(), matches),
      done_callbacks_.end());
}

bool FrontierSession::Publish(double alpha,
                              std::shared_ptr<const PlanSet> plan_set,
                              double step_ms, bool from_cache) {
  if (plan_set == nullptr) return false;
  // callback_mu_ is held across BOTH the callback-list snapshot and the
  // delivery (same order as OnRefined/RemoveCallback take the locks): a
  // RemoveCallback cannot slip between snapshot and delivery, so a
  // removed callback is provably never invoked after removal returns.
  MutexLock delivery(callback_mu_);
  RefinedFrontier frontier;
  std::vector<std::pair<int, RefinedCallback>> callbacks;
  bool first_publish = false;
  {
    MutexLock lock(mu_);
    // Monotonicity guard: after the first publish (which may be the
    // guarantee-free quick frontier at +infinity), every further frontier
    // must strictly tighten the guarantee. The ladder is strictly
    // decreasing by construction, so this only drops genuinely redundant
    // publishes (e.g. a rung at the alpha a cache seed already provided).
    // done_ additionally fences a late rung racing a forced finish (the
    // watchdog path): once DONE is out, the history is frozen.
    if (done_ || failed_ || (best_ != nullptr && alpha >= best_alpha_)) {
      return false;
    }
    first_publish = history_.empty();
    frontier.step = static_cast<int>(history_.size());
    frontier.alpha = alpha;
    frontier.plan_set = plan_set;
    frontier.step_ms = step_ms;
    frontier.from_cache = from_cache;
    history_.push_back(frontier);
    best_ = std::move(plan_set);
    best_alpha_ = alpha;
    if (alpha <= target_alpha_) target_reached_ = true;
    callbacks = callbacks_;
  }
  if (first_publish) {
    // The anytime API's headline latency: open to first usable frontier
    // (quick-mode, cache seed, or first rung — whichever landed first).
    const double first_ms = since_open_.ElapsedMillis();
    if (stats_registry_ != nullptr) {
      stats_registry_->RecordFirstFrontier(first_ms);
    }
    if (tracer_ != nullptr && tracer_->enabled()) {
      TraceEvent event;
      event.category = "session";
      event.name = "session.first_frontier";
      event.id = trace_id_;
      event.dur_us = static_cast<int64_t>(first_ms * 1000.0);
      event.start_us = tracer_->NowUs() - event.dur_us;
      event.arg1_name = "from_cache";
      event.arg1 = from_cache ? 1 : 0;
      tracer_->Record(event);
    }
  }
  cv_.NotifyAll();
  for (const auto& [id, callback] : callbacks) callback(frontier);
  return true;
}

void FrontierSession::MarkDone(
    std::shared_ptr<const OptimizerResult> final_result, bool degraded,
    bool failed) {
  // callback_mu_ spans the state flip and the delivery (the Publish
  // discipline): an OnDone registering concurrently either lands in the
  // snapshot below or observes done_ and self-delivers — never both,
  // never neither.
  MutexLock delivery(callback_mu_);
  std::vector<std::pair<int, DoneCallback>> callbacks;
  {
    MutexLock lock(mu_);
    if (final_result != nullptr) final_result_ = std::move(final_result);
    degraded_ = degraded;
    failed_ = failed;
    done_ = true;
    callbacks.swap(done_callbacks_);
  }
  cv_.NotifyAll();
  for (const auto& [id, callback] : callbacks) callback();
}

}  // namespace moqo
