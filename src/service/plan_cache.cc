// Copyright (c) 2026 moqo authors. MIT license.

#include "service/plan_cache.h"

#include "rt/failpoint.h"

namespace moqo {

namespace {

/// Accounted footprint of one cache entry: the shared PlanSet (the
/// dominant term — plans plus cost matrix), the stored key, and the
/// index/list bookkeeping around them.
size_t EntryBytes(const ProblemSignature& signature,
                  const CachedFrontier& frontier) {
  size_t bytes = signature.key.capacity() + sizeof(ProblemSignature) +
                 sizeof(CachedFrontier) + sizeof(void*) * 4;
  if (frontier.result != nullptr) {
    bytes += sizeof(OptimizerResult);
    if (frontier.result->plan_set != nullptr) {
      bytes += frontier.result->plan_set->ApproxBytes();
    }
  }
  return bytes;
}

size_t FrontierSize(const CachedFrontier& frontier) {
  return frontier.result != nullptr && frontier.result->plan_set != nullptr
             ? static_cast<size_t>(frontier.result->plan_set->size())
             : 0;
}

}  // namespace

PlanCache::PlanCache() : PlanCache(Options{}) {}

PlanCache::PlanCache(const Options& options) : lru_(options) {}

std::shared_ptr<const CachedFrontier> PlanCache::Lookup(
    const ProblemSignature& signature, double max_alpha, bool record_stats) {
  return lru_.LookupIf(
      signature,
      [max_alpha](const std::shared_ptr<const CachedFrontier>& entry) {
        return entry != nullptr && entry->achieved_alpha <= max_alpha;
      },
      record_stats);
}

void PlanCache::Insert(const ProblemSignature& signature,
                       std::shared_ptr<const CachedFrontier> frontier) {
  // `return_error` drops the insert: the cache is an accelerator, so a
  // lost insert must only cost a future miss, never correctness.
  MOQO_FAILPOINT_RETURN("cache.insert", );
  const size_t bytes =
      frontier != nullptr ? EntryBytes(signature, *frontier) : 0;
  const size_t frontier_size =
      frontier != nullptr ? FrontierSize(*frontier) : 0;
  const double alpha =
      frontier != nullptr ? frontier->achieved_alpha : kAnyAlpha;
  lru_.InsertIf(
      signature, std::move(frontier), bytes, frontier_size,
      [alpha](const std::shared_ptr<const CachedFrontier>& existing) {
        // Tighter-or-equal replaces; a looser re-insert must not downgrade
        // the entry (it only refreshes recency).
        return existing == nullptr || alpha <= existing->achieved_alpha;
      });
}

PlanCache::Stats PlanCache::GetStats() const {
  const auto counters = lru_.GetCounters();
  Stats stats;
  stats.hits = counters.hits;
  stats.misses = counters.misses;
  stats.insertions = counters.insertions;
  stats.evictions = counters.evictions;
  stats.entries = counters.entries;
  stats.bytes = counters.bytes;
  stats.frontier_plans = counters.weight;
  return stats;
}

}  // namespace moqo
