// Copyright (c) 2026 moqo authors. MIT license.

#include "service/plan_cache.h"

#include <string>
#include <utility>

#include "persist/disk_tier.h"
#include "persist/frontier_codec.h"
#include "rt/failpoint.h"

namespace moqo {

namespace {

/// Accounted footprint of one cache entry: the shared PlanSet (the
/// dominant term — plans plus cost matrix), the stored key, and the
/// index/list bookkeeping around them.
size_t EntryBytes(const ProblemSignature& signature,
                  const CachedFrontier& frontier) {
  size_t bytes = signature.key.capacity() + sizeof(ProblemSignature) +
                 sizeof(CachedFrontier) + sizeof(void*) * 4;
  if (frontier.result != nullptr) {
    bytes += sizeof(OptimizerResult);
    if (frontier.result->plan_set != nullptr) {
      bytes += frontier.result->plan_set->ApproxBytes();
    }
  }
  return bytes;
}

size_t FrontierSize(const CachedFrontier& frontier) {
  return frontier.result != nullptr && frontier.result->plan_set != nullptr
             ? static_cast<size_t>(frontier.result->plan_set->size())
             : 0;
}

}  // namespace

PlanCache::PlanCache() : PlanCache(Options{}) {}

PlanCache::PlanCache(const Options& options) : lru_(options) {}

std::shared_ptr<const CachedFrontier> PlanCache::Lookup(
    const ProblemSignature& signature, double max_alpha, bool record_stats,
    bool* from_tier) {
  if (from_tier != nullptr) *from_tier = false;
  auto entry = lru_.LookupIf(
      signature,
      [max_alpha](const std::shared_ptr<const CachedFrontier>& e) {
        return e != nullptr && e->achieved_alpha <= max_alpha;
      },
      record_stats);
  if (entry != nullptr || tier_ == nullptr) return entry;

  // RAM miss: probe the disk tier under the same relaxed alpha identity.
  std::string payload;
  double achieved_alpha = 0;
  if (!tier_->Take(signature.hash, signature.key, max_alpha, &payload,
                   &achieved_alpha)) {
    return nullptr;
  }
  auto promoted = persist::DecodeFrontierPayload(payload.data(),
                                                 payload.size(),
                                                 achieved_alpha);
  if (promoted == nullptr) return nullptr;
  // Promotion is a real insert (it may evict — and thus demote — colder
  // entries), after which the probe retroactively becomes a hit. The
  // reclassification mirrors the coalescing re-probe contract: only a
  // stats-recorded lookup recorded the miss this converts.
  Insert(signature, promoted);
  tier_hits_.fetch_add(1, std::memory_order_relaxed);
  if (record_stats) lru_.ReclassifyMissAsHit();
  if (from_tier != nullptr) *from_tier = true;
  return promoted;
}

void PlanCache::AttachTier(std::shared_ptr<persist::DiskTier> tier) {
  tier_ = std::move(tier);
  if (tier_ == nullptr) {
    lru_.SetEvictionHook(nullptr);
    return;
  }
  // Demotion: evicted-but-admissible entries fall to disk instead of
  // vanishing. The hook runs outside every shard lock (ShardedLru
  // contract), so the encode + append I/O never blocks cache readers.
  auto tier_ptr = tier_;
  lru_.SetEvictionHook(
      [tier_ptr](const ProblemSignature& key,
                 const std::shared_ptr<const CachedFrontier>& value,
                 size_t /*bytes*/) {
        if (value == nullptr) return;
        std::string payload;
        if (!persist::EncodeFrontierPayload(*value, &payload)) return;
        tier_ptr->Put(key.hash, key.key, value->achieved_alpha, payload);
      });
}

void PlanCache::Insert(const ProblemSignature& signature,
                       std::shared_ptr<const CachedFrontier> frontier) {
  // `return_error` drops the insert: the cache is an accelerator, so a
  // lost insert must only cost a future miss, never correctness.
  MOQO_FAILPOINT_RETURN("cache.insert", );
  const size_t bytes =
      frontier != nullptr ? EntryBytes(signature, *frontier) : 0;
  const size_t frontier_size =
      frontier != nullptr ? FrontierSize(*frontier) : 0;
  const double alpha =
      frontier != nullptr ? frontier->achieved_alpha : kAnyAlpha;
  lru_.InsertIf(
      signature, std::move(frontier), bytes, frontier_size,
      [alpha](const std::shared_ptr<const CachedFrontier>& existing) {
        // Tighter-or-equal replaces; a looser re-insert must not downgrade
        // the entry (it only refreshes recency).
        return existing == nullptr || alpha <= existing->achieved_alpha;
      });
}

PlanCache::Stats PlanCache::GetStats() const {
  const auto counters = lru_.GetCounters();
  Stats stats;
  stats.hits = counters.hits;
  stats.misses = counters.misses;
  stats.insertions = counters.insertions;
  stats.evictions = counters.evictions;
  stats.entries = counters.entries;
  stats.bytes = counters.bytes;
  stats.frontier_plans = counters.weight;
  stats.tier_hits = tier_hits_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace moqo
