// Copyright (c) 2026 moqo authors. MIT license.

#include "service/plan_cache.h"

#include <bit>

namespace moqo {

namespace {

/// Accounted footprint of one cache entry: the shared PlanSet (the
/// dominant term — plans plus cost matrix), the stored key, and the
/// index/list bookkeeping around them.
size_t EntryBytes(const ProblemSignature& signature,
                  const CachedFrontier& frontier) {
  size_t bytes = signature.key.capacity() + sizeof(ProblemSignature) +
                 sizeof(CachedFrontier) + sizeof(void*) * 4;
  if (frontier.result != nullptr) {
    bytes += sizeof(OptimizerResult);
    if (frontier.result->plan_set != nullptr) {
      bytes += frontier.result->plan_set->ApproxBytes();
    }
  }
  return bytes;
}

int FrontierSize(const CachedFrontier& frontier) {
  return frontier.result != nullptr && frontier.result->plan_set != nullptr
             ? frontier.result->plan_set->size()
             : 0;
}

}  // namespace

PlanCache::PlanCache() : PlanCache(Options{}) {}

PlanCache::PlanCache(const Options& options) {
  const int requested = options.shards < 1 ? 1 : options.shards;
  const size_t num_shards = std::bit_ceil(static_cast<size_t>(requested));
  shard_mask_ = num_shards - 1;
  shards_.reserve(num_shards);
  // Every shard gets at least one slot so a tiny capacity still caches.
  const size_t per_shard =
      (options.capacity + num_shards - 1) / num_shards;
  const size_t bytes_per_shard =
      options.capacity_bytes == 0
          ? 0
          : (options.capacity_bytes + num_shards - 1) / num_shards;
  for (size_t i = 0; i < num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->capacity = per_shard < 1 ? 1 : per_shard;
    shard->capacity_bytes = bytes_per_shard;
    shards_.push_back(std::move(shard));
  }
}

std::shared_ptr<const CachedFrontier> PlanCache::Lookup(
    const ProblemSignature& signature, bool record_stats) {
  Shard& shard = ShardFor(signature);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(signature);
  if (it == shard.index.end()) {
    if (record_stats) misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
  if (record_stats) hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second.frontier;
}

void PlanCache::EvictBack(Shard* shard) {
  auto victim = shard->index.find(*shard->lru.back());
  shard->bytes -= victim->second.bytes;
  shard->frontier_plans -= static_cast<size_t>(victim->second.frontier_size);
  shard->index.erase(victim);
  shard->lru.pop_back();
  evictions_.fetch_add(1, std::memory_order_relaxed);
}

void PlanCache::EvictForSpace(Shard* shard, size_t incoming_bytes) {
  // Evict LRU-first until the incoming entry fits within the byte budget
  // (primary) and the entry cap (secondary). An entry larger than the
  // whole shard budget empties the shard and is stored anyway: refusing it
  // would make the most expensive frontiers — the ones worth caching most
  // — permanently uncacheable.
  while (!shard->lru.empty() &&
         (shard->lru.size() >= shard->capacity ||
          (shard->capacity_bytes != 0 &&
           shard->bytes + incoming_bytes > shard->capacity_bytes))) {
    EvictBack(shard);
  }
}

void PlanCache::Insert(const ProblemSignature& signature,
                       std::shared_ptr<const CachedFrontier> frontier) {
  const size_t bytes =
      frontier != nullptr ? EntryBytes(signature, *frontier) : 0;
  const int frontier_size = frontier != nullptr ? FrontierSize(*frontier) : 0;
  Shard& shard = ShardFor(signature);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(signature);
  if (it != shard.index.end()) {
    shard.bytes = shard.bytes - it->second.bytes + bytes;
    shard.frontier_plans = shard.frontier_plans -
                           static_cast<size_t>(it->second.frontier_size) +
                           static_cast<size_t>(frontier_size);
    it->second.frontier = std::move(frontier);
    it->second.bytes = bytes;
    it->second.frontier_size = frontier_size;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
    // A grown replacement can push the shard over its byte budget; shed
    // colder entries, but never the just-refreshed one (at the front).
    while (shard.capacity_bytes != 0 && shard.bytes > shard.capacity_bytes &&
           shard.lru.size() > 1) {
      EvictBack(&shard);
    }
    return;
  }
  EvictForSpace(&shard, bytes);
  it = shard.index
           .emplace(signature, Entry{std::move(frontier), {}, bytes,
                                     frontier_size})
           .first;
  shard.lru.push_front(&it->first);
  it->second.lru_pos = shard.lru.begin();
  shard.bytes += bytes;
  shard.frontier_plans += static_cast<size_t>(frontier_size);
  insertions_.fetch_add(1, std::memory_order_relaxed);
}

PlanCache::Stats PlanCache::GetStats() const {
  Stats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.insertions = insertions_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    stats.entries += shard->lru.size();
    stats.bytes += shard->bytes;
    stats.frontier_plans += shard->frontier_plans;
  }
  return stats;
}

size_t PlanCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->lru.size();
  }
  return total;
}

void PlanCache::Clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
    shard->bytes = 0;
    shard->frontier_plans = 0;
  }
}

}  // namespace moqo
