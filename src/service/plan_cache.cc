// Copyright (c) 2026 moqo authors. MIT license.

#include "service/plan_cache.h"

#include <bit>

namespace moqo {

PlanCache::PlanCache() : PlanCache(Options{}) {}

PlanCache::PlanCache(const Options& options) {
  const int requested = options.shards < 1 ? 1 : options.shards;
  const size_t num_shards = std::bit_ceil(static_cast<size_t>(requested));
  shard_mask_ = num_shards - 1;
  shards_.reserve(num_shards);
  // Every shard gets at least one slot so a tiny capacity still caches.
  const size_t per_shard =
      (options.capacity + num_shards - 1) / num_shards;
  for (size_t i = 0; i < num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->capacity = per_shard < 1 ? 1 : per_shard;
    shards_.push_back(std::move(shard));
  }
}

std::shared_ptr<const CachedFrontier> PlanCache::Lookup(
    const ProblemSignature& signature, bool record_stats) {
  Shard& shard = ShardFor(signature);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(signature);
  if (it == shard.index.end()) {
    if (record_stats) misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
  if (record_stats) hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second.frontier;
}

void PlanCache::Insert(const ProblemSignature& signature,
                       std::shared_ptr<const CachedFrontier> frontier) {
  Shard& shard = ShardFor(signature);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(signature);
  if (it != shard.index.end()) {
    it->second.frontier = std::move(frontier);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
    return;
  }
  if (shard.lru.size() >= shard.capacity) {
    shard.index.erase(*shard.lru.back());
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  it = shard.index.emplace(signature, Entry{std::move(frontier), {}}).first;
  shard.lru.push_front(&it->first);
  it->second.lru_pos = shard.lru.begin();
  insertions_.fetch_add(1, std::memory_order_relaxed);
}

PlanCache::Stats PlanCache::GetStats() const {
  Stats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.insertions = insertions_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.entries = size();
  return stats;
}

size_t PlanCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->lru.size();
  }
  return total;
}

void PlanCache::Clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
  }
}

}  // namespace moqo
