// Copyright (c) 2026 moqo authors. MIT license.
//
// AlgorithmPolicy: per-spec algorithm auto-selection.
//
// The paper's experiments (Sections 5-8) fix the trade-off the policy
// automates: the EXA is exact but its Pareto sets explode with query size
// and objective count (Figure 5); the RTA trades a bounded approximation
// factor alpha_U for orders-of-magnitude speedups (Figure 9). The policy
// routes by *problem spec* shape only — single-objective specs to the
// Selinger baseline, small weighted instances to the EXA, everything else
// to the RTA — and coarsens alpha under tight deadlines, where a looser
// precision keeps even large queries inside the budget (Figure 9 shows
// alpha >= 2 rarely times out).
//
// Preferences (weights and bounds) deliberately do NOT influence routing:
// the frontier a frontier-producing algorithm computes is
// preference-independent, so routing by spec keeps the cache key
// weight-free and lets any preference change resolve by SelectPlan over
// the cached PlanSet. Bounds are honored at selection time (the bounded
// variant of SelectBest, Algorithm 1); callers who want the IRA's
// strict-bounds iterative refinement (Algorithm 3) request it explicitly
// via ProblemSpec::algorithm — its cache entries are then
// preference-specific (see service/signature.h).

#ifndef MOQO_SERVICE_POLICY_H_
#define MOQO_SERVICE_POLICY_H_

#include <cstdint>

#include "core/optimizer.h"
#include "core/algorithm.h"

namespace moqo {

struct PolicyOptions {
  /// EXA handles queries up to this many tables / objectives exactly.
  int exa_max_tables = 4;
  int exa_max_objectives = 3;
  /// Default user precision for the approximation schemes.
  double default_alpha = 1.5;
  /// Deadlines at or below this are "tight": prefer approximation over
  /// exactness and coarsen alpha.
  int64_t tight_deadline_ms = 250;
  /// Precision used under tight deadlines.
  double tight_alpha = 2.5;
  /// Queries with at least this many tables fan their DP levels out over
  /// the intra-query pool; smaller ones stay serial (their levels are too
  /// shallow to amortize the fan-out).
  int parallel_min_tables = 7;
  /// Cap on intra-query DP threads (the optimizing worker counts as one).
  /// 0 = hardware concurrency, 1 = parallelism off. The frontier is
  /// identical for every value, so this never enters the cache key.
  int max_parallelism = 0;
};

/// The policy's resolved choice for one spec.
struct PolicyDecision {
  AlgorithmKind algorithm = AlgorithmKind::kRta;
  /// Effective user precision (1.0 for exact algorithms).
  double alpha = 1.0;
  /// Intra-query DP threads for this spec (1 = serial).
  int parallelism = 1;
  /// Whether this spec's DP runs may share table-set frontiers through the
  /// service's cross-query SubplanMemo (subject to the service-level
  /// enable flag). False for the weighted-sum baseline: its single-plan DP
  /// output depends on the preference, so its "frontiers" are not
  /// sub-problem-determined. Like `parallelism`, never part of any cache
  /// key — the frontier is identical with the memo on or off.
  bool use_subplan_memo = true;
};

/// Picks the algorithm and precision for optimizing `query` over
/// `objectives` under a total budget of `deadline_ms` (< 0 = unbounded).
/// Deterministic: equal inputs yield equal decisions, which the cache
/// signature relies on.
PolicyDecision ChooseAlgorithm(const Query& query,
                               const ObjectiveSet& objectives,
                               int64_t deadline_ms,
                               const PolicyOptions& options = {});

}  // namespace moqo

#endif  // MOQO_SERVICE_POLICY_H_
