// Copyright (c) 2026 moqo authors. MIT license.
//
// OptimizationService: the concurrent serving layer over the MOQO
// optimizers, redesigned around anytime frontier sessions (PR 5).
//
// The primary API is OpenFrontier(ProblemSpec, SessionOptions) ->
// FrontierSession: an anytime handle that immediately yields a first
// frontier (cached or quick-mode), refines it in the background over a
// geometric alpha ladder, answers Select(preference) at any moment in
// O(|frontier|), and supports cancellation and per-rung deadlines (see
// service/frontier_session.h for the full story). The classic one-shot
// calls remain as thin layers over the same machinery:
//
//   - SubmitAndWait() is a ONE-STEP session: ladder = {resolved alpha},
//     no quick prelude, the request deadline as the rung budget. Its
//     results are byte-identical to driving a session by hand, and
//     identical-spec deadline-free calls coalesce onto one session.
//     (Preference-dependent algorithms — IRA, weighted-sum — cannot be
//     preference-free sessions and fall back to Submit().get().)
//   - Submit() keeps the PR 1-4 asynchronous pipeline: cache probe ->
//     in-flight coalescing -> admission control -> worker pool, with
//     deadline degradation to Section 5.1 quick mode.
//
// Both paths share the PlanCache, which since PR 5 uses *relaxed alpha
// identity*: signatures of frontier-producing algorithms are alpha-free
// (service/signature.h), entries are tagged with the alpha their run
// achieved, and a tighter-alpha entry serves any looser-alpha request —
// so a session's refinement ladder progressively upgrades one entry that
// every later request benefits from, and a request under a tight deadline
// (coarse policy alpha) is answered by any precise frontier already
// cached. Exact-run identity, where it matters (in-flight coalescing, the
// session registry), uses the alpha-extended signature.

#ifndef MOQO_SERVICE_OPTIMIZATION_SERVICE_H_
#define MOQO_SERVICE_OPTIMIZATION_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>  // std::once_flag only; mutexes are util/mutex.h Mutex
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/optimizer.h"
#include "core/algorithm.h"
#include "core/plan_set.h"
#include "memo/subplan_memo.h"
#include "obs/metrics.h"
#include "persist/persist_stats.h"
#include "obs/slow_query_log.h"
#include "obs/trace.h"
#include "rt/failpoint.h"
#include "service/frontier_session.h"
#include "service/plan_cache.h"
#include "service/policy.h"
#include "service/request.h"
#include "service/signature.h"
#include "service/stats.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace moqo {

namespace persist {
class DiskTier;
}  // namespace persist

/// Persistence knobs (PR 9, src/persist/): warm-state snapshots across
/// restarts and the RAM→disk demotion tier under both caches. Everything
/// is off until `directory` is set — a service without a persist
/// directory behaves exactly as before this subsystem existed.
struct PersistOptions {
  /// Where snapshots and tier segment files live; created on demand.
  /// Empty disables persistence entirely.
  std::string directory;
  /// Load `<directory>/moqo.snapshot` into the PlanCache and SubplanMemo
  /// at construction. Validation (format version, checksums, catalog
  /// epoch, cost-model version) follows the snapshot.h matrix: any
  /// mismatch skips cleanly — a bad snapshot is a cold start, never a
  /// crash.
  bool restore_on_start = true;
  /// Write the snapshot in the destructor, after workers drain (the
  /// caches are quiescent and maximally warm at that point).
  bool snapshot_on_shutdown = true;
  /// Byte budget of the RAM→disk tier, split evenly between the
  /// PlanCache's and the SubplanMemo's tiers; 0 disables demotion (the
  /// snapshot path still works).
  size_t tier_capacity_bytes = 0;
  /// Independently locked tier shards per cache (power of two).
  int tier_shards = 4;
  /// Stamped into snapshot headers and compared on restore: a snapshot
  /// written under a different catalog epoch is skipped wholesale (its
  /// content-derived keys are unreachable anyway; skipping just avoids
  /// loading dead weight).
  uint64_t catalog_epoch = 0;
};

struct ServiceOptions {
  /// Worker threads; 0 = one per hardware thread.
  int num_workers = 0;
  /// Helper threads of the shared intra-query DP pool (0 = one per
  /// hardware thread). Big queries fan each DP level out over this pool
  /// (see PolicyOptions::parallel_min_tables / max_parallelism); the pool
  /// is shared by all in-flight requests and sized independently of the
  /// request workers.
  int num_dp_helpers = 0;
  /// Admission limit: maximum requests queued or running at once. An
  /// actively refining session holds one slot for its whole ladder.
  size_t max_inflight = 256;
  /// Two-class session scheduling (PR 7, the network front end's fairness
  /// knob). When true, every ladder rung after a session's first runs as
  /// a separate refinement-lane pool task — queued first-frontier and
  /// one-shot work always dequeues first — and refinement is shed under
  /// overload: a ladder whose next rung would start while InFlight() has
  /// reached refinement_shed_fraction * max_inflight ends early instead,
  /// keeping every guarantee it already published (FrontierSession::Shed(),
  /// the sessions_shed counter, moqo_refinement_sheds_total). False
  /// restores the single-lane FIFO behaviour: rungs still run as separate
  /// tasks, but nothing preempts and nothing is shed.
  bool priority_admission = true;
  /// Overload watermark for shedding refinement, as a fraction of
  /// max_inflight. Below ~1/max_inflight nothing refines; at >= 1.0
  /// refinement only sheds once first-frontier work is itself about to be
  /// rejected (too late to help).
  double refinement_shed_fraction = 0.75;
  /// Budget applied when a request does not carry its own; < 0 = none.
  int64_t default_deadline_ms = -1;
  /// Set false to bypass the cache entirely (benchmarking cold paths).
  bool enable_cache = true;
  /// Set false to disable in-flight request coalescing AND session
  /// coalescing (each duplicate then runs its own optimization).
  bool enable_coalescing = true;
  /// Frontier compaction before caching: PlanSets larger than this are
  /// shrunk to an epsilon-coverage subset (CompactPlanSet) before the
  /// cache insert; 0 = cache the full frontier. The *response* that ran
  /// the optimizer always carries the full frontier — only the cached
  /// copy shrinks (its guarantee degrades from alpha to
  /// alpha*(1+epsilon)).
  int max_cached_frontier = 0;
  /// Starting coverage slack for that compaction; doubled until the
  /// frontier fits max_cached_frontier.
  double cache_compaction_epsilon = 0.05;
  /// Cross-query subplan memo: a service-wide, byte-budgeted cache of
  /// table-set-level Pareto frontiers shared by ALL requests' DP runs —
  /// including every rung of every session's ladder, which is what makes
  /// refinement steps of overlapping sessions reuse each other's work.
  /// Orthogonal to the whole-query PlanCache: that one short-circuits
  /// repeated *queries*, this one shares work between *different*
  /// queries. Frontiers are byte-identical with the memo on or off.
  bool enable_subplan_memo = true;
  /// Capacity/sharding/admission knobs (capacity_bytes, min_tables, ...).
  /// A negative admission_epsilon (the SubplanMemo default) inherits
  /// cache_compaction_epsilon: sub-frontiers denser than the service's
  /// cache resolution are not worth pinning.
  SubplanMemo::Options subplan_memo;
  PlanCache::Options cache;
  PolicyOptions policy;
  /// Plan space shared by every request the service runs.
  OperatorRegistry::Options operators;
  bool bushy = true;
  bool cartesian_heuristic = true;
  /// Observability (PR 6): request tracing knobs. Disabled by default —
  /// the instrumentation then costs one relaxed load per span site.
  /// Enable (or flip at runtime via tracer()->SetEnabled) to record
  /// request → DP-level → memo → rung spans, exportable as Chrome trace
  /// JSON through tracer()->WriteChromeTrace().
  TraceOptions trace;
  /// Worst-N slow-request log surfaced in Stats().slow_queries, ToString,
  /// and the Prometheus export.
  int slow_query_log_size = 8;
  /// Session watchdog (PR 8): a background thread that force-finishes any
  /// session whose current rung has run longer than
  /// step_deadline_ms * watchdog_factor — a wedged worker, a lost wakeup,
  /// or an injected stall. The session completes DONE{degraded} with
  /// whatever it already published (the anytime guarantee survives a
  /// stuck rung); the rung itself is cancelled via the session's
  /// cancellation token and its late output is dropped. Only sessions
  /// with a per-rung deadline are watched. watchdog_poll_ms <= 0 disables
  /// the thread entirely. Fires count in Stats().watchdog_fires and
  /// moqo_watchdog_fires_total.
  int64_t watchdog_poll_ms = 50;
  double watchdog_factor = 4.0;
  /// Warm-state persistence (PR 9): snapshots across restarts and the
  /// RAM→disk tier. Off until persist.directory is set.
  PersistOptions persist;
};

class OptimizationService {
 public:
  explicit OptimizationService(ServiceOptions options = {});

  OptimizationService(const OptimizationService&) = delete;
  OptimizationService& operator=(const OptimizationService&) = delete;

  /// Drains accepted requests and refining sessions, then joins the
  /// workers. Session handles stay valid afterwards (they stop refining).
  ~OptimizationService();

  /// Opens an anytime refinement session for `spec` (see
  /// service/frontier_session.h). Returns immediately; the session
  /// already holds a first frontier when the cache can seed one or
  /// options.quick_first is set. Identical (spec, ladder) opens coalesce
  /// onto one running session — each caller still owns one Cancel().
  /// Never returns null: invalid specs (null query, preference-dependent
  /// algorithm override) and admission rejections yield a session that is
  /// born Done() with no frontier.
  std::shared_ptr<FrontierSession> OpenFrontier(ProblemSpec spec,
                                                SessionOptions options = {});

  /// Submits a request; the future always resolves (accepted requests run
  /// to completion even during shutdown, rejected ones resolve
  /// immediately). Never throws on load: overload surfaces as kRejected.
  std::future<ServiceResponse> Submit(ServiceRequest request);

  /// The one-shot compatibility shim: runs `request` as a one-step
  /// session (ladder = {resolved alpha}) and answers from its frontier —
  /// byte-identical to opening that session by hand. Deadline-free
  /// duplicates coalesce onto one session; preference-dependent
  /// algorithm overrides fall back to Submit().get().
  ServiceResponse SubmitAndWait(ServiceRequest request);

  /// Currently queued or running requests, including coalesced waiters
  /// and actively refining sessions (cache hits never count).
  size_t InFlight() const { return inflight_.load(std::memory_order_relaxed); }

  int num_workers() const { return pool_.num_threads(); }

  /// Counter snapshot including cache eviction counts.
  ServiceStatsSnapshot Stats() const;
  PlanCache::Stats CacheStats() const { return cache_.GetStats(); }

  /// Cross-query memo counters; all-zero when the memo is disabled.
  SubplanMemo::Stats MemoStats() const {
    return subplan_memo_ ? subplan_memo_->GetStats() : SubplanMemo::Stats{};
  }

  /// The shared memo, or null when disabled. Exposed for tests/benches.
  SubplanMemo* subplan_memo() const { return subplan_memo_.get(); }

  /// The service-wide span recorder (always present; cheap when
  /// disabled). Use WriteChromeTrace()/ExportChromeTrace() on it to dump
  /// a Perfetto-loadable trace.
  Tracer* tracer() { return &tracer_; }

  /// Prometheus text exposition over the service's counters, cache/memo
  /// occupancy, pool queue state, latency histograms, and (when any
  /// failpoint site has registered) per-site injected-fault hit counters.
  std::string MetricsText() const {
    return metrics_.RenderPrometheus() +
           rt::FailpointRegistry::Global().MetricsText();
  }

  /// The registry behind MetricsText(). The network front end registers
  /// its net_* samplers here so one scrape covers service and wire path;
  /// samplers must own (share) whatever state they read, since they can
  /// outlive their registrant.
  MetricsRegistry* metrics_registry() { return &metrics_; }

  const ServiceOptions& options() const { return options_; }

  /// Writes the current PlanCache + SubplanMemo contents to
  /// `<persist.directory>/moqo.snapshot` (tmp + rename, so a crash
  /// mid-write never corrupts the previous snapshot). Thread-safe
  /// (serialized under an internal mutex); entries inserted concurrently
  /// may or may not be included. False when persistence is disabled or
  /// the write failed (counted in snapshot_failures).
  bool SnapshotNow();

  /// Loads the snapshot into the caches, validating per the snapshot.h
  /// matrix (format version, checksums, catalog epoch, cost-model
  /// version — any mismatch skips cleanly). Returns the number of
  /// entries restored. Called automatically at construction when
  /// persist.restore_on_start is set.
  size_t RestoreNow();

  /// Persistence counters + both tiers' occupancy; all-zero when
  /// persistence is disabled.
  persist::PersistStatsSnapshot PersistStats() const;

 private:
  struct Admitted;  // One queued request's state.

  /// Waiters parked behind one in-flight signature.
  struct CoalesceEntry {
    std::vector<std::shared_ptr<Admitted>> waiters;
  };

  /// How OpenSession answered the caller.
  struct OpenInfo {
    CacheOutcome outcome = CacheOutcome::kMiss;
    bool joined = false;    ///< Attached to an already-running session.
    bool rejected = false;  ///< Shed by admission control / shutdown.
  };

  /// Optimizer options for one request given its remaining budget, its
  /// resolved intra-query parallelism (1 = serial, no pool attached), and
  /// whether its DP may use the cross-query subplan memo.
  OptimizerOptions MakeOptimizerOptions(double alpha, int64_t timeout_ms,
                                        int parallelism, bool use_memo);

  /// The shared open path behind OpenFrontier and the SubmitAndWait shim.
  /// `preference` (may be null = uniform) seeds quick-mode weights and the
  /// cached selection; `deadline_ms` feeds the policy and, for one-step
  /// sessions, bounds the whole ladder; `hold_slot_if_joined` makes a
  /// joiner take an admission slot (the shim's waiters stay bounded).
  std::shared_ptr<FrontierSession> OpenSession(ProblemSpec spec,
                                               const SessionOptions& options,
                                               const Preference* preference,
                                               int64_t deadline_ms,
                                               bool coalescable,
                                               bool hold_slot_if_joined,
                                               OpenInfo* info);

  /// Serves a session directly from a cache entry (born done, no
  /// ladder): classifies exact vs frontier hit against the opener's
  /// preference, publishes the entry's frontier, and marks the session
  /// done. Session fields are written under its lock — by the time the
  /// post-registration re-probe calls this, joiners may already share
  /// the session.
  void ServeSessionBornDone(
      const std::shared_ptr<FrontierSession>& session,
      const std::shared_ptr<const CachedFrontier>& cached,
      const Preference& preference, OpenInfo* info, bool from_tier);

  /// Enqueues rung `rung` of the session's ladder as its own pool task —
  /// no worker is held across rungs (PR 7). Rung 0 rides the interactive
  /// lane; later rungs are refinement: low-priority lane plus the
  /// overload shed check when priority_admission is on. Handles every
  /// failure path (shed, shutdown race) by finishing the session.
  void ScheduleSessionRung(const std::shared_ptr<FrontierSession>& session,
                           size_t rung);

  /// The pool task running exactly one ladder rung: one independent
  /// optimizer run at ladder_[rung] (rungs share work only through the
  /// SubplanMemo, so the frontiers are byte-identical to the monolithic
  /// PR-5 runner). Chains the next rung through ScheduleSessionRung or
  /// finishes the session.
  void RunSessionRung(const std::shared_ptr<FrontierSession>& session,
                      size_t rung);

  /// Publishes one completed rung: per-rung stats, PlanCache insert
  /// (tagged with the rung's alpha), session publish. Returns false to
  /// stop the ladder (cancellation).
  bool OnSessionRung(const std::shared_ptr<FrontierSession>& session,
                     int rung, double alpha, const OptimizerResult& result);

  /// Completes a session: final state, registry removal (after the last
  /// cache insert — the race-closing re-probe relies on that order), slot
  /// release, gauges.
  void FinishSession(const std::shared_ptr<FrontierSession>& session,
                     std::shared_ptr<const OptimizerResult> final_result,
                     bool degraded, bool failed);

  /// Builds the cacheable entry for a completed run: compaction when
  /// configured, the preference the stored selection answers, and the
  /// achieved alpha tag.
  std::shared_ptr<const CachedFrontier> MakeCacheEntry(
      const std::shared_ptr<const OptimizerResult>& result,
      const WeightVector& weights, const BoundVector& bounds,
      double achieved_alpha);

  /// Builds and resolves a response from a cached frontier (exact,
  /// frontier, or — when the entry was promoted from disk — tier hit).
  void ServeFromCache(const std::shared_ptr<Admitted>& admitted,
                      const std::shared_ptr<const CachedFrontier>& cached,
                      bool from_tier);

  /// Rejects a primary that will never run (admission/shutdown), flushing
  /// any waiters already parked on its coalescing entry.
  void AbandonPrimary(const std::shared_ptr<Admitted>& admitted);

  /// Resolves a coalesced waiter from the primary's completed result.
  void ServeCoalesced(const std::shared_ptr<Admitted>& waiter,
                      const std::shared_ptr<const OptimizerResult>& result);

  /// Removes and returns the waiter list for `signature` (empty if none).
  std::vector<std::shared_ptr<Admitted>> TakeWaiters(
      const ProblemSignature& signature);

  void RunRequest(const std::shared_ptr<Admitted>& admitted);

  /// Last-resort degradation (PR 8): when a rung dies mid-flight
  /// (allocation failure, injected fault) and nothing has completed yet,
  /// computes the paper's Section 5.1 quick-mode frontier — "never return
  /// null" — serially, fully fenced. Null only if even quick mode fails.
  std::shared_ptr<const OptimizerResult> TryQuickFallback(
      const std::shared_ptr<FrontierSession>& session);

  /// The watchdog thread body; see ServiceOptions::watchdog_poll_ms.
  void WatchdogMain();

  /// Registers every Prometheus metric once, at construction. Samplers
  /// read live state (stats registry, cache, memo, pools) at render time.
  void RegisterMetrics();

  /// moqo_persist_* metrics; samplers capture the shared counter blocks
  /// (service + tiers) so a scrape racing teardown reads frozen counters.
  void RegisterPersistMetrics();

  /// The snapshot file's live name under persist.directory.
  std::string SnapshotPath() const;

  ServiceOptions options_;
  /// Span recorder; declared before both pools so every worker thread
  /// dies before the buffers it records into.
  Tracer tracer_;
  SlowQueryLog slow_log_;
  std::atomic<uint64_t> slow_seq_{0};
  MetricsRegistry metrics_;
  PlanCache cache_;
  /// Cross-query subplan memo shared by every request's DP run; null when
  /// disabled. Declared before pool_ so workers never outlive it.
  std::unique_ptr<SubplanMemo> subplan_memo_;
  ServiceStatsRegistry stats_;
  std::atomic<size_t> inflight_{0};

  /// Persistence state (PR 9); all null/idle when persist.directory is
  /// empty. The tiers are attached to cache_/subplan_memo_ via
  /// shared_ptr, so their lifetime is safe regardless of declaration
  /// order; counters are shared with metric samplers (teardown-safe).
  std::shared_ptr<persist::DiskTier> cache_tier_;
  std::shared_ptr<persist::DiskTier> memo_tier_;
  std::shared_ptr<persist::PersistCounters> persist_counters_ =
      std::make_shared<persist::PersistCounters>();
  Mutex snapshot_mu_;  ///< Serializes SnapshotNow/RestoreNow.

  Mutex coalesce_mu_;
  /// Keyed by the alpha-EXTENDED signature: runs at different precisions
  /// must not coalesce even though they share a cache entry.
  std::unordered_map<ProblemSignature, std::shared_ptr<CoalesceEntry>>
      inflight_by_signature_ MOQO_GUARDED_BY(coalesce_mu_);

  /// Live refinement sessions by exact session key (spec + ladder + step
  /// budget); entries are removed when the ladder finishes, *after* its
  /// final cache insert.
  Mutex session_mu_;
  std::unordered_map<ProblemSignature, std::shared_ptr<FrontierSession>>
      sessions_by_key_ MOQO_GUARDED_BY(session_mu_);

  /// Intra-query DP helpers, shared by all requests and spawned lazily on
  /// the first request that actually fans out — a service whose policy
  /// keeps everything serial never pays the helper threads. Declared
  /// before pool_: request workers submit into it, so it must outlive
  /// them (destruction runs in reverse order).
  std::once_flag dp_pool_once_;
  std::unique_ptr<ThreadPool> dp_pool_;
  /// Published copy of dp_pool_.get() for observers (Stats, metric
  /// samplers) that race with the lazy creation; call_once only
  /// synchronizes the creating threads.
  std::atomic<ThreadPool*> dp_pool_ptr_{nullptr};

  /// Watchdog state (PR 8). The watch list holds weak refs: a session
  /// kept alive only by the list would never finish, and expired entries
  /// self-prune on the next sweep. The thread is joined in the destructor
  /// before pool_ shuts down (it may call FinishSession, which touches
  /// the same state the workers do).
  Mutex watchdog_mu_;
  CondVar watchdog_cv_;
  bool watchdog_stop_ MOQO_GUARDED_BY(watchdog_mu_) = false;
  std::vector<std::weak_ptr<FrontierSession>> watched_sessions_
      MOQO_GUARDED_BY(watchdog_mu_);
  std::thread watchdog_;

  ThreadPool pool_;  ///< Last member: workers die before the state above.
};

}  // namespace moqo

#endif  // MOQO_SERVICE_OPTIMIZATION_SERVICE_H_
