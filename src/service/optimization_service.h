// Copyright (c) 2026 moqo authors. MIT license.
//
// OptimizationService: the concurrent serving layer over the MOQO
// optimizers, redesigned around the frontier (PR 2).
//
// A request is a (ProblemSpec, Preference) pair. The spec — query +
// objectives + algorithm/alpha — determines the *frontier* (the
// approximate Pareto set); the preference — weights + bounds + deadline —
// only determines which of its plans is selected. Requests flow through
// four stages:
//
//   1. Cache probe. The spec's canonical ProblemSignature (weight-free for
//      frontier-producing algorithms, see service/signature.h) is looked up
//      in a sharded LRU PlanCache holding shared PlanSets. A hit with the
//      same preference is an *exact hit* (stored selection reused); any
//      other preference is a *frontier hit*: SelectPlan re-scalarizes the
//      shared PlanSet in O(|frontier|) — no optimizer run, which is the
//      whole point: a weight change on a cached query costs microseconds.
//   2. Coalescing. A deadline-free miss whose signature is already being
//      optimized does not optimize again: it registers as a waiter on the
//      in-flight primary and is answered from the primary's PlanSet when
//      it lands (falling back to its own optimizer run if the primary
//      fails or times out). Deadline-bounded misses never wait — a waiter
//      cannot degrade to quick mode mid-wait, so they keep their own
//      optimizer run and its deadline guarantee.
//   3. Admission control. Primaries and waiters are admitted only while
//      fewer than `max_inflight` requests are pending; beyond that the
//      service sheds load up front (status kRejected) instead of letting
//      queue delay eat every deadline.
//   4. Worker pool. A fixed-size ThreadPool runs the optimizer chosen by
//      the policy layer. The per-request deadline covers queue wait plus
//      optimization; an expired budget degrades to Section 5.1 quick mode —
//      still a valid plan, never a null one (status kCompletedQuick). Only
//      complete (non-timed-out) results enter the cache, so a cached entry
//      is valid for any later deadline and, being preference-independent,
//      for any later preference.

#ifndef MOQO_SERVICE_OPTIMIZATION_SERVICE_H_
#define MOQO_SERVICE_OPTIMIZATION_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/optimizer.h"
#include "core/algorithm.h"
#include "core/plan_set.h"
#include "memo/subplan_memo.h"
#include "service/plan_cache.h"
#include "service/policy.h"
#include "service/signature.h"
#include "service/stats.h"
#include "util/thread_pool.h"

namespace moqo {

struct ServiceOptions {
  /// Worker threads; 0 = one per hardware thread.
  int num_workers = 0;
  /// Helper threads of the shared intra-query DP pool (0 = one per
  /// hardware thread). Big queries fan each DP level out over this pool
  /// (see PolicyOptions::parallel_min_tables / max_parallelism); the pool
  /// is shared by all in-flight requests and sized independently of the
  /// request workers.
  int num_dp_helpers = 0;
  /// Admission limit: maximum requests queued or running at once.
  size_t max_inflight = 256;
  /// Budget applied when a request does not carry its own; < 0 = none.
  int64_t default_deadline_ms = -1;
  /// Set false to bypass the cache entirely (benchmarking cold paths).
  bool enable_cache = true;
  /// Set false to disable in-flight request coalescing (each duplicate
  /// miss then runs its own optimization, as in PR 1).
  bool enable_coalescing = true;
  /// Frontier compaction before caching: PlanSets larger than this are
  /// shrunk to an epsilon-coverage subset (CompactPlanSet) before the
  /// cache insert; 0 = cache the full frontier. The *response* that ran
  /// the optimizer always carries the full frontier — only the cached
  /// copy shrinks (its guarantee degrades from alpha to
  /// alpha*(1+epsilon)).
  int max_cached_frontier = 0;
  /// Starting coverage slack for that compaction; doubled until the
  /// frontier fits max_cached_frontier.
  double cache_compaction_epsilon = 0.05;
  /// Cross-query subplan memo: a service-wide, byte-budgeted cache of
  /// table-set-level Pareto frontiers shared by ALL requests' DP runs, so
  /// structurally overlapping queries (same join subgraph, objectives,
  /// precision) stop rebuilding identical sub-frontiers. Orthogonal to the
  /// whole-query PlanCache: that one short-circuits repeated *queries*,
  /// this one shares work between *different* queries. Frontiers are
  /// byte-identical with the memo on or off.
  bool enable_subplan_memo = true;
  /// Capacity/sharding/admission knobs (capacity_bytes, min_tables, ...).
  /// A negative admission_epsilon (the SubplanMemo default) inherits
  /// cache_compaction_epsilon: sub-frontiers denser than the service's
  /// cache resolution are not worth pinning.
  SubplanMemo::Options subplan_memo;
  PlanCache::Options cache;
  PolicyOptions policy;
  /// Plan space shared by every request the service runs.
  OperatorRegistry::Options operators;
  bool bushy = true;
  bool cartesian_heuristic = true;
};

/// WHAT to optimize: everything that determines the frontier, and nothing
/// that merely picks a plan from it. Two requests with equal specs share
/// one cached PlanSet regardless of their preferences. The service shares
/// ownership of the query for the lifetime of the request (wrap long-lived
/// queries the caller owns with UnownedQuery()).
struct ProblemSpec {
  std::shared_ptr<const Query> query;
  ObjectiveSet objectives;
  /// Overrides for the policy layer's auto-selection. Note: kIra and
  /// kWeightedSum produce preference-dependent output, so their cache
  /// entries are shared only between identical preferences.
  std::optional<AlgorithmKind> algorithm;
  std::optional<double> alpha;
  /// Override for the policy's intra-query DP parallelism (1 = force
  /// serial). Never part of the cache key: the frontier is identical for
  /// every value.
  std::optional<int> parallelism;
};

/// HOW to choose from the frontier: the request-time scalarization inputs
/// plus the latency budget. Changing only the preference on a cached spec
/// is a frontier hit — O(|frontier|) SelectPlan, no optimizer run.
struct Preference {
  /// Defaults to uniform over the spec's objectives when empty.
  WeightVector weights;
  /// Empty or all-infinite = weighted MOQO; finite bounds are honored at
  /// selection time (bounded SelectBest of Algorithm 1).
  BoundVector bounds;
  /// Total budget (queue wait + optimization) in ms; -1 = service default.
  int64_t deadline_ms = -1;
};

/// One optimization request: a spec and a preference over its frontier.
struct ServiceRequest {
  ProblemSpec spec;
  Preference preference;
};

enum class ResponseStatus : uint8_t {
  /// Full optimization (or cache/coalesced hit): the guarantee of the
  /// chosen algorithm holds.
  kCompleted,
  /// Deadline expired before or during optimization; the result carries
  /// the Section 5.1 quick-mode plan (valid, but no approximation
  /// guarantee).
  kCompletedQuick,
  /// Shed by admission control, submitted after shutdown, or failed with
  /// an internal optimizer error (e.g. out of memory); no result.
  kRejected,
};

/// How (and whether) the cache answered the request.
enum class CacheOutcome : uint8_t {
  kMiss,          ///< Ran the optimizer.
  kExactHit,      ///< Cached entry with the same preference: reused verbatim.
  kFrontierHit,   ///< Cached PlanSet, new preference: O(|frontier|) selection.
  kCoalescedHit,  ///< Waited on an identical in-flight miss, then selected.
};

struct ServiceResponse {
  ResponseStatus status = ResponseStatus::kRejected;
  CacheOutcome cache = CacheOutcome::kMiss;
  AlgorithmKind algorithm = AlgorithmKind::kRta;
  double alpha = 1.0;
  /// Never null unless status == kRejected. Carries the shared PlanSet
  /// (result->plan_set) and the preference's selection from it.
  std::shared_ptr<const OptimizerResult> result;
  /// Time from Submit() to worker pickup (0 for cache hits / rejects).
  double queue_ms = 0;
  /// Total time from Submit() to response.
  double service_ms = 0;

  /// True for exact and frontier hits (not for coalesced waits: those did
  /// wait for an optimizer run, just not their own).
  bool cache_hit() const {
    return cache == CacheOutcome::kExactHit ||
           cache == CacheOutcome::kFrontierHit;
  }

  /// The full approximate Pareto set behind this response, shared with the
  /// cache and any sibling responses; null iff rejected.
  std::shared_ptr<const PlanSet> plan_set() const {
    return result ? result->plan_set : nullptr;
  }
};

/// Wraps a caller-owned query (which must outlive all requests using it)
/// in a non-owning shared_ptr.
inline std::shared_ptr<const Query> UnownedQuery(const Query* query) {
  return std::shared_ptr<const Query>(query, [](const Query*) {});
}

class OptimizationService {
 public:
  explicit OptimizationService(ServiceOptions options = {});

  OptimizationService(const OptimizationService&) = delete;
  OptimizationService& operator=(const OptimizationService&) = delete;

  /// Drains accepted requests, then joins the workers.
  ~OptimizationService();

  /// Submits a request; the future always resolves (accepted requests run
  /// to completion even during shutdown, rejected ones resolve
  /// immediately). Never throws on load: overload surfaces as kRejected.
  std::future<ServiceResponse> Submit(ServiceRequest request);

  /// Convenience: Submit + wait.
  ServiceResponse SubmitAndWait(ServiceRequest request) {
    return Submit(std::move(request)).get();
  }

  /// Currently queued or running requests, including coalesced waiters
  /// (cache hits never count).
  size_t InFlight() const { return inflight_.load(std::memory_order_relaxed); }

  int num_workers() const { return pool_.num_threads(); }

  /// Counter snapshot including cache eviction counts.
  ServiceStatsSnapshot Stats() const;
  PlanCache::Stats CacheStats() const { return cache_.GetStats(); }

  /// Cross-query memo counters; all-zero when the memo is disabled.
  SubplanMemo::Stats MemoStats() const {
    return subplan_memo_ ? subplan_memo_->GetStats() : SubplanMemo::Stats{};
  }

  /// The shared memo, or null when disabled. Exposed for tests/benches.
  SubplanMemo* subplan_memo() const { return subplan_memo_.get(); }

  const ServiceOptions& options() const { return options_; }

 private:
  struct Admitted;  // One queued request's state.

  /// Waiters parked behind one in-flight signature.
  struct CoalesceEntry {
    std::vector<std::shared_ptr<Admitted>> waiters;
  };

  /// Optimizer options for one request given its remaining budget, its
  /// resolved intra-query parallelism (1 = serial, no pool attached), and
  /// whether its DP may use the cross-query subplan memo.
  OptimizerOptions MakeOptimizerOptions(double alpha, int64_t timeout_ms,
                                        int parallelism, bool use_memo);

  /// Builds and resolves a response from a cached frontier (exact or
  /// frontier hit).
  void ServeFromCache(const std::shared_ptr<Admitted>& admitted,
                      const std::shared_ptr<const CachedFrontier>& cached);

  /// Rejects a primary that will never run (admission/shutdown), flushing
  /// any waiters already parked on its coalescing entry.
  void AbandonPrimary(const std::shared_ptr<Admitted>& admitted);

  /// Resolves a coalesced waiter from the primary's completed result.
  void ServeCoalesced(const std::shared_ptr<Admitted>& waiter,
                      const std::shared_ptr<const OptimizerResult>& result);

  /// Removes and returns the waiter list for `signature` (empty if none).
  std::vector<std::shared_ptr<Admitted>> TakeWaiters(
      const ProblemSignature& signature);

  void RunRequest(const std::shared_ptr<Admitted>& admitted);

  ServiceOptions options_;
  PlanCache cache_;
  /// Cross-query subplan memo shared by every request's DP run; null when
  /// disabled. Declared before pool_ so workers never outlive it.
  std::unique_ptr<SubplanMemo> subplan_memo_;
  ServiceStatsRegistry stats_;
  std::atomic<size_t> inflight_{0};

  std::mutex coalesce_mu_;
  std::unordered_map<ProblemSignature, std::shared_ptr<CoalesceEntry>>
      inflight_by_signature_;

  /// Intra-query DP helpers, shared by all requests and spawned lazily on
  /// the first request that actually fans out — a service whose policy
  /// keeps everything serial never pays the helper threads. Declared
  /// before pool_: request workers submit into it, so it must outlive
  /// them (destruction runs in reverse order).
  std::once_flag dp_pool_once_;
  std::unique_ptr<ThreadPool> dp_pool_;
  ThreadPool pool_;  ///< Last member: workers die before the state above.
};

}  // namespace moqo

#endif  // MOQO_SERVICE_OPTIMIZATION_SERVICE_H_
