// Copyright (c) 2026 moqo authors. MIT license.
//
// OptimizationService: the concurrent serving layer over the MOQO
// optimizers.
//
// Requests flow through three stages:
//
//   1. Cache probe. The request's canonical ProblemSignature (query
//      structure + objectives + bucketed weights/bounds + resolved
//      algorithm/alpha + plan-space switches) is looked up in a sharded
//      LRU PlanCache. Hits resolve the future immediately — the repeated
//      Pareto-frontier computation is skipped entirely.
//   2. Admission control. Misses are admitted only while fewer than
//      `max_inflight` requests are queued or running; beyond that the
//      service sheds load by rejecting up front (status kRejected) instead
//      of letting queue delay eat every deadline.
//   3. Worker pool. A fixed-size ThreadPool runs the optimizer chosen by
//      the policy layer. The per-request deadline covers queue wait plus
//      optimization: workers give the optimizer only the remaining budget,
//      and an expired budget degrades to Section 5.1 quick mode — which
//      still returns a valid plan, never a null one (status
//      kCompletedQuick). Only complete (non-timed-out) results enter the
//      cache, so a cached entry is valid for any later deadline.

#ifndef MOQO_SERVICE_OPTIMIZATION_SERVICE_H_
#define MOQO_SERVICE_OPTIMIZATION_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>

#include "core/optimizer.h"
#include "core/algorithm.h"
#include "service/plan_cache.h"
#include "service/policy.h"
#include "service/signature.h"
#include "service/stats.h"
#include "service/thread_pool.h"

namespace moqo {

struct ServiceOptions {
  /// Worker threads; 0 = one per hardware thread.
  int num_workers = 0;
  /// Admission limit: maximum requests queued or running at once.
  size_t max_inflight = 256;
  /// Budget applied when a request does not carry its own; < 0 = none.
  int64_t default_deadline_ms = -1;
  /// Set false to bypass the cache entirely (benchmarking cold paths).
  bool enable_cache = true;
  PlanCache::Options cache;
  SignatureOptions signature;
  PolicyOptions policy;
  /// Plan space shared by every request the service runs.
  OperatorRegistry::Options operators;
  bool bushy = true;
  bool cartesian_heuristic = true;
};

/// One optimization request. The service shares ownership of the query for
/// the lifetime of the request (wrap long-lived queries the caller owns
/// with UnownedQuery()).
struct ServiceRequest {
  std::shared_ptr<const Query> query;
  ObjectiveSet objectives;
  WeightVector weights;
  BoundVector bounds;
  /// Total budget (queue wait + optimization) in ms; -1 = service default.
  int64_t deadline_ms = -1;
  /// Overrides for the policy layer's auto-selection.
  std::optional<AlgorithmKind> algorithm;
  std::optional<double> alpha;
};

enum class ResponseStatus : uint8_t {
  /// Full optimization (or cache hit): the guarantee of the chosen
  /// algorithm holds.
  kCompleted,
  /// Deadline expired before or during optimization; the result carries
  /// the Section 5.1 quick-mode plan (valid, but no approximation
  /// guarantee).
  kCompletedQuick,
  /// Shed by admission control, submitted after shutdown, or failed with
  /// an internal optimizer error (e.g. out of memory); no result.
  kRejected,
};

struct ServiceResponse {
  ResponseStatus status = ResponseStatus::kRejected;
  bool cache_hit = false;
  AlgorithmKind algorithm = AlgorithmKind::kRta;
  double alpha = 1.0;
  /// Never null unless status == kRejected.
  std::shared_ptr<const OptimizerResult> result;
  /// Time from Submit() to worker pickup (0 for cache hits / rejects).
  double queue_ms = 0;
  /// Total time from Submit() to response.
  double service_ms = 0;
};

/// Wraps a caller-owned query (which must outlive all requests using it)
/// in a non-owning shared_ptr.
inline std::shared_ptr<const Query> UnownedQuery(const Query* query) {
  return std::shared_ptr<const Query>(query, [](const Query*) {});
}

class OptimizationService {
 public:
  explicit OptimizationService(ServiceOptions options = {});

  OptimizationService(const OptimizationService&) = delete;
  OptimizationService& operator=(const OptimizationService&) = delete;

  /// Drains accepted requests, then joins the workers.
  ~OptimizationService();

  /// Submits a request; the future always resolves (accepted requests run
  /// to completion even during shutdown, rejected ones resolve
  /// immediately). Never throws on load: overload surfaces as kRejected.
  std::future<ServiceResponse> Submit(ServiceRequest request);

  /// Convenience: Submit + wait.
  ServiceResponse SubmitAndWait(ServiceRequest request) {
    return Submit(std::move(request)).get();
  }

  /// Currently queued or running requests (cache hits never count).
  size_t InFlight() const { return inflight_.load(std::memory_order_relaxed); }

  int num_workers() const { return pool_.num_threads(); }

  /// Counter snapshot including cache eviction counts.
  ServiceStatsSnapshot Stats() const;
  PlanCache::Stats CacheStats() const { return cache_.GetStats(); }

  const ServiceOptions& options() const { return options_; }

 private:
  struct Admitted;  // One queued request's state.

  /// Optimizer options for one request given its remaining budget.
  OptimizerOptions MakeOptimizerOptions(double alpha,
                                        int64_t timeout_ms) const;

  void RunRequest(const std::shared_ptr<Admitted>& admitted);

  ServiceOptions options_;
  PlanCache cache_;
  ServiceStatsRegistry stats_;
  std::atomic<size_t> inflight_{0};
  ThreadPool pool_;  ///< Last member: workers die before the state above.
};

}  // namespace moqo

#endif  // MOQO_SERVICE_OPTIMIZATION_SERVICE_H_
