// Copyright (c) 2026 moqo authors. MIT license.
//
// FrontierSession: the anytime, progressively refining frontier API of the
// optimization service (PR 5).
//
// The paper's IRA (Section 6) rests on one observation: a coarse
// (large-alpha) approximate Pareto set is cheap, and precision can be
// bought *incrementally*. A FrontierSession turns that into the service's
// primary serving shape. OptimizationService::OpenFrontier(spec, options)
// returns immediately with a session that
//
//   1. already holds a first frontier — a cached one when the PlanCache
//      has an entry at (or tighter than) the target alpha, otherwise a
//      Section 5.1 quick-mode frontier computed synchronously at open, so
//      the first valid plan arrives within quick-mode latency;
//   2. refines in the background over a geometric alpha ladder
//      (alpha_start -> ... -> alpha_target), publishing each completed
//      rung's PlanSet — every published frontier carries an alpha <= the
//      previous one — through BestFrontier(), History(), and OnRefined
//      callbacks;
//   3. answers Select(preference) at ANY time in O(|frontier|) from the
//      best frontier so far — the anytime property: a user dragging a
//      weight slider gets instant answers that silently sharpen as rungs
//      land;
//   4. supports Cancel() (mid-rung, via the cancellation token the DP
//      polls alongside its deadline), AwaitTarget()/AwaitFor(), and
//      per-rung deadlines.
//
// Sessions are integrated with the rest of the service: every completed
// rung is inserted into the PlanCache tagged with its achieved alpha (so
// one-shot requests and later sessions reuse it under the relaxed alpha
// identity), rungs share the cross-query SubplanMemo (ladder steps of
// overlapping sessions reuse each other's table-set frontiers), sessions
// with identical spec + ladder coalesce onto one runner, and a refining
// ladder occupies one admission-controlled in-flight slot.
//
// Sessions are preference-free: the spec determines the ladder, and every
// preference is a selection over published frontiers. The
// preference-dependent algorithms (IRA, weighted-sum) therefore cannot
// back a session; SubmitAndWait falls back to the classic path for them.
//
// Thread safety: all public members are safe to call from any thread, and
// a session handle remains valid (it just stops refining) after the
// service that opened it is destroyed.

#ifndef MOQO_SERVICE_FRONTIER_SESSION_H_
#define MOQO_SERVICE_FRONTIER_SESSION_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "core/optimizer.h"
#include "core/plan_set.h"
#include "service/plan_cache.h"
#include "service/policy.h"
#include "service/request.h"
#include "service/signature.h"
#include "util/deadline.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace moqo {

class OptimizationService;
class ServiceStatsRegistry;
class Tracer;

/// Knobs of one refinement session.
struct SessionOptions {
  /// First (coarsest) rung of the alpha ladder. Values <= the target
  /// collapse the ladder to a single rung at the target — that is how
  /// SubmitAndWait becomes a one-step session.
  double alpha_start = 4.0;
  /// Final precision; <= 0 derives it from the spec's alpha override or
  /// the policy default.
  double alpha_target = -1;
  /// Maximum ladder rungs from alpha_start down to alpha_target
  /// (geometric in log space; >= 1).
  int max_steps = 4;
  /// Per-rung wall budget in ms; < 0 = none. A rung that exceeds it ends
  /// the ladder — the session keeps the guarantees it already published.
  int64_t step_deadline_ms = -1;
  /// Publish a synchronous quick-mode frontier at open when the cache
  /// cannot seed one; the session then always has a valid plan before
  /// OpenFrontier returns.
  bool quick_first = true;
};

/// One published frontier: a refinement step's output.
struct RefinedFrontier {
  /// Publish index within the session (0 = the open-time quick/cached
  /// frontier when one exists).
  int step = 0;
  /// The approximation guarantee of `plan_set`; +infinity for the
  /// quick-mode frontier (valid plans, no guarantee). Strictly decreasing
  /// over a session's published steps.
  double alpha = std::numeric_limits<double>::infinity();
  std::shared_ptr<const PlanSet> plan_set;
  /// Wall time of the step that produced it (0 for cache-served steps).
  double step_ms = 0;
  /// Served or seeded from the PlanCache rather than computed here.
  bool from_cache = false;
};

/// One scalarization of a session's best frontier at some instant.
struct SessionSelection {
  /// The selected plan and its derived quantities; plan is null iff the
  /// session has not published any frontier yet.
  PlanSelection selection;
  /// The frontier the selection came from — hold it as long as the plan
  /// is used.
  std::shared_ptr<const PlanSet> plan_set;
  /// Guarantee of that frontier (+infinity for quick-mode).
  double alpha = std::numeric_limits<double>::infinity();
  /// Publish index of that frontier; -1 if none yet.
  int step = -1;
};

class FrontierSession {
 public:
  using RefinedCallback = std::function<void(const RefinedFrontier&)>;
  using DoneCallback = std::function<void()>;

  FrontierSession(const FrontierSession&) = delete;
  FrontierSession& operator=(const FrontierSession&) = delete;

  /// The best (tightest-alpha) frontier published so far; null until the
  /// first publish (which, with quick_first or a cache seed, happens
  /// before OpenFrontier returns).
  std::shared_ptr<const PlanSet> BestFrontier() const;

  /// Guarantee of BestFrontier(): +infinity while only the quick-mode
  /// frontier exists, then the latest rung's alpha.
  double BestAlpha() const;

  /// The precision the ladder refines toward.
  double target_alpha() const { return target_alpha_; }
  /// The resolved rung precisions, coarsest first.
  const std::vector<double>& ladder() const { return ladder_; }
  AlgorithmKind algorithm() const { return decision_.algorithm; }

  /// Scalarizes the best frontier so far for `preference` —
  /// O(|frontier|), never blocks, callable at any time from any thread
  /// (including concurrently with refinement). Bounds are honored at
  /// selection (bounded SelectBest); the deadline field is ignored.
  SessionSelection Select(const Preference& preference) const;

  /// All published frontiers, oldest first; alphas strictly decrease.
  std::vector<RefinedFrontier> History() const;
  int StepsPublished() const;

  /// Ladder finished, failed, was cancelled, or was born satisfied.
  bool Done() const;
  /// Refinement reached alpha_target.
  bool TargetReached() const;
  bool Cancelled() const;
  /// Refinement was shed by priority admission under overload: the
  /// session ended early keeping every guarantee it already published
  /// (see ServiceOptions::refinement_shed_fraction).
  bool Shed() const;
  /// Shed by admission control at open (no ladder ever ran).
  bool Rejected() const;
  /// A rung timed out (or failed) before the target was reached.
  bool Degraded() const;

  /// Releases this opener's interest. When every OpenFrontier call that
  /// returned this session has cancelled, the runner aborts mid-rung (the
  /// DP's cancellation token) and the session completes with what it
  /// already published. Extra calls are no-ops.
  void Cancel();

  /// Blocks until the session is done; true iff the target was reached.
  bool AwaitTarget();
  /// Same with a timeout; false also when the wait timed out.
  bool AwaitFor(int64_t timeout_ms);
  /// Blocks until at least one frontier is published (immediately true
  /// for quick_first/cache-seeded sessions); false on timeout
  /// (timeout_ms < 0 = wait forever).
  bool AwaitFrontier(int64_t timeout_ms = -1);

  /// Registers a callback invoked for every published frontier. Already-
  /// published steps are replayed synchronously before registration
  /// returns, so a late subscriber misses nothing; per callback, delivery
  /// order is publish order. Returns an id for RemoveCallback. Callbacks
  /// run on the refining (or registering, during replay) thread and must
  /// not block.
  int OnRefined(RefinedCallback callback) MOQO_EXCLUDES(callback_mu_, mu_);

  /// Registers a callback invoked exactly once when the session completes
  /// (every Done()-visible field is set before it runs). An already-done
  /// session invokes it synchronously before registration returns. Shares
  /// the id space (and RemoveCallback) with OnRefined; same threading and
  /// must-not-block rules. This is how the network front end turns
  /// completion into a server-pushed DONE frame without polling.
  int OnDone(DoneCallback callback) MOQO_EXCLUDES(callback_mu_, mu_);

  void RemoveCallback(int id) MOQO_EXCLUDES(callback_mu_, mu_);

 private:
  friend class OptimizationService;

  FrontierSession() = default;

  /// Appends a frontier (strictly tighter than the current best; looser
  /// ones are dropped), updates the best snapshot, wakes waiters, and
  /// delivers callbacks. Returns false if the frontier was dropped.
  bool Publish(double alpha, std::shared_ptr<const PlanSet> plan_set,
               double step_ms, bool from_cache)
      MOQO_EXCLUDES(callback_mu_, mu_);

  /// Marks the session finished and wakes every waiter.
  void MarkDone(std::shared_ptr<const OptimizerResult> final_result,
                bool degraded, bool failed) MOQO_EXCLUDES(callback_mu_, mu_);

  void Attach();  ///< One more OpenFrontier call returned this session.
  bool CancelRequested() const {
    return cancel_flag_.load(std::memory_order_relaxed);
  }

  // ---- Immutable after OpenFrontier (set by the service). ----
  ProblemSpec spec_;
  /// Points into spec_; weights resolved to the opener's preference (or
  /// uniform) for quick-mode and stored-selection purposes.
  MOQOProblem problem_;
  PolicyDecision decision_;
  /// Alpha-free cache key of the spec (relaxed identity).
  ProblemSignature cache_signature_;
  /// Exact identity of this refinement: cache key + ladder + step budget;
  /// what identical sessions coalesce on.
  ProblemSignature session_key_;
  std::vector<double> ladder_;
  double target_alpha_ = 1.0;
  SessionOptions session_options_;
  /// Preference stored with cache inserts (the opener's, or uniform);
  /// also the weights quick mode optimizes for.
  Preference insert_preference_;
  /// Total budget from open in ms (< 0 = none); used by the one-step
  /// SubmitAndWait shim so queue wait counts against the deadline.
  int64_t total_deadline_ms_ = -1;
  bool registered_ = false;   ///< In the service's session registry.
  bool holds_slot_ = false;   ///< Owns one admission (in-flight) slot.
  StopWatch since_open_;
  /// Observability (PR 6), set by the owning service before the session is
  /// shared. Safe to dereference from publish paths: publishes only run on
  /// service threads, which the service joins before destroying either
  /// target. stats_registry_ receives the open-to-first-frontier latency;
  /// tracer_ (nullable) gets one "session.first_frontier" span, stamped
  /// with trace_id_ like every other span of this request.
  ServiceStatsRegistry* stats_registry_ = nullptr;
  Tracer* tracer_ = nullptr;
  uint64_t trace_id_ = 0;

  // ---- Mutable session state. ----
  mutable Mutex mu_;
  mutable CondVar cv_;
  std::vector<RefinedFrontier> history_ MOQO_GUARDED_BY(mu_);
  std::shared_ptr<const PlanSet> best_ MOQO_GUARDED_BY(mu_);
  double best_alpha_ MOQO_GUARDED_BY(mu_) =
      std::numeric_limits<double>::infinity();
  bool done_ MOQO_GUARDED_BY(mu_) = false;
  bool target_reached_ MOQO_GUARDED_BY(mu_) = false;
  /// Optimizer error; no further publishes.
  bool failed_ MOQO_GUARDED_BY(mu_) = false;
  /// Shed by admission control at open.
  bool rejected_ MOQO_GUARDED_BY(mu_) = false;
  /// A rung timed out before the target.
  bool degraded_ MOQO_GUARDED_BY(mu_) = false;
  /// Refinement shed by overload mid-ladder.
  bool shed_ MOQO_GUARDED_BY(mu_) = false;
  /// How the PlanCache answered the opener (kMiss when a ladder ran).
  CacheOutcome open_outcome_ MOQO_GUARDED_BY(mu_) = CacheOutcome::kMiss;
  /// The cache entry a born-done session was served from (exact-hit
  /// classification needs its stored preference).
  std::shared_ptr<const CachedFrontier> cached_entry_ MOQO_GUARDED_BY(mu_);
  /// The last completed rung's full result (or the degraded quick result
  /// when nothing completed); what the SubmitAndWait shim answers from.
  std::shared_ptr<const OptimizerResult> final_result_ MOQO_GUARDED_BY(mu_);
  /// Open-to-ladder-pickup wall time.
  double queue_ms_ MOQO_GUARDED_BY(mu_) = 0;
  int open_handles_ MOQO_GUARDED_BY(mu_) = 0;
  int next_callback_id_ MOQO_GUARDED_BY(mu_) = 0;

  /// Serializes callback delivery so each callback sees publishes in
  /// order, including the OnRefined replay and the one-shot OnDone
  /// delivery. Lock order everywhere: callback_mu_ before mu_ (the
  /// MOQO_ACQUIRED_BEFORE edge below lets the analysis check it). The
  /// callback lists are guarded by callback_mu_ itself — every reader and
  /// writer holds it — which is what lets OnRefined keep a reference into
  /// callbacks_ across the replay after dropping mu_.
  Mutex callback_mu_ MOQO_ACQUIRED_BEFORE(mu_);
  std::vector<std::pair<int, RefinedCallback>> callbacks_
      MOQO_GUARDED_BY(callback_mu_);
  std::vector<std::pair<int, DoneCallback>> done_callbacks_
      MOQO_GUARDED_BY(callback_mu_);

  /// Set when every opener has cancelled; polled by the DP through its
  /// Deadline (mid-rung cancellation point).
  std::atomic<bool> cancel_flag_{false};

  // ---- Robustness state (PR 8), owned by the service. ----
  /// Steady-clock microseconds when the currently executing rung started;
  /// -1 while no rung is on a worker. The watchdog compares it against
  /// step_deadline_ms * watchdog_factor.
  std::atomic<int64_t> rung_started_us_{-1};
  /// The watchdog force-finished this session (wedged rung). Makes the
  /// outcome read degraded — not cancelled — and tells the late rung to
  /// stand down.
  std::atomic<bool> watchdog_fired_{false};
  /// FinishSession once-guard: the watchdog's force-finish and the (late)
  /// rung's own finish may race; exactly one runs the terminal path.
  std::atomic<bool> finished_{false};
};

}  // namespace moqo

#endif  // MOQO_SERVICE_FRONTIER_SESSION_H_
