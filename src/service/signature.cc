// Copyright (c) 2026 moqo authors. MIT license.

#include "service/signature.h"

#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>

#include "query/canonical.h"

namespace moqo {
namespace {

constexpr uint64_t kUnboundedSentinel = std::numeric_limits<uint64_t>::max();

uint64_t DoubleBits(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

/// Linear bucket index; bit-exact when `step` is 0.
uint64_t LinearBucket(double v, double step) {
  if (step <= 0) return DoubleBits(v);
  return static_cast<uint64_t>(std::llround(v / step));
}

/// Relative (log-grid) bucket index; bit-exact when `rel` is 0. Values
/// within a factor (1 + rel) of each other share a bucket.
uint64_t RelativeBucket(double v, double rel) {
  if (rel <= 0) return DoubleBits(v);
  // Clamp away from zero: log of the intrinsic floor region. Bounds are
  // non-negative by the model invariant.
  const double clamped = v < 1e-30 ? 1e-30 : v;
  const double step = std::log1p(rel);
  return static_cast<uint64_t>(
      std::llround(std::log(clamped) / step) +
      (int64_t{1} << 32));  // Offset keeps the index positive.
}

uint64_t Fnv1a(const std::string& data) {
  uint64_t hash = 14695981039346656037ull;
  for (unsigned char c : data) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace

ProblemSignature ComputeSignature(const MOQOProblem& problem,
                                  AlgorithmKind algorithm, double alpha,
                                  const OptimizerOptions& options,
                                  const SignatureOptions& sig_options) {
  assert(problem.query != nullptr);
  std::string key;
  key.reserve(256);

  AppendCanonicalQuery(&key, *problem.query);

  // Objective selection, in order: the order fixes CostVector dimensions.
  AppendCanonicalU64(&key, static_cast<uint64_t>(problem.objectives.size()));
  for (Objective objective : problem.objectives) {
    AppendCanonicalU64(&key, static_cast<uint64_t>(objective));
  }

  AppendCanonicalU64(&key, static_cast<uint64_t>(problem.weights.size()));
  for (int i = 0; i < problem.weights.size(); ++i) {
    AppendCanonicalU64(&key,
                       LinearBucket(problem.weights[i],
                                    sig_options.weight_bucket));
  }

  // A default-constructed (size-0) BoundVector and an explicit
  // all-unbounded one describe the same weighted-MOQO instance
  // (MOQOProblem::IsWeightedOnly); canonicalize both to the empty
  // encoding so they share cache entries.
  if (problem.bounds.AllUnbounded()) {
    AppendCanonicalU64(&key, 0);
  } else {
    AppendCanonicalU64(&key, static_cast<uint64_t>(problem.bounds.size()));
    for (int i = 0; i < problem.bounds.size(); ++i) {
      AppendCanonicalU64(&key,
                         problem.bounds.IsUnbounded(i)
                             ? kUnboundedSentinel
                             : RelativeBucket(problem.bounds[i],
                                              sig_options.bound_bucket_rel));
    }
  }

  // Resolved algorithm + precision: an RTA result must never be served to
  // a request the policy resolved to the EXA, and vice versa.
  AppendCanonicalU64(&key, static_cast<uint64_t>(algorithm));
  AppendCanonicalDouble(&key, alpha);

  // Result-relevant optimizer switches (the timeout is deliberately
  // excluded: only non-timed-out results are cached, so a cached entry is
  // valid for any deadline).
  uint64_t flags = 0;
  flags |= options.bushy ? 1u : 0u;
  flags |= options.cartesian_heuristic ? 2u : 0u;
  flags |= options.aggressive_delete ? 4u : 0u;
  flags |= options.operators.enable_sampling ? 8u : 0u;
  flags |= options.operators.enable_index_scan ? 16u : 0u;
  flags |= options.operators.enable_parallelism ? 32u : 0u;
  AppendCanonicalU64(&key, flags);
  AppendCanonicalU64(&key, static_cast<uint64_t>(options.max_iterations));
  AppendCanonicalU64(&key, options.operators.sampling_rates.size());
  for (double rate : options.operators.sampling_rates) {
    AppendCanonicalDouble(&key, rate);
  }
  AppendCanonicalU64(&key, options.operators.dops.size());
  for (int dop : options.operators.dops) {
    AppendCanonicalU64(&key, static_cast<uint64_t>(dop));
  }

  ProblemSignature signature;
  signature.hash = Fnv1a(key);
  signature.key = std::move(key);
  return signature;
}

}  // namespace moqo
