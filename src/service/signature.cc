// Copyright (c) 2026 moqo authors. MIT license.

#include "service/signature.h"

#include <cstring>
#include <limits>

#include "query/canonical.h"

namespace moqo {
namespace {

constexpr uint64_t kUnboundedSentinel = std::numeric_limits<uint64_t>::max();

uint64_t DoubleBits(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace

ProblemSignature ComputeSignature(const Query& query,
                                  const ObjectiveSet& objectives,
                                  AlgorithmKind algorithm, double alpha,
                                  const OptimizerOptions& options,
                                  const WeightVector* weights,
                                  const BoundVector* bounds) {
  std::string key;
  key.reserve(256);

  AppendCanonicalQuery(&key, query);

  // Objective selection, in order: the order fixes CostVector dimensions.
  AppendCanonicalU64(&key, static_cast<uint64_t>(objectives.size()));
  for (Objective objective : objectives) {
    AppendCanonicalU64(&key, static_cast<uint64_t>(objective));
  }

  // Resolved algorithm: an RTA result must never be served to a request
  // the policy resolved to the EXA, and vice versa. The precision alpha is
  // deliberately NOT part of the frontier-algorithm key — the cache tags
  // entries with their achieved alpha and serves any looser request from a
  // tighter entry (relaxed identity; see the header comment).
  AppendCanonicalU64(&key, static_cast<uint64_t>(algorithm));

  // Result-relevant optimizer switches (the timeout is deliberately
  // excluded: only non-timed-out results are cached, so a cached entry is
  // valid for any deadline).
  uint64_t flags = 0;
  flags |= options.bushy ? 1u : 0u;
  flags |= options.cartesian_heuristic ? 2u : 0u;
  flags |= options.aggressive_delete ? 4u : 0u;
  flags |= options.operators.enable_sampling ? 8u : 0u;
  flags |= options.operators.enable_index_scan ? 16u : 0u;
  flags |= options.operators.enable_parallelism ? 32u : 0u;
  AppendCanonicalU64(&key, flags);
  AppendCanonicalU64(&key, static_cast<uint64_t>(options.max_iterations));
  AppendCanonicalU64(&key, options.operators.sampling_rates.size());
  for (double rate : options.operators.sampling_rates) {
    AppendCanonicalDouble(&key, rate);
  }
  AppendCanonicalU64(&key, options.operators.dops.size());
  for (int dop : options.operators.dops) {
    AppendCanonicalU64(&key, static_cast<uint64_t>(dop));
  }

  // Preference-dependent algorithms only: their frontier is tailored to
  // the given precision and weights/bounds, so equal keys must mean equal
  // requests. Frontier-producing algorithms skip this block entirely —
  // that is what makes a weight-only change (and, since PR 5, an
  // alpha-only relaxation) a cache hit.
  if (IsPreferenceDependent(algorithm)) {
    AppendCanonicalDouble(&key, alpha);
    const int num_weights = weights != nullptr ? weights->size() : 0;
    AppendCanonicalU64(&key, static_cast<uint64_t>(num_weights));
    for (int i = 0; i < num_weights; ++i) {
      AppendCanonicalU64(&key, DoubleBits((*weights)[i]));
    }
    // A default-constructed (size-0) BoundVector and an explicit
    // all-unbounded one describe the same weighted-MOQO instance
    // (MOQOProblem::IsWeightedOnly); canonicalize both to the empty
    // encoding so they share cache entries.
    if (bounds == nullptr || bounds->AllUnbounded()) {
      AppendCanonicalU64(&key, 0);
    } else {
      AppendCanonicalU64(&key, static_cast<uint64_t>(bounds->size()));
      for (int i = 0; i < bounds->size(); ++i) {
        AppendCanonicalU64(&key, bounds->IsUnbounded(i)
                                     ? kUnboundedSentinel
                                     : DoubleBits((*bounds)[i]));
      }
    }
  }

  ProblemSignature signature;
  signature.hash = Fnv1aHash(key);
  signature.key = std::move(key);
  return signature;
}

ProblemSignature ExtendSignature(const ProblemSignature& base, double alpha) {
  ProblemSignature extended;
  extended.key = base.key;
  AppendCanonicalDouble(&extended.key, alpha);
  extended.hash = Fnv1aHash(extended.key);
  return extended;
}

}  // namespace moqo
