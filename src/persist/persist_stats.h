// Copyright (c) 2026 moqo authors. MIT license.
//
// Persistence counters of the optimization service: snapshot writes,
// warm restores (with per-reason skip accounting mirroring the snapshot
// validation matrix), and the RAM→disk tier traffic of both caches.
// The atomics live behind a shared_ptr owned jointly by the service and
// every metric sampler registered against them, so a scrape racing
// service teardown reads frozen counters instead of freed memory (the
// moqo_net_* pattern).

#ifndef MOQO_PERSIST_PERSIST_STATS_H_
#define MOQO_PERSIST_PERSIST_STATS_H_

#include <atomic>
#include <cstdint>

namespace moqo {
namespace persist {

/// Monotonic persistence counters (service lifetime).
struct PersistCounters {
  std::atomic<uint64_t> snapshots_written{0};
  std::atomic<uint64_t> snapshot_failures{0};
  std::atomic<uint64_t> snapshot_records{0};  ///< Across all snapshots.
  std::atomic<uint64_t> snapshot_bytes{0};    ///< Encoded bytes written.
  std::atomic<uint64_t> restores_attempted{0};
  std::atomic<uint64_t> restores_loaded{0};  ///< Header validated + parsed.
  std::atomic<uint64_t> restored_plan_entries{0};
  std::atomic<uint64_t> restored_memo_entries{0};
  std::atomic<uint64_t> restore_bytes{0};  ///< Payload bytes restored.
  /// Records skipped by the validation matrix, by reason. Epoch/version
  /// gates reject the whole file, so they count header.record_count at
  /// once; checksum/truncation count per record.
  std::atomic<uint64_t> restore_skipped_epoch{0};
  std::atomic<uint64_t> restore_skipped_version{0};
  std::atomic<uint64_t> restore_skipped_checksum{0};
  std::atomic<uint64_t> restore_truncated{0};
};

/// Plain-value snapshot of PersistCounters plus both tiers' stats,
/// assembled by OptimizationService::PersistStats().
struct PersistStatsSnapshot {
  uint64_t snapshots_written = 0;
  uint64_t snapshot_failures = 0;
  uint64_t snapshot_records = 0;
  uint64_t snapshot_bytes = 0;
  uint64_t restores_attempted = 0;
  uint64_t restores_loaded = 0;
  uint64_t restored_plan_entries = 0;
  uint64_t restored_memo_entries = 0;
  uint64_t restore_bytes = 0;
  uint64_t restore_skipped_epoch = 0;
  uint64_t restore_skipped_version = 0;
  uint64_t restore_skipped_checksum = 0;
  uint64_t restore_truncated = 0;
  /// Tier traffic, split per owning cache (zero when the tier is off).
  uint64_t cache_tier_demotions = 0;
  uint64_t cache_tier_promotions = 0;
  uint64_t memo_tier_demotions = 0;
  uint64_t memo_tier_promotions = 0;
  size_t cache_tier_entries = 0;
  size_t cache_tier_bytes = 0;
  size_t memo_tier_entries = 0;
  size_t memo_tier_bytes = 0;

  uint64_t restored_entries() const {
    return restored_plan_entries + restored_memo_entries;
  }
};

}  // namespace persist
}  // namespace moqo

#endif  // MOQO_PERSIST_PERSIST_STATS_H_
