// Copyright (c) 2026 moqo authors. MIT license.

#include "persist/plan_set_codec.h"

#include <cassert>
#include <unordered_map>
#include <vector>

#include "cost/objective.h"
#include "persist/format.h"
#include "plan/plan_node.h"
#include "util/table_set.h"

namespace moqo {
namespace persist {

namespace {

/// Children-before-parents node enumeration with DAG dedup: every distinct
/// node gets exactly one index, child indices are always smaller than the
/// parent's. Mirrors CopyShared in plan_set.cc, but flattening instead of
/// copying.
void EnumerateNodes(const PlanNode* node,
                    std::unordered_map<const PlanNode*, uint32_t>* index,
                    std::vector<const PlanNode*>* nodes) {
  if (node == nullptr || index->count(node) != 0) return;
  EnumerateNodes(node->left, index, nodes);
  EnumerateNodes(node->right, index, nodes);
  (*index)[node] = static_cast<uint32_t>(nodes->size());
  nodes->push_back(node);
}

}  // namespace

void PlanSetCodec::Append(const PlanSet& set, std::string* out) {
  std::unordered_map<const PlanNode*, uint32_t> index;
  std::vector<const PlanNode*> nodes;
  index.reserve(static_cast<size_t>(set.size()) * 2);
  for (int i = 0; i < set.size(); ++i) {
    EnumerateNodes(set.plan(i), &index, &nodes);
  }
  const uint32_t dims =
      set.empty() ? 0 : static_cast<uint32_t>(set.cost(0).size());

  PutU32(out, static_cast<uint32_t>(set.size()));
  PutU32(out, static_cast<uint32_t>(nodes.size()));
  PutU32(out, dims);
  PutU32(out, 0);  // reserved
  for (int i = 0; i < set.size(); ++i) {
    const CostVector& cost = set.cost(i);
    assert(cost.size() == static_cast<int>(dims));
    for (uint32_t d = 0; d < dims; ++d) PutDouble(out, cost[d]);
  }
  for (int i = 0; i < set.size(); ++i) {
    PutU32(out, index.at(set.plan(i)));
  }
  for (const PlanNode* node : nodes) {
    PutI32(out, node->op_config);
    PutI32(out, node->table);
    PutU32(out, node->left == nullptr ? kNoChild : index.at(node->left));
    PutU32(out, node->right == nullptr ? kNoChild : index.at(node->right));
    PutU64(out, node->tables.mask());
    PutDouble(out, node->cardinality);
    PutDouble(out, node->row_width);
    assert(node->cost.size() == static_cast<int>(dims));
    for (uint32_t d = 0; d < dims; ++d) PutDouble(out, node->cost[d]);
  }
}

std::shared_ptr<const PlanSet> PlanSetCodec::Decode(const void* data,
                                                    size_t size,
                                                    size_t* consumed) try {
  ByteReader reader(data, size);
  uint32_t num_plans, num_nodes, dims, reserved;
  if (!reader.GetU32(&num_plans) || !reader.GetU32(&num_nodes) ||
      !reader.GetU32(&dims) || !reader.GetU32(&reserved)) {
    return nullptr;
  }
  if (dims > static_cast<uint32_t>(kNumObjectives)) return nullptr;
  // Up-front size check: a lying header must fail here, not mid-parse.
  const uint64_t node_bytes = 4u + 4u + 4u + 4u + 8u + 8u + 8u +
                              static_cast<uint64_t>(dims) * 8u;
  const uint64_t need =
      static_cast<uint64_t>(num_plans) * dims * 8u +
      static_cast<uint64_t>(num_plans) * 4u +
      static_cast<uint64_t>(num_nodes) * node_bytes;
  if (need > reader.remaining()) return nullptr;
  if (num_plans == 0) {
    if (consumed != nullptr) *consumed = reader.position();
    return PlanSet::Empty();
  }
  // Every plan needs a root node.
  if (num_nodes == 0) return nullptr;

  struct Constructible : PlanSet {};
  auto result = std::make_shared<Constructible>();
  result->costs_.reserve(num_plans);
  for (uint32_t i = 0; i < num_plans; ++i) {
    CostVector cost(static_cast<int>(dims));
    for (uint32_t d = 0; d < dims; ++d) {
      double v;
      if (!reader.GetDouble(&v)) return nullptr;
      cost[static_cast<int>(d)] = v;
    }
    result->costs_.push_back(cost);
  }
  std::vector<uint32_t> roots(num_plans);
  for (uint32_t i = 0; i < num_plans; ++i) {
    if (!reader.GetU32(&roots[i]) || roots[i] >= num_nodes) return nullptr;
  }
  // One forward pass: child indices must refer to already-built nodes, so
  // a valid block materializes without recursion or fixups.
  std::vector<const PlanNode*> nodes;
  nodes.reserve(num_nodes);
  for (uint32_t i = 0; i < num_nodes; ++i) {
    int32_t op_config, table;
    uint32_t left, right;
    uint64_t tables_mask;
    double cardinality, row_width;
    if (!reader.GetI32(&op_config) || !reader.GetI32(&table) ||
        !reader.GetU32(&left) || !reader.GetU32(&right) ||
        !reader.GetU64(&tables_mask) || !reader.GetDouble(&cardinality) ||
        !reader.GetDouble(&row_width)) {
      return nullptr;
    }
    if ((left != kNoChild && left >= i) || (right != kNoChild && right >= i)) {
      return nullptr;
    }
    // Scans have no children, joins have both — anything else is corrupt.
    if ((left == kNoChild) != (right == kNoChild)) return nullptr;
    CostVector cost(static_cast<int>(dims));
    for (uint32_t d = 0; d < dims; ++d) {
      double v;
      if (!reader.GetDouble(&v)) return nullptr;
      cost[static_cast<int>(d)] = v;
    }
    PlanNode* node = result->arena_.New<PlanNode>();
    node->op_config = op_config;
    node->table = table;
    node->left = left == kNoChild ? nullptr : nodes[left];
    node->right = right == kNoChild ? nullptr : nodes[right];
    node->tables = TableSet(tables_mask);
    node->cost = cost;
    node->cardinality = cardinality;
    node->row_width = row_width;
    nodes.push_back(node);
  }
  result->plans_.reserve(num_plans);
  for (uint32_t i = 0; i < num_plans; ++i) {
    result->plans_.push_back(nodes[roots[i]]);
  }
  if (consumed != nullptr) *consumed = reader.position();
  return result;
} catch (const std::bad_alloc&) {
  // Allocation failure mid-decode (arena growth, vector reserve — real or
  // injected via arena.new_block) degrades to the undecodable path every
  // caller already handles: a tier probe misses, a restore skips the
  // record. A cache can always refuse to produce an entry.
  return nullptr;
}

}  // namespace persist
}  // namespace moqo
