// Copyright (c) 2026 moqo authors. MIT license.
//
// DiskTier: the RAM→disk demotion tier behind the sharded LRU caches.
//
// When a byte-budgeted cache evicts an entry that is still admissible
// (it fell to cache pressure, not invalidation), the owner's eviction
// hook appends its encoded payload to a per-shard, append-mostly segment
// file and keeps only a compact index entry in RAM: signature hash,
// file offset, lengths, achieved alpha — a few dozen bytes (the
// Trimma-style metadata-trimming idiom the ROADMAP names), so the
// resident index for millions of demoted frontiers stays cheap. A later
// miss probes the tier; a hit reads the record back, verifies checksum
// and full key (hash collisions never alias — same contract as the
// caches), removes the index entry, and the owner re-inserts the entry
// into RAM ("promotion"), surfacing as CacheOutcome::kTierHit.
//
// Append-mostly: promotions and overwrites leave dead bytes behind; when
// a shard's segment reaches its slice of the byte budget the whole shard
// segment is dropped (ftruncate + index clear). The tier is a cache of a
// cache — losing a generation costs future misses, never correctness.
// Segment files are truncated at open: the tier holds process-lifetime
// overflow; *cross-restart* warmth is the snapshot file's job
// (snapshot.h).
//
// On-disk record: u32 key_len, u32 payload_len, u64 key_hash,
// u64 alpha_bits, u64 checksum(FNV over key + payload), key, payload.

#ifndef MOQO_PERSIST_DISK_TIER_H_
#define MOQO_PERSIST_DISK_TIER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace moqo {
namespace persist {

class DiskTier {
 public:
  struct Options {
    std::string directory;      ///< Must exist; segment files live here.
    std::string name = "tier";  ///< Segment file prefix (one tier each).
    size_t capacity_bytes = size_t{256} << 20;  ///< Across all shards.
    int shards = 4;  ///< Independently locked; rounded up to a power of 2.
  };

  /// Monotonic counters + occupancy gauges. Held via shared_ptr so metric
  /// samplers registered with the service outlive the tier (the
  /// moqo_net_* teardown-safety pattern).
  struct Counters {
    std::atomic<uint64_t> demotions{0};   ///< Records appended.
    std::atomic<uint64_t> promotions{0};  ///< Records read back + removed.
    std::atomic<uint64_t> misses{0};      ///< Probes finding nothing.
    std::atomic<uint64_t> dropped{0};     ///< Entries lost to shard resets.
    std::atomic<uint64_t> corrupt{0};     ///< Checksum/shape failures.
    std::atomic<uint64_t> entries{0};     ///< Live index entries.
    std::atomic<uint64_t> bytes{0};       ///< Live on-disk record bytes.
  };

  struct Stats {
    uint64_t demotions = 0;
    uint64_t promotions = 0;
    uint64_t misses = 0;
    uint64_t dropped = 0;
    uint64_t corrupt = 0;
    size_t entries = 0;
    size_t bytes = 0;
  };

  explicit DiskTier(const Options& options);
  ~DiskTier();

  DiskTier(const DiskTier&) = delete;
  DiskTier& operator=(const DiskTier&) = delete;

  /// False when segment files could not be created; Put/Take then no-op.
  bool ok() const { return ok_; }

  /// Appends one demoted entry. False when the tier is unusable, the
  /// record exceeds a whole shard's budget, the write fails, or the
  /// `persist.write` failpoint fires — in every case the entry is simply
  /// gone (a dropped demotion is a future miss, not an error).
  bool Put(uint64_t key_hash, std::string_view key, double achieved_alpha,
           std::string_view payload);

  /// Probes for `key` with achieved alpha <= `max_alpha` (the caches'
  /// relaxed alpha identity). On a hit fills `payload_out` (+ optional
  /// `alpha_out`), removes the entry (promotion is a move, not a copy),
  /// and returns true. Checksum or key verification failures discard the
  /// entry and keep scanning. The `persist.read` failpoint forces a miss.
  bool Take(uint64_t key_hash, std::string_view key, double max_alpha,
            std::string* payload_out, double* alpha_out);

  Stats GetStats() const;
  std::shared_ptr<const Counters> counters() const { return counters_; }

 private:
  /// The compact resident footprint of one demoted entry.
  struct IndexEntry {
    uint64_t offset = 0;
    uint32_t key_len = 0;
    uint32_t payload_len = 0;
    double alpha = 0;
  };

  struct Shard {
    Mutex mu;
    /// Opened at construction, closed at destruction, I/O under mu.
    int fd MOQO_GUARDED_BY(mu) = -1;
    uint64_t append_offset MOQO_GUARDED_BY(mu) = 0;
    /// Record bytes still reachable via index.
    uint64_t live_bytes MOQO_GUARDED_BY(mu) = 0;
    std::unordered_multimap<uint64_t, IndexEntry> index MOQO_GUARDED_BY(mu);
  };

  Shard& ShardFor(uint64_t key_hash);
  /// Caller holds the shard lock. Drops every entry in the shard.
  void ResetShard(Shard* shard) MOQO_REQUIRES(shard->mu);

  std::vector<std::unique_ptr<Shard>> shards_;
  uint64_t shard_mask_ = 0;
  size_t shard_capacity_bytes_ = 0;
  bool ok_ = false;
  std::shared_ptr<Counters> counters_ = std::make_shared<Counters>();
};

}  // namespace persist
}  // namespace moqo

#endif  // MOQO_PERSIST_DISK_TIER_H_
