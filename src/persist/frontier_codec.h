// Copyright (c) 2026 moqo authors. MIT license.
//
// Payload codecs for the two cached-entry kinds the persistence layer
// moves around (snapshot records and disk-tier records share these):
//
//   kPlanCacheEntry — a whole-query CachedFrontier:
//     u32 weights_size, u32 bounds_size
//     f64 weights[weights_size], f64 bounds[bounds_size]
//     PlanSet block (plan_set_codec.h)
//   kMemoEntry — a table-set-level frontier: PlanSet block only.
//
// The achieved alpha travels in the container's record header (snapshot
// record / tier index entry), not the payload, so the tier can gate
// relaxed-alpha probes without touching disk.
//
// Decoding a CachedFrontier rebuilds its OptimizerResult by re-running
// SelectPlan over the restored frontier with the stored preference:
// SelectPlan's scan is deterministic over bit-identical costs, so the
// restored selection (plan index, cost, weighted cost) matches what the
// original entry served. Cold-run metrics are not persisted — a restored
// entry's metrics read as zero, which is truthful: this process never ran
// that optimization.

#ifndef MOQO_PERSIST_FRONTIER_CODEC_H_
#define MOQO_PERSIST_FRONTIER_CODEC_H_

#include <memory>
#include <string>

#include "service/plan_cache.h"

namespace moqo {
namespace persist {

/// Appends the payload encoding of `entry` to `out`. False (nothing
/// appended) for entries with no restorable frontier (null result or
/// plan_set) — degenerate values that were never worth persisting.
bool EncodeFrontierPayload(const CachedFrontier& entry, std::string* out);

/// Decodes a kPlanCacheEntry payload. Returns nullptr on any malformed
/// input; never throws.
std::shared_ptr<const CachedFrontier> DecodeFrontierPayload(
    const void* data, size_t size, double achieved_alpha);

}  // namespace persist
}  // namespace moqo

#endif  // MOQO_PERSIST_FRONTIER_CODEC_H_
