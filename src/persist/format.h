// Copyright (c) 2026 moqo authors. MIT license.
//
// On-disk format primitives shared by the snapshot file (snapshot.h), the
// RAM→disk cache tier (disk_tier.h), and the PlanSet codec
// (plan_set_codec.h).
//
// Encoding contract — identical to the wire protocol (net/wire.h): every
// integer is little-endian fixed-width, every double is its IEEE-754 bit
// pattern moved through uint64_t with memcpy. No varints, no alignment
// padding beyond what the record layouts spell out, no host-endianness
// leaks. A snapshot written on one machine reads back bit-identically on
// any other little-endian-serialized reader, and round-trips are bit-exact
// by construction (the acceptance criterion for cached frontiers, whose
// identity contract is "equal keys imply byte-identical frontiers").
//
// Integrity: FNV-1a 64-bit over the exact encoded bytes. Not
// cryptographic — it detects torn writes, truncation, and bit rot, which
// is all a local cache file needs.

#ifndef MOQO_PERSIST_FORMAT_H_
#define MOQO_PERSIST_FORMAT_H_

#include <cstdint>
#include <cstring>
#include <string>

namespace moqo {
namespace persist {

/// "MOQOSNP1" as a little-endian u64 (first file byte = 'M').
inline constexpr uint64_t kSnapshotMagic = 0x31504E534F514F4Dull;

/// Bumped on any layout change; readers skip whole files from other
/// versions (restore_skipped{reason="version"}).
inline constexpr uint32_t kFormatVersion = 1;

/// Sentinel for "no child" in the PlanSet node table.
inline constexpr uint32_t kNoChild = 0xFFFFFFFFu;

/// Record kinds in a snapshot file.
enum class RecordKind : uint32_t {
  kPlanCacheEntry = 1,  ///< Payload: preference block + PlanSet block.
  kMemoEntry = 2,       ///< Payload: PlanSet block only.
};

// ---- Checksums. ----

inline constexpr uint64_t kFnvOffsetBasis = 1469598103934665603ull;
inline constexpr uint64_t kFnvPrime = 1099511628211ull;

/// FNV-1a over `len` bytes, chainable through `seed` so a checksum can
/// cover discontiguous pieces (record header, then key, then payload).
inline uint64_t Fnv1a(const void* data, size_t len,
                      uint64_t seed = kFnvOffsetBasis) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  uint64_t hash = seed;
  for (size_t i = 0; i < len; ++i) {
    hash ^= bytes[i];
    hash *= kFnvPrime;
  }
  return hash;
}

// ---- Little-endian append helpers. ----

inline void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

inline void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

inline void PutI32(std::string* out, int32_t v) {
  PutU32(out, static_cast<uint32_t>(v));
}

/// IEEE-754 bit pattern; NaNs and signed zeros survive unchanged.
inline void PutDouble(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

inline uint64_t DoubleBits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

inline double DoubleFromBits(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

// ---- Bounds-checked little-endian reader. ----

/// Cursor over an encoded byte range (an mmap'ed file region or an
/// in-memory string). Every Get* fails (returns false, cursor unchanged)
/// instead of reading past the end, so a truncated file can never fault —
/// torn tails surface as a clean decode failure.
class ByteReader {
 public:
  ByteReader(const void* data, size_t size)
      : data_(static_cast<const unsigned char*>(data)), size_(size) {}

  size_t remaining() const { return size_ - pos_; }
  size_t position() const { return pos_; }
  const unsigned char* cursor() const { return data_ + pos_; }

  bool Skip(size_t n) {
    if (remaining() < n) return false;
    pos_ += n;
    return true;
  }

  bool GetU32(uint32_t* out) {
    if (remaining() < 4) return false;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    *out = v;
    return true;
  }

  bool GetU64(uint64_t* out) {
    if (remaining() < 8) return false;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    *out = v;
    return true;
  }

  bool GetI32(int32_t* out) {
    uint32_t v;
    if (!GetU32(&v)) return false;
    *out = static_cast<int32_t>(v);
    return true;
  }

  bool GetDouble(double* out) {
    uint64_t bits;
    if (!GetU64(&bits)) return false;
    *out = DoubleFromBits(bits);
    return true;
  }

 private:
  const unsigned char* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace persist
}  // namespace moqo

#endif  // MOQO_PERSIST_FORMAT_H_
