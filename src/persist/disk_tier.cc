// Copyright (c) 2026 moqo authors. MIT license.

#include "persist/disk_tier.h"

#include <fcntl.h>
#include <unistd.h>

#include <bit>
#include <cstring>

#include "persist/format.h"
#include "rt/failpoint.h"

namespace moqo {
namespace persist {

namespace {

constexpr size_t kRecordHeaderBytes = 32;
constexpr auto kRelaxed = std::memory_order_relaxed;

size_t RecordBytes(size_t key_len, size_t payload_len) {
  return kRecordHeaderBytes + key_len + payload_len;
}

}  // namespace

DiskTier::DiskTier(const Options& options) {
  const int requested = options.shards < 1 ? 1 : options.shards;
  const size_t num_shards = std::bit_ceil(static_cast<size_t>(requested));
  shard_mask_ = num_shards - 1;
  shard_capacity_bytes_ =
      (options.capacity_bytes + num_shards - 1) / num_shards;
  if (shard_capacity_bytes_ < kRecordHeaderBytes) {
    shard_capacity_bytes_ = kRecordHeaderBytes;
  }
  shards_.reserve(num_shards);
  bool all_open = true;
  for (size_t i = 0; i < num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    const std::string path = options.directory + "/" + options.name +
                             ".shard" + std::to_string(i) + ".seg";
    // O_TRUNC: the tier holds this process's overflow only; stale segments
    // from a previous run are unreachable (their index died with it).
    // The shard is not shared yet; the lock is for the thread-safety
    // analysis (fd is guarded, and Shard's own ctor/dtor never touch it).
    MutexLock lock(shard->mu);
    shard->fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
    if (shard->fd < 0) all_open = false;
    shards_.push_back(std::move(shard));
  }
  ok_ = all_open;
}

DiskTier::~DiskTier() {
  for (auto& shard : shards_) {
    // No concurrent Put/Take may be in flight at destruction; the lock
    // keeps the guarded fd read visible to the analysis.
    MutexLock lock(shard->mu);
    if (shard->fd >= 0) ::close(shard->fd);
  }
}

DiskTier::Shard& DiskTier::ShardFor(uint64_t key_hash) {
  // Same decorrelating mix as ShardedLru: shard choice must not echo the
  // in-RAM cache's sharding or the index bucket choice.
  uint64_t mixed = key_hash * 0x9E3779B97F4A7C15ull;
  mixed ^= mixed >> 32;
  return *shards_[mixed & shard_mask_];
}

void DiskTier::ResetShard(Shard* shard) {
  counters_->dropped.fetch_add(shard->index.size(), kRelaxed);
  counters_->entries.fetch_sub(shard->index.size(), kRelaxed);
  counters_->bytes.fetch_sub(shard->live_bytes, kRelaxed);
  shard->index.clear();
  shard->live_bytes = 0;
  shard->append_offset = 0;
  if (::ftruncate(shard->fd, 0) != 0) {
    // Keeping the old length is harmless: the index is empty and appends
    // restart at offset 0, overwriting the stale region.
  }
}

bool DiskTier::Put(uint64_t key_hash, std::string_view key,
                   double achieved_alpha, std::string_view payload) {
  if (!ok_) return false;
  MOQO_FAILPOINT_RETURN("persist.tier.write", false);
  const size_t record_bytes = RecordBytes(key.size(), payload.size());
  if (record_bytes > shard_capacity_bytes_) return false;

  std::string record;
  record.reserve(record_bytes);
  PutU32(&record, static_cast<uint32_t>(key.size()));
  PutU32(&record, static_cast<uint32_t>(payload.size()));
  PutU64(&record, key_hash);
  PutU64(&record, DoubleBits(achieved_alpha));
  uint64_t checksum = Fnv1a(key.data(), key.size());
  checksum = Fnv1a(payload.data(), payload.size(), checksum);
  PutU64(&record, checksum);
  record.append(key);
  record.append(payload);

  Shard& shard = ShardFor(key_hash);
  MutexLock lock(shard.mu);
  if (shard.fd < 0) return false;
  // Re-demotion of an unchanged entry (demote → promote → demote churn) is
  // the common case; an index entry with identical hash, shape, and alpha
  // is that entry with overwhelming likelihood, so skip the duplicate
  // append. (A same-shape different key would merely keep serving the
  // older record — the full-key check on Take keeps it from aliasing.)
  auto range = shard.index.equal_range(key_hash);
  for (auto it = range.first; it != range.second; ++it) {
    if (it->second.key_len == key.size() &&
        it->second.payload_len == payload.size() &&
        it->second.alpha == achieved_alpha) {
      return true;
    }
  }
  if (shard.append_offset + record_bytes > shard_capacity_bytes_) {
    ResetShard(&shard);
  }
  size_t written = 0;
  while (written < record.size()) {
    const ssize_t n =
        ::pwrite(shard.fd, record.data() + written, record.size() - written,
                 static_cast<off_t>(shard.append_offset + written));
    if (n <= 0) return false;
    written += static_cast<size_t>(n);
  }
  IndexEntry entry;
  entry.offset = shard.append_offset;
  entry.key_len = static_cast<uint32_t>(key.size());
  entry.payload_len = static_cast<uint32_t>(payload.size());
  entry.alpha = achieved_alpha;
  shard.index.emplace(key_hash, entry);
  shard.append_offset += record_bytes;
  shard.live_bytes += record_bytes;
  counters_->demotions.fetch_add(1, kRelaxed);
  counters_->entries.fetch_add(1, kRelaxed);
  counters_->bytes.fetch_add(record_bytes, kRelaxed);
  return true;
}

bool DiskTier::Take(uint64_t key_hash, std::string_view key, double max_alpha,
                    std::string* payload_out, double* alpha_out) {
  if (!ok_) return false;
  if (MOQO_FAILPOINT_HIT("persist.tier.read")) {
    counters_->misses.fetch_add(1, kRelaxed);
    return false;
  }
  Shard& shard = ShardFor(key_hash);
  MutexLock lock(shard.mu);
  auto range = shard.index.equal_range(key_hash);
  for (auto it = range.first; it != range.second;) {
    const IndexEntry& entry = it->second;
    if (!(entry.alpha <= max_alpha)) {
      ++it;
      continue;
    }
    const size_t record_bytes = RecordBytes(entry.key_len, entry.payload_len);
    std::string record(record_bytes, '\0');
    size_t done = 0;
    bool read_ok = true;
    while (done < record_bytes) {
      const ssize_t n =
          ::pread(shard.fd, record.data() + done, record_bytes - done,
                  static_cast<off_t>(entry.offset + done));
      if (n <= 0) {
        read_ok = false;
        break;
      }
      done += static_cast<size_t>(n);
    }
    bool corrupt = !read_ok;
    const char* key_ptr = nullptr;
    const char* payload_ptr = nullptr;
    if (!corrupt) {
      ByteReader reader(record.data(), record.size());
      uint32_t key_len = 0, payload_len = 0;
      uint64_t stored_hash = 0, alpha_bits = 0, stored_checksum = 0;
      reader.GetU32(&key_len);
      reader.GetU32(&payload_len);
      reader.GetU64(&stored_hash);
      reader.GetU64(&alpha_bits);
      reader.GetU64(&stored_checksum);
      key_ptr = record.data() + kRecordHeaderBytes;
      payload_ptr = key_ptr + entry.key_len;
      uint64_t checksum = Fnv1a(key_ptr, entry.key_len);
      checksum = Fnv1a(payload_ptr, entry.payload_len, checksum);
      corrupt = key_len != entry.key_len || payload_len != entry.payload_len ||
                stored_hash != key_hash || checksum != stored_checksum ||
                DoubleFromBits(alpha_bits) != entry.alpha;
    }
    if (corrupt) {
      counters_->corrupt.fetch_add(1, kRelaxed);
      counters_->entries.fetch_sub(1, kRelaxed);
      counters_->bytes.fetch_sub(record_bytes, kRelaxed);
      shard.live_bytes -= record_bytes;
      it = shard.index.erase(it);
      continue;
    }
    // Full-key comparison: equal hashes with different keys must never
    // alias (the caches' identity contract).
    if (std::string_view(key_ptr, entry.key_len) != key) {
      ++it;
      continue;
    }
    payload_out->assign(payload_ptr, entry.payload_len);
    if (alpha_out != nullptr) *alpha_out = entry.alpha;
    shard.live_bytes -= record_bytes;
    shard.index.erase(it);
    counters_->promotions.fetch_add(1, kRelaxed);
    counters_->entries.fetch_sub(1, kRelaxed);
    counters_->bytes.fetch_sub(record_bytes, kRelaxed);
    return true;
  }
  counters_->misses.fetch_add(1, kRelaxed);
  return false;
}

DiskTier::Stats DiskTier::GetStats() const {
  Stats stats;
  stats.demotions = counters_->demotions.load(kRelaxed);
  stats.promotions = counters_->promotions.load(kRelaxed);
  stats.misses = counters_->misses.load(kRelaxed);
  stats.dropped = counters_->dropped.load(kRelaxed);
  stats.corrupt = counters_->corrupt.load(kRelaxed);
  stats.entries = counters_->entries.load(kRelaxed);
  stats.bytes = counters_->bytes.load(kRelaxed);
  return stats;
}

}  // namespace persist
}  // namespace moqo
