// Copyright (c) 2026 moqo authors. MIT license.
//
// PlanSetCodec: the relocatable on-disk encoding of a sealed PlanSet.
//
// A PlanSet is already the ideal persistence unit — immutable, arena-
// backed, DAG-shared — except that its plan references are pointers into
// its own arena. The codec rewrites them as *offsets*: every distinct
// PlanNode reachable from the frontier is emitted exactly once into a
// flat node table in children-before-parents order, and plan roots /
// child links become u32 indices into that table. The result is fully
// relocatable: it can be parsed straight out of an mmap'ed region with no
// fixups, and decoding materializes nodes back into a fresh PlanSet arena
// in one forward pass (a child index always refers to an already-built
// node).
//
// Block layout (all little-endian, doubles as IEEE-754 bit patterns —
// see format.h):
//
//   u32 num_plans        frontier size
//   u32 num_nodes        distinct DAG nodes
//   u32 dims             active objectives (all cost vectors agree)
//   u32 reserved         0
//   f64 costs[num_plans * dims]      SoA frontier cost matrix, plan-major
//   u32 roots[num_plans]             node-table index of each plan's root
//   node table, num_nodes records of:
//     i32 op_config, i32 table
//     u32 left, u32 right            node-table indices; kNoChild = none
//     u64 tables_mask
//     f64 cardinality, f64 row_width
//     f64 cost[dims]
//
// Round-trip is bit-exact: the decoded set's cost matrix and per-node
// fields reproduce the original's bit patterns, so SelectPlan over a
// restored frontier picks the same plan index for any preference (its
// scan is deterministic over bit-identical costs) — the property the
// warm-restore path relies on to rebuild cached OptimizerResults.

#ifndef MOQO_PERSIST_PLAN_SET_CODEC_H_
#define MOQO_PERSIST_PLAN_SET_CODEC_H_

#include <cstdint>
#include <memory>
#include <string>

#include "core/plan_set.h"

namespace moqo {
namespace persist {

class PlanSetCodec {
 public:
  /// Appends the encoded block for `set` to `out`. Any sealed set encodes,
  /// including the empty singleton (num_plans = 0).
  static void Append(const PlanSet& set, std::string* out);

  /// Decodes one block from the front of [data, data+size). On success
  /// returns the materialized set and writes the block's byte length to
  /// `consumed` (trailing bytes are the caller's — payloads may carry a
  /// preference block first). Malformed input (truncation, out-of-range
  /// indices, impossible sizes) returns nullptr; never throws, never reads
  /// out of bounds.
  static std::shared_ptr<const PlanSet> Decode(const void* data, size_t size,
                                               size_t* consumed);
};

}  // namespace persist
}  // namespace moqo

#endif  // MOQO_PERSIST_PLAN_SET_CODEC_H_
