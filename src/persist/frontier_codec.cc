// Copyright (c) 2026 moqo authors. MIT license.

#include "persist/frontier_codec.h"

#include "core/optimizer.h"
#include "cost/objective.h"
#include "persist/format.h"
#include "persist/plan_set_codec.h"

namespace moqo {
namespace persist {

bool EncodeFrontierPayload(const CachedFrontier& entry, std::string* out) {
  if (entry.result == nullptr || entry.result->plan_set == nullptr) {
    return false;
  }
  PutU32(out, static_cast<uint32_t>(entry.weights.size()));
  PutU32(out, static_cast<uint32_t>(entry.bounds.size()));
  for (int i = 0; i < entry.weights.size(); ++i) {
    PutDouble(out, entry.weights[i]);
  }
  for (int i = 0; i < entry.bounds.size(); ++i) {
    PutDouble(out, entry.bounds[i]);
  }
  PlanSetCodec::Append(*entry.result->plan_set, out);
  return true;
}

std::shared_ptr<const CachedFrontier> DecodeFrontierPayload(
    const void* data, size_t size, double achieved_alpha) {
  ByteReader reader(data, size);
  uint32_t weights_size, bounds_size;
  if (!reader.GetU32(&weights_size) || !reader.GetU32(&bounds_size)) {
    return nullptr;
  }
  if (weights_size > static_cast<uint32_t>(kNumObjectives) ||
      bounds_size > static_cast<uint32_t>(kNumObjectives)) {
    return nullptr;
  }
  WeightVector weights(static_cast<int>(weights_size));
  for (uint32_t i = 0; i < weights_size; ++i) {
    double v;
    if (!reader.GetDouble(&v)) return nullptr;
    weights[static_cast<int>(i)] = v;
  }
  BoundVector bounds(static_cast<int>(bounds_size));
  for (uint32_t i = 0; i < bounds_size; ++i) {
    double v;
    if (!reader.GetDouble(&v)) return nullptr;
    bounds[static_cast<int>(i)] = v;
  }
  std::shared_ptr<const PlanSet> plan_set = PlanSetCodec::Decode(
      reader.cursor(), reader.remaining(), nullptr);
  if (plan_set == nullptr) return nullptr;

  // Rebuild the stored selection the way the service builds frontier-hit
  // results (ResultOverPlanSet): deterministic SelectPlan over the
  // restored, bit-identical frontier.
  auto result = std::make_shared<OptimizerResult>();
  result->plan_set = plan_set;
  const PlanSelection selection = SelectPlan(*plan_set, weights, bounds);
  if (selection.plan != nullptr) {
    result->plan = selection.plan;
    result->cost = selection.cost;
    result->weighted_cost = selection.weighted_cost;
    result->respects_bounds =
        bounds.size() == 0 || bounds.Respects(selection.cost);
  }
  auto entry = std::make_shared<CachedFrontier>();
  entry->result = std::move(result);
  entry->weights = weights;
  entry->bounds = bounds;
  entry->achieved_alpha = achieved_alpha;
  return entry;
}

}  // namespace persist
}  // namespace moqo
