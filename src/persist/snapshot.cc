// Copyright (c) 2026 moqo authors. MIT license.

#include "persist/snapshot.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>

#include "rt/failpoint.h"

namespace moqo {
namespace persist {

namespace {

constexpr size_t kFileHeaderBytes = 48;
constexpr size_t kRecordHeaderBytes = 32;

void AppendFileHeader(std::string* out, uint64_t catalog_epoch,
                      uint64_t cost_model_version, uint32_t record_count) {
  PutU64(out, kSnapshotMagic);
  PutU32(out, kFormatVersion);
  PutU32(out, record_count);
  PutU64(out, catalog_epoch);
  PutU64(out, cost_model_version);
  PutU64(out, 0);  // reserved
  PutU64(out, Fnv1a(out->data(), out->size()));
}

}  // namespace

void SnapshotWriter::AddRecord(RecordKind kind, std::string_view key,
                               uint64_t key_hash, double achieved_alpha,
                               std::string_view payload) {
  std::string header;
  header.reserve(kRecordHeaderBytes);
  PutU32(&header, static_cast<uint32_t>(kind));
  PutU32(&header, static_cast<uint32_t>(key.size()));
  PutU64(&header, key_hash);
  PutU64(&header, DoubleBits(achieved_alpha));
  PutU32(&header, static_cast<uint32_t>(payload.size()));
  PutU32(&header, 0);  // reserved
  uint64_t checksum = Fnv1a(header.data(), header.size());
  checksum = Fnv1a(key.data(), key.size(), checksum);
  checksum = Fnv1a(payload.data(), payload.size(), checksum);
  body_ += header;
  PutU64(&body_, checksum);
  body_.append(key);
  body_.append(payload);
  ++record_count_;
}

size_t SnapshotWriter::encoded_bytes() const {
  return kFileHeaderBytes + body_.size();
}

bool SnapshotWriter::WriteFile(const std::string& path) {
  MOQO_FAILPOINT_RETURN("persist.write", false);
  std::string file;
  file.reserve(kFileHeaderBytes + body_.size());
  AppendFileHeader(&file, catalog_epoch_, cost_model_version_, record_count_);
  file += body_;

  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  size_t written = 0;
  while (written < file.size()) {
    const ssize_t n = ::write(fd, file.data() + written, file.size() - written);
    if (n <= 0) {
      ::close(fd);
      ::unlink(tmp.c_str());
      return false;
    }
    written += static_cast<size_t>(n);
  }
  // fsync before rename: the rename must never publish a file whose data
  // is still only in the page cache when the machine dies.
  if (::fsync(fd) != 0 || ::close(fd) != 0 ||
      ::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  return true;
}

SnapshotReadResult ReadSnapshot(
    const std::string& path,
    const std::function<bool(const SnapshotHeader&)>& header_cb,
    const std::function<void(const SnapshotRecordView&)>& record_cb) {
  SnapshotReadResult result;
  if (MOQO_FAILPOINT_HIT("persist.read")) return result;
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return result;
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size < 0 ||
      static_cast<size_t>(st.st_size) < kFileHeaderBytes) {
    ::close(fd);
    return result;
  }
  const size_t size = static_cast<size_t>(st.st_size);

  // Preferred path: parse straight out of the mapping (the PlanSet codec
  // is offset-based precisely so this needs no copies or fixups). The
  // `persist.mmap` failpoint — and any real mmap failure — falls back to
  // read(2) into heap memory.
  const void* data = nullptr;
  void* mapping = MAP_FAILED;
  std::string fallback;
  if (!MOQO_FAILPOINT_HIT("persist.mmap")) {
    mapping = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  }
  if (mapping != MAP_FAILED) {
    data = mapping;
    result.used_mmap = true;
  } else {
    fallback.resize(size);
    size_t done = 0;
    while (done < size) {
      const ssize_t n = ::read(fd, fallback.data() + done, size - done);
      if (n <= 0) break;
      done += static_cast<size_t>(n);
    }
    if (done != size) {
      ::close(fd);
      return result;
    }
    data = fallback.data();
  }
  ::close(fd);

  do {
    ByteReader reader(data, size);
    SnapshotHeader header;
    uint64_t reserved = 0, stored_checksum = 0;
    reader.GetU64(&header.magic);
    reader.GetU32(&header.format_version);
    reader.GetU32(&header.record_count);
    reader.GetU64(&header.catalog_epoch);
    reader.GetU64(&header.cost_model_version);
    reader.GetU64(&reserved);
    reader.GetU64(&stored_checksum);
    (void)reserved;
    if (header.magic != kSnapshotMagic ||
        Fnv1a(data, kFileHeaderBytes - 8) != stored_checksum) {
      break;
    }
    result.loaded = true;
    result.header = header;
    // A different format version means a different record layout: the
    // header is trustworthy (magic + checksum), the records are not.
    if (header.format_version != kFormatVersion) break;
    if (header_cb && !header_cb(header)) break;
    if (!record_cb) break;

    for (uint32_t i = 0; i < header.record_count; ++i) {
      if (reader.remaining() < kRecordHeaderBytes + 8) {
        result.truncated += header.record_count - i;
        break;
      }
      const unsigned char* record_start = reader.cursor();
      uint32_t kind_raw = 0, key_len = 0, payload_len = 0, rec_reserved = 0;
      uint64_t key_hash = 0, alpha_bits = 0, record_checksum = 0;
      reader.GetU32(&kind_raw);
      reader.GetU32(&key_len);
      reader.GetU64(&key_hash);
      reader.GetU64(&alpha_bits);
      reader.GetU32(&payload_len);
      reader.GetU32(&rec_reserved);
      reader.GetU64(&record_checksum);
      (void)rec_reserved;
      if (reader.remaining() < static_cast<uint64_t>(key_len) + payload_len) {
        result.truncated += header.record_count - i;
        break;
      }
      // lint:allow raw-encode — decode-side view of checksummed bytes.
      const char* key_ptr = reinterpret_cast<const char*>(reader.cursor());
      reader.Skip(key_len);
      // lint:allow raw-encode — decode-side view of checksummed bytes.
      const char* payload_ptr = reinterpret_cast<const char*>(reader.cursor());
      reader.Skip(payload_len);
      uint64_t checksum = Fnv1a(record_start, kRecordHeaderBytes);
      checksum = Fnv1a(key_ptr, key_len, checksum);
      checksum = Fnv1a(payload_ptr, payload_len, checksum);
      if (checksum != record_checksum) {
        // The lengths that position the next record came from this corrupt
        // header; trusting them would misparse the whole tail. Drop it.
        result.skipped_checksum += 1;
        result.truncated += header.record_count - i - 1;
        break;
      }
      SnapshotRecordView view;
      view.kind = static_cast<RecordKind>(kind_raw);
      view.key_hash = key_hash;
      view.achieved_alpha = DoubleFromBits(alpha_bits);
      view.key = std::string_view(key_ptr, key_len);
      view.payload = std::string_view(payload_ptr, payload_len);
      record_cb(view);
      result.records_ok += 1;
    }
  } while (false);

  if (mapping != MAP_FAILED) ::munmap(mapping, size);
  return result;
}

}  // namespace persist
}  // namespace moqo
