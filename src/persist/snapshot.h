// Copyright (c) 2026 moqo authors. MIT license.
//
// Snapshot file: the cross-restart persistence format for the service's
// warm state (PlanCache + SubplanMemo entries).
//
// File layout (all little-endian; format.h has the primitives):
//
//   file header, 48 bytes:
//     u64 magic                "MOQOSNP1"
//     u32 format_version       kFormatVersion
//     u32 record_count
//     u64 catalog_epoch        writer's catalog epoch
//     u64 cost_model_version   writer's kCostModelVersion
//     u64 reserved             0
//     u64 header_checksum      FNV-1a over the 40 bytes above
//   records, record_count of:
//     record header, 32 bytes:
//       u32 kind               RecordKind
//       u32 key_len
//       u64 key_hash           signature hash (FNV-1a of the key)
//       u64 alpha_bits         achieved alpha (f64 bits); 0.0 for memo
//       u32 payload_len
//       u32 reserved           0
//     u64 record_checksum      FNV-1a over record header + key + payload
//     key bytes                canonical signature string
//     payload bytes            kind-specific (see RecordKind)
//
// Validation matrix (every outcome is a clean skip, never a crash):
//   bad magic / header checksum / short header  -> whole file ignored
//   format_version mismatch                     -> records not parsed
//   catalog_epoch / cost_model_version mismatch -> caller skips via the
//                                                  header callback
//   record checksum mismatch or torn tail       -> that record and the
//                                                  rest of the file are
//                                                  dropped (a torn write
//                                                  corrupts a suffix)
//
// Writes go to `<path>.tmp` then rename(2), so a crash mid-snapshot
// leaves the previous snapshot intact and a torn tmp file is never seen
// under the live name.

#ifndef MOQO_PERSIST_SNAPSHOT_H_
#define MOQO_PERSIST_SNAPSHOT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "persist/format.h"

namespace moqo {
namespace persist {

struct SnapshotHeader {
  uint64_t magic = 0;
  uint32_t format_version = 0;
  uint32_t record_count = 0;
  uint64_t catalog_epoch = 0;
  uint64_t cost_model_version = 0;
};

/// One decoded record, viewing memory owned by the reader. Valid only for
/// the duration of the record callback.
struct SnapshotRecordView {
  RecordKind kind = RecordKind::kPlanCacheEntry;
  uint64_t key_hash = 0;
  double achieved_alpha = 0;
  std::string_view key;
  std::string_view payload;
};

/// Accumulates records in memory, then writes the whole file atomically.
/// Single-threaded by design: the service serializes under its own
/// snapshot mutex.
class SnapshotWriter {
 public:
  SnapshotWriter(uint64_t catalog_epoch, uint64_t cost_model_version)
      : catalog_epoch_(catalog_epoch),
        cost_model_version_(cost_model_version) {}

  void AddRecord(RecordKind kind, std::string_view key, uint64_t key_hash,
                 double achieved_alpha, std::string_view payload);

  /// Writes header + records to `<path>.tmp`, fsyncs, renames over `path`.
  /// False on any I/O failure (tmp file removed) or when the
  /// `persist.write` failpoint fires.
  bool WriteFile(const std::string& path);

  uint32_t record_count() const { return record_count_; }
  /// Total encoded bytes (header + records) as written by WriteFile.
  size_t encoded_bytes() const;

 private:
  uint64_t catalog_epoch_;
  uint64_t cost_model_version_;
  uint32_t record_count_ = 0;
  std::string body_;
};

struct SnapshotReadResult {
  bool loaded = false;     ///< File opened and the header validated.
  bool used_mmap = false;  ///< Records parsed from an mmap'ed region.
  SnapshotHeader header;
  uint64_t records_ok = 0;
  uint64_t skipped_checksum = 0;  ///< Records failing their checksum.
  uint64_t truncated = 0;         ///< Records lost to a torn/short tail.
};

/// Reads `path`, validating as per the matrix above. `header_cb` (optional)
/// sees the validated header first and may return false to stop before any
/// record is parsed (epoch/version gating); `record_cb` is then called for
/// every record whose checksum verifies. Records are never parsed when
/// header.format_version != kFormatVersion. The `persist.read` failpoint
/// fails the open; `persist.mmap` forces the read(2) fallback path.
SnapshotReadResult ReadSnapshot(
    const std::string& path,
    const std::function<bool(const SnapshotHeader&)>& header_cb,
    const std::function<void(const SnapshotRecordView&)>& record_cb);

}  // namespace persist
}  // namespace moqo

#endif  // MOQO_PERSIST_SNAPSHOT_H_
