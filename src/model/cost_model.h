// Copyright (c) 2026 moqo authors. MIT license.
//
// The nine-objective cost model (Section 4).
//
// Structure: every objective's plan cost is computed recursively from the
// costs of the two sub-plans plus an operator-local term, using only the
// PONO-preserving building blocks of Section 6.1:
//
//   * sum, max, min of child cost components,
//   * multiplication by values that are CONSTANT GIVEN THE OPERANDS'
//     CARDINALITIES (cardinalities are plan properties, not costs, so
//     scaling child costs by e.g. the number of inner rescans of a
//     block-nested-loop join is "multiplication by a constant" in the sense
//     of the paper's structural-induction proof),
//   * the tuple-loss composition 1 - (1-a)(1-b).
//
// tests/model/pono_test.cc verifies the principle of near-optimality
// (Definition 7) for every objective x operator combination.
//
// The absolute constants (below) are synthetic but Postgres-flavoured;
// DESIGN.md's substitution table explains why only the formula structure,
// not the constants, matters for reproducing the paper.

#ifndef MOQO_MODEL_COST_MODEL_H_
#define MOQO_MODEL_COST_MODEL_H_

#include "cost/cost_vector.h"
#include "cost/objective.h"
#include "model/cardinality.h"
#include "plan/operators.h"
#include "plan/plan_node.h"
#include "query/query.h"

namespace moqo {

/// Version stamp of the cost-model formulas + constants. Bumped whenever a
/// change would make previously computed plan costs stale; persisted
/// snapshots (src/persist/) embed it and refuse to restore across a
/// mismatch, since cached frontiers are only valid under the model that
/// priced them.
inline constexpr uint64_t kCostModelVersion = 1;

/// Cost-model constants, Postgres-flavoured units. Exposed so ablation
/// benches can perturb them.
struct CostModelParams {
  double seq_page_cost = 1.0;       ///< Sequential page read (time units).
  double random_page_cost = 4.0;    ///< Random page read.
  double cpu_tuple_cost = 0.01;     ///< Per-tuple CPU work.
  double cpu_operator_cost = 0.0025;
  double index_probe_cost = 0.3;    ///< B-tree descent per probe.
  double parallel_setup_cost = 10.0;  ///< Per-core coordination overhead.
  double parallel_overhead = 0.05;  ///< Extra CPU fraction per extra core.
  double work_mem_bytes = 4.0 * 1024 * 1024;  ///< Spill threshold.
  double page_bytes = 8192.0;
  /// Energy: Joule per CPU time unit and per IO time unit. IO is weighted
  /// differently from CPU so that energy is correlated with but not
  /// proportional to time (Section 4: "Energy consumption is not always
  /// correlated with time").
  double energy_per_cpu = 0.08;
  double energy_per_io = 0.25;
  /// Extra energy fraction per additional core (coordination makes
  /// parallel plans faster but less energy-efficient).
  double energy_parallel_penalty = 0.12;
};

/// Derived statistics of one operand (plan output) that the operator-local
/// cost terms consume. These are plan *properties*, not costs.
struct OperandStats {
  double rows = 0;     ///< Estimated output cardinality.
  double width = 0;    ///< Average row width, bytes.

  double bytes() const { return rows * width; }
  double pages(double page_bytes) const {
    return std::max(1.0, bytes() / page_bytes);
  }
};

/// The cost model facade used by all optimizers. One instance per
/// (query, objective selection) pair; stateless and cheap to copy.
class CostModel {
 public:
  CostModel(const Query* query, const OperatorRegistry* registry,
            ObjectiveSet objectives,
            CostModelParams params = CostModelParams())
      : query_(query),
        registry_(registry),
        objectives_(std::move(objectives)),
        params_(params),
        estimator_(query) {
    for (int i = 0; i < kNumObjectives; ++i) {
      dimension_[i] = objectives_.IndexOf(static_cast<Objective>(i));
    }
  }

  const ObjectiveSet& objectives() const { return objectives_; }
  const CardinalityEstimator& estimator() const { return estimator_; }
  const CostModelParams& params() const { return params_; }

  /// True iff scan config `config_id` may be used on `local_table`
  /// (IndexScan requires an index on some filter or join column).
  bool ScanApplicable(int config_id, int local_table) const;

  /// True iff join config `config_id` may combine `left` and `right`
  /// (IndexNLJoin requires the inner/right operand to be a base-table scan
  /// with an index on the join column of an applicable join predicate).
  bool JoinApplicable(int config_id, const PlanNode& left,
                      const PlanNode& right) const;

  /// Builds a scan node value for `local_table` with scan config
  /// `config_id` (cost, cardinality and width filled in). The DP driver
  /// cost-evaluates candidates on the stack and copies survivors into its
  /// arena, so pruned candidates never allocate.
  PlanNode ScanNode(int config_id, int local_table) const;

  /// Builds the join of `left` and `right` with join config `config_id`.
  /// The child pointers must outlive the returned value's use.
  PlanNode JoinNode(int config_id, const PlanNode* left,
                    const PlanNode* right) const;

  /// Arena-allocating conveniences for examples and tests.
  PlanNode* MakeScan(int config_id, int local_table, Arena* arena) const {
    return arena->New<PlanNode>(ScanNode(config_id, local_table));
  }
  PlanNode* MakeJoin(int config_id, const PlanNode* left,
                     const PlanNode* right, Arena* arena) const {
    return arena->New<PlanNode>(JoinNode(config_id, left, right));
  }

  /// Core recursive step, exposed for property tests: combines child cost
  /// vectors under fixed operand statistics. MakeJoin delegates here.
  CostVector CombineJoinCost(const OperatorConfig& op,
                             const OperandStats& left_stats,
                             const CostVector& left_cost,
                             const OperandStats& right_stats,
                             const CostVector& right_cost,
                             double output_rows) const;

  /// Scan cost vector for the given table/config (also used by tests).
  CostVector ScanCost(const OperatorConfig& op, int local_table,
                      double output_rows) const;

  /// Precomputed, plan-independent facts about one split (q1, q2): the
  /// product of applicable join-predicate selectivities and whether an
  /// index-nested-loop join can probe the inner side. Computed once per
  /// split by the DP driver instead of once per candidate plan.
  struct SplitInfo {
    double selectivity = 1.0;      ///< Product over connecting predicates.
    bool has_predicate = false;    ///< False = Cartesian product split.
    bool index_nl_applicable = false;  ///< Inner singleton with usable index.
  };

  /// Analyzes the split (left_set, right_set); right is the inner side.
  SplitInfo AnalyzeSplit(TableSet left_set, TableSet right_set) const;

  /// Fast-path join construction using a precomputed SplitInfo. Both
  /// overloads produce identical nodes; JoinNode recomputes the SplitInfo.
  PlanNode JoinNode(int config_id, const PlanNode* left,
                    const PlanNode* right, const SplitInfo& split) const;

  /// Fast applicability check against a precomputed SplitInfo.
  bool JoinApplicableFast(const OperatorConfig& op,
                          const SplitInfo& split) const {
    return op.type != OperatorType::kIndexNLJoin || split.index_nl_applicable;
  }

 private:
  /// Returns the value of objective `objective` inside `cost`, or 0 if the
  /// objective is not active. Helper for cross-dimension formulas.
  double Get(const CostVector& cost, Objective objective) const {
    const int index = dimension_[static_cast<int>(objective)];
    return index >= 0 ? cost[index] : 0.0;
  }
  /// Sets dimension for `objective` if active.
  void Set(CostVector* cost, Objective objective, double value) const {
    const int index = dimension_[static_cast<int>(objective)];
    if (index >= 0) (*cost)[index] = value;
  }

  const Query* query_;
  const OperatorRegistry* registry_;
  ObjectiveSet objectives_;
  CostModelParams params_;
  CardinalityEstimator estimator_;
  /// dimension_[o] = active index of objective o, or -1.
  int dimension_[kNumObjectives];
};

}  // namespace moqo

#endif  // MOQO_MODEL_COST_MODEL_H_
