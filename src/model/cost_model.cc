#include "model/cost_model.h"

#include <algorithm>
#include <cmath>

namespace moqo {

namespace {

double Log2Ceil(double x) { return std::log2(std::max(x, 2.0)); }

}  // namespace

bool CostModel::ScanApplicable(int config_id, int local_table) const {
  const OperatorConfig& op = registry_->config(config_id);
  if (!op.IsScan()) return false;
  // Algorithm 1's pruning only compares plans "generating the same result".
  // A sampled scan generates a different result than a full scan; that
  // difference is visible to the pruning metric only through the tuple-loss
  // objective. When tuple loss is not an active objective, sampling would
  // silently break the principle of optimality (a cost-dominating sub-plan
  // could carry a larger cardinality), so sampled variants are only
  // applicable when tuple loss is optimized.
  if (op.sampling_rate < 1.0 &&
      !objectives_.Contains(Objective::kTupleLoss)) {
    return false;
  }
  if (op.type == OperatorType::kSeqScan) return true;
  // IndexScan: require an index on a column this query touches (filter or
  // join column of the table occurrence).
  const Table& table = query_->table(local_table);
  for (const FilterPredicate* filter : query_->FiltersForTable(local_table)) {
    if (table.HasIndexOn(filter->column)) return true;
  }
  for (const JoinPredicate& join : query_->joins()) {
    if (join.left_table == local_table && table.HasIndexOn(join.left_column)) {
      return true;
    }
    if (join.right_table == local_table &&
        table.HasIndexOn(join.right_column)) {
      return true;
    }
  }
  return false;
}

bool CostModel::JoinApplicable(int config_id, const PlanNode& left,
                               const PlanNode& right) const {
  const OperatorConfig& op = registry_->config(config_id);
  if (!op.IsJoin()) return false;
  if (op.type != OperatorType::kIndexNLJoin) return true;
  // Index-nested-loop: the inner (right) operand must be a base-table scan
  // with an index on the join column of a predicate connecting the sides.
  if (!right.IsScan()) return false;
  const Table& inner = query_->table(right.table);
  for (const JoinPredicate* join :
       query_->JoinsForSplit(left.tables, right.tables)) {
    const bool inner_is_right = right.tables.Contains(join->right_table);
    const std::string& column =
        inner_is_right ? join->right_column : join->left_column;
    if (inner.HasIndexOn(column)) return true;
  }
  return false;
}

CostVector CostModel::ScanCost(const OperatorConfig& op, int local_table,
                               double output_rows) const {
  const Table& table = query_->table(local_table);
  const CostModelParams& p = params_;
  const double s = op.sampling_rate;
  const double pages = table.page_count();
  const double rows = table.row_count();
  const int num_filters =
      static_cast<int>(query_->FiltersForTable(local_table).size());

  double io_time, io_pages, cpu_ops, cpu_time, startup, buffer;
  if (op.type == OperatorType::kSeqScan) {
    io_pages = pages * s;
    io_time = p.seq_page_cost * io_pages;
    cpu_ops = rows * s;
    cpu_time = p.cpu_tuple_cost * cpu_ops +
               p.cpu_operator_cost * cpu_ops * num_filters;
    startup = 0.0;
    buffer = p.page_bytes;  // One page of read buffer.
  } else {
    // IndexScan: fetch only rows surviving the filters; random I/O.
    const double fetched_rows = std::max(1.0, output_rows);
    io_pages = std::min(pages, fetched_rows);
    io_time = p.random_page_cost * io_pages + p.index_probe_cost;
    cpu_ops = fetched_rows;
    cpu_time = (p.cpu_tuple_cost + p.cpu_operator_cost) * fetched_rows;
    startup = p.index_probe_cost;
    buffer = 2 * p.page_bytes;  // Index page + heap page.
  }

  CostVector cost(objectives_.size());
  Set(&cost, Objective::kTotalTime, io_time + cpu_time);
  Set(&cost, Objective::kStartupTime, startup);
  Set(&cost, Objective::kIOLoad, io_pages);
  Set(&cost, Objective::kCPULoad, cpu_ops);
  Set(&cost, Objective::kCores, 1.0);
  Set(&cost, Objective::kDiskFootprint, 0.0);
  Set(&cost, Objective::kBufferFootprint, buffer);
  Set(&cost, Objective::kEnergy,
      p.energy_per_cpu * cpu_time + p.energy_per_io * io_time);
  Set(&cost, Objective::kTupleLoss, 1.0 - s);
  return cost;
}

CostVector CostModel::CombineJoinCost(const OperatorConfig& op,
                                      const OperandStats& left_stats,
                                      const CostVector& left_cost,
                                      const OperandStats& right_stats,
                                      const CostVector& right_cost,
                                      double output_rows) const {
  const CostModelParams& p = params_;
  const double tL = std::max(left_stats.rows, 1.0);
  const double tR = std::max(right_stats.rows, 1.0);
  const double bytesL = std::max(left_stats.bytes(), 1.0);
  const double bytesR = std::max(right_stats.bytes(), 1.0);
  const double pagesL = left_stats.pages(p.page_bytes);
  const double pagesR = right_stats.pages(p.page_bytes);
  const double d = static_cast<double>(op.dop);

  // ---- Operator-local terms. All depend only on operand cardinalities /
  // widths (plan properties), never on child *costs*; child costs are
  // folded in below exclusively via sum, max and scale-by-constant.
  double cpu_time = 0;      // Operator CPU work, time units, single core.
  double io_time = 0;       // Operator I/O work (spills), time units.
  double io_pages = 0;      // Pages moved by the operator itself.
  double cpu_ops = 0;       // Tuple operations (CPU-load objective).
  double buffer = 0;        // Operator-resident memory, bytes.
  double disk = 0;          // Operator temp-disk footprint, bytes.
  double inner_rescans = 1; // Scale on the inner child's additive costs.
  bool parallel_children = true;   // Operands generated concurrently?
  double startup_time = 0;  // Filled per operator below.

  const double startup_left_total = Get(left_cost, Objective::kTotalTime);
  const double startup_right_total = Get(right_cost, Objective::kTotalTime);
  const double left_startup = Get(left_cost, Objective::kStartupTime);
  const double right_startup = Get(right_cost, Objective::kStartupTime);
  const double setup = op.dop > 1 ? p.parallel_setup_cost * d : 0.0;

  switch (op.type) {
    case OperatorType::kHashJoin: {
      const double build_cpu_time = 2.0 * p.cpu_tuple_cost * tL;
      const double probe_cpu_time =
          p.cpu_tuple_cost * tR + p.cpu_operator_cost * output_rows;
      cpu_time = build_cpu_time + probe_cpu_time;
      cpu_ops = 2.0 * tL + tR + output_rows;
      const bool spills = bytesL > p.work_mem_bytes;
      if (spills) {
        io_pages = 2.0 * (pagesL + pagesR);  // Partition write + read.
        io_time = p.seq_page_cost * io_pages;
        disk = bytesL + bytesR;
      }
      // Hash table (capped by work_mem when spilling) with overhead.
      buffer = 1.5 * std::min(bytesL, p.work_mem_bytes) + 2 * p.page_bytes;
      // First output tuple after the whole build side is consumed.
      startup_time = startup_left_total + right_startup +
                     (build_cpu_time + io_time) / d + setup;
      break;
    }
    case OperatorType::kSortMergeJoin: {
      const double sort_cpu_time =
          2.0 * p.cpu_operator_cost * (tL * Log2Ceil(tL) + tR * Log2Ceil(tR));
      const double merge_cpu_time =
          p.cpu_tuple_cost * (tL + tR) + p.cpu_operator_cost * output_rows;
      cpu_time = sort_cpu_time + merge_cpu_time;
      cpu_ops = tL * Log2Ceil(tL) + tR * Log2Ceil(tR) + tL + tR + output_rows;
      const bool spillL = bytesL > p.work_mem_bytes;
      const bool spillR = bytesR > p.work_mem_bytes;
      if (spillL) {
        io_pages += 4.0 * pagesL;  // External merge sort: 2 passes r/w.
        disk += bytesL;
      }
      if (spillR) {
        io_pages += 4.0 * pagesR;
        disk += bytesR;
      }
      io_time = p.seq_page_cost * io_pages;
      buffer = std::min(std::max(bytesL, bytesR), p.work_mem_bytes) +
               2 * p.page_bytes;
      // Both sides must be fully sorted before the first merge output.
      startup_time =
          std::max(startup_left_total, startup_right_total) +
          (sort_cpu_time + io_time) / d + setup;
      break;
    }
    case OperatorType::kBlockNLJoin: {
      inner_rescans = std::max(1.0, std::ceil(bytesL / p.work_mem_bytes));
      parallel_children = false;  // Outer drives inner rescans.
      cpu_time = p.cpu_operator_cost * tL * tR / 50.0 +
                 p.cpu_tuple_cost * output_rows;
      cpu_ops = tL * tR / 50.0 + output_rows;
      buffer = std::min(bytesL, p.work_mem_bytes) + 2 * p.page_bytes;
      // Pipelined: first result as soon as both inputs start producing.
      startup_time = left_startup + right_startup +
                     p.cpu_operator_cost * tR / d + setup;
      break;
    }
    case OperatorType::kIndexNLJoin: {
      // Inner is probed via its index; its full-scan cost is only partially
      // paid (amortized index maintenance / cache effects).
      inner_rescans = 0.1;
      parallel_children = false;
      const double matches_per_probe = std::max(output_rows / tL, 1e-6);
      const double probe_pages = std::max(1.0, matches_per_probe);
      io_pages = tL * probe_pages;
      // Every probe pays a B-tree descent plus random heap-page fetches —
      // cheap for selective outers, uncompetitive for full-table outers
      // (where hash/sort-merge win on total time, as in Figure 3(a)).
      io_time = tL * (p.index_probe_cost + p.random_page_cost * probe_pages);
      cpu_time = 3.0 * p.cpu_operator_cost * tL +
                 p.cpu_tuple_cost * output_rows;
      cpu_ops = 3.0 * tL + output_rows;
      buffer = 4 * p.page_bytes;  // Fully pipelined, no hash/sort state.
      startup_time = left_startup + right_startup + p.index_probe_cost + setup;
      break;
    }
    default:
      // Scans never reach CombineJoinCost.
      break;
  }

  const double own_time = (cpu_time + io_time) / d + setup;

  // ---- Fold in child costs per combination kind.
  CostVector cost(objectives_.size());

  // Total time: parallel operand generation takes the max; nested-loop
  // styles consume the outer first, then rescan the inner.
  {
    const double children =
        parallel_children
            ? std::max(startup_left_total, startup_right_total)
            : startup_left_total + inner_rescans * startup_right_total;
    Set(&cost, Objective::kTotalTime, children + own_time);
  }

  Set(&cost, Objective::kStartupTime, startup_time);

  Set(&cost, Objective::kIOLoad,
      Get(left_cost, Objective::kIOLoad) +
          inner_rescans * Get(right_cost, Objective::kIOLoad) + io_pages);

  Set(&cost, Objective::kCPULoad,
      Get(left_cost, Objective::kCPULoad) +
          inner_rescans * Get(right_cost, Objective::kCPULoad) +
          cpu_ops * (1.0 + p.parallel_overhead * (d - 1.0)));

  {
    const double left_cores = Get(left_cost, Objective::kCores);
    const double right_cores = Get(right_cost, Objective::kCores);
    const double children = parallel_children
                                ? left_cores + right_cores
                                : std::max(left_cores, right_cores);
    Set(&cost, Objective::kCores, std::max(children, d));
  }

  Set(&cost, Objective::kDiskFootprint,
      std::max({Get(left_cost, Objective::kDiskFootprint),
                Get(right_cost, Objective::kDiskFootprint), disk}));

  Set(&cost, Objective::kBufferFootprint,
      std::max(Get(left_cost, Objective::kBufferFootprint),
               Get(right_cost, Objective::kBufferFootprint)) +
          buffer);

  {
    const double own_energy =
        (p.energy_per_cpu * cpu_time + p.energy_per_io * io_time) *
        (1.0 + p.energy_parallel_penalty * (d - 1.0));
    Set(&cost, Objective::kEnergy,
        Get(left_cost, Objective::kEnergy) +
            inner_rescans * Get(right_cost, Objective::kEnergy) + own_energy);
  }

  {
    const double a = Get(left_cost, Objective::kTupleLoss);
    const double b = Get(right_cost, Objective::kTupleLoss);
    Set(&cost, Objective::kTupleLoss,
        std::clamp(a + b - a * b, 0.0, 1.0));  // 1-(1-a)(1-b)
  }

  return cost;
}

PlanNode CostModel::ScanNode(int config_id, int local_table) const {
  const OperatorConfig& op = registry_->config(config_id);
  PlanNode node;
  node.op_config = config_id;
  node.table = local_table;
  node.tables = TableSet::Singleton(local_table);
  node.cardinality = estimator_.ScanOutputRows(local_table, op.sampling_rate);
  node.row_width = query_->table(local_table).row_width_bytes();
  node.cost = ScanCost(op, local_table, node.cardinality);
  return node;
}

CostModel::SplitInfo CostModel::AnalyzeSplit(TableSet left_set,
                                             TableSet right_set) const {
  SplitInfo info;
  std::vector<double> selectivities;
  for (const JoinPredicate& join : query_->joins()) {
    if (!join.Connects(left_set, right_set)) continue;
    info.has_predicate = true;
    selectivities.push_back(estimator_.JoinPredicateSelectivity(join));
    // Index-nested-loop: inner must be a single base table with an index on
    // its side of a connecting predicate.
    if (right_set.Cardinality() == 1) {
      const bool inner_is_right = right_set.Contains(join.right_table);
      const int inner_table = inner_is_right ? join.right_table
                                             : join.left_table;
      const std::string& column =
          inner_is_right ? join.right_column : join.left_column;
      if (query_->table(inner_table).HasIndexOn(column)) {
        info.index_nl_applicable = true;
      }
    }
  }
  // Canonical fold: join insertion order must not leak into cost bytes
  // (see OrderedSelectivityProduct).
  info.selectivity =
      OrderedSelectivityProduct(info.selectivity, std::move(selectivities));
  return info;
}

PlanNode CostModel::JoinNode(int config_id, const PlanNode* left,
                             const PlanNode* right,
                             const SplitInfo& split) const {
  const OperatorConfig& op = registry_->config(config_id);
  PlanNode node;
  node.op_config = config_id;
  node.table = -1;
  node.left = left;
  node.right = right;
  node.tables = left->tables.Union(right->tables);
  node.cardinality = std::max(
      left->cardinality * right->cardinality * split.selectivity, 1e-3);
  node.row_width =
      estimator_.JoinOutputWidth(left->row_width, right->row_width);
  const OperandStats left_stats{left->cardinality, left->row_width};
  const OperandStats right_stats{right->cardinality, right->row_width};
  node.cost = CombineJoinCost(op, left_stats, left->cost, right_stats,
                              right->cost, node.cardinality);
  return node;
}

PlanNode CostModel::JoinNode(int config_id, const PlanNode* left,
                             const PlanNode* right) const {
  return JoinNode(config_id, left, right,
                  AnalyzeSplit(left->tables, right->tables));
}

}  // namespace moqo
