#include "model/cardinality.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace moqo {

double OrderedSelectivityProduct(double initial,
                                 std::vector<double> factors) {
  std::sort(factors.begin(), factors.end());
  double product = initial;
  for (double factor : factors) product *= factor;
  return product;
}

double CardinalityEstimator::FilterSelectivity(
    const FilterPredicate& filter) const {
  const Table& table = query_->table(filter.table);
  const ColumnStats* column = table.FindColumn(filter.column);
  if (column == nullptr) return 0.33;  // Postgres-style default guess.
  const Histogram& h = column->histogram;
  double sel;
  switch (filter.op) {
    case FilterOp::kEquals:
      sel = h.Empty() ? 1.0 / std::max(column->ndv, 1.0)
                      : h.SelectivityEquals(filter.value, column->ndv);
      break;
    case FilterOp::kLess:
    case FilterOp::kLessEquals:
      sel = h.SelectivityLessEqual(filter.value);
      break;
    case FilterOp::kGreater:
    case FilterOp::kGreaterEquals:
      sel = 1.0 - h.SelectivityLessEqual(filter.value);
      break;
    case FilterOp::kRange:
      sel = h.SelectivityRange(filter.value, filter.value_hi);
      break;
    default:
      sel = 0.33;
  }
  return std::clamp(sel, 1e-9, 1.0);
}

double CardinalityEstimator::TableFilterSelectivity(int local_table) const {
  std::vector<double> selectivities;
  for (const FilterPredicate* filter : query_->FiltersForTable(local_table)) {
    selectivities.push_back(FilterSelectivity(*filter));
  }
  return OrderedSelectivityProduct(1.0, std::move(selectivities));
}

double CardinalityEstimator::ScanOutputRows(int local_table,
                                            double sampling_rate) const {
  const double rows = query_->table(local_table).row_count();
  return std::max(1.0, rows * TableFilterSelectivity(local_table)) *
         sampling_rate;
}

double CardinalityEstimator::JoinPredicateSelectivity(
    const JoinPredicate& join) const {
  const ColumnStats* left =
      query_->table(join.left_table).FindColumn(join.left_column);
  const ColumnStats* right =
      query_->table(join.right_table).FindColumn(join.right_column);
  const double ndv_left = left != nullptr ? left->ndv : 1000;
  const double ndv_right = right != nullptr ? right->ndv : 1000;
  return 1.0 / std::max({ndv_left, ndv_right, 1.0});
}

double CardinalityEstimator::JoinOutputRows(TableSet left_set,
                                            double left_rows,
                                            TableSet right_set,
                                            double right_rows) const {
  std::vector<double> selectivities;
  for (const JoinPredicate* join :
       query_->JoinsForSplit(left_set, right_set)) {
    selectivities.push_back(JoinPredicateSelectivity(*join));
  }
  return std::max(
      OrderedSelectivityProduct(left_rows * right_rows,
                                std::move(selectivities)),
      1e-3);
}

}  // namespace moqo
