// Copyright (c) 2026 moqo authors. MIT license.
//
// Cardinality estimation: System-R-style selectivity composition under the
// independence assumption, extended by the sampling-aware scaling the
// paper's sampled-scan operator introduces (a scan that reads fraction s of
// a table scales output cardinality by s).

#ifndef MOQO_MODEL_CARDINALITY_H_
#define MOQO_MODEL_CARDINALITY_H_

#include <vector>

#include "query/query.h"
#include "util/table_set.h"

namespace moqo {

/// initial * product(factors), folded in ascending factor order.
/// Floating-point multiplication is not associative, so folding
/// selectivities in predicate *insertion order* would make estimates — and
/// therefore plan cost bytes — depend on the order a query listed its
/// filters/joins in. The canonical cache keys (whole-query signatures,
/// table-set subplan keys) deliberately erase that order, so every
/// selectivity product must be a function of the factor multiset alone;
/// this helper is the one folding rule they all share.
double OrderedSelectivityProduct(double initial, std::vector<double> factors);

/// Estimates base-table and join cardinalities for one query.
class CardinalityEstimator {
 public:
  explicit CardinalityEstimator(const Query* query) : query_(query) {}

  /// Selectivity of one filter predicate, from column statistics.
  double FilterSelectivity(const FilterPredicate& filter) const;

  /// Combined selectivity of all filters on `local_table` (independence).
  double TableFilterSelectivity(int local_table) const;

  /// Output rows of a scan of `local_table` with sampling rate `rate`:
  /// |T| * filter selectivity * rate.
  double ScanOutputRows(int local_table, double sampling_rate) const;

  /// Selectivity of an equi-join predicate: 1 / max(ndv_left, ndv_right).
  double JoinPredicateSelectivity(const JoinPredicate& join) const;

  /// Output rows of joining plans producing `left_set` (with `left_rows`
  /// rows) and `right_set` (`right_rows`): the product scaled by the
  /// selectivity of every join predicate connecting the two sides; a pure
  /// Cartesian product when no predicate applies.
  double JoinOutputRows(TableSet left_set, double left_rows,
                        TableSet right_set, double right_rows) const;

  /// Average output row width of a join (sum of operand widths).
  double JoinOutputWidth(double left_width, double right_width) const {
    return left_width + right_width;
  }

 private:
  const Query* query_;
};

}  // namespace moqo

#endif  // MOQO_MODEL_CARDINALITY_H_
