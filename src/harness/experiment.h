// Copyright (c) 2026 moqo authors. MIT license.
//
// Experiment runner: executes algorithms on generated test cases and
// aggregates the five per-cell metrics of Figures 5, 9 and 10 (timeout
// percentage, mean optimization time, mean memory, mean #Pareto plans /
// #iterations, weighted cost as percentage of the per-case best).

#ifndef MOQO_HARNESS_EXPERIMENT_H_
#define MOQO_HARNESS_EXPERIMENT_H_

#include <string>
#include <vector>

#include "core/algorithm.h"
#include "harness/workload.h"

namespace moqo {

/// Plan-free record of one optimization run (plans die with the optimizer;
/// experiments only need costs and counters).
struct RunOutcome {
  double weighted_cost = 0;
  bool respects_bounds = true;
  bool has_plan = false;
  OptimizerMetrics metrics;
};

/// Runs `kind` on one test case; `catalog` must back the TPC-H queries.
RunOutcome RunCase(AlgorithmKind kind, const Catalog& catalog,
                   const TestCase& test_case,
                   const OptimizerOptions& options);

/// Aggregated metrics over the test cases of one figure cell.
struct CellStats {
  int cases = 0;
  double timeout_pct = 0;
  double mean_time_ms = 0;
  double mean_memory_kb = 0;
  double mean_pareto_plans = 0;
  double mean_iterations = 0;
  /// Mean weighted cost as percentage of the per-case best over all
  /// compared algorithms (>= 100).
  double mean_weighted_cost_pct = 0;
};

/// Aggregates outcomes; `best_weighted` holds the per-case reference cost
/// (minimum over all algorithms on the same test case, preferring
/// bound-respecting plans).
CellStats Aggregate(const std::vector<RunOutcome>& outcomes,
                    const std::vector<double>& best_weighted);

/// Per-case reference costs for a matrix outcomes[algorithm][case]:
/// minimum weighted cost over algorithms, restricted to bound-respecting
/// plans when at least one algorithm produced one.
std::vector<double> BestWeightedPerCase(
    const std::vector<std::vector<RunOutcome>>& outcomes_by_algorithm);

/// Reads integer/double configuration from the environment with defaults
/// (MOQO_CASES, MOQO_TIMEOUT_MS, ... — see DESIGN.md deviation ledger).
int EnvInt(const char* name, int default_value);
double EnvDouble(const char* name, double default_value);

}  // namespace moqo

#endif  // MOQO_HARNESS_EXPERIMENT_H_
