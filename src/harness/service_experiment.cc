// Copyright (c) 2026 moqo authors. MIT license.

#include "harness/service_experiment.h"

#include <future>
#include <memory>
#include <sstream>
#include <utility>

#include "util/deadline.h"

namespace moqo {

std::vector<ServiceRequest> BuildServiceWorkload(
    const Catalog* catalog, WorkloadGenerator* generator,
    const ServiceWorkloadOptions& options) {
  const std::vector<int>& queries = options.query_numbers.empty()
                                        ? TpcHQueryOrder()
                                        : options.query_numbers;
  std::vector<ServiceRequest> requests;
  requests.reserve(queries.size() * options.cases_per_query);
  uint64_t seed = options.seed;
  for (int query_number : queries) {
    for (int c = 0; c < options.cases_per_query; ++c) {
      TestCase test_case =
          options.bounded
              ? generator->BoundedCase(query_number, options.num_bounds,
                                       seed++)
              : generator->WeightedCase(query_number, options.num_objectives,
                                        seed++);
      ServiceRequest request;
      request.spec.query = std::make_shared<Query>(
          MakeTpcHQuery(catalog, query_number));
      request.spec.objectives = std::move(test_case.objectives);
      request.preference.weights = std::move(test_case.weights);
      request.preference.bounds = std::move(test_case.bounds);
      request.preference.deadline_ms = options.deadline_ms;
      requests.push_back(std::move(request));
    }
  }
  return requests;
}

ServiceRunStats DriveService(OptimizationService* service,
                             const std::vector<ServiceRequest>& requests) {
  ServiceRunStats stats;
  stats.total = static_cast<int>(requests.size());
  LatencyHistogram latency;

  StopWatch watch;
  std::vector<std::future<ServiceResponse>> futures;
  futures.reserve(requests.size());
  for (const ServiceRequest& request : requests) {
    futures.push_back(service->Submit(request));
  }
  double sum_service_ms = 0;
  long frontier_plans = 0;
  for (std::future<ServiceResponse>& future : futures) {
    ServiceResponse response = future.get();
    switch (response.status) {
      case ResponseStatus::kCompleted:
        ++stats.completed;
        break;
      case ResponseStatus::kCompletedQuick:
        ++stats.quick;
        break;
      case ResponseStatus::kRejected:
        ++stats.rejected;
        continue;  // Latency of shed requests would deflate the mean.
    }
    if (response.result == nullptr || response.result->plan == nullptr) {
      ++stats.null_plans;
    }
    if (response.cache_hit()) ++stats.cache_hits;
    if (response.cache == CacheOutcome::kExactHit) ++stats.exact_hits;
    if (response.cache == CacheOutcome::kFrontierHit) ++stats.frontier_hits;
    if (response.cache == CacheOutcome::kCoalescedHit) ++stats.coalesced;
    sum_service_ms += response.service_ms;
    latency.Record(response.service_ms);
    if (response.result != nullptr) {
      frontier_plans += response.result->frontier_size();
    }
    if (response.service_ms > stats.max_service_ms) {
      stats.max_service_ms = response.service_ms;
    }
  }
  stats.wall_ms = watch.ElapsedMillis();
  stats.latency = latency.Snapshot();
  const int served = stats.completed + stats.quick;
  stats.mean_service_ms = served == 0 ? 0 : sum_service_ms / served;
  stats.mean_frontier =
      served == 0 ? 0 : static_cast<double>(frontier_plans) / served;
  return stats;
}

std::string ServiceRunStats::ToString() const {
  std::ostringstream out;
  out << "total=" << total << " completed=" << completed << " quick=" << quick
      << " rejected=" << rejected << " null_plans=" << null_plans
      << " cache_hits=" << cache_hits << " (exact=" << exact_hits
      << " frontier=" << frontier_hits << ") coalesced=" << coalesced
      << " wall_ms=" << wall_ms
      << " throughput_rps=" << Throughput()
      << " mean_ms=" << mean_service_ms << " p50_ms=" << PercentileMs(50)
      << " p95_ms=" << PercentileMs(95) << " p99_ms=" << PercentileMs(99)
      << " max_ms=" << max_service_ms
      << " mean_frontier=" << mean_frontier;
  return out.str();
}

}  // namespace moqo
