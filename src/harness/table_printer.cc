#include "harness/table_printer.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace moqo {

std::string TablePrinter::Render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : "";
      out << std::left << std::setw(static_cast<int>(widths[i]) + 2) << cell;
    }
    out << "\n";
  };
  emit_row(headers_);
  std::vector<std::string> separators;
  for (size_t width : widths) separators.push_back(std::string(width, '-'));
  emit_row(separators);
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string FormatDouble(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

std::string FormatSci(double value) {
  std::ostringstream out;
  out << std::scientific << std::setprecision(2) << value;
  return out.str();
}

}  // namespace moqo
