#include "harness/experiment.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <memory>


namespace moqo {

RunOutcome RunCase(AlgorithmKind kind, const Catalog& catalog,
                   const TestCase& test_case,
                   const OptimizerOptions& options) {
  Query query = MakeTpcHQuery(&catalog, test_case.query_number);
  MOQOProblem problem;
  problem.query = &query;
  problem.objectives = test_case.objectives;
  problem.weights = test_case.weights;
  problem.bounds = test_case.bounds;

  std::unique_ptr<OptimizerBase> optimizer = MakeOptimizer(kind, options);
  OptimizerResult result = optimizer->Optimize(problem);

  RunOutcome outcome;
  outcome.weighted_cost = result.weighted_cost;
  outcome.respects_bounds = result.respects_bounds;
  outcome.has_plan = result.plan != nullptr;
  outcome.metrics = result.metrics;
  return outcome;
}

std::vector<double> BestWeightedPerCase(
    const std::vector<std::vector<RunOutcome>>& outcomes_by_algorithm) {
  std::vector<double> best;
  if (outcomes_by_algorithm.empty()) return best;
  const size_t cases = outcomes_by_algorithm.front().size();
  best.assign(cases, std::numeric_limits<double>::infinity());
  // Prefer bound-respecting plans as reference, as the relative-cost
  // definition (Definition 3) judges bound violators as infinitely bad.
  for (size_t c = 0; c < cases; ++c) {
    bool any_respecting = false;
    for (const auto& outcomes : outcomes_by_algorithm) {
      if (outcomes[c].has_plan && outcomes[c].respects_bounds) {
        any_respecting = true;
        best[c] = std::min(best[c], outcomes[c].weighted_cost);
      }
    }
    if (!any_respecting) {
      for (const auto& outcomes : outcomes_by_algorithm) {
        if (outcomes[c].has_plan) {
          best[c] = std::min(best[c], outcomes[c].weighted_cost);
        }
      }
    }
  }
  return best;
}

CellStats Aggregate(const std::vector<RunOutcome>& outcomes,
                    const std::vector<double>& best_weighted) {
  CellStats stats;
  stats.cases = static_cast<int>(outcomes.size());
  if (outcomes.empty()) return stats;
  int timeouts = 0;
  double time_sum = 0, memory_sum = 0, pareto_sum = 0, iter_sum = 0;
  double cost_pct_sum = 0;
  int cost_cases = 0;
  for (size_t i = 0; i < outcomes.size(); ++i) {
    const RunOutcome& o = outcomes[i];
    if (o.metrics.timed_out) ++timeouts;
    time_sum += o.metrics.optimization_ms;
    memory_sum += static_cast<double>(o.metrics.memory_bytes) / 1024.0;
    pareto_sum += o.metrics.last_complete_pareto_count;
    iter_sum += o.metrics.iterations;
    if (i < best_weighted.size() && best_weighted[i] > 0 &&
        std::isfinite(best_weighted[i]) && o.has_plan) {
      cost_pct_sum += 100.0 * o.weighted_cost / best_weighted[i];
      ++cost_cases;
    }
  }
  stats.timeout_pct = 100.0 * timeouts / stats.cases;
  stats.mean_time_ms = time_sum / stats.cases;
  stats.mean_memory_kb = memory_sum / stats.cases;
  stats.mean_pareto_plans = pareto_sum / stats.cases;
  stats.mean_iterations = iter_sum / stats.cases;
  stats.mean_weighted_cost_pct =
      cost_cases > 0 ? cost_pct_sum / cost_cases : 0;
  return stats;
}

int EnvInt(const char* name, int default_value) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoi(value) : default_value;
}

double EnvDouble(const char* name, double default_value) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atof(value) : default_value;
}

}  // namespace moqo
