// Copyright (c) 2026 moqo authors. MIT license.
//
// Fixed-width table rendering for the figure-reproduction benches.

#ifndef MOQO_HARNESS_TABLE_PRINTER_H_
#define MOQO_HARNESS_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace moqo {

/// Collects rows of string cells and renders them with aligned columns.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  /// Renders the table with a header separator, e.g.
  ///   query  tables  time_ms
  ///   -----  ------  -------
  ///   q1     1       0.42
  std::string Render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Compact formatting helpers shared by the benches.
std::string FormatDouble(double value, int precision = 2);
std::string FormatSci(double value);

}  // namespace moqo

#endif  // MOQO_HARNESS_TABLE_PRINTER_H_
