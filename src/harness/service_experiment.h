// Copyright (c) 2026 moqo authors. MIT license.
//
// Service throughput experiment: drives an OptimizationService with
// Section-8 workload instances (WorkloadGenerator test cases over the
// TPC-H join graphs) and aggregates per-request outcomes. Used by
// bench/bench_service_throughput and the service tests.

#ifndef MOQO_HARNESS_SERVICE_EXPERIMENT_H_
#define MOQO_HARNESS_SERVICE_EXPERIMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "harness/workload.h"
#include "obs/histogram.h"
#include "service/optimization_service.h"

namespace moqo {

struct ServiceWorkloadOptions {
  /// TPC-H query numbers to draw from; empty = the Figure 5/9/10 x-axis
  /// order (all 22).
  std::vector<int> query_numbers;
  int cases_per_query = 2;
  int num_objectives = 3;
  uint64_t seed = 1;
  /// Per-request total budget; -1 = none.
  int64_t deadline_ms = -1;
  /// Generate bounded-MOQO cases (bounds on `num_bounds` objectives).
  bool bounded = false;
  int num_bounds = 2;
};

/// Materializes one ServiceRequest per (query, case) pair. Each request
/// owns its Query object, so the returned vector is self-contained.
std::vector<ServiceRequest> BuildServiceWorkload(
    const Catalog* catalog, WorkloadGenerator* generator,
    const ServiceWorkloadOptions& options);

/// Outcome aggregate of one drive.
struct ServiceRunStats {
  int total = 0;
  int completed = 0;       ///< Full-guarantee results (incl. cache hits).
  int quick = 0;           ///< Deadline-degraded quick-mode results.
  int rejected = 0;        ///< Shed by admission control.
  int null_plans = 0;      ///< Non-rejected responses without a plan (bug!).
  int cache_hits = 0;      ///< Exact + frontier hits.
  int exact_hits = 0;      ///< Same preference: cached selection reused.
  int frontier_hits = 0;   ///< New preference: O(|frontier|) re-selection.
  int coalesced = 0;       ///< Served by waiting on an in-flight miss.
  double wall_ms = 0;      ///< Submit-all to last-future-resolved.
  /// Over served (non-rejected) requests only.
  double mean_service_ms = 0;
  double max_service_ms = 0;
  /// Mean frontier size of served responses (plans per PlanSet).
  double mean_frontier = 0;
  /// Service-latency distribution over served requests — the same
  /// log-bucketed histogram the service's own stats use (obs/histogram.h),
  /// so bench-side and service-side percentiles are directly comparable.
  HistogramSnapshot latency;

  double Throughput() const {
    return wall_ms <= 0 ? 0 : 1000.0 * total / wall_ms;
  }

  /// Latency percentile over served requests (p in [0, 100]); 0 when none
  /// were served.
  double PercentileMs(double p) const { return latency.PercentileMs(p); }

  std::string ToString() const;
};

/// Submits every request, waits for all futures, and aggregates.
ServiceRunStats DriveService(OptimizationService* service,
                             const std::vector<ServiceRequest>& requests);

}  // namespace moqo

#endif  // MOQO_HARNESS_SERVICE_EXPERIMENT_H_
