#include "harness/workload.h"

#include <sstream>

#include "core/selinger.h"

namespace moqo {

std::string TestCase::ToString() const {
  std::ostringstream out;
  out << "q" << query_number << " seed=" << seed << " objectives "
      << objectives.ToString() << " " << weights.ToString() << " "
      << bounds.ToString();
  return out.str();
}

TestCase WorkloadGenerator::WeightedCase(int query_number, int num_objectives,
                                         uint64_t seed) {
  Xoshiro256 rng(seed ^ (static_cast<uint64_t>(query_number) << 32));
  TestCase test_case;
  test_case.query_number = query_number;
  test_case.seed = seed;

  // Random objective subset of fixed cardinality.
  std::vector<Objective> chosen;
  for (int index : rng.SampleWithoutReplacement(kNumObjectives,
                                                num_objectives)) {
    chosen.push_back(kAllObjectives[index]);
  }
  test_case.objectives = ObjectiveSet(std::move(chosen));

  // Weights uniform in [0, 1].
  test_case.weights = WeightVector(num_objectives);
  for (int i = 0; i < num_objectives; ++i) {
    test_case.weights[i] = rng.NextDouble();
  }
  test_case.bounds = BoundVector::Unbounded(num_objectives);
  return test_case;
}

TestCase WorkloadGenerator::BoundedCase(int query_number, int num_bounds,
                                        uint64_t seed) {
  // All nine objectives are active for bounded MOQO (Section 8).
  TestCase test_case = WeightedCase(query_number, kNumObjectives, seed);
  Xoshiro256 rng(seed * 0x9e3779b97f4a7c15ULL + query_number);

  // Bound a random subset of the objectives.
  for (int index : rng.SampleWithoutReplacement(kNumObjectives, num_bounds)) {
    const Objective objective = kAllObjectives[index];
    const ObjectiveInfo& info = GetObjectiveInfo(objective);
    const int dim = test_case.objectives.IndexOf(objective);
    if (info.bounded_domain) {
      // Uniform over the a-priori domain [0, 1].
      test_case.bounds[dim] = rng.NextDouble();
    } else {
      // Minimal possible value for this objective and query, scaled by a
      // uniform factor from [1, 2].
      const double minimum = ObjectiveMinimum(query_number, objective);
      test_case.bounds[dim] = minimum * rng.NextDouble(1.0, 2.0);
    }
  }
  return test_case;
}

Catalog MakeSharedSubgraphCatalog(const SharedSubgraphOptions& options) {
  const int stride = options.stride < 1 ? 1 : options.stride;
  const int tables =
      options.tables_per_query + stride * (options.num_queries - 1);
  Catalog catalog;
  for (int i = 0; i < tables; ++i) {
    // Deterministic cardinality variation so sub-frontier shapes differ
    // along the chain (7 and 13 are coprime: a long repeat period).
    const long rows = options.base_rows * (1 + (i * 7) % 13);
    Table table("r" + std::to_string(i), rows, 48);
    ColumnStats key;
    key.name = "k";
    key.ndv = 100;
    key.min_value = 0;
    key.max_value = 99;
    key.histogram = Histogram::Uniform(0, 99, 8, rows);
    table.AddColumn(key);
    table.AddIndex("k");
    catalog.AddTable(std::move(table));
  }
  return catalog;
}

std::vector<ProblemSpec> BuildSharedSubgraphSpecs(
    const Catalog* catalog, const SharedSubgraphOptions& options) {
  const int stride = options.stride < 1 ? 1 : options.stride;
  std::vector<Objective> objective_pick(
      kAllObjectives.begin(), kAllObjectives.begin() + options.num_objectives);
  std::vector<ProblemSpec> specs;
  specs.reserve(options.num_queries);
  for (int q = 0; q < options.num_queries; ++q) {
    auto query = std::make_shared<Query>(
        Query(catalog, "window" + std::to_string(q)));
    std::vector<int> locals;
    const int first = q * stride;
    for (int i = first; i < first + options.tables_per_query; ++i) {
      locals.push_back(query->AddTable("r" + std::to_string(i)));
    }
    for (size_t i = 0; i + 1 < locals.size(); ++i) {
      query->AddJoin(locals[i], "k", locals[i + 1], "k");
    }
    ProblemSpec spec;
    spec.query = std::move(query);
    spec.objectives = ObjectiveSet(objective_pick);
    specs.push_back(std::move(spec));
  }
  return specs;
}

std::vector<ServiceRequest> BuildSharedSubgraphWorkload(
    const Catalog* catalog, const SharedSubgraphOptions& options) {
  std::vector<ServiceRequest> requests;
  std::vector<ProblemSpec> specs = BuildSharedSubgraphSpecs(catalog, options);
  requests.reserve(specs.size());
  for (ProblemSpec& spec : specs) {
    ServiceRequest request;
    request.spec = std::move(spec);
    request.preference.weights = WeightVector::Uniform(options.num_objectives);
    requests.push_back(std::move(request));
  }
  return requests;
}

double WorkloadGenerator::ObjectiveMinimum(int query_number,
                                           Objective objective) {
  const auto key = std::make_pair(query_number, static_cast<int>(objective));
  auto it = minimum_cache_.find(key);
  if (it != minimum_cache_.end()) return it->second;

  Query query = MakeTpcHQuery(catalog_, query_number);
  const double minimum =
      SelingerOptimizer::MinimumCost(query, objective, options_);
  minimum_cache_[key] = minimum;
  return minimum;
}

}  // namespace moqo
