#include "harness/workload.h"

#include <sstream>

#include "core/selinger.h"

namespace moqo {

std::string TestCase::ToString() const {
  std::ostringstream out;
  out << "q" << query_number << " seed=" << seed << " objectives "
      << objectives.ToString() << " " << weights.ToString() << " "
      << bounds.ToString();
  return out.str();
}

TestCase WorkloadGenerator::WeightedCase(int query_number, int num_objectives,
                                         uint64_t seed) {
  Xoshiro256 rng(seed ^ (static_cast<uint64_t>(query_number) << 32));
  TestCase test_case;
  test_case.query_number = query_number;
  test_case.seed = seed;

  // Random objective subset of fixed cardinality.
  std::vector<Objective> chosen;
  for (int index : rng.SampleWithoutReplacement(kNumObjectives,
                                                num_objectives)) {
    chosen.push_back(kAllObjectives[index]);
  }
  test_case.objectives = ObjectiveSet(std::move(chosen));

  // Weights uniform in [0, 1].
  test_case.weights = WeightVector(num_objectives);
  for (int i = 0; i < num_objectives; ++i) {
    test_case.weights[i] = rng.NextDouble();
  }
  test_case.bounds = BoundVector::Unbounded(num_objectives);
  return test_case;
}

TestCase WorkloadGenerator::BoundedCase(int query_number, int num_bounds,
                                        uint64_t seed) {
  // All nine objectives are active for bounded MOQO (Section 8).
  TestCase test_case = WeightedCase(query_number, kNumObjectives, seed);
  Xoshiro256 rng(seed * 0x9e3779b97f4a7c15ULL + query_number);

  // Bound a random subset of the objectives.
  for (int index : rng.SampleWithoutReplacement(kNumObjectives, num_bounds)) {
    const Objective objective = kAllObjectives[index];
    const ObjectiveInfo& info = GetObjectiveInfo(objective);
    const int dim = test_case.objectives.IndexOf(objective);
    if (info.bounded_domain) {
      // Uniform over the a-priori domain [0, 1].
      test_case.bounds[dim] = rng.NextDouble();
    } else {
      // Minimal possible value for this objective and query, scaled by a
      // uniform factor from [1, 2].
      const double minimum = ObjectiveMinimum(query_number, objective);
      test_case.bounds[dim] = minimum * rng.NextDouble(1.0, 2.0);
    }
  }
  return test_case;
}

double WorkloadGenerator::ObjectiveMinimum(int query_number,
                                           Objective objective) {
  const auto key = std::make_pair(query_number, static_cast<int>(objective));
  auto it = minimum_cache_.find(key);
  if (it != minimum_cache_.end()) return it->second;

  Query query = MakeTpcHQuery(catalog_, query_number);
  const double minimum =
      SelingerOptimizer::MinimumCost(query, objective, options_);
  minimum_cache_[key] = minimum;
  return minimum;
}

}  // namespace moqo
