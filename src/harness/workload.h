// Copyright (c) 2026 moqo authors. MIT license.
//
// The Section-8 workload generator.
//
// "We generated 20 test cases for each TPC-H query and three, six, and nine
// objectives respectively. Every test case is characterized by a set of
// considered objectives (selected randomly out of the nine implemented
// objectives), by weights on the selected objectives (chosen randomly from
// [0,1] with uniform distribution), and (only for bounded MOQO) by bounds
// on a subset of the selected objectives. Bounds for objectives with
// a-priori bounded value domain are chosen with uniform distribution from
// that domain. Bounds for objectives with non-bounded value domains are
// chosen by multiplying the minimal possible value for the given objective
// and query by a factor chosen from [1,2] with uniform distribution."

#ifndef MOQO_HARNESS_WORKLOAD_H_
#define MOQO_HARNESS_WORKLOAD_H_

#include <map>
#include <string>
#include <vector>

#include "core/optimizer.h"
#include "query/tpch_queries.h"
#include "service/request.h"
#include "util/random.h"

namespace moqo {

/// One generated test case (problem instance minus the query object).
struct TestCase {
  int query_number = 0;
  uint64_t seed = 0;
  ObjectiveSet objectives;
  WeightVector weights;
  BoundVector bounds;  ///< Unbounded for weighted-MOQO cases.

  std::string ToString() const;
};

/// Deterministic generator of Section-8 test cases.
class WorkloadGenerator {
 public:
  /// `options` configures the single-objective runs used to find the
  /// per-objective minima that scale bound values.
  WorkloadGenerator(const Catalog* catalog, OptimizerOptions options)
      : catalog_(catalog), options_(std::move(options)) {}

  /// Weighted MOQO test case: `num_objectives` randomly selected
  /// objectives with U[0,1] weights, no bounds (Figure 9).
  TestCase WeightedCase(int query_number, int num_objectives, uint64_t seed);

  /// Bounded MOQO test case: all nine objectives active, bounds on
  /// `num_bounds` randomly selected objectives (Figure 10).
  TestCase BoundedCase(int query_number, int num_bounds, uint64_t seed);

  /// Minimal achievable cost for (query, objective), cached across calls
  /// (each evaluation is one single-objective Selinger run).
  double ObjectiveMinimum(int query_number, Objective objective);

 private:
  const Catalog* catalog_;
  OptimizerOptions options_;
  std::map<std::pair<int, int>, double> minimum_cache_;
};

// ---------------------------------------------------------------------------
// Shared-subgraph workloads.
//
// Production query streams rarely repeat whole queries, but they join the
// same core tables over and over — dashboards, reports, and exploration
// sessions all orbit a shared backbone. This generator models that shape
// deterministically: a long chain of tables, and one query per window of
// `tables_per_query` consecutive tables, each window shifted by `stride`
// tables from the previous one. Every query is *distinct* (distinct
// whole-query signature — the plan cache never hits), while consecutive
// queries share a (tables_per_query - stride)-table subchain whose table
// sets have identical canonical subplan signatures — exactly what the
// cross-query SubplanMemo (and the session bench's ladder steps) feed on.
// All joins use one column name so the globally-incident-column component
// of the memo keys matches across windows, and per-table cardinalities
// vary so sub-frontier shapes differ along the chain.

struct SharedSubgraphOptions {
  int num_queries = 8;
  int tables_per_query = 10;
  /// Window shift between consecutive queries; overlap = tables_per_query
  /// - stride. 1 = the classic sliding-window chain.
  int stride = 1;
  /// Leading objectives from kAllObjectives used by every query (equal
  /// objective sets are part of subplan-signature equality).
  int num_objectives = 3;
  /// Base row count; per-table cardinalities vary deterministically
  /// around it.
  long base_rows = 500;
};

/// Chain catalog long enough for the windows: tables r0..r{n-1} with
/// varying cardinalities, one indexed join column "k" each.
Catalog MakeSharedSubgraphCatalog(const SharedSubgraphOptions& options);

/// One uniform-weight ServiceRequest per window over `catalog` (which
/// must come from MakeSharedSubgraphCatalog with the same options). Each
/// request owns its Query, so the vector is self-contained.
std::vector<ServiceRequest> BuildSharedSubgraphWorkload(
    const Catalog* catalog, const SharedSubgraphOptions& options);

/// The ProblemSpecs alone (for session-based drivers).
std::vector<ProblemSpec> BuildSharedSubgraphSpecs(
    const Catalog* catalog, const SharedSubgraphOptions& options);

}  // namespace moqo

#endif  // MOQO_HARNESS_WORKLOAD_H_
