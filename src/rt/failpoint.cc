// Copyright (c) 2026 moqo authors. MIT license.

#include "rt/failpoint.h"

#include <chrono>
#include <cstdlib>
#include <new>
#include <sstream>
#include <thread>

namespace moqo {
namespace rt {
namespace {

// splitmix64: tiny, stateless, well-mixed. The draw for visit i is a pure
// function of (seed, i), so probability schedules replay bit-exactly from
// their seed no matter how threads interleave the visits.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Uniform double in [0, 1) from the top 53 bits of the mixed value.
double UnitUniform(uint64_t seed, uint64_t visit) {
  const uint64_t mixed = SplitMix64(seed ^ (visit * 0x9e3779b97f4a7c15ULL));
  return static_cast<double>(mixed >> 11) * 0x1.0p-53;
}

// Parses "name(arg1,arg2)" into name + args; plain "name" yields no args.
// False on unbalanced parentheses.
bool SplitCall(const std::string& text, std::string* name,
               std::vector<std::string>* args) {
  args->clear();
  const size_t open = text.find('(');
  if (open == std::string::npos) {
    *name = text;
    return true;
  }
  if (text.empty() || text.back() != ')') return false;
  *name = text.substr(0, open);
  const std::string inner = text.substr(open + 1, text.size() - open - 2);
  std::stringstream ss(inner);
  std::string piece;
  while (std::getline(ss, piece, ',')) args->push_back(piece);
  return true;
}

bool ParseU64(const std::string& text, uint64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

bool ParseDouble(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

void Failpoint::Arm(const FailpointSpec& spec) {
  MutexLock lock(mu_);
  spec_ = spec;
  visits_.store(0, std::memory_order_relaxed);
  hits_.store(0, std::memory_order_relaxed);
  armed_.store(spec.mode == ArmMode::kOff ? 0 : 1, std::memory_order_relaxed);
}

void Failpoint::Disarm() {
  MutexLock lock(mu_);
  spec_ = FailpointSpec{};
  armed_.store(0, std::memory_order_relaxed);
}

bool Failpoint::EvalArmed() {
  FailAction action = FailAction::kReturnError;
  int64_t delay_ms = 0;
  {
    MutexLock lock(mu_);
    // Disarm() may have won the race after the fast-path load saw armed.
    if (spec_.mode == ArmMode::kOff) return false;
    const uint64_t visit = visits_.fetch_add(1, std::memory_order_relaxed) + 1;
    bool fire = false;
    switch (spec_.mode) {
      case ArmMode::kEveryNth:
        fire = spec_.n > 0 && visit % spec_.n == 0;
        break;
      case ArmMode::kFirstN:
        fire = visit <= spec_.n;
        break;
      case ArmMode::kProbability:
        fire = UnitUniform(spec_.seed, visit) < spec_.probability;
        break;
      case ArmMode::kOff:
        break;
    }
    if (!fire) return false;
    hits_.fetch_add(1, std::memory_order_relaxed);
    action = spec_.action;
    delay_ms = spec_.delay_ms;
  }
  // Act outside mu_ so a delay never serializes other visitors.
  switch (action) {
    case FailAction::kThrow:
      throw FailpointError(name_);
    case FailAction::kOom:
      throw std::bad_alloc();
    case FailAction::kDelayMs:
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
      return false;  // A latency fault, not an error: execution continues.
    case FailAction::kReturnError:
      return true;
  }
  return false;
}

FailpointRegistry& FailpointRegistry::Global() {
  static FailpointRegistry* registry = [] {
    auto* r = new FailpointRegistry();
    if (const char* config = std::getenv("MOQO_FAILPOINTS_CONFIG")) {
      r->ArmFromConfig(config);
    }
    return r;
  }();
  return *registry;
}

Failpoint& FailpointRegistry::Register(const std::string& name) {
  MutexLock lock(mu_);
  std::unique_ptr<Failpoint>& slot = sites_[name];
  if (slot == nullptr) slot = std::make_unique<Failpoint>(name);
  return *slot;
}

bool FailpointRegistry::Arm(const std::string& name,
                            const std::string& spec_text) {
  FailpointSpec spec;
  if (!ParseSpec(spec_text, &spec)) return false;
  Register(name).Arm(spec);
  return true;
}

size_t FailpointRegistry::ArmFromConfig(const std::string& config) {
  size_t armed = 0;
  std::stringstream ss(config);
  std::string entry;
  while (std::getline(ss, entry, ';')) {
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) continue;
    if (Arm(entry.substr(0, eq), entry.substr(eq + 1))) ++armed;
  }
  return armed;
}

void FailpointRegistry::Disarm(const std::string& name) {
  Register(name).Disarm();
}

void FailpointRegistry::DisarmAll() {
  MutexLock lock(mu_);
  for (auto& entry : sites_) entry.second->Disarm();
}

std::vector<std::pair<std::string, uint64_t>> FailpointRegistry::HitCounts()
    const {
  std::vector<std::pair<std::string, uint64_t>> out;
  MutexLock lock(mu_);
  out.reserve(sites_.size());
  for (const auto& entry : sites_) {
    out.emplace_back(entry.first, entry.second->hits());
  }
  return out;
}

std::string FailpointRegistry::MetricsText() const {
  const std::vector<std::pair<std::string, uint64_t>> counts = HitCounts();
  if (counts.empty()) return std::string();
  std::string out;
  out += "# HELP moqo_failpoint_hits_total Injected faults fired per site\n";
  out += "# TYPE moqo_failpoint_hits_total counter\n";
  for (const auto& entry : counts) {
    out += "moqo_failpoint_hits_total{site=\"" + entry.first +
           "\"} " + std::to_string(entry.second) + "\n";
  }
  return out;
}

bool FailpointRegistry::ParseSpec(const std::string& text,
                                  FailpointSpec* out) {
  FailpointSpec spec;
  const size_t colon = text.find(':');
  const std::string mode_text =
      colon == std::string::npos ? text : text.substr(0, colon);

  std::string mode_name;
  std::vector<std::string> mode_args;
  if (!SplitCall(mode_text, &mode_name, &mode_args)) return false;

  if (mode_name == "off") {
    if (!mode_args.empty() || colon != std::string::npos) return false;
    spec.mode = ArmMode::kOff;
    *out = spec;
    return true;
  } else if (mode_name == "always") {
    if (!mode_args.empty()) return false;
    spec.mode = ArmMode::kEveryNth;
    spec.n = 1;
  } else if (mode_name == "every_nth") {
    if (mode_args.size() != 1 || !ParseU64(mode_args[0], &spec.n) ||
        spec.n == 0) {
      return false;
    }
    spec.mode = ArmMode::kEveryNth;
  } else if (mode_name == "first_n") {
    if (mode_args.size() != 1 || !ParseU64(mode_args[0], &spec.n)) {
      return false;
    }
    spec.mode = ArmMode::kFirstN;
  } else if (mode_name == "probability") {
    if (mode_args.empty() || mode_args.size() > 2 ||
        !ParseDouble(mode_args[0], &spec.probability) ||
        spec.probability < 0.0 || spec.probability > 1.0) {
      return false;
    }
    if (mode_args.size() == 2) {
      std::string seed_text = mode_args[1];
      const std::string prefix = "seed=";
      if (seed_text.compare(0, prefix.size(), prefix) == 0) {
        seed_text = seed_text.substr(prefix.size());
      }
      if (!ParseU64(seed_text, &spec.seed)) return false;
    }
    spec.mode = ArmMode::kProbability;
  } else {
    return false;
  }

  // Every armed mode requires an action.
  if (colon == std::string::npos) return false;
  const std::string action_text = text.substr(colon + 1);
  std::string action_name;
  std::vector<std::string> action_args;
  if (!SplitCall(action_text, &action_name, &action_args)) return false;

  if (action_name == "return_error") {
    if (!action_args.empty()) return false;
    spec.action = FailAction::kReturnError;
  } else if (action_name == "throw") {
    if (!action_args.empty()) return false;
    spec.action = FailAction::kThrow;
  } else if (action_name == "oom") {
    if (!action_args.empty()) return false;
    spec.action = FailAction::kOom;
  } else if (action_name == "delay_ms") {
    uint64_t delay = 0;
    if (action_args.size() != 1 || !ParseU64(action_args[0], &delay)) {
      return false;
    }
    spec.action = FailAction::kDelayMs;
    spec.delay_ms = static_cast<int64_t>(delay);
  } else {
    return false;
  }

  *out = spec;
  return true;
}

}  // namespace rt
}  // namespace moqo
