// Copyright (c) 2026 moqo authors. MIT license.
//
// Failpoints (PR 8): deterministic fault injection for the serving stack.
//
// A failpoint is a named site in production code where a test (or an
// operator chasing a bug) can inject a fault: an error return, an
// exception, an allocation failure, or a latency spike. Sites are
// compiled in permanently behind the MOQO_FAILPOINTS CMake option
// (default ON; OFF compiles every site to nothing) and cost exactly one
// relaxed atomic load while disarmed — cheap enough for allocation paths.
//
// Arming is per site, through the process-wide registry:
//
//   rt::FailpointRegistry::Global().Arm(
//       "arena.new_block", "probability(0.01,seed=7):oom");
//
// or through the environment before the process starts:
//
//   MOQO_FAILPOINTS_CONFIG=
//       "net.read=every_nth(50):return_error;session.rung=always:throw"
//
// Spec syntax: `<mode>:<action>` (or just `off`), where
//
//   mode:    off | always | every_nth(N) | first_n(N)
//            | probability(P[,seed=S])
//   action:  return_error | throw | delay_ms(D) | oom
//
// `probability` draws are a pure function of (seed, visit index), so a
// fault schedule replays bit-exactly from its seed regardless of thread
// interleaving. Every site counts its hits; the registry renders them as
// `moqo_failpoint_hits_total{site="..."}` (appended to the service's
// MetricsText()), which is how the chaos suite proves each armed site was
// actually exercised.
//
// Site catalog and the degradation each fault exercises: README.md,
// "Robustness".

#ifndef MOQO_RT_FAILPOINT_H_
#define MOQO_RT_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace moqo {
namespace rt {

/// True when failpoint sites are compiled in (MOQO_FAILPOINTS=ON).
#if defined(MOQO_FAILPOINTS_ENABLED)
inline constexpr bool kFailpointsEnabled = true;
#else
inline constexpr bool kFailpointsEnabled = false;
#endif

/// What an injected `throw` throws. Distinct from real failures so a
/// fence that must swallow only injected faults can.
class FailpointError : public std::runtime_error {
 public:
  explicit FailpointError(const std::string& site)
      : std::runtime_error("injected fault at failpoint " + site) {}
};

enum class FailAction : uint8_t {
  kReturnError,  ///< MOQO_FAILPOINT_RETURN takes its error return.
  kThrow,        ///< Throws FailpointError.
  kDelayMs,      ///< Sleeps delay_ms, then continues (latency fault).
  kOom,          ///< Throws std::bad_alloc (allocation-failure fault).
};

enum class ArmMode : uint8_t {
  kOff,
  kEveryNth,      ///< Fires on visits N, 2N, 3N, ...
  kFirstN,        ///< Fires on the first N visits, then never again.
  kProbability,   ///< Fires on visit i iff hash(seed, i) < p. Seeded.
};

/// A parsed arm policy + action; what Arm() installs.
struct FailpointSpec {
  ArmMode mode = ArmMode::kOff;
  FailAction action = FailAction::kThrow;
  uint64_t n = 1;           ///< kEveryNth / kFirstN parameter.
  double probability = 0;   ///< kProbability parameter, in [0, 1].
  uint64_t seed = 1;        ///< kProbability determinism seed.
  int64_t delay_ms = 0;     ///< kDelayMs parameter.
};

/// One named injection site. Disarmed cost: a single relaxed atomic load.
class Failpoint {
 public:
  explicit Failpoint(std::string name) : name_(std::move(name)) {}

  Failpoint(const Failpoint&) = delete;
  Failpoint& operator=(const Failpoint&) = delete;

  const std::string& name() const { return name_; }

  /// The hot-path check. Disarmed: one relaxed load, no side effects.
  /// Armed: evaluates the policy; on fire, performs the action — throws
  /// (kThrow/kOom), sleeps (kDelayMs, then returns false), or returns
  /// true (kReturnError: the caller takes its error-return path).
  bool ShouldFail() {
    if (armed_.load(std::memory_order_relaxed) == 0) return false;
    return EvalArmed();
  }

  /// Times the armed policy fired (any action), since the last Arm().
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  /// Site visits while armed, since the last Arm().
  uint64_t visits() const { return visits_.load(std::memory_order_relaxed); }

  /// Installs `spec` and resets the visit/hit counters. Thread-safe
  /// against concurrent ShouldFail().
  void Arm(const FailpointSpec& spec);
  void Disarm();

 private:
  bool EvalArmed();

  const std::string name_;
  /// 1 iff an active (mode != kOff) spec is installed; the disarmed fast
  /// path reads only this. Relaxed is enough: armed readers take mu_,
  /// which publishes the spec they act on.
  std::atomic<uint32_t> armed_{0};
  std::atomic<uint64_t> visits_{0};
  std::atomic<uint64_t> hits_{0};
  Mutex mu_;  ///< Guards spec_ and the policy evaluation.
  FailpointSpec spec_ MOQO_GUARDED_BY(mu_);
};

/// Process-wide site registry. Sites self-register on first visit (the
/// MOQO_FAILPOINT* macros cache the lookup in a function-local static);
/// Arm() creates sites eagerly so configuration can precede first use.
class FailpointRegistry {
 public:
  /// The process-wide instance. On first call, arms everything named in
  /// the MOQO_FAILPOINTS_CONFIG environment variable.
  static FailpointRegistry& Global();

  /// Returns the site named `name`, creating it if needed. The reference
  /// stays valid for the registry's lifetime.
  Failpoint& Register(const std::string& name);

  /// Parses `spec_text` (see the header comment for the syntax) and arms
  /// `name` with it. False on a parse error (the site is left untouched).
  bool Arm(const std::string& name, const std::string& spec_text);
  /// Typed variant.
  void Arm(const std::string& name, const FailpointSpec& spec) {
    Register(name).Arm(spec);
  }

  /// Applies a `site=spec;site=spec` config string. Returns the number of
  /// sites armed; malformed entries are skipped.
  size_t ArmFromConfig(const std::string& config);

  void Disarm(const std::string& name);
  void DisarmAll();

  /// (site, hits) for every registered site, name-ordered.
  std::vector<std::pair<std::string, uint64_t>> HitCounts() const;

  /// Prometheus rendering of the hit counters:
  ///   moqo_failpoint_hits_total{site="..."} N
  /// Empty when no site has registered (so appending it to a scrape is
  /// free in fault-free processes).
  std::string MetricsText() const;

  /// Parses one `mode:action` spec; false on malformed input.
  static bool ParseSpec(const std::string& text, FailpointSpec* out);

 private:
  FailpointRegistry() = default;

  mutable Mutex mu_;
  /// Ordered so HitCounts()/MetricsText() render deterministically.
  std::map<std::string, std::unique_ptr<Failpoint>> sites_
      MOQO_GUARDED_BY(mu_);
};

}  // namespace rt
}  // namespace moqo

// ---- Site macros. ----
//
// MOQO_FAILPOINT(site): injection point for throw/oom/delay actions. A
// return_error arming at such a site counts its hits but injects nothing
// (there is no error path to take).
//
// MOQO_FAILPOINT_HIT(site): bool expression — true when an armed
// return_error policy fires (throw/oom/delay actions act from inside the
// evaluation). For sites whose error path is not a plain `return`.
//
// MOQO_FAILPOINT_RETURN(site, ...): `return <args>;` when a return_error
// policy fires.
//
// All three compile to nothing (constant false) when MOQO_FAILPOINTS=OFF.

#if defined(MOQO_FAILPOINTS_ENABLED)
#define MOQO_FAILPOINT_HIT(site_name)                                       \
  ([]() -> bool {                                                           \
    static ::moqo::rt::Failpoint& moqo_failpoint_site =                     \
        ::moqo::rt::FailpointRegistry::Global().Register(site_name);        \
    return moqo_failpoint_site.ShouldFail();                                \
  }())
#else
#define MOQO_FAILPOINT_HIT(site_name) (false)
#endif

#define MOQO_FAILPOINT(site_name)            \
  do {                                       \
    (void)MOQO_FAILPOINT_HIT(site_name);     \
  } while (0)

#define MOQO_FAILPOINT_RETURN(site_name, ...)               \
  do {                                                      \
    if (MOQO_FAILPOINT_HIT(site_name)) return __VA_ARGS__;  \
  } while (0)

#endif  // MOQO_RT_FAILPOINT_H_
