// Copyright (c) 2026 moqo authors. MIT license.
//
// PlanNode: the immutable, arena-allocated query plan representation.
//
// Matching the space model of Theorem 1: "A scan plan is represented by an
// operator ID and a table ID. All other plans are represented by the
// operator ID of the last join and pointers to the two sub-plans generating
// its operands. Therefore, each stored plan needs only O(1) space."
// We additionally cache the cost vector and derived properties (cardinality,
// row width) that the recursive cost formulas consume.

#ifndef MOQO_PLAN_PLAN_NODE_H_
#define MOQO_PLAN_PLAN_NODE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cost/cost_vector.h"
#include "util/arena.h"
#include "util/table_set.h"

namespace moqo {

/// One node of a (bushy) physical plan. Nodes are immutable after
/// construction and allocated from an Arena owned by the optimizer run;
/// they are freely shared between alternative plans (DAG memoization).
struct PlanNode {
  /// Dense id into the run's OperatorRegistry.
  int32_t op_config = -1;
  /// Scan nodes: query-local table index. Join nodes: -1.
  int32_t table = -1;
  /// Join operands; null for scans. `left` is the outer/build side.
  const PlanNode* left = nullptr;
  const PlanNode* right = nullptr;

  /// Set of query-local tables this plan joins.
  TableSet tables;
  /// Estimated multi-dimensional cost over the active objectives.
  CostVector cost;
  /// Estimated output cardinality (after sampling loss).
  double cardinality = 0;
  /// Average output row width in bytes.
  double row_width = 0;

  bool IsScan() const { return left == nullptr; }

  /// Number of operator nodes in the tree.
  int NodeCount() const {
    return IsScan() ? 1 : 1 + left->NodeCount() + right->NodeCount();
  }

  /// Height of the tree (scan = 1).
  int Height() const;

  /// True iff every join's right operand is a base-table scan (left-deep).
  bool IsLeftDeep() const;
};

static_assert(std::is_trivially_destructible_v<PlanNode>,
              "PlanNode must be arena-compatible");

/// Recursively copies `plan` (and all sub-plans) into `arena`; returns the
/// new root. Used to hand plans to callers that outlive the optimizer run
/// that produced them.
const PlanNode* DeepCopyPlan(const PlanNode* plan, Arena* arena);

/// DAG-sharing deep copy that additionally *renumbers* table references:
/// every node's `table` and `tables` are rewritten through `table_map`
/// (new_index = table_map[old_index]; every referenced old index must have
/// a valid mapping). `copied` carries the source-node -> copy mapping, so
/// copies of several roots through one map preserve sub-plan sharing among
/// them. The cross-query subplan memo uses this in both directions: plans
/// are stored in the table set's canonical dense-rank space and rebound to
/// a query's local indices on a hit.
const PlanNode* DeepCopyPlanRemapped(
    const PlanNode* plan, Arena* arena, const std::vector<int>& table_map,
    std::unordered_map<const PlanNode*, const PlanNode*>* copied);

/// Structural equality of two plans (same operators, tables, and shape).
bool PlansEqual(const PlanNode* a, const PlanNode* b);

/// Order-insensitive structural hash, for deduplication diagnostics.
uint64_t PlanHash(const PlanNode* plan);

}  // namespace moqo

#endif  // MOQO_PLAN_PLAN_NODE_H_
