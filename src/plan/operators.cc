#include "plan/operators.h"

#include <sstream>

namespace moqo {

const char* OperatorTypeName(OperatorType type) {
  switch (type) {
    case OperatorType::kSeqScan: return "SeqScan";
    case OperatorType::kIndexScan: return "IdxScan";
    case OperatorType::kHashJoin: return "HashJ";
    case OperatorType::kSortMergeJoin: return "SMJ";
    case OperatorType::kIndexNLJoin: return "IdxNL";
    case OperatorType::kBlockNLJoin: return "BNL";
  }
  return "?";
}

std::string OperatorConfig::ToString() const {
  std::ostringstream out;
  out << OperatorTypeName(type);
  if (IsScan()) {
    if (sampling_rate < 1.0) {
      out << "(sample=" << sampling_rate * 100 << "%)";
    }
  } else if (dop > 1) {
    out << "(dop=" << dop << ")";
  }
  return out.str();
}

OperatorRegistry::OperatorRegistry(const Options& options)
    : options_(options) {
  auto add = [this](OperatorConfig config) {
    configs_.push_back(config);
    const int id = static_cast<int>(configs_.size()) - 1;
    (config.IsScan() ? scan_configs_ : join_configs_).push_back(id);
    return id;
  };

  // Scan configurations: full scans first, then sampled variants.
  std::vector<double> rates = {1.0};
  if (options.enable_sampling) {
    rates.insert(rates.end(), options.sampling_rates.begin(),
                 options.sampling_rates.end());
  }
  for (double rate : rates) {
    add({OperatorType::kSeqScan, rate, 1});
    if (options.enable_index_scan) {
      add({OperatorType::kIndexScan, rate, 1});
    }
  }

  // Join configurations parameterized by degree of parallelism.
  std::vector<int> dops = options.enable_parallelism
                              ? options.dops
                              : std::vector<int>{1};
  for (int dop : dops) {
    add({OperatorType::kHashJoin, 1.0, dop});
    add({OperatorType::kSortMergeJoin, 1.0, dop});
    add({OperatorType::kIndexNLJoin, 1.0, dop});
    add({OperatorType::kBlockNLJoin, 1.0, dop});
  }
}

}  // namespace moqo
