// Copyright (c) 2026 moqo authors. MIT license.
//
// Explain-style rendering of physical plans, used by the examples and by
// the Figure-3 reproduction (plan evolution under changing preferences).

#ifndef MOQO_PLAN_PLAN_PRINTER_H_
#define MOQO_PLAN_PLAN_PRINTER_H_

#include <string>

#include "plan/operators.h"
#include "plan/plan_node.h"
#include "query/query.h"

namespace moqo {

/// Multi-line indented tree, e.g.
///   HashJ(dop=2)  [rows=3e+03]
///     HashJ  [rows=1.5e+05]
///       SeqScan(customer)
///       SeqScan(orders)
///     IdxScan(lineitem)
std::string ExplainPlan(const PlanNode* plan, const Query& query,
                        const OperatorRegistry& registry);

/// One-line parenthesized form, e.g.
///   HashJ(HashJ(customer, orders), lineitem)
/// Useful in tests and logs.
std::string PlanSignature(const PlanNode* plan, const Query& query,
                          const OperatorRegistry& registry);

/// Comma-separated list of the operator types used, innermost first. The
/// Figure-3 reproduction asserts on this (e.g. "no hash joins anymore").
std::string OperatorInventory(const PlanNode* plan,
                              const OperatorRegistry& registry);

}  // namespace moqo

#endif  // MOQO_PLAN_PLAN_PRINTER_H_
