#include "plan/plan_node.h"

#include <algorithm>

namespace moqo {

int PlanNode::Height() const {
  if (IsScan()) return 1;
  return 1 + std::max(left->Height(), right->Height());
}

bool PlanNode::IsLeftDeep() const {
  if (IsScan()) return true;
  return right->IsScan() && left->IsLeftDeep();
}

const PlanNode* DeepCopyPlan(const PlanNode* plan, Arena* arena) {
  if (plan == nullptr) return nullptr;
  PlanNode* copy = arena->New<PlanNode>(*plan);
  copy->left = DeepCopyPlan(plan->left, arena);
  copy->right = DeepCopyPlan(plan->right, arena);
  return copy;
}

const PlanNode* DeepCopyPlanRemapped(
    const PlanNode* plan, Arena* arena, const std::vector<int>& table_map,
    std::unordered_map<const PlanNode*, const PlanNode*>* copied) {
  if (plan == nullptr) return nullptr;
  auto it = copied->find(plan);
  if (it != copied->end()) return it->second;
  PlanNode* copy = arena->New<PlanNode>(*plan);
  if (plan->table >= 0) copy->table = table_map[plan->table];
  TableSet mapped;
  for (int table : plan->tables.Members()) {
    mapped = mapped.With(table_map[table]);
  }
  copy->tables = mapped;
  copy->left = DeepCopyPlanRemapped(plan->left, arena, table_map, copied);
  copy->right = DeepCopyPlanRemapped(plan->right, arena, table_map, copied);
  (*copied)[plan] = copy;
  return copy;
}

bool PlansEqual(const PlanNode* a, const PlanNode* b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->op_config != b->op_config || a->table != b->table ||
      !(a->tables == b->tables)) {
    return false;
  }
  return PlansEqual(a->left, b->left) && PlansEqual(a->right, b->right);
}

uint64_t PlanHash(const PlanNode* plan) {
  if (plan == nullptr) return 0;
  uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  mix(static_cast<uint64_t>(plan->op_config) + 1);
  mix(static_cast<uint64_t>(plan->table) + 2);
  mix(plan->tables.mask());
  mix(PlanHash(plan->left) * 3);
  mix(PlanHash(plan->right) * 5);
  return h;
}

}  // namespace moqo
