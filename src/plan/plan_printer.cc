#include "plan/plan_printer.h"

#include <set>
#include <sstream>

namespace moqo {

namespace {

void ExplainRec(const PlanNode* plan, const Query& query,
                const OperatorRegistry& registry, int depth,
                std::ostringstream* out) {
  const OperatorConfig& op = registry.config(plan->op_config);
  for (int i = 0; i < depth; ++i) *out << "  ";
  if (plan->IsScan()) {
    *out << OperatorTypeName(op.type) << "(" << query.table(plan->table).name();
    if (op.sampling_rate < 1.0) {
      *out << ", sample=" << op.sampling_rate * 100 << "%";
    }
    *out << ")  [rows=" << plan->cardinality << "]\n";
  } else {
    *out << op.ToString() << "  [rows=" << plan->cardinality << "]\n";
    ExplainRec(plan->left, query, registry, depth + 1, out);
    ExplainRec(plan->right, query, registry, depth + 1, out);
  }
}

void SignatureRec(const PlanNode* plan, const Query& query,
                  const OperatorRegistry& registry, std::ostringstream* out) {
  const OperatorConfig& op = registry.config(plan->op_config);
  if (plan->IsScan()) {
    *out << query.table(plan->table).name();
    if (op.type == OperatorType::kIndexScan) *out << "[idx]";
    if (op.sampling_rate < 1.0) *out << "[s" << op.sampling_rate * 100 << "]";
    return;
  }
  *out << OperatorTypeName(op.type);
  if (op.dop > 1) *out << op.dop;
  *out << "(";
  SignatureRec(plan->left, query, registry, out);
  *out << ", ";
  SignatureRec(plan->right, query, registry, out);
  *out << ")";
}

void InventoryRec(const PlanNode* plan, const OperatorRegistry& registry,
                  std::set<std::string>* types) {
  types->insert(OperatorTypeName(registry.config(plan->op_config).type));
  if (!plan->IsScan()) {
    InventoryRec(plan->left, registry, types);
    InventoryRec(plan->right, registry, types);
  }
}

}  // namespace

std::string ExplainPlan(const PlanNode* plan, const Query& query,
                        const OperatorRegistry& registry) {
  std::ostringstream out;
  ExplainRec(plan, query, registry, 0, &out);
  return out.str();
}

std::string PlanSignature(const PlanNode* plan, const Query& query,
                          const OperatorRegistry& registry) {
  std::ostringstream out;
  SignatureRec(plan, query, registry, &out);
  return out.str();
}

std::string OperatorInventory(const PlanNode* plan,
                              const OperatorRegistry& registry) {
  std::set<std::string> types;
  InventoryRec(plan, registry, &types);
  std::ostringstream out;
  bool first = true;
  for (const std::string& type : types) {
    if (!first) out << ",";
    out << type;
    first = false;
  }
  return out.str();
}

}  // namespace moqo
