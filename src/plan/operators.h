// Copyright (c) 2026 moqo authors. MIT license.
//
// The physical operator configuration space (Section 4).
//
// The paper extends the Postgres plan space with a parameterized sampling
// scan (1%..5% of a base table) and parameterizes join and sort operators
// by a degree of parallelism (up to 4 cores per operation), yielding "over
// 10 different configurations ... for the scan and for the join operator
// respectively". We reproduce that fan-out:
//
//   scans: {SeqScan, IndexScan} x sampling {100%, 5%, 4%, 3%, 2%, 1%}
//   joins: {HashJoin, SortMergeJoin, IndexNLJoin, BlockNLJoin} x DOP {1,2,4}

#ifndef MOQO_PLAN_OPERATORS_H_
#define MOQO_PLAN_OPERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace moqo {

enum class OperatorType : uint8_t {
  kSeqScan,
  kIndexScan,
  kHashJoin,
  kSortMergeJoin,
  kIndexNLJoin,
  kBlockNLJoin,
};

const char* OperatorTypeName(OperatorType type);

/// One physical operator configuration: the algorithm plus its parameters.
/// Value type; plans reference configurations by dense id.
struct OperatorConfig {
  OperatorType type = OperatorType::kSeqScan;
  /// Fraction of the base table scanned (scans only); 1.0 = full scan,
  /// sampling rates in {0.05, 0.04, 0.03, 0.02, 0.01} per Section 4.
  double sampling_rate = 1.0;
  /// Degree of parallelism (joins only); number of cores used by this
  /// operator, in {1, 2, 4}.
  int dop = 1;

  bool IsScan() const {
    return type == OperatorType::kSeqScan || type == OperatorType::kIndexScan;
  }
  bool IsJoin() const { return !IsScan(); }

  std::string ToString() const;

  bool operator==(const OperatorConfig&) const = default;
};

/// The full operator registry for one optimizer run. Provides the dense
/// config id space and applicability-filtered views used by the DP drivers.
class OperatorRegistry {
 public:
  struct Options {
    bool enable_sampling = true;       ///< Sampled scan variants.
    bool enable_index_scan = true;
    bool enable_parallelism = true;    ///< DOP 2 and 4 join variants.
    std::vector<double> sampling_rates = {0.05, 0.04, 0.03, 0.02, 0.01};
    std::vector<int> dops = {1, 2, 4};
  };

  OperatorRegistry() : OperatorRegistry(Options()) {}
  explicit OperatorRegistry(const Options& options);

  /// The options this registry was built from. The dense config id space
  /// is a deterministic function of them, which is what lets canonical
  /// cache keys (service signatures, subplan memo keys) encode the options
  /// instead of the id mapping itself.
  const Options& options() const { return options_; }

  int num_configs() const { return static_cast<int>(configs_.size()); }
  const OperatorConfig& config(int id) const { return configs_[id]; }

  /// Ids of all scan configurations. IndexScan variants are included; the
  /// plan space decides per table whether an index is available.
  const std::vector<int>& scan_configs() const { return scan_configs_; }

  /// Ids of all join configurations; this is the set J of Section 3
  /// restricted to joins.
  const std::vector<int>& join_configs() const { return join_configs_; }

  /// j = |J| in the paper's complexity analysis: total operator count.
  int OperatorCountJ() const { return num_configs(); }

 private:
  Options options_;
  std::vector<OperatorConfig> configs_;
  std::vector<int> scan_configs_;
  std::vector<int> join_configs_;
};

}  // namespace moqo

#endif  // MOQO_PLAN_OPERATORS_H_
