// Copyright (c) 2026 moqo authors. MIT license.
//
// SubplanMemo: a concurrent, byte-budgeted, cross-query memo of
// table-set-level Pareto frontiers.
//
// The whole-query PlanCache (service/plan_cache.h) only amortizes repeats
// of the *same* query; real workloads share join subgraphs far more often
// than whole queries. This memo shares work at the granularity the DP
// actually spends its time on: the sealed approximate Pareto set of one
// table set. Keys are canonical table-set signatures (memo/subplan_key.h —
// equal keys imply byte-identical frontiers); values are immutable shared
// PlanSet snapshots holding the frontier's plans in the set's canonical
// dense-rank space (costs verbatim, plans DAG-shared, rebased on a hit via
// DeepCopyPlanRemapped). The DP driver probes before building a table set
// and seals the level entry directly on a hit; after the level barrier it
// publishes newly sealed sets — publish-after-seal, so in-flight parallel
// tasks only ever read immutable entries and a cold run's frontiers are
// byte-identical with the memo on or off.
//
// Storage is the same ShardedLru machinery the PlanCache uses
// (util/sharded_lru.h): N independently locked shards, each with its own
// LRU list and byte-budget slice; entries are accounted by their PlanSet
// footprint plus key/index overhead. Admission is
// shaped by three knobs: `min_tables` (small sets are cheaper to rebuild
// than to copy), `admission_epsilon` (only frontiers already compact at
// the service's cache epsilon are worth pinning — a denser frontier would
// be compacted away at the whole-query cache anyway; entries are never
// stored compacted, since hits must reproduce the exact frontier), and
// `max_entry_plans` (a hard per-entry size cut). Per-catalog epochs keep
// the memo tidy: ObserveCatalog flushes all entries when a known
// catalog's epoch advances (Catalog::BumpEpoch after an in-place
// statistics refresh), evicting entries whose content-derived keys just
// became unreachable.

#ifndef MOQO_MEMO_SUBPLAN_MEMO_H_
#define MOQO_MEMO_SUBPLAN_MEMO_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "core/plan_set.h"
#include "memo/subplan_key.h"
#include "util/mutex.h"
#include "util/sharded_lru.h"
#include "util/thread_annotations.h"

namespace moqo {

namespace persist {
class DiskTier;
}  // namespace persist

class SubplanMemo {
 public:
  struct Options {
    /// Byte budget across all shards (entries accounted by PlanSet
    /// footprint + key/index overhead); 0 = unlimited.
    size_t capacity_bytes = size_t{64} << 20;  // 64 MiB
    /// Entry cap across all shards (secondary limit).
    size_t capacity = 65536;
    /// Independently locked shards; rounded up to a power of two.
    int shards = 8;
    /// Only table sets with at least this many members are probed or
    /// published (floored at 2: singletons are cheaper to rebuild than to
    /// look up). The DP skips memo work below this size entirely.
    int min_tables = 3;
    /// Epsilon-aware admission: a frontier is published only if it is
    /// already compact at this epsilon — no plan (1+epsilon)-dominated by
    /// an earlier one. 0 disables the check; a negative value means "use
    /// the owner's default" (the service substitutes its cache-compaction
    /// epsilon; a bare SubplanMemo treats it as disabled).
    double admission_epsilon = -1.0;
    /// Frontiers with more plans than this are never published; 0 = no cap.
    size_t max_entry_plans = 0;
  };

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    /// Publishes refused by admission (epsilon density / entry size).
    uint64_t admission_rejects = 0;
    /// Epoch changes that flushed the memo.
    uint64_t invalidations = 0;
    /// Probes that missed RAM but were served (and promoted back) from
    /// the attached disk tier; counted inside `hits` as well.
    uint64_t tier_hits = 0;
    size_t entries = 0;
    size_t bytes = 0;
    /// Sum of resident entries' frontier sizes.
    size_t frontier_plans = 0;

    double HitRate() const {
      const uint64_t lookups = hits + misses;
      return lookups == 0 ? 0 : static_cast<double>(hits) / lookups;
    }
  };

  SubplanMemo();  ///< Default Options.
  explicit SubplanMemo(const Options& options);

  SubplanMemo(const SubplanMemo&) = delete;
  SubplanMemo& operator=(const SubplanMemo&) = delete;

  const Options& options() const { return options_; }
  int min_tables() const { return options_.min_tables; }

  /// Returns the shared frontier for `signature` (promoting it to
  /// most-recently-used) or nullptr on miss.
  std::shared_ptr<const PlanSet> Lookup(const SubplanSignature& signature);

  /// True iff `frontier` passes the admission policy (size cap and epsilon
  /// compactness); counts rejects. `alpha` is the pruning precision the
  /// frontier was built with: approximate pruning already guarantees
  /// compactness at alpha - 1 (no stored plan is alpha-dominated by an
  /// earlier one), so the effective admission epsilon is capped there and
  /// the O(n^2) density scan only ever runs — and prunes — for *exact*
  /// frontiers, the ones whose density is actually unbounded. The DP
  /// checks this before paying for the deep copy a publish requires.
  bool Admits(const ParetoSet& frontier, double alpha);

  /// Inserts (or refreshes) an admitted frontier, evicting LRU entries of
  /// the target shard until it fits the byte budget and entry cap.
  void Insert(const SubplanSignature& signature,
              std::shared_ptr<const PlanSet> frontier);

  /// Declares that the catalog identified by `catalog` (any stable
  /// identity token — the service passes the Catalog address) is now at
  /// `epoch`. The first observation of an identity is adopted silently;
  /// observing a *changed* epoch for a known identity flushes every shard
  /// (counted as one invalidation). Thread-safe; cheap when unchanged.
  ///
  /// Note the flush is hygiene, not a correctness requirement: keys encode
  /// full table content read at run start, so a run after an in-place
  /// statistics change (Catalog::BumpEpoch) derives different keys and can
  /// never be answered from pre-change entries — the flush just evicts the
  /// newly unreachable ones instead of letting them rot until LRU
  /// eviction. Scoping per identity keeps a service juggling several
  /// catalogs (whose unrelated epoch counters differ) from flushing valid
  /// entries on every alternation.
  void ObserveCatalog(const void* catalog, uint64_t epoch);

  /// Attaches the RAM→disk demotion tier: evicted frontiers demote to
  /// `tier` as encoded PlanSet blocks, misses probe it. Call before
  /// concurrent use; nullptr detaches.
  void AttachTier(std::shared_ptr<persist::DiskTier> tier);

  /// Visits every resident entry as fn(signature, plan_set_ptr, bytes);
  /// see ShardedLru::ForEach for locking. The snapshot exporter.
  template <typename Fn>
  void ForEach(Fn fn) const {
    lru_.ForEach(fn);
  }

  Stats GetStats() const;
  size_t size() const { return lru_.size(); }
  void Clear() { lru_.Clear(); }

  int num_shards() const { return lru_.num_shards(); }

 private:
  Options options_;
  ShardedLru<SubplanSignature, std::shared_ptr<const PlanSet>> lru_;
  std::shared_ptr<persist::DiskTier> tier_;
  std::atomic<uint64_t> tier_hits_{0};

  /// Last-seen epoch per catalog identity; epoch_mu_ also serializes the
  /// flush an epoch change triggers.
  Mutex epoch_mu_;
  std::unordered_map<const void*, uint64_t> catalog_epochs_
      MOQO_GUARDED_BY(epoch_mu_);

  std::atomic<uint64_t> admission_rejects_{0};
  std::atomic<uint64_t> invalidations_{0};
};

}  // namespace moqo

#endif  // MOQO_MEMO_SUBPLAN_MEMO_H_
