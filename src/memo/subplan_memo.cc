// Copyright (c) 2026 moqo authors. MIT license.

#include "memo/subplan_memo.h"

#include <limits>
#include <string>
#include <utility>

#include "persist/disk_tier.h"
#include "persist/plan_set_codec.h"
#include "rt/failpoint.h"

namespace moqo {

namespace {

/// Accounted footprint of one memo entry: the shared PlanSet (dominant
/// term), the stored key, and the index/list bookkeeping around them.
size_t EntryBytes(const SubplanSignature& signature, const PlanSet& frontier) {
  return signature.key.capacity() + sizeof(SubplanSignature) +
         sizeof(void*) * 4 + frontier.ApproxBytes();
}

ShardedLru<SubplanSignature, std::shared_ptr<const PlanSet>>::Options
LruOptions(const SubplanMemo::Options& options) {
  ShardedLru<SubplanSignature, std::shared_ptr<const PlanSet>>::Options lru;
  lru.capacity = options.capacity;
  lru.capacity_bytes = options.capacity_bytes;
  lru.shards = options.shards;
  return lru;
}

}  // namespace

SubplanMemo::SubplanMemo() : SubplanMemo(Options{}) {}

SubplanMemo::SubplanMemo(const Options& options)
    : options_(options), lru_(LruOptions(options)) {
  if (options_.min_tables < 2) options_.min_tables = 2;
}

std::shared_ptr<const PlanSet> SubplanMemo::Lookup(
    const SubplanSignature& signature) {
  auto frontier = lru_.Lookup(signature);
  if (frontier != nullptr || tier_ == nullptr) return frontier;

  // RAM miss: probe the disk tier. Memo keys carry alpha bit-exactly
  // (unlike the plan cache's relaxed identity), so entries demote with
  // alpha 0 and any probe matches — identity is entirely in the key.
  std::string payload;
  if (!tier_->Take(signature.hash, signature.key,
                   std::numeric_limits<double>::infinity(), &payload,
                   nullptr)) {
    return nullptr;
  }
  auto promoted =
      persist::PlanSetCodec::Decode(payload.data(), payload.size(), nullptr);
  if (promoted == nullptr) return nullptr;
  Insert(signature, promoted);
  tier_hits_.fetch_add(1, std::memory_order_relaxed);
  lru_.ReclassifyMissAsHit();
  return promoted;
}

void SubplanMemo::AttachTier(std::shared_ptr<persist::DiskTier> tier) {
  tier_ = std::move(tier);
  if (tier_ == nullptr) {
    lru_.SetEvictionHook(nullptr);
    return;
  }
  auto tier_ptr = tier_;
  lru_.SetEvictionHook(
      [tier_ptr](const SubplanSignature& key,
                 const std::shared_ptr<const PlanSet>& value,
                 size_t /*bytes*/) {
        if (value == nullptr || value->empty()) return;
        std::string payload;
        persist::PlanSetCodec::Append(*value, &payload);
        tier_ptr->Put(key.hash, key.key, 0.0, payload);
      });
}

bool SubplanMemo::Admits(const ParetoSet& frontier, double alpha) {
  if (frontier.empty()) return false;
  const size_t plans = static_cast<size_t>(frontier.size());
  if (options_.max_entry_plans != 0 && plans > options_.max_entry_plans) {
    admission_rejects_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  // Epsilon compactness: reject if any plan is (1+eps)-dominated by an
  // earlier one — the greedy cover of CompactPlanSet would drop it, so the
  // frontier is denser than the service resolves anyway. Approximate
  // frontiers are compact at alpha - 1 by construction (the DP refused
  // every candidate alpha-dominated by a stored plan), which caps the
  // effective epsilon — so the scan is skipped for alpha > 1 and only
  // exact frontiers pay it (early-out on the first dense pair; the accept
  // path is O(n^2 * dims) over frontiers that passed the size cut).
  if (options_.admission_epsilon > 0 && alpha <= 1.0) {
    const double factor = 1.0 + options_.admission_epsilon;
    for (int i = 1; i < frontier.size(); ++i) {
      const CostVector cost = frontier.cost_at(i);
      for (int k = 0; k < i; ++k) {
        if (ApproxDominates(frontier.cost_at(k), cost, factor)) {
          admission_rejects_.fetch_add(1, std::memory_order_relaxed);
          return false;
        }
      }
    }
  }
  return true;
}

void SubplanMemo::Insert(const SubplanSignature& signature,
                         std::shared_ptr<const PlanSet> frontier) {
  if (frontier == nullptr) return;
  // `return_error` drops the publish: equal keys imply identical
  // frontiers, so a lost memo entry can only cost future probe misses.
  MOQO_FAILPOINT_RETURN("memo.insert", );
  const size_t bytes = EntryBytes(signature, *frontier);
  const size_t frontier_size = static_cast<size_t>(frontier->size());
  // Equal keys imply byte-identical frontiers, so a refresh only touches
  // recency and (capacity-dependent) accounting.
  lru_.Insert(signature, std::move(frontier), bytes, frontier_size);
}

void SubplanMemo::ObserveCatalog(const void* catalog, uint64_t epoch) {
  MutexLock epoch_lock(epoch_mu_);
  auto [it, first_sighting] = catalog_epochs_.try_emplace(catalog, epoch);
  if (first_sighting || it->second == epoch) return;
  it->second = epoch;
  lru_.Clear();
  invalidations_.fetch_add(1, std::memory_order_relaxed);
}

SubplanMemo::Stats SubplanMemo::GetStats() const {
  const auto counters = lru_.GetCounters();
  Stats stats;
  stats.hits = counters.hits;
  stats.misses = counters.misses;
  stats.insertions = counters.insertions;
  stats.evictions = counters.evictions;
  stats.admission_rejects =
      admission_rejects_.load(std::memory_order_relaxed);
  stats.invalidations = invalidations_.load(std::memory_order_relaxed);
  stats.tier_hits = tier_hits_.load(std::memory_order_relaxed);
  stats.entries = counters.entries;
  stats.bytes = counters.bytes;
  stats.frontier_plans = counters.weight;
  return stats;
}

}  // namespace moqo
