// Copyright (c) 2026 moqo authors. MIT license.

#include "memo/subplan_memo.h"

#include <bit>

namespace moqo {

namespace {

/// Accounted footprint of one memo entry: the shared PlanSet (dominant
/// term), the stored key, and the index/list bookkeeping around them.
size_t EntryBytes(const SubplanSignature& signature, const PlanSet& frontier) {
  return signature.key.capacity() + sizeof(SubplanSignature) +
         sizeof(void*) * 4 + frontier.ApproxBytes();
}

}  // namespace

SubplanMemo::SubplanMemo() : SubplanMemo(Options{}) {}

SubplanMemo::SubplanMemo(const Options& options) : options_(options) {
  if (options_.min_tables < 2) options_.min_tables = 2;
  const int requested = options_.shards < 1 ? 1 : options_.shards;
  const size_t num_shards = std::bit_ceil(static_cast<size_t>(requested));
  shard_mask_ = num_shards - 1;
  shards_.reserve(num_shards);
  const size_t per_shard = (options_.capacity + num_shards - 1) / num_shards;
  const size_t bytes_per_shard =
      options_.capacity_bytes == 0
          ? 0
          : (options_.capacity_bytes + num_shards - 1) / num_shards;
  for (size_t i = 0; i < num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->capacity = per_shard < 1 ? 1 : per_shard;
    shard->capacity_bytes = bytes_per_shard;
    shards_.push_back(std::move(shard));
  }
}

std::shared_ptr<const PlanSet> SubplanMemo::Lookup(
    const SubplanSignature& signature) {
  Shard& shard = ShardFor(signature);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(signature);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second.frontier;
}

bool SubplanMemo::Admits(const ParetoSet& frontier, double alpha) {
  if (frontier.empty()) return false;
  const size_t plans = static_cast<size_t>(frontier.size());
  if (options_.max_entry_plans != 0 && plans > options_.max_entry_plans) {
    admission_rejects_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  // Epsilon compactness: reject if any plan is (1+eps)-dominated by an
  // earlier one — the greedy cover of CompactPlanSet would drop it, so the
  // frontier is denser than the service resolves anyway. Approximate
  // frontiers are compact at alpha - 1 by construction (the DP refused
  // every candidate alpha-dominated by a stored plan), which caps the
  // effective epsilon — so the scan is skipped for alpha > 1 and only
  // exact frontiers pay it (early-out on the first dense pair; the accept
  // path is O(n^2 * dims) over frontiers that passed the size cut).
  if (options_.admission_epsilon > 0 && alpha <= 1.0) {
    const double factor = 1.0 + options_.admission_epsilon;
    for (int i = 1; i < frontier.size(); ++i) {
      const CostVector cost = frontier.cost_at(i);
      for (int k = 0; k < i; ++k) {
        if (ApproxDominates(frontier.cost_at(k), cost, factor)) {
          admission_rejects_.fetch_add(1, std::memory_order_relaxed);
          return false;
        }
      }
    }
  }
  return true;
}

void SubplanMemo::EvictBack(Shard* shard) {
  auto victim = shard->index.find(*shard->lru.back());
  shard->bytes -= victim->second.bytes;
  shard->frontier_plans -= static_cast<size_t>(victim->second.frontier_size);
  shard->index.erase(victim);
  shard->lru.pop_back();
  evictions_.fetch_add(1, std::memory_order_relaxed);
}

void SubplanMemo::Insert(const SubplanSignature& signature,
                         std::shared_ptr<const PlanSet> frontier) {
  if (frontier == nullptr) return;
  const size_t bytes = EntryBytes(signature, *frontier);
  const int frontier_size = frontier->size();
  Shard& shard = ShardFor(signature);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(signature);
  if (it != shard.index.end()) {
    // Equal keys imply byte-identical frontiers, so a refresh only touches
    // recency and (capacity-dependent) accounting.
    shard.bytes = shard.bytes - it->second.bytes + bytes;
    shard.frontier_plans = shard.frontier_plans -
                           static_cast<size_t>(it->second.frontier_size) +
                           static_cast<size_t>(frontier_size);
    it->second.frontier = std::move(frontier);
    it->second.bytes = bytes;
    it->second.frontier_size = frontier_size;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
    return;
  }
  // Evict LRU-first until the incoming entry fits within the byte budget
  // (primary) and the entry cap (secondary). An entry larger than the
  // whole shard budget empties the shard and is stored anyway — the
  // biggest sub-frontiers are the ones most worth sharing.
  while (!shard.lru.empty() &&
         (shard.lru.size() >= shard.capacity ||
          (shard.capacity_bytes != 0 &&
           shard.bytes + bytes > shard.capacity_bytes))) {
    EvictBack(&shard);
  }
  it = shard.index
           .emplace(signature,
                    Entry{std::move(frontier), {}, bytes, frontier_size})
           .first;
  shard.lru.push_front(&it->first);
  it->second.lru_pos = shard.lru.begin();
  shard.bytes += bytes;
  shard.frontier_plans += static_cast<size_t>(frontier_size);
  insertions_.fetch_add(1, std::memory_order_relaxed);
}

void SubplanMemo::ObserveCatalog(const void* catalog, uint64_t epoch) {
  std::lock_guard<std::mutex> epoch_lock(epoch_mu_);
  auto [it, first_sighting] = catalog_epochs_.try_emplace(catalog, epoch);
  if (first_sighting || it->second == epoch) return;
  it->second = epoch;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
    shard->bytes = 0;
    shard->frontier_plans = 0;
  }
  invalidations_.fetch_add(1, std::memory_order_relaxed);
}

SubplanMemo::Stats SubplanMemo::GetStats() const {
  Stats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.insertions = insertions_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.admission_rejects =
      admission_rejects_.load(std::memory_order_relaxed);
  stats.invalidations = invalidations_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    stats.entries += shard->lru.size();
    stats.bytes += shard->bytes;
    stats.frontier_plans += shard->frontier_plans;
  }
  return stats;
}

size_t SubplanMemo::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->lru.size();
  }
  return total;
}

void SubplanMemo::Clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
    shard->bytes = 0;
    shard->frontier_plans = 0;
  }
}

}  // namespace moqo
