// Copyright (c) 2026 moqo authors. MIT license.
//
// Canonical table-set signatures: the cache key of the cross-query
// SubplanMemo (memo/subplan_memo.h).
//
// A signature captures *everything* that determines the sealed approximate
// Pareto set the DP builds for one table set — so that equal keys imply
// byte-identical frontiers, across requests and across queries:
//
//   * Per member table, in ascending query-local order: the table's full
//     canonical content (statistics, histograms, indexes — from
//     query/canonical), its filter predicates, and the set of join columns
//     incident to it ANYWHERE in the query. The last part is easy to get
//     wrong: IndexScan applicability consults every join predicate touching
//     a table, including joins to tables outside the set, so two
//     occurrences of the same table joined on different columns have
//     different singleton frontiers.
//   * The join-predicate subgraph induced by the set, with member tables
//     renumbered to dense ranks 0..k-1 (rank = position in ascending
//     local-index order) and edges normalized and sorted, exactly like the
//     whole-query encoding.
//   * The objective set in order (fixes cost dimensions), the DP's
//     *internal* pruning precision alpha_i bit-exactly (approximate
//     frontiers depend on it — note the RTA derives alpha_i from the WHOLE
//     query's table count, so only same-sized queries share RTA entries;
//     exact runs share across all sizes), the plan-space switches
//     (bushy, Cartesian heuristic, aggressive deletion), the operator
//     space options (they determine the dense config-id mapping plans
//     embed), and whether the run skips disconnected subsets (derived from
//     whole-query connectivity, which changes which splits have sub-plans).
//
// Invariances (tested in tests/memo/subplan_memo_test.cc): signatures are
// independent of the query name, of join/filter *insertion order*, of
// AddJoin argument order, and of index *translation* — the same subgraph
// embedded at different local indices with the same relative order keys
// identically (dense ranks). They are deliberately NOT invariant under
// member *reordering*: the DP enumerates splits in mask order, approximate
// pruning depends on that insertion order, and equal keys must guarantee
// byte-identical frontiers — a reordered embedding builds a (equally
// valid, but different) frontier and must therefore key differently.

#ifndef MOQO_MEMO_SUBPLAN_KEY_H_
#define MOQO_MEMO_SUBPLAN_KEY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cost/objective.h"
#include "plan/operators.h"
#include "query/query.h"
#include "util/table_set.h"

namespace moqo {

/// An equality-comparable canonical table-set key with precomputed hash.
/// Equality compares the full key, so hash collisions can never alias two
/// different sub-problems.
struct SubplanSignature {
  std::string key;
  uint64_t hash = 0;

  bool operator==(const SubplanSignature& other) const {
    return hash == other.hash && key == other.key;
  }
};

/// Per-run context for building table-set signatures: the per-table and
/// per-edge canonical fragments are encoded once per DP run, so each
/// SignatureFor() is a concatenation plus one hash, not a re-encoding of
/// catalog statistics. Bound to the query; must not outlive it.
class SubplanKeyContext {
 public:
  SubplanKeyContext(const Query& query, const ObjectiveSet& objectives,
                    double alpha, const OperatorRegistry::Options& operators,
                    bool bushy, bool cartesian_heuristic,
                    bool aggressive_delete, bool skip_disconnected);

  /// The canonical signature of optimizing `tables` under this context.
  SubplanSignature SignatureFor(TableSet tables) const;

 private:
  /// One canonical, pre-normalized join edge (smaller endpoint first).
  struct Edge {
    int left_table;
    int right_table;
    const std::string* left_column;
    const std::string* right_column;
  };

  /// Canonical fragment of local table t: content + filters + incident
  /// join columns.
  std::vector<std::string> table_fragments_;
  /// Normalized edges sorted by (left, left_col, right, right_col); the
  /// induced subgraph of any set is a sorted subsequence, and dense-rank
  /// renumbering is order-preserving, so per-set edges need no re-sort.
  std::vector<Edge> edges_;
  /// Objectives, alpha_i, plan-space/operator-space switches.
  std::string suffix_;
};

}  // namespace moqo

namespace std {
template <>
struct hash<moqo::SubplanSignature> {
  size_t operator()(const moqo::SubplanSignature& sig) const noexcept {
    return static_cast<size_t>(sig.hash);
  }
};
}  // namespace std

#endif  // MOQO_MEMO_SUBPLAN_KEY_H_
