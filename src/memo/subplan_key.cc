// Copyright (c) 2026 moqo authors. MIT license.

#include "memo/subplan_key.h"

#include <algorithm>
#include <array>
#include <tuple>

#include "query/canonical.h"

namespace moqo {

SubplanKeyContext::SubplanKeyContext(
    const Query& query, const ObjectiveSet& objectives, double alpha,
    const OperatorRegistry::Options& operators, bool bushy,
    bool cartesian_heuristic, bool aggressive_delete,
    bool skip_disconnected) {
  // Per-table fragments: content, filters (sorted, table index elided —
  // membership is positional), and the sorted set of join columns incident
  // to this occurrence anywhere in the query (IndexScan applicability and
  // hence the singleton frontier depend on them; see header).
  table_fragments_.resize(query.num_tables());
  for (int t = 0; t < query.num_tables(); ++t) {
    std::string* fragment = &table_fragments_[t];
    AppendCanonicalTable(fragment, query.table(t));

    std::vector<const FilterPredicate*> filters =
        query.FiltersForTable(t);
    std::sort(filters.begin(), filters.end(),
              [](const FilterPredicate* x, const FilterPredicate* y) {
                return std::tie(x->column, x->op, x->value, x->value_hi) <
                       std::tie(y->column, y->op, y->value, y->value_hi);
              });
    AppendCanonicalU64(fragment, filters.size());
    for (const FilterPredicate* filter : filters) {
      AppendCanonicalString(fragment, filter->column);
      AppendCanonicalU64(fragment, static_cast<uint64_t>(filter->op));
      AppendCanonicalDouble(fragment, filter->value);
      AppendCanonicalDouble(fragment, filter->value_hi);
    }

    std::vector<const std::string*> incident;
    for (const JoinPredicate& join : query.joins()) {
      if (join.left_table == t) incident.push_back(&join.left_column);
      if (join.right_table == t) incident.push_back(&join.right_column);
    }
    std::sort(incident.begin(), incident.end(),
              [](const std::string* x, const std::string* y) {
                return *x < *y;
              });
    incident.erase(std::unique(incident.begin(), incident.end(),
                               [](const std::string* x,
                                  const std::string* y) { return *x == *y; }),
                   incident.end());
    AppendCanonicalU64(fragment, incident.size());
    for (const std::string* column : incident) {
      AppendCanonicalString(fragment, *column);
    }
  }

  // Edges, normalized (lexicographically smaller endpoint first) and
  // sorted — AddJoin(a, b) vs AddJoin(b, a) and join insertion order wash
  // out here, exactly as in the whole-query encoding.
  edges_.reserve(query.joins().size());
  for (const JoinPredicate& join : query.joins()) {
    Edge edge{join.left_table, join.right_table, &join.left_column,
              &join.right_column};
    if (std::tie(edge.right_table, *edge.right_column) <
        std::tie(edge.left_table, *edge.left_column)) {
      std::swap(edge.left_table, edge.right_table);
      std::swap(edge.left_column, edge.right_column);
    }
    edges_.push_back(edge);
  }
  std::sort(edges_.begin(), edges_.end(), [](const Edge& x, const Edge& y) {
    return std::tie(x.left_table, *x.left_column, x.right_table,
                    *x.right_column) < std::tie(y.left_table, *y.left_column,
                                                y.right_table,
                                                *y.right_column);
  });

  // Run-wide suffix. alpha_i is encoded bit-exactly: the sealed frontier
  // of every table set depends on the pruning precision, so "close" alphas
  // must not share entries. CostModelParams are not encoded — every
  // optimizer constructs the defaults; revisit if they become a knob on
  // the service path.
  AppendCanonicalU64(&suffix_, static_cast<uint64_t>(objectives.size()));
  for (Objective objective : objectives) {
    AppendCanonicalU64(&suffix_, static_cast<uint64_t>(objective));
  }
  AppendCanonicalDouble(&suffix_, alpha);
  uint64_t flags = 0;
  flags |= bushy ? 1u : 0u;
  flags |= cartesian_heuristic ? 2u : 0u;
  flags |= aggressive_delete ? 4u : 0u;
  flags |= skip_disconnected ? 8u : 0u;
  flags |= operators.enable_sampling ? 16u : 0u;
  flags |= operators.enable_index_scan ? 32u : 0u;
  flags |= operators.enable_parallelism ? 64u : 0u;
  AppendCanonicalU64(&suffix_, flags);
  AppendCanonicalU64(&suffix_, operators.sampling_rates.size());
  for (double rate : operators.sampling_rates) {
    AppendCanonicalDouble(&suffix_, rate);
  }
  AppendCanonicalU64(&suffix_, operators.dops.size());
  for (int dop : operators.dops) {
    AppendCanonicalU64(&suffix_, static_cast<uint64_t>(dop));
  }
}

SubplanSignature SubplanKeyContext::SignatureFor(TableSet tables) const {
  // Dense ranks: member local index -> position in ascending member order.
  // Order-preserving, so split enumeration (mask order) and hence the
  // approximate frontier's insertion order are identical in rank space.
  std::array<int, TableSet::kMaxTables> rank_of;
  const std::vector<int> members = tables.Members();
  for (size_t r = 0; r < members.size(); ++r) {
    rank_of[members[r]] = static_cast<int>(r);
  }

  SubplanSignature signature;
  std::string& key = signature.key;
  size_t reserve = suffix_.size() + 64;
  for (int member : members) reserve += table_fragments_[member].size();
  key.reserve(reserve);

  AppendCanonicalU64(&key, members.size());
  for (int member : members) {
    key.append(table_fragments_[member]);
  }

  // Induced edges in rank space. edges_ is sorted and rank mapping is
  // monotone in both endpoints, so the filtered sequence is already in
  // canonical order.
  const auto edge_count_pos = key.size();
  AppendCanonicalU64(&key, 0);  // Patched below.
  uint64_t induced = 0;
  for (const Edge& edge : edges_) {
    if (!tables.Contains(edge.left_table) ||
        !tables.Contains(edge.right_table)) {
      continue;
    }
    ++induced;
    AppendCanonicalU64(&key,
                       static_cast<uint64_t>(rank_of[edge.left_table]));
    AppendCanonicalString(&key, *edge.left_column);
    AppendCanonicalU64(&key,
                       static_cast<uint64_t>(rank_of[edge.right_table]));
    AppendCanonicalString(&key, *edge.right_column);
  }
  for (int i = 0; i < 8; ++i) {
    key[edge_count_pos + i] = static_cast<char>(induced >> (8 * i));
  }

  key.append(suffix_);
  signature.hash = Fnv1aHash(key);
  return signature;
}

}  // namespace moqo
