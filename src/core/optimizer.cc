#include "core/optimizer.h"

#include <cmath>

namespace moqo {

const std::vector<CostVector>& OptimizerResult::frontier() const {
  static const std::vector<CostVector> kEmpty;
  return plan_set ? plan_set->costs() : kEmpty;
}

OptimizerResult OptimizerBase::FinishResult(const MOQOProblem& problem,
                                            const DPPlanGenerator& generator,
                                            const ParetoSet& final_set,
                                            const BoundVector& select_bounds,
                                            double elapsed_ms) const {
  OptimizerResult result;
  result.plan_set = PlanSet::FromParetoSet(final_set);
  const PlanSelection selection =
      SelectPlan(*result.plan_set, problem.weights, select_bounds);
  if (selection.plan != nullptr) {
    result.plan = selection.plan;
    result.cost = selection.cost;
    result.weighted_cost = selection.weighted_cost;
    result.respects_bounds = problem.bounds.size() == 0 ||
                             problem.bounds.Respects(selection.cost);
  }
  result.metrics.optimization_ms = elapsed_ms;
  result.metrics.memory_bytes =
      generator.MemoryBytes() + result.plan_set->MemoryBytes();
  result.metrics.timed_out = generator.stats().timed_out;
  result.metrics.considered_plans = generator.stats().considered_plans;
  result.metrics.last_complete_pareto_count =
      generator.stats().last_complete_pareto_count;
  return result;
}

double RTAInternalPrecision(double alpha_u, int num_tables) {
  if (num_tables <= 1) return alpha_u;
  return std::pow(alpha_u, 1.0 / num_tables);
}

double IRAIterationPrecision(double alpha_u, int iteration,
                             int num_objectives) {
  const double denom =
      num_objectives >= 2 ? 3.0 * num_objectives - 3.0 : 1.0;
  const double exponent = std::pow(2.0, -static_cast<double>(iteration) / denom);
  return std::pow(alpha_u, exponent);
}

}  // namespace moqo
