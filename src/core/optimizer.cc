#include "core/optimizer.h"

#include <cmath>

namespace moqo {

OptimizerResult OptimizerBase::FinishResult(const MOQOProblem& problem,
                                            const DPPlanGenerator& generator,
                                            const ParetoSet& final_set,
                                            const PlanNode* plan,
                                            double elapsed_ms) const {
  OptimizerResult result;
  if (plan != nullptr) {
    result.plan_arena = std::make_shared<Arena>();
    result.plan = DeepCopyPlan(plan, result.plan_arena.get());
  }
  if (plan != nullptr) {
    result.cost = plan->cost;
    result.weighted_cost = problem.weights.WeightedCost(plan->cost);
    result.respects_bounds = problem.bounds.size() == 0 ||
                             problem.bounds.Respects(plan->cost);
  }
  result.frontier = final_set.Frontier();
  result.metrics.optimization_ms = elapsed_ms;
  result.metrics.memory_bytes = generator.MemoryBytes();
  result.metrics.timed_out = generator.stats().timed_out;
  result.metrics.considered_plans = generator.stats().considered_plans;
  result.metrics.last_complete_pareto_count =
      generator.stats().last_complete_pareto_count;
  result.metrics.frontier_size = final_set.size();
  return result;
}

double RTAInternalPrecision(double alpha_u, int num_tables) {
  if (num_tables <= 1) return alpha_u;
  return std::pow(alpha_u, 1.0 / num_tables);
}

double IRAIterationPrecision(double alpha_u, int iteration,
                             int num_objectives) {
  const double denom =
      num_objectives >= 2 ? 3.0 * num_objectives - 3.0 : 1.0;
  const double exponent = std::pow(2.0, -static_cast<double>(iteration) / denom);
  return std::pow(alpha_u, exponent);
}

}  // namespace moqo
