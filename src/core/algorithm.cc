// Copyright (c) 2026 moqo authors. MIT license.

#include "core/algorithm.h"

#include "core/exa.h"
#include "core/ira.h"
#include "core/rta.h"
#include "core/selinger.h"

namespace moqo {

const char* AlgorithmName(AlgorithmKind kind) {
  switch (kind) {
    case AlgorithmKind::kExa: return "EXA";
    case AlgorithmKind::kRta: return "RTA";
    case AlgorithmKind::kIra: return "IRA";
    case AlgorithmKind::kSelinger: return "Selinger";
    case AlgorithmKind::kWeightedSum: return "WeightedSum";
  }
  return "?";
}

std::unique_ptr<OptimizerBase> MakeOptimizer(AlgorithmKind kind,
                                             const OptimizerOptions& options) {
  switch (kind) {
    case AlgorithmKind::kExa:
      return std::make_unique<ExactMOQO>(options);
    case AlgorithmKind::kRta:
      return std::make_unique<RTAOptimizer>(options);
    case AlgorithmKind::kIra:
      return std::make_unique<IRAOptimizer>(options);
    case AlgorithmKind::kSelinger:
      return std::make_unique<SelingerOptimizer>(options);
    case AlgorithmKind::kWeightedSum:
      return std::make_unique<WeightedSumOptimizer>(options);
  }
  return nullptr;
}

}  // namespace moqo
