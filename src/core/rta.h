// Copyright (c) 2026 moqo authors. MIT license.
//
// RTAOptimizer: the Representative-Tradeoffs Algorithm (Section 6,
// Algorithm 2) — an approximation scheme for *weighted* MOQO.
//
// The RTA generates an alpha_U-approximate Pareto set using approximate-
// dominance pruning with internal precision alpha_i = |Q|-th root of
// alpha_U; by Theorem 3 / Corollary 1 the selected plan's weighted cost is
// within factor alpha_U of the optimum for any weights. Bounds are ignored
// by design (Algorithm 2 calls SelectBest with infinite bounds); use the
// IRA for bounded-weighted MOQO.

#ifndef MOQO_CORE_RTA_H_
#define MOQO_CORE_RTA_H_

#include "core/optimizer.h"

namespace moqo {

/// Approximation scheme for weighted MOQO (Definition 4).
class RTAOptimizer : public OptimizerBase {
 public:
  explicit RTAOptimizer(const OptimizerOptions& options)
      : OptimizerBase(options) {}

  OptimizerResult Optimize(const MOQOProblem& problem) override;
};

}  // namespace moqo

#endif  // MOQO_CORE_RTA_H_
