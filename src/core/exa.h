// Copyright (c) 2026 moqo authors. MIT license.
//
// ExactMOQO (EXA): the exact multi-objective optimizer by Ganguly et al.,
// as analyzed in Section 5 (Algorithm 1). Generates the full Pareto plan
// set per table set via dynamic programming with multi-objective dominance
// pruning, then selects the best plan for the given weights and bounds.
// Extended (like the paper's implementation) to bushy plans and timeouts.

#ifndef MOQO_CORE_EXA_H_
#define MOQO_CORE_EXA_H_

#include "core/optimizer.h"

namespace moqo {

/// Exact MOQO algorithm. Guarantees a 1-approximate (optimal) solution
/// when it completes without timeout (Definition 5).
class ExactMOQO : public OptimizerBase {
 public:
  explicit ExactMOQO(const OptimizerOptions& options)
      : OptimizerBase(options) {}

  OptimizerResult Optimize(const MOQOProblem& problem) override;
};

}  // namespace moqo

#endif  // MOQO_CORE_EXA_H_
