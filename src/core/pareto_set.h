// Copyright (c) 2026 moqo authors. MIT license.
//
// ParetoSet: the per-table-set plan container with the pruning procedure of
// Algorithm 1 (exact) and Algorithm 2 (approximate).
//
// Exact pruning (EXA, Algorithm 1, Prune):
//   insert pN iff no stored p has c(p) "dominating" c(pN); then delete every
//   stored p whose cost the new plan dominates.
//
// Approximate pruning (RTA, Algorithm 2, Prune with precision alpha_i):
//   insert pN iff no stored p approximately dominates it, i.e.
//   ¬∃p: c(p) ⪯_alpha c(pN). Deletion still uses *plain* dominance: the
//   paper explicitly warns (Section 6.2) that also deleting approximately
//   dominated plans lets stored vectors drift arbitrarily far from the real
//   Pareto frontier, destroying the near-optimality guarantee. The
//   guarantee-destroying variant is available behind an explicit flag for
//   the ablation bench only.
//
// Performance: dominance checks are the optimizer's innermost loop — every
// candidate is compared against every stored plan, and sets grow into the
// tens of thousands for many-objective instances (Section 5.1). Storage is
// struct-of-arrays: one contiguous row-major double matrix of cost
// components plus a parallel plan-pointer array, so the dominance scans
// stream over dense doubles without dragging plan pointers through the
// cache — and so the RowLeq kernel (core/dominance_kernel.h) can compare
// four components per AVX2 instruction where the CPU supports it. Three
// further optimizations keep the scans tractable without changing
// semantics:
//
//  * Hoisted precision. The alpha multiply of approximate dominance is
//    applied once per candidate (scaling it into a stack-local threshold
//    row), not once per stored-plan comparison.
//  * Block summaries. Rows are grouped into blocks of kBlockSize; each
//    block keeps the component-wise min and max of its live cost rows
//    (+inf/-inf when the block has none). A block can contain a dominator
//    of candidate c only if block_min <= alpha*c component-wise, and the
//    new plan can dominate a block member only if c <= block_max
//    component-wise — one row comparison skips up to kBlockSize rows.
//  * Tombstone deletion. Dominated rows are unlinked lazily
//    (plan = nullptr) instead of compacting the matrix on every insert;
//    compaction runs when tombstones exceed half the rows, and the DP
//    driver Seal()s a set once its table set is fully processed.
//
// Thread-safety: none while mutating, but every const member is genuinely
// read-only except WouldInsert (which touches the mutable hot-rejecter
// cache). The parallel DP driver therefore shares *sealed* sets across
// threads freely and calls WouldInsert/Prune only on the one unsealed set
// its task owns.

#ifndef MOQO_CORE_PARETO_SET_H_
#define MOQO_CORE_PARETO_SET_H_

#include <array>
#include <vector>

#include "cost/cost_vector.h"
#include "plan/plan_node.h"

namespace moqo {

/// A set of mutually non-dominated plans for one table set.
class ParetoSet {
 public:
  ParetoSet() = default;

  /// Pruning precision: 1.0 reproduces the exact EXA behaviour; > 1.0 the
  /// RTA behaviour. `aggressive_delete` enables the guarantee-destroying
  /// deletion rule for the ablation study; never set it in production code.
  struct PruneOptions {
    double alpha = 1.0;
    bool aggressive_delete = false;
  };

  /// Insertion check only: would a plan with cost `cost` survive pruning?
  /// Lets the DP driver cost-evaluate candidates on the stack and
  /// arena-allocate only survivors.
  bool WouldInsert(const CostVector& cost, const PruneOptions& options) const;

  /// Attempts to insert `plan`; returns true iff the plan was kept.
  /// Postcondition: no stored live plan strictly dominates another.
  bool Prune(const PlanNode* plan, const PruneOptions& options);

  /// Convenience overload with exact pruning.
  bool Prune(const PlanNode* plan) { return Prune(plan, PruneOptions()); }

  /// Number of live (non-deleted) plans.
  int size() const { return live_; }
  bool empty() const { return live_ == 0; }

  /// Dense access; valid only after Seal() (the DP driver seals every
  /// completed table set; freshly built sets must be sealed before
  /// iteration).
  const PlanNode* at(int i) const { return plans_[i]; }
  /// Gathers row `i` of the cost matrix into a value-type vector.
  CostVector cost_at(int i) const;

  /// Compacts tombstones and rebuilds block summaries; afterwards
  /// entries 0..size()-1 are exactly the live plans.
  void Seal();

  /// Replaces the contents with `plans` (all non-null, each carrying its
  /// cost), already known to be a valid sealed frontier in its original
  /// insertion order, and seals. No dominance checks run: this is the
  /// cross-query subplan memo's hit path — re-running Prune over a frontier
  /// that survived pruning once reproduces the identical set (no final plan
  /// plainly dominates another, and no final plan is alpha-dominated by an
  /// earlier one), so the scans are skipped outright. The resulting sealed
  /// state is byte-identical to re-building: same rows, same order, same
  /// block summaries.
  void LoadSealed(const std::vector<const PlanNode*>& plans);

  /// Stored live plans, oldest first.
  std::vector<const PlanNode*> plans() const;

  void clear();

  /// Bytes used by this container (for the memory metric of Figs. 5/9/10).
  size_t MemoryBytes() const {
    return plans_.capacity() * sizeof(const PlanNode*) +
           (costs_.capacity() + block_min_.capacity() +
            block_max_.capacity()) *
               sizeof(double) +
           sizeof(*this);
  }

  /// SelectBest of Algorithm 1: the plan minimizing weighted cost among
  /// plans respecting `bounds`; if none respects them, the plan minimizing
  /// weighted cost overall. Returns nullptr iff the set is empty.
  const PlanNode* SelectBest(const WeightVector& weights,
                             const BoundVector& bounds) const;

  /// The plan minimizing weighted cost (no bounds). Null iff empty.
  const PlanNode* SelectBestWeighted(const WeightVector& weights) const;

  /// Cost vectors of all live plans (the (approximate) Pareto frontier).
  std::vector<CostVector> Frontier() const;

 private:
  static constexpr int kBlockSize = 32;

  int rows() const { return static_cast<int>(plans_.size()); }

  int NumBlocks() const {
    return (rows() + kBlockSize - 1) / kBlockSize;
  }

  /// Recomputes min/max summaries of block `b` from its live rows.
  void RebuildBlock(int b);

  /// Drops tombstones and rebuilds all blocks.
  void Compact();

  /// Active cost dimensions; fixed by the first insert.
  int dims_ = 0;
  int live_ = 0;
  /// Row i's plan; nullptr = tombstone. Parallel to costs_ rows.
  std::vector<const PlanNode*> plans_;
  /// Row-major rows() x dims_ matrix of cost components (tombstoned rows
  /// keep their stale values; plans_ is the liveness authority).
  std::vector<double> costs_;
  /// Component-wise min/max over live rows per block, NumBlocks() x dims_;
  /// +inf / -inf for blocks with no live rows.
  std::vector<double> block_min_;
  std::vector<double> block_max_;

  /// Move-to-front cache of recently rejecting cost rows: consecutive
  /// candidates usually come from the same split and are rejected by the
  /// same stored plan. Purely an accelerator; stale copies are harmless
  /// because every cached row belonged to a stored plan whose dominance
  /// already implied rejection (tombstoning only ever happens to plans
  /// dominated by a *kept* plan, which then dominates the same candidates).
  static constexpr int kHotSlots = 4;
  mutable std::array<double, kHotSlots * kNumObjectives> hot_{};
  mutable int hot_used_ = 0;
  mutable int hot_next_ = 0;
};

}  // namespace moqo

#endif  // MOQO_CORE_PARETO_SET_H_
