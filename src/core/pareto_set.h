// Copyright (c) 2026 moqo authors. MIT license.
//
// ParetoSet: the per-table-set plan container with the pruning procedure of
// Algorithm 1 (exact) and Algorithm 2 (approximate).
//
// Exact pruning (EXA, Algorithm 1, Prune):
//   insert pN iff no stored p has c(p) "dominating" c(pN); then delete every
//   stored p whose cost the new plan dominates.
//
// Approximate pruning (RTA, Algorithm 2, Prune with precision alpha_i):
//   insert pN iff no stored p approximately dominates it, i.e.
//   ¬∃p: c(p) ⪯_alpha c(pN). Deletion still uses *plain* dominance: the
//   paper explicitly warns (Section 6.2) that also deleting approximately
//   dominated plans lets stored vectors drift arbitrarily far from the real
//   Pareto frontier, destroying the near-optimality guarantee. The
//   guarantee-destroying variant is available behind an explicit flag for
//   the ablation bench only.
//
// Performance: dominance checks are the optimizer's innermost loop — every
// candidate is compared against every stored plan, and sets grow into the
// tens of thousands for many-objective instances (Section 5.1). Two
// optimizations keep this tractable without changing semantics:
//
//  * Block summaries. Entries are grouped into blocks of kBlockSize; each
//    block keeps the component-wise min and max of its live cost vectors.
//    A block can contain a dominator of candidate c only if
//    block_min <= alpha*c component-wise, and the new plan can dominate a
//    block member only if c <= block_max component-wise — one vector
//    comparison skips up to kBlockSize entries.
//  * Tombstone deletion. Dominated entries are unlinked lazily
//    (plan = nullptr) instead of compacting the vector on every insert;
//    compaction runs when tombstones exceed half the slots, and the DP
//    driver Seal()s a set once its table set is fully processed.

#ifndef MOQO_CORE_PARETO_SET_H_
#define MOQO_CORE_PARETO_SET_H_

#include <vector>

#include "cost/cost_vector.h"
#include "plan/plan_node.h"

namespace moqo {

/// A set of mutually non-dominated plans for one table set.
class ParetoSet {
 public:
  ParetoSet() = default;

  /// Pruning precision: 1.0 reproduces the exact EXA behaviour; > 1.0 the
  /// RTA behaviour. `aggressive_delete` enables the guarantee-destroying
  /// deletion rule for the ablation study; never set it in production code.
  struct PruneOptions {
    double alpha = 1.0;
    bool aggressive_delete = false;
  };

  /// Insertion check only: would a plan with cost `cost` survive pruning?
  /// Lets the DP driver cost-evaluate candidates on the stack and
  /// arena-allocate only survivors.
  bool WouldInsert(const CostVector& cost, const PruneOptions& options) const;

  /// Attempts to insert `plan`; returns true iff the plan was kept.
  /// Postcondition: no stored live plan strictly dominates another.
  bool Prune(const PlanNode* plan, const PruneOptions& options);

  /// Convenience overload with exact pruning.
  bool Prune(const PlanNode* plan) { return Prune(plan, PruneOptions()); }

  /// Number of live (non-deleted) plans.
  int size() const { return live_; }
  bool empty() const { return live_ == 0; }

  /// Dense access; valid only after Seal() (the DP driver seals every
  /// completed table set; freshly built sets must be sealed before
  /// iteration).
  const PlanNode* at(int i) const { return entries_[i].plan; }
  const CostVector& cost_at(int i) const { return entries_[i].cost; }

  /// Compacts tombstones and rebuilds block summaries; afterwards
  /// entries 0..size()-1 are exactly the live plans.
  void Seal();

  /// Stored live plans, oldest first.
  std::vector<const PlanNode*> plans() const;

  void clear();

  /// Bytes used by this container (for the memory metric of Figs. 5/9/10).
  size_t MemoryBytes() const {
    return entries_.capacity() * sizeof(Entry) +
           block_min_.capacity() * 2 * sizeof(CostVector) + sizeof(*this);
  }

  /// SelectBest of Algorithm 1: the plan minimizing weighted cost among
  /// plans respecting `bounds`; if none respects them, the plan minimizing
  /// weighted cost overall. Returns nullptr iff the set is empty.
  const PlanNode* SelectBest(const WeightVector& weights,
                             const BoundVector& bounds) const;

  /// The plan minimizing weighted cost (no bounds). Null iff empty.
  const PlanNode* SelectBestWeighted(const WeightVector& weights) const;

  /// Cost vectors of all live plans (the (approximate) Pareto frontier).
  std::vector<CostVector> Frontier() const;

 private:
  struct Entry {
    CostVector cost;  ///< Copy of plan->cost, contiguous for fast scans.
    const PlanNode* plan;  ///< nullptr = tombstone.
  };

  static constexpr int kBlockSize = 32;

  int NumBlocks() const {
    return static_cast<int>((entries_.size() + kBlockSize - 1) / kBlockSize);
  }

  /// Recomputes min/max summaries of block `b` from its live entries.
  void RebuildBlock(int b);

  /// Drops tombstones and rebuilds all blocks.
  void Compact();

  std::vector<Entry> entries_;
  /// Component-wise min/max over live entries per block; empty vectors for
  /// blocks with no live entries.
  std::vector<CostVector> block_min_;
  std::vector<CostVector> block_max_;
  int live_ = 0;

  /// Move-to-front cache of recently rejecting cost vectors: consecutive
  /// candidates usually come from the same split and are rejected by the
  /// same stored plan. Purely an accelerator; stale copies are harmless
  /// because every cached vector belonged to a stored plan whose dominance
  /// already implied rejection (tombstoning only ever happens to plans
  /// dominated by a *kept* plan, which then dominates the same candidates).
  static constexpr int kHotSlots = 4;
  mutable CostVector hot_[kHotSlots];
  mutable int hot_used_ = 0;
  mutable int hot_next_ = 0;
};

}  // namespace moqo

#endif  // MOQO_CORE_PARETO_SET_H_
