// Copyright (c) 2026 moqo authors. MIT license.

#include "core/plan_set.h"

#include <limits>
#include <unordered_map>

namespace moqo {

namespace {

/// Deep copy preserving DAG sharing: every distinct source node is copied
/// exactly once. Frontier plans of one table set share most of their
/// sub-plans through the DP memo, so the naive per-plan recursive copy
/// would multiply the footprint by the frontier size.
const PlanNode* CopyShared(
    const PlanNode* node, Arena* arena,
    std::unordered_map<const PlanNode*, const PlanNode*>* copied) {
  if (node == nullptr) return nullptr;
  auto it = copied->find(node);
  if (it != copied->end()) return it->second;
  PlanNode* copy = arena->New<PlanNode>(*node);
  copy->left = CopyShared(node->left, arena, copied);
  copy->right = CopyShared(node->right, arena, copied);
  (*copied)[node] = copy;
  return copy;
}

}  // namespace

std::shared_ptr<const PlanSet> PlanSet::FromParetoSet(const ParetoSet& set) {
  if (set.empty()) return Empty();
  // make_shared needs a public constructor; the private one is reached
  // through this local subclass trampoline.
  struct Constructible : PlanSet {};
  auto result = std::make_shared<Constructible>();
  std::unordered_map<const PlanNode*, const PlanNode*> copied;
  copied.reserve(static_cast<size_t>(set.size()) * 2);
  const std::vector<const PlanNode*> plans = set.plans();
  result->plans_.reserve(plans.size());
  result->costs_.reserve(plans.size());
  for (const PlanNode* plan : plans) {
    result->plans_.push_back(CopyShared(plan, &result->arena_, &copied));
    result->costs_.push_back(plan->cost);
  }
  return result;
}

std::shared_ptr<const PlanSet> PlanSet::Empty() {
  struct Constructible : PlanSet {};
  static const std::shared_ptr<const PlanSet> empty =
      std::make_shared<Constructible>();
  return empty;
}

PlanSelection SelectPlan(const PlanSet& set, const WeightVector& weights,
                         const BoundVector& bounds) {
  PlanSelection best_bounded;
  double best_bounded_cost = std::numeric_limits<double>::infinity();
  PlanSelection best_any;
  double best_any_cost = std::numeric_limits<double>::infinity();
  const bool use_bounds = bounds.size() > 0 && !bounds.AllUnbounded();
  for (int i = 0; i < set.size(); ++i) {
    const CostVector& cost = set.cost(i);
    const double weighted = weights.WeightedCost(cost);
    if (weighted < best_any_cost) {
      best_any_cost = weighted;
      best_any = PlanSelection{set.plan(i), i, cost, weighted};
    }
    if (use_bounds && weighted < best_bounded_cost && bounds.Respects(cost)) {
      best_bounded_cost = weighted;
      best_bounded = PlanSelection{set.plan(i), i, cost, weighted};
    }
  }
  if (use_bounds && best_bounded.plan != nullptr) return best_bounded;
  return best_any;
}

}  // namespace moqo
