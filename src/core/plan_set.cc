// Copyright (c) 2026 moqo authors. MIT license.

#include "core/plan_set.h"

#include <limits>
#include <unordered_map>

#include "rt/failpoint.h"

namespace moqo {

namespace {

/// Deep copy preserving DAG sharing: every distinct source node is copied
/// exactly once. Frontier plans of one table set share most of their
/// sub-plans through the DP memo, so the naive per-plan recursive copy
/// would multiply the footprint by the frontier size.
const PlanNode* CopyShared(
    const PlanNode* node, Arena* arena,
    std::unordered_map<const PlanNode*, const PlanNode*>* copied) {
  if (node == nullptr) return nullptr;
  auto it = copied->find(node);
  if (it != copied->end()) return it->second;
  PlanNode* copy = arena->New<PlanNode>(*node);
  copy->left = CopyShared(node->left, arena, copied);
  copy->right = CopyShared(node->right, arena, copied);
  (*copied)[node] = copy;
  return copy;
}

}  // namespace

std::shared_ptr<const PlanSet> PlanSet::FromParetoSet(const ParetoSet& set) {
  if (set.empty()) return Empty();
  // Frontier snapshots deep-copy into a fresh arena; arm with `oom` to
  // fail the copy before any allocation happens.
  MOQO_FAILPOINT("planset.snapshot");
  // make_shared needs a public constructor; the private one is reached
  // through this local subclass trampoline.
  struct Constructible : PlanSet {};
  auto result = std::make_shared<Constructible>();
  std::unordered_map<const PlanNode*, const PlanNode*> copied;
  copied.reserve(static_cast<size_t>(set.size()) * 2);
  const std::vector<const PlanNode*> plans = set.plans();
  result->plans_.reserve(plans.size());
  result->costs_.reserve(plans.size());
  for (const PlanNode* plan : plans) {
    result->plans_.push_back(CopyShared(plan, &result->arena_, &copied));
    result->costs_.push_back(plan->cost);
  }
  return result;
}

std::shared_ptr<const PlanSet> PlanSet::FromParetoSetRemapped(
    const ParetoSet& set, const std::vector<int>& table_map) {
  if (set.empty()) return Empty();
  MOQO_FAILPOINT("planset.snapshot.remap");
  struct Constructible : PlanSet {};
  auto result = std::make_shared<Constructible>();
  std::unordered_map<const PlanNode*, const PlanNode*> copied;
  copied.reserve(static_cast<size_t>(set.size()) * 2);
  const std::vector<const PlanNode*> plans = set.plans();
  result->plans_.reserve(plans.size());
  result->costs_.reserve(plans.size());
  for (const PlanNode* plan : plans) {
    result->plans_.push_back(
        DeepCopyPlanRemapped(plan, &result->arena_, table_map, &copied));
    result->costs_.push_back(plan->cost);
  }
  return result;
}

std::shared_ptr<const PlanSet> PlanSet::Empty() {
  struct Constructible : PlanSet {};
  static const std::shared_ptr<const PlanSet> empty =
      std::make_shared<Constructible>();
  return empty;
}

std::shared_ptr<const PlanSet> PlanSet::FromIndices(
    const PlanSet& source, const std::vector<int>& indices) {
  if (indices.empty()) return Empty();
  struct Constructible : PlanSet {};
  auto result = std::make_shared<Constructible>();
  std::unordered_map<const PlanNode*, const PlanNode*> copied;
  copied.reserve(indices.size() * 2);
  result->plans_.reserve(indices.size());
  result->costs_.reserve(indices.size());
  for (int i : indices) {
    result->plans_.push_back(
        CopyShared(source.plan(i), &result->arena_, &copied));
    result->costs_.push_back(source.cost(i));
  }
  return result;
}

std::shared_ptr<const PlanSet> CompactPlanSet(
    std::shared_ptr<const PlanSet> set, double epsilon, int max_size) {
  if (set == nullptr || set->size() <= 1) return set;
  if (epsilon < 0) epsilon = 0;

  // Greedy cover in stored order: keep a plan unless an already-kept one
  // (1+eps)-dominates it. Every dropped plan is covered by construction;
  // doubling eps shrinks the cover monotonically toward 1 (any plan covers
  // everything for large enough eps, costs being finite and positive), so
  // a max_size of >= 1 is always reachable.
  std::vector<int> kept;
  for (double eps = epsilon;; eps = eps > 0 ? eps * 2 : 0.01) {
    kept.clear();
    const double factor = 1.0 + eps;
    for (int i = 0; i < set->size(); ++i) {
      bool covered = false;
      for (int k : kept) {
        if (ApproxDominates(set->cost(k), set->cost(i), factor)) {
          covered = true;
          break;
        }
      }
      if (!covered) kept.push_back(i);
      // Over the cap already: this pass's result is discarded, so don't
      // finish the O(n * kept) scan — double eps and retry (huge
      // frontiers are exactly the case this function exists for).
      if (max_size > 0 && static_cast<int>(kept.size()) > max_size) break;
    }
    if (max_size <= 0 || static_cast<int>(kept.size()) <= max_size) break;
    // Zero-component corner case: a dimension where some cost is 0 can
    // keep plans mutually uncoverable at any eps; cap by truncation then
    // (stored order, so the earliest — typically cheapest-found — stay).
    if (eps > 1e12) {
      kept.resize(max_size);
      break;
    }
  }
  if (static_cast<int>(kept.size()) == set->size()) return set;
  return PlanSet::FromIndices(*set, kept);
}

PlanSelection SelectPlan(const PlanSet& set, const WeightVector& weights,
                         const BoundVector& bounds) {
  PlanSelection best_bounded;
  double best_bounded_cost = std::numeric_limits<double>::infinity();
  PlanSelection best_any;
  double best_any_cost = std::numeric_limits<double>::infinity();
  const bool use_bounds = bounds.size() > 0 && !bounds.AllUnbounded();
  for (int i = 0; i < set.size(); ++i) {
    const CostVector& cost = set.cost(i);
    const double weighted = weights.WeightedCost(cost);
    if (weighted < best_any_cost) {
      best_any_cost = weighted;
      best_any = PlanSelection{set.plan(i), i, cost, weighted};
    }
    if (use_bounds && weighted < best_bounded_cost && bounds.Respects(cost)) {
      best_bounded_cost = weighted;
      best_bounded = PlanSelection{set.plan(i), i, cost, weighted};
    }
  }
  if (use_bounds && best_bounded.plan != nullptr) return best_bounded;
  return best_any;
}

}  // namespace moqo
