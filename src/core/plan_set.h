// Copyright (c) 2026 moqo authors. MIT license.
//
// PlanSet: the immutable, shareable product of one optimization run — the
// full (approximate) Pareto set *with plans*, not just cost vectors.
//
// The paper frames the approximate Pareto set as the real output of
// many-objective optimization: the single returned plan is one
// scalarization of it ("users cannot make optimal choices for bounds and
// weights if they are not aware of the possible tradeoffs", Section 4,
// Figure 4). A PlanSet snapshots the optimizer's final ParetoSet — plans
// deep-copied into a private arena with DAG sharing preserved — so callers,
// caches, and service responses can alias one frontier via
// shared_ptr<const PlanSet> and answer any later preference (weights +
// bounds) by an O(|frontier|) SelectPlan scan instead of a new DP run.

#ifndef MOQO_CORE_PLAN_SET_H_
#define MOQO_CORE_PLAN_SET_H_

#include <memory>
#include <vector>

#include "core/pareto_set.h"
#include "cost/cost_vector.h"
#include "plan/plan_node.h"
#include "util/arena.h"

namespace moqo {

namespace persist {
class PlanSetCodec;
}  // namespace persist

/// An immutable set of mutually non-dominated plans for one query, owning
/// the storage of every plan it exposes. Thread-safe to share: all access
/// is const after construction.
class PlanSet {
 public:
  /// Snapshots the live plans of `set` (sealed or not). Sub-plans shared
  /// between frontier plans stay shared in the copy, so the footprint is
  /// proportional to the number of distinct nodes, not to
  /// |frontier| * plan size.
  static std::shared_ptr<const PlanSet> FromParetoSet(const ParetoSet& set);

  /// Shared empty singleton (no arena blocks).
  static std::shared_ptr<const PlanSet> Empty();

  /// FromParetoSet with table renumbering: every copied node's table
  /// references are rewritten through `table_map` (new = table_map[old];
  /// see DeepCopyPlanRemapped). DAG sharing is preserved. The cross-query
  /// subplan memo publishes sealed per-table-set frontiers through this,
  /// rebasing plans from query-local indices into the set's canonical
  /// dense-rank space; costs are copied verbatim (they are index-free).
  static std::shared_ptr<const PlanSet> FromParetoSetRemapped(
      const ParetoSet& set, const std::vector<int>& table_map);

  /// Deep-copies the plans at `indices` (in the given order) into a new
  /// set, preserving DAG sharing among them. Building block of
  /// CompactPlanSet; `indices` must be valid and duplicate-free.
  static std::shared_ptr<const PlanSet> FromIndices(
      const PlanSet& source, const std::vector<int>& indices);

  int size() const { return static_cast<int>(plans_.size()); }
  bool empty() const { return plans_.empty(); }

  const PlanNode* plan(int i) const { return plans_[i]; }
  const CostVector& cost(int i) const { return costs_[i]; }

  /// All cost vectors, index-aligned with plan(i) — the (approximate)
  /// Pareto frontier of Figure 4.
  const std::vector<CostVector>& costs() const { return costs_; }

  /// Arena + container footprint in bytes.
  size_t MemoryBytes() const {
    return arena_.reserved_bytes() + plans_.capacity() * sizeof(plans_[0]) +
           costs_.capacity() * sizeof(costs_[0]) + sizeof(*this);
  }

  /// Resident footprint for cache accounting — what one cached entry costs
  /// the byte-budget PlanCache. O(1): the arena tracks its reservation.
  size_t ApproxBytes() const { return MemoryBytes(); }

  PlanSet(const PlanSet&) = delete;
  PlanSet& operator=(const PlanSet&) = delete;

 private:
  PlanSet() = default;

  /// The on-disk codec (src/persist/plan_set_codec.h) materializes decoded
  /// snapshots directly into a fresh set's arena — the only writer besides
  /// the factory functions above.
  friend class persist::PlanSetCodec;

  /// First block sized for a handful of nodes, doubling up to the default
  /// block size: snapshots live as long as a cache/memo entry references
  /// them, and most frontiers are far smaller than one 64 KiB block —
  /// pinning one per entry would waste most of a byte-budgeted cache's
  /// capacity on slack (the ApproxBytes the caches account is reserved,
  /// not allocated, bytes).
  Arena arena_{size_t{1} << 10, Arena::kDefaultBlockBytes};
  std::vector<const PlanNode*> plans_;
  std::vector<CostVector> costs_;
};

/// One scalarization of a PlanSet: the plan a preference picks, plus its
/// derived quantities. `plan` points into the PlanSet's arena — keep the
/// set alive for as long as the selection is used.
struct PlanSelection {
  const PlanNode* plan = nullptr;  ///< Null iff the set is empty.
  int index = -1;                  ///< Position within the set; -1 if null.
  CostVector cost;
  double weighted_cost = 0;
};

/// SelectBest of Algorithm 1, applied at request time over a finished
/// frontier: the plan minimizing weighted cost among plans respecting
/// `bounds`; if none respects them (or `bounds` is empty / all-infinite),
/// the plan minimizing weighted cost overall. O(|set|) — the step that
/// turns a cached frontier into an answer for a fresh preference.
PlanSelection SelectPlan(const PlanSet& set, const WeightVector& weights,
                         const BoundVector& bounds = BoundVector());

/// Epsilon-coverage compaction for many-objective frontiers: returns a
/// subset of `set` in which every dropped plan is approximately dominated
/// with precision (1 + epsilon) by a kept plan, so the subset still
/// (1 + epsilon)-covers everything the original covered (an alpha-
/// approximate Pareto set compacts to an alpha*(1+epsilon)-approximate
/// one). When the greedy cover still exceeds `max_size` (> 0), epsilon is
/// doubled until it fits — frontier sizes explode with objective count
/// (Section 5.1), and the cache would otherwise pin megabytes per entry.
/// Returns `set` unchanged (no copy) when nothing is dropped.
std::shared_ptr<const PlanSet> CompactPlanSet(
    std::shared_ptr<const PlanSet> set, double epsilon, int max_size);

}  // namespace moqo

#endif  // MOQO_CORE_PLAN_SET_H_
