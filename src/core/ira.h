// Copyright (c) 2026 moqo authors. MIT license.
//
// IRAOptimizer: the Iterative-Refinement Algorithm (Section 7,
// Algorithm 3) — an approximation scheme for *bounded-weighted* MOQO.
//
// An alpha-approximate Pareto set need not contain a near-optimal plan once
// hard bounds are present (Figure 8): two nearly identical cost vectors can
// fall on opposite sides of a bound. The IRA therefore iterates: each
// iteration generates an alpha-approximate Pareto set (via the RTA engine),
// with alpha refined per iteration as alpha_U^(2^(-i/(3l-3))); it stops as
// soon as the stopping condition of Algorithm 3 certifies that the best
// generated plan is an alpha_U-approximate solution (Theorem 6):
//
//   stop iff  !exists p in P:  c(p) respects alpha*B  and
//             C_W(c(p)) / alpha < C_W(c(popt)) / alpha_U
//
// Theorem 8 guarantees termination; the refinement policy makes the last
// iteration dominate total cost, so redundant work is negligible
// (Theorem 7).

#ifndef MOQO_CORE_IRA_H_
#define MOQO_CORE_IRA_H_

#include "core/optimizer.h"

namespace moqo {

/// Approximation scheme for bounded-weighted MOQO (Definition 4).
class IRAOptimizer : public OptimizerBase {
 public:
  explicit IRAOptimizer(const OptimizerOptions& options)
      : OptimizerBase(options) {}

  OptimizerResult Optimize(const MOQOProblem& problem) override;

  /// Exposed for tests: evaluates the Algorithm-3 stopping condition on a
  /// generated plan set. Returns true iff the IRA may terminate.
  static bool StoppingConditionMet(const ParetoSet& set,
                                   const WeightVector& weights,
                                   const BoundVector& bounds,
                                   const PlanNode* popt, double alpha,
                                   double alpha_u);
};

}  // namespace moqo

#endif  // MOQO_CORE_IRA_H_
