#include "core/pareto_set.h"

#include <limits>

namespace moqo {

namespace {

/// True iff a[i] <= b[i] for every dimension (Dominates without the size
/// assert, for summary vectors).
inline bool AllLessEq(const CostVector& a, const CostVector& b) {
  for (int i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
  }
  return true;
}

}  // namespace

bool ParetoSet::WouldInsert(const CostVector& cost,
                            const PruneOptions& options) const {
  // stored ⪯_alpha cost  <=>  stored ⪯ alpha*cost; scale the candidate once.
  const CostVector threshold =
      options.alpha <= 1.0 ? cost : cost.Scaled(options.alpha);
  // Recent-rejecter cache (sound only with the default deletion rule: a
  // tombstoned plan is plainly dominated by a live one, so its rejections
  // transfer; with aggressive deletion that implication weakens to alpha^2).
  const bool use_hot = !options.aggressive_delete;
  if (use_hot) {
    for (int h = 0; h < hot_used_; ++h) {
      if (Dominates(hot_[h], threshold)) return false;
    }
  }
  // Newest blocks first: consecutive candidates usually come from the same
  // split and are most often dominated by a recent insertion.
  for (int b = NumBlocks() - 1; b >= 0; --b) {
    // A block can contain a dominator only if its component-wise min is
    // below the threshold in every dimension.
    if (block_min_[b].size() == 0 || !AllLessEq(block_min_[b], threshold)) {
      continue;
    }
    const int begin = b * kBlockSize;
    const int end =
        std::min<int>(begin + kBlockSize, static_cast<int>(entries_.size()));
    for (int i = end - 1; i >= begin; --i) {
      if (entries_[i].plan != nullptr &&
          Dominates(entries_[i].cost, threshold)) {
        if (use_hot) {
          hot_[hot_next_] = entries_[i].cost;
          hot_next_ = (hot_next_ + 1) % kHotSlots;
          hot_used_ = std::min(hot_used_ + 1, kHotSlots);
        }
        return false;
      }
    }
  }
  return true;
}

bool ParetoSet::Prune(const PlanNode* plan, const PruneOptions& options) {
  if (!WouldInsert(plan->cost, options)) return false;

  // Deletion: tombstone stored plans the new plan dominates. Plain
  // dominance by default (see header); approximate dominance only in the
  // ablation mode.
  const CostVector& cost = plan->cost;
  const bool aggressive = options.aggressive_delete && options.alpha > 1.0;
  for (int b = 0; b < NumBlocks(); ++b) {
    if (block_min_[b].size() == 0) continue;  // No live entries.
    // The new plan can dominate a member only if cost <= block_max.
    if (!aggressive && !AllLessEq(cost, block_max_[b])) continue;
    const int begin = b * kBlockSize;
    const int end =
        std::min<int>(begin + kBlockSize, static_cast<int>(entries_.size()));
    bool removed_any = false;
    for (int i = begin; i < end; ++i) {
      if (entries_[i].plan == nullptr) continue;
      const bool remove =
          aggressive
              ? ApproxDominates(cost, entries_[i].cost, options.alpha)
              : Dominates(cost, entries_[i].cost);
      if (remove) {
        entries_[i].plan = nullptr;
        --live_;
        removed_any = true;
      }
    }
    if (removed_any) RebuildBlock(b);
  }

  // Compact when tombstones dominate the storage.
  if (live_ * 2 < static_cast<int>(entries_.size())) Compact();

  // Append and fold into the last block's summaries.
  entries_.push_back(Entry{cost, plan});
  ++live_;
  const int last = NumBlocks() - 1;
  if (static_cast<int>(block_min_.size()) < NumBlocks()) {
    block_min_.push_back(cost);
    block_max_.push_back(cost);
  } else if (block_min_[last].size() == 0) {
    block_min_[last] = cost;
    block_max_[last] = cost;
  } else {
    for (int i = 0; i < cost.size(); ++i) {
      block_min_[last][i] = std::min(block_min_[last][i], cost[i]);
      block_max_[last][i] = std::max(block_max_[last][i], cost[i]);
    }
  }
  return true;
}

void ParetoSet::RebuildBlock(int b) {
  const int begin = b * kBlockSize;
  const int end =
      std::min<int>(begin + kBlockSize, static_cast<int>(entries_.size()));
  CostVector min_v, max_v;
  bool any = false;
  for (int i = begin; i < end; ++i) {
    if (entries_[i].plan == nullptr) continue;
    const CostVector& c = entries_[i].cost;
    if (!any) {
      min_v = c;
      max_v = c;
      any = true;
    } else {
      for (int d = 0; d < c.size(); ++d) {
        min_v[d] = std::min(min_v[d], c[d]);
        max_v[d] = std::max(max_v[d], c[d]);
      }
    }
  }
  block_min_[b] = any ? min_v : CostVector();
  block_max_[b] = any ? max_v : CostVector();
}

void ParetoSet::Compact() {
  size_t kept = 0;
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].plan != nullptr) {
      if (kept != i) entries_[kept] = entries_[i];
      ++kept;
    }
  }
  entries_.resize(kept);
  live_ = static_cast<int>(kept);
  block_min_.assign(NumBlocks(), CostVector());
  block_max_.assign(NumBlocks(), CostVector());
  for (int b = 0; b < NumBlocks(); ++b) RebuildBlock(b);
}

void ParetoSet::Seal() { Compact(); }

void ParetoSet::clear() {
  entries_.clear();
  block_min_.clear();
  block_max_.clear();
  live_ = 0;
  hot_used_ = 0;
  hot_next_ = 0;
}

std::vector<const PlanNode*> ParetoSet::plans() const {
  std::vector<const PlanNode*> result;
  result.reserve(live_);
  for (const Entry& entry : entries_) {
    if (entry.plan != nullptr) result.push_back(entry.plan);
  }
  return result;
}

const PlanNode* ParetoSet::SelectBest(const WeightVector& weights,
                                      const BoundVector& bounds) const {
  const PlanNode* best_bounded = nullptr;
  double best_bounded_cost = std::numeric_limits<double>::infinity();
  const PlanNode* best_any = nullptr;
  double best_any_cost = std::numeric_limits<double>::infinity();
  for (const Entry& entry : entries_) {
    if (entry.plan == nullptr) continue;
    const double weighted = weights.WeightedCost(entry.cost);
    if (weighted < best_any_cost) {
      best_any_cost = weighted;
      best_any = entry.plan;
    }
    if (bounds.Respects(entry.cost) && weighted < best_bounded_cost) {
      best_bounded_cost = weighted;
      best_bounded = entry.plan;
    }
  }
  return best_bounded != nullptr ? best_bounded : best_any;
}

const PlanNode* ParetoSet::SelectBestWeighted(
    const WeightVector& weights) const {
  return SelectBest(weights, BoundVector::Unbounded(weights.size()));
}

std::vector<CostVector> ParetoSet::Frontier() const {
  std::vector<CostVector> frontier;
  frontier.reserve(live_);
  for (const Entry& entry : entries_) {
    if (entry.plan != nullptr) frontier.push_back(entry.cost);
  }
  return frontier;
}

}  // namespace moqo
