#include "core/pareto_set.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "core/dominance_kernel.h"

namespace moqo {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

bool ParetoSet::WouldInsert(const CostVector& cost,
                            const PruneOptions& options) const {
  const int dims = cost.size();
  // stored ⪯_alpha cost  <=>  stored ⪯ alpha*cost; the alpha multiply is
  // hoisted out of the scans by scaling the candidate once into a
  // stack-local threshold row.
  double threshold[kNumObjectives];
  if (options.alpha <= 1.0) {
    for (int d = 0; d < dims; ++d) threshold[d] = cost[d];
  } else {
    for (int d = 0; d < dims; ++d) threshold[d] = cost[d] * options.alpha;
  }
  // Recent-rejecter cache (sound only with the default deletion rule: a
  // tombstoned plan is plainly dominated by a live one, so its rejections
  // transfer; with aggressive deletion that implication weakens to alpha^2).
  const bool use_hot = !options.aggressive_delete;
  if (use_hot) {
    for (int h = 0; h < hot_used_; ++h) {
      if (RowLeq(&hot_[h * kNumObjectives], threshold, dims)) return false;
    }
  }
  // Newest blocks first: consecutive candidates usually come from the same
  // split and are most often dominated by a recent insertion.
  const double* costs = costs_.data();
  for (int b = NumBlocks() - 1; b >= 0; --b) {
    // A block can contain a dominator only if its component-wise min is
    // below the threshold in every dimension (+inf mins — dead blocks —
    // never pass).
    if (!RowLeq(&block_min_[static_cast<size_t>(b) * dims_], threshold,
                dims)) {
      continue;
    }
    const int begin = b * kBlockSize;
    const int end = std::min(begin + kBlockSize, rows());
    for (int i = end - 1; i >= begin; --i) {
      if (plans_[i] != nullptr &&
          RowLeq(costs + static_cast<size_t>(i) * dims_, threshold, dims)) {
        if (use_hot) {
          const double* row = costs + static_cast<size_t>(i) * dims_;
          double* hot = &hot_[hot_next_ * kNumObjectives];
          for (int d = 0; d < dims; ++d) hot[d] = row[d];
          hot_next_ = (hot_next_ + 1) % kHotSlots;
          hot_used_ = std::min(hot_used_ + 1, kHotSlots);
        }
        return false;
      }
    }
  }
  return true;
}

bool ParetoSet::Prune(const PlanNode* plan, const PruneOptions& options) {
  if (!WouldInsert(plan->cost, options)) return false;

  const CostVector& cost = plan->cost;
  const int dims = cost.size();
  if (dims_ == 0) dims_ = dims;
  double row[kNumObjectives];
  for (int d = 0; d < dims; ++d) row[d] = cost[d];

  // Deletion: tombstone stored plans the new plan dominates. Plain
  // dominance by default (see header); approximate dominance only in the
  // ablation mode.
  const bool aggressive = options.aggressive_delete && options.alpha > 1.0;
  double* costs = costs_.data();
  for (int b = 0; b < NumBlocks(); ++b) {
    // The new plan can dominate a block member only if row <= block_max
    // (-inf maxes — dead blocks — never pass).
    if (!aggressive &&
        !RowLeq(row, &block_max_[static_cast<size_t>(b) * dims_], dims)) {
      continue;
    }
    const int begin = b * kBlockSize;
    const int end = std::min(begin + kBlockSize, rows());
    bool removed_any = false;
    for (int i = begin; i < end; ++i) {
      if (plans_[i] == nullptr) continue;
      const double* stored = costs + static_cast<size_t>(i) * dims_;
      bool remove;
      if (aggressive) {
        remove = true;
        for (int d = 0; d < dims; ++d) {
          if (row[d] > stored[d] * options.alpha) {
            remove = false;
            break;
          }
        }
      } else {
        remove = RowLeq(row, stored, dims);
      }
      if (remove) {
        plans_[i] = nullptr;
        --live_;
        removed_any = true;
      }
    }
    if (removed_any) RebuildBlock(b);
  }

  // Compact when tombstones dominate the storage.
  if (live_ * 2 < rows()) Compact();

  // Append the row and fold it into the last block's summaries.
  plans_.push_back(plan);
  costs_.insert(costs_.end(), row, row + dims);
  ++live_;
  if (static_cast<int>(block_min_.size()) <
      NumBlocks() * static_cast<int>(dims_)) {
    block_min_.insert(block_min_.end(), dims, kInf);
    block_max_.insert(block_max_.end(), dims, -kInf);
  }
  double* bmin = &block_min_[static_cast<size_t>(NumBlocks() - 1) * dims_];
  double* bmax = &block_max_[static_cast<size_t>(NumBlocks() - 1) * dims_];
  for (int d = 0; d < dims; ++d) {
    bmin[d] = std::min(bmin[d], row[d]);
    bmax[d] = std::max(bmax[d], row[d]);
  }
  return true;
}

void ParetoSet::RebuildBlock(int b) {
  const int begin = b * kBlockSize;
  const int end = std::min(begin + kBlockSize, rows());
  double* bmin = &block_min_[static_cast<size_t>(b) * dims_];
  double* bmax = &block_max_[static_cast<size_t>(b) * dims_];
  for (int d = 0; d < dims_; ++d) {
    bmin[d] = kInf;
    bmax[d] = -kInf;
  }
  const double* costs = costs_.data();
  for (int i = begin; i < end; ++i) {
    if (plans_[i] == nullptr) continue;
    const double* row = costs + static_cast<size_t>(i) * dims_;
    for (int d = 0; d < dims_; ++d) {
      bmin[d] = std::min(bmin[d], row[d]);
      bmax[d] = std::max(bmax[d], row[d]);
    }
  }
}

void ParetoSet::Compact() {
  size_t kept = 0;
  for (size_t i = 0; i < plans_.size(); ++i) {
    if (plans_[i] == nullptr) continue;
    if (kept != i) {
      plans_[kept] = plans_[i];
      std::copy_n(costs_.begin() + i * dims_, dims_,
                  costs_.begin() + kept * dims_);
    }
    ++kept;
  }
  plans_.resize(kept);
  costs_.resize(kept * dims_);
  live_ = static_cast<int>(kept);
  block_min_.assign(static_cast<size_t>(NumBlocks()) * dims_, kInf);
  block_max_.assign(static_cast<size_t>(NumBlocks()) * dims_, -kInf);
  for (int b = 0; b < NumBlocks(); ++b) RebuildBlock(b);
}

void ParetoSet::Seal() { Compact(); }

void ParetoSet::LoadSealed(const std::vector<const PlanNode*>& plans) {
  clear();
  if (plans.empty()) return;
  dims_ = plans.front()->cost.size();
  plans_.reserve(plans.size());
  costs_.reserve(plans.size() * static_cast<size_t>(dims_));
  for (const PlanNode* plan : plans) {
    assert(plan != nullptr && plan->cost.size() == dims_);
    plans_.push_back(plan);
    for (int d = 0; d < dims_; ++d) costs_.push_back(plan->cost[d]);
  }
  live_ = static_cast<int>(plans.size());
  // Compact is a no-op row-wise (no tombstones) but rebuilds the block
  // min/max summaries exactly as a local build's Seal would.
  Seal();
}

void ParetoSet::clear() {
  plans_.clear();
  costs_.clear();
  block_min_.clear();
  block_max_.clear();
  dims_ = 0;
  live_ = 0;
  hot_used_ = 0;
  hot_next_ = 0;
}

CostVector ParetoSet::cost_at(int i) const {
  CostVector cost(dims_);
  const double* row = costs_.data() + static_cast<size_t>(i) * dims_;
  for (int d = 0; d < dims_; ++d) cost[d] = row[d];
  return cost;
}

std::vector<const PlanNode*> ParetoSet::plans() const {
  std::vector<const PlanNode*> result;
  result.reserve(live_);
  for (const PlanNode* plan : plans_) {
    if (plan != nullptr) result.push_back(plan);
  }
  return result;
}

const PlanNode* ParetoSet::SelectBest(const WeightVector& weights,
                                      const BoundVector& bounds) const {
  const PlanNode* best_bounded = nullptr;
  double best_bounded_cost = kInf;
  const PlanNode* best_any = nullptr;
  double best_any_cost = kInf;
  const double* costs = costs_.data();
  const int bound_dims = std::min(dims_, bounds.size());
  for (int i = 0; i < rows(); ++i) {
    if (plans_[i] == nullptr) continue;
    const double* row = costs + static_cast<size_t>(i) * dims_;
    double weighted = 0;
    for (int d = 0; d < dims_; ++d) weighted += weights[d] * row[d];
    if (weighted < best_any_cost) {
      best_any_cost = weighted;
      best_any = plans_[i];
    }
    if (weighted < best_bounded_cost) {
      bool respects = true;
      for (int d = 0; d < bound_dims; ++d) {
        if (row[d] > bounds[d]) {
          respects = false;
          break;
        }
      }
      if (respects) {
        best_bounded_cost = weighted;
        best_bounded = plans_[i];
      }
    }
  }
  return best_bounded != nullptr ? best_bounded : best_any;
}

const PlanNode* ParetoSet::SelectBestWeighted(
    const WeightVector& weights) const {
  return SelectBest(weights, BoundVector::Unbounded(weights.size()));
}

std::vector<CostVector> ParetoSet::Frontier() const {
  std::vector<CostVector> frontier;
  frontier.reserve(live_);
  for (int i = 0; i < rows(); ++i) {
    if (plans_[i] != nullptr) frontier.push_back(cost_at(i));
  }
  return frontier;
}

}  // namespace moqo
