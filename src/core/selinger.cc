#include "core/selinger.h"

#include <cassert>

namespace moqo {

OptimizerResult SelingerOptimizer::Optimize(const MOQOProblem& problem) {
  assert(problem.objectives.size() == 1 &&
         "SelingerOptimizer is single-objective");
  StopWatch watch;
  arena_.Reset();
  CostModel model(problem.query, &registry_, problem.objectives);
  DPPlanGenerator generator(&model, &registry_, &arena_);

  // One dimension: exact dominance pruning keeps exactly one plan per set.
  DPOptions dp = MakeDPOptions(problem, /*internal_alpha=*/1.0,
                               MakeDeadline());
  const ParetoSet& best_set = generator.Run(*problem.query, dp);

  MOQOProblem normalized = problem;
  normalized.weights = WeightVector::Uniform(1);
  return FinishResult(normalized, generator, best_set, BoundVector(),
                      watch.ElapsedMillis());
}

double SelingerOptimizer::MinimumCost(const Query& query, Objective objective,
                                      const OptimizerOptions& options) {
  SelingerOptimizer optimizer(options);
  MOQOProblem problem;
  problem.query = &query;
  problem.objectives = ObjectiveSet::Only(objective);
  problem.weights = WeightVector::Uniform(1);
  OptimizerResult result = optimizer.Optimize(problem);
  return result.plan != nullptr ? result.cost[0] : 0.0;
}

OptimizerResult WeightedSumOptimizer::Optimize(const MOQOProblem& problem) {
  StopWatch watch;
  arena_.Reset();
  CostModel model(problem.query, &registry_, problem.objectives);
  DPPlanGenerator generator(&model, &registry_, &arena_);

  DPOptions dp = MakeDPOptions(problem, /*internal_alpha=*/1.0,
                               MakeDeadline());
  dp.single_plan_mode = true;  // Prune every table set down to argmin C_W.
  const ParetoSet& best_set = generator.Run(*problem.query, dp);
  return FinishResult(problem, generator, best_set, BoundVector(),
                      watch.ElapsedMillis());
}

}  // namespace moqo
