#include "core/complexity.h"

#include <cmath>

namespace moqo {

namespace {

// log10(x!) via lgamma.
double Log10Factorial(int x) {
  return std::lgamma(static_cast<double>(x) + 1.0) / std::log(10.0);
}

}  // namespace

double Log10NBushy(int j, int n) {
  // j^(2n-1) * (2(n-1))! / (n-1)!
  return (2.0 * n - 1.0) * std::log10(static_cast<double>(j)) +
         Log10Factorial(2 * (n - 1)) - Log10Factorial(n - 1);
}

double Log10NStored(double m, int n, int l, double alpha_u) {
  const double alpha_i = std::pow(alpha_u, 1.0 / n);
  // log_{alpha_i} m = ln m / ln alpha_i.
  const double log_alpha_m = std::log(m) / std::log(alpha_i);
  return (l - 1.0) * std::log10(n * log_alpha_m);
}

double Log10ExaTime(int j, int n) { return 2.0 * Log10NBushy(j, n); }

double Log10RtaTime(int j, int n, int l, double m, double alpha_u) {
  return std::log10(static_cast<double>(j)) + n * std::log10(3.0) +
         3.0 * Log10NStored(m, n, l, alpha_u);
}

double Log10SelingerTime(int j, int n) {
  return std::log10(static_cast<double>(j)) + n * std::log10(3.0);
}

double Log10IraIterationTime(int j, int n, int l, double m, double alpha_u,
                             int iteration) {
  const double poly =
      (3.0 * l - 3.0) *
      std::log10(n * n * std::log(m) / std::log(alpha_u));
  return std::log10(static_cast<double>(j)) + n * std::log10(3.0) +
         iteration * std::log10(2.0) + poly;
}

}  // namespace moqo
