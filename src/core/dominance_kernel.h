// Copyright (c) 2026 moqo authors. MIT license.
//
// The dominance kernel: RowLeq(a, b, dims) <=> a[d] <= b[d] for every d.
//
// This predicate is the innermost loop of every optimizer — each candidate
// plan is compared against stored cost rows (and block min/max summaries)
// until a dominator is found — so it gets a SIMD path: AVX2 compares four
// doubles per instruction over the ParetoSet's contiguous SoA rows.
//
// Guards: the AVX2 body is compiled behind a compile-time check (x86-64
// gcc/clang, via the `target("avx2")` function attribute, so the rest of
// the binary needs no -mavx2) and selected behind a one-time *runtime*
// CPUID check. Dispatch is a single predictable branch; rows shorter than
// one vector stay on the scalar path outright. Both paths are pure
// predicates over the same IEEE comparisons (the +/-inf block sentinels
// compare identically), so kernel choice can never change optimizer
// output — tests/core/pareto_set_test.cc asserts scalar/AVX2 agreement.

#ifndef MOQO_CORE_DOMINANCE_KERNEL_H_
#define MOQO_CORE_DOMINANCE_KERNEL_H_

namespace moqo {

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define MOQO_DOMINANCE_AVX2 1
#else
#define MOQO_DOMINANCE_AVX2 0
#endif

/// Portable reference kernel; always available.
inline bool RowLeqScalar(const double* a, const double* b, int dims) {
  for (int d = 0; d < dims; ++d) {
    if (a[d] > b[d]) return false;
  }
  return true;
}

#if MOQO_DOMINANCE_AVX2
/// AVX2 kernel; call only when RowLeqKernelIsAvx2() (CPU support) holds.
/// Semantically identical to RowLeqScalar for all non-NaN inputs
/// (cost components are finite or the +/-inf summary sentinels).
bool RowLeqAvx2(const double* a, const double* b, int dims);
#endif

/// True iff dispatch below uses the AVX2 kernel for wide-enough rows
/// (compile-time support and the running CPU advertises AVX2).
bool RowLeqKernelIsAvx2();

namespace internal {
extern const bool kRowLeqUseAvx2;  ///< Resolved once at static init.
}  // namespace internal

/// Dispatching kernel used by the hot scans. Rows narrower than one AVX2
/// vector (dims < 4) take the inline scalar path without a dispatch test.
inline bool RowLeq(const double* a, const double* b, int dims) {
#if MOQO_DOMINANCE_AVX2
  if (dims >= 4 && internal::kRowLeqUseAvx2) return RowLeqAvx2(a, b, dims);
#endif
  return RowLeqScalar(a, b, dims);
}

}  // namespace moqo

#endif  // MOQO_CORE_DOMINANCE_KERNEL_H_
