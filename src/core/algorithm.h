// Copyright (c) 2026 moqo authors. MIT license.
//
// AlgorithmKind: the named optimization algorithms and their factory.
// Lives in core (not the experiment harness) so the serving layer can
// route requests without pulling in workload generation.

#ifndef MOQO_CORE_ALGORITHM_H_
#define MOQO_CORE_ALGORITHM_H_

#include <memory>

#include "core/optimizer.h"

namespace moqo {

/// The algorithms under comparison.
enum class AlgorithmKind {
  kExa,          ///< Exact algorithm (Ganguly et al.), Algorithm 1.
  kRta,          ///< Representative-tradeoffs algorithm, Algorithm 2.
  kIra,          ///< Iterative-refinement algorithm, Algorithm 3.
  kSelinger,     ///< Single-objective DP baseline.
  kWeightedSum,  ///< Scalarization heuristic (no guarantee), ablation.
};

/// Number of AlgorithmKind values, derived from the last enumerator so it
/// cannot silently desynchronize (keep kWeightedSum last).
inline constexpr int kNumAlgorithmKinds =
    static_cast<int>(AlgorithmKind::kWeightedSum) + 1;

const char* AlgorithmName(AlgorithmKind kind);

/// Creates an optimizer instance of the given kind.
std::unique_ptr<OptimizerBase> MakeOptimizer(AlgorithmKind kind,
                                             const OptimizerOptions& options);

}  // namespace moqo

#endif  // MOQO_CORE_ALGORITHM_H_
