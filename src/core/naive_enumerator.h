// Copyright (c) 2026 moqo authors. MIT license.
//
// NaiveEnumerator: exhaustive enumeration of the *entire* bushy plan space.
//
// Section 5.2 compares the EXA against "an approach that successively
// generates all possible plans while keeping only the best plan generated
// so far" — this module is that approach. It enumerates every plan counted
// by N_bushy(j, n) (modulo operator applicability), which is only feasible
// for very small queries; the test suite uses it as a ground-truth oracle
// for the EXA's optimality and Pareto-frontier completeness, and
// tests/bench use its plan counts to validate the closed-form complexity
// model.

#ifndef MOQO_CORE_NAIVE_ENUMERATOR_H_
#define MOQO_CORE_NAIVE_ENUMERATOR_H_

#include <functional>
#include <unordered_map>
#include <vector>

#include "model/cost_model.h"
#include "util/arena.h"

namespace moqo {

/// Exhaustive plan-space enumeration. Exponential in every direction; use
/// only on small queries (<= 4 tables with a reduced operator space).
class NaiveEnumerator {
 public:
  NaiveEnumerator(const CostModel* model, const OperatorRegistry* registry,
                  Arena* arena)
      : model_(model), registry_(registry), arena_(arena) {}

  struct Options {
    /// Apply the Cartesian-product heuristic (match the DP drivers) or
    /// enumerate every split (match the N_bushy count).
    bool cartesian_heuristic = false;
    /// Honour operator applicability (IndexScan/IndexNLJoin restrictions).
    bool applicability = true;
    /// Hard cap on generated plans (0 = unlimited). Enumeration aborts
    /// returning what was built so far when exceeded.
    long max_plans = 50'000'000;
  };

  /// All complete plans for the query. Pointers live in the arena.
  std::vector<const PlanNode*> EnumerateAll(const Query& query,
                                            const Options& options);

  /// Streaming variant: invokes `visit` for every complete plan without
  /// retaining the top-level list (sub-plans are still memoized).
  long VisitAll(const Query& query, const Options& options,
                const std::function<void(const PlanNode*)>& visit);

  /// Number of complete plans for the query (enumerates; see max_plans).
  long CountPlans(const Query& query, const Options& options);

  /// Closed-form N_bushy specialization for distinct scan/join operator
  /// counts: scans^n * joins^(n-1) * (2(n-1))!/(n-1)! — matches
  /// EnumerateAll on queries where every operator is applicable and the
  /// Cartesian heuristic is off.
  static double ExpectedPlanCount(int scan_configs, int join_configs,
                                  int num_tables);

 private:
  const std::vector<const PlanNode*>& PlansFor(const Query& query,
                                               TableSet tables,
                                               const Options& options,
                                               long* budget);

  const CostModel* model_;
  const OperatorRegistry* registry_;
  Arena* arena_;
  std::unordered_map<uint64_t, std::vector<const PlanNode*>> memo_;
};

}  // namespace moqo

#endif  // MOQO_CORE_NAIVE_ENUMERATOR_H_
