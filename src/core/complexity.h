// Copyright (c) 2026 moqo authors. MIT license.
//
// Closed-form complexity model of Sections 5.2 and 6.3, used to regenerate
// Figure 7 (analytic comparison of EXA, RTA and Selinger running times)
// and checked against measured plan-set cardinalities by the tests.

#ifndef MOQO_CORE_COMPLEXITY_H_
#define MOQO_CORE_COMPLEXITY_H_

namespace moqo {

/// Number of bushy plans joining n tables with j operators (Section 5.2):
/// N_bushy(j, n) = j^(2n-1) * (2(n-1))! / (n-1)!.
/// Returned in log10 to avoid overflow for large n.
double Log10NBushy(int j, int n);

/// Per-table-set plan bound of the RTA (Lemma 2):
/// N_stored(m, n) = (n * log_{alpha_i} m)^(l-1), with
/// alpha_i = alpha_U^(1/n). Returned in log10.
double Log10NStored(double m, int n, int l, double alpha_u);

/// EXA time complexity (Theorem 2): N_bushy(j, n)^2. log10.
double Log10ExaTime(int j, int n);

/// RTA time complexity (Theorem 5): j * 3^n * N_stored^3. log10.
double Log10RtaTime(int j, int n, int l, double m, double alpha_u);

/// Selinger bushy-plan SOQO complexity: j * 3^n. log10.
double Log10SelingerTime(int j, int n);

/// IRA i-th iteration time complexity (Theorem 7):
/// j * 3^n * 2^i * (n^2 log m / log alpha_U)^(3l-3). log10.
double Log10IraIterationTime(int j, int n, int l, double m, double alpha_u,
                             int iteration);

}  // namespace moqo

#endif  // MOQO_CORE_COMPLEXITY_H_
