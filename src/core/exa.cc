#include "core/exa.h"

namespace moqo {

OptimizerResult ExactMOQO::Optimize(const MOQOProblem& problem) {
  StopWatch watch;
  arena_.Reset();
  CostModel model(problem.query, &registry_, problem.objectives);
  DPPlanGenerator generator(&model, &registry_, &arena_);

  DPOptions dp = MakeDPOptions(problem, /*internal_alpha=*/1.0,
                               MakeDeadline());
  const ParetoSet& pareto = generator.Run(*problem.query, dp);

  // SelectBest over the full frontier; mis-sized bounds mean "unbounded".
  const BoundVector select_bounds =
      problem.bounds.size() == problem.objectives.size() ? problem.bounds
                                                         : BoundVector();
  return FinishResult(problem, generator, pareto, select_bounds,
                      watch.ElapsedMillis());
}

}  // namespace moqo
