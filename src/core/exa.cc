#include "core/exa.h"

namespace moqo {

OptimizerResult ExactMOQO::Optimize(const MOQOProblem& problem) {
  StopWatch watch;
  arena_.Reset();
  CostModel model(problem.query, &registry_, problem.objectives);
  DPPlanGenerator generator(&model, &registry_, &arena_);

  DPOptions dp = MakeDPOptions(problem, /*internal_alpha=*/1.0,
                               MakeDeadline());
  const ParetoSet& pareto = generator.Run(*problem.query, dp);

  const BoundVector bounds = problem.bounds.size() == problem.objectives.size()
                                 ? problem.bounds
                                 : BoundVector::Unbounded(
                                       problem.objectives.size());
  const PlanNode* best = pareto.SelectBest(problem.weights, bounds);
  return FinishResult(problem, generator, pareto, best,
                      watch.ElapsedMillis());
}

}  // namespace moqo
