// Copyright (c) 2026 moqo authors. MIT license.

#include "core/dominance_kernel.h"

#if MOQO_DOMINANCE_AVX2
#include <immintrin.h>
#endif

namespace moqo {

#if MOQO_DOMINANCE_AVX2

__attribute__((target("avx2"))) bool RowLeqAvx2(const double* a,
                                                const double* b, int dims) {
  int d = 0;
  for (; d + 4 <= dims; d += 4) {
    const __m256d va = _mm256_loadu_pd(a + d);
    const __m256d vb = _mm256_loadu_pd(b + d);
    // Ordered (non-signalling) a > b per lane; any set lane refutes <=.
    const __m256d gt = _mm256_cmp_pd(va, vb, _CMP_GT_OQ);
    if (_mm256_movemask_pd(gt) != 0) return false;
  }
  for (; d < dims; ++d) {
    if (a[d] > b[d]) return false;
  }
  return true;
}

namespace internal {
const bool kRowLeqUseAvx2 = __builtin_cpu_supports("avx2") != 0;
}  // namespace internal

#else

namespace internal {
const bool kRowLeqUseAvx2 = false;
}  // namespace internal

#endif  // MOQO_DOMINANCE_AVX2

bool RowLeqKernelIsAvx2() { return internal::kRowLeqUseAvx2; }

}  // namespace moqo
