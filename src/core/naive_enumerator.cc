#include "core/naive_enumerator.h"

#include <cmath>
#include <limits>

namespace moqo {

const std::vector<const PlanNode*>& NaiveEnumerator::PlansFor(
    const Query& query, TableSet tables, const Options& options,
    long* budget) {
  auto it = memo_.find(tables.mask());
  if (it != memo_.end()) return it->second;
  std::vector<const PlanNode*>& plans = memo_[tables.mask()];

  if (tables.Cardinality() == 1) {
    const int table = tables.First();
    for (int config : registry_->scan_configs()) {
      if (options.applicability && !model_->ScanApplicable(config, table)) {
        continue;
      }
      if (*budget <= 0) return plans;
      --*budget;
      plans.push_back(model_->MakeScan(config, table, arena_));
    }
    return plans;
  }

  // Collect splits, optionally restricted to predicate-connected ones.
  std::vector<std::pair<TableSet, TableSet>> splits;
  std::vector<std::pair<TableSet, TableSet>> connected;
  for (SubsetIterator split_it(tables); !split_it.Done(); split_it.Next()) {
    const auto split =
        std::make_pair(split_it.Current(), split_it.Complement());
    splits.push_back(split);
    if (query.SplitHasJoinPredicate(split.first, split.second)) {
      connected.push_back(split);
    }
  }
  if (options.cartesian_heuristic && !connected.empty()) {
    splits = connected;
  }

  for (const auto& [left_set, right_set] : splits) {
    // Copy: PlansFor below may rehash memo_ and invalidate references.
    const std::vector<const PlanNode*> left_plans =
        PlansFor(query, left_set, options, budget);
    const std::vector<const PlanNode*> right_plans =
        PlansFor(query, right_set, options, budget);
    for (const PlanNode* left : left_plans) {
      for (const PlanNode* right : right_plans) {
        for (int config : registry_->join_configs()) {
          if (options.applicability &&
              !model_->JoinApplicable(config, *left, *right)) {
            continue;
          }
          if (*budget <= 0) return memo_[tables.mask()];
          --*budget;
          memo_[tables.mask()].push_back(
              model_->MakeJoin(config, left, right, arena_));
        }
      }
    }
  }
  return memo_.at(tables.mask());
}

std::vector<const PlanNode*> NaiveEnumerator::EnumerateAll(
    const Query& query, const Options& options) {
  memo_.clear();
  long budget = options.max_plans > 0 ? options.max_plans
                                      : std::numeric_limits<long>::max();
  return PlansFor(query, query.AllTables(), options, &budget);
}

long NaiveEnumerator::VisitAll(
    const Query& query, const Options& options,
    const std::function<void(const PlanNode*)>& visit) {
  const std::vector<const PlanNode*> plans = EnumerateAll(query, options);
  for (const PlanNode* plan : plans) visit(plan);
  return static_cast<long>(plans.size());
}

long NaiveEnumerator::CountPlans(const Query& query, const Options& options) {
  return static_cast<long>(EnumerateAll(query, options).size());
}

double NaiveEnumerator::ExpectedPlanCount(int scan_configs, int join_configs,
                                          int num_tables) {
  const int n = num_tables;
  // (2(n-1))!/(n-1)! ordered bushy shapes.
  double shapes = 1;
  for (int k = n; k <= 2 * (n - 1); ++k) shapes *= k;
  return std::pow(scan_configs, n) * std::pow(join_configs, n - 1) * shapes;
}

}  // namespace moqo
