// Copyright (c) 2026 moqo authors. MIT license.
//
// DPPlanGenerator: the dynamic-programming engine shared by all optimizers
// (FindParetoPlans of Algorithms 1 and 2).
//
// It constructs plan sets for table sets of increasing cardinality; for
// each set it enumerates all ordered splits into two non-empty disjoint
// subsets (every split is one choice of operands for the last join), all
// applicable join operator configurations, and all combinations of stored
// sub-plans (Algorithm 1, lines 15-25). Pruning precision alpha
// distinguishes the EXA (alpha = 1) from the RTA (alpha = |Q|-th root of
// the user precision).
//
// Parallelism (PR 3): table sets of cardinality k depend only on sets of
// cardinality < k, so each DP level is an embarrassingly parallel batch.
// With parallelism > 1 and a pool, the driver partitions every level's
// table sets across ThreadPool::ParallelFor — each set is built by exactly
// one task, in the same split order as the serial engine, allocating
// surviving plans from a per-slot scratch Arena — and seals the level at a
// barrier before the next level starts. Because parallelism is across
// sets (never within one set's insertion sequence), the sealed frontier of
// every table set is byte-for-byte identical to the serial run's for any
// thread count, exact or approximate pruning alike.
//
// Cross-query subplan memo (PR 4): with DPOptions::subplan_memo set, the
// driver probes a shared SubplanMemo before building a table set — keyed
// by the set's canonical signature (memo/subplan_key.h), which guarantees
// byte-identical frontiers for equal keys — and on a hit seals the level
// entry directly from the shared snapshot (plans rebased into this query's
// table indices, costs verbatim). Newly sealed sets are published back
// *after* the level barrier, on the caller thread, so in-flight tasks only
// ever read immutable memo state and the frontiers of a cold run are
// byte-identical with the memo on or off.
//
// Postgres heuristics kept in place per Section 4: Cartesian-product splits
// are considered only for table sets where no predicate-connected split
// exists.
//
// Timeout handling per Section 5.1: when the deadline expires, the
// generator "finishes quickly by only generating one plan for all table
// sets that have not been treated so far" — remaining sets combine only the
// weighted-best sub-plans and store a single plan.

#ifndef MOQO_CORE_DP_DRIVER_H_
#define MOQO_CORE_DP_DRIVER_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/pareto_set.h"
#include "memo/subplan_key.h"
#include "model/cost_model.h"
#include "util/arena.h"
#include "util/deadline.h"

namespace moqo {

class PlanSet;
class SubplanMemo;
class ThreadPool;
class Tracer;

/// Knobs of one dynamic-programming run.
struct DPOptions {
  /// Internal pruning precision alpha_i; 1.0 = exact (EXA).
  double alpha = 1.0;
  /// Ablation only: also delete approximately dominated stored plans
  /// (destroys the near-optimality guarantee; Section 6.2).
  bool aggressive_delete = false;
  /// Consider bushy plans (paper default). false = left-deep only
  /// (right operand of every join is a base table) for the ablation bench.
  bool bushy = true;
  /// Consider Cartesian products only when no predicate-connected split
  /// exists (Postgres heuristic, Section 4).
  bool cartesian_heuristic = true;
  /// From the start, keep only the single weighted-best plan per table set.
  /// This degenerates the DP into the classic Selinger-style algorithm with
  /// the *weighted sum* as pruning metric — the heuristic that Example 1
  /// shows can be arbitrarily suboptimal. Used as an ablation baseline.
  bool single_plan_mode = false;
  /// Wall-clock budget; infinite by default.
  Deadline deadline;
  /// Weights used to pick the representative plan in timeout quick-mode /
  /// single-plan mode. Defaults to uniform when empty.
  WeightVector quick_mode_weights;
  /// Intra-query parallelism: cooperating threads per DP level (the caller
  /// counts as one). 1 = serial; > 1 requires `pool`. The result is
  /// independent of this value (see header comment).
  int parallelism = 1;
  /// Shared pool the level fan-out borrows helpers from; not owned. Null =
  /// serial regardless of `parallelism`.
  ThreadPool* pool = nullptr;
  /// Cross-query memo of sealed table-set frontiers, shared between runs
  /// and requests; not owned. Null = no cross-query reuse. Ignored in
  /// single_plan_mode (its per-set "frontier" depends on the weights) and
  /// for quick-mode (timed-out) sets, which are never published.
  SubplanMemo* subplan_memo = nullptr;
  /// Observability (PR 6): span recorder for per-level / per-set / memo
  /// spans; not owned, null = no tracing (the disabled path is one branch
  /// per level). `trace_id` correlates this run's spans with the request
  /// that issued it.
  Tracer* tracer = nullptr;
  uint64_t trace_id = 0;
};

/// Counters and outcomes of one run, feeding the Figure 5/9/10 metrics.
struct DPStats {
  bool timed_out = false;
  /// Plans constructed and cost-evaluated (considered plans, Section 5.1).
  long considered_plans = 0;
  /// Plans that survived pruning at insertion time.
  long inserted_plans = 0;
  /// "#Pareto plans for the last table set that was treated completely".
  int last_complete_pareto_count = 0;
  TableSet last_complete_set;
  /// Table sets fully processed before the deadline.
  int complete_sets = 0;
  int total_sets = 0;
  /// Cross-query subplan memo traffic of this run (0 when no memo is
  /// attached): sets sealed from a shared snapshot, sets probed without an
  /// entry, and sets published after their level's barrier.
  long memo_hits = 0;
  long memo_misses = 0;
  long memo_publishes = 0;
  /// Barrier-tail attribution (PR 6): DP levels that actually fanned out,
  /// and the total time participating slots spent finished-but-waiting at
  /// level barriers (the work-stealing ROADMAP item's target metric).
  int parallel_levels = 0;
  long barrier_wait_us = 0;
};

/// The DP engine. One instance per optimization run; plans live in the
/// provided arena (plus per-slot scratch arenas owned by the generator
/// when a run fans out).
class DPPlanGenerator {
 public:
  DPPlanGenerator(const CostModel* model, const OperatorRegistry* registry,
                  Arena* arena)
      : model_(model), registry_(registry), arena_(arena), query_(nullptr) {}

  /// Runs the DP over all non-empty subsets of the query's tables and
  /// returns the plan set for the full set. The returned reference is
  /// valid until the next Run() call.
  const ParetoSet& Run(const Query& query, const DPOptions& options);

  /// Plan set stored for `tables` (empty set if never built).
  const ParetoSet& SetFor(TableSet tables) const;

  const DPStats& stats() const { return stats_; }

  /// Memory metric: arena reservations (run arena + parallel slot arenas)
  /// plus plan-set container footprint.
  size_t MemoryBytes() const;

 private:
  void ProcessSingletons(const Query& query, const DPOptions& options);

  /// Builds the plan set for `tables` into `set`, allocating survivors
  /// from `arena` and counting into `stats`; seals the set on success.
  /// Returns false if the deadline expired mid-set (the partial set is
  /// discarded and rebuilt quickly by the caller).
  bool ProcessSetInto(const Query& query, TableSet tables,
                      const DPOptions& options, Arena* arena, ParetoSet* set,
                      DPStats* stats) const;

  /// Fans one level's memo-miss table sets out over options.pool (largest
  /// estimated sets first, to shorten the barrier tail); merges stats and
  /// seals every set at the closing barrier. `from_memo[i]` marks sets
  /// already sealed by a memo hit; `built[i]` is set for sets completely
  /// built locally (the publish candidates).
  void ProcessLevelParallel(const Query& query,
                            const std::vector<TableSet>& level,
                            const DPOptions& options,
                            const std::vector<char>& from_memo,
                            std::vector<char>* built);

  /// Seals memo_[tables] from a shared memo snapshot: plans are deep-copied
  /// into the run arena with their table references rebased from the
  /// entry's dense-rank space to this query's local indices.
  void MaterializeFromMemo(TableSet tables, const PlanSet& entry);

  /// Estimated candidate count of building `tables`: sum over its splits
  /// of |left frontier| * |right frontier|. Cheap (frontiers of lower
  /// levels are sealed) and only a *scheduling* hint — results never
  /// depend on task order.
  uint64_t SplitWorkProxy(TableSet tables, const DPOptions& options) const;

  /// Quick mode: single weighted-best plan for `tables`.
  void ProcessSetQuick(const Query& query, TableSet tables,
                       const DPOptions& options);

  /// One ordered split with its precomputed plan-independent facts.
  struct Split {
    TableSet left;
    TableSet right;
    CostModel::SplitInfo info;
  };

  /// Ordered splits of `tables` honouring the Cartesian heuristic and the
  /// bushy/left-deep switch, with SplitInfo computed once per split.
  std::vector<Split> SplitsOf(const Query& query, TableSet tables,
                              const DPOptions& options) const;

  WeightVector EffectiveWeights(const DPOptions& options) const;

  const CostModel* model_;
  const OperatorRegistry* registry_;
  Arena* arena_;
  /// Scratch arenas for parallel helper slots (slot 0 reuses arena_);
  /// plans they hand out live until the next Run().
  std::vector<std::unique_ptr<Arena>> slot_arenas_;
  const Query* query_;
  std::unordered_map<uint64_t, ParetoSet> memo_;
  /// Canonical-signature builder of the current run; set iff a subplan
  /// memo is attached and active.
  std::unique_ptr<SubplanKeyContext> key_context_;
  DPStats stats_;
  ParetoSet empty_set_;
};

}  // namespace moqo

#endif  // MOQO_CORE_DP_DRIVER_H_
