// Copyright (c) 2026 moqo authors. MIT license.
//
// Single-objective baselines.
//
// SelingerOptimizer: classic single-objective dynamic programming
// (Selinger et al. 1979, generalized to bushy plans per Vance & Maier).
// With one cost dimension, multi-objective dominance degenerates to a total
// order and every memo entry keeps exactly one plan — this is the
// "1 objective" configuration of Figure 5 and the "Selinger" curve of
// Figure 7. Also provides the per-objective minima the Section-8 workload
// generator needs to draw bounds ("multiplying the minimal possible value
// for the given objective and query by a factor from [1,2]").
//
// WeightedSumOptimizer: prunes by the *weighted sum* of multiple
// objectives — the single-objective principle of optimality does NOT hold
// for this metric (Example 1), so this is a heuristic without guarantees;
// it serves as an ablation baseline quantifying how suboptimal naive
// scalarization gets.

#ifndef MOQO_CORE_SELINGER_H_
#define MOQO_CORE_SELINGER_H_

#include "core/optimizer.h"

namespace moqo {

/// Exact single-objective optimizer (the problem.objectives selection must
/// contain exactly one objective; weights are ignored).
class SelingerOptimizer : public OptimizerBase {
 public:
  explicit SelingerOptimizer(const OptimizerOptions& options)
      : OptimizerBase(options) {}

  OptimizerResult Optimize(const MOQOProblem& problem) override;

  /// Minimal achievable cost for `objective` on `query` given the options.
  /// Used by the workload generator to scale bounds.
  static double MinimumCost(const Query& query, Objective objective,
                            const OptimizerOptions& options);
};

/// Scalarization heuristic: Selinger-style DP pruning on C_W. No
/// near-optimality guarantee (kept as an ablation baseline).
class WeightedSumOptimizer : public OptimizerBase {
 public:
  explicit WeightedSumOptimizer(const OptimizerOptions& options)
      : OptimizerBase(options) {}

  OptimizerResult Optimize(const MOQOProblem& problem) override;
};

}  // namespace moqo

#endif  // MOQO_CORE_SELINGER_H_
