#include "core/dp_driver.h"

#include <algorithm>
#include <atomic>
#include <limits>

#include "core/plan_set.h"
#include "memo/subplan_memo.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace moqo {

namespace {

// Deadline polls are amortized over this many candidate evaluations so the
// steady-state cost of timeout support is one branch per candidate.
constexpr long kDeadlinePollInterval = 4096;

}  // namespace

const ParetoSet& DPPlanGenerator::Run(const Query& query,
                                      const DPOptions& options) {
  query_ = &query;
  memo_.clear();
  slot_arenas_.clear();
  stats_ = DPStats();

  const TableSet all = query.AllTables();
  const int n = query.num_tables();
  stats_.total_sets = (1 << n) - 1;

  // With a connected join graph, the Cartesian-product heuristic implies
  // that table sets inducing a disconnected subgraph are never needed: any
  // plan for such a set must contain a Cartesian product while predicate-
  // connected alternatives exist at every DP level (Postgres behaviour).
  const bool skip_disconnected =
      options.cartesian_heuristic && query.JoinGraphConnected();
  const bool parallel = options.parallelism > 1 && options.pool != nullptr &&
                        !options.single_plan_mode;

  // Cross-query memo: single_plan_mode is excluded (its per-set output
  // depends on the request's weights, not just the sub-problem). The key
  // context encodes everything a table set's frontier depends on,
  // including skip_disconnected — it changes which splits have sub-plans.
  SubplanMemo* shared_memo =
      options.single_plan_mode ? nullptr : options.subplan_memo;
  key_context_.reset();
  if (shared_memo != nullptr) {
    key_context_ = std::make_unique<SubplanKeyContext>(
        query, model_->objectives(), options.alpha, registry_->options(),
        options.bushy, options.cartesian_heuristic, options.aggressive_delete,
        skip_disconnected);
  }

  ProcessSingletons(query, options);
  for (int k = 2; k <= n; ++k) {
    std::vector<TableSet> level;
    for (TableSet tables : SubsetsOfSize(all, k)) {
      if (skip_disconnected && !query.InducedSubgraphConnected(tables)) {
        --stats_.total_sets;
        continue;
      }
      level.push_back(tables);
    }
    if (level.empty()) continue;

    TraceSpan level_span(options.tracer, "dp", "dp.level", options.trace_id);
    level_span.AddArg("tables", k);
    level_span.AddArg("sets", static_cast<int64_t>(level.size()));

    // Memo probe, on the caller thread before any of this level's sets is
    // built: hits seal their entry directly from the shared snapshot;
    // misses remember their signature so publish-after-seal below needs no
    // re-encoding. Probing is skipped once the run is in quick mode —
    // quick-mode sets are weight-dependent and must not come from (or go
    // into) the memo.
    std::vector<char> from_memo(level.size(), 0);
    std::vector<SubplanSignature> signatures;
    const bool memo_level = shared_memo != nullptr &&
                            k >= shared_memo->min_tables() &&
                            !stats_.timed_out && !options.deadline.Expired();
    if (memo_level) {
      TraceSpan probe_span(options.tracer, "memo", "memo.probe",
                           options.trace_id);
      const long hits_before = stats_.memo_hits;
      probe_span.AddArg("probes", static_cast<int64_t>(level.size()));
      signatures.resize(level.size());
      for (size_t i = 0; i < level.size(); ++i) {
        // Per-set deadline poll: signature encoding and hit
        // materialization are real work, and an expired run must fall to
        // quick mode as promptly as the build loops do. Expiry is
        // monotone, so the processing loops below see it too; un-probed
        // sets simply stay misses (their `built` flag can never be set,
        // so the publish loop skips their empty signatures).
        if (options.deadline.Expired()) break;
        signatures[i] = key_context_->SignatureFor(level[i]);
        const std::shared_ptr<const PlanSet> entry =
            shared_memo->Lookup(signatures[i]);
        if (entry != nullptr) {
          MaterializeFromMemo(level[i], *entry);
          from_memo[i] = 1;
          ++stats_.memo_hits;
        } else {
          ++stats_.memo_misses;
        }
      }
      probe_span.AddArg("hits", stats_.memo_hits - hits_before);
    }

    std::vector<char> built(level.size(), 0);
    if (parallel && level.size() > 1 && !stats_.timed_out &&
        !options.deadline.Expired()) {
      ProcessLevelParallel(query, level, options, from_memo, &built);
    } else {
      for (size_t i = 0; i < level.size(); ++i) {
        const TableSet tables = level[i];
        if (from_memo[i]) {
          // Sealed from the memo during the probe; only bookkeeping is
          // left, in level order like a local build's.
          ++stats_.complete_sets;
          stats_.last_complete_set = tables;
          stats_.last_complete_pareto_count = SetFor(tables).size();
          continue;
        }
        if (stats_.timed_out || options.deadline.Expired() ||
            options.single_plan_mode) {
          if (!options.single_plan_mode) stats_.timed_out = true;
          ProcessSetQuick(query, tables, options);
          continue;
        }
        ParetoSet& set = memo_[tables.mask()];
        if (ProcessSetInto(query, tables, options, arena_, &set, &stats_)) {
          built[i] = 1;
          ++stats_.complete_sets;
          stats_.last_complete_set = tables;
          stats_.last_complete_pareto_count = set.size();
        } else {
          // Deadline hit mid-set: discard the partial result and rebuild
          // this set (and all remaining ones) in quick mode.
          stats_.timed_out = true;
          set.clear();
          ProcessSetQuick(query, tables, options);
        }
      }
    }

    // Publish-after-seal: every set built completely by THIS run (never
    // re-published hits, never quick-mode rebuilds) is offered to the
    // memo, rebased into its canonical dense-rank space. Running after the
    // level barrier on the caller thread keeps the parallel batch free of
    // shared-structure writes.
    if (memo_level) {
      TraceSpan publish_span(options.tracer, "memo", "memo.publish",
                             options.trace_id);
      const long publishes_before = stats_.memo_publishes;
      for (size_t i = 0; i < level.size(); ++i) {
        if (!built[i]) continue;
        const ParetoSet& set = SetFor(level[i]);
        if (!shared_memo->Admits(set, options.alpha)) continue;
        std::vector<int> local_to_rank(query.num_tables(), -1);
        const std::vector<int> members = level[i].Members();
        for (size_t r = 0; r < members.size(); ++r) {
          local_to_rank[members[r]] = static_cast<int>(r);
        }
        shared_memo->Insert(signatures[i],
                            PlanSet::FromParetoSetRemapped(set,
                                                           local_to_rank));
        ++stats_.memo_publishes;
      }
      publish_span.AddArg("publishes",
                          stats_.memo_publishes - publishes_before);
    }
  }
  return SetFor(all);
}

void DPPlanGenerator::MaterializeFromMemo(TableSet tables,
                                          const PlanSet& entry) {
  // rank -> local: the entry stores plans over dense ranks 0..k-1 in the
  // set's ascending member order; Members() is exactly that mapping.
  const std::vector<int> rank_to_local = tables.Members();
  std::unordered_map<const PlanNode*, const PlanNode*> copied;
  copied.reserve(static_cast<size_t>(entry.size()) * 2);
  std::vector<const PlanNode*> plans;
  plans.reserve(entry.size());
  for (int i = 0; i < entry.size(); ++i) {
    plans.push_back(
        DeepCopyPlanRemapped(entry.plan(i), arena_, rank_to_local, &copied));
  }
  memo_[tables.mask()].LoadSealed(plans);
}

uint64_t DPPlanGenerator::SplitWorkProxy(TableSet tables,
                                         const DPOptions& options) const {
  uint64_t work = 0;
  for (SubsetIterator it(tables); !it.Done(); it.Next()) {
    if (!options.bushy && it.Complement().Cardinality() != 1) continue;
    work += static_cast<uint64_t>(SetFor(it.Current()).size()) *
            static_cast<uint64_t>(SetFor(it.Complement()).size());
  }
  return work;
}

void DPPlanGenerator::ProcessLevelParallel(const Query& query,
                                           const std::vector<TableSet>& level,
                                           const DPOptions& options,
                                           const std::vector<char>& from_memo,
                                           std::vector<char>* built) {
  // Slots beyond the pool's helpers + the caller can never run, so cap
  // here: parallelism is request-supplied and must not size allocations.
  const int slots =
      std::min(options.parallelism, options.pool->num_threads() + 1);
  while (static_cast<int>(slot_arenas_.size()) < slots - 1) {
    slot_arenas_.push_back(std::make_unique<Arena>());
  }

  // Create this level's memo entries up front, on this thread: tasks then
  // only *read* the map (lower levels via SetFor, their own output through
  // these pointers, which unordered_map keeps stable), so the batch never
  // mutates shared structure. Memo-hit entries already exist and are
  // sealed; operator[] just returns them.
  std::vector<ParetoSet*> outputs;
  outputs.reserve(level.size());
  for (TableSet tables : level) outputs.push_back(&memo_[tables.mask()]);

  // Work list: the memo-miss sets, largest estimated work first. The level
  // ends at a barrier, so a huge set claimed last would serialize the tail
  // behind one thread; issuing big sets first lets the small ones pack the
  // stragglers. Stable sort on the precomputed proxy keeps the schedule
  // deterministic (results never depend on it — one task per set).
  std::vector<int> work;
  work.reserve(level.size());
  for (size_t i = 0; i < level.size(); ++i) {
    if (!from_memo[i]) work.push_back(static_cast<int>(i));
  }
  std::vector<uint64_t> proxy(level.size(), 0);
  for (int index : work) proxy[index] = SplitWorkProxy(level[index], options);
  std::stable_sort(work.begin(), work.end(), [&proxy](int a, int b) {
    return proxy[a] > proxy[b];
  });

  // One padded state block per slot. ParallelFor guarantees slot values
  // are distinct across concurrent participants, so per-slot counting is
  // race-free by construction (audited for PR 6; the TSan-filtered
  // ParallelDpTest covers it) — the padding only stops adjacent slots'
  // counters from false-sharing a cache line.
  struct alignas(64) SlotState {
    DPStats stats;
    /// When this slot finished its last claimed set, in level-watch us;
    /// -1 = the slot never ran a task.
    int64_t last_finish_us = -1;
  };
  std::vector<SlotState> slot_state(slots);
  std::vector<char> completed(level.size(), 0);
  std::atomic<bool> expired{false};

  StopWatch level_watch;
  const auto level_us = [&level_watch] {
    return static_cast<int64_t>(level_watch.ElapsedMillis() * 1000.0);
  };

  options.pool->ParallelFor(
      static_cast<int>(work.size()), slots - 1, [&](int wi, int slot) {
        // After the first expiry, unstarted sets are left empty and
        // rebuilt in quick mode below — the Section 5.1 behaviour.
        if (expired.load(std::memory_order_relaxed)) return;
        const int index = work[wi];
        Arena* arena =
            slot == 0 ? arena_ : slot_arenas_[slot - 1].get();
        TraceSpan set_span(options.tracer, "dp", "dp.set", options.trace_id);
        set_span.AddArg("tables", level[index].Cardinality());
        set_span.AddArg("split_work", static_cast<int64_t>(proxy[index]));
        if (ProcessSetInto(query, level[index], options, arena,
                           outputs[index], &slot_state[slot].stats)) {
          completed[index] = 1;
        } else {
          expired.store(true, std::memory_order_relaxed);
        }
        slot_state[slot].last_finish_us = level_us();
      });

  // Barrier-tail attribution: every slot that ran at least one task waited
  // from its last set's completion until the whole level sealed. The sum
  // is the level's load-imbalance cost (ROADMAP: work stealing).
  const int64_t barrier_us = level_us();
  ++stats_.parallel_levels;
  for (const SlotState& s : slot_state) {
    stats_.considered_plans += s.stats.considered_plans;
    stats_.inserted_plans += s.stats.inserted_plans;
    if (s.last_finish_us < 0) continue;
    const int64_t wait_us = barrier_us - s.last_finish_us;
    stats_.barrier_wait_us += wait_us;
    if (options.tracer != nullptr && options.tracer->enabled()) {
      TraceEvent event;
      event.category = "dp";
      event.name = "dp.barrier_wait";
      event.id = options.trace_id;
      event.start_us = options.tracer->NowUs() - wait_us;
      event.dur_us = wait_us;
      event.arg1_name = "wait_us";
      event.arg1 = wait_us;
      options.tracer->Record(event);
    }
  }
  if (expired.load(std::memory_order_relaxed)) stats_.timed_out = true;
  // Merge step: completion bookkeeping in level order (so the "last
  // complete set" matches the serial engine), and quick rebuilds for sets
  // the expiry interrupted or pre-empted.
  for (size_t i = 0; i < level.size(); ++i) {
    if (from_memo[i]) {
      ++stats_.complete_sets;
      stats_.last_complete_set = level[i];
      stats_.last_complete_pareto_count = outputs[i]->size();
    } else if (completed[i]) {
      (*built)[i] = 1;
      ++stats_.complete_sets;
      stats_.last_complete_set = level[i];
      stats_.last_complete_pareto_count = outputs[i]->size();
    } else {
      outputs[i]->clear();
      ProcessSetQuick(query, level[i], options);
    }
  }
}

const ParetoSet& DPPlanGenerator::SetFor(TableSet tables) const {
  auto it = memo_.find(tables.mask());
  return it != memo_.end() ? it->second : empty_set_;
}

size_t DPPlanGenerator::MemoryBytes() const {
  size_t bytes = arena_->reserved_bytes();
  for (const std::unique_ptr<Arena>& arena : slot_arenas_) {
    bytes += arena->reserved_bytes();
  }
  for (const auto& [mask, set] : memo_) {
    bytes += set.MemoryBytes() + sizeof(mask);
  }
  return bytes;
}

WeightVector DPPlanGenerator::EffectiveWeights(
    const DPOptions& options) const {
  if (options.quick_mode_weights.size() == model_->objectives().size()) {
    return options.quick_mode_weights;
  }
  return WeightVector::Uniform(model_->objectives().size());
}

void DPPlanGenerator::ProcessSingletons(const Query& query,
                                        const DPOptions& options) {
  const ParetoSet::PruneOptions prune{options.alpha,
                                      options.aggressive_delete};
  const WeightVector weights = EffectiveWeights(options);
  for (int table = 0; table < query.num_tables(); ++table) {
    ParetoSet& set = memo_[TableSet::Singleton(table).mask()];
    if (options.single_plan_mode) {
      // Keep only the weighted-best access path.
      PlanNode best;
      double best_cost = std::numeric_limits<double>::infinity();
      for (int config : registry_->scan_configs()) {
        if (!model_->ScanApplicable(config, table)) continue;
        PlanNode candidate = model_->ScanNode(config, table);
        ++stats_.considered_plans;
        const double weighted = weights.WeightedCost(candidate.cost);
        if (weighted < best_cost) {
          best_cost = weighted;
          best = candidate;
        }
      }
      if (best_cost < std::numeric_limits<double>::infinity()) {
        set.Prune(arena_->New<PlanNode>(best), ParetoSet::PruneOptions());
        ++stats_.inserted_plans;
      }
    } else {
      for (int config : registry_->scan_configs()) {
        if (!model_->ScanApplicable(config, table)) continue;
        PlanNode candidate = model_->ScanNode(config, table);
        ++stats_.considered_plans;
        if (set.WouldInsert(candidate.cost, prune)) {
          set.Prune(arena_->New<PlanNode>(candidate), prune);
          ++stats_.inserted_plans;
        }
      }
    }
    set.Seal();
    ++stats_.complete_sets;
    stats_.last_complete_set = TableSet::Singleton(table);
    stats_.last_complete_pareto_count = set.size();
  }
}

std::vector<DPPlanGenerator::Split> DPPlanGenerator::SplitsOf(
    const Query& query, TableSet tables, const DPOptions& options) const {
  (void)query;
  std::vector<Split> connected;
  std::vector<Split> all;
  for (SubsetIterator it(tables); !it.Done(); it.Next()) {
    const TableSet left = it.Current();
    const TableSet right = it.Complement();
    if (!options.bushy && right.Cardinality() != 1) continue;
    Split split{left, right, model_->AnalyzeSplit(left, right)};
    if (options.cartesian_heuristic && split.info.has_predicate) {
      connected.push_back(split);
    }
    all.push_back(split);
  }
  if (options.cartesian_heuristic && !connected.empty()) return connected;
  return all;
}

bool DPPlanGenerator::ProcessSetInto(const Query& query, TableSet tables,
                                     const DPOptions& options, Arena* arena,
                                     ParetoSet* set, DPStats* stats) const {
  const ParetoSet::PruneOptions prune{options.alpha,
                                      options.aggressive_delete};
  long since_poll = 0;
  for (const Split& split : SplitsOf(query, tables, options)) {
    const ParetoSet& left_plans = SetFor(split.left);
    const ParetoSet& right_plans = SetFor(split.right);
    for (int li = 0; li < left_plans.size(); ++li) {
      const PlanNode* left = left_plans.at(li);
      for (int ri = 0; ri < right_plans.size(); ++ri) {
        const PlanNode* right = right_plans.at(ri);
        for (int config : registry_->join_configs()) {
          if (++since_poll >= kDeadlinePollInterval) {
            since_poll = 0;
            if (options.deadline.Expired()) return false;
          }
          const OperatorConfig& op = registry_->config(config);
          if (!model_->JoinApplicableFast(op, split.info)) continue;
          PlanNode candidate =
              model_->JoinNode(config, left, right, split.info);
          ++stats->considered_plans;
          if (set->WouldInsert(candidate.cost, prune)) {
            set->Prune(arena->New<PlanNode>(candidate), prune);
            ++stats->inserted_plans;
          }
        }
      }
    }
  }
  set->Seal();
  return true;
}

void DPPlanGenerator::ProcessSetQuick(const Query& query, TableSet tables,
                                      const DPOptions& options) {
  const WeightVector weights = EffectiveWeights(options);
  ParetoSet& set = memo_[tables.mask()];
  PlanNode best;
  double best_cost = std::numeric_limits<double>::infinity();
  for (const Split& split : SplitsOf(query, tables, options)) {
    const PlanNode* left = SetFor(split.left).SelectBestWeighted(weights);
    const PlanNode* right = SetFor(split.right).SelectBestWeighted(weights);
    if (left == nullptr || right == nullptr) continue;
    for (int config : registry_->join_configs()) {
      const OperatorConfig& op = registry_->config(config);
      if (!model_->JoinApplicableFast(op, split.info)) continue;
      PlanNode candidate = model_->JoinNode(config, left, right, split.info);
      ++stats_.considered_plans;
      const double weighted = weights.WeightedCost(candidate.cost);
      if (weighted < best_cost) {
        best_cost = weighted;
        best = candidate;
      }
    }
  }
  if (best_cost < std::numeric_limits<double>::infinity()) {
    set.Prune(arena_->New<PlanNode>(best), ParetoSet::PruneOptions());
    ++stats_.inserted_plans;
  }
}

}  // namespace moqo
