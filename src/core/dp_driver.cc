#include "core/dp_driver.h"

#include <algorithm>
#include <limits>

namespace moqo {

namespace {

// Deadline polls are amortized over this many candidate evaluations so the
// steady-state cost of timeout support is one branch per candidate.
constexpr long kDeadlinePollInterval = 4096;

}  // namespace

const ParetoSet& DPPlanGenerator::Run(const Query& query,
                                      const DPOptions& options) {
  query_ = &query;
  memo_.clear();
  stats_ = DPStats();

  const TableSet all = query.AllTables();
  const int n = query.num_tables();
  stats_.total_sets = (1 << n) - 1;

  // With a connected join graph, the Cartesian-product heuristic implies
  // that table sets inducing a disconnected subgraph are never needed: any
  // plan for such a set must contain a Cartesian product while predicate-
  // connected alternatives exist at every DP level (Postgres behaviour).
  const bool skip_disconnected =
      options.cartesian_heuristic && query.JoinGraphConnected();

  ProcessSingletons(query, options);
  for (int k = 2; k <= n; ++k) {
    for (TableSet tables : SubsetsOfSize(all, k)) {
      if (skip_disconnected && !query.InducedSubgraphConnected(tables)) {
        --stats_.total_sets;
        continue;
      }
      if (stats_.timed_out || options.deadline.Expired() ||
          options.single_plan_mode) {
        if (!options.single_plan_mode) stats_.timed_out = true;
        ProcessSetQuick(query, tables, options);
        continue;
      }
      if (!ProcessSet(query, tables, options)) {
        // Deadline hit mid-set: discard the partial result and rebuild this
        // set (and all remaining ones) in quick mode.
        stats_.timed_out = true;
        memo_[tables.mask()].clear();
        ProcessSetQuick(query, tables, options);
      }
    }
  }
  return SetFor(all);
}

const ParetoSet& DPPlanGenerator::SetFor(TableSet tables) const {
  auto it = memo_.find(tables.mask());
  return it != memo_.end() ? it->second : empty_set_;
}

size_t DPPlanGenerator::MemoryBytes() const {
  size_t bytes = arena_->reserved_bytes();
  for (const auto& [mask, set] : memo_) {
    bytes += set.MemoryBytes() + sizeof(mask);
  }
  return bytes;
}

WeightVector DPPlanGenerator::EffectiveWeights(
    const DPOptions& options) const {
  if (options.quick_mode_weights.size() == model_->objectives().size()) {
    return options.quick_mode_weights;
  }
  return WeightVector::Uniform(model_->objectives().size());
}

void DPPlanGenerator::ProcessSingletons(const Query& query,
                                        const DPOptions& options) {
  const ParetoSet::PruneOptions prune{options.alpha,
                                      options.aggressive_delete};
  const WeightVector weights = EffectiveWeights(options);
  for (int table = 0; table < query.num_tables(); ++table) {
    ParetoSet& set = memo_[TableSet::Singleton(table).mask()];
    if (options.single_plan_mode) {
      // Keep only the weighted-best access path.
      PlanNode best;
      double best_cost = std::numeric_limits<double>::infinity();
      for (int config : registry_->scan_configs()) {
        if (!model_->ScanApplicable(config, table)) continue;
        PlanNode candidate = model_->ScanNode(config, table);
        ++stats_.considered_plans;
        const double weighted = weights.WeightedCost(candidate.cost);
        if (weighted < best_cost) {
          best_cost = weighted;
          best = candidate;
        }
      }
      if (best_cost < std::numeric_limits<double>::infinity()) {
        set.Prune(arena_->New<PlanNode>(best), ParetoSet::PruneOptions());
        ++stats_.inserted_plans;
      }
    } else {
      for (int config : registry_->scan_configs()) {
        if (!model_->ScanApplicable(config, table)) continue;
        PlanNode candidate = model_->ScanNode(config, table);
        ++stats_.considered_plans;
        if (set.WouldInsert(candidate.cost, prune)) {
          set.Prune(arena_->New<PlanNode>(candidate), prune);
          ++stats_.inserted_plans;
        }
      }
    }
    set.Seal();
    ++stats_.complete_sets;
    stats_.last_complete_set = TableSet::Singleton(table);
    stats_.last_complete_pareto_count = set.size();
  }
}

std::vector<DPPlanGenerator::Split> DPPlanGenerator::SplitsOf(
    const Query& query, TableSet tables, const DPOptions& options) const {
  (void)query;
  std::vector<Split> connected;
  std::vector<Split> all;
  for (SubsetIterator it(tables); !it.Done(); it.Next()) {
    const TableSet left = it.Current();
    const TableSet right = it.Complement();
    if (!options.bushy && right.Cardinality() != 1) continue;
    Split split{left, right, model_->AnalyzeSplit(left, right)};
    if (options.cartesian_heuristic && split.info.has_predicate) {
      connected.push_back(split);
    }
    all.push_back(split);
  }
  if (options.cartesian_heuristic && !connected.empty()) return connected;
  return all;
}

bool DPPlanGenerator::ProcessSet(const Query& query, TableSet tables,
                                 const DPOptions& options) {
  const ParetoSet::PruneOptions prune{options.alpha,
                                      options.aggressive_delete};
  ParetoSet& set = memo_[tables.mask()];
  long since_poll = 0;
  for (const Split& split : SplitsOf(query, tables, options)) {
    const ParetoSet& left_plans = SetFor(split.left);
    const ParetoSet& right_plans = SetFor(split.right);
    for (int li = 0; li < left_plans.size(); ++li) {
      const PlanNode* left = left_plans.at(li);
      for (int ri = 0; ri < right_plans.size(); ++ri) {
        const PlanNode* right = right_plans.at(ri);
        for (int config : registry_->join_configs()) {
          if (++since_poll >= kDeadlinePollInterval) {
            since_poll = 0;
            if (options.deadline.Expired()) return false;
          }
          const OperatorConfig& op = registry_->config(config);
          if (!model_->JoinApplicableFast(op, split.info)) continue;
          PlanNode candidate =
              model_->JoinNode(config, left, right, split.info);
          ++stats_.considered_plans;
          if (set.WouldInsert(candidate.cost, prune)) {
            set.Prune(arena_->New<PlanNode>(candidate), prune);
            ++stats_.inserted_plans;
          }
        }
      }
    }
  }
  set.Seal();
  ++stats_.complete_sets;
  stats_.last_complete_set = tables;
  stats_.last_complete_pareto_count = set.size();
  return true;
}

void DPPlanGenerator::ProcessSetQuick(const Query& query, TableSet tables,
                                      const DPOptions& options) {
  const WeightVector weights = EffectiveWeights(options);
  ParetoSet& set = memo_[tables.mask()];
  PlanNode best;
  double best_cost = std::numeric_limits<double>::infinity();
  for (const Split& split : SplitsOf(query, tables, options)) {
    const PlanNode* left = SetFor(split.left).SelectBestWeighted(weights);
    const PlanNode* right = SetFor(split.right).SelectBestWeighted(weights);
    if (left == nullptr || right == nullptr) continue;
    for (int config : registry_->join_configs()) {
      const OperatorConfig& op = registry_->config(config);
      if (!model_->JoinApplicableFast(op, split.info)) continue;
      PlanNode candidate = model_->JoinNode(config, left, right, split.info);
      ++stats_.considered_plans;
      const double weighted = weights.WeightedCost(candidate.cost);
      if (weighted < best_cost) {
        best_cost = weighted;
        best = candidate;
      }
    }
  }
  if (best_cost < std::numeric_limits<double>::infinity()) {
    set.Prune(arena_->New<PlanNode>(best), ParetoSet::PruneOptions());
    ++stats_.inserted_plans;
  }
}

}  // namespace moqo
