// Copyright (c) 2026 moqo authors. MIT license.
//
// The public optimizer API: problem/option/result types shared by the
// exact algorithm (EXA), the representative-tradeoffs algorithm (RTA), the
// iterative-refinement algorithm (IRA), and the baselines.

#ifndef MOQO_CORE_OPTIMIZER_H_
#define MOQO_CORE_OPTIMIZER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/dp_driver.h"
#include "core/plan_set.h"
#include "cost/cost_vector.h"
#include "cost/objective.h"
#include "plan/operators.h"
#include "plan/plan_node.h"
#include "query/query.h"
#include "util/arena.h"

namespace moqo {

/// A bounded-weighted MOQO problem instance I = <Q, W, B> (Definition 2).
/// Leave `bounds` default-constructed (size 0) or all-infinite for the
/// weighted MOQO problem I = <Q, W> (Definition 1).
struct MOQOProblem {
  const Query* query = nullptr;
  ObjectiveSet objectives;
  WeightVector weights;
  BoundVector bounds;

  /// True iff no finite bound is set (weighted MOQO).
  bool IsWeightedOnly() const {
    return bounds.size() == 0 || bounds.AllUnbounded();
  }
};

struct OptimizerResult;

/// Optimizer configuration shared by all algorithms.
struct OptimizerOptions {
  /// User precision alpha_U for the approximation schemes (>= 1). The EXA
  /// ignores it (always exact).
  double alpha = 1.0;
  /// Wall-clock budget in milliseconds; < 0 means no timeout. On expiry
  /// the optimizer finishes quickly per Section 5.1.
  int64_t timeout_ms = -1;
  /// Physical operator space (sampling scans, DOP variants, ...).
  OperatorRegistry::Options operators;
  /// Plan-space switches (see DPOptions).
  bool bushy = true;
  bool cartesian_heuristic = true;
  /// Ablation only: guarantee-destroying aggressive pruning (Section 6.2).
  bool aggressive_delete = false;
  /// IRA: hard cap on refinement iterations (safety net; Theorem 8
  /// guarantees termination well before this in practice).
  int max_iterations = 64;
  /// Intra-query parallelism: threads cooperating on each DP level
  /// (1 = serial; the calling thread counts as one). Requires `dp_pool`.
  /// Frontiers are identical for every value (see dp_driver.h).
  int parallelism = 1;
  /// Shared pool the DP borrows helper threads from; not owned, must
  /// outlive the optimizer. Null = serial regardless of `parallelism`.
  ThreadPool* dp_pool = nullptr;
  /// Cross-query memo of table-set-level Pareto frontiers, shared between
  /// optimizer runs; not owned, must outlive the optimizer. Null = no
  /// cross-query reuse. Frontiers are byte-identical with the memo on or
  /// off; only the work to build them is shared (see memo/subplan_memo.h).
  SubplanMemo* subplan_memo = nullptr;
  /// Anytime refinement ladder (RTA only; ignored by the other
  /// algorithms): user precisions to run in order, strictly decreasing
  /// toward the target. Each rung is one full DP at that precision; after
  /// a rung completes, `on_rung` (if set) receives its result — the
  /// intermediate-frontier publish hook the service's FrontierSessions are
  /// built on. Rungs share the attached `subplan_memo`, so a rung probes
  /// (and republishes) the table-set frontiers that same-alpha rungs of
  /// overlapping queries already sealed, and each rung's PlanSet is
  /// byte-identical to a standalone run at its alpha. When non-empty,
  /// `alpha` is superseded by the ladder's last entry. Empty = classic
  /// single-run behaviour.
  std::vector<double> alpha_ladder;
  /// Called after every completed (non-timed-out) ladder rung with the
  /// rung index, that rung's user precision, and its result (whose PlanSet
  /// the callee may share — it survives the optimizer). Return false to
  /// stop refining; the rung's result then becomes the final one. Invoked
  /// on the optimizing thread.
  std::function<bool(int rung, double alpha, const OptimizerResult& result)>
      on_rung;
  /// Per-rung wall budget in ms (< 0 = none), combined with the overall
  /// `timeout_ms`. A rung that exceeds it terminates the ladder; the last
  /// completed rung's result is returned (marked timed out only when no
  /// rung ever completed).
  int64_t step_timeout_ms = -1;
  /// External cancellation flag, polled wherever the deadline is (see
  /// Deadline::WithCancel); not owned, must outlive the run. Cancellation
  /// behaves like deadline expiry: the run degrades to a quick finish and
  /// reports timed_out.
  const std::atomic<bool>* cancel = nullptr;
  /// Observability (PR 6): span recorder handed through to the DP
  /// (per-level/per-set/memo spans); not owned, null = no tracing.
  /// `trace_id` is the request/session correlation id stamped on every
  /// span of this run. NOT part of the problem identity — cache
  /// signatures ignore both fields.
  Tracer* tracer = nullptr;
  uint64_t trace_id = 0;
};

/// Measurements reported for Figures 5, 9 and 10. Frontier cardinality is
/// NOT tracked here: it is derived from the result's PlanSet (the single
/// source of truth) via OptimizerResult::frontier_size().
struct OptimizerMetrics {
  double optimization_ms = 0;
  size_t memory_bytes = 0;     ///< Arena + plan-set footprint (last iter).
  bool timed_out = false;
  long considered_plans = 0;
  /// #Pareto plans of the last completely treated table set (Figure 5/9).
  int last_complete_pareto_count = 0;
  /// Refinement iterations executed (1 for EXA/RTA; Figure 10 for IRA).
  int iterations = 1;
};

/// The outcome of one optimization: the full approximate Pareto set
/// (`plan_set`, the real product per Figure 4) plus the scalarization the
/// request's weights/bounds picked from it (SelectPlan). `plan` points into
/// `plan_set`'s arena, which is shared — results are cheap to copy and
/// safely outlive the optimizer, and any later preference can be answered
/// by re-running SelectPlan over the same `plan_set` without a new DP run.
struct OptimizerResult {
  /// The approximate Pareto set with plans. Never null after Optimize()
  /// (empty for degenerate queries); null only in default-constructed
  /// results.
  std::shared_ptr<const PlanSet> plan_set;
  /// The selected plan; never null for queries with at least one table.
  const PlanNode* plan = nullptr;
  CostVector cost;
  double weighted_cost = 0;
  bool respects_bounds = true;
  OptimizerMetrics metrics;

  /// Cost vectors of the final (approximate) Pareto set for Q — the
  /// "byproduct of optimization" visualized in Figure 4. Derived from
  /// `plan_set`; empty when `plan_set` is null.
  const std::vector<CostVector>& frontier() const;
  int frontier_size() const { return plan_set ? plan_set->size() : 0; }
};

/// Shared implementation scaffolding: owns the arena, the operator
/// registry, and the translation from OptimizerOptions to DPOptions.
class OptimizerBase {
 public:
  explicit OptimizerBase(const OptimizerOptions& options)
      : options_(options), registry_(options.operators) {}
  virtual ~OptimizerBase() = default;

  /// Solves the instance. Implementations never return a null plan for
  /// queries with at least one table.
  virtual OptimizerResult Optimize(const MOQOProblem& problem) = 0;

  const OperatorRegistry& registry() const { return registry_; }
  const OptimizerOptions& options() const { return options_; }

 protected:
  Deadline MakeDeadline() const {
    const Deadline base = options_.timeout_ms < 0
                              ? Deadline::Infinite()
                              : Deadline::AfterMillis(options_.timeout_ms);
    return base.WithCancel(options_.cancel);
  }

  DPOptions MakeDPOptions(const MOQOProblem& problem, double internal_alpha,
                          Deadline deadline) const {
    DPOptions dp;
    dp.alpha = internal_alpha;
    dp.aggressive_delete = options_.aggressive_delete;
    dp.bushy = options_.bushy;
    dp.cartesian_heuristic = options_.cartesian_heuristic;
    dp.deadline = deadline;
    dp.quick_mode_weights = problem.weights;
    dp.parallelism = options_.parallelism;
    dp.pool = options_.dp_pool;
    dp.subplan_memo = options_.subplan_memo;
    dp.tracer = options_.tracer;
    dp.trace_id = options_.trace_id;
    return dp;
  }

  /// Packages the generator state into a result: snapshots `final_set`
  /// into a shared PlanSet and scalarizes it with the problem's weights
  /// under `select_bounds` (pass an empty BoundVector for pure weighted
  /// selection; `respects_bounds` is always judged against
  /// `problem.bounds`).
  OptimizerResult FinishResult(const MOQOProblem& problem,
                               const DPPlanGenerator& generator,
                               const ParetoSet& final_set,
                               const BoundVector& select_bounds,
                               double elapsed_ms) const;

  OptimizerOptions options_;
  OperatorRegistry registry_;
  Arena arena_;
};

/// Internal pruning precision of the RTA (Algorithm 2): the |Q|-th root of
/// the target precision, so that Theorem 3 yields an alpha_U-approximate
/// Pareto set after |Q| induction steps.
double RTAInternalPrecision(double alpha_u, int num_tables);

/// IRA precision-refinement policy (Algorithm 3, line 8):
/// alpha(i) = alpha_U ^ (2^(-i/(3l-3))), strictly decreasing in the
/// iteration counter i >= 1 and chosen so the i-th iteration's worst-case
/// time doubles per iteration (Theorem 7), making redundant work across
/// iterations negligible. For l = 1 the policy degenerates to halving the
/// exponent each iteration.
double IRAIterationPrecision(double alpha_u, int iteration,
                             int num_objectives);

}  // namespace moqo

#endif  // MOQO_CORE_OPTIMIZER_H_
