// Copyright (c) 2026 moqo authors. MIT license.
//
// The public optimizer API: problem/option/result types shared by the
// exact algorithm (EXA), the representative-tradeoffs algorithm (RTA), the
// iterative-refinement algorithm (IRA), and the baselines.

#ifndef MOQO_CORE_OPTIMIZER_H_
#define MOQO_CORE_OPTIMIZER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/dp_driver.h"
#include "cost/cost_vector.h"
#include "cost/objective.h"
#include "plan/operators.h"
#include "plan/plan_node.h"
#include "query/query.h"
#include "util/arena.h"

namespace moqo {

/// A bounded-weighted MOQO problem instance I = <Q, W, B> (Definition 2).
/// Leave `bounds` default-constructed (size 0) or all-infinite for the
/// weighted MOQO problem I = <Q, W> (Definition 1).
struct MOQOProblem {
  const Query* query = nullptr;
  ObjectiveSet objectives;
  WeightVector weights;
  BoundVector bounds;

  /// True iff no finite bound is set (weighted MOQO).
  bool IsWeightedOnly() const {
    return bounds.size() == 0 || bounds.AllUnbounded();
  }
};

/// Optimizer configuration shared by all algorithms.
struct OptimizerOptions {
  /// User precision alpha_U for the approximation schemes (>= 1). The EXA
  /// ignores it (always exact).
  double alpha = 1.0;
  /// Wall-clock budget in milliseconds; < 0 means no timeout. On expiry
  /// the optimizer finishes quickly per Section 5.1.
  int64_t timeout_ms = -1;
  /// Physical operator space (sampling scans, DOP variants, ...).
  OperatorRegistry::Options operators;
  /// Plan-space switches (see DPOptions).
  bool bushy = true;
  bool cartesian_heuristic = true;
  /// Ablation only: guarantee-destroying aggressive pruning (Section 6.2).
  bool aggressive_delete = false;
  /// IRA: hard cap on refinement iterations (safety net; Theorem 8
  /// guarantees termination well before this in practice).
  int max_iterations = 64;
};

/// Measurements reported for Figures 5, 9 and 10.
struct OptimizerMetrics {
  double optimization_ms = 0;
  size_t memory_bytes = 0;     ///< Arena + plan-set footprint (last iter).
  bool timed_out = false;
  long considered_plans = 0;
  /// #Pareto plans of the last completely treated table set (Figure 5/9).
  int last_complete_pareto_count = 0;
  /// Refinement iterations executed (1 for EXA/RTA; Figure 10 for IRA).
  int iterations = 1;
  /// Cardinality of the final (approximate) Pareto set for Q.
  int frontier_size = 0;
};

/// The outcome of one optimization. The winning plan tree is deep-copied
/// into a result-owned arena, so results safely outlive (and may be moved
/// around independently of) the optimizer that produced them.
struct OptimizerResult {
  /// Owns the storage behind `plan`; shared so results are copyable.
  std::shared_ptr<Arena> plan_arena;
  const PlanNode* plan = nullptr;
  CostVector cost;
  double weighted_cost = 0;
  bool respects_bounds = true;
  /// Cost vectors of the final (approximate) Pareto set for Q — the
  /// "byproduct of optimization" visualized in Figure 4.
  std::vector<CostVector> frontier;
  OptimizerMetrics metrics;
};

/// Shared implementation scaffolding: owns the arena, the operator
/// registry, and the translation from OptimizerOptions to DPOptions.
class OptimizerBase {
 public:
  explicit OptimizerBase(const OptimizerOptions& options)
      : options_(options), registry_(options.operators) {}
  virtual ~OptimizerBase() = default;

  /// Solves the instance. Implementations never return a null plan for
  /// queries with at least one table.
  virtual OptimizerResult Optimize(const MOQOProblem& problem) = 0;

  const OperatorRegistry& registry() const { return registry_; }
  const OptimizerOptions& options() const { return options_; }

 protected:
  Deadline MakeDeadline() const {
    return options_.timeout_ms < 0
               ? Deadline::Infinite()
               : Deadline::AfterMillis(options_.timeout_ms);
  }

  DPOptions MakeDPOptions(const MOQOProblem& problem, double internal_alpha,
                          Deadline deadline) const {
    DPOptions dp;
    dp.alpha = internal_alpha;
    dp.aggressive_delete = options_.aggressive_delete;
    dp.bushy = options_.bushy;
    dp.cartesian_heuristic = options_.cartesian_heuristic;
    dp.deadline = deadline;
    dp.quick_mode_weights = problem.weights;
    return dp;
  }

  /// Packages the generator state into a result.
  OptimizerResult FinishResult(const MOQOProblem& problem,
                               const DPPlanGenerator& generator,
                               const ParetoSet& final_set,
                               const PlanNode* plan, double elapsed_ms) const;

  OptimizerOptions options_;
  OperatorRegistry registry_;
  Arena arena_;
};

/// Internal pruning precision of the RTA (Algorithm 2): the |Q|-th root of
/// the target precision, so that Theorem 3 yields an alpha_U-approximate
/// Pareto set after |Q| induction steps.
double RTAInternalPrecision(double alpha_u, int num_tables);

/// IRA precision-refinement policy (Algorithm 3, line 8):
/// alpha(i) = alpha_U ^ (2^(-i/(3l-3))), strictly decreasing in the
/// iteration counter i >= 1 and chosen so the i-th iteration's worst-case
/// time doubles per iteration (Theorem 7), making redundant work across
/// iterations negligible. For l = 1 the policy degenerates to halving the
/// exponent each iteration.
double IRAIterationPrecision(double alpha_u, int iteration,
                             int num_objectives);

}  // namespace moqo

#endif  // MOQO_CORE_OPTIMIZER_H_
