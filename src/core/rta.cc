#include "core/rta.h"

namespace moqo {

namespace {

/// Bounds honored at selection time over the finished frontier — the same
/// bounded SelectBest the service applies on frontier hits, so cold misses
/// and cache hits agree. Mis-sized bounds mean "unbounded".
BoundVector SelectBounds(const MOQOProblem& problem) {
  return problem.bounds.size() == problem.objectives.size()
             ? problem.bounds
             : BoundVector();
}

}  // namespace

OptimizerResult RTAOptimizer::Optimize(const MOQOProblem& problem) {
  StopWatch watch;
  const int n = problem.query->num_tables();
  const Deadline overall = MakeDeadline();
  const BoundVector select_bounds = SelectBounds(problem);
  CostModel model(problem.query, &registry_, problem.objectives);

  // The precision schedule: the classic single run is a one-rung ladder at
  // the configured alpha.
  const std::vector<double> ladder = options_.alpha_ladder.empty()
                                         ? std::vector<double>{options_.alpha}
                                         : options_.alpha_ladder;

  OptimizerResult last;
  bool have_complete = false;
  for (size_t rung = 0; rung < ladder.size(); ++rung) {
    // Each rung gets the remaining overall budget, tightened by the
    // per-rung budget when one is set.
    Deadline deadline = overall;
    if (options_.step_timeout_ms >= 0) {
      deadline = Deadline::Earliest(
          overall, Deadline::AfterMillis(options_.step_timeout_ms)
                       .WithCancel(options_.cancel));
    }

    // Memory is reused across rungs (as in the IRA, Section 7.2): each
    // rung starts from a fresh arena and DP table. Results survive the
    // reset — FinishResult snapshots the frontier into a shared PlanSet
    // with its own storage.
    StopWatch rung_watch;
    arena_.Reset();
    DPPlanGenerator generator(&model, &registry_, &arena_);
    // Algorithm 2: derive the internal pruning precision from the rung's
    // user precision alpha_U.
    DPOptions dp = MakeDPOptions(problem, RTAInternalPrecision(ladder[rung], n),
                                 deadline);
    const ParetoSet& pareto = generator.Run(*problem.query, dp);
    OptimizerResult result = FinishResult(problem, generator, pareto,
                                          select_bounds,
                                          rung_watch.ElapsedMillis());
    result.metrics.iterations = static_cast<int>(rung) + 1;

    if (result.metrics.timed_out) {
      // An interrupted rung carries no alpha guarantee. Fall back to the
      // last completed rung if there is one (its looser guarantee still
      // holds); otherwise return the degraded quick-mode result as-is.
      if (!have_complete) return result;
      last.metrics.optimization_ms = watch.ElapsedMillis();
      return last;
    }
    last = std::move(result);
    have_complete = true;
    if (options_.on_rung &&
        !options_.on_rung(static_cast<int>(rung), ladder[rung], last)) {
      break;  // The caller has what it needs (e.g. session cancelled).
    }
  }
  last.metrics.optimization_ms = watch.ElapsedMillis();
  return last;
}

}  // namespace moqo
