#include "core/rta.h"

namespace moqo {

OptimizerResult RTAOptimizer::Optimize(const MOQOProblem& problem) {
  StopWatch watch;
  arena_.Reset();
  CostModel model(problem.query, &registry_, problem.objectives);
  DPPlanGenerator generator(&model, &registry_, &arena_);

  // Algorithm 2: derive the internal precision from alpha_U.
  const double alpha_i =
      RTAInternalPrecision(options_.alpha, problem.query->num_tables());
  DPOptions dp = MakeDPOptions(problem, alpha_i, MakeDeadline());
  const ParetoSet& pareto = generator.Run(*problem.query, dp);

  // The RTA's *pruning* is weighted-MOQO only (Algorithm 2), but selection
  // honors any request bounds over the finished frontier — the same
  // bounded SelectBest the service applies on frontier hits, so cold
  // misses and cache hits agree. Mis-sized bounds mean "unbounded".
  const BoundVector select_bounds =
      problem.bounds.size() == problem.objectives.size() ? problem.bounds
                                                         : BoundVector();
  return FinishResult(problem, generator, pareto, select_bounds,
                      watch.ElapsedMillis());
}

}  // namespace moqo
