#include "core/rta.h"

namespace moqo {

OptimizerResult RTAOptimizer::Optimize(const MOQOProblem& problem) {
  StopWatch watch;
  arena_.Reset();
  CostModel model(problem.query, &registry_, problem.objectives);
  DPPlanGenerator generator(&model, &registry_, &arena_);

  // Algorithm 2: derive the internal precision from alpha_U.
  const double alpha_i =
      RTAInternalPrecision(options_.alpha, problem.query->num_tables());
  DPOptions dp = MakeDPOptions(problem, alpha_i, MakeDeadline());
  const ParetoSet& pareto = generator.Run(*problem.query, dp);

  // SelectBest with infinite bounds: weighted MOQO only.
  const PlanNode* best = pareto.SelectBestWeighted(problem.weights);
  return FinishResult(problem, generator, pareto, best,
                      watch.ElapsedMillis());
}

}  // namespace moqo
