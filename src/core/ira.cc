#include "core/ira.h"

#include <cmath>

namespace moqo {

bool IRAOptimizer::StoppingConditionMet(const ParetoSet& set,
                                        const WeightVector& weights,
                                        const BoundVector& bounds,
                                        const PlanNode* popt, double alpha,
                                        double alpha_u) {
  if (popt == nullptr) return true;

  // Guard strengthening Algorithm 3 (see DESIGN.md "paper-gap note"): when
  // popt violates the bounds, it is the *global* weighted minimum of P, so
  // the deflation test below is vacuously satisfied — the literal
  // pseudo-code would terminate and return a bound-violating plan even
  // when bound-respecting plans exist (relative cost infinity under
  // Definition 3). Theorem 6's proof implicitly assumes popt respects B
  // whenever the optimum does; we therefore only accept a violating popt
  // once NO plan respects even the relaxed bounds alpha*B — which
  // certifies that no plan at all respects B (any B-respecting plan p* has
  // an alpha-representative within alpha*B). Theorem 8's argument still
  // guarantees termination: below some alpha > 1, "respects alpha*B"
  // coincides with "respects B".
  if (!bounds.Respects(popt->cost)) {
    for (const PlanNode* p : set.plans()) {
      if (bounds.RespectsRelaxed(p->cost, alpha)) return false;
    }
    return true;
  }

  const double popt_threshold = weights.WeightedCost(popt->cost) / alpha_u;
  for (const PlanNode* p : set.plans()) {
    // A plan respecting the *relaxed* bounds alpha*B whose deflated
    // weighted cost undercuts popt's certified cost disproves optimality.
    if (bounds.RespectsRelaxed(p->cost, alpha) &&
        weights.WeightedCost(p->cost) / alpha < popt_threshold) {
      return false;
    }
  }
  return true;
}

OptimizerResult IRAOptimizer::Optimize(const MOQOProblem& problem) {
  StopWatch watch;
  const int l = problem.objectives.size();
  const int n = problem.query->num_tables();
  const BoundVector bounds =
      problem.bounds.size() == l ? problem.bounds : BoundVector::Unbounded(l);
  const Deadline deadline = MakeDeadline();

  CostModel model(problem.query, &registry_, problem.objectives);
  OptimizerResult result;
  int iteration = 0;
  while (true) {
    ++iteration;
    const double alpha = iteration >= options_.max_iterations
                             ? 1.0  // Safety net: exact final iteration.
                             : IRAIterationPrecision(options_.alpha,
                                                     iteration, l);

    // Memory is reused across iterations (Section 7.2, footnote 5): each
    // iteration starts from a fresh arena and memo.
    arena_.Reset();
    DPPlanGenerator generator(&model, &registry_, &arena_);
    // FindParetoPlans(Q, alpha): the DP prunes with the |Q|-th root.
    DPOptions dp =
        MakeDPOptions(problem, RTAInternalPrecision(alpha, n), deadline);
    const ParetoSet& pareto = generator.Run(*problem.query, dp);
    const PlanNode* popt = pareto.SelectBest(problem.weights, bounds);

    // Converged: the alpha_U guarantee of Theorem 6 holds (the exact
    // alpha <= 1 iteration trivially satisfies it).
    const bool converged =
        StoppingConditionMet(pareto, problem.weights, bounds, popt, alpha,
                             options_.alpha) ||
        alpha <= 1.0;
    const bool out_of_time =
        generator.stats().timed_out || deadline.Expired();

    // No max_iterations disjunct needed: at that iteration alpha is
    // forced to 1.0 above, which makes `converged` true.
    if (converged || out_of_time) {
      // FinishResult's SelectPlan re-derives popt over the PlanSet copy:
      // same weights, bounds, and iteration order, hence the same plan.
      result = FinishResult(problem, generator, pareto, bounds,
                            watch.ElapsedMillis());
      result.metrics.iterations = iteration;
      // A deadline exit between iterations truncates refinement without
      // the DP itself timing out; the result then carries no alpha_U
      // guarantee and must be reported (and treated by caches) as
      // timed out.
      if (!converged && out_of_time) result.metrics.timed_out = true;
      return result;
    }
  }
}

}  // namespace moqo
