// Copyright (c) 2026 moqo authors. MIT license.
//
// Join graphs of the 22 TPC-H queries.
//
// The paper's experiments (Figures 5, 9, 10) run the optimizers on TPC-H,
// ordering queries on the x-axis by the maximal number of tables in any
// from-clause. Like Postgres (whose subquery-separation heuristic the paper
// kept in place, Section 4), each query is modeled by its largest
// from-clause block; EXISTS-style subqueries that Postgres converts into
// joins are folded into that block, which yields the per-query table counts
// of the paper's x-axis annotation:
//
//   Q1:1 Q4:1 Q6:1 Q22:2 Q12:2 Q13:2 Q14:2 Q15:2 Q16:2 Q17:2 Q19:2 Q20:2
//   Q3:3 Q11:3 Q18:3 Q10:4 Q21:4 Q2:5 Q5:6 Q7:6 Q9:6 Q8:8

#ifndef MOQO_QUERY_TPCH_QUERIES_H_
#define MOQO_QUERY_TPCH_QUERIES_H_

#include <vector>

#include "query/query.h"

namespace moqo {

/// Builds the join graph of TPC-H query `number` (1..22) over `catalog`
/// (which must be a Catalog::TpcH()). Aborts on out-of-range numbers.
Query MakeTpcHQuery(const Catalog* catalog, int number);

/// Query numbers ordered by maximal from-clause size, the x-axis order of
/// Figures 5, 9 and 10: 1 4 6 22 12 13 14 15 16 17 19 20 3 11 18 10 21 2 5
/// 7 9 8.
const std::vector<int>& TpcHQueryOrder();

/// Number of tables in the modeled join graph of query `number`.
int TpcHQueryTableCount(int number);

}  // namespace moqo

#endif  // MOQO_QUERY_TPCH_QUERIES_H_
