#include "query/query.h"

#include <cassert>
#include <cstdlib>
#include <sstream>

namespace moqo {

int Query::AddTable(int table_id) {
  assert(table_id >= 0 && table_id < catalog_->num_tables());
  assert(num_tables() < TableSet::kMaxTables);
  table_ids_.push_back(table_id);
  return num_tables() - 1;
}

int Query::AddTable(const std::string& table_name) {
  const int id = catalog_->FindTable(table_name);
  assert(id >= 0 && "unknown table name");
  return AddTable(id);
}

void Query::AddJoin(int left_table, std::string left_column, int right_table,
                    std::string right_column) {
  assert(left_table != right_table);
  assert(left_table >= 0 && left_table < num_tables());
  assert(right_table >= 0 && right_table < num_tables());
  joins_.push_back(JoinPredicate{left_table, std::move(left_column),
                                 right_table, std::move(right_column)});
}

void Query::AddFilter(FilterPredicate filter) {
  assert(filter.table >= 0 && filter.table < num_tables());
  filters_.push_back(std::move(filter));
}

bool Query::SplitHasJoinPredicate(TableSet a, TableSet b) const {
  for (const JoinPredicate& join : joins_) {
    if (join.Connects(a, b)) return true;
  }
  return false;
}

std::vector<const JoinPredicate*> Query::JoinsForSplit(TableSet a,
                                                       TableSet b) const {
  std::vector<const JoinPredicate*> result;
  for (const JoinPredicate& join : joins_) {
    if (join.Connects(a, b)) result.push_back(&join);
  }
  return result;
}

std::vector<const FilterPredicate*> Query::FiltersForTable(
    int local_index) const {
  std::vector<const FilterPredicate*> result;
  for (const FilterPredicate& filter : filters_) {
    if (filter.table == local_index) result.push_back(&filter);
  }
  return result;
}

bool Query::JoinGraphConnected() const {
  return InducedSubgraphConnected(AllTables());
}

bool Query::InducedSubgraphConnected(TableSet tables) const {
  if (tables.Cardinality() <= 1) return true;
  TableSet reached = TableSet::Singleton(tables.First());
  bool grew = true;
  while (grew) {
    grew = false;
    for (const JoinPredicate& join : joins_) {
      if (!tables.Contains(join.left_table) ||
          !tables.Contains(join.right_table)) {
        continue;
      }
      const bool left_in = reached.Contains(join.left_table);
      const bool right_in = reached.Contains(join.right_table);
      if (left_in != right_in) {
        reached = reached.With(left_in ? join.right_table : join.left_table);
        grew = true;
      }
    }
  }
  return reached == tables;
}

std::string Query::ToString() const {
  std::ostringstream out;
  out << name_ << ": tables[";
  for (int i = 0; i < num_tables(); ++i) {
    if (i > 0) out << ", ";
    out << i << "=" << table(i).name();
  }
  out << "] joins[";
  for (size_t i = 0; i < joins_.size(); ++i) {
    if (i > 0) out << ", ";
    out << joins_[i].ToString();
  }
  out << "] filters[";
  for (size_t i = 0; i < filters_.size(); ++i) {
    if (i > 0) out << ", ";
    out << filters_[i].ToString();
  }
  out << "]";
  return out.str();
}

}  // namespace moqo
