// Copyright (c) 2026 moqo authors. MIT license.
//
// Query: the optimizer input. A query binds a set of base tables (by
// catalog id) together with join and filter predicates; the induced join
// graph drives split enumeration and the Cartesian-product heuristic that
// the paper kept in place (Section 4).

#ifndef MOQO_QUERY_QUERY_H_
#define MOQO_QUERY_QUERY_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "query/predicate.h"
#include "util/table_set.h"

namespace moqo {

/// A join query over tables of a Catalog.
///
/// Tables are referenced by *query-local* indexes 0..n-1 (multiple
/// occurrences of the same base table, as in TPC-H Q21's self-joins of
/// lineitem, get distinct local indexes).
class Query {
 public:
  Query(const Catalog* catalog, std::string name)
      : catalog_(catalog), name_(std::move(name)) {}

  /// Adds an occurrence of catalog table `table_id`; returns its
  /// query-local index.
  int AddTable(int table_id);

  /// Convenience overload resolving the table by name. Aborts if unknown.
  int AddTable(const std::string& table_name);

  void AddJoin(int left_table, std::string left_column, int right_table,
               std::string right_column);
  void AddFilter(FilterPredicate filter);

  const Catalog& catalog() const { return *catalog_; }
  const std::string& name() const { return name_; }
  int num_tables() const { return static_cast<int>(table_ids_.size()); }

  /// Catalog id of query-local table `local_index`.
  int table_id(int local_index) const { return table_ids_[local_index]; }
  const Table& table(int local_index) const {
    return catalog_->table(table_ids_[local_index]);
  }

  const std::vector<JoinPredicate>& joins() const { return joins_; }
  const std::vector<FilterPredicate>& filters() const { return filters_; }

  /// The set of all query-local tables.
  TableSet AllTables() const { return TableSet::Prefix(num_tables()); }

  /// True iff at least one join predicate connects `a` and `b`; used by the
  /// heuristic that considers Cartesian products only when no predicate-
  /// connected split exists.
  bool SplitHasJoinPredicate(TableSet a, TableSet b) const;

  /// All join predicates applicable to the split (a, b).
  std::vector<const JoinPredicate*> JoinsForSplit(TableSet a,
                                                  TableSet b) const;

  /// Filters on query-local table `local_index`.
  std::vector<const FilterPredicate*> FiltersForTable(int local_index) const;

  /// True iff the join graph is connected (queries with product-only
  /// subplans are legal but flagged by validation).
  bool JoinGraphConnected() const;

  /// True iff the join graph restricted to `tables` is connected. The DP
  /// drivers skip disconnected subsets when the full graph is connected
  /// (the Postgres behaviour behind the paper's Cartesian-product
  /// heuristic: such sets could only be built by Cartesian products while
  /// predicate-connected joins are available).
  bool InducedSubgraphConnected(TableSet tables) const;

  std::string ToString() const;

 private:
  const Catalog* catalog_;
  std::string name_;
  std::vector<int> table_ids_;
  std::vector<JoinPredicate> joins_;
  std::vector<FilterPredicate> filters_;
};

}  // namespace moqo

#endif  // MOQO_QUERY_QUERY_H_
