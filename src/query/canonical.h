// Copyright (c) 2026 moqo authors. MIT license.
//
// Canonical binary encoding of a query's optimizer-relevant structure.
//
// Two Query objects that bind the same catalog tables with the same join
// edges and filters — regardless of construction order of joins/filters or
// the query's display name — produce byte-identical encodings. The service
// layer keys its plan cache on this encoding (plus problem parameters), so
// structurally identical requests share cached Pareto sets.

#ifndef MOQO_QUERY_CANONICAL_H_
#define MOQO_QUERY_CANONICAL_H_

#include <cstdint>
#include <string>

#include "query/query.h"

namespace moqo {

/// Appends a length-prefixed string to a canonical encoding.
void AppendCanonicalString(std::string* out, const std::string& s);

/// Appends a 64-bit value little-endian.
void AppendCanonicalU64(std::string* out, uint64_t v);

/// Appends a double bit-exactly (its IEEE-754 representation).
void AppendCanonicalDouble(std::string* out, double v);

/// FNV-1a over a canonical encoding; the hash every canonical cache key
/// (service/signature, memo/subplan_key) derives its routing value from.
uint64_t Fnv1aHash(const std::string& data);

/// Appends the canonical *content* encoding of one catalog table:
/// everything the cost model reads (name, cardinality, widths, per-column
/// statistics and histograms, index availability). Identity is by content,
/// so the same table id over a differently scaled or differently
/// distributed catalog encodes differently. Shared by the whole-query
/// encoding below and the table-set-level subplan memo keys.
void AppendCanonicalTable(std::string* out, const Table& table);

/// Appends the canonical encoding of `query`'s structure to `out`:
/// referenced tables in query-local order — including everything the cost
/// model reads from the catalog (cardinality, widths, per-column
/// statistics and histograms, index availability), so the same table ids
/// over differently scaled or differently distributed catalogs encode
/// differently — then join edges with endpoints ordered and the edge list
/// sorted, then filters sorted. The query name is deliberately excluded.
void AppendCanonicalQuery(std::string* out, const Query& query);

/// Convenience wrapper returning the encoding of just the query structure.
std::string CanonicalQueryEncoding(const Query& query);

}  // namespace moqo

#endif  // MOQO_QUERY_CANONICAL_H_
