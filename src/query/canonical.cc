// Copyright (c) 2026 moqo authors. MIT license.

#include "query/canonical.h"

#include <algorithm>
#include <cstring>
#include <tuple>
#include <vector>

namespace moqo {

void AppendCanonicalString(std::string* out, const std::string& s) {
  AppendCanonicalU64(out, s.size());
  out->append(s);
}

void AppendCanonicalU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>(v >> (8 * i)));
  }
}

void AppendCanonicalDouble(std::string* out, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  AppendCanonicalU64(out, bits);
}

uint64_t Fnv1aHash(const std::string& data) {
  uint64_t hash = 14695981039346656037ull;
  for (unsigned char c : data) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

/// Catalog identity by content: the same table id over a differently
/// scaled or differently distributed catalog must not share an encoding.
/// Everything the cost model reads is covered — cardinality, widths,
/// per-column statistics (histograms drive selectivities), and index
/// availability (drives the physical plan space).
void AppendCanonicalTable(std::string* out, const Table& table) {
  AppendCanonicalString(out, table.name());
  AppendCanonicalDouble(out, table.row_count());
  AppendCanonicalDouble(out, table.row_width_bytes());
  AppendCanonicalU64(out, table.columns().size());
  for (const ColumnStats& column : table.columns()) {
    AppendCanonicalString(out, column.name);
    AppendCanonicalDouble(out, column.ndv);
    AppendCanonicalDouble(out, column.min_value);
    AppendCanonicalDouble(out, column.max_value);
    AppendCanonicalDouble(out, column.null_fraction);
    AppendCanonicalDouble(out, column.avg_width_bytes);
    AppendCanonicalU64(out, table.HasIndexOn(column.name) ? 1 : 0);
    const Histogram& histogram = column.histogram;
    AppendCanonicalDouble(out, histogram.lo());
    AppendCanonicalDouble(out, histogram.hi());
    AppendCanonicalU64(out, static_cast<uint64_t>(histogram.num_buckets()));
    for (int b = 0; b < histogram.num_buckets(); ++b) {
      AppendCanonicalDouble(out, histogram.bucket_count(b));
    }
  }
}

void AppendCanonicalQuery(std::string* out, const Query& query) {
  AppendCanonicalU64(out, static_cast<uint64_t>(query.num_tables()));
  for (int i = 0; i < query.num_tables(); ++i) {
    AppendCanonicalU64(out, static_cast<uint64_t>(query.table_id(i)));
    AppendCanonicalTable(out, query.table(i));
  }

  // Normalize each edge so the lexicographically smaller (table, column)
  // endpoint comes first, then sort the edge list: AddJoin(a, b) and
  // AddJoin(b, a) in any order encode identically.
  using Endpoint = std::pair<int, const std::string*>;
  std::vector<std::pair<Endpoint, Endpoint>> edges;
  edges.reserve(query.joins().size());
  for (const JoinPredicate& join : query.joins()) {
    Endpoint a{join.left_table, &join.left_column};
    Endpoint b{join.right_table, &join.right_column};
    if (std::tie(b.first, *b.second) < std::tie(a.first, *a.second)) {
      std::swap(a, b);
    }
    edges.emplace_back(a, b);
  }
  std::sort(edges.begin(), edges.end(),
            [](const auto& x, const auto& y) {
              return std::tie(x.first.first, *x.first.second, x.second.first,
                              *x.second.second) <
                     std::tie(y.first.first, *y.first.second, y.second.first,
                              *y.second.second);
            });
  AppendCanonicalU64(out, edges.size());
  for (const auto& [a, b] : edges) {
    AppendCanonicalU64(out, static_cast<uint64_t>(a.first));
    AppendCanonicalString(out, *a.second);
    AppendCanonicalU64(out, static_cast<uint64_t>(b.first));
    AppendCanonicalString(out, *b.second);
  }

  std::vector<const FilterPredicate*> filters;
  filters.reserve(query.filters().size());
  for (const FilterPredicate& filter : query.filters()) {
    filters.push_back(&filter);
  }
  std::sort(filters.begin(), filters.end(),
            [](const FilterPredicate* x, const FilterPredicate* y) {
              return std::tie(x->table, x->column, x->op, x->value,
                              x->value_hi) < std::tie(y->table, y->column,
                                                      y->op, y->value,
                                                      y->value_hi);
            });
  AppendCanonicalU64(out, filters.size());
  for (const FilterPredicate* filter : filters) {
    AppendCanonicalU64(out, static_cast<uint64_t>(filter->table));
    AppendCanonicalString(out, filter->column);
    AppendCanonicalU64(out, static_cast<uint64_t>(filter->op));
    AppendCanonicalDouble(out, filter->value);
    AppendCanonicalDouble(out, filter->value_hi);
  }
}

std::string CanonicalQueryEncoding(const Query& query) {
  std::string out;
  AppendCanonicalQuery(&out, query);
  return out;
}

}  // namespace moqo
