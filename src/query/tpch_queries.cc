#include "query/tpch_queries.h"

#include <cassert>

namespace moqo {

namespace {

FilterPredicate Range(int table, std::string column, double lo, double hi) {
  FilterPredicate f;
  f.table = table;
  f.column = std::move(column);
  f.op = FilterOp::kRange;
  f.value = lo;
  f.value_hi = hi;
  return f;
}

FilterPredicate Equals(int table, std::string column, double value) {
  FilterPredicate f;
  f.table = table;
  f.column = std::move(column);
  f.op = FilterOp::kEquals;
  f.value = value;
  return f;
}

FilterPredicate LessEq(int table, std::string column, double value) {
  FilterPredicate f;
  f.table = table;
  f.column = std::move(column);
  f.op = FilterOp::kLessEquals;
  f.value = value;
  return f;
}

}  // namespace

Query MakeTpcHQuery(const Catalog* catalog, int number) {
  Query q(catalog, "tpch_q" + std::to_string(number));
  switch (number) {
    case 1: {  // Pricing summary report: scan of lineitem.
      int l = q.AddTable("lineitem");
      q.AddFilter(LessEq(l, "l_shipdate", 2430));
      break;
    }
    case 4: {  // Order priority checking; EXISTS handled as separate block.
      int o = q.AddTable("orders");
      q.AddFilter(Range(o, "o_orderdate", 800, 890));
      break;
    }
    case 6: {  // Forecasting revenue change: lineitem scan.
      int l = q.AddTable("lineitem");
      q.AddFilter(Range(l, "l_shipdate", 365, 730));
      q.AddFilter(Range(l, "l_quantity", 1, 24));
      break;
    }
    case 22: {  // Global sales opportunity; anti-join customer/orders.
      int c = q.AddTable("customer");
      int o = q.AddTable("orders");
      q.AddJoin(c, "c_custkey", o, "o_custkey");
      break;
    }
    case 12: {  // Shipping modes and order priority.
      int o = q.AddTable("orders");
      int l = q.AddTable("lineitem");
      q.AddJoin(o, "o_orderkey", l, "l_orderkey");
      q.AddFilter(Range(l, "l_shipdate", 365, 730));
      break;
    }
    case 13: {  // Customer distribution (left join modeled as join).
      int c = q.AddTable("customer");
      int o = q.AddTable("orders");
      q.AddJoin(c, "c_custkey", o, "o_custkey");
      break;
    }
    case 14: {  // Promotion effect.
      int l = q.AddTable("lineitem");
      int p = q.AddTable("part");
      q.AddJoin(l, "l_partkey", p, "p_partkey");
      q.AddFilter(Range(l, "l_shipdate", 1000, 1030));
      break;
    }
    case 15: {  // Top supplier (revenue view folded into lineitem).
      int s = q.AddTable("supplier");
      int l = q.AddTable("lineitem");
      q.AddJoin(s, "s_suppkey", l, "l_suppkey");
      q.AddFilter(Range(l, "l_shipdate", 1200, 1290));
      break;
    }
    case 16: {  // Parts/supplier relationship.
      int ps = q.AddTable("partsupp");
      int p = q.AddTable("part");
      q.AddJoin(ps, "ps_partkey", p, "p_partkey");
      q.AddFilter(Equals(p, "p_brand", 12));
      q.AddFilter(Range(p, "p_size", 1, 15));
      break;
    }
    case 17: {  // Small-quantity-order revenue.
      int l = q.AddTable("lineitem");
      int p = q.AddTable("part");
      q.AddJoin(l, "l_partkey", p, "p_partkey");
      q.AddFilter(Equals(p, "p_brand", 23));
      break;
    }
    case 19: {  // Discounted revenue.
      int l = q.AddTable("lineitem");
      int p = q.AddTable("part");
      q.AddJoin(l, "l_partkey", p, "p_partkey");
      q.AddFilter(Range(p, "p_size", 1, 15));
      q.AddFilter(Range(l, "l_quantity", 1, 30));
      break;
    }
    case 20: {  // Potential part promotion (outer block).
      int s = q.AddTable("supplier");
      int n = q.AddTable("nation");
      q.AddJoin(s, "s_nationkey", n, "n_nationkey");
      q.AddFilter(Equals(n, "n_nationkey", 3));
      break;
    }
    case 3: {  // Shipping priority.
      int c = q.AddTable("customer");
      int o = q.AddTable("orders");
      int l = q.AddTable("lineitem");
      q.AddJoin(c, "c_custkey", o, "o_custkey");
      q.AddJoin(o, "o_orderkey", l, "l_orderkey");
      q.AddFilter(Equals(c, "c_mktsegment", 1));
      q.AddFilter(LessEq(o, "o_orderdate", 1204));
      break;
    }
    case 11: {  // Important stock identification.
      int ps = q.AddTable("partsupp");
      int s = q.AddTable("supplier");
      int n = q.AddTable("nation");
      q.AddJoin(ps, "ps_suppkey", s, "s_suppkey");
      q.AddJoin(s, "s_nationkey", n, "n_nationkey");
      q.AddFilter(Equals(n, "n_nationkey", 7));
      break;
    }
    case 18: {  // Large volume customer.
      int c = q.AddTable("customer");
      int o = q.AddTable("orders");
      int l = q.AddTable("lineitem");
      q.AddJoin(c, "c_custkey", o, "o_custkey");
      q.AddJoin(o, "o_orderkey", l, "l_orderkey");
      break;
    }
    case 10: {  // Returned item reporting.
      int c = q.AddTable("customer");
      int o = q.AddTable("orders");
      int l = q.AddTable("lineitem");
      int n = q.AddTable("nation");
      q.AddJoin(c, "c_custkey", o, "o_custkey");
      q.AddJoin(o, "o_orderkey", l, "l_orderkey");
      q.AddJoin(c, "c_nationkey", n, "n_nationkey");
      q.AddFilter(Range(o, "o_orderdate", 850, 940));
      break;
    }
    case 21: {  // Suppliers who kept orders waiting.
      int s = q.AddTable("supplier");
      int l = q.AddTable("lineitem");
      int o = q.AddTable("orders");
      int n = q.AddTable("nation");
      q.AddJoin(s, "s_suppkey", l, "l_suppkey");
      q.AddJoin(l, "l_orderkey", o, "o_orderkey");
      q.AddJoin(s, "s_nationkey", n, "n_nationkey");
      q.AddFilter(Equals(n, "n_nationkey", 20));
      break;
    }
    case 2: {  // Minimum cost supplier (outer block).
      int p = q.AddTable("part");
      int s = q.AddTable("supplier");
      int ps = q.AddTable("partsupp");
      int n = q.AddTable("nation");
      int r = q.AddTable("region");
      q.AddJoin(p, "p_partkey", ps, "ps_partkey");
      q.AddJoin(s, "s_suppkey", ps, "ps_suppkey");
      q.AddJoin(s, "s_nationkey", n, "n_nationkey");
      q.AddJoin(n, "n_regionkey", r, "r_regionkey");
      q.AddFilter(Equals(p, "p_size", 15));
      q.AddFilter(Equals(r, "r_regionkey", 2));
      break;
    }
    case 5: {  // Local supplier volume.
      int c = q.AddTable("customer");
      int o = q.AddTable("orders");
      int l = q.AddTable("lineitem");
      int s = q.AddTable("supplier");
      int n = q.AddTable("nation");
      int r = q.AddTable("region");
      q.AddJoin(c, "c_custkey", o, "o_custkey");
      q.AddJoin(o, "o_orderkey", l, "l_orderkey");
      q.AddJoin(l, "l_suppkey", s, "s_suppkey");
      q.AddJoin(c, "c_nationkey", n, "n_nationkey");
      q.AddJoin(s, "s_nationkey", n, "n_nationkey");
      q.AddJoin(n, "n_regionkey", r, "r_regionkey");
      q.AddFilter(Equals(r, "r_regionkey", 1));
      q.AddFilter(Range(o, "o_orderdate", 365, 730));
      break;
    }
    case 7: {  // Volume shipping; two nation occurrences.
      int s = q.AddTable("supplier");
      int l = q.AddTable("lineitem");
      int o = q.AddTable("orders");
      int c = q.AddTable("customer");
      int n1 = q.AddTable("nation");
      int n2 = q.AddTable("nation");
      q.AddJoin(s, "s_suppkey", l, "l_suppkey");
      q.AddJoin(o, "o_orderkey", l, "l_orderkey");
      q.AddJoin(c, "c_custkey", o, "o_custkey");
      q.AddJoin(s, "s_nationkey", n1, "n_nationkey");
      q.AddJoin(c, "c_nationkey", n2, "n_nationkey");
      q.AddFilter(Equals(n1, "n_nationkey", 6));
      q.AddFilter(Equals(n2, "n_nationkey", 7));
      q.AddFilter(Range(l, "l_shipdate", 365, 1095));
      break;
    }
    case 9: {  // Product type profit measure.
      int p = q.AddTable("part");
      int s = q.AddTable("supplier");
      int l = q.AddTable("lineitem");
      int ps = q.AddTable("partsupp");
      int o = q.AddTable("orders");
      int n = q.AddTable("nation");
      q.AddJoin(s, "s_suppkey", l, "l_suppkey");
      q.AddJoin(ps, "ps_suppkey", l, "l_suppkey");
      q.AddJoin(ps, "ps_partkey", l, "l_partkey");
      q.AddJoin(p, "p_partkey", l, "l_partkey");
      q.AddJoin(o, "o_orderkey", l, "l_orderkey");
      q.AddJoin(s, "s_nationkey", n, "n_nationkey");
      q.AddFilter(Range(p, "p_type", 40, 60));
      break;
    }
    case 8: {  // National market share; largest query, eight tables.
      int p = q.AddTable("part");
      int s = q.AddTable("supplier");
      int l = q.AddTable("lineitem");
      int o = q.AddTable("orders");
      int c = q.AddTable("customer");
      int n1 = q.AddTable("nation");
      int n2 = q.AddTable("nation");
      int r = q.AddTable("region");
      q.AddJoin(p, "p_partkey", l, "l_partkey");
      q.AddJoin(s, "s_suppkey", l, "l_suppkey");
      q.AddJoin(l, "l_orderkey", o, "o_orderkey");
      q.AddJoin(o, "o_custkey", c, "c_custkey");
      q.AddJoin(c, "c_nationkey", n1, "n_nationkey");
      q.AddJoin(n1, "n_regionkey", r, "r_regionkey");
      q.AddJoin(s, "s_nationkey", n2, "n_nationkey");
      q.AddFilter(Equals(r, "r_regionkey", 1));
      q.AddFilter(Range(p, "p_type", 100, 110));
      q.AddFilter(Range(o, "o_orderdate", 365, 1095));
      break;
    }
    default:
      assert(false && "TPC-H query number must be in 1..22");
  }
  return q;
}

const std::vector<int>& TpcHQueryOrder() {
  static const std::vector<int> kOrder = {1,  4,  6,  22, 12, 13, 14, 15,
                                          16, 17, 19, 20, 3,  11, 18, 10,
                                          21, 2,  5,  7,  9,  8};
  return kOrder;
}

int TpcHQueryTableCount(int number) {
  // Derived from the join-graph definitions above; kept as a table so the
  // harness can size sweeps without building queries.
  switch (number) {
    case 1: case 4: case 6: return 1;
    case 22: case 12: case 13: case 14: case 15:
    case 16: case 17: case 19: case 20: return 2;
    case 3: case 11: case 18: return 3;
    case 10: case 21: return 4;
    case 2: return 5;
    case 5: case 7: case 9: return 6;
    case 8: return 8;
    default: assert(false && "TPC-H query number must be in 1..22");
  }
  return 0;
}

}  // namespace moqo
