// Copyright (c) 2026 moqo authors. MIT license.
//
// Predicates: equi-join edges between tables and local filters on single
// tables. The formal model of Section 3 abstracts queries to table sets;
// like the paper's implementation, we keep predicates because they drive
// cardinality estimation and the Cartesian-product heuristic.

#ifndef MOQO_QUERY_PREDICATE_H_
#define MOQO_QUERY_PREDICATE_H_

#include <string>

#include "util/table_set.h"

namespace moqo {

/// An equi-join predicate left.column = right.column.
struct JoinPredicate {
  int left_table;            ///< Query-local table index.
  std::string left_column;
  int right_table;           ///< Query-local table index.
  std::string right_column;

  /// True iff this edge connects `a`-side tables to `b`-side tables, i.e.
  /// it is applicable as the join condition of the split (a, b).
  bool Connects(TableSet a, TableSet b) const {
    return (a.Contains(left_table) && b.Contains(right_table)) ||
           (a.Contains(right_table) && b.Contains(left_table));
  }

  std::string ToString() const;
};

/// Comparison operator of a local filter.
enum class FilterOp {
  kEquals,
  kLess,
  kLessEquals,
  kGreater,
  kGreaterEquals,
  kRange,  ///< value in [lo, hi]
};

/// A single-table filter predicate, e.g. l_shipdate <= DATE '1998-09-02'.
struct FilterPredicate {
  int table;           ///< Query-local table index.
  std::string column;
  FilterOp op;
  double value = 0;    ///< Comparison constant (lo for kRange).
  double value_hi = 0; ///< hi for kRange, unused otherwise.

  std::string ToString() const;
};

}  // namespace moqo

#endif  // MOQO_QUERY_PREDICATE_H_
