#include "query/predicate.h"

#include <sstream>

namespace moqo {

std::string JoinPredicate::ToString() const {
  std::ostringstream out;
  out << "t" << left_table << "." << left_column << " = t" << right_table
      << "." << right_column;
  return out.str();
}

std::string FilterPredicate::ToString() const {
  std::ostringstream out;
  out << "t" << table << "." << column;
  switch (op) {
    case FilterOp::kEquals: out << " = " << value; break;
    case FilterOp::kLess: out << " < " << value; break;
    case FilterOp::kLessEquals: out << " <= " << value; break;
    case FilterOp::kGreater: out << " > " << value; break;
    case FilterOp::kGreaterEquals: out << " >= " << value; break;
    case FilterOp::kRange:
      out << " in [" << value << ", " << value_hi << "]";
      break;
  }
  return out.str();
}

}  // namespace moqo
