#include "catalog/table.h"

#include <algorithm>

namespace moqo {

const ColumnStats* Table::FindColumn(const std::string& column_name) const {
  for (const ColumnStats& column : columns_) {
    if (column.name == column_name) return &column;
  }
  return nullptr;
}

bool Table::HasIndexOn(const std::string& column_name) const {
  return std::find(indexed_columns_.begin(), indexed_columns_.end(),
                   column_name) != indexed_columns_.end();
}

}  // namespace moqo
