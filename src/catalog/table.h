// Copyright (c) 2026 moqo authors. MIT license.
//
// Table metadata: schema, cardinality, physical layout, and index
// availability. Base-table cardinalities follow the TPC-H specification at
// a configurable scale factor.

#ifndef MOQO_CATALOG_TABLE_H_
#define MOQO_CATALOG_TABLE_H_

#include <string>
#include <vector>

#include "catalog/column_stats.h"

namespace moqo {

/// Physical metadata for one base table.
class Table {
 public:
  Table(std::string name, double row_count, double row_width_bytes)
      : name_(std::move(name)),
        row_count_(row_count),
        row_width_bytes_(row_width_bytes) {}

  const std::string& name() const { return name_; }
  double row_count() const { return row_count_; }
  double row_width_bytes() const { return row_width_bytes_; }

  /// Pages of 8 KiB, the Postgres default block size.
  double page_count() const {
    constexpr double kPageBytes = 8192.0;
    return std::max(1.0, row_count_ * row_width_bytes_ / kPageBytes);
  }

  void AddColumn(ColumnStats stats) { columns_.push_back(std::move(stats)); }
  const std::vector<ColumnStats>& columns() const { return columns_; }

  /// Looks up a column by name; returns nullptr if absent.
  const ColumnStats* FindColumn(const std::string& column_name) const;

  /// Whether a B-tree index exists that can drive an IndexScan /
  /// Index-Nested-Loop join on `column_name`. TPC-H primary and foreign
  /// keys are indexed in our synthetic physical design.
  bool HasIndexOn(const std::string& column_name) const;
  void AddIndex(const std::string& column_name) {
    indexed_columns_.push_back(column_name);
  }

 private:
  std::string name_;
  double row_count_;
  double row_width_bytes_;
  std::vector<ColumnStats> columns_;
  std::vector<std::string> indexed_columns_;
};

}  // namespace moqo

#endif  // MOQO_CATALOG_TABLE_H_
