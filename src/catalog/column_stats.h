// Copyright (c) 2026 moqo authors. MIT license.
//
// Column-level statistics: NDV, min/max, null fraction, and an equi-width
// histogram. These replace the Postgres statistics the paper's cost model
// consulted; the cardinality estimator in src/model composes selectivities
// from them under the usual independence assumption.

#ifndef MOQO_CATALOG_COLUMN_STATS_H_
#define MOQO_CATALOG_COLUMN_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace moqo {

/// Equi-width histogram over a numeric domain [lo, hi].
class Histogram {
 public:
  Histogram() = default;

  /// Uniform histogram: `row_count` rows spread evenly over `buckets`
  /// buckets covering [lo, hi].
  static Histogram Uniform(double lo, double hi, int buckets,
                           double row_count);

  /// Zipf-skewed histogram: bucket i holds mass proportional to
  /// 1/(i+1)^skew. skew = 0 degenerates to Uniform.
  static Histogram Zipf(double lo, double hi, int buckets, double row_count,
                        double skew);

  bool Empty() const { return counts_.empty(); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  int num_buckets() const { return static_cast<int>(counts_.size()); }
  double total_rows() const { return total_rows_; }
  double bucket_count(int i) const { return counts_[i]; }

  /// Estimated fraction of rows with value <= v (linear interpolation
  /// within the containing bucket).
  double SelectivityLessEqual(double v) const;

  /// Estimated fraction of rows in [lo_v, hi_v].
  double SelectivityRange(double lo_v, double hi_v) const;

  /// Estimated fraction of rows equal to v, assuming `ndv` distinct values
  /// uniformly distributed inside the containing bucket.
  double SelectivityEquals(double v, double ndv) const;

 private:
  double lo_ = 0;
  double hi_ = 0;
  double total_rows_ = 0;
  std::vector<double> counts_;
};

/// Statistics for a single column.
struct ColumnStats {
  std::string name;
  double ndv = 1;            ///< Number of distinct values.
  double min_value = 0;
  double max_value = 0;
  double null_fraction = 0;  ///< Fraction of NULLs.
  double avg_width_bytes = 8;
  Histogram histogram;
};

}  // namespace moqo

#endif  // MOQO_CATALOG_COLUMN_STATS_H_
