#include "catalog/catalog.h"

#include <cmath>

namespace moqo {

int Catalog::AddTable(Table table) {
  tables_.push_back(std::make_unique<Table>(std::move(table)));
  return static_cast<int>(tables_.size()) - 1;
}

int Catalog::FindTable(const std::string& name) const {
  for (int i = 0; i < num_tables(); ++i) {
    if (tables_[i]->name() == name) return i;
  }
  return -1;
}

namespace {

// Adds a numeric column with a uniform histogram spanning [lo, hi].
void AddUniformColumn(Table* table, const std::string& name, double ndv,
                      double lo, double hi, double width_bytes = 8) {
  ColumnStats stats;
  stats.name = name;
  stats.ndv = ndv;
  stats.min_value = lo;
  stats.max_value = hi;
  stats.avg_width_bytes = width_bytes;
  stats.histogram = Histogram::Uniform(lo, hi, 32, table->row_count());
  table->AddColumn(std::move(stats));
}

}  // namespace

Catalog Catalog::TpcH(double scale_factor) {
  const double sf = scale_factor;
  Catalog catalog;

  // Cardinalities per the TPC-H specification; row widths approximate the
  // average tuple sizes of a Postgres TPC-H load.
  Table region("region", 5, 120);
  AddUniformColumn(&region, "r_regionkey", 5, 0, 4);
  region.AddIndex("r_regionkey");
  catalog.AddTable(std::move(region));

  Table nation("nation", 25, 128);
  AddUniformColumn(&nation, "n_nationkey", 25, 0, 24);
  AddUniformColumn(&nation, "n_regionkey", 5, 0, 4);
  nation.AddIndex("n_nationkey");
  nation.AddIndex("n_regionkey");
  catalog.AddTable(std::move(nation));

  Table supplier("supplier", std::round(10000 * sf), 160);
  AddUniformColumn(&supplier, "s_suppkey", 10000 * sf, 1, 10000 * sf);
  AddUniformColumn(&supplier, "s_nationkey", 25, 0, 24);
  supplier.AddIndex("s_suppkey");
  supplier.AddIndex("s_nationkey");
  catalog.AddTable(std::move(supplier));

  Table customer("customer", std::round(150000 * sf), 180);
  AddUniformColumn(&customer, "c_custkey", 150000 * sf, 1, 150000 * sf);
  AddUniformColumn(&customer, "c_nationkey", 25, 0, 24);
  AddUniformColumn(&customer, "c_mktsegment", 5, 0, 4, 10);
  customer.AddIndex("c_custkey");
  customer.AddIndex("c_nationkey");
  catalog.AddTable(std::move(customer));

  Table part("part", std::round(200000 * sf), 156);
  AddUniformColumn(&part, "p_partkey", 200000 * sf, 1, 200000 * sf);
  AddUniformColumn(&part, "p_brand", 25, 0, 24, 10);
  AddUniformColumn(&part, "p_type", 150, 0, 149, 25);
  AddUniformColumn(&part, "p_size", 50, 1, 50, 4);
  part.AddIndex("p_partkey");
  catalog.AddTable(std::move(part));

  Table partsupp("partsupp", std::round(800000 * sf), 144);
  AddUniformColumn(&partsupp, "ps_partkey", 200000 * sf, 1, 200000 * sf);
  AddUniformColumn(&partsupp, "ps_suppkey", 10000 * sf, 1, 10000 * sf);
  partsupp.AddIndex("ps_partkey");
  partsupp.AddIndex("ps_suppkey");
  catalog.AddTable(std::move(partsupp));

  Table orders("orders", std::round(1500000 * sf), 110);
  AddUniformColumn(&orders, "o_orderkey", 1500000 * sf, 1, 6000000 * sf);
  AddUniformColumn(&orders, "o_custkey", 99996 * sf, 1, 150000 * sf);
  AddUniformColumn(&orders, "o_orderdate", 2406, 0, 2405, 4);
  orders.AddIndex("o_orderkey");
  orders.AddIndex("o_custkey");
  catalog.AddTable(std::move(orders));

  Table lineitem("lineitem", std::round(6001215 * sf), 112);
  AddUniformColumn(&lineitem, "l_orderkey", 1500000 * sf, 1, 6000000 * sf);
  AddUniformColumn(&lineitem, "l_partkey", 200000 * sf, 1, 200000 * sf);
  AddUniformColumn(&lineitem, "l_suppkey", 10000 * sf, 1, 10000 * sf);
  AddUniformColumn(&lineitem, "l_shipdate", 2526, 0, 2525, 4);
  AddUniformColumn(&lineitem, "l_quantity", 50, 1, 50, 4);
  lineitem.AddIndex("l_orderkey");
  lineitem.AddIndex("l_partkey");
  lineitem.AddIndex("l_suppkey");
  catalog.AddTable(std::move(lineitem));

  return catalog;
}

}  // namespace moqo
