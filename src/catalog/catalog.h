// Copyright (c) 2026 moqo authors. MIT license.
//
// Catalog: the table registry, plus the built-in TPC-H schema used by the
// experiments (Sections 5 and 8 evaluate on TPC-H).

#ifndef MOQO_CATALOG_CATALOG_H_
#define MOQO_CATALOG_CATALOG_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "catalog/table.h"

namespace moqo {

/// A registry of base tables. Table ids are dense indexes into the registry
/// and are what TableSet bits refer to after a Query binds names to ids.
class Catalog {
 public:
  Catalog() = default;

  /// Registers a table; returns its id. Names must be unique.
  int AddTable(Table table);

  int num_tables() const { return static_cast<int>(tables_.size()); }
  const Table& table(int id) const { return *tables_[id]; }

  /// Returns the table id for `name`, or -1 if absent.
  int FindTable(const std::string& name) const;

  /// Monotone counter over *in-place* statistics changes: call BumpEpoch
  /// after mutating registered tables' stats (ANALYZE-style refresh). The
  /// serving layer watches it per catalog and flushes the cross-query
  /// subplan memo on a change, evicting entries whose content-derived
  /// keys just became unreachable. Deliberately NOT bumped by AddTable —
  /// registering a new table cannot invalidate any existing entry (no key
  /// referenced it), and flushing a warm memo for it would be pure waste.
  uint64_t epoch() const { return epoch_; }
  void BumpEpoch() { ++epoch_; }

  /// Builds the eight-table TPC-H schema at the given scale factor, with
  /// TPC-H-specified cardinalities (e.g. lineitem ~ 6M rows at SF 1),
  /// synthetic column statistics, and indexes on primary/foreign keys.
  static Catalog TpcH(double scale_factor = 1.0);

 private:
  std::vector<std::unique_ptr<Table>> tables_;
  uint64_t epoch_ = 0;
};

/// Dense ids of the TPC-H tables inside Catalog::TpcH(), in registration
/// order. Kept stable because the query definitions reference them.
enum TpcHTable : int {
  kRegion = 0,
  kNation = 1,
  kSupplier = 2,
  kCustomer = 3,
  kPart = 4,
  kPartsupp = 5,
  kOrders = 6,
  kLineitem = 7,
};

}  // namespace moqo

#endif  // MOQO_CATALOG_CATALOG_H_
