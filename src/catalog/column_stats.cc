#include "catalog/column_stats.h"

#include <algorithm>
#include <cmath>

namespace moqo {

Histogram Histogram::Uniform(double lo, double hi, int buckets,
                             double row_count) {
  return Zipf(lo, hi, buckets, row_count, /*skew=*/0.0);
}

Histogram Histogram::Zipf(double lo, double hi, int buckets, double row_count,
                          double skew) {
  Histogram h;
  h.lo_ = lo;
  h.hi_ = hi;
  h.total_rows_ = row_count;
  h.counts_.resize(std::max(buckets, 1));
  double norm = 0;
  for (size_t i = 0; i < h.counts_.size(); ++i) {
    norm += 1.0 / std::pow(static_cast<double>(i + 1), skew);
  }
  for (size_t i = 0; i < h.counts_.size(); ++i) {
    h.counts_[i] =
        row_count * (1.0 / std::pow(static_cast<double>(i + 1), skew)) / norm;
  }
  return h;
}

double Histogram::SelectivityLessEqual(double v) const {
  if (Empty() || total_rows_ <= 0) return 1.0;
  if (v < lo_) return 0.0;
  if (v >= hi_) return 1.0;
  const double width = (hi_ - lo_) / num_buckets();
  double covered = 0;
  for (int i = 0; i < num_buckets(); ++i) {
    const double bucket_lo = lo_ + i * width;
    const double bucket_hi = bucket_lo + width;
    if (v >= bucket_hi) {
      covered += counts_[i];
    } else if (v > bucket_lo) {
      covered += counts_[i] * (v - bucket_lo) / width;
      break;
    } else {
      break;
    }
  }
  return covered / total_rows_;
}

double Histogram::SelectivityRange(double lo_v, double hi_v) const {
  if (hi_v < lo_v) return 0.0;
  const double result = SelectivityLessEqual(hi_v) - SelectivityLessEqual(lo_v);
  return std::clamp(result, 0.0, 1.0);
}

double Histogram::SelectivityEquals(double v, double ndv) const {
  if (Empty() || ndv <= 0) return 0.0;
  if (v < lo_ || v > hi_) return 0.0;
  const double width = (hi_ - lo_) / num_buckets();
  int bucket = width > 0 ? static_cast<int>((v - lo_) / width) : 0;
  bucket = std::clamp(bucket, 0, num_buckets() - 1);
  // Distinct values are assumed evenly spread across buckets; for low-NDV
  // discrete columns (fewer distinct values than buckets) the per-value
  // share 1/ndv is the right estimate — the bucket-local estimate would
  // spuriously divide by empty buckets between the discrete values.
  const double ndv_per_bucket = std::max(ndv / num_buckets(), 1.0);
  const double bucket_local = counts_[bucket] / ndv_per_bucket / total_rows_;
  const double uniform_share = 1.0 / ndv;
  return std::min(1.0, std::max(bucket_local, uniform_share));
}

}  // namespace moqo
