// Copyright (c) 2026 moqo authors. MIT license.
//
// SlowQueryLog (PR 6): keep-worst-N record of the slowest requests with a
// per-phase latency breakdown, surfaced in ServiceStats ToString and the
// metrics export.
//
// The hot path pays one relaxed load against the current admission
// threshold; only requests that would actually enter the worst-N take the
// mutex. Entries store the problem-spec signature hash (stable across
// runs for the same spec, see service/signature.h) so a slow entry can be
// correlated with trace spans and replayed.

#ifndef MOQO_OBS_SLOW_QUERY_LOG_H_
#define MOQO_OBS_SLOW_QUERY_LOG_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace moqo {

struct SlowQueryEntry {
  uint64_t signature = 0;        ///< ProblemSignature hash.
  const char* algorithm = "";    ///< Static name (e.g. "RTA").
  const char* phase = "";        ///< Where time went last: "optimize", ...
  double total_ms = 0;           ///< Queue + optimize (service-observed).
  double queue_ms = 0;
  double optimize_ms = 0;
  double alpha = 0;              ///< Final approximation factor reached.
  int frontier_size = 0;         ///< Result plans for the full table set.
  uint64_t sequence = 0;         ///< Admission order; ties broken by this.
};

class SlowQueryLog {
 public:
  explicit SlowQueryLog(int capacity = 8)
      : capacity_(capacity < 1 ? 1 : capacity) {}

  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  int capacity() const { return capacity_; }

  /// Offers one finished request; kept iff it ranks in the worst N by
  /// total_ms. Thread-safe; sub-threshold offers are lock-free.
  void Offer(const SlowQueryEntry& entry) {
    // Bit pattern of a double compares like the double for non-negative
    // values, so the threshold probe needs no lock.
    if (entry.total_ms < ThresholdMs()) return;
    MutexLock lock(mu_);
    if (static_cast<int>(entries_.size()) < capacity_) {
      entries_.push_back(entry);
    } else {
      auto slowest_kept = std::min_element(
          entries_.begin(), entries_.end(),
          [](const SlowQueryEntry& a, const SlowQueryEntry& b) {
            return a.total_ms < b.total_ms;
          });
      if (slowest_kept->total_ms >= entry.total_ms) return;
      *slowest_kept = entry;
    }
    if (static_cast<int>(entries_.size()) == capacity_) {
      double floor_ms = entries_[0].total_ms;
      for (const SlowQueryEntry& kept : entries_) {
        floor_ms = std::min(floor_ms, kept.total_ms);
      }
      threshold_bits_.store(BitsOf(floor_ms), std::memory_order_relaxed);
    }
  }

  /// Retained entries, worst (slowest) first.
  std::vector<SlowQueryEntry> WorstFirst() const {
    std::vector<SlowQueryEntry> out;
    {
      MutexLock lock(mu_);
      out = entries_;
    }
    std::sort(out.begin(), out.end(),
              [](const SlowQueryEntry& a, const SlowQueryEntry& b) {
                if (a.total_ms != b.total_ms) return a.total_ms > b.total_ms;
                return a.sequence < b.sequence;
              });
    return out;
  }

  /// Slowest retained total_ms (0 when empty) — exported as a gauge.
  double WorstMs() const {
    MutexLock lock(mu_);
    double worst = 0;
    for (const SlowQueryEntry& entry : entries_) {
      worst = std::max(worst, entry.total_ms);
    }
    return worst;
  }

  size_t size() const {
    MutexLock lock(mu_);
    return entries_.size();
  }

 private:
  static uint64_t BitsOf(double ms) {
    // Non-negative doubles order identically to their bit patterns.
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(ms), "double width");
    __builtin_memcpy(&bits, &ms, sizeof(bits));
    return bits;
  }

  double ThresholdMs() const {
    const uint64_t bits = threshold_bits_.load(std::memory_order_relaxed);
    double ms = 0;
    __builtin_memcpy(&ms, &bits, sizeof(ms));
    return ms;
  }

  const int capacity_;
  /// Bit pattern of the smallest kept total_ms once the log is full;
  /// 0.0 until then (so every offer enters the locked path while filling).
  std::atomic<uint64_t> threshold_bits_{0};
  mutable Mutex mu_;
  std::vector<SlowQueryEntry> entries_ MOQO_GUARDED_BY(mu_);
};

}  // namespace moqo

#endif  // MOQO_OBS_SLOW_QUERY_LOG_H_
