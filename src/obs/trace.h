// Copyright (c) 2026 moqo authors. MIT license.
//
// Request tracing (PR 6): low-overhead span recording with Chrome
// trace-event export.
//
// A Tracer owns one fixed-size ring buffer per thread that ever records
// through it. Spans are recorded as complete events ("ph":"X") at span
// *end* — one fixed-size struct append under an uncontended per-thread
// mutex — so recording never allocates and never contends across threads;
// the mutex only synchronizes with the (rare) exporter. Span names,
// categories, and argument names must be string literals (static
// lifetime): events store the pointers.
//
// The disabled path is one relaxed atomic load per span site: TraceSpan's
// constructor checks Tracer::enabled() and degrades to an empty object,
// so instrumentation can stay compiled into the hot path (the
// acceptance bar is a disabled-tracing service p50 within 3% of
// un-instrumented).
//
// Sampling: `sample_period` N keeps every Nth span per thread — the knob
// for long-running services where even ring-buffer turnover is too much
// history loss. Dropped (wrapped-over) events are counted, never blocked
// on.
//
// ExportChromeTrace() emits the Chrome trace-event JSON format
// ({"traceEvents":[...]}), loadable in Perfetto (ui.perfetto.dev) and
// chrome://tracing. Timestamps are microseconds since the tracer's
// construction; each recording thread appears as its own track.
//
// Ownership: a Tracer must outlive every thread that records through it
// (the service owns its tracer and joins its pools before destruction).
// Thread-cached buffer handles are keyed by a process-unique tracer id,
// so a thread outliving one tracer can never write into a later tracer's
// storage by address reuse.

#ifndef MOQO_OBS_TRACE_H_
#define MOQO_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace moqo {

struct TraceOptions {
  /// Master switch; off = every span site costs one relaxed load.
  bool enabled = false;
  /// Events retained per recording thread (ring; oldest overwritten).
  size_t ring_capacity = 1 << 14;
  /// Keep every Nth span per thread (1 = all). Values < 1 clamp to 1.
  int sample_period = 1;
};

/// One complete span. Name/category/argument-name pointers must be
/// string literals.
struct TraceEvent {
  const char* category = nullptr;
  const char* name = nullptr;
  int64_t start_us = 0;  ///< Microseconds since the tracer epoch.
  int64_t dur_us = 0;
  uint64_t id = 0;       ///< Correlation id (request/session); 0 = none.
  const char* arg1_name = nullptr;
  int64_t arg1 = 0;
  const char* arg2_name = nullptr;
  int64_t arg2 = 0;
};

class Tracer {
 public:
  explicit Tracer(TraceOptions options = {});
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  const TraceOptions& options() const { return options_; }

  /// Microseconds since this tracer's construction (steady clock).
  int64_t NowUs() const;

  /// Process-unique correlation id; cheap even when disabled.
  uint64_t NextId() { return next_id_.fetch_add(1, std::memory_order_relaxed); }

  /// Appends one complete event to the calling thread's ring. Callers
  /// normally go through TraceSpan, which applies the enabled() gate.
  void Record(const TraceEvent& event);

  /// Chrome trace-event JSON over every thread's retained events
  /// ({"traceEvents":[...], "displayTimeUnit":"ms"}). Safe to call while
  /// other threads record (they keep appending; the export is a consistent
  /// per-thread prefix).
  std::string ExportChromeTrace() const;

  /// Writes ExportChromeTrace() to `path`; false on I/O failure.
  bool WriteChromeTrace(const std::string& path) const;

  /// Events recorded (post-sampling) across all threads so far.
  uint64_t recorded_events() const;
  /// Events overwritten by ring wrap-around across all threads.
  uint64_t dropped_events() const;

 private:
  friend class TraceSpan;

  struct ThreadBuffer {
    Mutex mu;
    /// Sized once to ring_capacity.
    std::vector<TraceEvent> ring MOQO_GUARDED_BY(mu);
    size_t next MOQO_GUARDED_BY(mu) = 0;      ///< Ring write cursor.
    uint64_t recorded MOQO_GUARDED_BY(mu) = 0;  ///< Events written.
    uint64_t sampled MOQO_GUARDED_BY(mu) = 0;   ///< Pre-sample hits.
    int tid MOQO_GUARDED_BY(mu) = 0;  ///< Stable per-tracer thread number.
  };

  /// The calling thread's buffer, registering it on first use.
  ThreadBuffer* BufferForThisThread();

  TraceOptions options_;
  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_id_{1};
  uint64_t tracer_id_ = 0;  ///< Process-unique; keys the TLS buffer cache.
  std::chrono::steady_clock::time_point epoch_;

  mutable Mutex buffers_mu_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_
      MOQO_GUARDED_BY(buffers_mu_);
};

/// RAII span: captures the start time at construction, records one
/// complete event at destruction. Constructing against a null or disabled
/// tracer yields an inert object (no clock read).
class TraceSpan {
 public:
  TraceSpan(Tracer* tracer, const char* category, const char* name,
            uint64_t id = 0) {
    if (tracer != nullptr && tracer->enabled()) {
      tracer_ = tracer;
      event_.category = category;
      event_.name = name;
      event_.id = id;
      event_.start_us = tracer->NowUs();
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches up to two integer arguments (first call fills arg1, the
  /// second arg2, further calls are dropped). `name` must be a literal.
  void AddArg(const char* name, int64_t value) {
    if (tracer_ == nullptr) return;
    if (event_.arg1_name == nullptr) {
      event_.arg1_name = name;
      event_.arg1 = value;
    } else if (event_.arg2_name == nullptr) {
      event_.arg2_name = name;
      event_.arg2 = value;
    }
  }

  bool active() const { return tracer_ != nullptr; }

  /// Ends the span now (idempotent; the destructor is then a no-op).
  void End() {
    if (tracer_ == nullptr) return;
    event_.dur_us = tracer_->NowUs() - event_.start_us;
    tracer_->Record(event_);
    tracer_ = nullptr;
  }

  ~TraceSpan() { End(); }

 private:
  Tracer* tracer_ = nullptr;
  TraceEvent event_;
};

}  // namespace moqo

#endif  // MOQO_OBS_TRACE_H_
