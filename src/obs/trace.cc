// Copyright (c) 2026 moqo authors. MIT license.

#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

namespace moqo {
namespace {

/// Process-unique tracer ids; id 0 is never issued so a zero-initialized
/// thread cache never matches.
std::atomic<uint64_t> g_next_tracer_id{1};

/// Per-thread cache of the buffer registered with the most recent tracer
/// this thread touched. Holding a shared_ptr keeps the buffer alive even
/// if the tracer dies first; the id check keeps a stale cache from ever
/// matching a different tracer that reused the same address.
struct ThreadCache {
  uint64_t tracer_id = 0;
  std::shared_ptr<void> buffer;
};
thread_local ThreadCache t_cache;

void AppendJsonEscaped(std::string* out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

Tracer::Tracer(TraceOptions options)
    : options_(options),
      tracer_id_(g_next_tracer_id.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now()) {
  if (options_.ring_capacity < 16) options_.ring_capacity = 16;
  if (options_.sample_period < 1) options_.sample_period = 1;
  enabled_.store(options_.enabled, std::memory_order_relaxed);
}

Tracer::~Tracer() = default;

int64_t Tracer::NowUs() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

Tracer::ThreadBuffer* Tracer::BufferForThisThread() {
  if (t_cache.tracer_id == tracer_id_) {
    return static_cast<ThreadBuffer*>(t_cache.buffer.get());
  }
  auto buffer = std::make_shared<ThreadBuffer>();
  {
    // The buffer is still private to this thread; locking is for the
    // thread-safety analysis, not for exclusion.
    MutexLock lock(buffer->mu);
    buffer->ring.resize(options_.ring_capacity);
  }
  {
    // buffers_mu_ -> buffer->mu is the one nested order here; every other
    // path (Record, the exporters) takes the two locks disjointly.
    MutexLock registry_lock(buffers_mu_);
    MutexLock buffer_lock(buffer->mu);
    buffer->tid = static_cast<int>(buffers_.size()) + 1;
    buffers_.push_back(buffer);
  }
  t_cache.tracer_id = tracer_id_;
  t_cache.buffer = buffer;
  return buffer.get();
}

void Tracer::Record(const TraceEvent& event) {
  ThreadBuffer* buffer = BufferForThisThread();
  MutexLock lock(buffer->mu);
  if (options_.sample_period > 1 &&
      (buffer->sampled++ % static_cast<uint64_t>(options_.sample_period)) !=
          0) {
    return;
  }
  buffer->ring[buffer->next] = event;
  buffer->next = (buffer->next + 1) % buffer->ring.size();
  buffer->recorded++;
}

std::string Tracer::ExportChromeTrace() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    MutexLock lock(buffers_mu_);
    buffers = buffers_;
  }

  std::string out;
  out.reserve(1 << 16);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  char line[256];
  for (const auto& buffer : buffers) {
    MutexLock lock(buffer->mu);
    // Thread-name metadata so Perfetto labels each track.
    std::snprintf(line, sizeof(line),
                  "%s{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":"
                  "\"thread_name\",\"args\":{\"name\":\"moqo-%d\"}}",
                  first ? "" : ",", buffer->tid, buffer->tid);
    first = false;
    out += line;

    const size_t capacity = buffer->ring.size();
    const uint64_t kept = std::min<uint64_t>(buffer->recorded, capacity);
    // Oldest retained event first. With no wrap the ring is [0, next);
    // after a wrap the oldest slot is `next` itself.
    size_t cursor = buffer->recorded > capacity ? buffer->next : 0;
    for (uint64_t i = 0; i < kept; ++i, cursor = (cursor + 1) % capacity) {
      const TraceEvent& e = buffer->ring[cursor];
      std::snprintf(line, sizeof(line),
                    ",{\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%lld,"
                    "\"dur\":%lld,\"cat\":\"",
                    buffer->tid, static_cast<long long>(e.start_us),
                    static_cast<long long>(e.dur_us));
      out += line;
      AppendJsonEscaped(&out, e.category != nullptr ? e.category : "moqo");
      out += "\",\"name\":\"";
      AppendJsonEscaped(&out, e.name != nullptr ? e.name : "span");
      out += "\",\"args\":{";
      bool first_arg = true;
      if (e.id != 0) {
        std::snprintf(line, sizeof(line), "\"id\":%llu",
                      static_cast<unsigned long long>(e.id));
        out += line;
        first_arg = false;
      }
      if (e.arg1_name != nullptr) {
        out += first_arg ? "\"" : ",\"";
        AppendJsonEscaped(&out, e.arg1_name);
        std::snprintf(line, sizeof(line), "\":%lld",
                      static_cast<long long>(e.arg1));
        out += line;
        first_arg = false;
      }
      if (e.arg2_name != nullptr) {
        out += first_arg ? "\"" : ",\"";
        AppendJsonEscaped(&out, e.arg2_name);
        std::snprintf(line, sizeof(line), "\":%lld",
                      static_cast<long long>(e.arg2));
        out += line;
      }
      out += "}}";
    }
  }
  out += "]}";
  return out;
}

bool Tracer::WriteChromeTrace(const std::string& path) const {
  std::ofstream file(path, std::ios::out | std::ios::trunc);
  if (!file) return false;
  file << ExportChromeTrace();
  return static_cast<bool>(file);
}

uint64_t Tracer::recorded_events() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    MutexLock lock(buffers_mu_);
    buffers = buffers_;
  }
  uint64_t total = 0;
  for (const auto& buffer : buffers) {
    MutexLock lock(buffer->mu);
    total += buffer->recorded;
  }
  return total;
}

uint64_t Tracer::dropped_events() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    MutexLock lock(buffers_mu_);
    buffers = buffers_;
  }
  uint64_t dropped = 0;
  for (const auto& buffer : buffers) {
    MutexLock lock(buffer->mu);
    if (buffer->recorded > buffer->ring.size()) {
      dropped += buffer->recorded - buffer->ring.size();
    }
  }
  return dropped;
}

}  // namespace moqo
