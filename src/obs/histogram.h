// Copyright (c) 2026 moqo authors. MIT license.
//
// Log-bucketed concurrent latency histogram (PR 6).
//
// LatencyHistogram replaces the count/total/max LatencyStats aggregate: it
// records wall-clock milliseconds into logarithmic buckets (kSubBuckets
// per power of two, i.e. a worst-case relative bucket width of
// 2^(1/16)-1 ~ 4.4%) with one relaxed atomic increment per sample, so it
// is safe to Record() from any number of threads with no lock and no
// reader/writer coordination. Snapshot() yields a plain-value
// HistogramSnapshot that is mergeable (Merge) and answers quantile
// queries (Quantile/PercentileMs) by linear interpolation inside the
// landing bucket — the single percentile definition shared by the service
// stats, the bench harness, and the Prometheus exposition, replacing the
// bench's hand-rolled sort-based Percentile().
//
// Range: [2^-10 ms (~1us), 2^22 ms (~70min)); values outside clamp into
// the first/last bucket. The exact maximum is tracked separately (CAS on
// the bit pattern), so max_ms never suffers bucketing error and bounds
// every quantile estimate.

#ifndef MOQO_OBS_HISTOGRAM_H_
#define MOQO_OBS_HISTOGRAM_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

namespace moqo {

/// Plain-value copy of a histogram: mergeable, copyable, and the object
/// that actually answers quantile queries.
struct HistogramSnapshot {
  /// Buckets per power of two; 16 bounds the relative quantile error by
  /// half a bucket width (~2.2% at the midpoint, 4.4% worst case).
  static constexpr int kSubBuckets = 16;
  static constexpr int kMinExp = -10;  ///< 2^-10 ms ~ 1 us.
  static constexpr int kMaxExp = 22;   ///< 2^22 ms ~ 70 min.
  /// Log buckets plus one underflow (index 0) and one overflow (last).
  static constexpr int kNumBuckets = (kMaxExp - kMinExp) * kSubBuckets + 2;

  uint64_t count = 0;
  double sum_ms = 0;
  double max_ms = 0;
  std::array<uint64_t, kNumBuckets> buckets{};

  /// Bucket index for one sample. <= 2^kMinExp (and non-finite garbage)
  /// lands in the underflow bucket, >= 2^kMaxExp in the overflow bucket.
  static int BucketIndex(double ms) {
    if (!(ms > MinMs())) return 0;
    if (ms >= MaxMs()) return kNumBuckets - 1;
    int exp = 0;
    const double mantissa = std::frexp(ms, &exp);  // [0.5, 1)
    const int octave = exp - 1 - kMinExp;          // [0, kMaxExp - kMinExp)
    const int sub = static_cast<int>((mantissa - 0.5) * 2 * kSubBuckets);
    return 1 + octave * kSubBuckets + std::min(sub, kSubBuckets - 1);
  }

  /// Inclusive lower / exclusive upper bound of bucket `index` in ms.
  static double BucketLowerMs(int index) {
    if (index <= 0) return 0;
    if (index >= kNumBuckets - 1) return MaxMs();
    const int b = index - 1;
    return std::ldexp(1.0 + static_cast<double>(b % kSubBuckets) /
                                kSubBuckets,
                      kMinExp + b / kSubBuckets);
  }
  static double BucketUpperMs(int index) {
    if (index <= 0) return MinMs();
    if (index >= kNumBuckets - 1) return MaxMs();
    return BucketLowerMs(index + 1);
  }

  double MeanMs() const { return count == 0 ? 0 : sum_ms / count; }

  /// Quantile estimate for q in [0, 1]: linear interpolation inside the
  /// bucket the q-th sample lands in, clamped by the exact max. 0 when
  /// empty.
  double Quantile(double q) const {
    if (count == 0) return 0;
    q = std::clamp(q, 0.0, 1.0);
    // Rank in [1, count]; q = 0 asks for the smallest recorded sample.
    const double rank = std::max(1.0, q * static_cast<double>(count));
    uint64_t cumulative = 0;
    for (int i = 0; i < kNumBuckets; ++i) {
      if (buckets[i] == 0) continue;
      const uint64_t next = cumulative + buckets[i];
      if (static_cast<double>(next) >= rank) {
        const double into =
            (rank - static_cast<double>(cumulative)) / buckets[i];
        const double lower = BucketLowerMs(i);
        const double upper = i >= kNumBuckets - 1 ? std::max(max_ms, MaxMs())
                                                  : BucketUpperMs(i);
        return std::min(lower + (upper - lower) * into,
                        max_ms > 0 ? max_ms : upper);
      }
      cumulative = next;
    }
    return max_ms;  // Unreachable unless counts raced; max is safe.
  }

  /// Percentile in [0, 100] — the drop-in replacement for the harness's
  /// sort-based Percentile().
  double PercentileMs(double p) const { return Quantile(p / 100.0); }

  /// Count of samples <= `ms` (bucket-resolution; the straddling bucket
  /// contributes a linear fraction). Feeds the Prometheus cumulative
  /// `_bucket{le=...}` series.
  uint64_t CountAtMost(double ms) const {
    if (!(ms >= 0)) return 0;
    uint64_t cumulative = 0;
    for (int i = 0; i < kNumBuckets; ++i) {
      if (buckets[i] == 0) continue;
      const double upper = BucketUpperMs(i);
      if (upper <= ms) {
        cumulative += buckets[i];
        continue;
      }
      const double lower = BucketLowerMs(i);
      if (ms > lower && upper > lower) {
        cumulative += static_cast<uint64_t>(
            buckets[i] * ((ms - lower) / (upper - lower)));
      }
      break;
    }
    return cumulative;
  }

  void Merge(const HistogramSnapshot& other) {
    count += other.count;
    sum_ms += other.sum_ms;
    max_ms = std::max(max_ms, other.max_ms);
    for (int i = 0; i < kNumBuckets; ++i) buckets[i] += other.buckets[i];
  }

 private:
  static double MinMs() { return std::ldexp(1.0, kMinExp); }
  static double MaxMs() { return std::ldexp(1.0, kMaxExp); }
};

/// The concurrent recorder. Record() is wait-free apart from the max CAS
/// (which loops only while the max is actually being raised); Snapshot()
/// reads with relaxed ordering — counts may skew by in-flight samples but
/// the snapshot's count always equals the sum of its buckets.
class LatencyHistogram {
 public:
  LatencyHistogram() {
    for (auto& bucket : buckets_) {
      bucket.store(0, std::memory_order_relaxed);
    }
  }

  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  void Record(double ms) {
    buckets_[HistogramSnapshot::BucketIndex(ms)].fetch_add(
        1, std::memory_order_relaxed);
    AtomicAdd(&sum_bits_, ms);
    AtomicMax(&max_bits_, ms);
  }

  HistogramSnapshot Snapshot() const {
    HistogramSnapshot snapshot;
    uint64_t total = 0;
    for (int i = 0; i < HistogramSnapshot::kNumBuckets; ++i) {
      snapshot.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
      total += snapshot.buckets[i];
    }
    snapshot.count = total;
    snapshot.sum_ms = BitsToDouble(sum_bits_.load(std::memory_order_relaxed));
    snapshot.max_ms = BitsToDouble(max_bits_.load(std::memory_order_relaxed));
    return snapshot;
  }

 private:
  static double BitsToDouble(uint64_t bits) {
    double value;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
  }
  static uint64_t DoubleToBits(double value) {
    uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    return bits;
  }

  static void AtomicAdd(std::atomic<uint64_t>* cell, double delta) {
    uint64_t observed = cell->load(std::memory_order_relaxed);
    while (!cell->compare_exchange_weak(
        observed, DoubleToBits(BitsToDouble(observed) + delta),
        std::memory_order_relaxed)) {
    }
  }

  static void AtomicMax(std::atomic<uint64_t>* cell, double value) {
    uint64_t observed = cell->load(std::memory_order_relaxed);
    while (BitsToDouble(observed) < value &&
           !cell->compare_exchange_weak(observed, DoubleToBits(value),
                                        std::memory_order_relaxed)) {
    }
  }

  std::array<std::atomic<uint64_t>, HistogramSnapshot::kNumBuckets> buckets_;
  std::atomic<uint64_t> sum_bits_{0};  // Bit pattern of 0.0.
  std::atomic<uint64_t> max_bits_{0};
};

/// One-shot aggregation of a sample vector — what bench code that used to
/// sort-and-interpolate calls now; every percentile in the repo goes
/// through the same bucketing.
inline HistogramSnapshot SnapshotOfSamples(const std::vector<double>& ms) {
  LatencyHistogram histogram;
  for (double sample : ms) histogram.Record(sample);
  return histogram.Snapshot();
}

}  // namespace moqo

#endif  // MOQO_OBS_HISTOGRAM_H_
