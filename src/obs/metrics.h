// Copyright (c) 2026 moqo authors. MIT license.
//
// MetricsRegistry (PR 6): pull-model metrics with Prometheus text
// exposition.
//
// Producers register *callbacks*, not cells: the registry stores
// {name, help, type, labels, sampler} and evaluates the samplers at
// RenderPrometheus() time, so registration adds zero cost to the request
// path — all the live counters already exist in ServiceStatsRegistry /
// SubplanMemo::GetStats() / ThreadPool, and the registry just projects
// them into the exposition format. Metrics sharing a name (e.g. one
// counter per algorithm label) are grouped under a single # HELP/# TYPE
// header, as the format requires.
//
// Histograms render as the standard cumulative `_bucket{le="..."}` series
// plus `_sum` and `_count`, with a fixed le-bound set (sub-ms to seconds)
// resolved against HistogramSnapshot::CountAtMost.

#ifndef MOQO_OBS_METRICS_H_
#define MOQO_OBS_METRICS_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "obs/histogram.h"

namespace moqo {

class MetricsRegistry {
 public:
  using Labels = std::vector<std::pair<std::string, std::string>>;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  void AddCounter(std::string name, std::string help,
                  std::function<double()> sampler) {
    AddCounter(std::move(name), std::move(help), Labels{}, std::move(sampler));
  }
  void AddCounter(std::string name, std::string help, Labels labels,
                  std::function<double()> sampler);

  void AddGauge(std::string name, std::string help,
                std::function<double()> sampler) {
    AddGauge(std::move(name), std::move(help), Labels{}, std::move(sampler));
  }
  void AddGauge(std::string name, std::string help, Labels labels,
                std::function<double()> sampler);

  void AddHistogram(std::string name, std::string help,
                    std::function<HistogramSnapshot()> sampler) {
    AddHistogram(std::move(name), std::move(help), Labels{},
                 std::move(sampler));
  }
  void AddHistogram(std::string name, std::string help, Labels labels,
                    std::function<HistogramSnapshot()> sampler);

  /// Prometheus text exposition (format version 0.0.4) over every
  /// registered metric, samplers evaluated now.
  std::string RenderPrometheus() const;

  size_t size() const { return entries_.size(); }

 private:
  enum class Type { kCounter, kGauge, kHistogram };

  struct Entry {
    std::string name;
    std::string help;
    Type type = Type::kGauge;
    Labels labels;
    std::function<double()> scalar;               ///< counter / gauge
    std::function<HistogramSnapshot()> histogram; ///< histogram
  };

  /// Upper bounds (ms) for the exported `le` series; +Inf is implicit.
  static const std::vector<double>& BucketBoundsMs();

  std::vector<Entry> entries_;
};

}  // namespace moqo

#endif  // MOQO_OBS_METRICS_H_
