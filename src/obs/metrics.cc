// Copyright (c) 2026 moqo authors. MIT license.

#include "obs/metrics.h"

#include <cmath>
#include <cstdio>

namespace moqo {
namespace {

/// Prometheus label-value escaping: backslash, double-quote, newline.
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\' || c == '"') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

std::string RenderLabels(const MetricsRegistry::Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += labels[i].first + "=\"" + EscapeLabelValue(labels[i].second) + "\"";
  }
  out += "}";
  return out;
}

/// Labels plus one extra pair — used for the histogram `le` label.
MetricsRegistry::Labels WithLabel(MetricsRegistry::Labels labels,
                                  const std::string& key,
                                  const std::string& value) {
  labels.emplace_back(key, value);
  return labels;
}

std::string FormatNumber(double value) {
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  char buf[64];
  // %.17g round-trips doubles; trim the common integer case for
  // readability.
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", value);
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", value);
  }
  return buf;
}

}  // namespace

void MetricsRegistry::AddCounter(std::string name, std::string help,
                                 Labels labels,
                                 std::function<double()> sampler) {
  Entry entry;
  entry.name = std::move(name);
  entry.help = std::move(help);
  entry.type = Type::kCounter;
  entry.labels = std::move(labels);
  entry.scalar = std::move(sampler);
  entries_.push_back(std::move(entry));
}

void MetricsRegistry::AddGauge(std::string name, std::string help,
                               Labels labels, std::function<double()> sampler) {
  Entry entry;
  entry.name = std::move(name);
  entry.help = std::move(help);
  entry.type = Type::kGauge;
  entry.labels = std::move(labels);
  entry.scalar = std::move(sampler);
  entries_.push_back(std::move(entry));
}

void MetricsRegistry::AddHistogram(std::string name, std::string help,
                                   Labels labels,
                                   std::function<HistogramSnapshot()> sampler) {
  Entry entry;
  entry.name = std::move(name);
  entry.help = std::move(help);
  entry.type = Type::kHistogram;
  entry.labels = std::move(labels);
  entry.histogram = std::move(sampler);
  entries_.push_back(std::move(entry));
}

const std::vector<double>& MetricsRegistry::BucketBoundsMs() {
  static const std::vector<double> kBounds = {0.1, 0.5,  1,   5,    10,
                                              50,  100,  500, 1000, 5000};
  return kBounds;
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::string out;
  out.reserve(1 << 12);
  // Entries sharing a name (label families) emit one HELP/TYPE header;
  // registration order keeps families contiguous, but guard against
  // interleaving anyway by only emitting a header when the name changes.
  const std::string* last_header = nullptr;
  for (const Entry& entry : entries_) {
    if (last_header == nullptr || *last_header != entry.name) {
      out += "# HELP " + entry.name + " " + entry.help + "\n";
      out += "# TYPE " + entry.name + " ";
      switch (entry.type) {
        case Type::kCounter:
          out += "counter\n";
          break;
        case Type::kGauge:
          out += "gauge\n";
          break;
        case Type::kHistogram:
          out += "histogram\n";
          break;
      }
      last_header = &entry.name;
    }
    if (entry.type == Type::kHistogram) {
      const HistogramSnapshot snapshot = entry.histogram();
      for (double bound : BucketBoundsMs()) {
        out += entry.name + "_bucket" +
               RenderLabels(WithLabel(entry.labels, "le",
                                      FormatNumber(bound))) +
               " " +
               FormatNumber(static_cast<double>(snapshot.CountAtMost(bound))) +
               "\n";
      }
      out += entry.name + "_bucket" +
             RenderLabels(WithLabel(entry.labels, "le", "+Inf")) + " " +
             FormatNumber(static_cast<double>(snapshot.count)) + "\n";
      out += entry.name + "_sum" + RenderLabels(entry.labels) + " " +
             FormatNumber(snapshot.sum_ms) + "\n";
      out += entry.name + "_count" + RenderLabels(entry.labels) + " " +
             FormatNumber(static_cast<double>(snapshot.count)) + "\n";
    } else {
      out += entry.name + RenderLabels(entry.labels) + " " +
             FormatNumber(entry.scalar()) + "\n";
    }
  }
  return out;
}

}  // namespace moqo
