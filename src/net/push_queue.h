// Copyright (c) 2026 moqo authors. MIT license.
//
// PushQueue: the per-connection outbound frame queue with newest-wins
// backpressure (PR 7), factored out of the server so the drop policy is
// unit-testable without a socket.
//
// Frames are FIFO. FRONTIER_UPDATE frames are *droppable*: each one
// supersedes every earlier one (the session's frontiers only tighten), so
// when a slow reader has `max_queued_pushes` of them queued, pushing a new
// update drops the OLDEST queued update instead of growing the queue or
// stalling the publisher. Control frames (SELECT_RESULT, DONE, ERROR) are
// never dropped, and a partially written head frame is pinned — dropping
// bytes the socket already sent would corrupt the stream.
//
// Not thread-safe; the owning connection locks around it.

#ifndef MOQO_NET_PUSH_QUEUE_H_
#define MOQO_NET_PUSH_QUEUE_H_

#include <cstddef>
#include <deque>
#include <string>
#include <utility>

namespace moqo {
namespace net {

class PushQueue {
 public:
  struct Entry {
    std::string bytes;
    bool is_frontier = false;  ///< Droppable under backpressure.
  };

  explicit PushQueue(size_t max_queued_pushes)
      : max_queued_pushes_(max_queued_pushes) {}

  /// Appends a frame. When it is a frontier frame and the queue already
  /// holds max_queued_pushes frontier frames, the oldest unpinned frontier
  /// frame is dropped first. `head_bytes_written` > 0 pins the head entry
  /// (mid-write). Returns the number of frames dropped (0 or 1).
  size_t Push(std::string bytes, bool is_frontier,
              size_t head_bytes_written) {
    size_t dropped = 0;
    if (is_frontier) {
      size_t frontier_queued = 0;
      for (const Entry& entry : entries_) {
        if (entry.is_frontier) ++frontier_queued;
      }
      if (frontier_queued >= max_queued_pushes_) {
        const size_t first = head_bytes_written > 0 ? 1 : 0;
        for (size_t i = first; i < entries_.size(); ++i) {
          if (entries_[i].is_frontier) {
            entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(i));
            dropped = 1;
            break;
          }
        }
      }
    }
    entries_.push_back({std::move(bytes), is_frontier});
    return dropped;
  }

  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }
  const Entry& front() const { return entries_.front(); }
  void pop_front() { entries_.pop_front(); }

  /// Drops everything (teardown); returns how many frames were queued.
  size_t Clear() {
    const size_t n = entries_.size();
    entries_.clear();
    return n;
  }

 private:
  size_t max_queued_pushes_;
  std::deque<Entry> entries_;
};

}  // namespace net
}  // namespace moqo

#endif  // MOQO_NET_PUSH_QUEUE_H_
