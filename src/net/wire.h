// Copyright (c) 2026 moqo authors. MIT license.
//
// The moqo wire protocol (PR 7): a minimal length-prefixed binary framing
// for streaming FrontierSessions over a socket, dependency-free on both
// sides. All integers are little-endian; doubles travel as their IEEE-754
// bit pattern (memcpy through uint64_t), which is what makes a frontier
// received over the wire *byte-identical* to the in-process PlanSet costs
// it was encoded from.
//
// Frame layout (8-byte header + payload):
//
//   offset  size  field
//   0       2     magic 0x514D ("MQ")
//   2       1     protocol version (1)
//   3       1     message type (MsgType)
//   4       4     payload length in bytes
//
// Client -> server: OPEN_FRONTIER, SELECT, CANCEL, CLOSE.
// Server -> client: FRONTIER_UPDATE (one per OnRefined publish,
// server-pushed), SELECT_RESULT, DONE, ERROR. See examples/net_client.cc
// for a walked-through exchange and README.md for the message table.
//
// Queries travel by name (query_id), resolved server-side through
// NetOptions::resolve_query: the serving tier owns the catalog, clients
// only name what they want optimized. Frontier updates carry the frontier
// SUMMARY — per-plan cost vectors + the achieved alpha — not the plan
// trees; SELECT returns the chosen plan's index and costs, which is what
// a remote caller acts on.
//
// This header is deliberately transport-free (no sockets): the codec is
// unit-testable byte-by-byte, and both the epoll server and the blocking
// client build on the same functions.

#ifndef MOQO_NET_WIRE_H_
#define MOQO_NET_WIRE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace moqo {

class PlanSet;

namespace net {

inline constexpr uint16_t kMagic = 0x514D;  // "MQ" on the wire.
inline constexpr uint8_t kProtocolVersion = 1;
inline constexpr size_t kHeaderBytes = 8;
/// Default per-frame payload cap; NetOptions can lower/raise it. Oversized
/// frames are a protocol error (connection closed), not a buffering
/// request — the cap is what bounds per-connection memory.
inline constexpr size_t kDefaultMaxFrameBytes = 1 << 20;

enum class MsgType : uint8_t {
  // Client -> server.
  kOpenFrontier = 1,
  kSelect = 2,
  kCancel = 3,
  kClose = 4,
  // Server -> client.
  kFrontierUpdate = 16,
  kSelectResult = 17,
  kDone = 18,
  kError = 19,
};

/// Stable machine-readable error codes carried by ERROR frames. Values are
/// wire contract: never renumber, only append. A client that does not
/// recognize a code should treat it as fatal (every current code closes
/// the connection server-side).
enum class ErrorCode : uint8_t {
  kProtocol = 1,      ///< Out-of-order or malformed message; fatal.
  kUnknownQuery = 2,  ///< resolve_query had no entry for the id; fatal.
  kRejected = 3,      ///< Admission control shed the open; fatal.
  kInternal = 4,      ///< Server-side failure outside the client's control.
  kOverloaded = 5,    ///< Transient capacity exhaustion; retrying may work.
  kTimeout = 6,       ///< Server-enforced deadline expired (idle/handshake).
};

/// Stable lowercase token for an ErrorCode ("protocol", "timeout", ...);
/// "unknown" for values outside the enum. Intended for logs and clients —
/// tokens are part of the documented protocol (README error table).
const char* ErrorCodeName(ErrorCode code);

/// OPEN_FRONTIER: ProblemSpec (query by id + objectives + overrides) and
/// the SessionOptions ladder knobs, mirroring OpenFrontier(spec, options).
struct OpenFrontierMsg {
  std::string query_id;
  /// Objective enum values, in dimension order.
  std::vector<uint8_t> objectives;
  int8_t algorithm = -1;  ///< AlgorithmKind value; -1 = policy decides.
  double alpha = 0;       ///< Target alpha override; <= 0 = policy.
  int32_t parallelism = 0;  ///< DP parallelism override; 0 = policy.
  // SessionOptions.
  double alpha_start = 4.0;
  double alpha_target = -1;
  int32_t max_steps = 4;
  int64_t step_deadline_ms = -1;
  uint8_t quick_first = 1;
};

/// SELECT: scalarize the best frontier so far. `tag` is echoed in the
/// SELECT_RESULT so a pipelining client can match answers to questions.
struct SelectMsg {
  uint64_t tag = 0;
  std::vector<double> weights;  ///< Empty = uniform.
  std::vector<double> bounds;   ///< Empty = unbounded.
};

/// FRONTIER_UPDATE: one RefinedFrontier publish, server-pushed. Costs are
/// row-major [plan][dim], bit-exact.
struct FrontierUpdateMsg {
  int32_t step = 0;
  double alpha = 0;
  uint8_t from_cache = 0;
  double step_ms = 0;
  uint32_t dims = 0;
  std::vector<double> costs;  ///< size = num_plans * dims.

  uint32_t num_plans() const {
    return dims == 0 ? 0 : static_cast<uint32_t>(costs.size()) / dims;
  }
};

/// SELECT_RESULT: the chosen plan's index within the frontier of `step`,
/// its cost vector, and the scalarized cost. index == -1 means no frontier
/// was published yet.
struct SelectResultMsg {
  uint64_t tag = 0;
  int32_t step = -1;
  double alpha = 0;
  int32_t plan_index = -1;
  double weighted_cost = 0;
  std::vector<double> cost;
};

/// DONE: the session completed (target reached, cancelled, shed, degraded
/// or rejected); no further FRONTIER_UPDATE frames will arrive.
struct DoneMsg {
  uint8_t target_reached = 0;
  uint8_t cancelled = 0;
  uint8_t degraded = 0;
  uint8_t shed = 0;
  uint8_t rejected = 0;
  int32_t steps_published = 0;
  double best_alpha = 0;
};

struct ErrorMsg {
  uint8_t code = 0;
  std::string message;
};

// ---- Encoding (returns complete frames, header included). ----

std::string EncodeOpenFrontier(const OpenFrontierMsg& msg);
std::string EncodeSelect(const SelectMsg& msg);
std::string EncodeCancel();
std::string EncodeClose();
std::string EncodeFrontierUpdate(const FrontierUpdateMsg& msg);
std::string EncodeSelectResult(const SelectResultMsg& msg);
std::string EncodeDone(const DoneMsg& msg);
std::string EncodeError(ErrorCode code, const std::string& message);

/// Builds the FRONTIER_UPDATE summary of one published frontier: every
/// plan's cost vector, bit-exact. The byte-identity acceptance test
/// encodes an in-process session's history through this same function.
FrontierUpdateMsg MakeFrontierUpdate(int step, double alpha, bool from_cache,
                                     double step_ms, const PlanSet& plan_set);

// ---- Decoding (payload only, header already stripped). Each returns
// false on truncated/malformed payloads, leaving *out unspecified. ----

bool DecodeOpenFrontier(const uint8_t* data, size_t size,
                        OpenFrontierMsg* out);
bool DecodeSelect(const uint8_t* data, size_t size, SelectMsg* out);
bool DecodeFrontierUpdate(const uint8_t* data, size_t size,
                          FrontierUpdateMsg* out);
bool DecodeSelectResult(const uint8_t* data, size_t size,
                        SelectResultMsg* out);
bool DecodeDone(const uint8_t* data, size_t size, DoneMsg* out);
bool DecodeError(const uint8_t* data, size_t size, ErrorMsg* out);

/// Incremental frame splitter over an arbitrary-chunked byte stream (the
/// read side of a non-blocking socket): feed whatever recv returned,
/// then drain frames until kNeedMore. Bad magic/version and oversized
/// declarations are FATAL (the stream cannot be resynchronized) — the
/// caller closes the connection.
class FrameDecoder {
 public:
  enum class Status {
    kFrame,      ///< *type/*payload hold one complete frame.
    kNeedMore,   ///< Feed more bytes.
    kBadHeader,  ///< Wrong magic or version; close the connection.
    kOversized,  ///< Declared payload exceeds the cap; close.
  };

  explicit FrameDecoder(size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void Feed(const void* data, size_t size) {
    const uint8_t* bytes = static_cast<const uint8_t*>(data);
    buffer_.insert(buffer_.end(), bytes, bytes + size);
  }

  /// Extracts the next complete frame. kFrame consumes it from the
  /// buffer; fatal statuses are sticky.
  Status Next(MsgType* type, std::vector<uint8_t>* payload);

  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  size_t max_frame_bytes_;
  std::vector<uint8_t> buffer_;
  size_t consumed_ = 0;  ///< Prefix of buffer_ already handed out.
  /// Sticky fatal status (kBadHeader/kOversized); kFrame = healthy.
  Status broken_ = Status::kFrame;
};

}  // namespace net
}  // namespace moqo

#endif  // MOQO_NET_WIRE_H_
