// Copyright (c) 2026 moqo authors. MIT license.
//
// NetServer (PR 7): the streaming network front end of the optimization
// service — a dependency-free epoll event loop that maps one TCP
// connection onto one FrontierSession and *server-pushes* every refined
// frontier the session publishes, so a remote client gets the same
// anytime contract an in-process caller gets from OnRefined: a first
// frontier within quick-mode latency, then monotonically tightening
// updates until the target alpha, a DONE frame, or cancellation.
//
// Design:
//
//   - One event-loop thread, edge-triggered epoll, non-blocking sockets.
//     The loop owns the connection table; nothing else touches it.
//   - Session callbacks (OnRefined/OnDone) run on the service's worker
//     threads. They only ENCODE the frame, append it to the connection's
//     mutex-protected outbox, and wake the loop through an eventfd — they
//     never write to the socket and never block, which is what the
//     FrontierSession callback contract requires.
//   - Backpressure is newest-wins per connection: when a slow reader has
//     max_queued_pushes FRONTIER_UPDATE frames queued, the OLDEST queued
//     update is dropped to admit the new one (each update supersedes its
//     predecessors — the session's own BestFrontier semantics). Control
//     frames (SELECT_RESULT, DONE, ERROR) are never dropped. A slow
//     reader therefore costs bounded memory and zero event-loop stalls;
//     it just skips intermediate rungs.
//   - Teardown order per connection: RemoveCallback (blocks until any
//     in-flight delivery finishes), then Cancel() exactly once for the
//     connection's opener handle, then close(fd). This is what makes
//     connection churn safe against rungs landing concurrently.
//
// Observability: net.accept / net.read / net.push spans on the service
// tracer, and a moqo_net_* metric family registered on the service's
// MetricsRegistry (samplers share ownership of the counters, so a scrape
// after the server is gone still reads the final values).
//
// Lifetime: the NetServer must be destroyed (or Stop()ped) before the
// OptimizationService it serves — callbacks and spans reach into the
// service's sessions and tracer.

#ifndef MOQO_NET_NET_SERVER_H_
#define MOQO_NET_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/push_queue.h"
#include "net/wire.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace moqo {

class OptimizationService;
class Query;

namespace net {

struct NetOptions {
  /// Bind address. Loopback by default: the front end is meant to sit
  /// behind the process boundary, not the trust boundary.
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; the bound port is available from port() after Start().
  uint16_t port = 0;
  /// Per-frame payload cap for inbound frames; oversized declarations
  /// close the connection.
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Newest-wins backpressure: max FRONTIER_UPDATE frames queued per
  /// connection before the oldest queued update is dropped.
  size_t max_queued_pushes = 8;
  /// Maps an OPEN_FRONTIER query_id to the query it names; null return =
  /// unknown (the connection gets an ERROR and is closed). The serving
  /// tier owns the catalog — queries never travel over this wire.
  std::function<std::shared_ptr<const Query>(const std::string&)>
      resolve_query;
  /// Accept → first decodable frame deadline (PR 8). A connection that
  /// never produces a complete frame within this window is reaped with
  /// ERROR{timeout} — a half-open or dribbling client cannot pin a
  /// connection-table slot forever. <= 0 disables.
  int64_t handshake_timeout_ms = -1;
  /// No-traffic deadline, counting BOTH directions: client frames in and
  /// server pushes out. An open ladder that is still publishing keeps its
  /// connection alive; only a truly quiet connection is reaped with
  /// ERROR{timeout}. <= 0 disables.
  int64_t idle_timeout_ms = -1;
};

/// Plain-value snapshot of the wire-path counters.
struct NetStatsSnapshot {
  uint64_t connections_accepted = 0;
  uint64_t connections_active = 0;  ///< Gauge.
  uint64_t sessions_opened = 0;     ///< OPEN_FRONTIER frames served.
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t frames_in = 0;
  uint64_t pushes_sent = 0;     ///< FRONTIER_UPDATE frames written.
  uint64_t pushes_dropped = 0;  ///< Updates superseded by newest-wins.
  uint64_t push_queue_depth = 0;  ///< Gauge: queued frames, all conns.
  uint64_t protocol_errors = 0;
  /// Connections closed by the handshake/idle deadline sweep (distinct
  /// from protocol_errors: the peer spoke no ill, it just went quiet).
  uint64_t connections_reaped = 0;
};

class NetServer {
 public:
  /// Does not start anything; call Start(). `service` must outlive this
  /// object.
  NetServer(OptimizationService* service, NetOptions options = {});

  /// Stops and joins the loop, closing every connection.
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds, listens, registers the moqo_net_* metrics, and spawns the
  /// event loop. False on socket/bind/listen failure (errno preserved).
  bool Start();

  /// Idempotent; joins the loop thread and tears down every connection
  /// (callbacks removed, sessions cancelled, sockets closed).
  void Stop();

  /// The bound port (resolves port 0), valid after a successful Start().
  uint16_t port() const { return port_; }

  NetStatsSnapshot Stats() const;

 private:
  /// Shared between the loop thread, session callbacks, and the metric
  /// samplers registered on the service (which can outlive the server —
  /// hence shared_ptr).
  struct Counters;
  struct Connection;

  void LoopMain();
  void HandleAccept();
  /// ET read-drain: recv until EAGAIN/EOF, feeding the frame decoder and
  /// dispatching every complete frame. Returns false when the connection
  /// must close.
  bool HandleReadable(const std::shared_ptr<Connection>& conn);
  bool HandleFrame(const std::shared_ptr<Connection>& conn, MsgType type,
                   const std::vector<uint8_t>& payload);
  bool HandleOpenFrontier(const std::shared_ptr<Connection>& conn,
                          const std::vector<uint8_t>& payload);
  bool HandleSelect(const std::shared_ptr<Connection>& conn,
                    const std::vector<uint8_t>& payload);
  /// Writes queued frames until the outbox is empty or the socket would
  /// block (EPOLLOUT finishes the job). False on write error.
  bool FlushOutbox(const std::shared_ptr<Connection>& conn);
  /// Sends a final ERROR frame (best-effort) and closes. Counts a
  /// protocol error; the deadline sweep uses SendErrorAndClose directly.
  void FailConnection(const std::shared_ptr<Connection>& conn,
                      ErrorCode code, const std::string& message);
  void SendErrorAndClose(const std::shared_ptr<Connection>& conn,
                         ErrorCode code, const std::string& message);
  /// Closes every connection past its handshake or idle deadline with
  /// ERROR{timeout}; loop thread only, once per epoll pass.
  void ReapExpiredConnections();
  /// -1 (block) when both deadlines are disabled, else a fraction of the
  /// tightest one so a quiet connection is reaped promptly.
  int EpollTimeoutMs() const;
  void CloseConnection(const std::shared_ptr<Connection>& conn);
  /// Enqueues an encoded frame on the connection's outbox (newest-wins
  /// for frontier frames) and wakes the loop. Any thread.
  void Enqueue(const std::shared_ptr<Connection>& conn, std::string frame,
               bool is_frontier);
  void Wake();
  void RegisterMetrics();

  OptimizationService* service_;
  NetOptions options_;
  std::shared_ptr<Counters> counters_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  bool started_ = false;
  bool metrics_registered_ = false;
  std::thread loop_;

  /// Owned by the loop thread exclusively.
  std::unordered_map<int, std::shared_ptr<Connection>> connections_;

  /// Connections with freshly enqueued frames, flagged by callback
  /// threads, drained by the loop on each eventfd wake. weak_ptrs, not
  /// fds: an fd can be closed and reused by a brand-new connection while
  /// its flush request is still queued here, and the drain would then
  /// flush the WRONG connection. A weak_ptr can only ever resolve to the
  /// connection that enqueued (or to nothing).
  Mutex pending_mu_;
  std::vector<std::weak_ptr<Connection>> pending_flush_
      MOQO_GUARDED_BY(pending_mu_);
};

}  // namespace net
}  // namespace moqo

#endif  // MOQO_NET_NET_SERVER_H_
