// Copyright (c) 2026 moqo authors. MIT license.

#include "net/blocking_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <thread>

namespace moqo {
namespace net {
namespace {

/// Same generator as the failpoint framework: a pure function of the
/// seed and the attempt index, so a retry schedule replays exactly.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

bool BlockingNetClient::Connect(const std::string& host, uint16_t port) {
  Disconnect();
  host_ = host;
  port_ = port;
  fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Disconnect();
    return false;
  }
  const int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  decoder_ = FrameDecoder();
  return true;
}

bool BlockingNetClient::ConnectWithRetry(const std::string& host,
                                         uint16_t port,
                                         const RetryOptions& retry) {
  for (int attempt = 0; attempt < std::max(1, retry.max_attempts);
       ++attempt) {
    if (attempt > 0) {
      int64_t delay_ms = retry.base_backoff_ms > 0
                             ? retry.base_backoff_ms << (attempt - 1)
                             : 0;
      delay_ms = std::min(delay_ms, retry.max_backoff_ms);
      if (delay_ms > 0) {
        // Up to +50% seeded jitter.
        const uint64_t r = SplitMix64(
            retry.jitter_seed ^ (static_cast<uint64_t>(attempt) *
                                 0x9e3779b97f4a7c15ULL));
        delay_ms += static_cast<int64_t>(r % (delay_ms / 2 + 1));
        std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
      }
    }
    if (Connect(host, port)) return true;
  }
  return false;
}

bool BlockingNetClient::Reopen(const RetryOptions& retry) {
  if (!has_open_ || host_.empty()) return false;
  Disconnect();
  if (!ConnectWithRetry(host_, port_, retry)) return false;
  return SendRaw(EncodeOpenFrontier(last_open_));
}

void BlockingNetClient::Disconnect() {
  if (fd_ >= 0) close(fd_);
  fd_ = -1;
}

bool BlockingNetClient::SendRaw(const std::string& bytes) {
  if (fd_ < 0) return false;
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

bool BlockingNetClient::NextEvent(Event* event, int64_t timeout_ms) {
  if (fd_ < 0) return false;
  char buf[64 * 1024];
  while (true) {
    MsgType type;
    std::vector<uint8_t> payload;
    const FrameDecoder::Status status = decoder_.Next(&type, &payload);
    if (status == FrameDecoder::Status::kFrame) {
      event->type = type;
      switch (type) {
        case MsgType::kFrontierUpdate:
          return DecodeFrontierUpdate(payload.data(), payload.size(),
                                      &event->frontier);
        case MsgType::kSelectResult:
          return DecodeSelectResult(payload.data(), payload.size(),
                                    &event->select_result);
        case MsgType::kDone:
          return DecodeDone(payload.data(), payload.size(), &event->done);
        case MsgType::kError:
          return DecodeError(payload.data(), payload.size(), &event->error);
        default:
          return false;  // A client should never receive client frames.
      }
    }
    if (status != FrameDecoder::Status::kNeedMore) return false;
    if (timeout_ms >= 0) {
      pollfd pfd{fd_, POLLIN, 0};
      const int ready = poll(&pfd, 1, static_cast<int>(timeout_ms));
      if (ready <= 0) return false;  // Timeout or poll error.
    }
    const ssize_t n = recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) return false;  // Server closed.
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    decoder_.Feed(buf, static_cast<size_t>(n));
  }
}

bool BlockingNetClient::AwaitDone(
    Event* event,
    const std::function<void(const FrontierUpdateMsg&)>& on_frontier,
    int64_t timeout_ms) {
  while (true) {
    if (!NextEvent(event, timeout_ms)) return false;
    if (event->type == MsgType::kDone) return true;
    if (event->type == MsgType::kError) return false;
    if (event->type == MsgType::kFrontierUpdate && on_frontier != nullptr) {
      on_frontier(event->frontier);
    }
  }
}

}  // namespace net
}  // namespace moqo
