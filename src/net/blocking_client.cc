// Copyright (c) 2026 moqo authors. MIT license.

#include "net/blocking_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

namespace moqo {
namespace net {

bool BlockingNetClient::Connect(const std::string& host, uint16_t port) {
  Disconnect();
  fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Disconnect();
    return false;
  }
  const int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  decoder_ = FrameDecoder();
  return true;
}

void BlockingNetClient::Disconnect() {
  if (fd_ >= 0) close(fd_);
  fd_ = -1;
}

bool BlockingNetClient::SendRaw(const std::string& bytes) {
  if (fd_ < 0) return false;
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

bool BlockingNetClient::NextEvent(Event* event, int64_t timeout_ms) {
  if (fd_ < 0) return false;
  char buf[64 * 1024];
  while (true) {
    MsgType type;
    std::vector<uint8_t> payload;
    const FrameDecoder::Status status = decoder_.Next(&type, &payload);
    if (status == FrameDecoder::Status::kFrame) {
      event->type = type;
      switch (type) {
        case MsgType::kFrontierUpdate:
          return DecodeFrontierUpdate(payload.data(), payload.size(),
                                      &event->frontier);
        case MsgType::kSelectResult:
          return DecodeSelectResult(payload.data(), payload.size(),
                                    &event->select_result);
        case MsgType::kDone:
          return DecodeDone(payload.data(), payload.size(), &event->done);
        case MsgType::kError:
          return DecodeError(payload.data(), payload.size(), &event->error);
        default:
          return false;  // A client should never receive client frames.
      }
    }
    if (status != FrameDecoder::Status::kNeedMore) return false;
    if (timeout_ms >= 0) {
      pollfd pfd{fd_, POLLIN, 0};
      const int ready = poll(&pfd, 1, static_cast<int>(timeout_ms));
      if (ready <= 0) return false;  // Timeout or poll error.
    }
    const ssize_t n = recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) return false;  // Server closed.
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    decoder_.Feed(buf, static_cast<size_t>(n));
  }
}

bool BlockingNetClient::AwaitDone(
    Event* event,
    const std::function<void(const FrontierUpdateMsg&)>& on_frontier,
    int64_t timeout_ms) {
  while (true) {
    if (!NextEvent(event, timeout_ms)) return false;
    if (event->type == MsgType::kDone) return true;
    if (event->type == MsgType::kError) return false;
    if (event->type == MsgType::kFrontierUpdate && on_frontier != nullptr) {
      on_frontier(event->frontier);
    }
  }
}

}  // namespace net
}  // namespace moqo
