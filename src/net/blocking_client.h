// Copyright (c) 2026 moqo authors. MIT license.
//
// BlockingNetClient: a minimal synchronous client for the moqo wire
// protocol (net/wire.h) — a blocking socket, the shared FrameDecoder, and
// typed event delivery. This is what the tests and the closed-loop bench
// drive connections with; examples/net_client.cc shows the same exchange
// with the frames spelled out byte by byte.
//
// Not thread-safe: one thread per client, like one connection per session.

#ifndef MOQO_NET_BLOCKING_CLIENT_H_
#define MOQO_NET_BLOCKING_CLIENT_H_

#include <cstdint>
#include <functional>
#include <string>

#include "net/wire.h"

namespace moqo {
namespace net {

class BlockingNetClient {
 public:
  /// One decoded server frame; `type` says which member is meaningful.
  struct Event {
    MsgType type = MsgType::kError;
    FrontierUpdateMsg frontier;
    SelectResultMsg select_result;
    DoneMsg done;
    ErrorMsg error;
  };

  BlockingNetClient() = default;
  ~BlockingNetClient() { Disconnect(); }

  BlockingNetClient(const BlockingNetClient&) = delete;
  BlockingNetClient& operator=(const BlockingNetClient&) = delete;

  bool Connect(const std::string& host, uint16_t port);
  bool connected() const { return fd_ >= 0; }
  /// Closes the socket without a CLOSE frame (the server treats EOF the
  /// same: cancel + teardown).
  void Disconnect();

  // ---- Sends (false on socket error). ----
  bool SendOpen(const OpenFrontierMsg& msg) {
    return SendRaw(EncodeOpenFrontier(msg));
  }
  bool SendSelect(const SelectMsg& msg) { return SendRaw(EncodeSelect(msg)); }
  bool SendCancel() { return SendRaw(EncodeCancel()); }
  bool SendClose() { return SendRaw(EncodeClose()); }
  bool SendRaw(const std::string& bytes);

  /// Blocks for the next server frame. timeout_ms < 0 = wait forever.
  /// False on timeout, EOF, or a malformed/oversized server frame.
  bool NextEvent(Event* event, int64_t timeout_ms = -1);

  /// Drives NextEvent until a DONE frame (returned in *event), invoking
  /// `on_frontier` (may be null) for every FRONTIER_UPDATE on the way and
  /// ignoring SELECT_RESULT frames. False on error/timeout (per-event).
  bool AwaitDone(Event* event,
                 const std::function<void(const FrontierUpdateMsg&)>&
                     on_frontier = nullptr,
                 int64_t timeout_ms = -1);

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
};

}  // namespace net
}  // namespace moqo

#endif  // MOQO_NET_BLOCKING_CLIENT_H_
