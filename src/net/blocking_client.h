// Copyright (c) 2026 moqo authors. MIT license.
//
// BlockingNetClient: a minimal synchronous client for the moqo wire
// protocol (net/wire.h) — a blocking socket, the shared FrameDecoder, and
// typed event delivery. This is what the tests and the closed-loop bench
// drive connections with; examples/net_client.cc shows the same exchange
// with the frames spelled out byte by byte.
//
// Not thread-safe: one thread per client, like one connection per session.

#ifndef MOQO_NET_BLOCKING_CLIENT_H_
#define MOQO_NET_BLOCKING_CLIENT_H_

#include <cstdint>
#include <functional>
#include <string>

#include "net/wire.h"

namespace moqo {
namespace net {

/// Capped exponential backoff for ConnectWithRetry/Reopen (PR 8):
/// delay(attempt) = min(max_backoff_ms, base_backoff_ms << attempt),
/// jittered by up to +50% from a seeded deterministic stream — retries
/// are reproducible under a fixed seed and decorrelated across clients
/// with distinct seeds (no thundering herd on a server restart).
struct RetryOptions {
  int max_attempts = 5;
  int64_t base_backoff_ms = 10;
  int64_t max_backoff_ms = 1000;
  uint64_t jitter_seed = 1;
};

class BlockingNetClient {
 public:
  /// One decoded server frame; `type` says which member is meaningful.
  struct Event {
    MsgType type = MsgType::kError;
    FrontierUpdateMsg frontier;
    SelectResultMsg select_result;
    DoneMsg done;
    ErrorMsg error;
  };

  BlockingNetClient() = default;
  ~BlockingNetClient() { Disconnect(); }

  BlockingNetClient(const BlockingNetClient&) = delete;
  BlockingNetClient& operator=(const BlockingNetClient&) = delete;

  bool Connect(const std::string& host, uint16_t port);
  /// Connect with capped-exponential-backoff retries on refusal/reset.
  /// Remembers host/port for Reopen. False once max_attempts exhausted.
  bool ConnectWithRetry(const std::string& host, uint16_t port,
                        const RetryOptions& retry = RetryOptions());
  bool connected() const { return fd_ >= 0; }
  /// Closes the socket without a CLOSE frame (the server treats EOF the
  /// same: cancel + teardown).
  void Disconnect();

  /// Reconnects to the remembered endpoint and re-sends the last OPEN
  /// (idempotent server-side: the open lands on the plan cache or
  /// coalesces onto an identical in-flight ladder, so a retried open
  /// costs at most one cheap re-optimization, never a duplicate answer
  /// stream on the old connection — that connection is gone). False when
  /// no OPEN was ever sent or the reconnect/resend fails.
  bool Reopen(const RetryOptions& retry = RetryOptions());

  // ---- Sends (false on socket error). ----
  bool SendOpen(const OpenFrontierMsg& msg) {
    last_open_ = msg;
    has_open_ = true;
    return SendRaw(EncodeOpenFrontier(msg));
  }
  bool SendSelect(const SelectMsg& msg) { return SendRaw(EncodeSelect(msg)); }
  bool SendCancel() { return SendRaw(EncodeCancel()); }
  bool SendClose() { return SendRaw(EncodeClose()); }
  bool SendRaw(const std::string& bytes);

  /// Blocks for the next server frame. timeout_ms < 0 = wait forever.
  /// False on timeout, EOF, or a malformed/oversized server frame.
  bool NextEvent(Event* event, int64_t timeout_ms = -1);

  /// Drives NextEvent until a DONE frame (returned in *event), invoking
  /// `on_frontier` (may be null) for every FRONTIER_UPDATE on the way and
  /// ignoring SELECT_RESULT frames. False on error/timeout (per-event).
  bool AwaitDone(Event* event,
                 const std::function<void(const FrontierUpdateMsg&)>&
                     on_frontier = nullptr,
                 int64_t timeout_ms = -1);

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
  /// Endpoint + last OPEN, remembered for Reopen.
  std::string host_;
  uint16_t port_ = 0;
  OpenFrontierMsg last_open_;
  bool has_open_ = false;
};

}  // namespace net
}  // namespace moqo

#endif  // MOQO_NET_BLOCKING_CLIENT_H_
