// Copyright (c) 2026 moqo authors. MIT license.

#include "net/net_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "cost/objective.h"
#include "rt/failpoint.h"
#include "service/frontier_session.h"
#include "service/optimization_service.h"

namespace moqo {
namespace net {
namespace {

int64_t SteadyNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

/// Lock-free wire-path counters. Shared with the metric samplers
/// registered on the service, which may outlive the server.
struct NetServer::Counters {
  static constexpr auto kRelaxed = std::memory_order_relaxed;

  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> connections_active{0};
  std::atomic<uint64_t> sessions_opened{0};
  std::atomic<uint64_t> bytes_in{0};
  std::atomic<uint64_t> bytes_out{0};
  std::atomic<uint64_t> frames_in{0};
  std::atomic<uint64_t> pushes_sent{0};
  std::atomic<uint64_t> pushes_dropped{0};
  std::atomic<uint64_t> push_queue_depth{0};
  std::atomic<uint64_t> protocol_errors{0};
  std::atomic<uint64_t> connections_reaped{0};
};

/// One TCP connection and the session bound to it. The loop thread owns
/// everything except the outbox, which session callbacks append to under
/// outbox_mu.
struct NetServer::Connection {
  Connection(size_t max_frame_bytes, size_t max_queued_pushes)
      : decoder(max_frame_bytes), outbox(max_queued_pushes) {}

  int fd = -1;
  uint64_t trace_id = 0;
  FrameDecoder decoder;
  std::shared_ptr<FrontierSession> session;
  int refined_id = -1;
  int done_id = -1;
  /// The connection holds exactly one opener handle; Cancel() must run
  /// exactly once (CANCEL frame or teardown, whichever comes first).
  bool cancel_sent = false;
  /// Flipped exactly once, under outbox_mu (CloseConnection): an Enqueue
  /// that saw it false under the same mutex completed its outbox push and
  /// flush registration before teardown cleared anything.
  std::atomic<bool> closed{false};
  /// Deadline bookkeeping (PR 8). accepted_at_us and saw_frame are loop
  /// thread only; last_activity_us is also stamped by FlushOutbox, which
  /// Stop() may call off-loop — hence atomic.
  int64_t accepted_at_us = 0;
  std::atomic<int64_t> last_activity_us{0};
  bool saw_frame = false;

  Mutex outbox_mu;
  PushQueue outbox MOQO_GUARDED_BY(outbox_mu);
  /// Bytes of outbox.front() already written (partial sends); that entry
  /// is pinned — never dropped by backpressure.
  size_t write_offset MOQO_GUARDED_BY(outbox_mu) = 0;
};

NetServer::NetServer(OptimizationService* service, NetOptions options)
    : service_(service),
      options_(std::move(options)),
      counters_(std::make_shared<Counters>()) {}

NetServer::~NetServer() { Stop(); }

bool NetServer::Start() {
  if (started_) return true;
  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return false;
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1 ||
      bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      listen(listen_fd_, 128) != 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    Stop();
    return false;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  RegisterMetrics();
  running_.store(true, std::memory_order_release);
  loop_ = std::thread(&NetServer::LoopMain, this);
  started_ = true;
  return true;
}

void NetServer::Stop() {
  if (loop_.joinable()) {
    running_.store(false, std::memory_order_release);
    Wake();
    loop_.join();
  }
  // The loop is gone; tear down connections from this thread.
  std::vector<std::shared_ptr<Connection>> remaining;
  remaining.reserve(connections_.size());
  for (auto& [fd, conn] : connections_) remaining.push_back(conn);
  for (auto& conn : remaining) CloseConnection(conn);
  connections_.clear();
  for (int* fd : {&listen_fd_, &epoll_fd_, &wake_fd_}) {
    if (*fd >= 0) close(*fd);
    *fd = -1;
  }
  started_ = false;
}

NetStatsSnapshot NetServer::Stats() const {
  constexpr auto kRelaxed = std::memory_order_relaxed;
  NetStatsSnapshot s;
  s.connections_accepted = counters_->connections_accepted.load(kRelaxed);
  s.connections_active = counters_->connections_active.load(kRelaxed);
  s.sessions_opened = counters_->sessions_opened.load(kRelaxed);
  s.bytes_in = counters_->bytes_in.load(kRelaxed);
  s.bytes_out = counters_->bytes_out.load(kRelaxed);
  s.frames_in = counters_->frames_in.load(kRelaxed);
  s.pushes_sent = counters_->pushes_sent.load(kRelaxed);
  s.pushes_dropped = counters_->pushes_dropped.load(kRelaxed);
  s.push_queue_depth = counters_->push_queue_depth.load(kRelaxed);
  s.protocol_errors = counters_->protocol_errors.load(kRelaxed);
  s.connections_reaped = counters_->connections_reaped.load(kRelaxed);
  return s;
}

void NetServer::RegisterMetrics() {
  if (metrics_registered_) return;
  metrics_registered_ = true;
  MetricsRegistry* registry = service_->metrics_registry();
  // Samplers capture the counters by shared_ptr: a scrape after this
  // server is destroyed still reads the final values.
  auto counters = counters_;
  constexpr auto kRelaxed = std::memory_order_relaxed;
  registry->AddCounter(
      "moqo_net_connections_total", "Connections accepted by the front end",
      [counters] {
        return static_cast<double>(counters->connections_accepted.load(kRelaxed));
      });
  registry->AddGauge(
      "moqo_net_connections_active", "Currently open connections",
      [counters] {
        return static_cast<double>(counters->connections_active.load(kRelaxed));
      });
  registry->AddCounter(
      "moqo_net_sessions_total", "Frontier sessions opened over the wire",
      [counters] {
        return static_cast<double>(counters->sessions_opened.load(kRelaxed));
      });
  registry->AddCounter(
      "moqo_net_bytes_total", "Bytes received by the front end",
      {{"direction", "in"}}, [counters] {
        return static_cast<double>(counters->bytes_in.load(kRelaxed));
      });
  registry->AddCounter(
      "moqo_net_bytes_total", "Bytes written by the front end",
      {{"direction", "out"}}, [counters] {
        return static_cast<double>(counters->bytes_out.load(kRelaxed));
      });
  registry->AddCounter(
      "moqo_net_frames_in_total", "Complete frames decoded from clients",
      [counters] {
        return static_cast<double>(counters->frames_in.load(kRelaxed));
      });
  registry->AddCounter(
      "moqo_net_pushes_total", "Frontier updates written to clients",
      [counters] {
        return static_cast<double>(counters->pushes_sent.load(kRelaxed));
      });
  registry->AddCounter(
      "moqo_net_pushes_dropped_total",
      "Frontier updates superseded by newest-wins backpressure",
      [counters] {
        return static_cast<double>(counters->pushes_dropped.load(kRelaxed));
      });
  registry->AddGauge(
      "moqo_net_push_queue_depth", "Frames queued across all connections",
      [counters] {
        return static_cast<double>(counters->push_queue_depth.load(kRelaxed));
      });
  registry->AddCounter(
      "moqo_net_protocol_errors_total",
      "Connections failed on malformed or out-of-order frames",
      [counters] {
        return static_cast<double>(counters->protocol_errors.load(kRelaxed));
      });
  registry->AddCounter(
      "moqo_net_connections_reaped_total",
      "Connections closed by the handshake/idle deadline sweep",
      [counters] {
        return static_cast<double>(
            counters->connections_reaped.load(kRelaxed));
      });
}

void NetServer::Wake() {
  if (wake_fd_ < 0) return;
  const uint64_t one = 1;
  ssize_t ignored = write(wake_fd_, &one, sizeof(one));
  (void)ignored;  // A full eventfd counter is itself a pending wake.
}

int NetServer::EpollTimeoutMs() const {
  int64_t tightest = -1;
  for (int64_t deadline :
       {options_.handshake_timeout_ms, options_.idle_timeout_ms}) {
    if (deadline > 0 && (tightest < 0 || deadline < tightest)) {
      tightest = deadline;
    }
  }
  if (tightest < 0) return -1;
  // A quarter of the tightest deadline bounds reap latency to ~1.25x the
  // configured timeout; the floor/cap keep a pathological config from
  // either spinning or stalling the sweep.
  return static_cast<int>(std::min<int64_t>(250, std::max<int64_t>(5, tightest / 4)));
}

void NetServer::ReapExpiredConnections() {
  const int64_t now_us = SteadyNowUs();
  std::vector<std::shared_ptr<Connection>> expired;
  for (const auto& [fd, conn] : connections_) {
    if (options_.handshake_timeout_ms > 0 && !conn->saw_frame &&
        now_us - conn->accepted_at_us >
            options_.handshake_timeout_ms * 1000) {
      expired.push_back(conn);
    } else if (options_.idle_timeout_ms > 0 &&
               now_us - conn->last_activity_us.load(
                            std::memory_order_relaxed) >
                   options_.idle_timeout_ms * 1000) {
      expired.push_back(conn);
    }
  }
  // Close outside the iteration: SendErrorAndClose erases from
  // connections_.
  for (const auto& conn : expired) {
    counters_->connections_reaped.fetch_add(1, Counters::kRelaxed);
    SendErrorAndClose(conn, ErrorCode::kTimeout,
                      conn->saw_frame ? "idle timeout" : "handshake timeout");
  }
}

void NetServer::LoopMain() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  const int timeout_ms = EpollTimeoutMs();
  while (running_.load(std::memory_order_acquire)) {
    const int n = epoll_wait(epoll_fd_, events, kMaxEvents, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t drain;
        while (read(wake_fd_, &drain, sizeof(drain)) > 0) {
        }
        continue;
      }
      if (fd == listen_fd_) {
        HandleAccept();
        continue;
      }
      auto it = connections_.find(fd);
      if (it == connections_.end()) continue;  // Closed earlier this batch.
      std::shared_ptr<Connection> conn = it->second;
      bool ok = (events[i].events & (EPOLLHUP | EPOLLERR)) == 0;
      // Exception fence: a throw escaping the handlers (an injected
      // failpoint throw, or a real bug) must cost one connection, never
      // the event loop — every other session on this server depends on
      // the loop staying up.
      try {
        if (ok && (events[i].events & (EPOLLIN | EPOLLRDHUP)) != 0) {
          ok = HandleReadable(conn);
        }
        if (ok && (events[i].events & EPOLLOUT) != 0) {
          ok = FlushOutbox(conn);
        }
      } catch (...) {
        ok = false;
      }
      if (!ok) CloseConnection(conn);
    }
    // Frames enqueued by session callbacks since the last pass.
    std::vector<std::weak_ptr<Connection>> pending;
    {
      MutexLock lock(pending_mu_);
      pending.swap(pending_flush_);
    }
    for (const std::weak_ptr<Connection>& weak : pending) {
      std::shared_ptr<Connection> conn = weak.lock();
      if (conn == nullptr ||
          conn->closed.load(std::memory_order_relaxed)) {
        continue;
      }
      if (!FlushOutbox(conn)) CloseConnection(conn);
    }
    if (timeout_ms >= 0) ReapExpiredConnections();
  }
}

void NetServer::HandleAccept() {
  while (true) {
    const int fd =
        accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN: drained (or transient error; retry later).
    // Injected accept failure: the client sees an immediate RST/EOF, as
    // with a real fd-exhaustion or early-close fault.
    if (MOQO_FAILPOINT_HIT("net.accept")) {
      close(fd);
      continue;
    }
    TraceSpan span(service_->tracer(), "net", "net.accept");
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Connection>(options_.max_frame_bytes,
                                             options_.max_queued_pushes);
    conn->fd = fd;
    conn->trace_id = service_->tracer()->NextId();
    conn->accepted_at_us = SteadyNowUs();
    conn->last_activity_us.store(conn->accepted_at_us,
                                 std::memory_order_relaxed);
    epoll_event ev{};
    // ET for both directions: reads drain to EAGAIN, writes resume on the
    // writability edge after a short write.
    ev.events = EPOLLIN | EPOLLOUT | EPOLLET | EPOLLRDHUP;
    ev.data.fd = fd;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      close(fd);
      continue;
    }
    connections_.emplace(fd, std::move(conn));
    counters_->connections_accepted.fetch_add(1, Counters::kRelaxed);
    counters_->connections_active.fetch_add(1, Counters::kRelaxed);
  }
}

bool NetServer::HandleReadable(const std::shared_ptr<Connection>& conn) {
  TraceSpan span(service_->tracer(), "net", "net.read", conn->trace_id);
  // Injected read fault: connection closes exactly as on a recv error.
  MOQO_FAILPOINT_RETURN("net.read", false);
  char buf[64 * 1024];
  while (true) {
    const ssize_t n = recv(conn->fd, buf, sizeof(buf), 0);
    if (n == 0) return false;  // Peer closed.
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
    counters_->bytes_in.fetch_add(static_cast<uint64_t>(n),
                                  Counters::kRelaxed);
    conn->last_activity_us.store(SteadyNowUs(), std::memory_order_relaxed);
    conn->decoder.Feed(buf, static_cast<size_t>(n));
    MsgType type;
    std::vector<uint8_t> payload;
    while (true) {
      const FrameDecoder::Status status = conn->decoder.Next(&type, &payload);
      if (status == FrameDecoder::Status::kNeedMore) break;
      if (status == FrameDecoder::Status::kBadHeader ||
          status == FrameDecoder::Status::kOversized) {
        FailConnection(conn, ErrorCode::kProtocol,
                       status == FrameDecoder::Status::kOversized
                           ? "frame exceeds size limit"
                           : "bad frame header");
        return false;
      }
      counters_->frames_in.fetch_add(1, Counters::kRelaxed);
      conn->saw_frame = true;  // Handshake deadline satisfied.
      if (!HandleFrame(conn, type, payload)) return false;
    }
  }
  return true;
}

bool NetServer::HandleFrame(const std::shared_ptr<Connection>& conn,
                            MsgType type,
                            const std::vector<uint8_t>& payload) {
  switch (type) {
    case MsgType::kOpenFrontier:
      return HandleOpenFrontier(conn, payload);
    case MsgType::kSelect:
      return HandleSelect(conn, payload);
    case MsgType::kCancel:
      if (conn->session == nullptr) {
        FailConnection(conn, ErrorCode::kProtocol, "CANCEL before OPEN");
        return false;
      }
      if (!conn->cancel_sent) {
        conn->cancel_sent = true;
        conn->session->Cancel();  // Completion arrives as a DONE frame.
      }
      return true;
    case MsgType::kClose:
      FlushOutbox(conn);  // Best-effort drain of queued frames.
      CloseConnection(conn);
      return false;
    default:
      FailConnection(conn, ErrorCode::kProtocol, "unexpected message type");
      return false;
  }
}

bool NetServer::HandleOpenFrontier(const std::shared_ptr<Connection>& conn,
                                   const std::vector<uint8_t>& payload) {
  OpenFrontierMsg msg;
  if (!DecodeOpenFrontier(payload.data(), payload.size(), &msg)) {
    FailConnection(conn, ErrorCode::kProtocol, "malformed OPEN_FRONTIER");
    return false;
  }
  if (conn->session != nullptr) {
    FailConnection(conn, ErrorCode::kProtocol,
                   "one session per connection; OPEN already served");
    return false;
  }
  if (msg.objectives.empty() ||
      msg.objectives.size() > static_cast<size_t>(kNumObjectives) ||
      msg.algorithm >= static_cast<int8_t>(kNumAlgorithmKinds)) {
    FailConnection(conn, ErrorCode::kProtocol, "invalid problem spec");
    return false;
  }
  std::vector<Objective> objectives;
  objectives.reserve(msg.objectives.size());
  for (uint8_t value : msg.objectives) {
    if (value >= static_cast<uint8_t>(kNumObjectives)) {
      FailConnection(conn, ErrorCode::kProtocol, "unknown objective");
      return false;
    }
    objectives.push_back(static_cast<Objective>(value));
  }
  std::shared_ptr<const Query> query =
      options_.resolve_query ? options_.resolve_query(msg.query_id) : nullptr;
  if (query == nullptr) {
    FailConnection(conn, ErrorCode::kUnknownQuery,
                   "unknown query id: " + msg.query_id);
    return false;
  }

  ProblemSpec spec;
  spec.query = std::move(query);
  spec.objectives = ObjectiveSet(std::move(objectives));
  if (msg.algorithm >= 0) {
    spec.algorithm = static_cast<AlgorithmKind>(msg.algorithm);
  }
  if (msg.alpha > 0) spec.alpha = msg.alpha;
  if (msg.parallelism > 0) spec.parallelism = msg.parallelism;
  SessionOptions session_options;
  session_options.alpha_start = msg.alpha_start;
  session_options.alpha_target = msg.alpha_target;
  session_options.max_steps = msg.max_steps;
  session_options.step_deadline_ms = msg.step_deadline_ms;
  session_options.quick_first = msg.quick_first != 0;

  std::shared_ptr<FrontierSession> session =
      service_->OpenFrontier(std::move(spec), session_options);
  conn->session = session;
  counters_->sessions_opened.fetch_add(1, Counters::kRelaxed);

  // Both callbacks hold the connection alive; CloseConnection removes
  // them (RemoveCallback blocks out in-flight deliveries) before the
  // socket closes, so an enqueue never races a dead connection.
  conn->refined_id =
      session->OnRefined([this, conn](const RefinedFrontier& refined) {
        // Fenced: this runs inside Publish's delivery loop, which also
        // serves every OTHER subscriber of the session. A throw here (an
        // injected encode fault, an allocation failure on a huge
        // frontier) must cost exactly one dropped push on this
        // connection — not the rung that produced the frontier, and not
        // the deliveries queued behind us.
        try {
          TraceSpan push_span(service_->tracer(), "net", "net.push",
                              conn->trace_id);
          MOQO_FAILPOINT("net.push.encode");
          const FrontierUpdateMsg update =
              MakeFrontierUpdate(refined.step, refined.alpha,
                                 refined.from_cache, refined.step_ms,
                                 *refined.plan_set);
          push_span.AddArg("plans", update.num_plans());
          Enqueue(conn, EncodeFrontierUpdate(update), /*is_frontier=*/true);
        } catch (...) {
          counters_->pushes_dropped.fetch_add(1, Counters::kRelaxed);
        }
      });
  conn->done_id = session->OnDone([this, conn, session] {
    DoneMsg done;
    done.target_reached = session->TargetReached() ? 1 : 0;
    done.cancelled = session->Cancelled() ? 1 : 0;
    done.degraded = session->Degraded() ? 1 : 0;
    done.shed = session->Shed() ? 1 : 0;
    done.rejected = session->Rejected() ? 1 : 0;
    done.steps_published = session->StepsPublished();
    done.best_alpha = session->BestAlpha();
    Enqueue(conn, EncodeDone(done), /*is_frontier=*/false);
  });
  // The OnRefined replay already queued any open-time frontier; push it
  // out now rather than waiting for the eventfd round trip.
  return FlushOutbox(conn);
}

bool NetServer::HandleSelect(const std::shared_ptr<Connection>& conn,
                             const std::vector<uint8_t>& payload) {
  SelectMsg msg;
  if (!DecodeSelect(payload.data(), payload.size(), &msg)) {
    FailConnection(conn, ErrorCode::kProtocol, "malformed SELECT");
    return false;
  }
  if (conn->session == nullptr) {
    FailConnection(conn, ErrorCode::kProtocol, "SELECT before OPEN");
    return false;
  }
  if (msg.weights.size() > static_cast<size_t>(kNumObjectives) ||
      msg.bounds.size() > static_cast<size_t>(kNumObjectives)) {
    FailConnection(conn, ErrorCode::kProtocol, "preference too wide");
    return false;
  }
  Preference preference;  // Empty weights/bounds = uniform/unbounded.
  if (!msg.weights.empty()) {
    WeightVector weights(static_cast<int>(msg.weights.size()));
    for (size_t i = 0; i < msg.weights.size(); ++i) {
      weights[static_cast<int>(i)] = msg.weights[i];
    }
    preference.weights = weights;
  }
  if (!msg.bounds.empty()) {
    BoundVector bounds(static_cast<int>(msg.bounds.size()));
    for (size_t i = 0; i < msg.bounds.size(); ++i) {
      bounds[static_cast<int>(i)] = msg.bounds[i];
    }
    preference.bounds = bounds;
  }

  const SessionSelection selection = conn->session->Select(preference);
  SelectResultMsg result;
  result.tag = msg.tag;
  result.step = selection.step;
  result.alpha = selection.alpha;
  result.plan_index = selection.selection.index;
  result.weighted_cost = selection.selection.weighted_cost;
  for (int i = 0; i < selection.selection.cost.size(); ++i) {
    result.cost.push_back(selection.selection.cost[i]);
  }
  Enqueue(conn, EncodeSelectResult(result), /*is_frontier=*/false);
  return FlushOutbox(conn);
}

void NetServer::Enqueue(const std::shared_ptr<Connection>& conn,
                        std::string frame, bool is_frontier) {
  {
    MutexLock lock(conn->outbox_mu);
    if (conn->closed.load(std::memory_order_relaxed)) return;
    const size_t dropped =
        conn->outbox.Push(std::move(frame), is_frontier, conn->write_offset);
    counters_->pushes_dropped.fetch_add(dropped, Counters::kRelaxed);
    counters_->push_queue_depth.fetch_add(1 - dropped, Counters::kRelaxed);
    // Flush registration stays under outbox_mu: CloseConnection flips
    // closed under this same mutex, so the registration is strictly
    // ordered against teardown — a frame either never enters a closing
    // outbox, or enters with its flush request already queued.
    MutexLock pending(pending_mu_);
    pending_flush_.push_back(conn);
  }
  Wake();
}

bool NetServer::FlushOutbox(const std::shared_ptr<Connection>& conn) {
  MutexLock lock(conn->outbox_mu);
  if (conn->closed.load(std::memory_order_relaxed)) return false;
  // Injected write fault: caller closes, as on a hard send error.
  MOQO_FAILPOINT_RETURN("net.write", false);
  while (!conn->outbox.empty()) {
    const PushQueue::Entry& head = conn->outbox.front();
    const char* data = head.bytes.data() + conn->write_offset;
    const size_t left = head.bytes.size() - conn->write_offset;
    const ssize_t n = send(conn->fd, data, left, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;  // EPOLLOUT.
      if (errno == EINTR) continue;
      return false;
    }
    counters_->bytes_out.fetch_add(static_cast<uint64_t>(n),
                                   Counters::kRelaxed);
    conn->last_activity_us.store(SteadyNowUs(), std::memory_order_relaxed);
    conn->write_offset += static_cast<size_t>(n);
    if (conn->write_offset == head.bytes.size()) {
      if (head.is_frontier) {
        counters_->pushes_sent.fetch_add(1, Counters::kRelaxed);
      }
      conn->outbox.pop_front();
      conn->write_offset = 0;
      counters_->push_queue_depth.fetch_sub(1, Counters::kRelaxed);
    }
  }
  return true;
}

void NetServer::FailConnection(const std::shared_ptr<Connection>& conn,
                               ErrorCode code, const std::string& message) {
  counters_->protocol_errors.fetch_add(1, Counters::kRelaxed);
  SendErrorAndClose(conn, code, message);
}

void NetServer::SendErrorAndClose(const std::shared_ptr<Connection>& conn,
                                  ErrorCode code,
                                  const std::string& message) {
  Enqueue(conn, EncodeError(code, message), /*is_frontier=*/false);
  FlushOutbox(conn);  // Best effort; the close is happening regardless.
  CloseConnection(conn);
}

void NetServer::CloseConnection(const std::shared_ptr<Connection>& conn) {
  {
    // The closed flip and the outbox clear are one atomic step with
    // respect to Enqueue (which checks closed under this mutex): no frame
    // can land in the outbox after it was cleared, and no flush
    // registration can outlive the connection with its frame unaccounted.
    MutexLock lock(conn->outbox_mu);
    if (conn->closed.exchange(true)) return;
    counters_->push_queue_depth.fetch_sub(conn->outbox.Clear(),
                                          Counters::kRelaxed);
    conn->write_offset = 0;
  }
  if (conn->session != nullptr) {
    // Callback removal first: RemoveCallback blocks until in-flight
    // deliveries finish, so no enqueue can follow. Then release this
    // connection's one opener handle.
    if (conn->refined_id >= 0) conn->session->RemoveCallback(conn->refined_id);
    if (conn->done_id >= 0) conn->session->RemoveCallback(conn->done_id);
    if (!conn->cancel_sent) conn->session->Cancel();
    conn->session.reset();
  }
  if (epoll_fd_ >= 0) epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  close(conn->fd);
  connections_.erase(conn->fd);
  counters_->connections_active.fetch_sub(1, Counters::kRelaxed);
}

}  // namespace net
}  // namespace moqo
