// Copyright (c) 2026 moqo authors. MIT license.

#include "net/wire.h"

#include "core/plan_set.h"

namespace moqo {
namespace net {
namespace {

// ---- Little-endian primitive writers over std::string. ----

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU16(std::string* out, uint16_t v) {
  PutU8(out, static_cast<uint8_t>(v & 0xff));
  PutU8(out, static_cast<uint8_t>(v >> 8));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    PutU8(out, static_cast<uint8_t>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    PutU8(out, static_cast<uint8_t>((v >> (8 * i)) & 0xff));
  }
}

void PutI32(std::string* out, int32_t v) {
  PutU32(out, static_cast<uint32_t>(v));
}

void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

/// Bit-pattern transport: the receiver reconstructs the exact double,
/// which is what byte-identity of frontier costs rests on.
void PutF64(std::string* out, double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

void PutF64Vector(std::string* out, const std::vector<double>& values) {
  PutU32(out, static_cast<uint32_t>(values.size()));
  for (double v : values) PutF64(out, v);
}

/// Prepends the 8-byte header once the payload is complete.
std::string Frame(MsgType type, const std::string& payload) {
  std::string frame;
  frame.reserve(kHeaderBytes + payload.size());
  PutU16(&frame, kMagic);
  PutU8(&frame, kProtocolVersion);
  PutU8(&frame, static_cast<uint8_t>(type));
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  frame.append(payload);
  return frame;
}

// ---- Bounds-checked little-endian reader. All Get* return false on
// truncation, which the Decode* functions propagate. ----

class Reader {
 public:
  Reader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  bool GetU8(uint8_t* v) {
    if (pos_ + 1 > size_) return false;
    *v = data_[pos_++];
    return true;
  }

  bool GetU16(uint16_t* v) {
    uint8_t lo, hi;
    if (!GetU8(&lo) || !GetU8(&hi)) return false;
    *v = static_cast<uint16_t>(lo | (hi << 8));
    return true;
  }

  bool GetU32(uint32_t* v) {
    if (pos_ + 4 > size_) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(data_[pos_++]) << (8 * i);
    }
    return true;
  }

  bool GetU64(uint64_t* v) {
    if (pos_ + 8 > size_) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(data_[pos_++]) << (8 * i);
    }
    return true;
  }

  bool GetI8(int8_t* v) {
    uint8_t u;
    if (!GetU8(&u)) return false;
    *v = static_cast<int8_t>(u);
    return true;
  }

  bool GetI32(int32_t* v) {
    uint32_t u;
    if (!GetU32(&u)) return false;
    *v = static_cast<int32_t>(u);
    return true;
  }

  bool GetI64(int64_t* v) {
    uint64_t u;
    if (!GetU64(&u)) return false;
    *v = static_cast<int64_t>(u);
    return true;
  }

  bool GetF64(double* v) {
    uint64_t bits;
    if (!GetU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }

  bool GetString(std::string* s) {
    uint32_t len;
    if (!GetU32(&len) || pos_ + len > size_) return false;
    s->assign(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return true;
  }

  bool GetBytes(std::vector<uint8_t>* out, uint32_t count) {
    if (pos_ + count > size_) return false;
    out->assign(data_ + pos_, data_ + pos_ + count);
    pos_ += count;
    return true;
  }

  bool GetF64Vector(std::vector<double>* out) {
    uint32_t count;
    if (!GetU32(&count)) return false;
    // A count field cannot promise more doubles than bytes remain —
    // rejecting here keeps a hostile length from reserving gigabytes.
    if (remaining() / 8 < count) return false;
    out->resize(count);
    for (uint32_t i = 0; i < count; ++i) {
      if (!GetF64(&(*out)[i])) return false;
    }
    return true;
  }

  size_t remaining() const { return size_ - pos_; }
  bool exhausted() const { return pos_ == size_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace

std::string EncodeOpenFrontier(const OpenFrontierMsg& msg) {
  std::string payload;
  PutString(&payload, msg.query_id);
  PutU8(&payload, static_cast<uint8_t>(msg.objectives.size()));
  for (uint8_t objective : msg.objectives) PutU8(&payload, objective);
  PutU8(&payload, static_cast<uint8_t>(msg.algorithm));
  PutF64(&payload, msg.alpha);
  PutI32(&payload, msg.parallelism);
  PutF64(&payload, msg.alpha_start);
  PutF64(&payload, msg.alpha_target);
  PutI32(&payload, msg.max_steps);
  PutI64(&payload, msg.step_deadline_ms);
  PutU8(&payload, msg.quick_first);
  return Frame(MsgType::kOpenFrontier, payload);
}

std::string EncodeSelect(const SelectMsg& msg) {
  std::string payload;
  PutU64(&payload, msg.tag);
  PutF64Vector(&payload, msg.weights);
  PutF64Vector(&payload, msg.bounds);
  return Frame(MsgType::kSelect, payload);
}

std::string EncodeCancel() { return Frame(MsgType::kCancel, std::string()); }

std::string EncodeClose() { return Frame(MsgType::kClose, std::string()); }

std::string EncodeFrontierUpdate(const FrontierUpdateMsg& msg) {
  std::string payload;
  PutI32(&payload, msg.step);
  PutF64(&payload, msg.alpha);
  PutU8(&payload, msg.from_cache);
  PutF64(&payload, msg.step_ms);
  PutU32(&payload, msg.num_plans());
  PutU8(&payload, static_cast<uint8_t>(msg.dims));
  for (double cost : msg.costs) PutF64(&payload, cost);
  return Frame(MsgType::kFrontierUpdate, payload);
}

std::string EncodeSelectResult(const SelectResultMsg& msg) {
  std::string payload;
  PutU64(&payload, msg.tag);
  PutI32(&payload, msg.step);
  PutF64(&payload, msg.alpha);
  PutI32(&payload, msg.plan_index);
  PutF64(&payload, msg.weighted_cost);
  PutF64Vector(&payload, msg.cost);
  return Frame(MsgType::kSelectResult, payload);
}

std::string EncodeDone(const DoneMsg& msg) {
  std::string payload;
  PutU8(&payload, msg.target_reached);
  PutU8(&payload, msg.cancelled);
  PutU8(&payload, msg.degraded);
  PutU8(&payload, msg.shed);
  PutU8(&payload, msg.rejected);
  PutI32(&payload, msg.steps_published);
  PutF64(&payload, msg.best_alpha);
  return Frame(MsgType::kDone, payload);
}

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kProtocol:
      return "protocol";
    case ErrorCode::kUnknownQuery:
      return "unknown_query";
    case ErrorCode::kRejected:
      return "rejected";
    case ErrorCode::kInternal:
      return "internal";
    case ErrorCode::kOverloaded:
      return "overloaded";
    case ErrorCode::kTimeout:
      return "timeout";
  }
  return "unknown";
}

std::string EncodeError(ErrorCode code, const std::string& message) {
  std::string payload;
  PutU8(&payload, static_cast<uint8_t>(code));
  PutString(&payload, message);
  return Frame(MsgType::kError, payload);
}

FrontierUpdateMsg MakeFrontierUpdate(int step, double alpha, bool from_cache,
                                     double step_ms,
                                     const PlanSet& plan_set) {
  FrontierUpdateMsg msg;
  msg.step = step;
  msg.alpha = alpha;
  msg.from_cache = from_cache ? 1 : 0;
  msg.step_ms = step_ms;
  msg.dims = plan_set.empty()
                 ? 0
                 : static_cast<uint32_t>(plan_set.cost(0).size());
  msg.costs.reserve(static_cast<size_t>(plan_set.size()) * msg.dims);
  for (int i = 0; i < plan_set.size(); ++i) {
    const CostVector& cost = plan_set.cost(i);
    for (uint32_t d = 0; d < msg.dims; ++d) msg.costs.push_back(cost[d]);
  }
  return msg;
}

bool DecodeOpenFrontier(const uint8_t* data, size_t size,
                        OpenFrontierMsg* out) {
  Reader r(data, size);
  uint8_t num_objectives = 0;
  if (!r.GetString(&out->query_id) || !r.GetU8(&num_objectives) ||
      !r.GetBytes(&out->objectives, num_objectives) ||
      !r.GetI8(&out->algorithm) || !r.GetF64(&out->alpha) ||
      !r.GetI32(&out->parallelism) || !r.GetF64(&out->alpha_start) ||
      !r.GetF64(&out->alpha_target) || !r.GetI32(&out->max_steps) ||
      !r.GetI64(&out->step_deadline_ms) || !r.GetU8(&out->quick_first)) {
    return false;
  }
  return r.exhausted();
}

bool DecodeSelect(const uint8_t* data, size_t size, SelectMsg* out) {
  Reader r(data, size);
  if (!r.GetU64(&out->tag) || !r.GetF64Vector(&out->weights) ||
      !r.GetF64Vector(&out->bounds)) {
    return false;
  }
  return r.exhausted();
}

bool DecodeFrontierUpdate(const uint8_t* data, size_t size,
                          FrontierUpdateMsg* out) {
  Reader r(data, size);
  uint32_t num_plans = 0;
  uint8_t dims = 0;
  if (!r.GetI32(&out->step) || !r.GetF64(&out->alpha) ||
      !r.GetU8(&out->from_cache) || !r.GetF64(&out->step_ms) ||
      !r.GetU32(&num_plans) || !r.GetU8(&dims)) {
    return false;
  }
  out->dims = dims;
  const uint64_t count = static_cast<uint64_t>(num_plans) * dims;
  if (r.remaining() / 8 < count) return false;
  out->costs.resize(count);
  for (uint64_t i = 0; i < count; ++i) {
    if (!r.GetF64(&out->costs[i])) return false;
  }
  return r.exhausted();
}

bool DecodeSelectResult(const uint8_t* data, size_t size,
                        SelectResultMsg* out) {
  Reader r(data, size);
  if (!r.GetU64(&out->tag) || !r.GetI32(&out->step) ||
      !r.GetF64(&out->alpha) || !r.GetI32(&out->plan_index) ||
      !r.GetF64(&out->weighted_cost) || !r.GetF64Vector(&out->cost)) {
    return false;
  }
  return r.exhausted();
}

bool DecodeDone(const uint8_t* data, size_t size, DoneMsg* out) {
  Reader r(data, size);
  if (!r.GetU8(&out->target_reached) || !r.GetU8(&out->cancelled) ||
      !r.GetU8(&out->degraded) || !r.GetU8(&out->shed) ||
      !r.GetU8(&out->rejected) || !r.GetI32(&out->steps_published) ||
      !r.GetF64(&out->best_alpha)) {
    return false;
  }
  return r.exhausted();
}

bool DecodeError(const uint8_t* data, size_t size, ErrorMsg* out) {
  Reader r(data, size);
  if (!r.GetU8(&out->code) || !r.GetString(&out->message)) return false;
  return r.exhausted();
}

FrameDecoder::Status FrameDecoder::Next(MsgType* type,
                                        std::vector<uint8_t>* payload) {
  if (broken_ != Status::kFrame) return broken_;
  // Compact the consumed prefix once it dominates the buffer, so a
  // long-lived connection does not grow its read buffer unboundedly.
  if (consumed_ > 0 && consumed_ * 2 >= buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  const size_t available = buffer_.size() - consumed_;
  if (available < kHeaderBytes) return Status::kNeedMore;
  const uint8_t* head = buffer_.data() + consumed_;
  const uint16_t magic =
      static_cast<uint16_t>(head[0] | (static_cast<uint16_t>(head[1]) << 8));
  if (magic != kMagic || head[2] != kProtocolVersion) {
    broken_ = Status::kBadHeader;
    return broken_;
  }
  uint32_t payload_len = 0;
  for (int i = 0; i < 4; ++i) {
    payload_len |= static_cast<uint32_t>(head[4 + i]) << (8 * i);
  }
  if (payload_len > max_frame_bytes_) {
    broken_ = Status::kOversized;
    return broken_;
  }
  if (available < kHeaderBytes + payload_len) return Status::kNeedMore;
  *type = static_cast<MsgType>(head[3]);
  payload->assign(head + kHeaderBytes, head + kHeaderBytes + payload_len);
  consumed_ += kHeaderBytes + payload_len;
  return Status::kFrame;
}

}  // namespace net
}  // namespace moqo
