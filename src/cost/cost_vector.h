// Copyright (c) 2026 moqo authors. MIT license.
//
// CostVector and the dominance relations of Section 3:
//   - c1 "dominates" c2           (c1 <= c2 component-wise)
//   - c1 "strictly dominates" c2  (dominates and c1 != c2)
//   - c1 "approximately dominates c2 with precision alpha"
//     (for every objective o: c1[o] <= alpha * c2[o])
// plus weighted cost C_W(c) = sum_o c[o] * W[o] and bound checking.
//
// A CostVector only carries the *active* dimensions of the current problem
// instance (the ObjectiveSet chosen per test case); storage is inline and
// bounded by kNumObjectives, so vectors are value types with no heap use —
// matching the O(1)-space-per-plan assumption of Theorems 1 and 4.

#ifndef MOQO_COST_COST_VECTOR_H_
#define MOQO_COST_COST_VECTOR_H_

#include <array>
#include <cassert>
#include <string>

#include "cost/objective.h"

namespace moqo {

/// A non-negative, real-valued cost vector over the active objectives.
class CostVector {
 public:
  CostVector() : size_(0), values_{} {}

  /// Zero vector with `size` active dimensions.
  explicit CostVector(int size) : size_(size), values_{} {
    assert(size >= 0 && size <= kNumObjectives);
  }

  /// Vector with all `size` dimensions set to `value`.
  CostVector(int size, double value) : CostVector(size) {
    for (int i = 0; i < size_; ++i) values_[i] = value;
  }

  int size() const { return size_; }

  double operator[](int i) const {
    assert(i >= 0 && i < size_);
    return values_[i];
  }
  double& operator[](int i) {
    assert(i >= 0 && i < size_);
    return values_[i];
  }

  /// True iff every component is finite and >= 0 (model invariant).
  bool IsValid() const;

  /// Component-wise sum; both vectors must have equal size.
  CostVector Plus(const CostVector& other) const;

  /// Component-wise max; both vectors must have equal size.
  CostVector Max(const CostVector& other) const;

  /// Every component multiplied by `factor` (>= 0).
  CostVector Scaled(double factor) const;

  std::string ToString() const;

  bool operator==(const CostVector&) const = default;

 private:
  int size_;
  std::array<double, kNumObjectives> values_;
};

/// Section 3: c1 "dominates" c2 iff c1 has lower or equal cost in every
/// objective. Inline: this is the innermost loop of all optimizers.
inline bool Dominates(const CostVector& c1, const CostVector& c2) {
  assert(c1.size() == c2.size());
  for (int i = 0; i < c1.size(); ++i) {
    if (c1[i] > c2[i]) return false;
  }
  return true;
}

/// Section 3: dominates and not equal.
inline bool StrictlyDominates(const CostVector& c1, const CostVector& c2) {
  return Dominates(c1, c2) && !(c1 == c2);
}

/// Section 3: c1 approximately dominates c2 with precision alpha >= 1 iff
/// for every objective, c1[o] <= alpha * c2[o].
inline bool ApproxDominates(const CostVector& c1, const CostVector& c2,
                            double alpha) {
  assert(c1.size() == c2.size());
  assert(alpha >= 1.0);
  for (int i = 0; i < c1.size(); ++i) {
    if (c1[i] > c2[i] * alpha) return false;
  }
  return true;
}

/// Non-negative per-objective weights W; C_W(c) = sum_o c[o] * W[o].
class WeightVector {
 public:
  WeightVector() : size_(0), weights_{} {}
  explicit WeightVector(int size) : size_(size), weights_{} {}

  /// Weight 1 on every active objective.
  static WeightVector Uniform(int size) {
    WeightVector w(size);
    for (int i = 0; i < size; ++i) w.weights_[i] = 1.0;
    return w;
  }

  /// Weight 1 on dimension `index`, 0 elsewhere.
  static WeightVector OneHot(int size, int index) {
    WeightVector w(size);
    w.weights_[index] = 1.0;
    return w;
  }

  int size() const { return size_; }
  double operator[](int i) const { return weights_[i]; }
  double& operator[](int i) { return weights_[i]; }

  /// The weighted cost C_W(c).
  double WeightedCost(const CostVector& c) const {
    assert(c.size() == size_);
    double sum = 0;
    for (int i = 0; i < size_; ++i) sum += weights_[i] * c[i];
    return sum;
  }

  /// Bit-exact equality over the active dimensions (the service uses it to
  /// tell exact cache hits from frontier hits).
  bool operator==(const WeightVector& other) const {
    if (size_ != other.size_) return false;
    for (int i = 0; i < size_; ++i) {
      if (weights_[i] != other.weights_[i]) return false;
    }
    return true;
  }

  std::string ToString() const;

 private:
  int size_;
  std::array<double, kNumObjectives> weights_;
};

/// Non-negative per-objective upper bounds B; B[o] = +infinity means
/// unbounded. "Cost vector c exceeds the bounds if there is at least one
/// objective o with c[o] > B[o]" (Section 3).
class BoundVector {
 public:
  BoundVector() : size_(0), bounds_{} {}

  /// All dimensions unbounded.
  explicit BoundVector(int size);

  static BoundVector Unbounded(int size) { return BoundVector(size); }

  int size() const { return size_; }
  double operator[](int i) const { return bounds_[i]; }
  double& operator[](int i) { return bounds_[i]; }

  bool IsUnbounded(int i) const;

  /// True iff no dimension carries a finite bound.
  bool AllUnbounded() const;

  /// True iff c[o] <= B[o] for every objective ("c respects the bounds").
  bool Respects(const CostVector& c) const;

  /// True iff c respects the bounds relaxed by factor alpha (c <= alpha*B),
  /// as used by the IRA stopping condition (Algorithm 3, line 13).
  bool RespectsRelaxed(const CostVector& c, double alpha) const;

  /// Number of finite bounds.
  int NumFinite() const;

  /// Equality up to the weighted-MOQO canonicalization: two bound vectors
  /// are equivalent when both are all-unbounded (any size, including 0) or
  /// when they match bit-exactly per dimension.
  bool operator==(const BoundVector& other) const {
    if (AllUnbounded() && other.AllUnbounded()) return true;
    if (size_ != other.size_) return false;
    for (int i = 0; i < size_; ++i) {
      if (bounds_[i] != other.bounds_[i]) return false;
    }
    return true;
  }

  std::string ToString() const;

 private:
  int size_;
  std::array<double, kNumObjectives> bounds_;
};

/// Relative cost rho_I(p) of Definition 3 for weighted instances:
/// CW(c)/CW(c*), where c* is the optimum's cost. Returns 1 when both
/// weighted costs are zero.
double RelativeCost(const WeightVector& weights, const CostVector& cost,
                    const CostVector& optimal_cost);

}  // namespace moqo

#endif  // MOQO_COST_COST_VECTOR_H_
