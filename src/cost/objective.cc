#include "cost/objective.h"

#include <sstream>

namespace moqo {

namespace {

// Intrinsic floors (Observation 3): discrete-domain objectives have a
// natural quantum; tuple loss has the minimal non-zero loss induced by the
// coarsest sampling rate (sampling 99% of one table loses at least 1%).
constexpr std::array<ObjectiveInfo, kNumObjectives> kObjectiveTable = {{
    {Objective::kTotalTime, "total_time", "ms", CombinationKind::kParallelMax,
     false, 1e-3},
    {Objective::kStartupTime, "startup_time", "ms",
     CombinationKind::kParallelMax, false, 1e-3},
    {Objective::kIOLoad, "io_load", "page-ios", CombinationKind::kAdditive,
     false, 1.0},
    {Objective::kCPULoad, "cpu_load", "tuple-ops", CombinationKind::kAdditive,
     false, 1.0},
    {Objective::kCores, "cores", "cores", CombinationKind::kPeak, false, 1.0},
    {Objective::kDiskFootprint, "disk_footprint", "bytes",
     CombinationKind::kPeak, false, 1.0},
    {Objective::kBufferFootprint, "buffer_footprint", "bytes",
     CombinationKind::kPeak, false, 1.0},
    {Objective::kEnergy, "energy", "joule", CombinationKind::kAdditive, false,
     1e-3},
    {Objective::kTupleLoss, "tuple_loss", "fraction",
     CombinationKind::kLossCompose, true, 0.01},
}};

}  // namespace

const ObjectiveInfo& GetObjectiveInfo(Objective objective) {
  return kObjectiveTable[static_cast<int>(objective)];
}

const ObjectiveInfo& GetObjectiveInfoByIndex(int index) {
  return kObjectiveTable[index];
}

const char* ObjectiveName(Objective objective) {
  return GetObjectiveInfo(objective).name;
}

bool ParseObjective(const std::string& name, Objective* out) {
  for (const ObjectiveInfo& info : kObjectiveTable) {
    if (name == info.name) {
      *out = info.objective;
      return true;
    }
  }
  return false;
}

ObjectiveSet ObjectiveSet::All() {
  std::vector<Objective> all(kAllObjectives.begin(), kAllObjectives.end());
  return ObjectiveSet(std::move(all));
}

bool ObjectiveSet::Contains(Objective objective) const {
  return IndexOf(objective) >= 0;
}

int ObjectiveSet::IndexOf(Objective objective) const {
  for (int i = 0; i < size(); ++i) {
    if (objectives_[i] == objective) return i;
  }
  return -1;
}

std::string ObjectiveSet::ToString() const {
  std::ostringstream out;
  out << "[";
  for (int i = 0; i < size(); ++i) {
    if (i > 0) out << ", ";
    out << ObjectiveName(objectives_[i]);
  }
  out << "]";
  return out.str();
}

}  // namespace moqo
