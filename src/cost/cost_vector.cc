#include "cost/cost_vector.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace moqo {

bool CostVector::IsValid() const {
  for (int i = 0; i < size_; ++i) {
    if (!std::isfinite(values_[i]) || values_[i] < 0) return false;
  }
  return true;
}

CostVector CostVector::Plus(const CostVector& other) const {
  assert(size_ == other.size_);
  CostVector result(size_);
  for (int i = 0; i < size_; ++i) result.values_[i] = values_[i] + other[i];
  return result;
}

CostVector CostVector::Max(const CostVector& other) const {
  assert(size_ == other.size_);
  CostVector result(size_);
  for (int i = 0; i < size_; ++i) {
    result.values_[i] = std::max(values_[i], other[i]);
  }
  return result;
}

CostVector CostVector::Scaled(double factor) const {
  CostVector result(size_);
  for (int i = 0; i < size_; ++i) result.values_[i] = values_[i] * factor;
  return result;
}

std::string CostVector::ToString() const {
  std::ostringstream out;
  out << "(";
  for (int i = 0; i < size_; ++i) {
    if (i > 0) out << ", ";
    out << values_[i];
  }
  out << ")";
  return out.str();
}

std::string WeightVector::ToString() const {
  std::ostringstream out;
  out << "W(";
  for (int i = 0; i < size_; ++i) {
    if (i > 0) out << ", ";
    out << weights_[i];
  }
  out << ")";
  return out.str();
}

BoundVector::BoundVector(int size) : size_(size), bounds_{} {
  for (int i = 0; i < size_; ++i) {
    bounds_[i] = std::numeric_limits<double>::infinity();
  }
}

bool BoundVector::IsUnbounded(int i) const {
  return std::isinf(bounds_[i]);
}

bool BoundVector::AllUnbounded() const {
  for (int i = 0; i < size_; ++i) {
    if (!IsUnbounded(i)) return false;
  }
  return true;
}

bool BoundVector::Respects(const CostVector& c) const {
  assert(c.size() == size_);
  for (int i = 0; i < size_; ++i) {
    if (c[i] > bounds_[i]) return false;
  }
  return true;
}

bool BoundVector::RespectsRelaxed(const CostVector& c, double alpha) const {
  assert(c.size() == size_);
  for (int i = 0; i < size_; ++i) {
    // inf * alpha stays inf; finite bounds relax multiplicatively.
    if (c[i] > bounds_[i] * alpha) return false;
  }
  return true;
}

int BoundVector::NumFinite() const {
  int count = 0;
  for (int i = 0; i < size_; ++i) {
    if (!IsUnbounded(i)) ++count;
  }
  return count;
}

std::string BoundVector::ToString() const {
  std::ostringstream out;
  out << "B(";
  for (int i = 0; i < size_; ++i) {
    if (i > 0) out << ", ";
    if (IsUnbounded(i)) {
      out << "inf";
    } else {
      out << bounds_[i];
    }
  }
  out << ")";
  return out.str();
}

double RelativeCost(const WeightVector& weights, const CostVector& cost,
                    const CostVector& optimal_cost) {
  const double actual = weights.WeightedCost(cost);
  const double best = weights.WeightedCost(optimal_cost);
  if (best == 0) return actual == 0 ? 1.0 : std::numeric_limits<double>::infinity();
  return actual / best;
}

}  // namespace moqo
