// Copyright (c) 2026 moqo authors. MIT license.
//
// The nine cost objectives of the extended Postgres cost model (Section 4)
// plus per-objective metadata used by the cost model, the workload
// generator, and the complexity analysis.

#ifndef MOQO_COST_OBJECTIVE_H_
#define MOQO_COST_OBJECTIVE_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace moqo {

/// The nine objectives implemented by the paper's extended Postgres cost
/// model (Section 4). The enumerator order fixes the dimension order of
/// CostVector.
enum class Objective : uint8_t {
  kTotalTime = 0,       ///< Time until all result tuples are produced.
  kStartupTime = 1,     ///< Time until the first result tuple is produced.
  kIOLoad = 2,          ///< Number of (weighted) I/O operations.
  kCPULoad = 3,         ///< Accumulated CPU work over all cores.
  kCores = 4,           ///< Peak number of cores used concurrently.
  kDiskFootprint = 5,   ///< Peak temporary disk space (bytes).
  kBufferFootprint = 6, ///< Peak buffer memory (bytes).
  kEnergy = 7,          ///< Total energy consumption (Joule).
  kTupleLoss = 8,       ///< Expected fraction of result tuples lost (0..1).
};

/// Number of implemented objectives; the paper treats this as the constant l.
inline constexpr int kNumObjectives = 9;

/// All objectives in dimension order.
inline constexpr std::array<Objective, kNumObjectives> kAllObjectives = {
    Objective::kTotalTime,      Objective::kStartupTime,
    Objective::kIOLoad,         Objective::kCPULoad,
    Objective::kCores,          Objective::kDiskFootprint,
    Objective::kBufferFootprint, Objective::kEnergy,
    Objective::kTupleLoss,
};

/// How a plan's cost for an objective combines over independent,
/// concurrently executing subplans (Section 6.1: all formulas are built from
/// sum, max, min and multiplication by constants; tuple loss uses
/// 1-(1-a)(1-b)).
enum class CombinationKind : uint8_t {
  kAdditive,     ///< Child costs add up (energy, CPU load, IO load, ...).
  kPeak,         ///< Maximum over concurrently live children (footprints).
  kParallelMax,  ///< max over parallel branches plus own term (times).
  kLossCompose,  ///< 1-(1-a)(1-b): tuple loss / failure probability.
};

/// Static metadata for one objective.
struct ObjectiveInfo {
  Objective objective;
  const char* name;         ///< Short identifier, e.g. "total_time".
  const char* unit;         ///< Human-readable unit for printing.
  CombinationKind combination;
  bool bounded_domain;      ///< True iff cost values live in [0, 1] a priori.
  /// Observation 3: intrinsic positive lower bound on non-zero cost values.
  double intrinsic_floor;
};

/// Returns the metadata record for `objective`.
const ObjectiveInfo& GetObjectiveInfo(Objective objective);

/// Returns the metadata record by dimension index (0..kNumObjectives-1).
const ObjectiveInfo& GetObjectiveInfoByIndex(int index);

/// Short name ("total_time", "tuple_loss", ...).
const char* ObjectiveName(Objective objective);

/// Parses an objective from its short name; returns true on success.
bool ParseObjective(const std::string& name, Objective* out);

/// An ordered selection of objectives, as chosen per test case in Section 8
/// ("selected randomly out of the nine implemented objectives"). The
/// selection defines which CostVector dimensions are active in a problem
/// instance.
class ObjectiveSet {
 public:
  ObjectiveSet() = default;
  explicit ObjectiveSet(std::vector<Objective> objectives)
      : objectives_(std::move(objectives)) {}

  /// The selection containing all nine objectives, in dimension order.
  static ObjectiveSet All();

  /// Single-objective selection (SOQO), used for the 1-objective baseline.
  static ObjectiveSet Only(Objective objective) {
    return ObjectiveSet({objective});
  }

  int size() const { return static_cast<int>(objectives_.size()); }
  Objective at(int i) const { return objectives_[i]; }
  const std::vector<Objective>& objectives() const { return objectives_; }

  bool Contains(Objective objective) const;

  /// Index of `objective` within this selection, or -1 if absent.
  int IndexOf(Objective objective) const;

  std::string ToString() const;

  auto begin() const { return objectives_.begin(); }
  auto end() const { return objectives_.end(); }

  bool operator==(const ObjectiveSet&) const = default;

 private:
  std::vector<Objective> objectives_;
};

}  // namespace moqo

#endif  // MOQO_COST_OBJECTIVE_H_
