#include "frontier/frontier.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/random.h"

namespace moqo {

std::vector<CostVector> ExtractParetoFrontier(
    const std::vector<CostVector>& vectors) {
  std::vector<CostVector> frontier;
  for (const CostVector& candidate : vectors) {
    bool dominated = false;
    for (const CostVector& other : frontier) {
      if (Dominates(other, candidate)) {
        dominated = true;
        break;
      }
    }
    if (dominated) continue;
    std::erase_if(frontier, [&candidate](const CostVector& other) {
      return StrictlyDominates(candidate, other);
    });
    frontier.push_back(candidate);
  }
  return frontier;
}

std::optional<CostVector> FindUncoveredVector(
    const std::vector<CostVector>& candidate,
    const std::vector<CostVector>& reference, double alpha) {
  for (const CostVector& ref : reference) {
    bool covered = false;
    for (const CostVector& c : candidate) {
      if (ApproxDominates(c, ref, alpha)) {
        covered = true;
        break;
      }
    }
    if (!covered) return ref;
  }
  return std::nullopt;
}

double CoverageAlpha(const std::vector<CostVector>& candidate,
                     const std::vector<CostVector>& reference) {
  double worst = 1.0;
  for (const CostVector& ref : reference) {
    double best_for_ref = std::numeric_limits<double>::infinity();
    for (const CostVector& c : candidate) {
      // Smallest alpha such that c alpha-dominates ref.
      double needed = 1.0;
      for (int i = 0; i < c.size(); ++i) {
        if (c[i] <= ref[i]) continue;
        if (ref[i] == 0) {
          needed = std::numeric_limits<double>::infinity();
          break;
        }
        needed = std::max(needed, c[i] / ref[i]);
      }
      best_for_ref = std::min(best_for_ref, needed);
    }
    worst = std::max(worst, best_for_ref);
  }
  return worst;
}

double Hypervolume2D(const std::vector<CostVector>& frontier,
                     const CostVector& reference_point) {
  std::vector<CostVector> points;
  for (const CostVector& p : frontier) {
    if (p.size() >= 2 && p[0] <= reference_point[0] &&
        p[1] <= reference_point[1]) {
      points.push_back(p);
    }
  }
  std::sort(points.begin(), points.end(),
            [](const CostVector& a, const CostVector& b) {
              return a[0] != b[0] ? a[0] < b[0] : a[1] < b[1];
            });
  double volume = 0;
  double prev_y = reference_point[1];
  for (const CostVector& p : points) {
    if (p[1] >= prev_y) continue;  // Dominated in the sweep.
    volume += (reference_point[0] - p[0]) * (prev_y - p[1]);
    prev_y = p[1];
  }
  return volume;
}

double HypervolumeMonteCarlo(const std::vector<CostVector>& frontier,
                             const CostVector& reference_point, int samples,
                             uint64_t seed) {
  if (frontier.empty() || samples <= 0) return 0;
  const int dims = reference_point.size();
  Xoshiro256 rng(seed);
  int hits = 0;
  double box = 1.0;
  for (int i = 0; i < dims; ++i) box *= reference_point[i];
  for (int s = 0; s < samples; ++s) {
    CostVector point(dims);
    for (int i = 0; i < dims; ++i) {
      point[i] = rng.NextDouble() * reference_point[i];
    }
    for (const CostVector& f : frontier) {
      if (Dominates(f, point)) {
        ++hits;
        break;
      }
    }
  }
  return box * static_cast<double>(hits) / samples;
}

std::vector<CostVector> Project(const std::vector<CostVector>& vectors,
                                const std::vector<int>& dimensions) {
  std::vector<CostVector> result;
  result.reserve(vectors.size());
  for (const CostVector& v : vectors) {
    CostVector projected(static_cast<int>(dimensions.size()));
    for (size_t i = 0; i < dimensions.size(); ++i) {
      projected[static_cast<int>(i)] = v[dimensions[i]];
    }
    result.push_back(projected);
  }
  return result;
}

std::string AsciiScatter(const std::vector<CostVector>& points, int width,
                         int height, const std::string& x_label,
                         const std::string& y_label) {
  std::ostringstream out;
  if (points.empty()) return "(no points)\n";
  double min_x = std::numeric_limits<double>::infinity(), max_x = 0;
  double min_y = std::numeric_limits<double>::infinity(), max_y = 0;
  for (const CostVector& p : points) {
    min_x = std::min(min_x, p[0]);
    max_x = std::max(max_x, p[0]);
    min_y = std::min(min_y, p[1]);
    max_y = std::max(max_y, p[1]);
  }
  const double span_x = max_x > min_x ? max_x - min_x : 1.0;
  const double span_y = max_y > min_y ? max_y - min_y : 1.0;
  std::vector<std::string> canvas(height, std::string(width, ' '));
  for (const CostVector& p : points) {
    int col = static_cast<int>((p[0] - min_x) / span_x * (width - 1));
    int row = static_cast<int>((p[1] - min_y) / span_y * (height - 1));
    canvas[height - 1 - row][col] = '*';
  }
  out << y_label << " (" << min_y << " .. " << max_y << ")\n";
  for (const std::string& line : canvas) out << "|" << line << "\n";
  out << "+" << std::string(width, '-') << "> " << x_label << " (" << min_x
      << " .. " << max_x << ")\n";
  return out.str();
}

}  // namespace moqo
