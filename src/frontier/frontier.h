// Copyright (c) 2026 moqo authors. MIT license.
//
// Pareto-frontier utilities: extraction, alpha-coverage verification
// (Definition of alpha-approximate Pareto sets, Section 3), quality metrics
// and low-dimensional projections. Used by the Figure-4 reproduction, the
// examples' frontier explorer, and the approximation-guarantee tests.

#ifndef MOQO_FRONTIER_FRONTIER_H_
#define MOQO_FRONTIER_FRONTIER_H_

#include <optional>
#include <string>
#include <vector>

#include "cost/cost_vector.h"

namespace moqo {

/// Removes strictly dominated vectors from `vectors` (keeps one
/// representative per equivalent cost vector). Returns the Pareto frontier.
std::vector<CostVector> ExtractParetoFrontier(
    const std::vector<CostVector>& vectors);

/// Checks the alpha-approximate-Pareto-set property: every vector in
/// `reference` (the true frontier) must be approximately dominated with
/// precision `alpha` by some vector in `candidate`. Returns the first
/// uncovered reference vector, or nullopt if covered (property holds).
std::optional<CostVector> FindUncoveredVector(
    const std::vector<CostVector>& candidate,
    const std::vector<CostVector>& reference, double alpha);

/// Smallest alpha >= 1 such that `candidate` alpha-covers `reference`
/// (infinity when some reference vector has a zero component that the
/// candidate cannot reach).
double CoverageAlpha(const std::vector<CostVector>& candidate,
                     const std::vector<CostVector>& reference);

/// Exact hypervolume dominated by `frontier` inside the box [0, ref] for
/// two-dimensional vectors (sweep algorithm).
double Hypervolume2D(const std::vector<CostVector>& frontier,
                     const CostVector& reference_point);

/// Monte-Carlo hypervolume estimate for arbitrary dimension; `samples`
/// pseudo-random points, deterministic given `seed`.
double HypervolumeMonteCarlo(const std::vector<CostVector>& frontier,
                             const CostVector& reference_point, int samples,
                             uint64_t seed);

/// Projects each vector onto the given dimensions (e.g. {8, 6, 0} for the
/// tuple-loss x buffer x time plot of Figure 4).
std::vector<CostVector> Project(const std::vector<CostVector>& vectors,
                                const std::vector<int>& dimensions);

/// Renders a 2-D scatter plot of (x, y) = (v[0], v[1]) as ASCII art with
/// the given canvas size. Axes are linearly scaled to the data range.
std::string AsciiScatter(const std::vector<CostVector>& points, int width,
                         int height, const std::string& x_label,
                         const std::string& y_label);

}  // namespace moqo

#endif  // MOQO_FRONTIER_FRONTIER_H_
