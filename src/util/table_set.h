// Copyright (c) 2026 moqo authors. MIT license.
//
// TableSet: a set of base tables represented as a 64-bit bitmask.
//
// The dynamic-programming optimizers in src/core index their memo tables by
// table subsets; this type provides O(1) set algebra and the two enumeration
// primitives the algorithms need: enumeration of all non-empty proper
// submasks (the "splits" of Algorithm 1, line 19) and enumeration of all
// subsets of a fixed cardinality (line 16).

#ifndef MOQO_UTIL_TABLE_SET_H_
#define MOQO_UTIL_TABLE_SET_H_

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

namespace moqo {

/// A set of up to 64 base tables, identified by indexes 0..63.
///
/// Value type; all operations are O(1) bit manipulation. Used as the key of
/// the optimizer memo and as the operand universe in split enumeration.
class TableSet {
 public:
  /// Maximum number of distinct tables representable.
  static constexpr int kMaxTables = 64;

  constexpr TableSet() : mask_(0) {}
  constexpr explicit TableSet(uint64_t mask) : mask_(mask) {}

  /// The singleton set {table}.
  static constexpr TableSet Singleton(int table) {
    return TableSet(uint64_t{1} << table);
  }

  /// The set {0, 1, ..., count-1}.
  static constexpr TableSet Prefix(int count) {
    return count >= kMaxTables ? TableSet(~uint64_t{0})
                               : TableSet((uint64_t{1} << count) - 1);
  }

  constexpr uint64_t mask() const { return mask_; }
  constexpr bool Empty() const { return mask_ == 0; }
  constexpr int Cardinality() const { return std::popcount(mask_); }

  constexpr bool Contains(int table) const {
    return (mask_ >> table) & uint64_t{1};
  }
  constexpr bool ContainsAll(TableSet other) const {
    return (mask_ & other.mask_) == other.mask_;
  }
  constexpr bool Intersects(TableSet other) const {
    return (mask_ & other.mask_) != 0;
  }

  constexpr TableSet Union(TableSet other) const {
    return TableSet(mask_ | other.mask_);
  }
  constexpr TableSet Intersect(TableSet other) const {
    return TableSet(mask_ & other.mask_);
  }
  constexpr TableSet Minus(TableSet other) const {
    return TableSet(mask_ & ~other.mask_);
  }
  constexpr TableSet With(int table) const {
    return TableSet(mask_ | (uint64_t{1} << table));
  }
  constexpr TableSet Without(int table) const {
    return TableSet(mask_ & ~(uint64_t{1} << table));
  }

  /// Index of the lowest-numbered table in the set. Undefined when empty.
  constexpr int First() const { return std::countr_zero(mask_); }

  /// The member tables in increasing index order.
  std::vector<int> Members() const {
    std::vector<int> members;
    members.reserve(Cardinality());
    for (uint64_t m = mask_; m != 0; m &= m - 1) {
      members.push_back(std::countr_zero(m));
    }
    return members;
  }

  /// Renders e.g. "{0, 2, 5}" for debugging and explain output.
  std::string ToString() const;

  constexpr bool operator==(const TableSet&) const = default;
  constexpr auto operator<=>(const TableSet&) const = default;

 private:
  uint64_t mask_;
};

/// Enumerates all non-empty proper submasks s of `set` such that
/// (s, set \ s) covers every 2-way split of `set`. Each unordered split
/// {s, set\s} is visited twice (once per side); the dynamic-programming
/// driver deduplicates by keeping the side that contains set.First() when
/// operand order does not matter.
///
/// Usage:
///   for (SubsetIterator it(q); !it.Done(); it.Next()) { use(it.Current()); }
class SubsetIterator {
 public:
  explicit SubsetIterator(TableSet set)
      : universe_(set.mask()), current_((set.mask() - 1) & set.mask()) {}

  bool Done() const { return current_ == 0; }
  TableSet Current() const { return TableSet(current_); }
  TableSet Complement() const { return TableSet(universe_ & ~current_); }
  void Next() { current_ = (current_ - 1) & universe_; }

 private:
  uint64_t universe_;
  uint64_t current_;
};

/// Returns all subsets of `universe` with exactly `cardinality` members, in
/// increasing mask order. Used by the DP drivers to process table sets of
/// increasing size (Algorithm 1, lines 15-16).
std::vector<TableSet> SubsetsOfSize(TableSet universe, int cardinality);

}  // namespace moqo

#endif  // MOQO_UTIL_TABLE_SET_H_
