// Copyright (c) 2026 moqo authors. MIT license.
//
// ShardedLru: the concurrent, byte-budgeted, sharded LRU container shared
// by the whole-query PlanCache (service/plan_cache.h) and the cross-query
// SubplanMemo (memo/subplan_memo.h).
//
// Both caches want the same machinery — N independently locked shards,
// each with its own LRU list and capacity slice, entries accounted by a
// caller-supplied byte footprint, keys stored exactly once (the LRU list
// points at map keys, which unordered_map never moves) — but differ in
// policy: what counts as a servable hit (the PlanCache's relaxed alpha
// identity), when a re-insert replaces the stored value (tighter-alpha
// refreshes only), and what admission/invalidation logic wraps the
// container (the memo's epsilon admission and catalog epochs). Those stay
// with the owners as hooks and wrapper code; this template owns only the
// mechanics.
//
// Key requirements: equality-comparable and a public `hash` member with a
// well-mixed 64-bit value — used both for the in-shard hash table and
// (re-mixed, so shard choice stays decorrelated from the bucket choice)
// for shard routing. Value requirements: cheap to copy,
// default-constructible to a distinguishable "absent" state (both owners
// use shared_ptr).

#ifndef MOQO_UTIL_SHARDED_LRU_H_
#define MOQO_UTIL_SHARDED_LRU_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace moqo {

template <typename Key, typename Value>
class ShardedLru {
 public:
  struct Options {
    /// Total entries across all shards (secondary limit when a byte budget
    /// is set; every shard keeps at least one slot).
    size_t capacity = 1024;
    /// Byte budget across all shards; 0 = unlimited (entry-count eviction
    /// only). The primary limit when set.
    size_t capacity_bytes = 0;
    /// Independently locked shards; rounded up to a power of two.
    int shards = 8;
  };

  /// Counter snapshot. `weight` is an owner-defined per-entry quantity
  /// summed over residents (both owners count frontier plans).
  struct Counters {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    size_t entries = 0;
    size_t bytes = 0;
    size_t weight = 0;
  };

  explicit ShardedLru(const Options& options) {
    const int requested = options.shards < 1 ? 1 : options.shards;
    const size_t num_shards = std::bit_ceil(static_cast<size_t>(requested));
    shard_mask_ = num_shards - 1;
    shards_.reserve(num_shards);
    // Every shard gets at least one slot so a tiny capacity still caches.
    const size_t per_shard =
        (options.capacity + num_shards - 1) / num_shards;
    const size_t bytes_per_shard =
        options.capacity_bytes == 0
            ? 0
            : (options.capacity_bytes + num_shards - 1) / num_shards;
    for (size_t i = 0; i < num_shards; ++i) {
      auto shard = std::make_unique<Shard>();
      {
        // The shard is not shared yet; the lock exists purely so the
        // thread-safety analysis sees the guarded stores (free of
        // contention, and construction is never a hot path).
        MutexLock lock(shard->mu);
        shard->capacity = per_shard < 1 ? 1 : per_shard;
        shard->capacity_bytes = bytes_per_shard;
      }
      shards_.push_back(std::move(shard));
    }
  }

  ShardedLru(const ShardedLru&) = delete;
  ShardedLru& operator=(const ShardedLru&) = delete;

  /// Called once per evicted entry, outside the shard lock, in eviction
  /// order (coldest victim first). The owner decides what "demote" means —
  /// the persistence layer appends the entry to a disk tier. Set before
  /// concurrent use; not synchronized against in-flight operations. The
  /// hook may re-enter the container (a promote-triggered insert may evict
  /// and fire the hook again) because no lock is held at call time.
  using EvictionHook =
      std::function<void(const Key& key, const Value& value, size_t bytes)>;

  void SetEvictionHook(EvictionHook hook) { eviction_hook_ = std::move(hook); }

  /// Returns the value stored for `key` (promoting it to most recently
  /// used) if `admit(value)` accepts it; a default-constructed Value
  /// otherwise. A present-but-refused entry counts as a miss and is not
  /// promoted — to the caller it is indistinguishable from absence.
  /// `record_stats` = false skips the hit/miss counters (used by the
  /// service's coalescing re-probe so each request counts one lookup).
  template <typename Admit>
  Value LookupIf(const Key& key, Admit admit, bool record_stats = true) {
    Shard& shard = ShardFor(key);
    MutexLock lock(shard.mu);
    auto it = shard.index.find(key);
    if (it == shard.index.end() || !admit(it->second.value)) {
      if (record_stats) misses_.fetch_add(1, std::memory_order_relaxed);
      return Value();
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
    if (record_stats) hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second.value;
  }

  Value Lookup(const Key& key, bool record_stats = true) {
    return LookupIf(
        key, [](const Value&) { return true; }, record_stats);
  }

  /// Inserts `value` for `key`, evicting LRU entries of the target shard
  /// until the new entry fits both limits. If the key is already present,
  /// `replace(existing)` decides: true replaces the stored value (and its
  /// byte/weight accounting), false only promotes the entry — either way
  /// the key ends most recently used. An entry larger than the whole shard
  /// budget empties the shard and is stored anyway: the biggest entries
  /// are the ones most worth caching. Returns true iff the value was
  /// stored (fresh insert or accepted replace).
  template <typename Replace>
  bool InsertIf(const Key& key, Value value, size_t bytes, size_t weight,
                Replace replace) {
    // Victims are moved out under the lock and handed to the eviction hook
    // only after it is released, so the hook may do I/O or re-enter the
    // container without holding any shard mutex.
    std::vector<Victim> victims;
    {
      Shard& shard = ShardFor(key);
      MutexLock lock(shard.mu);
      auto it = shard.index.find(key);
      if (it != shard.index.end()) {
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
        if (!replace(it->second.value)) return false;
        shard.bytes = shard.bytes - it->second.bytes + bytes;
        shard.weight = shard.weight - it->second.weight + weight;
        it->second.value = std::move(value);
        it->second.bytes = bytes;
        it->second.weight = weight;
        // A grown replacement can push the shard over its byte budget; shed
        // colder entries, but never the just-refreshed one (at the front).
        while (shard.capacity_bytes != 0 &&
               shard.bytes > shard.capacity_bytes && shard.lru.size() > 1) {
          EvictBack(&shard, &victims);
        }
      } else {
        while (!shard.lru.empty() &&
               (shard.lru.size() >= shard.capacity ||
                (shard.capacity_bytes != 0 &&
                 shard.bytes + bytes > shard.capacity_bytes))) {
          EvictBack(&shard, &victims);
        }
        it = shard.index
                 .emplace(key, Entry{std::move(value), {}, bytes, weight})
                 .first;
        shard.lru.push_front(&it->first);
        it->second.lru_pos = shard.lru.begin();
        shard.bytes += bytes;
        shard.weight += weight;
        insertions_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    for (const Victim& victim : victims) {
      eviction_hook_(victim.key, victim.value, victim.bytes);
    }
    return true;
  }

  bool Insert(const Key& key, Value value, size_t bytes, size_t weight) {
    return InsertIf(key, std::move(value), bytes, weight,
                    [](const Value&) { return true; });
  }

  /// Converts one recorded miss into a hit; see PlanCache for the
  /// coalescing race this closes.
  void ReclassifyMissAsHit() {
    misses_.fetch_sub(1, std::memory_order_relaxed);
    hits_.fetch_add(1, std::memory_order_relaxed);
  }

  Counters GetCounters() const {
    Counters counters;
    counters.hits = hits_.load(std::memory_order_relaxed);
    counters.misses = misses_.load(std::memory_order_relaxed);
    counters.insertions = insertions_.load(std::memory_order_relaxed);
    counters.evictions = evictions_.load(std::memory_order_relaxed);
    for (const auto& shard : shards_) {
      MutexLock lock(shard->mu);
      counters.entries += shard->lru.size();
      counters.bytes += shard->bytes;
      counters.weight += shard->weight;
    }
    return counters;
  }

  size_t size() const {
    size_t total = 0;
    for (const auto& shard : shards_) {
      MutexLock lock(shard->mu);
      total += shard->lru.size();
    }
    return total;
  }

  void Clear() {
    for (const auto& shard : shards_) {
      MutexLock lock(shard->mu);
      shard->lru.clear();
      shard->index.clear();
      shard->bytes = 0;
      shard->weight = 0;
    }
  }

  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// Visits every resident entry as `fn(key, value, bytes)`, shard by
  /// shard, most-recently-used first within a shard. Holds one shard lock
  /// at a time — `fn` must not re-enter this container. Used by the
  /// persistence layer to export a snapshot without draining the cache.
  template <typename Fn>
  void ForEach(Fn fn) const {
    for (const auto& shard : shards_) {
      MutexLock lock(shard->mu);
      for (const Key* key : shard->lru) {
        auto it = shard->index.find(*key);
        fn(it->first, it->second.value, it->second.bytes);
      }
    }
  }

 private:
  /// Keys are stored exactly once, as map keys; the LRU list holds
  /// pointers to them — stable, since unordered_map never moves nodes.
  using LruList = std::list<const Key*>;

  struct Entry {
    Value value;
    typename LruList::iterator lru_pos;
    size_t bytes = 0;
    size_t weight = 0;
  };

  /// Hashes through the key's precomputed member, so keys need no
  /// std::hash specialization.
  struct KeyHash {
    size_t operator()(const Key& key) const noexcept {
      return static_cast<size_t>(key.hash);
    }
  };

  struct Shard {
    Mutex mu;
    LruList lru MOQO_GUARDED_BY(mu);  ///< Front = most recently used.
    std::unordered_map<Key, Entry, KeyHash> index MOQO_GUARDED_BY(mu);
    /// capacity/capacity_bytes are set once at construction, then
    /// read-only; guarded anyway so every reader is provably serialized.
    size_t capacity MOQO_GUARDED_BY(mu) = 0;
    size_t capacity_bytes MOQO_GUARDED_BY(mu) = 0;  ///< 0 = no byte limit.
    size_t bytes MOQO_GUARDED_BY(mu) = 0;
    size_t weight MOQO_GUARDED_BY(mu) = 0;
  };

  /// An evicted entry captured for the post-unlock eviction hook.
  struct Victim {
    Key key;
    Value value;
    size_t bytes = 0;
  };

  /// Caller holds the shard lock; lru non-empty. When an eviction hook is
  /// installed the victim is moved into `victims` for delivery after the
  /// lock is released.
  void EvictBack(Shard* shard, std::vector<Victim>* victims)
      MOQO_REQUIRES(shard->mu) {
    auto victim = shard->index.find(*shard->lru.back());
    if (eviction_hook_) {
      victims->push_back(Victim{victim->first,
                                std::move(victim->second.value),
                                victim->second.bytes});
    }
    shard->bytes -= victim->second.bytes;
    shard->weight -= victim->second.weight;
    shard->index.erase(victim);
    shard->lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }

  Shard& ShardFor(const Key& key) {
    // Multiply then fold the high bits down so every shard is reachable
    // regardless of shard count, and shard choice stays decorrelated from
    // the hash-table bucket choice inside the shard.
    uint64_t mixed = key.hash * 0x9E3779B97F4A7C15ull;
    mixed ^= mixed >> 32;
    return *shards_[mixed & shard_mask_];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  uint64_t shard_mask_ = 0;
  EvictionHook eviction_hook_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> insertions_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace moqo

#endif  // MOQO_UTIL_SHARDED_LRU_H_
