// Copyright (c) 2026 moqo authors. MIT license.
//
// ThreadPool: a fixed-size worker pool with a mutex-protected FIFO queue.
//
// One optimization run is CPU-bound for milliseconds to seconds, so a
// simple condition-variable queue is nowhere near the bottleneck; the pool
// exists to bound concurrency (workers = cores by default) while the
// service queues bursts ahead of it. Shutdown drains the queue: tasks
// already admitted run to completion, which lets the service guarantee
// that every accepted request's future resolves.
//
// Lives in util (not service) since PR 3: the DP engine fans each memo
// level out over the same pool type via ParallelFor, and core must not
// depend on the serving layer.
//
// Observability (PR 6): every dequeued task's queue wait (enqueue to
// pickup) goes into a concurrent histogram — QueueWaitSnapshot() is how
// the service's stats/metrics see queue pressure building before
// admission control does. With a Tracer attached, each task additionally
// records a "pool.task" span carrying its queue wait.
//
// Priority lanes (PR 7): the queue is two-class. Interactive tasks
// (first-frontier/one-shot work) always dequeue before refinement tasks
// (later ladder rungs), so a backlog of background refinement can never
// delay the latency-critical first answer. Within a lane, order stays
// FIFO. Refinement is starved under sustained interactive load by design:
// the service sheds refinement rungs before that backlog grows unbounded.

#ifndef MOQO_UTIL_THREAD_POOL_H_
#define MOQO_UTIL_THREAD_POOL_H_

#include <atomic>
#include <chrono>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "obs/histogram.h"
#include "obs/trace.h"
#include "rt/failpoint.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace moqo {

/// Scheduling class of one pool task. Interactive beats refinement at
/// every dequeue; ties within a lane are FIFO.
enum class TaskLane : uint8_t {
  kInteractive = 0,  ///< First-frontier / one-shot request work.
  kRefinement = 1,   ///< Background ladder rungs; runs when idle.
};

class ThreadPool {
 public:
  /// `tracer` (optional, not owned) must outlive the pool; `name` must be
  /// a string literal (it becomes the span category).
  explicit ThreadPool(int num_threads, Tracer* tracer = nullptr,
                      const char* name = "pool")
      : tracer_(tracer), name_(name) {
    if (num_threads < 1) num_threads = 1;
    workers_.reserve(num_threads);
    for (int i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() { Shutdown(); }

  /// Enqueues `task` on `lane`; returns false (dropping the task) after
  /// Shutdown(). Workers drain the interactive lane fully before touching
  /// the refinement lane.
  bool Submit(std::function<void()> task,
              TaskLane lane = TaskLane::kInteractive) {
    // `return_error` makes Submit behave as if shut down: callers already
    // handle a false return (reject, finish degraded, fewer helpers).
    MOQO_FAILPOINT_RETURN("pool.dispatch", false);
    {
      MutexLock lock(mu_);
      if (shutdown_) return false;
      queues_[static_cast<int>(lane)].push_back(
          {std::move(task), Clock::now()});
    }
    cv_.NotifyOne();
    return true;
  }

  /// Runs fn(index, slot) for every index in [0, n), cooperatively: the
  /// calling thread participates as slot 0 and up to `max_helpers` pool
  /// workers join as slots 1..max_helpers. Blocks until every index has
  /// finished. Indices are claimed dynamically from a shared counter, so
  /// unevenly sized tasks load-balance.
  ///
  /// Progress never depends on pool capacity: the caller alone can drain
  /// the whole batch, so concurrent batches from independent callers (or a
  /// shut-down pool) cannot deadlock — helpers that arrive after the index
  /// space is exhausted return without touching `fn`. Slot values are
  /// distinct per concurrent participant and bounded by max_helpers + 1,
  /// letting callers attach per-slot scratch state (e.g. one Arena each).
  ///
  /// Exception safety: a throw from `fn` (any slot) is captured, the batch
  /// still runs to the barrier (so no participant outlives the caller's
  /// stack), and the *first* captured exception is rethrown on the calling
  /// thread — callers fence ParallelFor exactly like a serial loop.
  void ParallelFor(int n, int max_helpers,
                   const std::function<void(int index, int slot)>& fn) {
    if (n <= 0) return;
    if (max_helpers > static_cast<int>(workers_.size())) {
      max_helpers = static_cast<int>(workers_.size());
    }
    if (max_helpers > n - 1) max_helpers = n - 1;
    if (max_helpers <= 0) {
      for (int i = 0; i < n; ++i) fn(i, 0);
      return;
    }

    struct Batch {
      std::atomic<int> next{0};
      std::atomic<int> done{0};
      int n = 0;
      const std::function<void(int, int)>* fn = nullptr;
      Mutex mu;
      CondVar cv;
      /// First throw from any slot.
      std::exception_ptr error MOQO_GUARDED_BY(mu);
    };
    auto batch = std::make_shared<Batch>();
    batch->n = n;
    batch->fn = &fn;

    // `fn` is only dereferenced for claimed indices < n; the caller cannot
    // return (invalidating it) before all such indices are done.
    auto drain = [](const std::shared_ptr<Batch>& b, int slot) {
      for (;;) {
        const int index = b->next.fetch_add(1, std::memory_order_relaxed);
        if (index >= b->n) return;
        try {
          (*b->fn)(index, slot);
        } catch (...) {
          // Contain it (a throw escaping into WorkerLoop would terminate
          // the process); the caller rethrows after the barrier.
          MutexLock lock(b->mu);
          if (!b->error) b->error = std::current_exception();
        }
        if (b->done.fetch_add(1, std::memory_order_acq_rel) + 1 == b->n) {
          // Last finisher wakes the (possibly already waiting) caller.
          MutexLock lock(b->mu);
          b->cv.NotifyAll();
        }
      }
    };

    for (int helper = 1; helper <= max_helpers; ++helper) {
      // A failed Submit (shutdown race) just means fewer helpers; the
      // caller still completes the batch below.
      Submit([batch, drain, helper] { drain(batch, helper); });
    }
    drain(batch, /*slot=*/0);
    // The error is copied out under the lock (every writer held it), so
    // the rethrow below touches no guarded state.
    std::exception_ptr error;
    {
      MutexLock lock(batch->mu);
      while (batch->done.load(std::memory_order_acquire) < batch->n) {
        batch->cv.Wait(batch->mu);
      }
      error = batch->error;
    }
    if (error) std::rethrow_exception(error);
  }

  /// Stops accepting tasks, drains the queue, and joins all workers.
  /// Idempotent.
  void Shutdown() {
    {
      MutexLock lock(mu_);
      if (shutdown_) return;
      shutdown_ = true;
    }
    cv_.NotifyAll();
    for (std::thread& worker : workers_) {
      if (worker.joinable()) worker.join();
    }
  }

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Queued tasks across both lanes.
  size_t QueueDepth() const {
    MutexLock lock(mu_);
    return queues_[0].size() + queues_[1].size();
  }

  size_t QueueDepth(TaskLane lane) const {
    MutexLock lock(mu_);
    return queues_[static_cast<int>(lane)].size();
  }

  /// Distribution of enqueue-to-pickup waits over every task dequeued so
  /// far (ms).
  HistogramSnapshot QueueWaitSnapshot() const {
    return queue_wait_.Snapshot();
  }

 private:
  using Clock = std::chrono::steady_clock;

  struct QueuedTask {
    std::function<void()> fn;
    Clock::time_point enqueued;
  };

  void WorkerLoop() {
    for (;;) {
      QueuedTask task;
      {
        MutexLock lock(mu_);
        while (!shutdown_ && queues_[0].empty() && queues_[1].empty()) {
          cv_.Wait(mu_);
        }
        std::deque<QueuedTask>& queue =
            !queues_[0].empty() ? queues_[0] : queues_[1];
        if (queue.empty()) return;  // shutdown_ and both lanes drained.
        task = std::move(queue.front());
        queue.pop_front();
      }
      const double wait_ms =
          std::chrono::duration<double, std::milli>(Clock::now() -
                                                    task.enqueued)
              .count();
      queue_wait_.Record(wait_ms);
      TraceSpan span(tracer_, name_, "pool.task");
      span.AddArg("queue_us", static_cast<int64_t>(wait_ms * 1000.0));
      task.fn();
    }
  }

  Tracer* tracer_ = nullptr;
  const char* name_ = "pool";
  LatencyHistogram queue_wait_;
  mutable Mutex mu_;
  CondVar cv_;
  /// Indexed by TaskLane; [0] (interactive) always dequeues first.
  std::deque<QueuedTask> queues_[2] MOQO_GUARDED_BY(mu_);
  bool shutdown_ MOQO_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace moqo

#endif  // MOQO_UTIL_THREAD_POOL_H_
