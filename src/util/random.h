// Copyright (c) 2026 moqo authors. MIT license.
//
// Xoshiro256**: a small, fast, reproducible PRNG.
//
// The Section-8 workload generator must produce identical test cases across
// runs and platforms for a given seed, so we avoid std::mt19937's
// distribution portability issues and implement the generator and the few
// distributions we need (uniform double, uniform int, subset sampling)
// explicitly.

#ifndef MOQO_UTIL_RANDOM_H_
#define MOQO_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

namespace moqo {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference code).
class Xoshiro256 {
 public:
  explicit Xoshiro256(uint64_t seed) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    uint64_t z = seed;
    for (auto& word : state_) {
      z += 0x9e3779b97f4a7c15ULL;
      uint64_t s = z;
      s = (s ^ (s >> 30)) * 0xbf58476d1ce4e5b9ULL;
      s = (s ^ (s >> 27)) * 0x94d049bb133111ebULL;
      word = s ^ (s >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Uniform integer in [0, bound). bound must be positive.
  uint64_t NextInt(uint64_t bound) {
    // Rejection sampling to remove modulo bias.
    const uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      uint64_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  int NextInt(int lo, int hi) {
    return lo + static_cast<int>(NextInt(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Samples `count` distinct elements from {0, ..., universe-1}
  /// (partial Fisher-Yates); order of the result is the sampling order.
  std::vector<int> SampleWithoutReplacement(int universe, int count);

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace moqo

#endif  // MOQO_UTIL_RANDOM_H_
