#include "util/random.h"

#include <numeric>

namespace moqo {

std::vector<int> Xoshiro256::SampleWithoutReplacement(int universe,
                                                      int count) {
  std::vector<int> pool(universe);
  std::iota(pool.begin(), pool.end(), 0);
  if (count > universe) count = universe;
  for (int i = 0; i < count; ++i) {
    int j = i + static_cast<int>(NextInt(static_cast<uint64_t>(universe - i)));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(count);
  return pool;
}

}  // namespace moqo
