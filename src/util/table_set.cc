#include "util/table_set.h"

#include <sstream>

namespace moqo {

std::string TableSet::ToString() const {
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (int member : Members()) {
    if (!first) out << ", ";
    out << member;
    first = false;
  }
  out << "}";
  return out.str();
}

namespace {

void CollectSubsets(const std::vector<int>& members, int next, int remaining,
                    uint64_t partial, std::vector<TableSet>* out) {
  if (remaining == 0) {
    out->push_back(TableSet(partial));
    return;
  }
  const int available = static_cast<int>(members.size()) - next;
  if (available < remaining) return;
  // Either include members[next] or skip it.
  CollectSubsets(members, next + 1, remaining - 1,
                 partial | (uint64_t{1} << members[next]), out);
  CollectSubsets(members, next + 1, remaining, partial, out);
}

}  // namespace

std::vector<TableSet> SubsetsOfSize(TableSet universe, int cardinality) {
  std::vector<TableSet> subsets;
  if (cardinality < 0 || cardinality > universe.Cardinality()) return subsets;
  CollectSubsets(universe.Members(), 0, cardinality, 0, &subsets);
  return subsets;
}

}  // namespace moqo
