// Copyright (c) 2026 moqo authors. MIT license.
//
// Deadline and StopWatch: wall-clock helpers for optimizer timeouts.
//
// Section 5.1: "If the optimization time exceeds two hours, the modified EXA
// finishes quickly by only generating one plan for all table sets that have
// not been treated so far." The optimizers poll a Deadline at table-set
// granularity to implement that behaviour; the experiment harness scales the
// paper's two-hour budget down (see DESIGN.md deviation ledger).

#ifndef MOQO_UTIL_DEADLINE_H_
#define MOQO_UTIL_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace moqo {

/// Monotonic stopwatch measuring elapsed milliseconds.
class StopWatch {
 public:
  StopWatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A wall-clock budget, optionally tied to an external cancellation flag.
/// A default-constructed Deadline never expires. A set cancel flag makes
/// the deadline report expiry immediately — everything already polling the
/// deadline (the DP's table-set loops, the IRA's iteration check, the memo
/// probe) becomes a cancellation point for free; the run then degrades to
/// the same Section 5.1 quick finish a timeout triggers, so a cancelled
/// optimization still unwinds through ordinary (fast) code paths.
class Deadline {
 public:
  /// Never expires.
  Deadline() : expires_(Clock::time_point::max()) {}

  static Deadline AfterMillis(int64_t millis) {
    Deadline d;
    d.expires_ = Clock::now() + std::chrono::milliseconds(millis);
    return d;
  }

  static Deadline Infinite() { return Deadline(); }

  /// The earlier of two deadlines; keeps either one's cancel flag (a's
  /// wins if both carry one).
  static Deadline Earliest(const Deadline& a, const Deadline& b) {
    Deadline d = a.expires_ <= b.expires_ ? a : b;
    d.cancel_ = a.cancel_ != nullptr ? a.cancel_ : b.cancel_;
    return d;
  }

  /// Copy of this deadline that additionally expires once `*cancel`
  /// becomes true. `cancel` is not owned and must outlive the deadline;
  /// null detaches.
  Deadline WithCancel(const std::atomic<bool>* cancel) const {
    Deadline d = *this;
    d.cancel_ = cancel;
    return d;
  }

  bool Expired() const {
    if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) {
      return true;
    }
    return expires_ != Clock::time_point::max() && Clock::now() >= expires_;
  }

  /// True iff no wall-clock limit is set (a cancel flag may still expire
  /// the deadline early).
  bool IsInfinite() const { return expires_ == Clock::time_point::max(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point expires_;
  const std::atomic<bool>* cancel_ = nullptr;
};

}  // namespace moqo

#endif  // MOQO_UTIL_DEADLINE_H_
