// Copyright (c) 2026 moqo authors. MIT license.
//
// Deadline and StopWatch: wall-clock helpers for optimizer timeouts.
//
// Section 5.1: "If the optimization time exceeds two hours, the modified EXA
// finishes quickly by only generating one plan for all table sets that have
// not been treated so far." The optimizers poll a Deadline at table-set
// granularity to implement that behaviour; the experiment harness scales the
// paper's two-hour budget down (see DESIGN.md deviation ledger).

#ifndef MOQO_UTIL_DEADLINE_H_
#define MOQO_UTIL_DEADLINE_H_

#include <chrono>
#include <cstdint>

namespace moqo {

/// Monotonic stopwatch measuring elapsed milliseconds.
class StopWatch {
 public:
  StopWatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A wall-clock budget. A default-constructed Deadline never expires.
class Deadline {
 public:
  /// Never expires.
  Deadline() : expires_(Clock::time_point::max()) {}

  static Deadline AfterMillis(int64_t millis) {
    Deadline d;
    d.expires_ = Clock::now() + std::chrono::milliseconds(millis);
    return d;
  }

  static Deadline Infinite() { return Deadline(); }

  bool Expired() const {
    return expires_ != Clock::time_point::max() && Clock::now() >= expires_;
  }

  bool IsInfinite() const { return expires_ == Clock::time_point::max(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point expires_;
};

}  // namespace moqo

#endif  // MOQO_UTIL_DEADLINE_H_
