// Copyright (c) 2026 moqo authors. MIT license.
//
// Clang Thread Safety Analysis annotations (MOQO_* spelling), no-ops on
// every other compiler. Applied across the concurrent layers so that lock
// discipline — which field is guarded by which mutex, which helper must be
// called with a lock held, which APIs must NOT be entered holding one — is
// checked at compile time instead of discovered by TSan at run time.
//
// Build with `-DMOQO_THREAD_SAFETY=ON` (Clang only) to turn the analysis
// into hard errors: `-Wthread-safety -Wthread-safety-beta -Werror`. See
// README "Static analysis" for the macro table and the escape-hatch
// policy (`MOQO_NO_THREAD_SAFETY_ANALYSIS` requires a justifying comment
// and is counted/capped by tools/lint/moqo_lint.py).
//
// The macro set mirrors the standard capability vocabulary:
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#ifndef MOQO_UTIL_THREAD_ANNOTATIONS_H_
#define MOQO_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define MOQO_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define MOQO_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op
#endif

/// Declares a class as a capability (a lockable thing). The string names
/// the capability kind in diagnostics, e.g. MOQO_CAPABILITY("mutex").
#define MOQO_CAPABILITY(x) MOQO_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Declares an RAII class whose constructor acquires and destructor
/// releases a capability (e.g. MutexLock).
#define MOQO_SCOPED_CAPABILITY \
  MOQO_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define MOQO_GUARDED_BY(x) MOQO_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x` (the pointer itself
/// may be read freely).
#define MOQO_PT_GUARDED_BY(x) \
  MOQO_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Function requires the listed capabilities held on entry (and does not
/// release them).
#define MOQO_REQUIRES(...) \
  MOQO_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// Function acquires the listed capabilities (held on return).
#define MOQO_ACQUIRE(...) \
  MOQO_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities (held on entry).
#define MOQO_RELEASE(...) \
  MOQO_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

/// Function attempts an acquire; the first argument is the return value
/// that means "acquired".
#define MOQO_TRY_ACQUIRE(...) \
  MOQO_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

/// Function must NOT be entered holding the listed capabilities (it will
/// acquire them itself; calling with them held deadlocks).
#define MOQO_EXCLUDES(...) \
  MOQO_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (teaches the analysis a
/// fact it cannot see, e.g. across an opaque callback boundary).
#define MOQO_ASSERT_CAPABILITY(x) \
  MOQO_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

/// Function returns a reference to the named capability.
#define MOQO_RETURN_CAPABILITY(x) \
  MOQO_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Documented lock-order edges, checked by the analysis.
#define MOQO_ACQUIRED_BEFORE(...) \
  MOQO_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define MOQO_ACQUIRED_AFTER(...) \
  MOQO_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

/// Escape hatch: disables the analysis for one function. Every use MUST
/// carry a comment starting with "TSA:" explaining why the analysis
/// cannot see the invariant; tools/lint/moqo_lint.py enforces the comment
/// and caps the total count.
#define MOQO_NO_THREAD_SAFETY_ANALYSIS \
  MOQO_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // MOQO_UTIL_THREAD_ANNOTATIONS_H_
