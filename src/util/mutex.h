// Copyright (c) 2026 moqo authors. MIT license.
//
// Annotated mutex primitives: `Mutex`, `MutexLock`, and `CondVar` — thin,
// zero-overhead wrappers over the <mutex>/<condition_variable> primitives
// that carry Clang Thread Safety Analysis capabilities
// (util/thread_annotations.h). Every mutex in src/ goes through these
// types; naked std::mutex outside this file is a lint error
// (tools/lint/moqo_lint.py, rule `naked-mutex`), which is what lets the
// analysis see every lock in the codebase.
//
// Zero-overhead is a hard contract (the bench guard compares
// bench_service_throughput's quick phase against the pre-wrapper seed):
// every method is a trivial inline forward, there is no extra state, and
// the static_asserts below pin the layout to the wrapped std types.
//
// CondVar deliberately has no predicate-taking Wait: the analysis treats
// a lambda body as a separate function, so a predicate closure reading
// guarded fields could not be checked. Call sites spell the standard
// explicit loop instead —
//
//   MutexLock lock(mu_);
//   while (!done_) cv_.Wait(mu_);
//
// which the analysis verifies end to end.

#ifndef MOQO_UTIL_MUTEX_H_
#define MOQO_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace moqo {

class CondVar;

/// A std::mutex carrying the "mutex" capability. Prefer MutexLock for
/// scoped sections; Lock/Unlock exist for the few hand-over-hand sites.
class MOQO_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() MOQO_ACQUIRE() { mu_.lock(); }
  void Unlock() MOQO_RELEASE() { mu_.unlock(); }
  bool TryLock() MOQO_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

static_assert(sizeof(Mutex) == sizeof(std::mutex),
              "Mutex must add no state over std::mutex");

/// RAII scoped lock over a Mutex (the capability-aware std::lock_guard).
class MOQO_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) MOQO_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() MOQO_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

static_assert(sizeof(MutexLock) == sizeof(std::mutex*),
              "MutexLock must be one pointer, like std::lock_guard");

/// Condition variable usable with Mutex while the analysis tracks the
/// lock: Wait atomically releases `mu`, blocks, and reacquires before
/// returning, so from the caller's (and the analysis's) view the lock is
/// held across the call.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) MOQO_REQUIRES(mu) {
    // Adopt the already-held native mutex for the duration of the wait,
    // then release the unique_lock's ownership claim without unlocking —
    // the caller still holds `mu`, exactly as the annotation promises.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  /// Returns true if the wait timed out (the caller re-checks its
  /// predicate either way; spurious wakeups are allowed).
  template <class Rep, class Period>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout)
      MOQO_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(native, timeout);
    native.release();
    return status == std::cv_status::timeout;
  }

  /// Returns true if `deadline` passed before a notification.
  template <class Clock, class Duration>
  bool WaitUntil(Mutex& mu,
                 const std::chrono::time_point<Clock, Duration>& deadline)
      MOQO_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(native, deadline);
    native.release();
    return status == std::cv_status::timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

static_assert(sizeof(CondVar) == sizeof(std::condition_variable),
              "CondVar must add no state over std::condition_variable");

}  // namespace moqo

#endif  // MOQO_UTIL_MUTEX_H_
