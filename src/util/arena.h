// Copyright (c) 2026 moqo authors. MIT license.
//
// Arena: a bump allocator for immutable plan nodes.
//
// The optimizers allocate very large numbers of small, immutable PlanNode
// objects whose lifetime is the lifetime of one optimization run (the EXA
// can allocate millions before a timeout). A bump allocator makes each
// allocation a pointer increment, never frees individual objects, and
// reports its total footprint so OptimizerMetrics can reproduce the
// "allocated memory during optimization" series of Figures 5/9/10.

#ifndef MOQO_UTIL_ARENA_H_
#define MOQO_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "rt/failpoint.h"

namespace moqo {

/// Block-based bump allocator. Not thread-safe; each optimizer run owns one.
class Arena {
 public:
  static constexpr size_t kDefaultBlockBytes = size_t{1} << 16;  // 64 KiB

  explicit Arena(size_t block_bytes = kDefaultBlockBytes)
      : initial_block_bytes_(block_bytes), block_bytes_(block_bytes) {}

  /// Geometric-growth arena: the first block reserves `initial_bytes` and
  /// every subsequent block doubles, up to `max_block_bytes`. Sizes the
  /// reservation to the payload for arenas whose footprint is unknown and
  /// often tiny — PlanSet snapshots pin their arenas for the lifetime of a
  /// cache/memo entry, and a fixed 64 KiB first block would waste most of
  /// a small frontier's byte budget — while big consumers still converge
  /// to full-size blocks after a few doublings.
  Arena(size_t initial_bytes, size_t max_block_bytes)
      : initial_block_bytes_(initial_bytes < 1 ? 1 : initial_bytes),
        block_bytes_(initial_block_bytes_),
        max_block_bytes_(max_block_bytes < initial_block_bytes_
                             ? initial_block_bytes_
                             : max_block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Allocates `bytes` with `alignment`; memory is owned by the arena and
  /// released only on destruction or Reset().
  void* Allocate(size_t bytes, size_t alignment = alignof(std::max_align_t)) {
    // Align the actual address, not the block-relative offset: block bases
    // from new char[] only guarantee fundamental alignment.
    size_t padded = blocks_.empty() ? 0 : AlignedOffset(alignment);
    if (blocks_.empty() || padded + bytes > blocks_.back().size) {
      NewBlock(bytes + alignment);
      padded = AlignedOffset(alignment);
    }
    void* result = blocks_.back().data.get() + padded;
    offset_ = padded + bytes;
    allocated_bytes_ += bytes;
    return result;
  }

  /// Constructs a T in arena storage. T must be trivially destructible or
  /// not require destruction (plan nodes qualify: POD-ish, pointer fields).
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never runs destructors");
    void* mem = Allocate(sizeof(T), alignof(T));
    return new (mem) T(std::forward<Args>(args)...);
  }

  /// Total bytes handed out to callers since construction or last Reset().
  size_t allocated_bytes() const { return allocated_bytes_; }

  /// Total bytes reserved from the system (>= allocated_bytes()).
  size_t reserved_bytes() const { return reserved_bytes_; }

  /// Releases all blocks; invalidates every pointer previously returned.
  /// A growth arena restarts from its initial block size.
  void Reset() {
    blocks_.clear();
    offset_ = 0;
    allocated_bytes_ = 0;
    reserved_bytes_ = 0;
    block_bytes_ = initial_block_bytes_;
  }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t size;
  };

  /// Smallest block offset >= offset_ whose address is `alignment`-aligned.
  size_t AlignedOffset(size_t alignment) const {
    const uintptr_t base =
        reinterpret_cast<uintptr_t>(blocks_.back().data.get());
    const uintptr_t aligned =
        (base + offset_ + alignment - 1) & ~(uintptr_t{alignment} - 1);
    return static_cast<size_t>(aligned - base);
  }

  void NewBlock(size_t min_bytes) {
    // Block refill, not per-Allocate: the bump fast path stays untouched.
    // Arm with `oom` to simulate allocation failure mid-optimization.
    MOQO_FAILPOINT("arena.new_block");
    size_t size = min_bytes > block_bytes_ ? min_bytes : block_bytes_;
    blocks_.push_back(Block{std::make_unique<char[]>(size), size});
    reserved_bytes_ += size;
    offset_ = 0;
    if (block_bytes_ < max_block_bytes_) {
      const size_t doubled = block_bytes_ * 2;
      block_bytes_ = doubled > max_block_bytes_ ? max_block_bytes_ : doubled;
    }
  }

  size_t initial_block_bytes_;
  size_t block_bytes_;
  /// Growth ceiling; == initial for fixed-size arenas.
  size_t max_block_bytes_ = 0;
  std::vector<Block> blocks_;
  size_t offset_ = 0;
  size_t allocated_bytes_ = 0;
  size_t reserved_bytes_ = 0;
};

}  // namespace moqo

#endif  // MOQO_UTIL_ARENA_H_
