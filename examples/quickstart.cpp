// quickstart: the minimal end-to-end tour of the moqo public API.
//
// Builds the TPC-H catalog, defines a three-table join query (TPC-H Q3),
// optimizes it for three conflicting objectives with the RTA approximation
// scheme, prints the chosen plan and the approximate Pareto frontier,
// re-scalarizes the same PlanSet for a second preference without
// re-optimizing, and compares against the exact EXA result.

#include <cstdio>
#include <iostream>

#include "core/exa.h"
#include "core/plan_set.h"
#include "core/rta.h"
#include "plan/plan_printer.h"
#include "query/tpch_queries.h"

using namespace moqo;

int main() {
  // 1. Catalog and query: TPC-H at scale factor 1; Q3 joins customer,
  //    orders and lineitem.
  Catalog catalog = Catalog::TpcH(1.0);
  Query query = MakeTpcHQuery(&catalog, 3);
  std::cout << "Query: " << query.ToString() << "\n\n";

  // 2. Problem: minimize a weighted sum of total time, buffer footprint
  //    and tuple loss. Higher weight = more important.
  MOQOProblem problem;
  problem.query = &query;
  problem.objectives = ObjectiveSet({Objective::kTotalTime,
                                     Objective::kBufferFootprint,
                                     Objective::kTupleLoss});
  problem.weights = WeightVector(3);
  problem.weights[0] = 1.0;     // time
  problem.weights[1] = 1e-6;    // buffer (bytes are a big unit)
  problem.weights[2] = 1e5;     // tuple loss is precious
  problem.bounds = BoundVector::Unbounded(3);

  // 3. Optimize with the RTA approximation scheme at precision 1.5: the
  //    returned plan's weighted cost is guaranteed within factor 1.5 of
  //    the optimum.
  OptimizerOptions options;
  options.alpha = 1.5;
  RTAOptimizer rta(options);
  OptimizerResult approx = rta.Optimize(problem);

  std::cout << "RTA(alpha=1.5) plan:\n"
            << ExplainPlan(approx.plan, query, rta.registry())
            << "cost " << approx.cost.ToString() << "  weighted "
            << approx.weighted_cost << "\n"
            << "optimization took " << approx.metrics.optimization_ms
            << " ms, considered " << approx.metrics.considered_plans
            << " plans, frontier size " << approx.frontier_size()
            << "\n\n";

  // 4. The frontier is the real product: result.plan_set holds the full
  //    approximate Pareto set *with plans*. A new preference — say, memory
  //    became scarce — is answered by SelectPlan over the same PlanSet in
  //    O(|frontier|), no second optimization.
  WeightVector memory_tight(3);
  memory_tight[0] = 0.1;
  memory_tight[1] = 1e-3;   // buffer bytes now 1000x more expensive
  memory_tight[2] = 1e5;
  const PlanSelection frugal = SelectPlan(*approx.plan_set, memory_tight);
  std::cout << "re-selected for memory-tight weights (no re-optimization):\n"
            << ExplainPlan(frugal.plan, query, rta.registry())
            << "cost " << frugal.cost.ToString() << "  weighted "
            << frugal.weighted_cost << "\n\n";

  // 5. Compare with exhaustive optimization (EXA).
  ExactMOQO exa(options);
  OptimizerResult exact = exa.Optimize(problem);
  std::cout << "EXA plan:\n"
            << ExplainPlan(exact.plan, query, exa.registry())
            << "cost " << exact.cost.ToString() << "  weighted "
            << exact.weighted_cost << "\n"
            << "optimization took " << exact.metrics.optimization_ms
            << " ms, considered " << exact.metrics.considered_plans
            << " plans, Pareto set size " << exact.frontier_size()
            << "\n\n";

  const double ratio = exact.weighted_cost > 0
                           ? approx.weighted_cost / exact.weighted_cost
                           : 1.0;
  std::printf("RTA/EXA weighted-cost ratio: %.4f (guarantee: <= %.2f)\n",
              ratio, options.alpha);
  return ratio <= options.alpha ? 0 : 1;
}
