// cloud_provider: Scenario 1 of the paper, served frontier-first.
//
// A Cloud provider bills users by accumulated processing time; sampling
// reduces cost but loses result tuples. Users set weights (relative
// importance) and optional hard bounds (budget, deadline) in their profile.
// The provider must find a plan minimizing the weighted cost among plans
// respecting all bounds — the bounded-weighted MOQO problem.
//
// Since PR 2 this is exactly the service's ProblemSpec/Preference split:
// the query + objectives are ONE spec whose approximate Pareto set is
// computed once, and each user profile is a Preference resolved from the
// shared PlanSet by request-time SelectPlan — the second and third profile
// below are frontier hits that never touch the optimizer. (Strict-bounds
// iterative refinement, Algorithm 3, remains available per request via
// ProblemSpec::algorithm = AlgorithmKind::kIra.)
//
// Monetary cost is modeled from the accumulated CPU/IO load (billed
// core-seconds), an "accumulative cost objective calculated according to
// similar formulas as energy consumption" (Section 6.1) — we reuse the
// cpu-load objective with a price weight.

#include <cstdio>
#include <iostream>

#include "plan/plan_printer.h"
#include "query/tpch_queries.h"
#include "service/optimization_service.h"

using namespace moqo;

namespace {

const char* OutcomeName(CacheOutcome outcome) {
  switch (outcome) {
    case CacheOutcome::kMiss: return "miss (optimizer ran)";
    case CacheOutcome::kExactHit: return "exact hit";
    case CacheOutcome::kFrontierHit: return "frontier hit (selection only)";
    case CacheOutcome::kCoalescedHit: return "coalesced";
  }
  return "?";
}

void RunProfile(OptimizationService* service, const char* profile_name,
                const Query& query, const ProblemSpec& spec,
                const Preference& preference,
                const OperatorRegistry& registry) {
  ServiceRequest request;
  request.spec = spec;
  request.preference = preference;
  const ServiceResponse response = service->SubmitAndWait(request);
  std::printf("=== profile: %s ===\n", profile_name);
  if (response.status == ResponseStatus::kRejected) {
    std::printf("rejected\n\n");
    return;
  }
  const OptimizerResult& result = *response.result;
  std::cout << ExplainPlan(result.plan, query, registry);
  std::printf(
      "cost %s\nweighted %.2f | bounds %s | %s, %.2f ms service time, "
      "frontier %d plans\n\n",
      result.cost.ToString().c_str(), result.weighted_cost,
      result.respects_bounds ? "respected" : "VIOLATED (none feasible)",
      OutcomeName(response.cache), response.service_ms,
      result.frontier_size());
}

}  // namespace

int main() {
  Catalog catalog = Catalog::TpcH(0.1);
  Query query = MakeTpcHQuery(&catalog, 10);  // Returned-item reporting.
  std::cout << "Cloud scenario on " << query.ToString() << "\n\n";

  ServiceOptions options;
  options.num_workers = 2;
  OptimizationService service(options);
  const OperatorRegistry registry(options.operators);

  // ONE spec: objectives are execution time (user-visible latency),
  // monetary cost (billed work = cpu load), tuple loss (answer quality).
  // All three profiles below share its frontier.
  ProblemSpec spec;
  spec.query = UnownedQuery(&query);
  spec.objectives = ObjectiveSet(
      {Objective::kTotalTime, Objective::kCPULoad, Objective::kTupleLoss});

  // Profile 1: analyst — exact answers required (tuple loss bounded to 0),
  // latency matters more than money. First request: computes the frontier.
  Preference analyst;
  analyst.weights = WeightVector(3);
  analyst.weights[0] = 1.0;    // time
  analyst.weights[1] = 0.05;   // dollars per unit of work
  analyst.weights[2] = 0.0;
  analyst.bounds = BoundVector::Unbounded(3);
  analyst.bounds[2] = 0.0;     // No lost tuples.
  RunProfile(&service, "analyst (exact answers, latency-sensitive)", query,
             spec, analyst, registry);

  // Profile 2: dashboard — approximate answers are fine (up to 96% loss
  // via sampling), money weighted heavily. Frontier hit: selection only.
  Preference dashboard;
  dashboard.weights = WeightVector(3);
  dashboard.weights[0] = 0.2;
  dashboard.weights[1] = 1.0;
  dashboard.weights[2] = 100.0;  // Still prefer less loss, all else equal.
  dashboard.bounds = BoundVector::Unbounded(3);
  dashboard.bounds[2] = 0.96;
  RunProfile(&service, "dashboard (sampled, budget-bound)", query, spec,
             dashboard, registry);

  // Profile 3: batch report — deadline on execution time, minimize money.
  // Another frontier hit on the same cached PlanSet.
  Preference batch;
  batch.weights = WeightVector(3);
  batch.weights[0] = 0.0;
  batch.weights[1] = 1.0;
  batch.weights[2] = 0.0;
  batch.bounds = BoundVector::Unbounded(3);
  batch.bounds[2] = 0.0;
  batch.bounds[0] = 1e6;       // Deadline in optimizer time units.
  RunProfile(&service, "batch report (deadline, cost-minimizing)", query,
             spec, batch, registry);

  std::printf("service stats:\n%s", service.Stats().ToString().c_str());
  return 0;
}
