// cloud_provider: Scenario 1 of the paper.
//
// A Cloud provider bills users by accumulated processing time; sampling
// reduces cost but loses result tuples. Users set weights (relative
// importance) and optional hard bounds (budget, deadline) in their profile.
// The provider must find a plan minimizing the weighted cost among plans
// respecting all bounds — the bounded-weighted MOQO problem solved by the
// IRA.
//
// Monetary cost is modeled from the accumulated CPU/IO load (billed
// core-seconds), an "accumulative cost objective calculated according to
// similar formulas as energy consumption" (Section 6.1) — we reuse the
// cpu-load objective with a price weight.

#include <cstdio>
#include <iostream>

#include "core/ira.h"
#include "plan/plan_printer.h"
#include "query/tpch_queries.h"

using namespace moqo;

namespace {

void RunProfile(const char* profile_name, const Query& query,
                const MOQOProblem& problem, double alpha) {
  OptimizerOptions options;
  options.alpha = alpha;
  options.timeout_ms = 30000;
  IRAOptimizer ira(options);
  OptimizerResult result = ira.Optimize(problem);
  std::printf("=== profile: %s (alpha_U = %.2f) ===\n", profile_name, alpha);
  std::cout << ExplainPlan(result.plan, query, ira.registry());
  std::printf(
      "cost %s\nweighted %.2f | bounds %s | %d iterations, %.1f ms, "
      "frontier %d\n\n",
      result.cost.ToString().c_str(), result.weighted_cost,
      result.respects_bounds ? "respected" : "VIOLATED (none feasible)",
      result.metrics.iterations, result.metrics.optimization_ms,
      result.metrics.frontier_size);
}

}  // namespace

int main() {
  Catalog catalog = Catalog::TpcH(0.1);
  Query query = MakeTpcHQuery(&catalog, 10);  // Returned-item reporting.
  std::cout << "Cloud scenario on " << query.ToString() << "\n\n";

  // Objectives: execution time (user-visible latency), monetary cost
  // (billed work = cpu load), tuple loss (answer quality).
  MOQOProblem problem;
  problem.query = &query;
  problem.objectives = ObjectiveSet(
      {Objective::kTotalTime, Objective::kCPULoad, Objective::kTupleLoss});

  // Profile 1: analyst — exact answers required (tuple loss bounded to 0),
  // latency matters more than money.
  problem.weights = WeightVector(3);
  problem.weights[0] = 1.0;    // time
  problem.weights[1] = 0.05;   // dollars per unit of work
  problem.weights[2] = 0.0;
  problem.bounds = BoundVector::Unbounded(3);
  problem.bounds[2] = 0.0;     // No lost tuples.
  RunProfile("analyst (exact answers, latency-sensitive)", query, problem,
             1.15);

  // Profile 2: dashboard — approximate answers are fine (up to 96% loss
  // via sampling), hard monetary budget, latency cheap.
  problem.weights[0] = 0.2;
  problem.weights[1] = 1.0;
  problem.weights[2] = 100.0;  // Still prefer less loss, all else equal.
  problem.bounds = BoundVector::Unbounded(3);
  problem.bounds[2] = 0.96;
  RunProfile("dashboard (sampled, budget-bound)", query, problem, 1.5);

  // Profile 3: batch report — deadline on execution time, minimize money.
  problem.weights[0] = 0.0;
  problem.weights[1] = 1.0;
  problem.weights[2] = 0.0;
  problem.bounds = BoundVector::Unbounded(3);
  problem.bounds[2] = 0.0;
  problem.bounds[0] = 1e6;     // Deadline in optimizer time units.
  RunProfile("batch report (deadline, cost-minimizing)", query, problem,
             2.0);
  return 0;
}
