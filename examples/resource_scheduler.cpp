// resource_scheduler: Scenario 2 of the paper.
//
// A shared server processes queries of multiple users concurrently. Each
// system resource dedicated to one query (buffer space, disk space, I/O
// bandwidth, cores) is an objective of its own, conflicting with that
// query's execution time. An administrator sets weights and bounds; the
// optimizer finds the best compromise. This example sweeps three
// admission-control policies over the same query and shows how the chosen
// plan's resource envelope shrinks as the policies tighten.

#include <cstdio>
#include <iostream>

#include "core/ira.h"
#include "core/selinger.h"
#include "plan/plan_printer.h"
#include "query/tpch_queries.h"

using namespace moqo;

int main() {
  Catalog catalog = Catalog::TpcH(0.1);
  Query query = MakeTpcHQuery(&catalog, 5);  // Six-table join.
  std::cout << "Resource scheduling for " << query.ToString() << "\n\n";

  // Objectives: time + the four contended resources.
  const ObjectiveSet objectives(
      {Objective::kTotalTime, Objective::kBufferFootprint,
       Objective::kDiskFootprint, Objective::kIOLoad, Objective::kCores});

  MOQOProblem problem;
  problem.query = &query;
  problem.objectives = objectives;
  problem.weights = WeightVector(5);
  problem.weights[0] = 1.0;    // Time is always weighted.
  problem.weights[1] = 1e-6;
  problem.weights[2] = 1e-6;
  problem.weights[3] = 0.1;
  problem.weights[4] = 10.0;

  OptimizerOptions options;
  options.alpha = 1.25;
  options.timeout_ms = 30000;

  struct Policy {
    const char* name;
    double buffer_bytes;
    double cores;
  };
  const Policy policies[] = {
      {"off-peak (generous resources)", 256e6, 16},
      {"business hours (shared fairly)", 8e6, 4},
      {"overload (strict admission)", 0.2e6, 1},
  };

  for (const Policy& policy : policies) {
    problem.bounds = BoundVector::Unbounded(5);
    problem.bounds[1] = policy.buffer_bytes;
    problem.bounds[4] = policy.cores;
    IRAOptimizer ira(options);
    OptimizerResult result = ira.Optimize(problem);
    std::printf("=== policy: %s ===\n", policy.name);
    std::printf("bounds: buffer <= %.0f MB, cores <= %.0f\n",
                policy.buffer_bytes / 1e6, policy.cores);
    std::cout << ExplainPlan(result.plan, query, ira.registry());
    std::printf(
        "time %.0f | buffer %.1f MB | disk %.1f MB | io %.0f pages | "
        "cores %.0f | bounds %s\n\n",
        result.cost[0], result.cost[1] / 1e6, result.cost[2] / 1e6,
        result.cost[3], result.cost[4],
        result.respects_bounds ? "respected" : "VIOLATED (none feasible)");
  }

  // Reference point: the unconstrained time-optimal plan.
  const double best_time = SelingerOptimizer::MinimumCost(
      query, Objective::kTotalTime, options);
  std::printf("unconstrained minimal time for comparison: %.0f units\n",
              best_time);
  return 0;
}
