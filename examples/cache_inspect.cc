// Copyright (c) 2026 moqo authors. MIT license.
//
// cache_inspect: offline dumper for moqo snapshot files (src/persist/).
//
//   cache_inspect <path/to/moqo.snapshot> [--records]
//
// Prints the validated header (format/catalog epoch/cost-model version),
// per-kind record and byte totals, decoded frontier shapes, and the
// read-side validation tallies (checksum skips, truncated tail) — the
// operator's answer to "what warmth would a restart actually get from
// this file, and is it intact?". With --records every record is listed
// individually. Exits non-zero when the file is missing or its header is
// invalid, so CI can smoke-test snapshot integrity with a single call.

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "core/plan_set.h"
#include "persist/format.h"
#include "persist/frontier_codec.h"
#include "persist/plan_set_codec.h"
#include "persist/snapshot.h"

namespace moqo {
namespace {

struct KindTally {
  uint64_t records = 0;
  uint64_t payload_bytes = 0;
  uint64_t undecodable = 0;
  uint64_t frontier_plans = 0;
  int max_frontier = 0;
};

const char* KindName(persist::RecordKind kind) {
  switch (kind) {
    case persist::RecordKind::kPlanCacheEntry:
      return "plan_cache";
    case persist::RecordKind::kMemoEntry:
      return "memo";
  }
  return "unknown";
}

int Inspect(const std::string& path, bool list_records) {
  KindTally plan_tally, memo_tally;
  uint64_t other_records = 0;
  bool header_printed = false;

  const persist::SnapshotReadResult result = persist::ReadSnapshot(
      path,
      [&](const persist::SnapshotHeader& header) {
        std::printf("snapshot %s\n", path.c_str());
        std::printf("  format_version      %u\n", header.format_version);
        std::printf("  record_count        %u\n", header.record_count);
        std::printf("  catalog_epoch       %" PRIu64 "\n",
                    header.catalog_epoch);
        std::printf("  cost_model_version  %" PRIu64 "\n",
                    header.cost_model_version);
        header_printed = true;
        return true;  // Inspection ignores epoch/version gates.
      },
      [&](const persist::SnapshotRecordView& record) {
        KindTally* tally =
            record.kind == persist::RecordKind::kPlanCacheEntry
                ? &plan_tally
                : record.kind == persist::RecordKind::kMemoEntry
                      ? &memo_tally
                      : nullptr;
        if (tally == nullptr) {
          ++other_records;
          return;
        }
        ++tally->records;
        tally->payload_bytes += record.payload.size();

        // Decode the payload the way a restore would, to report the
        // frontier actually recoverable from this record.
        std::shared_ptr<const PlanSet> frontier;
        if (record.kind == persist::RecordKind::kPlanCacheEntry) {
          std::shared_ptr<const CachedFrontier> entry =
              persist::DecodeFrontierPayload(record.payload.data(),
                                             record.payload.size(),
                                             record.achieved_alpha);
          if (entry != nullptr && entry->result != nullptr) {
            frontier = entry->result->plan_set;
          }
        } else {
          frontier = persist::PlanSetCodec::Decode(
              record.payload.data(), record.payload.size(), nullptr);
        }
        if (frontier == nullptr) {
          ++tally->undecodable;
        } else {
          tally->frontier_plans += frontier->size();
          if (frontier->size() > tally->max_frontier) {
            tally->max_frontier = frontier->size();
          }
        }
        if (list_records) {
          std::printf(
              "  record kind=%-10s hash=%016" PRIx64
              " alpha=%-6g key=%zuB payload=%zuB frontier=%d\n",
              KindName(record.kind), record.key_hash, record.achieved_alpha,
              record.key.size(), record.payload.size(),
              frontier == nullptr ? -1 : frontier->size());
        }
      });

  if (!result.loaded) {
    std::fprintf(stderr,
                 "cache_inspect: %s: not a readable snapshot (missing, "
                 "short, bad magic, or corrupt header)\n",
                 path.c_str());
    return 1;
  }
  if (!header_printed) {
    // A foreign format version stops the reader before the header
    // callback; the validated header is still available on the result.
    std::printf("snapshot %s\n", path.c_str());
    std::printf("  format_version      %u  (this build reads %u: records "
                "not parsed)\n",
                result.header.format_version, persist::kFormatVersion);
    std::printf("  record_count        %u\n", result.header.record_count);
    std::printf("  catalog_epoch       %" PRIu64 "\n",
                result.header.catalog_epoch);
    std::printf("  cost_model_version  %" PRIu64 "\n",
                result.header.cost_model_version);
  }

  const auto print_tally = [](const char* name, const KindTally& tally) {
    std::printf("  %-12s %8" PRIu64 " records  %10" PRIu64
                " payload bytes  %6" PRIu64 " plans (max frontier %d)",
                name, tally.records, tally.payload_bytes,
                tally.frontier_plans, tally.max_frontier);
    if (tally.undecodable > 0) {
      std::printf("  [%" PRIu64 " UNDECODABLE]", tally.undecodable);
    }
    std::printf("\n");
  };
  std::printf("contents (%s):\n", result.used_mmap ? "mmap" : "read");
  print_tally("plan_cache", plan_tally);
  print_tally("memo", memo_tally);
  if (other_records > 0) {
    std::printf("  %-12s %8" PRIu64 " records (unknown kind, skipped)\n",
                "other", other_records);
  }
  std::printf("validation: %" PRIu64 " ok, %" PRIu64
              " checksum-skipped, %" PRIu64 " truncated\n",
              result.records_ok, result.skipped_checksum, result.truncated);
  if (result.skipped_checksum > 0 || result.truncated > 0) {
    std::printf("note: file is damaged; a restore would load the %" PRIu64
                " intact records and ignore the rest\n",
                result.records_ok);
  }
  return 0;
}

}  // namespace
}  // namespace moqo

int main(int argc, char** argv) {
  bool list_records = false;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--records") == 0) {
      list_records = true;
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      std::fprintf(stderr, "usage: %s <snapshot-file> [--records]\n",
                   argv[0]);
      return 2;
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr, "usage: %s <snapshot-file> [--records]\n", argv[0]);
    return 2;
  }
  return moqo::Inspect(path, list_records);
}
