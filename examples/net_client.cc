// net_client: the moqo wire protocol, one frame at a time.
//
// This example self-hosts a NetServer on an ephemeral loopback port, then
// talks to it the way a remote client in any language would — by writing
// raw bytes. Every frame is hand-assembled below so the file doubles as
// protocol documentation.
//
// ## Wire format
//
// Every frame is an 8-byte little-endian header followed by a payload:
//
//   offset  size  field
//   0       u16   magic 0x514D ("MQ")
//   2       u8    protocol version (1)
//   3       u8    message type
//   4       u32   payload length in bytes
//
// Client -> server types: OPEN_FRONTIER(1), SELECT(2), CANCEL(3),
// CLOSE(4). Server -> client: FRONTIER_UPDATE(16), SELECT_RESULT(17),
// DONE(18), ERROR(19).
//
// Scalar encodings: integers little-endian; doubles as their IEEE-754
// bit pattern (little-endian u64) — costs round-trip bit-exactly.
// Strings: u32 length + bytes. Vectors: u32 count + elements.
//
// ## Session flow
//
//   client: OPEN_FRONTIER {query_id, objectives, ladder knobs}
//   server: FRONTIER_UPDATE*  (one per published refinement step;
//                              alphas strictly decrease; a slow reader
//                              skips superseded intermediates)
//   server: DONE {target_reached, cancelled, shed, ...}
//   client: SELECT {weights, bounds}   (any time, repeatedly)
//   server: SELECT_RESULT {plan_index, weighted_cost, cost vector}
//   client: CLOSE (or just disconnect — the server cancels the session)
//
// One session per connection; queries travel by id (the serving tier owns
// the catalog and resolves ids via NetOptions::resolve_query).

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "net/blocking_client.h"
#include "net/net_server.h"
#include "net/wire.h"
#include "query/tpch_queries.h"
#include "service/optimization_service.h"

using namespace moqo;

// --- Little-endian byte writers: what any client language needs. --------

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}
void PutU16(std::string* out, uint16_t v) {
  PutU8(out, v & 0xff);
  PutU8(out, v >> 8);
}
void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) PutU8(out, (v >> (8 * i)) & 0xff);
}
void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) PutU8(out, (v >> (8 * i)) & 0xff);
}
void PutI32(std::string* out, int32_t v) {
  PutU32(out, static_cast<uint32_t>(v));
}
void PutF64(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);  // IEEE-754 bit pattern, bit-exact.
  PutU64(out, bits);
}
void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

/// Wraps a payload in the 8-byte header.
std::string Frame(uint8_t type, const std::string& payload) {
  std::string frame;
  PutU16(&frame, 0x514D);  // magic "MQ"
  PutU8(&frame, 1);        // version
  PutU8(&frame, type);
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  frame += payload;
  return frame;
}

int main() {
  // -- Self-hosted server: catalog, service, net front end. ---------------
  Catalog catalog = Catalog::TpcH(0.01);
  auto q3 = std::make_shared<Query>(MakeTpcHQuery(&catalog, 3));

  ServiceOptions service_options;
  service_options.num_workers = 2;
  OptimizationService service(service_options);

  net::NetOptions net_options;  // host 127.0.0.1, port 0 = ephemeral.
  net_options.resolve_query =
      [&](const std::string& id) -> std::shared_ptr<const Query> {
    return id == "tpch_q3" ? q3 : nullptr;
  };
  net::NetServer server(&service, net_options);
  if (!server.Start()) {
    std::printf("failed to start server\n");
    return 1;
  }
  std::printf("serving on 127.0.0.1:%u\n\n", server.port());

  // -- Client side: connect and hand-roll an OPEN_FRONTIER frame. ---------
  net::BlockingNetClient client;
  if (!client.Connect("127.0.0.1", server.port())) {
    std::printf("connect failed\n");
    return 1;
  }

  // OPEN_FRONTIER payload layout:
  //   string  query_id
  //   u8      num_objectives, then u8 per objective (Objective enum index)
  //   i8      algorithm   (-1 = let the policy choose; 1 = RTA)
  //   f64     alpha       (target guarantee; <= 0 = policy default)
  //   i32     parallelism (0 = policy default)
  //   f64     alpha_start (coarsest ladder rung)
  //   f64     alpha_target(<= 0: derive from alpha)
  //   i32     max_steps   (ladder length cap)
  //   i64     step_deadline_ms (-1 = none)
  //   u8      quick_first (1 = publish a heuristic frontier at open)
  std::string open;
  PutString(&open, "tpch_q3");
  PutU8(&open, 3);     // three objectives...
  PutU8(&open, 0);     //   kTotalTime
  PutU8(&open, 6);     //   kBufferFootprint
  PutU8(&open, 8);     //   kTupleLoss
  PutU8(&open, 1);     // algorithm: RTA (i8)
  PutF64(&open, 1.25); // alpha target
  PutI32(&open, 0);    // parallelism: policy
  PutF64(&open, 3.0);  // alpha_start
  PutF64(&open, -1);   // alpha_target: derive from alpha
  PutI32(&open, 3);    // max_steps
  PutU64(&open, static_cast<uint64_t>(int64_t{-1}));  // step_deadline_ms
  PutU8(&open, 1);     // quick_first
  if (!client.SendRaw(Frame(1, open))) return 1;  // type 1 = OPEN_FRONTIER

  // -- Server-pushed frontier stream. -------------------------------------
  // The server pushes one FRONTIER_UPDATE per refinement step: the plan
  // costs (row-major [plan][objective] doubles) plus the achieved alpha.
  // BlockingNetClient does the header/payload reassembly we built above
  // in reverse; see src/net/wire.cc for the field-level decoders.
  net::BlockingNetClient::Event event;
  while (client.NextEvent(&event, 30000)) {
    if (event.type == net::MsgType::kFrontierUpdate) {
      const net::FrontierUpdateMsg& update = event.frontier;
      std::printf("frontier step %d: %zu plans, alpha %s (%.1f ms%s)\n",
                  update.step, update.num_plans(),
                  std::isinf(update.alpha)
                      ? "inf (quick mode)"
                      : std::to_string(update.alpha).c_str(),
                  update.step_ms, update.from_cache ? ", cached" : "");
      continue;
    }
    if (event.type == net::MsgType::kDone) {
      std::printf("done: target_reached=%d cancelled=%d shed=%d "
                  "best_alpha=%.3f steps=%d\n\n",
                  event.done.target_reached, event.done.cancelled,
                  event.done.shed, event.done.best_alpha,
                  event.done.steps_published);
      break;
    }
    if (event.type == net::MsgType::kError) {
      // ERROR payload: u8 code + string message. Codes are stable wire
      // contract (see ErrorCode in net/wire.h and the README table);
      // ErrorCodeName maps them to their documented tokens.
      std::printf("server error %u (%s): %s\n", event.error.code,
                  net::ErrorCodeName(
                      static_cast<net::ErrorCode>(event.error.code)),
                  event.error.message.c_str());
      return 1;
    }
  }

  // -- SELECT: scalarize the frontier without re-optimizing. --------------
  // SELECT payload layout:
  //   u64  tag (echoed back, for request/response matching)
  //   u32  num_weights + f64 each (empty = uniform)
  //   u32  num_bounds  + f64 each (empty = unbounded)
  std::string select;
  PutU64(&select, 42);   // tag
  PutU32(&select, 3);    // three weights...
  PutF64(&select, 1.0);  //   total time
  PutF64(&select, 1e-6); //   buffer bytes are a big unit
  PutF64(&select, 1e5);  //   tuple loss is precious
  PutU32(&select, 0);    // no bounds
  if (!client.SendRaw(Frame(2, select))) return 1;  // type 2 = SELECT

  if (!client.NextEvent(&event, 30000) ||
      event.type != net::MsgType::kSelectResult) {
    std::printf("no SELECT_RESULT\n");
    return 1;
  }
  std::printf("selected plan %d from step %d (alpha %.3f), weighted cost "
              "%.3f\n",
              event.select_result.plan_index, event.select_result.step,
              event.select_result.alpha,
              event.select_result.weighted_cost);
  for (size_t i = 0; i < event.select_result.cost.size(); ++i) {
    std::printf("  objective %zu cost: %.3f\n", i,
                event.select_result.cost[i]);
  }

  // CLOSE (type 4, empty payload); disconnecting would also do.
  client.SendRaw(Frame(4, ""));
  client.Disconnect();
  server.Stop();
  std::printf("\nok\n");
  return 0;
}
