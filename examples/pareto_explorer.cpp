// pareto_explorer: visualizing the (approximate) Pareto frontier.
//
// "Users cannot make optimal choices for bounds and weights if they are
// not aware of the possible tradeoffs between different objectives."
// (Section 4). All moqo optimizers produce an approximate Pareto frontier
// as a byproduct; this example renders 2-D projections of it for a TPC-H
// query at two approximation precisions, mirroring the prototype's
// frontier visualization (Figure 4).

#include <cstdio>
#include <iostream>

#include "core/rta.h"
#include "frontier/frontier.h"
#include "query/tpch_queries.h"

using namespace moqo;

int main(int argc, char** argv) {
  const int query_number = argc > 1 ? std::atoi(argv[1]) : 5;
  Catalog catalog = Catalog::TpcH(0.01);
  Query query = MakeTpcHQuery(&catalog, query_number);
  std::printf("Pareto frontier explorer: TPC-H q%d\n", query_number);
  std::printf("objectives: tuple_loss (x), buffer (y1), total_time (y2)\n\n");

  MOQOProblem problem;
  problem.query = &query;
  problem.objectives = ObjectiveSet({Objective::kTupleLoss,
                                     Objective::kBufferFootprint,
                                     Objective::kTotalTime});
  problem.weights = WeightVector::Uniform(3);

  for (double alpha : {2.0, 1.25}) {
    OptimizerOptions options;
    options.alpha = alpha;
    options.timeout_ms = 30000;
    options.operators.sampling_rates = {0.05, 0.02, 0.01};
    options.operators.dops = {1, 4};
    RTAOptimizer rta(options);
    OptimizerResult result = rta.Optimize(problem);

    std::printf("---- alpha = %.2f: %zu frontier points (%.0f ms) ----\n",
                alpha, result.frontier.size(),
                result.metrics.optimization_ms);
    std::printf("\ntuple_loss x total_time:\n%s",
                AsciiScatter(Project(result.frontier, {0, 2}), 64, 14,
                             "tuple_loss", "time")
                    .c_str());
    std::printf("\ntuple_loss x buffer:\n%s",
                AsciiScatter(Project(result.frontier, {0, 1}), 64, 14,
                             "tuple_loss", "buffer")
                    .c_str());
    // Frontier quality metric: hypervolume of the loss/time projection.
    std::vector<CostVector> projected = Project(result.frontier, {0, 2});
    CostVector reference(2);
    reference[0] = 1.0;
    for (const CostVector& p : projected) {
      reference[1] = std::max(reference[1], p[1] * 1.05);
    }
    std::printf("\nhypervolume (loss x time, ref=(1, max*1.05)): %.3g\n\n",
                Hypervolume2D(ExtractParetoFrontier(projected), reference));
  }
  std::printf("finer alpha -> more points, closer to the true frontier\n");
  return 0;
}
