// pareto_explorer: visualizing — and progressively refining — the
// (approximate) Pareto frontier.
//
// "Users cannot make optimal choices for bounds and weights if they are
// not aware of the possible tradeoffs between different objectives."
// (Section 4). All moqo optimizers return the approximate Pareto frontier
// as a PlanSet — cost vectors AND plans; this example renders 2-D
// projections of it for a TPC-H query at two approximation precisions,
// mirroring the prototype's frontier visualization (Figure 4).
//
// It then does what an interactive client should do since PR 5: open an
// anytime FrontierSession instead of picking a precision up front. The
// session yields a quick-mode frontier immediately, refines it over a
// geometric alpha ladder in the background (publishing every improvement),
// and answers every preference below by SelectPlan over the best frontier
// so far — nothing is ever re-optimized, and a second OpenFrontier for
// the same spec within this process is served straight from the
// service's alpha-tagged (in-memory) plan cache.

#include <cstdio>
#include <iostream>
#include <limits>

#include "core/plan_set.h"
#include "core/rta.h"
#include "frontier/frontier.h"
#include "plan/plan_printer.h"
#include "query/tpch_queries.h"
#include "service/optimization_service.h"

using namespace moqo;

int main(int argc, char** argv) {
  const int query_number = argc > 1 ? std::atoi(argv[1]) : 5;
  Catalog catalog = Catalog::TpcH(0.01);
  Query query = MakeTpcHQuery(&catalog, query_number);
  std::printf("Pareto frontier explorer: TPC-H q%d\n", query_number);
  std::printf("objectives: tuple_loss (x), buffer (y1), total_time (y2)\n\n");

  const ObjectiveSet objectives({Objective::kTupleLoss,
                                 Objective::kBufferFootprint,
                                 Objective::kTotalTime});

  // Part 1: the Figure-4 visualization, at a coarse and a fine precision.
  MOQOProblem problem;
  problem.query = &query;
  problem.objectives = objectives;
  problem.weights = WeightVector::Uniform(3);
  for (double alpha : {2.0, 1.25}) {
    OptimizerOptions options;
    options.alpha = alpha;
    options.timeout_ms = 30000;
    options.operators.sampling_rates = {0.05, 0.02, 0.01};
    options.operators.dops = {1, 4};
    RTAOptimizer rta(options);
    OptimizerResult result = rta.Optimize(problem);

    std::printf("---- alpha = %.2f: %d frontier points (%.0f ms) ----\n",
                alpha, result.frontier_size(),
                result.metrics.optimization_ms);
    std::printf("\ntuple_loss x total_time:\n%s",
                AsciiScatter(Project(result.frontier(), {0, 2}), 64, 14,
                             "tuple_loss", "time")
                    .c_str());
    std::printf("\ntuple_loss x buffer:\n%s",
                AsciiScatter(Project(result.frontier(), {0, 1}), 64, 14,
                             "tuple_loss", "buffer")
                    .c_str());
    // Frontier quality metric: hypervolume of the loss/time projection.
    std::vector<CostVector> projected = Project(result.frontier(), {0, 2});
    CostVector reference(2);
    reference[0] = 1.0;
    for (const CostVector& p : projected) {
      reference[1] = std::max(reference[1], p[1] * 1.05);
    }
    std::printf("\nhypervolume (loss x time, ref=(1, max*1.05)): %.3g\n\n",
                Hypervolume2D(ExtractParetoFrontier(projected), reference));
  }
  std::printf("finer alpha -> more points, closer to the true frontier\n\n");

  // Part 2: the anytime session. One OpenFrontier call replaces the
  // pick-a-precision-and-wait loop above: the first plan is available
  // before the call returns, and every published refinement is reported
  // as it lands.
  ServiceOptions service_options;
  service_options.operators.sampling_rates = {0.05, 0.02, 0.01};
  service_options.operators.dops = {1, 4};
  OptimizationService service(service_options);

  ProblemSpec spec;
  spec.query = UnownedQuery(&query);
  spec.objectives = objectives;
  spec.algorithm = AlgorithmKind::kRta;
  spec.alpha = 1.25;

  SessionOptions session_options;
  session_options.alpha_start = 3.0;
  session_options.max_steps = 3;

  std::printf("---- anytime session: ladder 3.0 -> 1.25 ----\n");
  auto session = service.OpenFrontier(spec, session_options);
  session->OnRefined([](const RefinedFrontier& frontier) {
    if (frontier.alpha ==
        std::numeric_limits<double>::infinity()) {
      std::printf("  published: quick-mode frontier, %d plans (%.1f ms) — "
                  "first valid plan, no guarantee yet\n",
                  frontier.plan_set->size(), frontier.step_ms);
    } else {
      std::printf("  published: alpha %.3f, %d plans (%.1f ms)%s\n",
                  frontier.alpha, frontier.plan_set->size(),
                  frontier.step_ms,
                  frontier.from_cache ? " [from cache]" : "");
    }
  });
  session->AwaitTarget();
  std::printf("target reached: alpha %.3f, %d plans\n\n",
              session->BestAlpha(), session->BestFrontier()->size());

  // Walk the frontier: three preferences, three plans — all selected from
  // the session's best frontier in O(|frontier|) each, exactly what the
  // service does on every frontier hit (and what Select answers mid-
  // refinement, from whatever the best frontier is at that moment).
  struct Profile {
    const char* name;
    double w_loss, w_buffer, w_time;
  };
  const Profile profiles[] = {
      {"exactness-first (loss ~ priceless)", 1e6, 1e-9, 1.0},
      {"balanced", 2e3, 1e-7, 1.0},
      {"speed-first (sampling welcome)", 1.0, 1e-9, 50.0},
  };
  std::printf("request-time plan selection over the session's frontier:\n");
  for (const Profile& profile : profiles) {
    Preference preference;
    WeightVector weights(3);
    weights[0] = profile.w_loss;
    weights[1] = profile.w_buffer;
    weights[2] = profile.w_time;
    preference.weights = weights;
    const SessionSelection pick = session->Select(preference);
    std::printf(
        "  %-36s -> frontier[%d]: loss %.4f, buffer %.2e, time %.1f "
        "(%d ops, %s)\n",
        profile.name, pick.selection.index, pick.selection.cost[0],
        pick.selection.cost[1], pick.selection.cost[2],
        pick.selection.plan->NodeCount(),
        pick.selection.plan->IsLeftDeep() ? "left-deep" : "bushy");
  }
  session->Cancel();
  return 0;
}
