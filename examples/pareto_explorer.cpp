// pareto_explorer: visualizing the (approximate) Pareto frontier.
//
// "Users cannot make optimal choices for bounds and weights if they are
// not aware of the possible tradeoffs between different objectives."
// (Section 4). All moqo optimizers return the approximate Pareto frontier
// as a PlanSet — cost vectors AND plans; this example renders 2-D
// projections of it for a TPC-H query at two approximation precisions,
// mirroring the prototype's frontier visualization (Figure 4), and then
// walks the frontier itself: every preference below is answered by
// SelectPlan over the already-computed PlanSet — plans come from the
// frontier, nothing is re-optimized.

#include <cstdio>
#include <iostream>

#include "core/plan_set.h"
#include "core/rta.h"
#include "frontier/frontier.h"
#include "plan/plan_printer.h"
#include "query/tpch_queries.h"

using namespace moqo;

int main(int argc, char** argv) {
  const int query_number = argc > 1 ? std::atoi(argv[1]) : 5;
  Catalog catalog = Catalog::TpcH(0.01);
  Query query = MakeTpcHQuery(&catalog, query_number);
  std::printf("Pareto frontier explorer: TPC-H q%d\n", query_number);
  std::printf("objectives: tuple_loss (x), buffer (y1), total_time (y2)\n\n");

  MOQOProblem problem;
  problem.query = &query;
  problem.objectives = ObjectiveSet({Objective::kTupleLoss,
                                     Objective::kBufferFootprint,
                                     Objective::kTotalTime});
  problem.weights = WeightVector::Uniform(3);

  std::shared_ptr<const PlanSet> fine_set;
  for (double alpha : {2.0, 1.25}) {
    OptimizerOptions options;
    options.alpha = alpha;
    options.timeout_ms = 30000;
    options.operators.sampling_rates = {0.05, 0.02, 0.01};
    options.operators.dops = {1, 4};
    RTAOptimizer rta(options);
    OptimizerResult result = rta.Optimize(problem);
    fine_set = result.plan_set;  // Last iteration = alpha 1.25.

    std::printf("---- alpha = %.2f: %d frontier points (%.0f ms) ----\n",
                alpha, result.frontier_size(),
                result.metrics.optimization_ms);
    std::printf("\ntuple_loss x total_time:\n%s",
                AsciiScatter(Project(result.frontier(), {0, 2}), 64, 14,
                             "tuple_loss", "time")
                    .c_str());
    std::printf("\ntuple_loss x buffer:\n%s",
                AsciiScatter(Project(result.frontier(), {0, 1}), 64, 14,
                             "tuple_loss", "buffer")
                    .c_str());
    // Frontier quality metric: hypervolume of the loss/time projection.
    std::vector<CostVector> projected = Project(result.frontier(), {0, 2});
    CostVector reference(2);
    reference[0] = 1.0;
    for (const CostVector& p : projected) {
      reference[1] = std::max(reference[1], p[1] * 1.05);
    }
    std::printf("\nhypervolume (loss x time, ref=(1, max*1.05)): %.3g\n\n",
                Hypervolume2D(ExtractParetoFrontier(projected), reference));
  }
  std::printf("finer alpha -> more points, closer to the true frontier\n\n");

  // Walk the frontier: three preferences, three plans — all selected from
  // the SAME PlanSet in O(|frontier|) each. This is what the optimization
  // service does on every frontier hit.
  struct Profile {
    const char* name;
    double w_loss, w_buffer, w_time;
  };
  const Profile profiles[] = {
      {"exactness-first (loss ~ priceless)", 1e6, 1e-9, 1.0},
      {"balanced", 2e3, 1e-7, 1.0},
      {"speed-first (sampling welcome)", 1.0, 1e-9, 50.0},
  };
  std::printf("request-time plan selection over the alpha=1.25 PlanSet:\n");
  for (const Profile& profile : profiles) {
    WeightVector weights(3);
    weights[0] = profile.w_loss;
    weights[1] = profile.w_buffer;
    weights[2] = profile.w_time;
    const PlanSelection pick = SelectPlan(*fine_set, weights);
    std::printf(
        "  %-36s -> frontier[%d]: loss %.4f, buffer %.2e, time %.1f "
        "(%d ops, %s)\n",
        profile.name, pick.index, pick.cost[0], pick.cost[1], pick.cost[2],
        pick.plan->NodeCount(), pick.plan->IsLeftDeep() ? "left-deep" : "bushy");
  }
  return 0;
}
