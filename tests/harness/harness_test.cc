// Tests for the Section-8 workload generator and the experiment runner.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "harness/experiment.h"
#include "harness/table_printer.h"
#include "harness/workload.h"

namespace moqo {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  WorkloadTest() : catalog_(Catalog::TpcH(0.01)) {
    options_.timeout_ms = 2000;
    options_.operators.sampling_rates = {0.05};
    options_.operators.dops = {1, 2};
  }

  Catalog catalog_;
  OptimizerOptions options_;
};

TEST_F(WorkloadTest, WeightedCaseShape) {
  WorkloadGenerator generator(&catalog_, options_);
  const TestCase tc = generator.WeightedCase(5, 6, 42);
  EXPECT_EQ(tc.query_number, 5);
  EXPECT_EQ(tc.objectives.size(), 6);
  // Objectives are distinct.
  std::set<Objective> unique(tc.objectives.begin(), tc.objectives.end());
  EXPECT_EQ(unique.size(), 6u);
  // Weights in [0, 1].
  for (int i = 0; i < 6; ++i) {
    EXPECT_GE(tc.weights[i], 0.0);
    EXPECT_LE(tc.weights[i], 1.0);
  }
  EXPECT_TRUE(tc.bounds.AllUnbounded());
}

TEST_F(WorkloadTest, WeightedCaseDeterministicPerSeed) {
  WorkloadGenerator generator(&catalog_, options_);
  const TestCase a = generator.WeightedCase(3, 3, 7);
  const TestCase b = generator.WeightedCase(3, 3, 7);
  EXPECT_EQ(a.objectives, b.objectives);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(a.weights[i], b.weights[i]);
  const TestCase c = generator.WeightedCase(3, 3, 8);
  const bool same_weights = a.weights[0] == c.weights[0] &&
                            a.weights[1] == c.weights[1];
  EXPECT_FALSE(same_weights && a.objectives == c.objectives);
}

TEST_F(WorkloadTest, BoundedCaseUsesAllNineObjectives) {
  WorkloadGenerator generator(&catalog_, options_);
  const TestCase tc = generator.BoundedCase(3, 6, 11);
  EXPECT_EQ(tc.objectives.size(), kNumObjectives);
  EXPECT_EQ(tc.bounds.NumFinite(), 6);
}

TEST_F(WorkloadTest, BoundsScaleFromObjectiveMinima) {
  WorkloadGenerator generator(&catalog_, options_);
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    const TestCase tc = generator.BoundedCase(3, 9, seed);
    for (int i = 0; i < tc.objectives.size(); ++i) {
      if (tc.bounds.IsUnbounded(i)) continue;
      const Objective objective = tc.objectives.at(i);
      if (GetObjectiveInfo(objective).bounded_domain) {
        EXPECT_GE(tc.bounds[i], 0.0);
        EXPECT_LE(tc.bounds[i], 1.0);
      } else {
        const double minimum = generator.ObjectiveMinimum(3, objective);
        // Bound = minimum * U[1,2].
        EXPECT_GE(tc.bounds[i], minimum - 1e-9);
        EXPECT_LE(tc.bounds[i], 2 * minimum + 1e-9);
      }
    }
  }
}

TEST_F(WorkloadTest, ObjectiveMinimumIsCachedAndPositive) {
  WorkloadGenerator generator(&catalog_, options_);
  const double a = generator.ObjectiveMinimum(3, Objective::kTotalTime);
  const double b = generator.ObjectiveMinimum(3, Objective::kTotalTime);
  EXPECT_EQ(a, b);
  EXPECT_GT(a, 0);
  // Tuple loss minimum is 0 (full scans everywhere).
  EXPECT_DOUBLE_EQ(generator.ObjectiveMinimum(3, Objective::kTupleLoss), 0);
}

TEST_F(WorkloadTest, RunCaseProducesOutcomeForEveryAlgorithm) {
  WorkloadGenerator generator(&catalog_, options_);
  const TestCase tc = generator.WeightedCase(12, 3, 5);
  for (AlgorithmKind kind : {AlgorithmKind::kExa, AlgorithmKind::kRta,
                             AlgorithmKind::kIra,
                             AlgorithmKind::kWeightedSum}) {
    OptimizerOptions options = options_;
    options.alpha = 1.5;
    const RunOutcome outcome = RunCase(kind, catalog_, tc, options);
    EXPECT_TRUE(outcome.has_plan) << AlgorithmName(kind);
    EXPECT_GT(outcome.weighted_cost, 0) << AlgorithmName(kind);
    EXPECT_GT(outcome.metrics.optimization_ms, 0) << AlgorithmName(kind);
  }
}

TEST_F(WorkloadTest, AggregateComputesMeansAndPercentages) {
  RunOutcome fast;
  fast.weighted_cost = 10;
  fast.has_plan = true;
  fast.metrics.optimization_ms = 100;
  fast.metrics.memory_bytes = 1024 * 10;
  fast.metrics.last_complete_pareto_count = 4;
  RunOutcome slow = fast;
  slow.weighted_cost = 20;
  slow.metrics.optimization_ms = 300;
  slow.metrics.timed_out = true;

  const std::vector<RunOutcome> outcomes = {fast, slow};
  const std::vector<double> best = {10, 10};
  const CellStats stats = Aggregate(outcomes, best);
  EXPECT_EQ(stats.cases, 2);
  EXPECT_DOUBLE_EQ(stats.timeout_pct, 50);
  EXPECT_DOUBLE_EQ(stats.mean_time_ms, 200);
  EXPECT_DOUBLE_EQ(stats.mean_memory_kb, 10);
  EXPECT_DOUBLE_EQ(stats.mean_pareto_plans, 4);
  EXPECT_DOUBLE_EQ(stats.mean_weighted_cost_pct, (100 + 200) / 2.0);
}

TEST_F(WorkloadTest, BestWeightedPrefersBoundRespectingPlans) {
  RunOutcome violator;
  violator.weighted_cost = 1;  // Cheapest but violates bounds.
  violator.has_plan = true;
  violator.respects_bounds = false;
  RunOutcome respecter = violator;
  respecter.weighted_cost = 5;
  respecter.respects_bounds = true;
  const std::vector<std::vector<RunOutcome>> matrix = {{violator},
                                                       {respecter}};
  const auto best = BestWeightedPerCase(matrix);
  ASSERT_EQ(best.size(), 1u);
  EXPECT_DOUBLE_EQ(best[0], 5);  // The bound-respecting plan is reference.
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter printer({"algo", "time"});
  printer.AddRow({"EXA", "123456.78"});
  printer.AddRow({"RTA(1.15)", "1.00"});
  const std::string table = printer.Render();
  EXPECT_NE(table.find("algo"), std::string::npos);
  EXPECT_NE(table.find("-----"), std::string::npos);
  EXPECT_NE(table.find("RTA(1.15)"), std::string::npos);
  // All lines equal length apart from trailing spaces.
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatSci(12345.0), "1.23e+04");
}

TEST(EnvTest, DefaultsWhenUnset) {
  EXPECT_EQ(EnvInt("MOQO_SURELY_UNSET_VAR", 7), 7);
  EXPECT_DOUBLE_EQ(EnvDouble("MOQO_SURELY_UNSET_VAR", 2.5), 2.5);
}

}  // namespace
}  // namespace moqo
