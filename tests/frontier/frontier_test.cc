// Tests for Pareto-frontier utilities: extraction, alpha-coverage,
// hypervolume, projection, and ASCII plotting.

#include "frontier/frontier.h"

#include <gtest/gtest.h>

#include "testing/test_helpers.h"
#include "util/random.h"

namespace moqo {
namespace {

CostVector Make(std::initializer_list<double> values) {
  CostVector cost(static_cast<int>(values.size()));
  int i = 0;
  for (double v : values) cost[i++] = v;
  return cost;
}

TEST(FrontierTest, ExtractRemovesDominated) {
  const std::vector<CostVector> vectors = {
      Make({1, 4}), Make({2, 2}), Make({4, 1}), Make({3, 3}),  // dominated
      Make({5, 5}),                                            // dominated
  };
  const auto frontier = ExtractParetoFrontier(vectors);
  EXPECT_EQ(frontier.size(), 3u);
  for (const CostVector& f : frontier) {
    EXPECT_LT(f[0] + f[1], 6);  // (3,3) and (5,5) are gone.
  }
}

TEST(FrontierTest, ExtractKeepsOneOfEquals) {
  const std::vector<CostVector> vectors = {Make({1, 1}), Make({1, 1})};
  EXPECT_EQ(ExtractParetoFrontier(vectors).size(), 1u);
}

TEST(FrontierTest, ExtractionIsIdempotent) {
  Xoshiro256 rng(3);
  std::vector<CostVector> vectors;
  for (int i = 0; i < 200; ++i) {
    vectors.push_back(testing::RandomCostVector(&rng, 3));
  }
  const auto once = ExtractParetoFrontier(vectors);
  const auto twice = ExtractParetoFrontier(once);
  EXPECT_EQ(once.size(), twice.size());
}

TEST(FrontierTest, CoverageDetection) {
  const std::vector<CostVector> reference = {Make({1, 4}), Make({4, 1})};
  const std::vector<CostVector> candidate = {Make({1.2, 4.4})};
  // (1.2, 4.4) covers (1,4) with alpha 1.2 but not (4,1).
  EXPECT_TRUE(FindUncoveredVector(candidate, reference, 1.2).has_value());
  const std::vector<CostVector> full = {Make({1.2, 4.4}), Make({4.4, 1.2})};
  EXPECT_FALSE(FindUncoveredVector(full, reference, 1.2).has_value());
  EXPECT_NEAR(CoverageAlpha(full, reference), 1.2, 1e-9);
  EXPECT_NEAR(CoverageAlpha(reference, reference), 1.0, 1e-9);
}

TEST(FrontierTest, Hypervolume2DRectangles) {
  // Single point (1,1) with reference (2,2): dominated box is 1x1.
  EXPECT_DOUBLE_EQ(Hypervolume2D({Make({1, 1})}, Make({2, 2})), 1.0);
  // Two staircase points.
  const double hv =
      Hypervolume2D({Make({1, 2}), Make({2, 1})}, Make({3, 3}));
  EXPECT_DOUBLE_EQ(hv, 3.0);  // 2x1 + 1x... = (3-1)(3-2)+(3-2)(2-1)=2+1.
  // Dominated point adds nothing.
  const double hv2 = Hypervolume2D({Make({1, 2}), Make({2, 1}), Make({2, 2})},
                                   Make({3, 3}));
  EXPECT_DOUBLE_EQ(hv2, hv);
}

TEST(FrontierTest, MonteCarloAgreesWith2DExact) {
  Xoshiro256 rng(5);
  std::vector<CostVector> frontier;
  for (int i = 0; i < 20; ++i) {
    frontier.push_back(testing::RandomCostVector(&rng, 2, 10.0));
  }
  const CostVector ref = Make({10, 10});
  const double exact = Hypervolume2D(ExtractParetoFrontier(frontier), ref);
  const double mc = HypervolumeMonteCarlo(frontier, ref, 200000, 9);
  EXPECT_NEAR(mc, exact, 0.05 * 100);  // Within 5% of the box volume.
}

TEST(FrontierTest, HypervolumeMonotoneInFrontierQuality) {
  // A better (lower) frontier dominates more volume.
  const CostVector ref = Make({10, 10, 10});
  const double worse = HypervolumeMonteCarlo({Make({5, 5, 5})}, ref, 50000, 1);
  const double better = HypervolumeMonteCarlo({Make({2, 2, 2})}, ref, 50000, 1);
  EXPECT_GT(better, worse);
}

TEST(FrontierTest, ProjectSelectsDimensions) {
  const std::vector<CostVector> vectors = {Make({1, 2, 3, 4})};
  const auto projected = Project(vectors, {3, 0});
  ASSERT_EQ(projected.size(), 1u);
  EXPECT_EQ(projected[0].size(), 2);
  EXPECT_DOUBLE_EQ(projected[0][0], 4);
  EXPECT_DOUBLE_EQ(projected[0][1], 1);
}

TEST(FrontierTest, AsciiScatterRendersPoints) {
  const std::vector<CostVector> points = {Make({0, 0}), Make({1, 1}),
                                          Make({0.5, 0.2})};
  const std::string plot = AsciiScatter(points, 40, 10, "time", "buffer");
  EXPECT_NE(plot.find('*'), std::string::npos);
  EXPECT_NE(plot.find("time"), std::string::npos);
  EXPECT_NE(plot.find("buffer"), std::string::npos);
  EXPECT_EQ(AsciiScatter({}, 10, 5, "x", "y"), "(no points)\n");
}

}  // namespace
}  // namespace moqo
