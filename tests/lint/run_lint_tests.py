#!/usr/bin/env python3
"""Fixture tests for tools/lint/moqo_lint.py.

Each fixture under tests/lint/fixtures/ is a miniature repo tree that must
trip exactly one rule (asserted by rule ID); the final case runs the
linter over the real tree and must come back clean. Registered in ctest
as `lint.fixtures`.
"""

import os
import re
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
ROOT = os.path.dirname(os.path.dirname(HERE))
LINTER = os.path.join(ROOT, "tools", "lint", "moqo_lint.py")

# fixture directory -> set of rule IDs that MUST fire (and no others).
CASES = {
    "enum_reorder": {"frozen-enum"},
    "raw_encode": {"raw-encode"},
    "dup_failpoint": {"failpoint-site"},
    "naked_mutex": {"naked-mutex"},
    "nondet": {"nondeterminism"},
    "tsa_escape": {"tsa-escape"},
}

RULE_RE = re.compile(r"^([a-z-]+):", re.M)


def run(args):
    return subprocess.run([sys.executable, LINTER] + args,
                          capture_output=True, text=True)


def main():
    failures = []
    for case, expected in sorted(CASES.items()):
        fixture = os.path.join(HERE, "fixtures", case)
        result = run(["--root", fixture])
        fired = set(RULE_RE.findall(result.stdout))
        if result.returncode != 1:
            failures.append(f"{case}: exit {result.returncode}, want 1\n"
                            f"{result.stdout}{result.stderr}")
        elif fired != expected:
            failures.append(f"{case}: rules {sorted(fired)}, "
                            f"want {sorted(expected)}\n{result.stdout}")
        else:
            print(f"PASS {case}: {sorted(fired)}")

    clean = run(["--root", ROOT])
    if clean.returncode != 0:
        failures.append(f"clean-tree: exit {clean.returncode}, want 0\n"
                        f"{clean.stdout}{clean.stderr}")
    else:
        print(f"PASS clean-tree: {clean.stdout.strip()}")

    if failures:
        print("\n".join(["FAILURES:"] + failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
