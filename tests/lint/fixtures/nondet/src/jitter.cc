// Fixture: unseeded randomness — moqo_lint must report `nondeterminism`.
#include <cstdlib>
#include <random>
int Jitter() {
  std::random_device entropy;
  return static_cast<int>(entropy()) + rand();
}
