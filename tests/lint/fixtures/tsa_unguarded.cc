// Negative-compile fixture: a deliberately unguarded access to a
// MOQO_GUARDED_BY field. Under Clang with -Wthread-safety -Werror this
// translation unit MUST fail to compile — ctest registers it WILL_FAIL
// (lint.tsa_negative_compile). If it ever starts compiling, the
// annotation plumbing is broken end to end.
//
// Not part of any real target; compiled with -fsyntax-only by the test.

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace moqo {

class Counter {
 public:
  void BumpLocked() {
    MutexLock lock(mu_);
    ++count_;
  }

  // BUG (on purpose): reads count_ without holding mu_.
  int Peek() const { return count_; }

 private:
  mutable Mutex mu_;
  int count_ MOQO_GUARDED_BY(mu_) = 0;
};

int Use() {
  Counter counter;
  counter.BumpLocked();
  return counter.Peek();
}

}  // namespace moqo
