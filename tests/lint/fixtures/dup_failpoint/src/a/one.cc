// Fixture: first user of the site.
void A() { MOQO_FAILPOINT("dup.site"); }
