// Fixture: second user of the same site — moqo_lint must report rule
// `failpoint-site`.
void B() { MOQO_FAILPOINT_RETURN("dup.site", false); }
