// Fixture: naked standard mutex — moqo_lint must report rule `naked-mutex`.
#include <mutex>
std::mutex g_mu;
int g_count = 0;
void Bump() {
  std::lock_guard<std::mutex> lock(g_mu);
  ++g_count;
}
