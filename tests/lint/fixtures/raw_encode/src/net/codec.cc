// Fixture: ad-hoc struct encode — moqo_lint must report rule `raw-encode`.
#include <cstring>
#include <vector>
struct Header { unsigned magic; unsigned len; };
void Encode(std::vector<char>* out, const Header& header) {
  out->resize(sizeof(header));
  std::memcpy(out->data(), &header, sizeof(header));
}
const char* View(const unsigned* words) {
  return reinterpret_cast<const char*>(words);
}
