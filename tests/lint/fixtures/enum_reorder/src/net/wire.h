// Fixture: ErrorCode with two values swapped relative to the frozen
// baseline — moqo_lint must report rule `frozen-enum`.
#ifndef FIXTURE_WIRE_H_
#define FIXTURE_WIRE_H_
#include <cstdint>
namespace net {
enum class ErrorCode : uint8_t {
  kProtocol = 1,
  kUnknownQuery = 2,
  kInternal = 3,  // swapped with kRejected
  kRejected = 4,
};
}  // namespace net
#endif
