// Fixture: an analysis escape without a justifying comment above it;
// moqo_lint must report rule `tsa-escape`.
void Sneaky() MOQO_NO_THREAD_SAFETY_ANALYSIS;
void Sneaky() {}
