// Tests for CostVector, the dominance relations of Section 3, weighted
// cost, bounds, and relative cost (Definition 3).

#include "cost/cost_vector.h"

#include <gtest/gtest.h>

#include "testing/test_helpers.h"
#include "util/random.h"

namespace moqo {
namespace {

CostVector Make(std::initializer_list<double> values) {
  CostVector cost(static_cast<int>(values.size()));
  int i = 0;
  for (double v : values) cost[i++] = v;
  return cost;
}

TEST(CostVectorTest, ArithmeticOps) {
  const CostVector a = Make({1, 4, 2});
  const CostVector b = Make({3, 1, 2});
  EXPECT_EQ(a.Plus(b), Make({4, 5, 4}));
  EXPECT_EQ(a.Max(b), Make({3, 4, 2}));
  EXPECT_EQ(a.Scaled(2), Make({2, 8, 4}));
  EXPECT_TRUE(a.IsValid());
}

TEST(CostVectorTest, InvalidOnNegativeOrNaN) {
  CostVector c = Make({1, -1});
  EXPECT_FALSE(c.IsValid());
  c[1] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(c.IsValid());
}

TEST(DominanceTest, PaperExampleFigures) {
  // From Example 1: (7,1) and (6,2) are incomparable; (1,3) vs (7,1) too.
  EXPECT_FALSE(Dominates(Make({7, 1}), Make({6, 2})));
  EXPECT_FALSE(Dominates(Make({6, 2}), Make({7, 1})));
  EXPECT_TRUE(Dominates(Make({6, 1}), Make({7, 1})));
  EXPECT_TRUE(StrictlyDominates(Make({6, 1}), Make({7, 1})));
}

TEST(DominanceTest, DominatesIsReflexiveStrictIsNot) {
  const CostVector c = Make({2, 3, 5});
  EXPECT_TRUE(Dominates(c, c));
  EXPECT_FALSE(StrictlyDominates(c, c));
}

TEST(DominanceTest, ApproxDominanceWithAlphaOneEqualsDominance) {
  Xoshiro256 rng(3);
  for (int trial = 0; trial < 500; ++trial) {
    const CostVector a = testing::RandomCostVector(&rng, 4);
    const CostVector b = testing::RandomCostVector(&rng, 4);
    EXPECT_EQ(ApproxDominates(a, b, 1.0), Dominates(a, b));
  }
}

TEST(DominanceTest, DominanceImpliesApproxDominance) {
  Xoshiro256 rng(5);
  for (int trial = 0; trial < 500; ++trial) {
    const CostVector a = testing::RandomCostVector(&rng, 5);
    const CostVector b = testing::RandomCostVector(&rng, 5);
    const double alpha = 1.0 + rng.NextDouble();
    if (Dominates(a, b)) {
      EXPECT_TRUE(ApproxDominates(a, b, alpha));
    }
  }
}

TEST(DominanceTest, ApproxDominanceMonotoneInAlpha) {
  Xoshiro256 rng(7);
  for (int trial = 0; trial < 500; ++trial) {
    const CostVector a = testing::RandomCostVector(&rng, 3);
    const CostVector b = testing::RandomCostVector(&rng, 3);
    if (ApproxDominates(a, b, 1.2)) {
      EXPECT_TRUE(ApproxDominates(a, b, 1.5));
      EXPECT_TRUE(ApproxDominates(a, b, 3.0));
    }
  }
}

// Transitivity with multiplied precisions: a ⪯_x b and b ⪯_y c imply
// a ⪯_{xy} c — the composition the RTA induction (Theorem 3) relies on.
TEST(DominanceTest, ApproxDominanceComposesMultiplicatively) {
  Xoshiro256 rng(11);
  int checked = 0;
  for (int trial = 0; trial < 3000 && checked < 200; ++trial) {
    const CostVector a = testing::RandomCostVector(&rng, 3);
    const CostVector b = testing::RandomCostVector(&rng, 3);
    const CostVector c = testing::RandomCostVector(&rng, 3);
    const double x = 1.0 + rng.NextDouble();
    const double y = 1.0 + rng.NextDouble();
    if (ApproxDominates(a, b, x) && ApproxDominates(b, c, y)) {
      EXPECT_TRUE(ApproxDominates(a, c, x * y));
      ++checked;
    }
  }
  EXPECT_GT(checked, 50);
}

TEST(DominanceTest, ZeroComponentBlocksApproxDominance) {
  // alpha * 0 = 0: only cost 0 approximately dominates cost 0.
  EXPECT_FALSE(ApproxDominates(Make({0.1, 1}), Make({0, 1}), 100.0));
  EXPECT_TRUE(ApproxDominates(Make({0, 1}), Make({0, 1}), 1.0));
}

TEST(WeightVectorTest, WeightedCostIsDotProduct) {
  WeightVector w(3);
  w[0] = 1;
  w[1] = 2;
  w[2] = 0.5;
  EXPECT_DOUBLE_EQ(w.WeightedCost(Make({4, 3, 2})), 4 + 6 + 1);
}

TEST(WeightVectorTest, Example1WeightedCosts) {
  // Example 1: weights (1, 2); plan cost (7,3) -> 13, (6,5) -> 16.
  WeightVector w(2);
  w[0] = 1;
  w[1] = 2;
  EXPECT_DOUBLE_EQ(w.WeightedCost(Make({7, 3})), 13);
  EXPECT_DOUBLE_EQ(w.WeightedCost(Make({6, 5})), 16);
}

TEST(WeightVectorTest, UniformAndOneHot) {
  EXPECT_DOUBLE_EQ(WeightVector::Uniform(3).WeightedCost(Make({1, 2, 3})), 6);
  EXPECT_DOUBLE_EQ(WeightVector::OneHot(3, 1).WeightedCost(Make({1, 2, 3})),
                   2);
}

TEST(BoundVectorTest, UnboundedRespectsEverything) {
  const BoundVector bounds = BoundVector::Unbounded(3);
  EXPECT_TRUE(bounds.AllUnbounded());
  EXPECT_EQ(bounds.NumFinite(), 0);
  EXPECT_TRUE(bounds.Respects(Make({1e300, 1e300, 1e300})));
}

TEST(BoundVectorTest, SingleViolationExceeds) {
  BoundVector bounds(3);
  bounds[1] = 5.0;
  EXPECT_TRUE(bounds.Respects(Make({100, 5, 100})));
  EXPECT_FALSE(bounds.Respects(Make({0, 5.001, 0})));
  EXPECT_EQ(bounds.NumFinite(), 1);
}

TEST(BoundVectorTest, RelaxedBoundsScaleMultiplicatively) {
  BoundVector bounds(2);
  bounds[0] = 10.0;
  EXPECT_FALSE(bounds.Respects(Make({14, 1})));
  EXPECT_TRUE(bounds.RespectsRelaxed(Make({14, 1}), 1.5));
  EXPECT_FALSE(bounds.RespectsRelaxed(Make({16, 1}), 1.5));
}

TEST(RelativeCostTest, MatchesDefinition) {
  WeightVector w = WeightVector::Uniform(2);
  EXPECT_DOUBLE_EQ(RelativeCost(w, Make({2, 2}), Make({1, 1})), 2.0);
  EXPECT_DOUBLE_EQ(RelativeCost(w, Make({1, 1}), Make({1, 1})), 1.0);
  // Zero optimum with zero plan cost: relative cost 1 by convention.
  EXPECT_DOUBLE_EQ(RelativeCost(w, Make({0, 0}), Make({0, 0})), 1.0);
}

}  // namespace
}  // namespace moqo
