// Tests for objective metadata and ObjectiveSet.

#include "cost/objective.h"

#include <gtest/gtest.h>

#include <set>

namespace moqo {
namespace {

TEST(ObjectiveTest, NineObjectivesWithUniqueNames) {
  std::set<std::string> names;
  for (Objective o : kAllObjectives) {
    names.insert(ObjectiveName(o));
  }
  EXPECT_EQ(names.size(), static_cast<size_t>(kNumObjectives));
  EXPECT_EQ(kNumObjectives, 9);
}

TEST(ObjectiveTest, MetadataConsistent) {
  for (int i = 0; i < kNumObjectives; ++i) {
    const ObjectiveInfo& info = GetObjectiveInfoByIndex(i);
    EXPECT_EQ(static_cast<int>(info.objective), i);
    EXPECT_GT(info.intrinsic_floor, 0) << info.name;  // Observation 3.
  }
}

TEST(ObjectiveTest, TupleLossIsTheOnlyBoundedDomain) {
  for (Objective o : kAllObjectives) {
    EXPECT_EQ(GetObjectiveInfo(o).bounded_domain, o == Objective::kTupleLoss);
  }
}

TEST(ObjectiveTest, CombinationKinds) {
  EXPECT_EQ(GetObjectiveInfo(Objective::kEnergy).combination,
            CombinationKind::kAdditive);
  EXPECT_EQ(GetObjectiveInfo(Objective::kBufferFootprint).combination,
            CombinationKind::kPeak);
  EXPECT_EQ(GetObjectiveInfo(Objective::kTotalTime).combination,
            CombinationKind::kParallelMax);
  EXPECT_EQ(GetObjectiveInfo(Objective::kTupleLoss).combination,
            CombinationKind::kLossCompose);
}

TEST(ObjectiveTest, ParseRoundTrips) {
  for (Objective o : kAllObjectives) {
    Objective parsed;
    ASSERT_TRUE(ParseObjective(ObjectiveName(o), &parsed));
    EXPECT_EQ(parsed, o);
  }
  Objective dummy;
  EXPECT_FALSE(ParseObjective("no_such_objective", &dummy));
}

TEST(ObjectiveSetTest, AllContainsEverything) {
  const ObjectiveSet all = ObjectiveSet::All();
  EXPECT_EQ(all.size(), kNumObjectives);
  for (Objective o : kAllObjectives) {
    EXPECT_TRUE(all.Contains(o));
  }
}

TEST(ObjectiveSetTest, IndexOfMatchesOrder) {
  ObjectiveSet set({Objective::kEnergy, Objective::kTotalTime});
  EXPECT_EQ(set.IndexOf(Objective::kEnergy), 0);
  EXPECT_EQ(set.IndexOf(Objective::kTotalTime), 1);
  EXPECT_EQ(set.IndexOf(Objective::kCores), -1);
  EXPECT_FALSE(set.Contains(Objective::kCores));
}

TEST(ObjectiveSetTest, OnlyMakesSingleton) {
  const ObjectiveSet set = ObjectiveSet::Only(Objective::kIOLoad);
  EXPECT_EQ(set.size(), 1);
  EXPECT_EQ(set.at(0), Objective::kIOLoad);
}

TEST(ObjectiveSetTest, ToStringListsNames) {
  ObjectiveSet set({Objective::kTotalTime, Objective::kTupleLoss});
  EXPECT_EQ(set.ToString(), "[total_time, tuple_loss]");
}

}  // namespace
}  // namespace moqo
