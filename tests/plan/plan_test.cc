// Tests for the operator registry, plan nodes, and plan printing.

#include <gtest/gtest.h>

#include "model/cost_model.h"
#include "plan/operators.h"
#include "plan/plan_node.h"
#include "plan/plan_printer.h"
#include "testing/test_helpers.h"

namespace moqo {
namespace {

TEST(OperatorRegistryTest, DefaultSpaceMatchesPaperFanOut) {
  OperatorRegistry registry;
  // Section 4: "over 10 different configurations are considered for the
  // scan and for the join operator respectively".
  EXPECT_GT(static_cast<int>(registry.scan_configs().size()), 10);
  EXPECT_GT(static_cast<int>(registry.join_configs().size()), 10);
  EXPECT_EQ(registry.OperatorCountJ(), registry.num_configs());
}

TEST(OperatorRegistryTest, DefaultSamplingRatesAre1To5Percent) {
  OperatorRegistry registry;
  std::set<double> rates;
  for (int id : registry.scan_configs()) {
    rates.insert(registry.config(id).sampling_rate);
  }
  EXPECT_EQ(rates, (std::set<double>{0.01, 0.02, 0.03, 0.04, 0.05, 1.0}));
}

TEST(OperatorRegistryTest, DopUpTo4Cores) {
  OperatorRegistry registry;
  int max_dop = 0;
  for (int id : registry.join_configs()) {
    max_dop = std::max(max_dop, registry.config(id).dop);
  }
  EXPECT_EQ(max_dop, 4);
}

TEST(OperatorRegistryTest, DisablingFeaturesShrinksSpace) {
  OperatorRegistry::Options options;
  options.enable_sampling = false;
  options.enable_index_scan = false;
  options.enable_parallelism = false;
  OperatorRegistry registry(options);
  EXPECT_EQ(registry.scan_configs().size(), 1u);   // SeqScan full only.
  EXPECT_EQ(registry.join_configs().size(), 4u);   // 4 join types, DOP 1.
}

TEST(OperatorConfigTest, ToStringShowsParameters) {
  EXPECT_EQ(OperatorConfig{OperatorType::kSeqScan}.ToString(), "SeqScan");
  OperatorConfig sampled{OperatorType::kSeqScan, 0.05, 1};
  EXPECT_EQ(sampled.ToString(), "SeqScan(sample=5%)");
  OperatorConfig parallel{OperatorType::kHashJoin, 1.0, 4};
  EXPECT_EQ(parallel.ToString(), "HashJ(dop=4)");
}

class PlanNodeTest : public ::testing::Test {
 protected:
  PlanNodeTest()
      : catalog_(testing::MakeTinyCatalog()),
        query_(testing::MakeStarQuery(&catalog_, 2)),
        registry_(testing::SmallOperatorSpace()),
        model_(&query_, &registry_,
               ObjectiveSet({Objective::kTotalTime, Objective::kEnergy})) {}

  const PlanNode* Scan(int table) {
    return model_.MakeScan(registry_.scan_configs()[0], table, &arena_);
  }
  const PlanNode* Join(const PlanNode* l, const PlanNode* r) {
    return model_.MakeJoin(registry_.join_configs()[0], l, r, &arena_);
  }

  Catalog catalog_;
  Query query_;
  OperatorRegistry registry_;
  CostModel model_;
  Arena arena_;
};

TEST_F(PlanNodeTest, ScanNodeProperties) {
  const PlanNode* scan = Scan(0);
  EXPECT_TRUE(scan->IsScan());
  EXPECT_EQ(scan->NodeCount(), 1);
  EXPECT_EQ(scan->Height(), 1);
  EXPECT_TRUE(scan->IsLeftDeep());
  EXPECT_EQ(scan->tables, TableSet::Singleton(0));
  EXPECT_GT(scan->cardinality, 0);
}

TEST_F(PlanNodeTest, JoinShapePredicates) {
  const PlanNode* left_deep = Join(Join(Scan(0), Scan(1)), Scan(2));
  EXPECT_TRUE(left_deep->IsLeftDeep());
  EXPECT_EQ(left_deep->NodeCount(), 5);
  EXPECT_EQ(left_deep->Height(), 3);

  const PlanNode* right_heavy = Join(Scan(2), Join(Scan(0), Scan(1)));
  EXPECT_FALSE(right_heavy->IsLeftDeep());  // Bushy/right-deep shape.
  EXPECT_EQ(right_heavy->tables, TableSet::Prefix(3));
}

TEST_F(PlanNodeTest, PlansEqualAndHash) {
  const PlanNode* a = Join(Scan(0), Scan(1));
  const PlanNode* b = Join(Scan(0), Scan(1));
  const PlanNode* c = Join(Scan(1), Scan(0));
  EXPECT_TRUE(PlansEqual(a, b));
  EXPECT_EQ(PlanHash(a), PlanHash(b));
  EXPECT_FALSE(PlansEqual(a, c));
  EXPECT_NE(PlanHash(a), PlanHash(c));
}

TEST_F(PlanNodeTest, ExplainAndSignature) {
  const PlanNode* plan = Join(Scan(0), Scan(1));
  const std::string explain = ExplainPlan(plan, query_, registry_);
  EXPECT_NE(explain.find("fact"), std::string::npos);
  EXPECT_NE(explain.find("dim1"), std::string::npos);
  EXPECT_NE(explain.find("rows="), std::string::npos);

  const std::string signature = PlanSignature(plan, query_, registry_);
  EXPECT_NE(signature.find("("), std::string::npos);
  EXPECT_NE(signature.find("fact"), std::string::npos);

  const std::string inventory = OperatorInventory(plan, registry_);
  EXPECT_NE(inventory.find("SeqScan"), std::string::npos);
}

}  // namespace
}  // namespace moqo
