// Tests for cardinality estimation and per-operator cost behaviour.

#include "model/cost_model.h"

#include <gtest/gtest.h>

#include "query/tpch_queries.h"
#include "testing/test_helpers.h"

namespace moqo {
namespace {

class CardinalityTest : public ::testing::Test {
 protected:
  CardinalityTest()
      : catalog_(testing::MakeTinyCatalog()),
        query_(testing::MakeStarQuery(&catalog_, 2)),
        estimator_(&query_) {}

  Catalog catalog_;
  Query query_;
  CardinalityEstimator estimator_;
};

TEST_F(CardinalityTest, ScanWithoutFiltersReturnsTableSize) {
  EXPECT_DOUBLE_EQ(estimator_.ScanOutputRows(0, 1.0), 10000);
  EXPECT_DOUBLE_EQ(estimator_.ScanOutputRows(1, 1.0), 100);
}

TEST_F(CardinalityTest, SamplingScalesLinearly) {
  EXPECT_DOUBLE_EQ(estimator_.ScanOutputRows(0, 0.05),
                   estimator_.ScanOutputRows(0, 1.0) * 0.05);
}

TEST_F(CardinalityTest, FilterSelectivityFromHistogram) {
  FilterPredicate f;
  f.table = 0;
  f.column = "f_value";
  f.op = FilterOp::kRange;
  f.value = 0;
  f.value_hi = 499.5;
  EXPECT_NEAR(estimator_.FilterSelectivity(f), 0.5, 0.01);
  query_.AddFilter(f);
  EXPECT_NEAR(estimator_.ScanOutputRows(0, 1.0), 5000, 100);
}

TEST_F(CardinalityTest, EquiJoinUsesMaxNdv) {
  // fact.f_d1 (ndv 100) = dim1.d1_key (ndv 100) -> selectivity 1/100.
  const double rows = estimator_.JoinOutputRows(
      TableSet::Singleton(0), 10000, TableSet::Singleton(1), 100);
  EXPECT_NEAR(rows, 10000 * 100 / 100.0, 1);
}

TEST_F(CardinalityTest, CartesianProductWithoutPredicate) {
  // dim1 x dim2 have no connecting predicate.
  const double rows = estimator_.JoinOutputRows(
      TableSet::Singleton(1), 100, TableSet::Singleton(2), 100);
  EXPECT_DOUBLE_EQ(rows, 10000);
}

class CostModelTest : public ::testing::Test {
 protected:
  CostModelTest()
      : catalog_(testing::MakeTinyCatalog()),
        query_(testing::MakeStarQuery(&catalog_, 2)),
        registry_(testing::SmallOperatorSpace()),
        model_(&query_, &registry_, ObjectiveSet::All()) {}

  int ScanConfig(OperatorType type, double rate) {
    for (int id : registry_.scan_configs()) {
      const OperatorConfig& c = registry_.config(id);
      if (c.type == type && c.sampling_rate == rate) return id;
    }
    return -1;
  }
  int JoinConfig(OperatorType type, int dop) {
    for (int id : registry_.join_configs()) {
      const OperatorConfig& c = registry_.config(id);
      if (c.type == type && c.dop == dop) return id;
    }
    return -1;
  }
  double Dim(const CostVector& c, Objective o) {
    return c[ObjectiveSet::All().IndexOf(o)];
  }

  Catalog catalog_;
  Query query_;
  OperatorRegistry registry_;
  CostModel model_;
  Arena arena_;
};

TEST_F(CostModelTest, ScanCostsAreValidAndPositive) {
  for (int id : registry_.scan_configs()) {
    if (!model_.ScanApplicable(id, 0)) continue;
    const PlanNode scan = model_.ScanNode(id, 0);
    EXPECT_TRUE(scan.cost.IsValid()) << registry_.config(id).ToString();
    EXPECT_GT(Dim(scan.cost, Objective::kTotalTime), 0);
    EXPECT_GE(Dim(scan.cost, Objective::kTupleLoss), 0);
    EXPECT_LE(Dim(scan.cost, Objective::kTupleLoss), 1);
  }
}

TEST_F(CostModelTest, SampledScanTradesLossForTime) {
  const PlanNode full =
      model_.ScanNode(ScanConfig(OperatorType::kSeqScan, 1.0), 0);
  const PlanNode sampled =
      model_.ScanNode(ScanConfig(OperatorType::kSeqScan, 0.05), 0);
  EXPECT_LT(Dim(sampled.cost, Objective::kTotalTime),
            Dim(full.cost, Objective::kTotalTime));
  EXPECT_DOUBLE_EQ(Dim(full.cost, Objective::kTupleLoss), 0.0);
  EXPECT_DOUBLE_EQ(Dim(sampled.cost, Objective::kTupleLoss), 0.95);
  EXPECT_LT(sampled.cardinality, full.cardinality);
}

TEST_F(CostModelTest, IndexScanRequiresIndex) {
  // fact has an index on f_d1 (join column) -> applicable.
  EXPECT_TRUE(
      model_.ScanApplicable(ScanConfig(OperatorType::kIndexScan, 1.0), 0));
  // A table occurrence with no indexed filter/join column is not:
  Query lone(&catalog_, "lone");
  lone.AddTable("fact");
  FilterPredicate f;
  f.table = 0;
  f.column = "f_value";  // Not indexed.
  f.op = FilterOp::kLess;
  f.value = 10;
  lone.AddFilter(f);
  CostModel lone_model(&lone, &registry_, ObjectiveSet::All());
  EXPECT_FALSE(lone_model.ScanApplicable(
      ScanConfig(OperatorType::kIndexScan, 1.0), 0));
  EXPECT_TRUE(lone_model.ScanApplicable(
      ScanConfig(OperatorType::kSeqScan, 1.0), 0));
}

TEST_F(CostModelTest, ParallelismTradesTimeForCoresAndEnergy) {
  const PlanNode* fact = model_.MakeScan(
      ScanConfig(OperatorType::kSeqScan, 1.0), 0, &arena_);
  const PlanNode* dim = model_.MakeScan(
      ScanConfig(OperatorType::kSeqScan, 1.0), 1, &arena_);
  const PlanNode serial = model_.JoinNode(
      JoinConfig(OperatorType::kHashJoin, 1), fact, dim);
  const PlanNode parallel = model_.JoinNode(
      JoinConfig(OperatorType::kHashJoin, 2), fact, dim);
  EXPECT_LT(Dim(parallel.cost, Objective::kCores) -
                Dim(serial.cost, Objective::kCores),
            3);
  EXPECT_GE(Dim(parallel.cost, Objective::kCores),
            Dim(serial.cost, Objective::kCores));
  // Parallel overhead: more total CPU work and energy.
  EXPECT_GT(Dim(parallel.cost, Objective::kCPULoad),
            Dim(serial.cost, Objective::kCPULoad));
  EXPECT_GT(Dim(parallel.cost, Objective::kEnergy),
            Dim(serial.cost, Objective::kEnergy));
}

TEST_F(CostModelTest, HashJoinHasWorseStartupThanIndexNL) {
  const PlanNode* fact = model_.MakeScan(
      ScanConfig(OperatorType::kSeqScan, 1.0), 0, &arena_);
  const PlanNode* dim = model_.MakeScan(
      ScanConfig(OperatorType::kSeqScan, 1.0), 1, &arena_);
  const PlanNode hash = model_.JoinNode(
      JoinConfig(OperatorType::kHashJoin, 1), fact, dim);
  const PlanNode idxnl = model_.JoinNode(
      JoinConfig(OperatorType::kIndexNLJoin, 1), fact, dim);
  // Pipelined IdxNL produces the first tuple long before hash join, whose
  // startup includes consuming the whole build side (Figure 3(c) driver).
  EXPECT_LT(Dim(idxnl.cost, Objective::kStartupTime),
            Dim(hash.cost, Objective::kStartupTime));
  // Hash join holds a hash table; IdxNL holds almost nothing (Fig. 3(b)).
  EXPECT_LT(Dim(idxnl.cost, Objective::kBufferFootprint),
            Dim(hash.cost, Objective::kBufferFootprint));
}

TEST_F(CostModelTest, TupleLossComposesViaLossFormula) {
  const PlanNode* fact = model_.MakeScan(
      ScanConfig(OperatorType::kSeqScan, 0.05), 0, &arena_);
  const PlanNode* dim = model_.MakeScan(
      ScanConfig(OperatorType::kSeqScan, 0.05), 1, &arena_);
  const PlanNode join = model_.JoinNode(
      JoinConfig(OperatorType::kHashJoin, 1), fact, dim);
  // 1 - (1-0.95)(1-0.95) = 0.9975.
  EXPECT_NEAR(Dim(join.cost, Objective::kTupleLoss), 0.9975, 1e-9);
}

TEST_F(CostModelTest, IndexNLJoinApplicability) {
  const PlanNode* fact = model_.MakeScan(
      ScanConfig(OperatorType::kSeqScan, 1.0), 0, &arena_);
  const PlanNode* dim = model_.MakeScan(
      ScanConfig(OperatorType::kSeqScan, 1.0), 1, &arena_);
  const int idxnl = JoinConfig(OperatorType::kIndexNLJoin, 1);
  // dim1 as inner: indexed join column -> applicable.
  EXPECT_TRUE(model_.JoinApplicable(idxnl, *fact, *dim));
  // A join as inner is never probed by index.
  const PlanNode* join = model_.MakeJoin(
      JoinConfig(OperatorType::kHashJoin, 1), fact, dim, &arena_);
  const PlanNode* dim2 = model_.MakeScan(
      ScanConfig(OperatorType::kSeqScan, 1.0), 2, &arena_);
  EXPECT_FALSE(model_.JoinApplicable(idxnl, *dim2, *join));
}

TEST_F(CostModelTest, AnalyzeSplitMatchesSlowPath) {
  const CostModel::SplitInfo info =
      model_.AnalyzeSplit(TableSet::Singleton(0), TableSet::Singleton(1));
  EXPECT_TRUE(info.has_predicate);
  EXPECT_TRUE(info.index_nl_applicable);
  EXPECT_NEAR(info.selectivity, 0.01, 1e-9);
  const CostModel::SplitInfo cross =
      model_.AnalyzeSplit(TableSet::Singleton(1), TableSet::Singleton(2));
  EXPECT_FALSE(cross.has_predicate);
  EXPECT_DOUBLE_EQ(cross.selectivity, 1.0);
}

TEST_F(CostModelTest, JoinNodeFastPathMatchesSlowPath) {
  const PlanNode* fact = model_.MakeScan(
      ScanConfig(OperatorType::kSeqScan, 1.0), 0, &arena_);
  const PlanNode* dim = model_.MakeScan(
      ScanConfig(OperatorType::kSeqScan, 1.0), 1, &arena_);
  for (int config : registry_.join_configs()) {
    const PlanNode slow = model_.JoinNode(config, fact, dim);
    const PlanNode fast = model_.JoinNode(
        config, fact, dim,
        model_.AnalyzeSplit(fact->tables, dim->tables));
    EXPECT_EQ(slow.cost, fast.cost);
    EXPECT_DOUBLE_EQ(slow.cardinality, fast.cardinality);
  }
}

// Lemma 1 sanity: costs stay finite and polynomially bounded on the
// largest TPC-H query at full scale.
TEST(CostModelScaleTest, CostsFiniteOnTpcHQ8) {
  Catalog catalog = Catalog::TpcH(1.0);
  Query query = MakeTpcHQuery(&catalog, 8);
  OperatorRegistry registry;
  CostModel model(&query, &registry, ObjectiveSet::All());
  Arena arena;
  // Chain all eight tables with hash joins.
  const PlanNode* plan =
      model.MakeScan(registry.scan_configs()[0], 0, &arena);
  for (int t = 1; t < query.num_tables(); ++t) {
    const PlanNode* scan =
        model.MakeScan(registry.scan_configs()[0], t, &arena);
    plan = model.MakeJoin(registry.join_configs()[0], plan, scan, &arena);
  }
  EXPECT_TRUE(plan->cost.IsValid());
  EXPECT_GT(plan->cardinality, 0);
}

}  // namespace
}  // namespace moqo
