// Property tests for the Principle of Optimality (Definition 6) and the
// Principle of Near-Optimality (Definition 7) of the cost model.
//
// Section 6.1 proves that the RTA's guarantee holds because every cost
// formula is composed of sum / max / min / scale-by-constant plus the
// tuple-loss composition. These tests verify the two principles directly on
// CostModel::CombineJoinCost: for random operand statistics and random
// child cost vectors, (approximately) dominating child costs must yield an
// (approximately) dominated combined cost — for every join operator
// configuration and every objective subset, swept via TEST_P.

#include <gtest/gtest.h>

#include "model/cost_model.h"
#include "testing/test_helpers.h"
#include "util/random.h"

namespace moqo {
namespace {

struct PonoParam {
  OperatorType join_type;
  int dop;
};

std::string ParamName(const ::testing::TestParamInfo<PonoParam>& info) {
  return std::string(OperatorTypeName(info.param.join_type)) + "_dop" +
         std::to_string(info.param.dop);
}

class PonoTest : public ::testing::TestWithParam<PonoParam> {
 protected:
  PonoTest()
      : catalog_(testing::MakeTinyCatalog()),
        query_(testing::MakeStarQuery(&catalog_, 2)),
        registry_(testing::SmallOperatorSpace()) {}

  /// Random loss-valid cost vector: tuple-loss dimensions live in [0, 1].
  CostVector RandomCost(Xoshiro256* rng, const ObjectiveSet& objectives) {
    CostVector cost(objectives.size());
    for (int i = 0; i < objectives.size(); ++i) {
      cost[i] = objectives.at(i) == Objective::kTupleLoss
                    ? rng->NextDouble()
                    : rng->NextDouble() * 1000.0;
    }
    return cost;
  }

  /// Derives a vector approximately dominated by `base`: each component is
  /// scaled by an independent factor in [1, alpha] (so base ⪯_alpha result,
  /// i.e. the result is "worse by at most alpha"). Tuple-loss components
  /// are clamped to 1.
  CostVector InflateWithin(const CostVector& base, double alpha,
                           const ObjectiveSet& objectives, Xoshiro256* rng) {
    CostVector worse(base.size());
    for (int i = 0; i < base.size(); ++i) {
      worse[i] = base[i] * rng->NextDouble(1.0, alpha);
      if (objectives.at(i) == Objective::kTupleLoss) {
        worse[i] = std::min(worse[i], 1.0);
      }
    }
    return worse;
  }

  OperatorConfig JoinConfig() {
    return OperatorConfig{GetParam().join_type, 1.0, GetParam().dop};
  }

  Catalog catalog_;
  Query query_;
  OperatorRegistry registry_;
};

// Definition 6 (POO): improving sub-plan costs cannot worsen plan cost.
TEST_P(PonoTest, PrincipleOfOptimalityAllObjectives) {
  const ObjectiveSet objectives = ObjectiveSet::All();
  CostModel model(&query_, &registry_, objectives);
  Xoshiro256 rng(101);
  const OperatorConfig op = JoinConfig();
  for (int trial = 0; trial < 300; ++trial) {
    const OperandStats left{rng.NextDouble() * 10000 + 1,
                            rng.NextDouble() * 100 + 8};
    const OperandStats right{rng.NextDouble() * 10000 + 1,
                             rng.NextDouble() * 100 + 8};
    const double output = rng.NextDouble() * 1e6 + 1;

    const CostVector better_l = RandomCost(&rng, objectives);
    const CostVector better_r = RandomCost(&rng, objectives);
    // Component-wise inflation => better ⪯ worse.
    const CostVector worse_l = InflateWithin(better_l, 3.0, objectives, &rng);
    const CostVector worse_r = InflateWithin(better_r, 3.0, objectives, &rng);
    ASSERT_TRUE(Dominates(better_l, worse_l));

    const CostVector combined_better =
        model.CombineJoinCost(op, left, better_l, right, better_r, output);
    const CostVector combined_worse =
        model.CombineJoinCost(op, left, worse_l, right, worse_r, output);
    EXPECT_TRUE(Dominates(combined_better, combined_worse))
        << "POO violated at trial " << trial << ": "
        << combined_better.ToString() << " !<= " << combined_worse.ToString();
  }
}

// Definition 7 (PONO): if sub-plan costs worsen by at most factor alpha,
// the plan cost worsens by at most factor alpha.
TEST_P(PonoTest, PrincipleOfNearOptimalityAllObjectives) {
  const ObjectiveSet objectives = ObjectiveSet::All();
  CostModel model(&query_, &registry_, objectives);
  Xoshiro256 rng(202);
  const OperatorConfig op = JoinConfig();
  for (int trial = 0; trial < 300; ++trial) {
    const double alpha = 1.0 + rng.NextDouble() * 1.5;
    const OperandStats left{rng.NextDouble() * 10000 + 1,
                            rng.NextDouble() * 100 + 8};
    const OperandStats right{rng.NextDouble() * 10000 + 1,
                             rng.NextDouble() * 100 + 8};
    const double output = rng.NextDouble() * 1e6 + 1;

    const CostVector base_l = RandomCost(&rng, objectives);
    const CostVector base_r = RandomCost(&rng, objectives);
    const CostVector near_l = InflateWithin(base_l, alpha, objectives, &rng);
    const CostVector near_r = InflateWithin(base_r, alpha, objectives, &rng);
    ASSERT_TRUE(ApproxDominates(base_l, near_l, 1.0));  // base <= near.

    const CostVector combined_base =
        model.CombineJoinCost(op, left, base_l, right, base_r, output);
    const CostVector combined_near =
        model.CombineJoinCost(op, left, near_l, right, near_r, output);
    // c(P*) ⪯_alpha c(P): the near version exceeds the base by <= alpha.
    EXPECT_TRUE(ApproxDominates(combined_base, combined_near, 1.0 + 1e-12))
        << "sanity: base must dominate";
    EXPECT_TRUE(ApproxDominates(combined_near, combined_base, alpha + 1e-9))
        << "PONO violated at trial " << trial << " alpha=" << alpha << ": "
        << combined_near.ToString() << " vs " << combined_base.ToString();
  }
}

// PONO restricted to random objective subsets (the Section-8 setting).
TEST_P(PonoTest, PonoHoldsOnRandomObjectiveSubsets) {
  Xoshiro256 rng(303);
  const OperatorConfig op = JoinConfig();
  for (int subset_trial = 0; subset_trial < 20; ++subset_trial) {
    const int l = rng.NextInt(2, kNumObjectives);
    std::vector<Objective> chosen;
    for (int idx : rng.SampleWithoutReplacement(kNumObjectives, l)) {
      chosen.push_back(kAllObjectives[idx]);
    }
    const ObjectiveSet objectives(chosen);
    CostModel model(&query_, &registry_, objectives);
    for (int trial = 0; trial < 30; ++trial) {
      const double alpha = 1.0 + rng.NextDouble();
      const OperandStats left{rng.NextDouble() * 5000 + 1, 50};
      const OperandStats right{rng.NextDouble() * 5000 + 1, 50};
      const double output = rng.NextDouble() * 1e5 + 1;
      const CostVector base_l = RandomCost(&rng, objectives);
      const CostVector base_r = RandomCost(&rng, objectives);
      const CostVector near_l =
          InflateWithin(base_l, alpha, objectives, &rng);
      const CostVector near_r =
          InflateWithin(base_r, alpha, objectives, &rng);
      const CostVector combined_base =
          model.CombineJoinCost(op, left, base_l, right, base_r, output);
      const CostVector combined_near =
          model.CombineJoinCost(op, left, near_l, right, near_r, output);
      EXPECT_TRUE(ApproxDominates(combined_near, combined_base, alpha + 1e-9))
          << objectives.ToString() << " alpha=" << alpha;
    }
  }
}

// The tuple-loss composition: F(a,b) = 1-(1-a)(1-b) = a + b - ab satisfies
// F(alpha*a, alpha*b) <= alpha*F(a, b) for a, b in [0,1] (Section 6.1).
TEST(TupleLossFormulaTest, SatisfiesPonoScalarInequality) {
  Xoshiro256 rng(404);
  for (int trial = 0; trial < 10000; ++trial) {
    const double a = rng.NextDouble();
    const double b = rng.NextDouble();
    const double alpha = 1.0 + rng.NextDouble() * 4;
    const double aa = std::min(alpha * a, 1.0);
    const double ab = std::min(alpha * b, 1.0);
    const double f = a + b - a * b;
    const double f_scaled = aa + ab - aa * ab;
    EXPECT_LE(f_scaled, alpha * f + 1e-12)
        << "a=" << a << " b=" << b << " alpha=" << alpha;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllJoinOperators, PonoTest,
    ::testing::Values(PonoParam{OperatorType::kHashJoin, 1},
                      PonoParam{OperatorType::kHashJoin, 2},
                      PonoParam{OperatorType::kHashJoin, 4},
                      PonoParam{OperatorType::kSortMergeJoin, 1},
                      PonoParam{OperatorType::kSortMergeJoin, 4},
                      PonoParam{OperatorType::kIndexNLJoin, 1},
                      PonoParam{OperatorType::kIndexNLJoin, 4},
                      PonoParam{OperatorType::kBlockNLJoin, 1},
                      PonoParam{OperatorType::kBlockNLJoin, 2}),
    ParamName);

}  // namespace
}  // namespace moqo
