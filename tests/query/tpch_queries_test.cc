// Tests for the TPC-H query definitions: table counts matching the paper's
// x-axis annotation, graph connectivity, and predicate sanity.

#include "query/tpch_queries.h"

#include <gtest/gtest.h>

#include <set>

namespace moqo {
namespace {

class TpcHQueriesTest : public ::testing::Test {
 protected:
  Catalog catalog_ = Catalog::TpcH(1.0);
};

TEST_F(TpcHQueriesTest, OrderCoversAll22QueriesOnce) {
  const auto& order = TpcHQueryOrder();
  ASSERT_EQ(order.size(), 22u);
  std::set<int> unique(order.begin(), order.end());
  EXPECT_EQ(unique.size(), 22u);
  for (int q : order) {
    EXPECT_GE(q, 1);
    EXPECT_LE(q, 22);
  }
}

TEST_F(TpcHQueriesTest, OrderIsByAscendingTableCount) {
  const auto& order = TpcHQueryOrder();
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_LE(TpcHQueryTableCount(order[i - 1]),
              TpcHQueryTableCount(order[i]))
        << "q" << order[i - 1] << " before q" << order[i];
  }
}

TEST_F(TpcHQueriesTest, DeclaredTableCountsMatchDefinitions) {
  for (int number = 1; number <= 22; ++number) {
    const Query q = MakeTpcHQuery(&catalog_, number);
    EXPECT_EQ(q.num_tables(), TpcHQueryTableCount(number)) << "q" << number;
  }
}

TEST_F(TpcHQueriesTest, PaperXAxisExtremes) {
  EXPECT_EQ(TpcHQueryTableCount(1), 1);
  EXPECT_EQ(TpcHQueryTableCount(8), 8);   // Largest join.
  EXPECT_EQ(TpcHQueryTableCount(5), 6);
  EXPECT_EQ(TpcHQueryTableCount(3), 3);
}

TEST_F(TpcHQueriesTest, MultiTableQueriesAreConnected) {
  for (int number = 1; number <= 22; ++number) {
    const Query q = MakeTpcHQuery(&catalog_, number);
    EXPECT_TRUE(q.JoinGraphConnected()) << "q" << number;
  }
}

TEST_F(TpcHQueriesTest, JoinColumnsExistInSchema) {
  for (int number = 1; number <= 22; ++number) {
    const Query q = MakeTpcHQuery(&catalog_, number);
    for (const JoinPredicate& join : q.joins()) {
      EXPECT_NE(q.table(join.left_table).FindColumn(join.left_column),
                nullptr)
          << "q" << number << " " << join.ToString();
      EXPECT_NE(q.table(join.right_table).FindColumn(join.right_column),
                nullptr)
          << "q" << number << " " << join.ToString();
    }
    for (const FilterPredicate& filter : q.filters()) {
      EXPECT_NE(q.table(filter.table).FindColumn(filter.column), nullptr)
          << "q" << number << " " << filter.ToString();
    }
  }
}

TEST_F(TpcHQueriesTest, Q7UsesTwoNationOccurrences) {
  const Query q = MakeTpcHQuery(&catalog_, 7);
  int nation_occurrences = 0;
  for (int i = 0; i < q.num_tables(); ++i) {
    if (q.table(i).name() == "nation") ++nation_occurrences;
  }
  EXPECT_EQ(nation_occurrences, 2);
}

TEST_F(TpcHQueriesTest, Q3MatchesFigure3Setting) {
  // Figure 3 shows plans joining customers, orders, lineitem.
  const Query q = MakeTpcHQuery(&catalog_, 3);
  ASSERT_EQ(q.num_tables(), 3);
  std::set<std::string> names;
  for (int i = 0; i < q.num_tables(); ++i) names.insert(q.table(i).name());
  EXPECT_EQ(names, (std::set<std::string>{"customer", "orders", "lineitem"}));
}

}  // namespace
}  // namespace moqo
