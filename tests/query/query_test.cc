// Tests for Query: predicate bookkeeping, split connectivity, and induced
// subgraph connectivity (the basis of the Cartesian-product heuristic).

#include "query/query.h"

#include <gtest/gtest.h>

#include "testing/test_helpers.h"

namespace moqo {
namespace {

class QueryTest : public ::testing::Test {
 protected:
  Catalog catalog_ = testing::MakeTinyCatalog();
};

TEST_F(QueryTest, AddTableAssignsLocalIndexes) {
  Query q(&catalog_, "t");
  EXPECT_EQ(q.AddTable("fact"), 0);
  EXPECT_EQ(q.AddTable("dim1"), 1);
  EXPECT_EQ(q.AddTable("dim1"), 2);  // Self-join occurrence.
  EXPECT_EQ(q.num_tables(), 3);
  EXPECT_EQ(q.table(1).name(), "dim1");
  EXPECT_EQ(q.table(2).name(), "dim1");
}

TEST_F(QueryTest, SplitPredicateDetection) {
  Query q = testing::MakeStarQuery(&catalog_, 3);  // fact=0, dims=1,2,3.
  const TableSet fact = TableSet::Singleton(0);
  const TableSet d1 = TableSet::Singleton(1);
  const TableSet d23 = TableSet::Singleton(2).With(3);
  EXPECT_TRUE(q.SplitHasJoinPredicate(fact, d1));
  EXPECT_FALSE(q.SplitHasJoinPredicate(d1, d23));  // Dims are unconnected.
  EXPECT_EQ(q.JoinsForSplit(fact, d1).size(), 1u);
  EXPECT_EQ(q.JoinsForSplit(fact, d23).size(), 2u);
}

TEST_F(QueryTest, FiltersForTable) {
  Query q = testing::MakeStarQuery(&catalog_, 1);
  FilterPredicate f;
  f.table = 0;
  f.column = "f_value";
  f.op = FilterOp::kLess;
  f.value = 500;
  q.AddFilter(f);
  EXPECT_EQ(q.FiltersForTable(0).size(), 1u);
  EXPECT_TRUE(q.FiltersForTable(1).empty());
}

TEST_F(QueryTest, StarGraphIsConnected) {
  Query q = testing::MakeStarQuery(&catalog_, 3);
  EXPECT_TRUE(q.JoinGraphConnected());
}

TEST_F(QueryTest, MissingEdgeDisconnects) {
  Query q(&catalog_, "disconnected");
  q.AddTable("fact");
  q.AddTable("dim1");
  EXPECT_FALSE(q.JoinGraphConnected());
  q.AddJoin(0, "f_d1", 1, "d1_key");
  EXPECT_TRUE(q.JoinGraphConnected());
}

TEST_F(QueryTest, InducedSubgraphConnectivity) {
  // Star: fact(0) - dim1(1), fact - dim2(2), fact - dim3(3).
  Query q = testing::MakeStarQuery(&catalog_, 3);
  EXPECT_TRUE(q.InducedSubgraphConnected(TableSet::Singleton(1)));
  EXPECT_TRUE(
      q.InducedSubgraphConnected(TableSet::Singleton(0).With(1).With(2)));
  // Two dimensions without the hub are disconnected.
  EXPECT_FALSE(q.InducedSubgraphConnected(TableSet::Singleton(1).With(2)));
  EXPECT_TRUE(q.InducedSubgraphConnected(q.AllTables()));
}

TEST_F(QueryTest, ToStringMentionsTablesAndPredicates) {
  Query q = testing::MakeStarQuery(&catalog_, 1);
  const std::string s = q.ToString();
  EXPECT_NE(s.find("fact"), std::string::npos);
  EXPECT_NE(s.find("dim1"), std::string::npos);
  EXPECT_NE(s.find("f_d1"), std::string::npos);
}

}  // namespace
}  // namespace moqo
