// Tests for join and filter predicate primitives.

#include "query/predicate.h"

#include <gtest/gtest.h>

namespace moqo {
namespace {

TEST(JoinPredicateTest, ConnectsRespectsSides) {
  const JoinPredicate join{0, "a", 2, "b"};
  const TableSet left = TableSet::Singleton(0).With(1);
  const TableSet right = TableSet::Singleton(2).With(3);
  EXPECT_TRUE(join.Connects(left, right));
  EXPECT_TRUE(join.Connects(right, left));  // Symmetric.
  // Both endpoints on the same side: not a connection between the sides.
  EXPECT_FALSE(join.Connects(TableSet::Singleton(0).With(2),
                             TableSet::Singleton(3)));
  EXPECT_FALSE(join.Connects(TableSet::Singleton(1),
                             TableSet::Singleton(3)));
}

TEST(JoinPredicateTest, ToStringShowsColumns) {
  const JoinPredicate join{0, "c_custkey", 1, "o_custkey"};
  EXPECT_EQ(join.ToString(), "t0.c_custkey = t1.o_custkey");
}

TEST(FilterPredicateTest, ToStringPerOperator) {
  FilterPredicate f;
  f.table = 2;
  f.column = "x";
  f.value = 5;
  f.op = FilterOp::kEquals;
  EXPECT_EQ(f.ToString(), "t2.x = 5");
  f.op = FilterOp::kLess;
  EXPECT_EQ(f.ToString(), "t2.x < 5");
  f.op = FilterOp::kGreaterEquals;
  EXPECT_EQ(f.ToString(), "t2.x >= 5");
  f.op = FilterOp::kRange;
  f.value_hi = 9;
  EXPECT_EQ(f.ToString(), "t2.x in [5, 9]");
}

}  // namespace
}  // namespace moqo
