// Tests for histograms, tables, and the TPC-H catalog.

#include "catalog/catalog.h"

#include <gtest/gtest.h>

namespace moqo {
namespace {

TEST(HistogramTest, UniformSelectivities) {
  const Histogram h = Histogram::Uniform(0, 100, 10, 1000);
  EXPECT_DOUBLE_EQ(h.SelectivityLessEqual(-5), 0.0);
  EXPECT_DOUBLE_EQ(h.SelectivityLessEqual(100), 1.0);
  EXPECT_NEAR(h.SelectivityLessEqual(50), 0.5, 1e-9);
  EXPECT_NEAR(h.SelectivityRange(25, 75), 0.5, 1e-9);
  EXPECT_NEAR(h.SelectivityEquals(50, 100), 0.01, 1e-9);
}

TEST(HistogramTest, RangeSelectivityClampsAndOrders) {
  const Histogram h = Histogram::Uniform(0, 10, 4, 100);
  EXPECT_DOUBLE_EQ(h.SelectivityRange(8, 2), 0.0);  // Inverted range.
  EXPECT_NEAR(h.SelectivityRange(-100, 100), 1.0, 1e-9);
}

TEST(HistogramTest, ZipfSkewsMassToFirstBuckets) {
  const Histogram z = Histogram::Zipf(0, 100, 10, 1000, 1.0);
  EXPECT_GT(z.bucket_count(0), z.bucket_count(9));
  // First bucket of a Zipf(1) histogram holds more than the uniform share.
  EXPECT_GT(z.SelectivityLessEqual(10), 0.1);
  double total = 0;
  for (int i = 0; i < z.num_buckets(); ++i) total += z.bucket_count(i);
  EXPECT_NEAR(total, 1000, 1e-6);
}

TEST(TableTest, PageCountFromRowWidth) {
  Table t("t", 8192, 8);  // 64 KiB of data -> 8 pages of 8 KiB.
  EXPECT_DOUBLE_EQ(t.page_count(), 8);
  Table tiny("tiny", 1, 8);
  EXPECT_DOUBLE_EQ(tiny.page_count(), 1);  // At least one page.
}

TEST(TableTest, ColumnLookupAndIndexes) {
  Table t("t", 100, 16);
  ColumnStats c;
  c.name = "key";
  t.AddColumn(c);
  t.AddIndex("key");
  EXPECT_NE(t.FindColumn("key"), nullptr);
  EXPECT_EQ(t.FindColumn("missing"), nullptr);
  EXPECT_TRUE(t.HasIndexOn("key"));
  EXPECT_FALSE(t.HasIndexOn("missing"));
}

TEST(TpcHCatalogTest, EightTablesWithSpecCardinalities) {
  const Catalog catalog = Catalog::TpcH(1.0);
  ASSERT_EQ(catalog.num_tables(), 8);
  EXPECT_DOUBLE_EQ(catalog.table(kRegion).row_count(), 5);
  EXPECT_DOUBLE_EQ(catalog.table(kNation).row_count(), 25);
  EXPECT_DOUBLE_EQ(catalog.table(kSupplier).row_count(), 10000);
  EXPECT_DOUBLE_EQ(catalog.table(kCustomer).row_count(), 150000);
  EXPECT_DOUBLE_EQ(catalog.table(kPart).row_count(), 200000);
  EXPECT_DOUBLE_EQ(catalog.table(kPartsupp).row_count(), 800000);
  EXPECT_DOUBLE_EQ(catalog.table(kOrders).row_count(), 1500000);
  EXPECT_DOUBLE_EQ(catalog.table(kLineitem).row_count(), 6001215);
}

TEST(TpcHCatalogTest, ScaleFactorScalesBigTables) {
  const Catalog catalog = Catalog::TpcH(0.1);
  EXPECT_NEAR(catalog.table(kLineitem).row_count(), 600122, 1);
  // Region and nation are fixed-size per the TPC-H spec.
  EXPECT_DOUBLE_EQ(catalog.table(kRegion).row_count(), 5);
  EXPECT_DOUBLE_EQ(catalog.table(kNation).row_count(), 25);
}

TEST(TpcHCatalogTest, KeysAreIndexed) {
  const Catalog catalog = Catalog::TpcH(1.0);
  EXPECT_TRUE(catalog.table(kLineitem).HasIndexOn("l_orderkey"));
  EXPECT_TRUE(catalog.table(kOrders).HasIndexOn("o_custkey"));
  EXPECT_TRUE(catalog.table(kCustomer).HasIndexOn("c_custkey"));
  EXPECT_FALSE(catalog.table(kLineitem).HasIndexOn("l_shipdate"));
}

TEST(TpcHCatalogTest, FindTableByName) {
  const Catalog catalog = Catalog::TpcH(1.0);
  EXPECT_EQ(catalog.FindTable("lineitem"), kLineitem);
  EXPECT_EQ(catalog.FindTable("region"), kRegion);
  EXPECT_EQ(catalog.FindTable("nope"), -1);
}

}  // namespace
}  // namespace moqo
