// Copyright (c) 2026 moqo authors. MIT license.
//
// Cross-query subplan memo: canonical table-set signatures (permutation /
// translation invariance, collision resistance across predicates,
// objectives and alpha), memo admission/eviction/epoch semantics, and the
// tentpole guarantee — frontiers are byte-identical with the memo on or
// off, cold and warm, serial and parallel, exact and approximate. The
// concurrency tests run under TSan in CI.

#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/dp_driver.h"
#include "memo/subplan_key.h"
#include "memo/subplan_memo.h"
#include "query/query.h"
#include "testing/test_helpers.h"
#include "util/thread_pool.h"

namespace moqo {
namespace {

/// Chain-friendly catalog: n tables r0..r{n-1} with distinct cardinalities
/// (so content-based fragments differ) and two indexed join columns.
Catalog MakeChainCatalog(int tables) {
  Catalog catalog;
  for (int i = 0; i < tables; ++i) {
    const long rows = 400 * (1 + (i * 5) % 7);
    Table table("r" + std::to_string(i), rows, 48);
    for (const char* name : {"k", "j"}) {
      ColumnStats column;
      column.name = name;
      column.ndv = 50;
      column.min_value = 0;
      column.max_value = 49;
      column.histogram = Histogram::Uniform(0, 49, 8, rows);
      table.AddColumn(column);
      table.AddIndex(name);
    }
    catalog.AddTable(std::move(table));
  }
  return catalog;
}

/// Chain query joining tables lo..hi (inclusive) on `column`.
Query MakeChainQuery(const Catalog* catalog, int lo, int hi,
                     const std::string& column = "k") {
  Query query(catalog, "chain" + std::to_string(lo) + "_" +
                           std::to_string(hi));
  std::vector<int> locals;
  for (int i = lo; i <= hi; ++i) {
    locals.push_back(query.AddTable("r" + std::to_string(i)));
  }
  for (size_t i = 0; i + 1 < locals.size(); ++i) {
    query.AddJoin(locals[i], column, locals[i + 1], column);
  }
  return query;
}

ObjectiveSet ThreeObjectives() {
  return ObjectiveSet({Objective::kTotalTime, Objective::kEnergy,
                       Objective::kBufferFootprint});
}

SubplanKeyContext MakeContext(const Query& query, double alpha = 1.0) {
  return SubplanKeyContext(query, ThreeObjectives(), alpha,
                           testing::SmallOperatorSpace(), /*bushy=*/true,
                           /*cartesian_heuristic=*/true,
                           /*aggressive_delete=*/false,
                           /*skip_disconnected=*/true);
}

// ---------------------------------------------------------------------------
// Canonical signatures.

TEST(SubplanKeyTest, JoinAndFilterInsertionOrderInvariance) {
  Catalog catalog = MakeChainCatalog(4);
  auto add_filters = [](Query* query, bool reversed) {
    FilterPredicate f1{0, "j", FilterOp::kLess, 25.0, 0.0};
    FilterPredicate f2{2, "j", FilterOp::kGreaterEquals, 5.0, 0.0};
    if (reversed) {
      query->AddFilter(f2);
      query->AddFilter(f1);
    } else {
      query->AddFilter(f1);
      query->AddFilter(f2);
    }
  };

  Query a(&catalog, "a");
  for (int i = 0; i < 4; ++i) a.AddTable("r" + std::to_string(i));
  a.AddJoin(0, "k", 1, "k");
  a.AddJoin(1, "k", 2, "k");
  a.AddJoin(2, "k", 3, "k");
  add_filters(&a, false);

  // Same structure: joins inserted in reverse with swapped endpoints,
  // filters reversed, different query name.
  Query b(&catalog, "b");
  for (int i = 0; i < 4; ++i) b.AddTable("r" + std::to_string(i));
  b.AddJoin(3, "k", 2, "k");
  b.AddJoin(2, "k", 1, "k");
  b.AddJoin(1, "k", 0, "k");
  add_filters(&b, true);

  const SubplanKeyContext ctx_a = MakeContext(a);
  const SubplanKeyContext ctx_b = MakeContext(b);
  for (uint64_t mask = 1; mask < 16; ++mask) {
    const TableSet tables(mask);
    EXPECT_EQ(ctx_a.SignatureFor(tables), ctx_b.SignatureFor(tables))
        << "mask " << mask;
  }
}

TEST(SubplanKeyTest, IndexTranslationInvariance) {
  // The subchain r1-r2-r3 embedded at local indices {1,2,3} of chain
  // r0..r3 and at {0,1,2} of chain r1..r4 must key identically: same
  // member contents in the same relative order, same induced edges, and
  // the same incident join columns (everything joins on "k").
  Catalog catalog = MakeChainCatalog(5);
  Query a = MakeChainQuery(&catalog, 0, 3);
  Query b = MakeChainQuery(&catalog, 1, 4);
  const SubplanKeyContext ctx_a = MakeContext(a);
  const SubplanKeyContext ctx_b = MakeContext(b);
  // {r1,r2,r3} = local {1,2,3} in a, local {0,1,2} in b.
  EXPECT_EQ(ctx_a.SignatureFor(TableSet(0b1110)),
            ctx_b.SignatureFor(TableSet(0b0111)));
  // {r1,r2} and {r2,r3} likewise.
  EXPECT_EQ(ctx_a.SignatureFor(TableSet(0b0110)),
            ctx_b.SignatureFor(TableSet(0b0011)));
  EXPECT_EQ(ctx_a.SignatureFor(TableSet(0b1100)),
            ctx_b.SignatureFor(TableSet(0b0110)));
  // {r0,r1} of a has no counterpart in b: different member content.
  EXPECT_NE(ctx_a.SignatureFor(TableSet(0b0011)),
            ctx_b.SignatureFor(TableSet(0b0011)));
}

TEST(SubplanKeyTest, CollisionResistance) {
  Catalog catalog = MakeChainCatalog(4);
  const Query base = MakeChainQuery(&catalog, 0, 2);
  const TableSet all = base.AllTables();
  const SubplanSignature reference = MakeContext(base).SignatureFor(all);

  // Different join column.
  const Query other_column = MakeChainQuery(&catalog, 0, 2, "j");
  EXPECT_NE(MakeContext(other_column).SignatureFor(all), reference);

  // Extra filter.
  Query filtered = MakeChainQuery(&catalog, 0, 2);
  filtered.AddFilter(FilterPredicate{1, "j", FilterOp::kLess, 10.0, 0.0});
  EXPECT_NE(MakeContext(filtered).SignatureFor(all), reference);

  // Different objective set (different dimensions).
  EXPECT_NE(SubplanKeyContext(base,
                              ObjectiveSet({Objective::kTotalTime,
                                            Objective::kEnergy}),
                              1.0, testing::SmallOperatorSpace(), true, true,
                              false, true)
                .SignatureFor(all),
            reference);

  // Different alpha bucket (bit-exact).
  EXPECT_NE(MakeContext(base, 1.25).SignatureFor(all), reference);

  // A join predicate *outside* the set that touches a member on a new
  // column changes the member's scan space, hence its signature.
  Query extended = MakeChainQuery(&catalog, 0, 2);
  const int extra = extended.AddTable("r3");
  extended.AddJoin(0, "j", extra, "j");
  EXPECT_NE(MakeContext(extended).SignatureFor(TableSet(0b0111)), reference);

  // ... while an outside join on an already-incident column does not (the
  // scan space is unchanged, so sharing is sound and desirable).
  Query benign = MakeChainQuery(&catalog, 0, 2);
  const int extra2 = benign.AddTable("r3");
  benign.AddJoin(0, "k", extra2, "k");
  EXPECT_EQ(MakeContext(benign).SignatureFor(TableSet(0b0111)), reference);
}

// ---------------------------------------------------------------------------
// Memo container semantics.

class SubplanMemoDpTest : public ::testing::Test {
 protected:
  SubplanMemoDpTest()
      : catalog_(MakeChainCatalog(6)),
        objectives_(ThreeObjectives()),
        registry_(testing::SmallOperatorSpace()) {}

  /// Runs the DP over `query`, returning per-mask frontiers; `memo` may be
  /// null (memo-off reference).
  std::vector<std::vector<CostVector>> RunDp(const Query& query,
                                             SubplanMemo* memo, DPStats* stats,
                                             double alpha = 1.0,
                                             int parallelism = 1,
                                             ThreadPool* pool = nullptr) {
    CostModel model(&query, &registry_, objectives_);
    Arena arena;
    DPPlanGenerator generator(&model, &registry_, &arena);
    DPOptions options;
    options.alpha = alpha;
    options.subplan_memo = memo;
    options.parallelism = parallelism;
    options.pool = pool;
    generator.Run(query, options);
    std::vector<std::vector<CostVector>> frontiers;
    const uint64_t all = query.AllTables().mask();
    for (uint64_t mask = 1; mask <= all; ++mask) {
      frontiers.push_back(generator.SetFor(TableSet(mask)).Frontier());
    }
    if (stats != nullptr) *stats = generator.stats();
    return frontiers;
  }

  Catalog catalog_;
  ObjectiveSet objectives_;
  OperatorRegistry registry_;
};

TEST_F(SubplanMemoDpTest, ColdRunByteIdenticalWithMemoOnOrOff) {
  const Query query = MakeChainQuery(&catalog_, 0, 4);
  DPStats off_stats, on_stats;
  const auto off = RunDp(query, nullptr, &off_stats);
  SubplanMemo memo;
  const auto on = RunDp(query, &memo, &on_stats);
  EXPECT_EQ(on, off);
  EXPECT_EQ(on_stats.considered_plans, off_stats.considered_plans);
  EXPECT_EQ(on_stats.inserted_plans, off_stats.inserted_plans);
  EXPECT_EQ(on_stats.memo_hits, 0);
  EXPECT_GT(on_stats.memo_publishes, 0);
  EXPECT_EQ(memo.GetStats().insertions,
            static_cast<uint64_t>(on_stats.memo_publishes));
}

TEST_F(SubplanMemoDpTest, WarmRunByteIdenticalAndCheaper) {
  const Query query = MakeChainQuery(&catalog_, 0, 4);
  SubplanMemo memo;
  DPStats cold_stats, warm_stats;
  const auto cold = RunDp(query, &memo, &cold_stats);
  const auto warm = RunDp(query, &memo, &warm_stats);
  EXPECT_EQ(warm, cold);
  // Every probed set hits, so the DP skips their candidate enumeration.
  EXPECT_EQ(warm_stats.memo_misses, 0);
  EXPECT_EQ(warm_stats.memo_hits, cold_stats.memo_publishes);
  EXPECT_LT(warm_stats.considered_plans, cold_stats.considered_plans);
}

TEST_F(SubplanMemoDpTest, OverlappingQueriesShareAndStayIdentical) {
  // Sliding chains share every connected subset of the window overlap; the
  // shared sub-frontiers live at *different local indices* in each query,
  // exercising the dense-rank rebasing in both directions.
  SubplanMemo::Options options;
  options.min_tables = 2;
  SubplanMemo memo(options);
  const Query a = MakeChainQuery(&catalog_, 0, 3);
  const Query b = MakeChainQuery(&catalog_, 1, 4);

  DPStats a_stats;
  RunDp(a, &memo, &a_stats);
  EXPECT_EQ(a_stats.memo_hits, 0);

  DPStats warm_b_stats;
  const auto warm_b = RunDp(b, &memo, &warm_b_stats);
  // Shared connected subsets of {r1,r2,r3}: {r1,r2}, {r2,r3}, {r1,r2,r3}.
  EXPECT_EQ(warm_b_stats.memo_hits, 3);

  DPStats off_stats;
  const auto off_b = RunDp(b, nullptr, &off_stats);
  EXPECT_EQ(warm_b, off_b);
  EXPECT_LT(warm_b_stats.considered_plans, off_stats.considered_plans);
}

TEST_F(SubplanMemoDpTest, ApproximatePruningWarmRunsStayIdentical) {
  // The byte-identity claim is strongest under approximate pruning, where
  // the sealed frontier depends on insertion order: a reused entry must
  // reproduce exactly what a local build would have produced.
  const double alpha = 1.1;
  SubplanMemo::Options options;
  options.min_tables = 2;
  SubplanMemo memo(options);
  const Query a = MakeChainQuery(&catalog_, 0, 4);
  const Query b = MakeChainQuery(&catalog_, 1, 5);

  DPStats stats;
  RunDp(a, &memo, &stats, alpha);
  const auto warm_b = RunDp(b, &memo, &stats, alpha);
  const auto off_b = RunDp(b, nullptr, &stats, alpha);
  EXPECT_EQ(warm_b, off_b);
  // Different alpha must not share entries.
  DPStats other_alpha_stats;
  RunDp(b, &memo, &other_alpha_stats, 1.2);
  EXPECT_EQ(other_alpha_stats.memo_hits, 0);
}

TEST_F(SubplanMemoDpTest, ParallelWarmRunMatchesSerialMemoOff) {
  SubplanMemo memo;
  ThreadPool pool(3);
  const Query a = MakeChainQuery(&catalog_, 0, 4);
  const Query b = MakeChainQuery(&catalog_, 1, 5);
  DPStats stats;
  RunDp(a, &memo, &stats, 1.0, /*parallelism=*/4, &pool);
  DPStats warm_stats;
  const auto warm_parallel =
      RunDp(b, &memo, &warm_stats, 1.0, /*parallelism=*/4, &pool);
  EXPECT_GT(warm_stats.memo_hits, 0);
  const auto serial_off = RunDp(b, nullptr, &stats);
  EXPECT_EQ(warm_parallel, serial_off);
}

TEST_F(SubplanMemoDpTest, MinTablesGatesProbesAndPublishes) {
  SubplanMemo::Options options;
  options.min_tables = 4;
  SubplanMemo memo(options);
  const Query query = MakeChainQuery(&catalog_, 0, 4);  // 5 tables.
  DPStats stats;
  RunDp(query, &memo, &stats);
  // Chain of 5: connected sets of size 4 and 5 are 2 + 1.
  EXPECT_EQ(stats.memo_publishes, 3);
  EXPECT_EQ(memo.size(), 3u);
}

TEST_F(SubplanMemoDpTest, ByteBudgetEvictsLru) {
  SubplanMemo::Options options;
  options.capacity_bytes = 6 << 10;  // Far below one chain's footprint.
  options.shards = 1;
  options.min_tables = 2;
  SubplanMemo memo(options);
  const Query query = MakeChainQuery(&catalog_, 0, 5);
  DPStats stats;
  RunDp(query, &memo, &stats);
  // Every entry exceeds the tiny budget on its own (a PlanSet reserves at
  // least one arena block), so each insert sheds all colder entries; the
  // budget bounds the resident population, not a single oversized entry.
  const SubplanMemo::Stats memo_stats = memo.GetStats();
  EXPECT_GT(memo_stats.evictions, 0u);
  EXPECT_LT(memo_stats.entries, memo_stats.insertions);
}

TEST_F(SubplanMemoDpTest, AdmissionEpsilonRejectsDenseFrontiers) {
  // At a huge epsilon almost any multi-plan frontier has a covered member,
  // so publishes are refused; single-plan frontiers always pass.
  SubplanMemo::Options options;
  options.admission_epsilon = 1e6;
  options.min_tables = 2;
  SubplanMemo memo(options);
  const Query query = MakeChainQuery(&catalog_, 0, 3);
  DPStats stats;
  RunDp(query, &memo, &stats);
  EXPECT_GT(memo.GetStats().admission_rejects, 0u);
}

TEST_F(SubplanMemoDpTest, MaxEntryPlansCapsPublishedFrontiers) {
  SubplanMemo::Options options;
  options.max_entry_plans = 1;
  options.min_tables = 2;
  SubplanMemo memo(options);
  const Query query = MakeChainQuery(&catalog_, 0, 3);
  DPStats stats;
  RunDp(query, &memo, &stats);
  const SubplanMemo::Stats memo_stats = memo.GetStats();
  EXPECT_EQ(memo_stats.frontier_plans, memo_stats.entries);
}

TEST_F(SubplanMemoDpTest, EpochChangeFlushesOnce) {
  SubplanMemo memo;
  memo.ObserveCatalog(&catalog_, 7);
  const Query query = MakeChainQuery(&catalog_, 0, 4);
  DPStats stats;
  RunDp(query, &memo, &stats);
  ASSERT_GT(memo.size(), 0u);
  EXPECT_EQ(memo.GetStats().invalidations, 0u);  // First sighting: adopted.

  // A *different* catalog identity showing up must not flush: entries are
  // content-keyed, and a service juggling two catalogs would otherwise
  // thrash the memo on every alternation.
  Catalog other = MakeChainCatalog(3);
  memo.ObserveCatalog(&other, 99);
  EXPECT_GT(memo.size(), 0u);
  EXPECT_EQ(memo.GetStats().invalidations, 0u);

  memo.ObserveCatalog(&catalog_, 8);
  EXPECT_EQ(memo.size(), 0u);
  EXPECT_EQ(memo.GetStats().invalidations, 1u);
  memo.ObserveCatalog(&catalog_, 8);  // Unchanged: no further flush.
  EXPECT_EQ(memo.GetStats().invalidations, 1u);

  // After the flush the warm query misses everything again.
  DPStats refill_stats;
  RunDp(query, &memo, &refill_stats);
  EXPECT_EQ(refill_stats.memo_hits, 0);
  EXPECT_GT(refill_stats.memo_publishes, 0);
}

TEST_F(SubplanMemoDpTest, ConcurrentDpRunsShareMemoSafely) {
  // Four threads hammer one memo with overlapping sliding chains; TSan
  // (CI) verifies the sharing is race-free, and every thread's final
  // frontier must match its memo-off reference.
  SubplanMemo memo;
  std::vector<std::vector<std::vector<CostVector>>> reference(4);
  for (int t = 0; t < 4; ++t) {
    const Query query = MakeChainQuery(&catalog_, t % 2, 4 + t % 2);
    reference[t] = RunDp(query, nullptr, nullptr);
  }
  std::vector<std::thread> threads;
  std::vector<std::vector<std::vector<CostVector>>> results(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([this, t, &memo, &results] {
      for (int rep = 0; rep < 3; ++rep) {
        const Query query = MakeChainQuery(&catalog_, t % 2, 4 + t % 2);
        results[t] = RunDp(query, &memo, nullptr);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < 4; ++t) {
    EXPECT_EQ(results[t], reference[t]) << "thread " << t;
  }
  EXPECT_GT(memo.GetStats().hits, 0u);
}

}  // namespace
}  // namespace moqo
