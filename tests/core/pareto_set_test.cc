// Tests for ParetoSet pruning — including a randomized cross-check of the
// block-summary/tombstone implementation against a naive reference
// implementation of Algorithm 1/2's Prune.

#include "core/pareto_set.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <set>

#include "core/dominance_kernel.h"
#include "testing/test_helpers.h"
#include "util/arena.h"
#include "util/random.h"

namespace moqo {
namespace {

PlanNode* MakePlan(Arena* arena, std::initializer_list<double> values) {
  PlanNode* plan = arena->New<PlanNode>();
  plan->cost = CostVector(static_cast<int>(values.size()));
  int i = 0;
  for (double v : values) plan->cost[i++] = v;
  return plan;
}

/// Naive reference: exactly the paper's pseudo-code, no acceleration.
class ReferenceParetoSet {
 public:
  bool Prune(const PlanNode* plan, const ParetoSet::PruneOptions& options) {
    for (const PlanNode* stored : plans_) {
      const bool rejects =
          options.alpha <= 1.0
              ? Dominates(stored->cost, plan->cost)
              : ApproxDominates(stored->cost, plan->cost, options.alpha);
      if (rejects) return false;
    }
    std::erase_if(plans_, [&](const PlanNode* stored) {
      return Dominates(plan->cost, stored->cost);
    });
    plans_.push_back(plan);
    return true;
  }
  std::vector<const PlanNode*> plans_;
};

TEST(ParetoSetTest, KeepsIncomparablePlans) {
  Arena arena;
  ParetoSet set;
  EXPECT_TRUE(set.Prune(MakePlan(&arena, {1, 4})));
  EXPECT_TRUE(set.Prune(MakePlan(&arena, {4, 1})));
  EXPECT_TRUE(set.Prune(MakePlan(&arena, {2, 2})));
  EXPECT_EQ(set.size(), 3);
}

TEST(ParetoSetTest, RejectsDominatedInsertions) {
  Arena arena;
  ParetoSet set;
  EXPECT_TRUE(set.Prune(MakePlan(&arena, {1, 1})));
  EXPECT_FALSE(set.Prune(MakePlan(&arena, {2, 2})));
  EXPECT_FALSE(set.Prune(MakePlan(&arena, {1, 1})));  // Equal = dominated.
  EXPECT_EQ(set.size(), 1);
}

TEST(ParetoSetTest, DeletesDominatedResidents) {
  Arena arena;
  ParetoSet set;
  set.Prune(MakePlan(&arena, {3, 3}));
  set.Prune(MakePlan(&arena, {4, 2}));
  set.Prune(MakePlan(&arena, {1, 1}));  // Dominates both.
  EXPECT_EQ(set.size(), 1);
  set.Seal();
  EXPECT_EQ(set.cost_at(0)[0], 1);
}

TEST(ParetoSetTest, ApproximatePruningRejectsNearDuplicates) {
  Arena arena;
  ParetoSet set;
  ParetoSet::PruneOptions rta{1.5, false};
  EXPECT_TRUE(set.Prune(MakePlan(&arena, {10, 10}), rta));
  // Within factor 1.5 in every dimension: approximately dominated.
  EXPECT_FALSE(set.Prune(MakePlan(&arena, {14, 12}), rta));
  // Outside: 10 > 1.5 * 6 fails, so the stored plan does not 1.5-dominate.
  EXPECT_TRUE(set.Prune(MakePlan(&arena, {6, 30}), rta));
  EXPECT_EQ(set.size(), 2);
}

TEST(ParetoSetTest, ApproximateDeletionStillExact) {
  // The paper's warning (Section 6.2): deletion must use plain dominance.
  // Newcomer (4, 12) with alpha = 2:
  //   - survives insertion: (10,10) does not 2-dominate it (10 > 2*4);
  //   - 2-dominates the resident (4 <= 20, 12 <= 20);
  //   - does NOT plainly dominate it (12 > 10).
  // Default rule: both must stay.
  Arena arena;
  ParetoSet set;
  ParetoSet::PruneOptions rta{2.0, false};
  set.Prune(MakePlan(&arena, {10, 10}), rta);
  EXPECT_TRUE(set.Prune(MakePlan(&arena, {4, 12}), rta));
  EXPECT_EQ(set.size(), 2);
  // (6, 4): not 2-dominated by either resident (10 > 2*4 and 12 > 2*4 in
  // dim 1), plainly dominates (10,10), but not (4,12) — so the insert
  // replaces exactly one resident.
  EXPECT_TRUE(set.Prune(MakePlan(&arena, {6, 4}), rta));
  set.Seal();
  std::set<double> first_components;
  for (int i = 0; i < set.size(); ++i) {
    first_components.insert(set.cost_at(i)[0]);
  }
  EXPECT_EQ(first_components, (std::set<double>{4, 6}));
}

TEST(ParetoSetTest, AggressiveDeleteRemovesApproxDominated) {
  // Same (10,10) / (4,12) pair: the ablation rule deletes the resident the
  // newcomer approximately dominates, shrinking the set to 1.
  Arena arena;
  ParetoSet set;
  ParetoSet::PruneOptions ablation{2.0, true};
  set.Prune(MakePlan(&arena, {10, 10}), ablation);
  EXPECT_TRUE(set.Prune(MakePlan(&arena, {4, 12}), ablation));
  EXPECT_EQ(set.size(), 1);
}

TEST(ParetoSetTest, SelectBestRespectsBoundsWithFallback) {
  Arena arena;
  ParetoSet set;
  const PlanNode* cheap = MakePlan(&arena, {1, 100});
  const PlanNode* bounded = MakePlan(&arena, {50, 10});
  set.Prune(cheap);
  set.Prune(bounded);
  WeightVector w = WeightVector::Uniform(2);
  BoundVector bounds(2);
  bounds[1] = 20;  // Excludes `cheap`.
  EXPECT_EQ(set.SelectBest(w, bounds), bounded);
  // Without bounds, total weighted cost decides: 101 vs 60 -> bounded.
  EXPECT_EQ(set.SelectBestWeighted(w), bounded);
  // Infeasible bounds: fall back to weighted best among all.
  BoundVector impossible(2);
  impossible[0] = 0.5;
  EXPECT_EQ(set.SelectBest(w, impossible), bounded);
}

TEST(ParetoSetTest, EmptySetBehaviour) {
  ParetoSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.SelectBestWeighted(WeightVector::Uniform(2)), nullptr);
  EXPECT_TRUE(set.Frontier().empty());
}

TEST(ParetoSetTest, NoStoredPlanStrictlyDominatesAnother) {
  Arena arena;
  Xoshiro256 rng(5);
  ParetoSet set;
  for (int i = 0; i < 2000; ++i) {
    PlanNode* plan = arena.New<PlanNode>();
    plan->cost = testing::RandomCostVector(&rng, 3, 100);
    set.Prune(plan);
  }
  set.Seal();
  for (int i = 0; i < set.size(); ++i) {
    for (int j = 0; j < set.size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(StrictlyDominates(set.cost_at(i), set.cost_at(j)))
          << i << " dominates " << j;
    }
  }
}

TEST(ParetoSetTest, SealCompactsTombstonesAcrossBlocks) {
  // 100 mutually incomparable plans span four blocks; a final dominator
  // tombstones all of them, and Seal must leave exactly the survivor with
  // consistent dense accessors.
  Arena arena;
  ParetoSet set;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        set.Prune(MakePlan(&arena, {1.0 + i, 100.0 - i})));
  }
  EXPECT_EQ(set.size(), 100);
  EXPECT_TRUE(set.Prune(MakePlan(&arena, {0.5, 0.5})));
  EXPECT_EQ(set.size(), 1);
  set.Seal();
  ASSERT_EQ(set.plans().size(), 1u);
  EXPECT_EQ(set.cost_at(0)[0], 0.5);
  EXPECT_EQ(set.cost_at(0)[1], 0.5);
  EXPECT_EQ(set.at(0)->cost[0], 0.5);
}

TEST(ParetoSetTest, BlockSummariesSurviveCrossBlockDeletion) {
  // Delete from a *middle* block only (one row dominated there), then
  // verify the summaries still reject/accept candidates correctly: a
  // candidate dominated by a neighbouring survivor is rejected, a
  // candidate in the freed region is accepted.
  Arena arena;
  ParetoSet set;
  for (int i = 0; i < 96; ++i) {
    ASSERT_TRUE(set.Prune(MakePlan(&arena, {10.0 + i, 200.0 - i})));
  }
  // Dominates the i=40 row (50, 160) and the i=41 row (51, 159) in the
  // middle block.
  EXPECT_TRUE(set.Prune(MakePlan(&arena, {50, 159})));
  EXPECT_EQ(set.size(), 95);
  ParetoSet::PruneOptions exact;
  // (50, 160) is now dominated by the stored (50, 159).
  CostVector dominated(2);
  dominated[0] = 50;
  dominated[1] = 160;
  EXPECT_FALSE(set.WouldInsert(dominated, exact));
  // (9, 300): nothing dominates it (all first components >= 10).
  CostVector fresh(2);
  fresh[0] = 9;
  fresh[1] = 300;
  EXPECT_TRUE(set.WouldInsert(fresh, exact));
}

TEST(ParetoSetTest, SealedOrderIsInsertionOrderOfSurvivors) {
  Arena arena;
  ParetoSet set;
  set.Prune(MakePlan(&arena, {5, 5}));
  set.Prune(MakePlan(&arena, {1, 9}));
  set.Prune(MakePlan(&arena, {9, 1}));
  set.Seal();
  ASSERT_EQ(set.size(), 3);
  EXPECT_EQ(set.cost_at(0)[0], 5);
  EXPECT_EQ(set.cost_at(1)[0], 1);
  EXPECT_EQ(set.cost_at(2)[0], 9);
}

TEST(ParetoSetTest, ClearResetsForReuseWithDifferentDims) {
  Arena arena;
  ParetoSet set;
  set.Prune(MakePlan(&arena, {1, 2, 3}));
  EXPECT_EQ(set.size(), 1);
  set.clear();
  EXPECT_TRUE(set.empty());
  // Re-use with a different dimensionality must work after clear().
  set.Prune(MakePlan(&arena, {4, 4}));
  set.Seal();
  ASSERT_EQ(set.size(), 1);
  EXPECT_EQ(set.cost_at(0).size(), 2);
}

TEST(ParetoSetTest, MemoryBytesGrowsWithInsertions) {
  Arena arena;
  ParetoSet set;
  const size_t empty_bytes = set.MemoryBytes();
  for (int i = 0; i < 64; ++i) {
    set.Prune(MakePlan(&arena, {1.0 + i, 100.0 - i}));
  }
  EXPECT_GT(set.MemoryBytes(), empty_bytes);
}

// The randomized cross-check: the optimized implementation must keep
// exactly the same plan set as the naive pseudo-code, for exact and
// approximate pruning, across dimensions — sweeping insert counts large
// enough to exercise blocks, tombstones, and compaction.
class ParetoSetCrossCheck
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(ParetoSetCrossCheck, MatchesReferenceImplementation) {
  const int dims = std::get<0>(GetParam());
  const double alpha = std::get<1>(GetParam());
  Arena arena;
  Xoshiro256 rng(1000 + dims * 10 + static_cast<int>(alpha * 100));
  ParetoSet fast;
  ReferenceParetoSet reference;
  const ParetoSet::PruneOptions options{alpha, false};
  for (int i = 0; i < 3000; ++i) {
    PlanNode* plan = arena.New<PlanNode>();
    // Low-resolution grid so duplicates/dominance chains are common.
    plan->cost = CostVector(dims);
    for (int d = 0; d < dims; ++d) {
      plan->cost[d] = static_cast<double>(rng.NextInt(uint64_t{40}));
    }
    const bool kept_fast = fast.Prune(plan, options);
    const bool kept_ref = reference.Prune(plan, options);
    ASSERT_EQ(kept_fast, kept_ref) << "insert " << i;
    ASSERT_EQ(fast.size(), static_cast<int>(reference.plans_.size()))
        << "insert " << i;
  }
  // Same multiset of cost vectors.
  fast.Seal();
  auto key = [](const CostVector& c) {
    std::string k;
    for (int d = 0; d < c.size(); ++d) {
      k += std::to_string(c[d]) + ",";
    }
    return k;
  };
  std::multiset<std::string> fast_keys, ref_keys;
  for (int i = 0; i < fast.size(); ++i) fast_keys.insert(key(fast.cost_at(i)));
  for (const PlanNode* p : reference.plans_) ref_keys.insert(key(p->cost));
  EXPECT_EQ(fast_keys, ref_keys);
}

INSTANTIATE_TEST_SUITE_P(
    DimsAndAlphas, ParetoSetCrossCheck,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 9),
                       ::testing::Values(1.0, 1.05, 1.5)),
    [](const ::testing::TestParamInfo<std::tuple<int, double>>& info) {
      return "dims" + std::to_string(std::get<0>(info.param)) + "_alpha" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 100));
    });

// The SIMD dominance kernel must agree with the scalar reference on every
// input the scans feed it: random finite rows of every active dimension
// count, equal rows, and the +/-inf block-summary sentinels. (The
// randomized cross-check above additionally validates whatever kernel the
// dispatcher picked end-to-end against the naive pseudo-code.)
TEST(DominanceKernelTest, DispatchAgreesWithScalar) {
  Xoshiro256 rng(99);
  const double inf = std::numeric_limits<double>::infinity();
  for (int dims = 1; dims <= kNumObjectives; ++dims) {
    for (int i = 0; i < 2000; ++i) {
      double a[kNumObjectives], b[kNumObjectives];
      for (int d = 0; d < dims; ++d) {
        // Coarse grid: ties (the a[d] == b[d] boundary) are common.
        a[d] = static_cast<double>(rng.NextInt(uint64_t{6}));
        b[d] = static_cast<double>(rng.NextInt(uint64_t{6}));
        if (rng.NextInt(uint64_t{10}) == 0) a[d] = inf;   // Dead-block min.
        if (rng.NextInt(uint64_t{10}) == 0) b[d] = -inf;  // Dead-block max.
      }
      const bool scalar = RowLeqScalar(a, b, dims);
      ASSERT_EQ(RowLeq(a, b, dims), scalar) << "dims " << dims;
#if MOQO_DOMINANCE_AVX2
      if (RowLeqKernelIsAvx2()) {
        ASSERT_EQ(RowLeqAvx2(a, b, dims), scalar) << "dims " << dims;
      }
#endif
    }
  }
}

TEST(ParetoSetTest, LoadSealedReproducesSealedState) {
  Arena arena;
  ParetoSet built;
  std::vector<const PlanNode*> survivors;
  Xoshiro256 rng(7);
  for (int i = 0; i < 200; ++i) {
    PlanNode* plan = arena.New<PlanNode>();
    plan->cost = testing::RandomCostVector(&rng, 3);
    built.Prune(plan, ParetoSet::PruneOptions{1.1, false});
  }
  built.Seal();
  for (int i = 0; i < built.size(); ++i) survivors.push_back(built.at(i));

  ParetoSet loaded;
  loaded.LoadSealed(survivors);
  ASSERT_EQ(loaded.size(), built.size());
  for (int i = 0; i < built.size(); ++i) {
    EXPECT_EQ(loaded.at(i), built.at(i));
    EXPECT_EQ(loaded.cost_at(i), built.cost_at(i));
  }
  EXPECT_EQ(loaded.Frontier(), built.Frontier());
}

}  // namespace
}  // namespace moqo
