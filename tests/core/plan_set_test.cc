// Copyright (c) 2026 moqo authors. MIT license.
//
// PlanSet: snapshot semantics (ownership, DAG sharing) and the SelectPlan
// scalarization, cross-checked against ParetoSet::SelectBest.

#include "core/plan_set.h"

#include <memory>

#include <gtest/gtest.h>

#include "core/exa.h"
#include "testing/test_helpers.h"

namespace moqo {
namespace {

/// Builds a tiny 2-D frontier of synthetic scan plans with the given cost
/// vectors inside `arena`.
ParetoSet BuildSet(Arena* arena,
                   const std::vector<std::pair<double, double>>& costs) {
  ParetoSet set;
  int table = 0;
  for (const auto& [a, b] : costs) {
    PlanNode* plan = arena->New<PlanNode>();
    plan->table = table++;
    plan->cost = CostVector(2);
    plan->cost[0] = a;
    plan->cost[1] = b;
    set.Prune(plan);
  }
  set.Seal();
  return set;
}

TEST(PlanSetTest, SnapshotsCostsAndPlans) {
  Arena arena;
  ParetoSet source = BuildSet(&arena, {{1, 4}, {2, 2}, {4, 1}});
  std::shared_ptr<const PlanSet> set = PlanSet::FromParetoSet(source);
  ASSERT_EQ(set->size(), 3);
  EXPECT_FALSE(set->empty());
  for (int i = 0; i < set->size(); ++i) {
    ASSERT_NE(set->plan(i), nullptr);
    EXPECT_EQ(set->plan(i)->cost, set->cost(i));
    EXPECT_EQ(set->cost(i), source.cost_at(i));
  }
  EXPECT_EQ(set->costs(), source.Frontier());
}

TEST(PlanSetTest, OutlivesSourceArena) {
  std::shared_ptr<const PlanSet> set;
  {
    Arena arena;
    ParetoSet source = BuildSet(&arena, {{1, 2}, {2, 1}});
    set = PlanSet::FromParetoSet(source);
  }  // Source arena and set destroyed; the snapshot owns its plans.
  ASSERT_EQ(set->size(), 2);
  EXPECT_EQ(set->plan(0)->cost[0], 1.0);
  EXPECT_EQ(set->plan(1)->cost[1], 1.0);
}

TEST(PlanSetTest, EmptySetSharedSingleton) {
  ParetoSet empty;
  std::shared_ptr<const PlanSet> a = PlanSet::FromParetoSet(empty);
  std::shared_ptr<const PlanSet> b = PlanSet::Empty();
  EXPECT_EQ(a.get(), b.get());
  EXPECT_TRUE(a->empty());
  const PlanSelection selection =
      SelectPlan(*a, WeightVector::Uniform(2));
  EXPECT_EQ(selection.plan, nullptr);
  EXPECT_EQ(selection.index, -1);
}

TEST(PlanSetTest, DeepCopyPreservesDagSharing) {
  // Two frontier plans joining the same sub-plan: the copy must reference
  // one shared copy of the sub-plan, not two clones.
  Arena arena;
  PlanNode* shared_scan = arena.New<PlanNode>();
  shared_scan->table = 0;
  shared_scan->cost = CostVector(2);

  ParetoSet source;
  for (int i = 0; i < 2; ++i) {
    PlanNode* other = arena.New<PlanNode>();
    other->table = 1 + i;
    other->cost = CostVector(2);
    PlanNode* join = arena.New<PlanNode>();
    join->left = shared_scan;
    join->right = other;
    join->cost = CostVector(2);
    join->cost[0] = i == 0 ? 1 : 3;
    join->cost[1] = i == 0 ? 3 : 1;
    source.Prune(join);
  }
  source.Seal();
  ASSERT_EQ(source.size(), 2);

  std::shared_ptr<const PlanSet> set = PlanSet::FromParetoSet(source);
  ASSERT_EQ(set->size(), 2);
  EXPECT_NE(set->plan(0), source.at(0));  // Actually copied...
  EXPECT_EQ(set->plan(0)->left, set->plan(1)->left);  // ...sharing intact.
}

TEST(PlanSetTest, SelectPlanMatchesParetoSetSelectBest) {
  Catalog catalog = testing::MakeTinyCatalog();
  Query query = testing::MakeStarQuery(&catalog, 3);
  MOQOProblem problem;
  problem.query = &query;
  problem.objectives = ObjectiveSet(
      {Objective::kTotalTime, Objective::kBufferFootprint,
       Objective::kTupleLoss});
  problem.weights = WeightVector::Uniform(3);
  OptimizerResult result =
      ExactMOQO(testing::SmallOptions()).Optimize(problem);
  ASSERT_GE(result.frontier_size(), 1);

  Xoshiro256 rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    WeightVector weights(3);
    for (int i = 0; i < 3; ++i) weights[i] = rng.NextDouble();
    BoundVector bounds = BoundVector::Unbounded(3);
    if (trial % 2 == 1) {
      // Bound one dimension at a random frontier plan's cost.
      const int anchor = static_cast<int>(
          rng.NextInt(static_cast<uint64_t>(result.frontier_size())));
      bounds[trial % 3] = result.plan_set->cost(anchor)[trial % 3];
    }
    const PlanSelection selection =
        SelectPlan(*result.plan_set, weights, bounds);
    ASSERT_NE(selection.plan, nullptr);
    // Reference: brute-force over the same frontier with SelectBest
    // semantics (bounded min weighted cost, else global min).
    double best_bounded = -1, best_any = -1;
    for (int i = 0; i < result.plan_set->size(); ++i) {
      const double weighted =
          weights.WeightedCost(result.plan_set->cost(i));
      if (best_any < 0 || weighted < best_any) best_any = weighted;
      if (bounds.Respects(result.plan_set->cost(i)) &&
          (best_bounded < 0 || weighted < best_bounded)) {
        best_bounded = weighted;
      }
    }
    const double expected = best_bounded >= 0 ? best_bounded : best_any;
    EXPECT_DOUBLE_EQ(selection.weighted_cost, expected) << "trial " << trial;
    EXPECT_EQ(selection.weighted_cost,
              weights.WeightedCost(selection.cost));
    EXPECT_EQ(selection.plan, result.plan_set->plan(selection.index));
  }
}

TEST(PlanSetTest, CompactPlanSetCoversDroppedPlans) {
  // A dense 2-D frontier; after compaction with slack 0.25, every original
  // plan must be (1.25)-approximately dominated by a kept plan — the
  // epsilon-coverage property the cache relies on.
  Arena arena;
  std::vector<std::pair<double, double>> costs;
  for (int i = 0; i <= 40; ++i) {
    costs.push_back({10.0 + i, 50.0 - i});
  }
  ParetoSet source = BuildSet(&arena, costs);
  std::shared_ptr<const PlanSet> full = PlanSet::FromParetoSet(source);
  ASSERT_EQ(full->size(), 41);

  const double epsilon = 0.25;
  std::shared_ptr<const PlanSet> compact =
      CompactPlanSet(full, epsilon, /*max_size=*/0);
  ASSERT_NE(compact, nullptr);
  EXPECT_LT(compact->size(), full->size());
  for (int i = 0; i < full->size(); ++i) {
    bool covered = false;
    for (int k = 0; k < compact->size(); ++k) {
      if (ApproxDominates(compact->cost(k), full->cost(i), 1.0 + epsilon)) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << "plan " << i << " uncovered";
  }
  // The compacted set owns its plans: costs stay index-aligned.
  for (int k = 0; k < compact->size(); ++k) {
    ASSERT_NE(compact->plan(k), nullptr);
    EXPECT_EQ(compact->plan(k)->cost, compact->cost(k));
  }
}

TEST(PlanSetTest, CompactPlanSetHonorsMaxSize) {
  Arena arena;
  std::vector<std::pair<double, double>> costs;
  for (int i = 0; i <= 60; ++i) {
    costs.push_back({10.0 + i, 80.0 - i});
  }
  std::shared_ptr<const PlanSet> full =
      PlanSet::FromParetoSet(BuildSet(&arena, costs));
  std::shared_ptr<const PlanSet> compact =
      CompactPlanSet(full, 0.01, /*max_size=*/5);
  ASSERT_NE(compact, nullptr);
  EXPECT_LE(compact->size(), 5);
  EXPECT_GE(compact->size(), 1);
}

TEST(PlanSetTest, CompactPlanSetNoopWhenNothingDropped) {
  Arena arena;
  std::shared_ptr<const PlanSet> full =
      PlanSet::FromParetoSet(BuildSet(&arena, {{1, 9}, {9, 1}}));
  // Widely separated plans: slack 0.01 covers nothing, so the same object
  // comes back (no deep copy).
  std::shared_ptr<const PlanSet> compact = CompactPlanSet(full, 0.01, 0);
  EXPECT_EQ(compact.get(), full.get());
}

TEST(PlanSetTest, SelectPlanEmptyBoundsEqualsUnbounded) {
  Arena arena;
  ParetoSet source = BuildSet(&arena, {{1, 9}, {9, 1}});
  std::shared_ptr<const PlanSet> set = PlanSet::FromParetoSet(source);
  WeightVector weights(2);
  weights[0] = 1.0;
  weights[1] = 0.1;
  const PlanSelection no_bounds = SelectPlan(*set, weights);
  const PlanSelection unbounded =
      SelectPlan(*set, weights, BoundVector::Unbounded(2));
  EXPECT_EQ(no_bounds.plan, unbounded.plan);
  EXPECT_EQ(no_bounds.weighted_cost, unbounded.weighted_cost);
}

}  // namespace
}  // namespace moqo
