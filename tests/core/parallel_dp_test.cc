// Copyright (c) 2026 moqo authors. MIT license.
//
// The level-synchronous parallel DP engine: frontier determinism across
// thread counts (byte-for-byte identical memo contents — parallelism is
// across table sets, never within one set's insertion sequence), the
// approximation guarantee under parallel RTA pruning, timeout quick mode,
// the service-level parallelism override, and the cooperative
// ThreadPool::ParallelFor primitive underneath it all. Runs under TSan in
// CI (see .github/workflows/ci.yml).

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "core/dp_driver.h"
#include "core/exa.h"
#include "core/rta.h"
#include "frontier/frontier.h"
#include "service/optimization_service.h"
#include "testing/test_helpers.h"
#include "util/thread_pool.h"

namespace moqo {
namespace {

class ParallelDpTest : public ::testing::Test {
 protected:
  ParallelDpTest()
      : catalog_(testing::MakeTinyCatalog()),
        query_(testing::MakeStarQuery(&catalog_, 3)),
        objectives_({Objective::kTotalTime, Objective::kEnergy,
                     Objective::kBufferFootprint}),
        registry_(testing::SmallOperatorSpace()),
        model_(&query_, &registry_, objectives_) {}

  /// Runs the DP at the given parallelism and returns the frontier of
  /// every memoized table set, indexed by mask, plus the run's stats.
  std::vector<std::vector<CostVector>> RunFrontiers(int parallelism,
                                                    ThreadPool* pool,
                                                    double alpha,
                                                    DPStats* stats) {
    Arena arena;
    DPPlanGenerator generator(&model_, &registry_, &arena);
    DPOptions options;
    options.alpha = alpha;
    options.parallelism = parallelism;
    options.pool = pool;
    generator.Run(query_, options);
    std::vector<std::vector<CostVector>> frontiers;
    const uint64_t all = query_.AllTables().mask();
    for (uint64_t mask = 1; mask <= all; ++mask) {
      frontiers.push_back(generator.SetFor(TableSet(mask)).Frontier());
    }
    *stats = generator.stats();
    return frontiers;
  }

  Catalog catalog_;
  Query query_;
  ObjectiveSet objectives_;
  OperatorRegistry registry_;
  CostModel model_;
};

TEST_F(ParallelDpTest, FrontiersIdenticalAcrossThreadCounts) {
  DPStats serial_stats;
  const auto serial =
      RunFrontiers(/*parallelism=*/1, nullptr, /*alpha=*/1.0, &serial_stats);
  ThreadPool pool(3);
  for (int parallelism : {2, 4}) {
    DPStats stats;
    const auto parallel =
        RunFrontiers(parallelism, &pool, /*alpha=*/1.0, &stats);
    // Byte-for-byte: every table set's sealed frontier, in storage order.
    EXPECT_EQ(parallel, serial) << "parallelism " << parallelism;
    EXPECT_EQ(stats.considered_plans, serial_stats.considered_plans);
    EXPECT_EQ(stats.inserted_plans, serial_stats.inserted_plans);
    EXPECT_EQ(stats.complete_sets, serial_stats.complete_sets);
    EXPECT_EQ(stats.last_complete_set, serial_stats.last_complete_set);
    EXPECT_FALSE(stats.timed_out);
  }
}

TEST_F(ParallelDpTest, ApproximatePruningDeterministicAndCovering) {
  // Determinism holds for alpha > 1 too (same argument: per-set insertion
  // order is thread-count independent) ...
  const double alpha_u = 2.0;
  const double alpha_i = RTAInternalPrecision(alpha_u, query_.num_tables());
  DPStats serial_stats;
  const auto serial =
      RunFrontiers(/*parallelism=*/1, nullptr, alpha_i, &serial_stats);
  ThreadPool pool(3);
  DPStats stats;
  const auto parallel = RunFrontiers(/*parallelism=*/4, &pool, alpha_i,
                                     &stats);
  EXPECT_EQ(parallel, serial);

  // ... and on top of it the Theorem 3 guarantee: the parallel RTA
  // frontier alpha_U-covers the exact frontier of the full table set.
  DPStats exact_stats;
  const auto exact =
      RunFrontiers(/*parallelism=*/4, &pool, /*alpha=*/1.0, &exact_stats);
  EXPECT_EQ(FindUncoveredVector(parallel.back(), exact.back(), alpha_u),
            std::nullopt);
}

TEST_F(ParallelDpTest, StatsAggregationAcrossSlotsLosesNoUpdates) {
  // PR 6 audit: during a fanned-out level every slot counts into its own
  // padded DPStats block and the barrier merges them. A lost update would
  // surface as a considered/inserted undercount against the serial run;
  // a sharing bug would trip the TSan job this file runs under in CI.
  DPStats serial_stats;
  RunFrontiers(/*parallelism=*/1, nullptr, /*alpha=*/1.0, &serial_stats);
  EXPECT_EQ(serial_stats.parallel_levels, 0);
  EXPECT_EQ(serial_stats.barrier_wait_us, 0);

  ThreadPool pool(4);
  for (int repeat = 0; repeat < 3; ++repeat) {
    DPStats stats;
    RunFrontiers(/*parallelism=*/4, &pool, /*alpha=*/1.0, &stats);
    EXPECT_EQ(stats.considered_plans, serial_stats.considered_plans)
        << "repeat " << repeat;
    EXPECT_EQ(stats.inserted_plans, serial_stats.inserted_plans)
        << "repeat " << repeat;
    // Both multi-set levels of the 4-table star fan out, and the
    // finished-but-waiting attribution never goes negative.
    EXPECT_GE(stats.parallel_levels, 2);
    EXPECT_GE(stats.barrier_wait_us, 0);
  }
}

TEST_F(ParallelDpTest, OptimizerParallelMatchesSerial) {
  MOQOProblem problem;
  problem.query = &query_;
  problem.objectives = objectives_;
  problem.weights = WeightVector::Uniform(3);

  OptimizerResult serial =
      ExactMOQO(testing::SmallOptions()).Optimize(problem);

  ThreadPool pool(3);
  OptimizerOptions parallel_options = testing::SmallOptions();
  parallel_options.parallelism = 4;
  parallel_options.dp_pool = &pool;
  OptimizerResult parallel = ExactMOQO(parallel_options).Optimize(problem);

  ASSERT_NE(parallel.plan, nullptr);
  EXPECT_EQ(parallel.frontier(), serial.frontier());
  EXPECT_EQ(parallel.cost, serial.cost);
  EXPECT_DOUBLE_EQ(parallel.weighted_cost, serial.weighted_cost);
  EXPECT_EQ(parallel.metrics.considered_plans,
            serial.metrics.considered_plans);
}

TEST_F(ParallelDpTest, ParallelTimeoutStillYieldsPlan) {
  MOQOProblem problem;
  problem.query = &query_;
  problem.objectives = objectives_;
  problem.weights = WeightVector::Uniform(3);

  ThreadPool pool(3);
  OptimizerOptions options = testing::SmallOptions();
  options.parallelism = 4;
  options.dp_pool = &pool;
  options.timeout_ms = 0;  // Already expired: Section 5.1 quick mode.
  OptimizerResult result = RTAOptimizer(options).Optimize(problem);
  ASSERT_NE(result.plan, nullptr);
  EXPECT_TRUE(result.metrics.timed_out);
  EXPECT_EQ(result.plan->tables, query_.AllTables());
}

TEST_F(ParallelDpTest, ServiceParallelismOverrideMatchesSerial) {
  ServiceOptions options;
  options.num_workers = 2;
  options.num_dp_helpers = 2;
  options.enable_cache = false;  // Force both requests through the DP.
  options.operators = testing::SmallOperatorSpace();
  OptimizationService service(options);

  ServiceRequest request;
  request.spec.query = std::make_shared<Query>(query_);
  request.spec.objectives = objectives_;
  request.preference.weights = WeightVector::Uniform(3);

  ServiceRequest parallel_request = request;
  parallel_request.spec.parallelism = 4;

  const ServiceResponse serial = service.SubmitAndWait(request);
  const ServiceResponse parallel = service.SubmitAndWait(parallel_request);
  ASSERT_EQ(serial.status, ResponseStatus::kCompleted);
  ASSERT_EQ(parallel.status, ResponseStatus::kCompleted);
  ASSERT_NE(serial.result, nullptr);
  ASSERT_NE(parallel.result, nullptr);
  EXPECT_EQ(parallel.result->frontier(), serial.result->frontier());
  EXPECT_DOUBLE_EQ(parallel.result->weighted_cost,
                   serial.result->weighted_cost);
}

TEST(ThreadPoolParallelForTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr int kN = 1000;
  std::vector<std::atomic<int>> counts(kN);
  std::atomic<int> max_slot{0};
  pool.ParallelFor(kN, /*max_helpers=*/4, [&](int index, int slot) {
    counts[index].fetch_add(1, std::memory_order_relaxed);
    int seen = max_slot.load(std::memory_order_relaxed);
    while (slot > seen &&
           !max_slot.compare_exchange_weak(seen, slot,
                                           std::memory_order_relaxed)) {
    }
  });
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(counts[i].load(), 1) << "index " << i;
  }
  EXPECT_LE(max_slot.load(), 4);
}

TEST(ThreadPoolParallelForTest, CompletesWithoutHelpers) {
  // A shut-down pool accepts no helper tasks; the caller must still drain
  // the whole batch itself (the no-deadlock property the DP relies on).
  ThreadPool pool(2);
  pool.Shutdown();
  std::vector<int> seen_slot(64, -1);
  pool.ParallelFor(64, /*max_helpers=*/2, [&](int index, int slot) {
    seen_slot[index] = slot;
  });
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(seen_slot[i], 0) << "index " << i;
  }
}

TEST(ThreadPoolParallelForTest, TaskExceptionRethrownOnCallerAfterBarrier) {
  // A throwing task must not escape into a worker thread (std::terminate)
  // or unwind the caller before the barrier: the batch completes, then the
  // first exception resurfaces on the calling thread — so the service's
  // optimizer fence catches parallel-DP failures like serial ones.
  ThreadPool pool(2);
  std::atomic<int> executed{0};
  EXPECT_THROW(
      pool.ParallelFor(32, /*max_helpers=*/2,
                       [&](int index, int) {
                         executed.fetch_add(1, std::memory_order_relaxed);
                         if (index == 7) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // Barrier held: every index ran (throwing ones still count as done).
  EXPECT_EQ(executed.load(), 32);
}

TEST(ThreadPoolParallelForTest, NestedBatchesDoNotDeadlock) {
  // Batches issued from inside pool tasks share the same pool: caller
  // participation guarantees progress even with every worker occupied.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.ParallelFor(8, /*max_helpers=*/2, [&](int outer, int) {
    (void)outer;
    pool.ParallelFor(8, /*max_helpers=*/2, [&](int inner, int) {
      (void)inner;
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPoolLaneTest, InteractiveLaneAlwaysDequeuesFirst) {
  // Two-lane priority (PR 7): with the single worker parked on a gate
  // task, queue refinement work first, then interactive work. On release
  // every interactive task must run before any refinement task, and order
  // within each lane stays FIFO.
  ThreadPool pool(1);
  std::mutex mu;
  std::condition_variable cv;
  bool gate_open = false;
  bool gate_entered = false;
  ASSERT_TRUE(pool.Submit([&] {
    std::unique_lock<std::mutex> lock(mu);
    gate_entered = true;
    cv.notify_all();
    cv.wait(lock, [&] { return gate_open; });
  }));
  {
    // Park the worker on the gate before queueing, so queue depths below
    // count exactly the tasks this test submits.
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return gate_entered; });
  }

  std::vector<int> order;
  std::mutex order_mu;
  auto record = [&](int tag) {
    return [&, tag] {
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(tag);
    };
  };
  // Refinement tagged 100+, interactive tagged 0+ — submitted AFTER.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(pool.Submit(record(100 + i), TaskLane::kRefinement));
  }
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(pool.Submit(record(i), TaskLane::kInteractive));
  }
  EXPECT_EQ(pool.QueueDepth(TaskLane::kRefinement), 3u);
  EXPECT_EQ(pool.QueueDepth(TaskLane::kInteractive), 3u);
  {
    std::lock_guard<std::mutex> lock(mu);
    gate_open = true;
  }
  cv.notify_all();
  pool.Shutdown();  // Drains both queues before joining.

  const std::vector<int> expected = {0, 1, 2, 100, 101, 102};
  EXPECT_EQ(order, expected);
}

}  // namespace
}  // namespace moqo
