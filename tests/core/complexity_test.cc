// Tests for the closed-form complexity model behind Figure 7.

#include "core/complexity.h"

#include <gtest/gtest.h>

#include <cmath>

namespace moqo {
namespace {

TEST(ComplexityTest, NBushyMatchesHandComputedValues) {
  // N_bushy(j, n) = j^(2n-1) * (2(n-1))!/(n-1)!.
  // n=1: j^1 * 0!/0! = j.
  EXPECT_NEAR(Log10NBushy(6, 1), std::log10(6.0), 1e-9);
  // n=2: j^3 * 2!/1! = 2 j^3.
  EXPECT_NEAR(Log10NBushy(6, 2), std::log10(2.0 * 216), 1e-9);
  // n=3: j^5 * 4!/2! = 12 j^5.
  EXPECT_NEAR(Log10NBushy(2, 3), std::log10(12.0 * 32), 1e-9);
}

TEST(ComplexityTest, ExaTimeIsSquareOfPlanCount) {
  EXPECT_NEAR(Log10ExaTime(6, 5), 2 * Log10NBushy(6, 5), 1e-12);
}

TEST(ComplexityTest, NStoredGrowsWithTablesAndShrinksWithAlpha) {
  const double m = 1e5;
  EXPECT_LT(Log10NStored(m, 4, 3, 2.0), Log10NStored(m, 8, 3, 2.0));
  EXPECT_LT(Log10NStored(m, 4, 3, 2.0), Log10NStored(m, 4, 3, 1.05));
  EXPECT_LT(Log10NStored(m, 4, 3, 2.0), Log10NStored(m, 4, 9, 2.0));
}

TEST(ComplexityTest, Figure7Ordering) {
  // Figure 7 (j=6, l=3, m=1e5): Selinger < RTA(1.5) < RTA(1.05) always;
  // the EXA starts cheaper than the fine-grained RTA for few tables but
  // crosses over and dwarfs everything as n grows — that crossover is the
  // visual message of the figure.
  bool exa_cheaper_somewhere = false;
  bool exa_crosses_over = false;
  for (int n = 2; n <= 10; ++n) {
    const double selinger = Log10SelingerTime(6, n);
    const double rta_coarse = Log10RtaTime(6, n, 3, 1e5, 1.5);
    const double rta_fine = Log10RtaTime(6, n, 3, 1e5, 1.05);
    const double exa = Log10ExaTime(6, n);
    EXPECT_LT(selinger, rta_coarse) << "n=" << n;
    EXPECT_LT(rta_coarse, rta_fine) << "n=" << n;
    if (exa < rta_fine) exa_cheaper_somewhere = true;
    if (exa > rta_fine) exa_crosses_over = true;
  }
  EXPECT_TRUE(exa_cheaper_somewhere);
  EXPECT_TRUE(exa_crosses_over);
  // Far out, the EXA exceeds even the finest RTA by many orders.
  EXPECT_GT(Log10ExaTime(6, 10) - Log10RtaTime(6, 10, 3, 1e5, 1.05), 5);
}

TEST(ComplexityTest, ExaGrowsSuperExponentially) {
  // The EXA curve accelerates: successive differences increase.
  double prev_delta = 0;
  for (int n = 2; n <= 10; ++n) {
    const double delta = Log10ExaTime(6, n) - Log10ExaTime(6, n - 1);
    EXPECT_GT(delta, prev_delta) << "n=" << n;
    prev_delta = delta;
  }
}

TEST(ComplexityTest, RtaIsPolynomialFactorOverSelinger) {
  // Theorem 5: RTA time = Selinger * N_stored^3 — the gap in log space is
  // exactly 3*log10(N_stored).
  for (int n = 2; n <= 8; ++n) {
    const double gap = Log10RtaTime(6, n, 3, 1e5, 1.5) -
                       Log10SelingerTime(6, n);
    EXPECT_NEAR(gap, 3 * Log10NStored(1e5, n, 3, 1.5), 1e-9);
  }
}

TEST(ComplexityTest, IraIterationTimeDoublesPerIteration) {
  // Theorem 7: the 2^i factor makes consecutive iterations differ by
  // log10(2).
  const double t1 = Log10IraIterationTime(6, 5, 3, 1e5, 1.5, 1);
  const double t2 = Log10IraIterationTime(6, 5, 3, 1e5, 1.5, 2);
  const double t3 = Log10IraIterationTime(6, 5, 3, 1e5, 1.5, 3);
  EXPECT_NEAR(t2 - t1, std::log10(2.0), 1e-12);
  EXPECT_NEAR(t3 - t2, std::log10(2.0), 1e-12);
}

}  // namespace
}  // namespace moqo
