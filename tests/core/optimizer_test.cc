// End-to-end optimizer tests: EXA optimality, the RTA approximation
// guarantee (Corollary 1) and approximate-Pareto-set property (Theorem 3),
// IRA guarantees for bounded MOQO (Theorem 6) and termination (Theorem 8),
// Selinger baselines, and timeout behaviour.

#include <gtest/gtest.h>

#include <cmath>

#include "core/exa.h"
#include "core/ira.h"
#include "core/rta.h"
#include "core/selinger.h"
#include "frontier/frontier.h"
#include "testing/test_helpers.h"

namespace moqo {
namespace {

class OptimizerTest : public ::testing::Test {
 protected:
  OptimizerTest() : catalog_(testing::MakeTinyCatalog()) {}

  MOQOProblem MakeProblem(const Query* query, int num_objectives,
                          uint64_t seed) {
    MOQOProblem problem;
    problem.query = query;
    std::vector<Objective> objectives;
    Xoshiro256 rng(seed);
    for (int idx :
         rng.SampleWithoutReplacement(kNumObjectives, num_objectives)) {
      objectives.push_back(kAllObjectives[idx]);
    }
    problem.objectives = ObjectiveSet(objectives);
    problem.weights = WeightVector(num_objectives);
    for (int i = 0; i < num_objectives; ++i) {
      problem.weights[i] = rng.NextDouble();
    }
    problem.bounds = BoundVector::Unbounded(num_objectives);
    return problem;
  }

  Catalog catalog_;
};

TEST_F(OptimizerTest, ExaFindsPlanCoveringAllTables) {
  Query query = testing::MakeStarQuery(&catalog_, 3);
  MOQOProblem problem = MakeProblem(&query, 3, 1);
  ExactMOQO exa(testing::SmallOptions());
  OptimizerResult result = exa.Optimize(problem);
  ASSERT_NE(result.plan, nullptr);
  EXPECT_EQ(result.plan->tables, query.AllTables());
  EXPECT_TRUE(result.cost.IsValid());
  EXPECT_FALSE(result.metrics.timed_out);
  EXPECT_GT(result.metrics.considered_plans, 0);
  EXPECT_GE(result.frontier_size(), 1);
}

TEST_F(OptimizerTest, ExaParetoFrontierIsMutuallyNonDominated) {
  Query query = testing::MakeStarQuery(&catalog_, 2);
  MOQOProblem problem = MakeProblem(&query, 4, 2);
  ExactMOQO exa(testing::SmallOptions());
  OptimizerResult result = exa.Optimize(problem);
  for (size_t i = 0; i < result.frontier().size(); ++i) {
    for (size_t j = 0; j < result.frontier().size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(
          StrictlyDominates(result.frontier()[i], result.frontier()[j]));
    }
  }
}

TEST_F(OptimizerTest, SingleObjectiveKeepsOnePlanPerSet) {
  // With one dimension, dominance is a total order: the "Pareto set" of
  // the full table set has exactly one plan (Figure 5's l=1 behaviour).
  Query query = testing::MakeStarQuery(&catalog_, 2);
  MOQOProblem problem;
  problem.query = &query;
  problem.objectives = ObjectiveSet::Only(Objective::kTotalTime);
  problem.weights = WeightVector::Uniform(1);
  ExactMOQO exa(testing::SmallOptions());
  OptimizerResult result = exa.Optimize(problem);
  EXPECT_EQ(result.frontier_size(), 1);
}

// Corollary 1 sweep: RTA weighted cost <= alpha_U * EXA weighted cost, for
// every query size, alpha, and several random weight draws.
class RtaGuaranteeTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(RtaGuaranteeTest, WithinAlphaOfExactOptimum) {
  const int num_dims = std::get<0>(GetParam());
  const double alpha = std::get<1>(GetParam());
  Catalog catalog = testing::MakeTinyCatalog();
  Query query = testing::MakeStarQuery(&catalog, num_dims);

  for (uint64_t seed = 1; seed <= 5; ++seed) {
    MOQOProblem problem;
    problem.query = &query;
    Xoshiro256 rng(seed * 77);
    std::vector<Objective> objectives;
    for (int idx : rng.SampleWithoutReplacement(kNumObjectives, 4)) {
      objectives.push_back(kAllObjectives[idx]);
    }
    problem.objectives = ObjectiveSet(objectives);
    problem.weights = WeightVector(4);
    for (int i = 0; i < 4; ++i) problem.weights[i] = rng.NextDouble();

    ExactMOQO exa(testing::SmallOptions());
    OptimizerResult exact = exa.Optimize(problem);
    RTAOptimizer rta(testing::SmallOptions(alpha));
    OptimizerResult approx = rta.Optimize(problem);

    ASSERT_NE(exact.plan, nullptr);
    ASSERT_NE(approx.plan, nullptr);
    EXPECT_LE(approx.weighted_cost,
              exact.weighted_cost * alpha + 1e-9)
        << "seed " << seed << ": RTA " << approx.weighted_cost << " vs EXA "
        << exact.weighted_cost;
    // The RTA never stores more plans than the EXA for the final set.
    EXPECT_LE(approx.frontier_size(), exact.frontier_size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    QueriesAndAlphas, RtaGuaranteeTest,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(1.05, 1.15, 1.5, 2.0, 4.0)),
    [](const ::testing::TestParamInfo<std::tuple<int, double>>& info) {
      return "dims" + std::to_string(std::get<0>(info.param)) + "_alpha" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 100));
    });

// Theorem 3: the RTA's final plan set is an alpha_U-approximate Pareto set
// — every EXA Pareto vector is approximately dominated by some RTA vector.
TEST_F(OptimizerTest, RtaFrontierAlphaCoversExactFrontier) {
  Query query = testing::MakeStarQuery(&catalog_, 2);
  for (double alpha : {1.1, 1.5, 2.0}) {
    MOQOProblem problem = MakeProblem(&query, 3, 11);
    ExactMOQO exa(testing::SmallOptions());
    OptimizerResult exact = exa.Optimize(problem);
    RTAOptimizer rta(testing::SmallOptions(alpha));
    OptimizerResult approx = rta.Optimize(problem);
    const auto uncovered =
        FindUncoveredVector(approx.frontier(), exact.frontier(), alpha + 1e-9);
    EXPECT_FALSE(uncovered.has_value())
        << "alpha=" << alpha << " uncovered " << uncovered->ToString();
  }
}

TEST_F(OptimizerTest, RtaInternalPrecisionIsNthRoot) {
  EXPECT_DOUBLE_EQ(RTAInternalPrecision(2.0, 1), 2.0);
  EXPECT_NEAR(RTAInternalPrecision(2.0, 4), std::pow(2.0, 0.25), 1e-12);
  EXPECT_NEAR(std::pow(RTAInternalPrecision(1.5, 7), 7), 1.5, 1e-9);
}

TEST_F(OptimizerTest, IraRefinementPolicyDecreasesTowardOne) {
  const double alpha_u = 2.0;
  const int l = 9;
  double previous = alpha_u + 1;
  for (int i = 1; i <= 200; ++i) {
    const double alpha = IRAIterationPrecision(alpha_u, i, l);
    EXPECT_LT(alpha, previous);   // Strictly monotonically decreasing.
    EXPECT_GE(alpha, 1.0);
    previous = alpha;
  }
  EXPECT_NEAR(previous, 1.0, 0.01);  // Converges to exactness.
  // Theorem 7 structure: the exponent halves every (3l-3) iterations, so
  // alpha(i + 3l-3) = sqrt-progression toward 1.
  const double a1 = IRAIterationPrecision(alpha_u, 1, l);
  const double a2 = IRAIterationPrecision(alpha_u, 1 + 3 * l - 3, l);
  EXPECT_NEAR(std::log(a2) / std::log(a1), 0.5, 1e-9);
}

TEST_F(OptimizerTest, IraRespectsSatisfiableBounds) {
  Query query = testing::MakeStarQuery(&catalog_, 2);
  MOQOProblem problem = MakeProblem(&query, 4, 21);

  // Derive satisfiable bounds from the exact Pareto frontier: relax a
  // mid-frontier plan's cost by 10%.
  ExactMOQO exa(testing::SmallOptions());
  OptimizerResult exact = exa.Optimize(problem);
  ASSERT_GE(exact.frontier().size(), 1u);
  const CostVector& anchor =
      exact.frontier()[exact.frontier().size() / 2];
  problem.bounds = BoundVector(4);
  for (int i = 0; i < 4; ++i) problem.bounds[i] = anchor[i] * 1.1;

  for (double alpha : {1.15, 1.5, 2.0}) {
    IRAOptimizer ira(testing::SmallOptions(alpha));
    OptimizerResult result = ira.Optimize(problem);
    ASSERT_NE(result.plan, nullptr) << "alpha " << alpha;
    EXPECT_TRUE(result.respects_bounds) << "alpha " << alpha;
    EXPECT_GE(result.metrics.iterations, 1);

    // Theorem 6: weighted cost within alpha_U of the bounded optimum.
    OptimizerResult exact_bounded =
        ExactMOQO(testing::SmallOptions()).Optimize(problem);
    ASSERT_TRUE(exact_bounded.respects_bounds);
    EXPECT_LE(result.weighted_cost,
              exact_bounded.weighted_cost * alpha + 1e-9)
        << "alpha " << alpha;
  }
}

TEST_F(OptimizerTest, IraFallsBackToWeightedWhenBoundsInfeasible) {
  Query query = testing::MakeStarQuery(&catalog_, 2);
  MOQOProblem problem = MakeProblem(&query, 3, 31);
  problem.bounds = BoundVector(3);
  for (int i = 0; i < 3; ++i) problem.bounds[i] = 1e-15;  // Unsatisfiable.

  IRAOptimizer ira(testing::SmallOptions(1.5));
  OptimizerResult result = ira.Optimize(problem);
  ASSERT_NE(result.plan, nullptr);
  EXPECT_FALSE(result.respects_bounds);
  // Definition 2: with empty P_B, optimal = weighted optimum over all plans.
  OptimizerResult exact = ExactMOQO(testing::SmallOptions()).Optimize(
      [&] {
        MOQOProblem weighted = problem;
        weighted.bounds = BoundVector::Unbounded(3);
        return weighted;
      }());
  EXPECT_LE(result.weighted_cost, exact.weighted_cost * 1.5 + 1e-9);
}

TEST_F(OptimizerTest, IraStoppingConditionExposed) {
  // A set where popt is clearly optimal: the stopping condition holds.
  Arena arena;
  ParetoSet set;
  PlanNode* good = arena.New<PlanNode>();
  good->cost = CostVector(2);
  good->cost[0] = 2.0;
  good->cost[1] = 0.5;  // Weighted cost 2.5.
  set.Prune(good);
  WeightVector w = WeightVector::Uniform(2);
  BoundVector unbounded = BoundVector::Unbounded(2);
  // Only candidate is popt itself: CW/alpha = 2.5/1.3 > 2.5/1.5 = CW/alphaU,
  // so nothing disproves near-optimality.
  EXPECT_TRUE(IRAOptimizer::StoppingConditionMet(set, w, unbounded, good,
                                                 /*alpha=*/1.3,
                                                 /*alpha_u=*/1.5));
  // Add a tempting plan (0.1, 1.3) and bound dimension 1 by 1.0:
  //   - it violates the strict bound (1.3 > 1.0) so popt stays `good`;
  //   - it respects the 1.6-relaxed bound (1.3 <= 1.6);
  //   - its deflated cost 1.4/1.6 undercuts 2.5/1.5.
  // The IRA must therefore keep iterating (condition fails).
  PlanNode* tempting = arena.New<PlanNode>();
  tempting->cost = CostVector(2);
  tempting->cost[0] = 0.1;
  tempting->cost[1] = 1.3;
  set.Prune(tempting);
  BoundVector bounds(2);
  bounds[1] = 1.0;
  const PlanNode* popt = set.SelectBest(w, bounds);
  ASSERT_EQ(popt, good);
  EXPECT_FALSE(IRAOptimizer::StoppingConditionMet(set, w, bounds, popt,
                                                  /*alpha=*/1.6,
                                                  /*alpha_u=*/1.5));
  // With a coarse relaxation that the tempting plan's bound violation
  // survives (alpha = 1.2: 1.3 > 1.2), the condition holds again.
  EXPECT_TRUE(IRAOptimizer::StoppingConditionMet(set, w, bounds, popt,
                                                 /*alpha=*/1.2,
                                                 /*alpha_u=*/1.5));
}

TEST_F(OptimizerTest, IraStoppingConditionRejectsViolatingPopt) {
  // Regression for the Algorithm-3 gap (see ira.cc): when popt violates
  // the bounds it is the global weighted minimum, and the deflation test
  // alone would terminate immediately — returning an infinitely-bad plan
  // (Definition 3) although a bound-respecting plan may merely be hiding
  // behind the approximation. The strengthened condition keeps iterating
  // while any plan respects the relaxed bounds.
  Arena arena;
  ParetoSet set;
  PlanNode* cheap_violator = arena.New<PlanNode>();
  cheap_violator->cost = CostVector(2);
  cheap_violator->cost[0] = 1.0;
  cheap_violator->cost[1] = 5.0;  // Violates bound 2.0 below.
  set.Prune(cheap_violator);
  PlanNode* near_feasible = arena.New<PlanNode>();
  near_feasible->cost = CostVector(2);
  near_feasible->cost[0] = 10.0;
  near_feasible->cost[1] = 2.2;  // Within 1.15-relaxed bound 2.3.
  set.Prune(near_feasible);

  WeightVector w = WeightVector::Uniform(2);
  BoundVector bounds(2);
  bounds[1] = 2.0;
  const PlanNode* popt = set.SelectBest(w, bounds);
  ASSERT_EQ(popt, cheap_violator);  // Nothing respects B: weighted best.
  // near_feasible respects 1.15*B -> must keep refining.
  EXPECT_FALSE(IRAOptimizer::StoppingConditionMet(set, w, bounds, popt,
                                                  /*alpha=*/1.15,
                                                  /*alpha_u=*/1.5));
  // At alpha = 1.05 nothing respects the relaxed bounds (2.2 > 2.1):
  // infeasibility is certified, terminating with the weighted optimum.
  EXPECT_TRUE(IRAOptimizer::StoppingConditionMet(set, w, bounds, popt,
                                                 /*alpha=*/1.05,
                                                 /*alpha_u=*/1.5));
}

TEST_F(OptimizerTest, IraPrefersFeasiblePlanOverCheaperViolator) {
  // End-to-end version of the regression: whenever the EXA can find a
  // bound-respecting plan, the IRA's answer must respect the bounds too.
  Query query = testing::MakeStarQuery(&catalog_, 2);
  Xoshiro256 rng(99);
  int feasible_cases = 0;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    MOQOProblem problem = MakeProblem(&query, 4, seed * 7);
    // Tight-ish bounds around a random exact Pareto vector.
    OptimizerResult exact =
        ExactMOQO(testing::SmallOptions()).Optimize(problem);
    const CostVector& anchor =
        exact.frontier()[rng.NextInt(uint64_t{exact.frontier().size()})];
    problem.bounds = BoundVector(4);
    for (int i = 0; i < 4; ++i) problem.bounds[i] = anchor[i];
    OptimizerResult exact_bounded =
        ExactMOQO(testing::SmallOptions()).Optimize(problem);
    if (!exact_bounded.respects_bounds) continue;
    ++feasible_cases;
    OptimizerResult ira =
        IRAOptimizer(testing::SmallOptions(1.5)).Optimize(problem);
    EXPECT_TRUE(ira.respects_bounds) << "seed " << seed;
  }
  EXPECT_GT(feasible_cases, 0);
}

TEST_F(OptimizerTest, SelingerMatchesExaOnSingleObjective) {
  Query query = testing::MakeStarQuery(&catalog_, 2);
  for (Objective objective :
       {Objective::kTotalTime, Objective::kEnergy, Objective::kIOLoad}) {
    MOQOProblem problem;
    problem.query = &query;
    problem.objectives = ObjectiveSet::Only(objective);
    problem.weights = WeightVector::Uniform(1);
    SelingerOptimizer selinger(testing::SmallOptions());
    ExactMOQO exa(testing::SmallOptions());
    OptimizerResult a = selinger.Optimize(problem);
    OptimizerResult b = exa.Optimize(problem);
    ASSERT_NE(a.plan, nullptr);
    EXPECT_NEAR(a.cost[0], b.cost[0], 1e-9) << ObjectiveName(objective);
  }
}

TEST_F(OptimizerTest, SelingerMinimumCostIsLowerBound) {
  Query query = testing::MakeStarQuery(&catalog_, 2);
  const double min_time = SelingerOptimizer::MinimumCost(
      query, Objective::kTotalTime, testing::SmallOptions());
  EXPECT_GT(min_time, 0);
  // Any EXA plan optimized for weighted multi-objective cost pays at least
  // the single-objective minimum on that objective.
  MOQOProblem problem;
  problem.query = &query;
  problem.objectives =
      ObjectiveSet({Objective::kTotalTime, Objective::kBufferFootprint});
  problem.weights = WeightVector::Uniform(2);
  OptimizerResult result = ExactMOQO(testing::SmallOptions()).Optimize(problem);
  EXPECT_GE(result.cost[0], min_time - 1e-9);
}

TEST_F(OptimizerTest, WeightedSumHeuristicCanBeSuboptimal) {
  // Example 1's message: scalarized pruning offers no guarantee. We only
  // assert it never *beats* the exact optimum and returns a valid plan.
  Query query = testing::MakeStarQuery(&catalog_, 3);
  int suboptimal = 0;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    MOQOProblem problem = MakeProblem(&query, 5, seed * 13);
    OptimizerResult heuristic =
        WeightedSumOptimizer(testing::SmallOptions()).Optimize(problem);
    OptimizerResult exact =
        ExactMOQO(testing::SmallOptions()).Optimize(problem);
    ASSERT_NE(heuristic.plan, nullptr);
    EXPECT_GE(heuristic.weighted_cost, exact.weighted_cost - 1e-9);
    if (heuristic.weighted_cost > exact.weighted_cost * 1.0001) {
      ++suboptimal;
    }
  }
  // Not asserted: how often it fails. Record that the comparison ran.
  SUCCEED() << suboptimal << "/10 cases suboptimal";
}

TEST_F(OptimizerTest, TimeoutProducesPlanQuickly) {
  Query query = testing::MakeStarQuery(&catalog_, 3);
  MOQOProblem problem = MakeProblem(&query, 9, 41);
  problem.objectives = ObjectiveSet::All();
  problem.weights = WeightVector::Uniform(9);
  problem.bounds = BoundVector::Unbounded(9);
  OptimizerOptions options = testing::SmallOptions();
  options.timeout_ms = 0;  // Expires immediately: pure quick mode.
  ExactMOQO exa(options);
  StopWatch watch;
  OptimizerResult result = exa.Optimize(problem);
  ASSERT_NE(result.plan, nullptr);  // Still returns a complete plan.
  EXPECT_EQ(result.plan->tables, query.AllTables());
  EXPECT_TRUE(result.metrics.timed_out);
  EXPECT_LT(watch.ElapsedMillis(), 2000);
}

TEST_F(OptimizerTest, LeftDeepRestrictionProducesLeftDeepPlans) {
  Query query = testing::MakeStarQuery(&catalog_, 3);
  MOQOProblem problem = MakeProblem(&query, 3, 51);
  OptimizerOptions options = testing::SmallOptions();
  options.bushy = false;
  ExactMOQO exa(options);
  OptimizerResult result = exa.Optimize(problem);
  ASSERT_NE(result.plan, nullptr);
  EXPECT_TRUE(result.plan->IsLeftDeep());
}

TEST_F(OptimizerTest, SingleTableQueryOptimization) {
  Query query(&catalog_, "single");
  query.AddTable("fact");
  MOQOProblem problem = MakeProblem(&query, 3, 61);
  OptimizerResult result = ExactMOQO(testing::SmallOptions()).Optimize(problem);
  ASSERT_NE(result.plan, nullptr);
  EXPECT_TRUE(result.plan->IsScan());
}

}  // namespace
}  // namespace moqo
