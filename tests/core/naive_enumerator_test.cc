// Tests using the exhaustive plan enumerator as ground-truth oracle:
// plan-count formula validation, EXA optimality and frontier completeness,
// and the RTA guarantee measured against true optima.

#include "core/naive_enumerator.h"

#include <gtest/gtest.h>

#include "core/exa.h"
#include "core/rta.h"
#include "frontier/frontier.h"
#include "testing/test_helpers.h"

namespace moqo {
namespace {

/// A catalog without indexes: IndexScan and IndexNLJoin are never
/// applicable, so applicability-filtered enumeration matches closed forms.
Catalog MakeIndexFreeCatalog() {
  Catalog catalog;
  for (int t = 0; t < 4; ++t) {
    Table table("t" + std::to_string(t), 1000 + 100 * t, 32);
    ColumnStats key;
    key.name = "key";
    key.ndv = 100;
    key.min_value = 0;
    key.max_value = 99;
    key.histogram = Histogram::Uniform(0, 99, 8, table.row_count());
    table.AddColumn(key);
    catalog.AddTable(std::move(table));
  }
  return catalog;
}

Query MakeChain(const Catalog* catalog, int n) {
  Query query(catalog, "chain" + std::to_string(n));
  for (int t = 0; t < n; ++t) query.AddTable("t" + std::to_string(t));
  for (int t = 0; t + 1 < n; ++t) query.AddJoin(t, "key", t + 1, "key");
  return query;
}

OperatorRegistry::Options BareOperators() {
  OperatorRegistry::Options options;
  options.enable_sampling = false;
  options.enable_index_scan = false;
  options.enable_parallelism = false;
  return options;
}

TEST(NaiveEnumeratorTest, PlanCountMatchesClosedForm) {
  Catalog catalog = MakeIndexFreeCatalog();
  OperatorRegistry registry(BareOperators());
  // 1 scan config; 4 join types of which IndexNL is never applicable -> 3.
  const int scans = 1, joins = 3;
  for (int n : {1, 2, 3}) {
    Query query = MakeChain(&catalog, n);
    CostModel model(&query, &registry, ObjectiveSet::Only(Objective::kTotalTime));
    Arena arena;
    NaiveEnumerator enumerator(&model, &registry, &arena);
    NaiveEnumerator::Options options;
    options.cartesian_heuristic = false;
    const long count = enumerator.CountPlans(query, options);
    EXPECT_DOUBLE_EQ(static_cast<double>(count),
                     NaiveEnumerator::ExpectedPlanCount(scans, joins, n))
        << "n=" << n;
  }
  // Hand values: n=2 -> 1*1*3*2 shapes? shapes(2)=2, so 1^2*3^1*2 = 6;
  // n=3 -> 1^3*3^2*12 = 108.
  EXPECT_DOUBLE_EQ(NaiveEnumerator::ExpectedPlanCount(1, 3, 2), 6);
  EXPECT_DOUBLE_EQ(NaiveEnumerator::ExpectedPlanCount(1, 3, 3), 108);
}

TEST(NaiveEnumeratorTest, CartesianHeuristicShrinksSpace) {
  // In a 4-chain t0-t1-t2-t3, the subset {t0, t1, t3} has the
  // non-connected split ({t3} | {t0,t1}) which the heuristic excludes;
  // 3-table chains have no such split, so 4 tables are the smallest case
  // where the heuristic bites.
  Catalog catalog = MakeIndexFreeCatalog();
  OperatorRegistry registry(BareOperators());
  Query query = MakeChain(&catalog, 4);
  CostModel model(&query, &registry, ObjectiveSet::Only(Objective::kTotalTime));
  Arena arena;
  NaiveEnumerator enumerator(&model, &registry, &arena);
  NaiveEnumerator::Options all;
  all.cartesian_heuristic = false;
  NaiveEnumerator::Options connected;
  connected.cartesian_heuristic = true;
  Arena arena2;
  NaiveEnumerator enumerator2(&model, &registry, &arena2);
  EXPECT_LT(enumerator2.CountPlans(query, connected),
            enumerator.CountPlans(query, all));
}

TEST(NaiveEnumeratorTest, BudgetCapsEnumeration) {
  Catalog catalog = MakeIndexFreeCatalog();
  OperatorRegistry registry(BareOperators());
  Query query = MakeChain(&catalog, 3);
  CostModel model(&query, &registry, ObjectiveSet::Only(Objective::kTotalTime));
  Arena arena;
  NaiveEnumerator enumerator(&model, &registry, &arena);
  NaiveEnumerator::Options options;
  options.max_plans = 10;
  EXPECT_LE(enumerator.CountPlans(query, options), 10);
}

class OracleTest : public ::testing::Test {
 protected:
  OracleTest()
      : catalog_(testing::MakeTinyCatalog()),
        query_(testing::MakeStarQuery(&catalog_, 2)) {}

  /// Enumerates the full plan space under the same settings the optimizers
  /// use (heuristic on, applicability on) and returns all cost vectors.
  std::vector<CostVector> AllCostVectors(const ObjectiveSet& objectives) {
    OperatorRegistry registry(testing::SmallOperatorSpace());
    CostModel model(&query_, &registry, objectives);
    Arena arena;
    NaiveEnumerator enumerator(&model, &registry, &arena);
    NaiveEnumerator::Options options;
    options.cartesian_heuristic = true;
    std::vector<CostVector> costs;
    enumerator.VisitAll(query_, options, [&](const PlanNode* plan) {
      costs.push_back(plan->cost);
    });
    return costs;
  }

  Catalog catalog_;
  Query query_;
};

TEST_F(OracleTest, ExaFindsTrueWeightedOptimum) {
  Xoshiro256 rng(17);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<Objective> objectives;
    for (int idx : rng.SampleWithoutReplacement(kNumObjectives, 3)) {
      objectives.push_back(kAllObjectives[idx]);
    }
    const ObjectiveSet objective_set(objectives);
    WeightVector weights(3);
    for (int i = 0; i < 3; ++i) weights[i] = rng.NextDouble();

    double naive_best = std::numeric_limits<double>::infinity();
    for (const CostVector& cost : AllCostVectors(objective_set)) {
      naive_best = std::min(naive_best, weights.WeightedCost(cost));
    }

    MOQOProblem problem;
    problem.query = &query_;
    problem.objectives = objective_set;
    problem.weights = weights;
    OptimizerResult result =
        ExactMOQO(testing::SmallOptions()).Optimize(problem);
    EXPECT_NEAR(result.weighted_cost, naive_best,
                1e-9 * std::max(1.0, naive_best))
        << "trial " << trial;
  }
}

TEST_F(OracleTest, ExaFrontierEqualsTrueParetoFrontier) {
  const ObjectiveSet objectives({Objective::kTotalTime,
                                 Objective::kBufferFootprint,
                                 Objective::kTupleLoss});
  const std::vector<CostVector> all = AllCostVectors(objectives);
  std::vector<CostVector> truth = ExtractParetoFrontier(all);

  MOQOProblem problem;
  problem.query = &query_;
  problem.objectives = objectives;
  problem.weights = WeightVector::Uniform(3);
  OptimizerResult result =
      ExactMOQO(testing::SmallOptions()).Optimize(problem);

  // Mutual 1.0-coverage = same frontier (up to duplicates).
  EXPECT_FALSE(
      FindUncoveredVector(result.frontier(), truth, 1.0 + 1e-12).has_value());
  EXPECT_FALSE(
      FindUncoveredVector(truth, result.frontier(), 1.0 + 1e-12).has_value());
}

TEST_F(OracleTest, RtaGuaranteeHoldsAgainstTrueOptimum) {
  Xoshiro256 rng(23);
  for (double alpha : {1.1, 1.5, 2.0}) {
    std::vector<Objective> objectives;
    for (int idx : rng.SampleWithoutReplacement(kNumObjectives, 4)) {
      objectives.push_back(kAllObjectives[idx]);
    }
    const ObjectiveSet objective_set(objectives);
    WeightVector weights(4);
    for (int i = 0; i < 4; ++i) weights[i] = rng.NextDouble();

    double naive_best = std::numeric_limits<double>::infinity();
    for (const CostVector& cost : AllCostVectors(objective_set)) {
      naive_best = std::min(naive_best, weights.WeightedCost(cost));
    }

    MOQOProblem problem;
    problem.query = &query_;
    problem.objectives = objective_set;
    problem.weights = weights;
    OptimizerResult result =
        RTAOptimizer(testing::SmallOptions(alpha)).Optimize(problem);
    EXPECT_LE(result.weighted_cost, naive_best * alpha + 1e-9)
        << "alpha " << alpha;
  }
}

}  // namespace
}  // namespace moqo
