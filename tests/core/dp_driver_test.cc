// Tests for the DP engine: memo structure, split enumeration, the
// Cartesian-product heuristic, and quick/timeout modes.

#include "core/dp_driver.h"

#include <gtest/gtest.h>

#include "testing/test_helpers.h"

namespace moqo {
namespace {

class DpDriverTest : public ::testing::Test {
 protected:
  DpDriverTest()
      : catalog_(testing::MakeTinyCatalog()),
        registry_(testing::SmallOperatorSpace()) {}

  Catalog catalog_;
  OperatorRegistry registry_;
  Arena arena_;
};

TEST_F(DpDriverTest, BuildsEntriesForConnectedSubsetsOnly) {
  // Star query: fact(0)-dim1(1), fact-dim2(2). {dim1,dim2} is disconnected.
  Query query = testing::MakeStarQuery(&catalog_, 2);
  CostModel model(&query, &registry_,
                  ObjectiveSet({Objective::kTotalTime, Objective::kEnergy}));
  DPPlanGenerator generator(&model, &registry_, &arena_);
  DPOptions options;
  const ParetoSet& result = generator.Run(query, options);
  EXPECT_FALSE(result.empty());
  EXPECT_FALSE(generator.SetFor(TableSet::Singleton(0)).empty());
  EXPECT_FALSE(
      generator.SetFor(TableSet::Singleton(0).With(1)).empty());
  // Disconnected subset skipped entirely.
  EXPECT_TRUE(generator.SetFor(TableSet::Singleton(1).With(2)).empty());
}

TEST_F(DpDriverTest, DisconnectedQueryStillOptimizable) {
  // Query with NO join predicate: only Cartesian products are possible, so
  // the heuristic must fall back to product splits.
  Query query(&catalog_, "cross");
  query.AddTable("dim1");
  query.AddTable("dim2");
  CostModel model(&query, &registry_, ObjectiveSet::Only(Objective::kTotalTime));
  DPPlanGenerator generator(&model, &registry_, &arena_);
  DPOptions options;
  const ParetoSet& result = generator.Run(query, options);
  ASSERT_FALSE(result.empty());
  EXPECT_EQ(result.at(0)->tables, query.AllTables());
}

TEST_F(DpDriverTest, StatsCountConsideredAndInserted) {
  Query query = testing::MakeStarQuery(&catalog_, 2);
  CostModel model(&query, &registry_, ObjectiveSet::Only(Objective::kTotalTime));
  DPPlanGenerator generator(&model, &registry_, &arena_);
  DPOptions options;
  generator.Run(query, options);
  const DPStats& stats = generator.stats();
  EXPECT_GT(stats.considered_plans, 0);
  EXPECT_GT(stats.inserted_plans, 0);
  EXPECT_LE(stats.inserted_plans, stats.considered_plans);
  EXPECT_FALSE(stats.timed_out);
  EXPECT_EQ(stats.last_complete_set, query.AllTables());
  EXPECT_EQ(stats.last_complete_pareto_count, 1);  // Single objective.
}

TEST_F(DpDriverTest, ApproximatePruningStoresFewerPlans) {
  Query query = testing::MakeStarQuery(&catalog_, 3);
  CostModel model(&query, &registry_, ObjectiveSet::All());
  DPOptions exact;
  Arena arena1;
  DPPlanGenerator exact_gen(&model, &registry_, &arena1);
  const int exact_size = exact_gen.Run(query, exact).size();

  DPOptions approx;
  approx.alpha = RTAInternalPrecision(2.0, query.num_tables());
  Arena arena2;
  DPPlanGenerator approx_gen(&model, &registry_, &arena2);
  const int approx_size = approx_gen.Run(query, approx).size();

  EXPECT_LE(approx_size, exact_size);
  EXPECT_GT(approx_size, 0);
  EXPECT_LE(approx_gen.stats().considered_plans,
            exact_gen.stats().considered_plans);
}

TEST_F(DpDriverTest, SinglePlanModeKeepsOnePlanPerSet) {
  Query query = testing::MakeStarQuery(&catalog_, 3);
  CostModel model(&query, &registry_, ObjectiveSet::All());
  DPPlanGenerator generator(&model, &registry_, &arena_);
  DPOptions options;
  options.single_plan_mode = true;
  options.quick_mode_weights = WeightVector::Uniform(kNumObjectives);
  const ParetoSet& result = generator.Run(query, options);
  EXPECT_EQ(result.size(), 1);
  EXPECT_EQ(generator.SetFor(TableSet::Singleton(0)).size(), 1);
}

TEST_F(DpDriverTest, MemoryBytesGrowWithWork) {
  Query small_query = testing::MakeStarQuery(&catalog_, 1);
  Query big_query = testing::MakeStarQuery(&catalog_, 3);
  CostModel small_model(&small_query, &registry_, ObjectiveSet::All());
  CostModel big_model(&big_query, &registry_, ObjectiveSet::All());
  Arena arena1, arena2;
  DPPlanGenerator small_gen(&small_model, &registry_, &arena1);
  DPPlanGenerator big_gen(&big_model, &registry_, &arena2);
  DPOptions options;
  small_gen.Run(small_query, options);
  big_gen.Run(big_query, options);
  EXPECT_GT(big_gen.MemoryBytes(), small_gen.MemoryBytes());
}

TEST_F(DpDriverTest, SplitEnumerationPrefersConnectedSplits) {
  Query query = testing::MakeStarQuery(&catalog_, 2);
  CostModel model(&query, &registry_, ObjectiveSet::Only(Objective::kTotalTime));
  DPPlanGenerator generator(&model, &registry_, &arena_);
  // With the heuristic on, the full set {0,1,2} must never be built from
  // the Cartesian split ({1,2} | {0}) — {1,2} has no plans anyway — and the
  // result must use predicate-connected joins.
  DPOptions options;
  const ParetoSet& result = generator.Run(query, options);
  ASSERT_FALSE(result.empty());
  const PlanNode* plan = result.at(0);
  // Both joins in the plan connect fact with a dimension.
  EXPECT_TRUE(plan->left->tables.Contains(0) ||
              plan->right->tables.Contains(0));
}

}  // namespace
}  // namespace moqo
