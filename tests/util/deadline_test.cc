// Tests for StopWatch and Deadline (optimizer timeout plumbing).

#include "util/deadline.h"

#include <gtest/gtest.h>

#include <thread>

namespace moqo {
namespace {

TEST(StopWatchTest, MeasuresElapsedTime) {
  StopWatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double elapsed = watch.ElapsedMillis();
  EXPECT_GE(elapsed, 15.0);
  EXPECT_LT(elapsed, 5000.0);
}

TEST(StopWatchTest, RestartResets) {
  StopWatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  watch.Restart();
  EXPECT_LT(watch.ElapsedMillis(), 15.0);
}

TEST(DeadlineTest, DefaultNeverExpires) {
  Deadline deadline;
  EXPECT_TRUE(deadline.IsInfinite());
  EXPECT_FALSE(deadline.Expired());
  EXPECT_FALSE(Deadline::Infinite().Expired());
}

TEST(DeadlineTest, ZeroBudgetExpiresImmediately) {
  Deadline deadline = Deadline::AfterMillis(0);
  EXPECT_FALSE(deadline.IsInfinite());
  EXPECT_TRUE(deadline.Expired());
}

TEST(DeadlineTest, FutureDeadlineExpiresAfterSleep) {
  Deadline deadline = Deadline::AfterMillis(10);
  EXPECT_FALSE(deadline.Expired());
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  EXPECT_TRUE(deadline.Expired());
}

}  // namespace
}  // namespace moqo
