// Tests for TableSet bit-set algebra and subset enumeration.

#include "util/table_set.h"

#include <gtest/gtest.h>

#include <set>

namespace moqo {
namespace {

TEST(TableSetTest, EmptySet) {
  TableSet empty;
  EXPECT_TRUE(empty.Empty());
  EXPECT_EQ(empty.Cardinality(), 0);
  EXPECT_FALSE(empty.Contains(0));
  EXPECT_EQ(empty.ToString(), "{}");
}

TEST(TableSetTest, SingletonProperties) {
  for (int table : {0, 5, 63}) {
    TableSet s = TableSet::Singleton(table);
    EXPECT_EQ(s.Cardinality(), 1);
    EXPECT_TRUE(s.Contains(table));
    EXPECT_EQ(s.First(), table);
  }
}

TEST(TableSetTest, PrefixBuildsLowBits) {
  EXPECT_EQ(TableSet::Prefix(0).Cardinality(), 0);
  EXPECT_EQ(TableSet::Prefix(3).mask(), 0b111u);
  EXPECT_EQ(TableSet::Prefix(64).Cardinality(), 64);
}

TEST(TableSetTest, SetAlgebra) {
  TableSet a = TableSet::Singleton(1).With(3).With(5);
  TableSet b = TableSet::Singleton(3).With(7);
  EXPECT_EQ(a.Union(b).Cardinality(), 4);
  EXPECT_EQ(a.Intersect(b), TableSet::Singleton(3));
  EXPECT_EQ(a.Minus(b), TableSet::Singleton(1).With(5));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(TableSet::Singleton(0)));
  EXPECT_TRUE(a.ContainsAll(TableSet::Singleton(1).With(5)));
  EXPECT_FALSE(a.ContainsAll(b));
}

TEST(TableSetTest, WithWithoutRoundTrip) {
  TableSet s = TableSet::Prefix(4);
  EXPECT_EQ(s.Without(2).With(2), s);
  EXPECT_FALSE(s.Without(2).Contains(2));
}

TEST(TableSetTest, MembersEnumeratesInOrder) {
  TableSet s = TableSet::Singleton(9).With(2).With(31);
  EXPECT_EQ(s.Members(), (std::vector<int>{2, 9, 31}));
}

TEST(TableSetTest, SubsetIteratorVisitsAllProperNonEmptySubsets) {
  TableSet s = TableSet::Prefix(4);
  std::set<uint64_t> seen;
  for (SubsetIterator it(s); !it.Done(); it.Next()) {
    const TableSet sub = it.Current();
    EXPECT_FALSE(sub.Empty());
    EXPECT_NE(sub, s);
    EXPECT_TRUE(s.ContainsAll(sub));
    EXPECT_EQ(sub.Union(it.Complement()), s);
    EXPECT_FALSE(sub.Intersects(it.Complement()));
    seen.insert(sub.mask());
  }
  // 2^4 - 2 proper non-empty subsets.
  EXPECT_EQ(seen.size(), 14u);
}

TEST(TableSetTest, SubsetIteratorSparseUniverse) {
  TableSet s = TableSet::Singleton(2).With(5).With(9);
  int count = 0;
  for (SubsetIterator it(s); !it.Done(); it.Next()) {
    EXPECT_TRUE(s.ContainsAll(it.Current()));
    ++count;
  }
  EXPECT_EQ(count, 6);  // 2^3 - 2.
}

TEST(TableSetTest, SubsetsOfSizeMatchesBinomial) {
  TableSet s = TableSet::Prefix(6);
  EXPECT_EQ(SubsetsOfSize(s, 0).size(), 1u);
  EXPECT_EQ(SubsetsOfSize(s, 1).size(), 6u);
  EXPECT_EQ(SubsetsOfSize(s, 2).size(), 15u);
  EXPECT_EQ(SubsetsOfSize(s, 3).size(), 20u);
  EXPECT_EQ(SubsetsOfSize(s, 6).size(), 1u);
  EXPECT_EQ(SubsetsOfSize(s, 7).size(), 0u);
  for (TableSet sub : SubsetsOfSize(s, 3)) {
    EXPECT_EQ(sub.Cardinality(), 3);
    EXPECT_TRUE(s.ContainsAll(sub));
  }
}

TEST(TableSetTest, SubsetsOfSizeSparse) {
  TableSet s = TableSet::Singleton(1).With(10).With(40).With(63);
  const auto pairs = SubsetsOfSize(s, 2);
  EXPECT_EQ(pairs.size(), 6u);
}

}  // namespace
}  // namespace moqo
